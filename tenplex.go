// Package tenplex is the public entry point of this reproduction of
// "Tenplex: Dynamic Parallelism for Deep Learning using Parallelizable
// Tensor Collections" (SOSP 2024): a state management library that lets
// DL jobs with multi-dimensional parallelism change their GPU
// allocation at runtime.
//
// A Job externalizes its training state — model parameters, optimizer
// moments and the dataset cursor — into per-device Tensor Stores,
// described by a parallelizable tensor collection (PTC). When the
// scheduler changes the allocation, the job asks the parallelizer
// (internal/perfmodel) for the best new (tensor, pipeline, data)
// configuration, diffs the old and new PTCs into a minimal
// split/move/merge plan (internal/core), and executes it with the
// distributed State Transformer (internal/transform).
//
// Beyond the single-job API, Cluster exposes the multi-job control
// plane (internal/coordinator): a device ledger, admission queue and
// arbitration policy that reallocate one shared topology among many
// competing elastic jobs, reconfiguring each through the same planner
// and transformer path.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package tenplex

import (
	"fmt"
	"time"

	"tenplex/internal/checkpoint"
	"tenplex/internal/cluster"
	"tenplex/internal/coordinator"
	"tenplex/internal/core"
	"tenplex/internal/dataset"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
	"tenplex/internal/perfmodel"
	"tenplex/internal/sched"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/transform"
)

// JobConfig describes a training job to manage.
type JobConfig struct {
	// Name scopes store paths and checkpoints.
	Name string
	// Model is the catalog of the job's state tensors.
	Model *model.Model
	// Topology is the cluster the job runs on.
	Topology *cluster.Topology
	// Perf tunes the parallelizer's cost model; zero value uses
	// perfmodel.DefaultParams.
	Perf perfmodel.Params
	// Seed drives the dataset order.
	Seed int64
}

// ReconfigReport summarizes one reconfiguration.
type ReconfigReport struct {
	From, To         parallel.Config
	FromGPUs, ToGPUs int
	// MovedBytes crossed a device boundary.
	MovedBytes int64
	// StorageBytes were read from persisted checkpoints.
	StorageBytes int64
	// SimulatedSec is the modeled transfer time on the topology.
	SimulatedSec float64
	// Plan statistics.
	Splits, Merges, Fetches int
}

// Job is a managed training job. It is not safe for concurrent use; the
// scheduler serializes resource changes.
type Job struct {
	cfg    JobConfig
	stores map[cluster.DeviceID]store.Access
	// storage is the remote blob store holding checkpoints.
	storage store.Local

	alloc  cluster.Allocation
	par    parallel.Config
	ptc    *core.PTC
	cursor dataset.Cursor
	step   int
}

// NewJob prepares a job on the topology: one in-memory Tensor Store per
// device plus a blob store standing in for remote checkpoint storage.
func NewJob(cfg JobConfig) (*Job, error) {
	if cfg.Name == "" || cfg.Model == nil || cfg.Topology == nil {
		return nil, fmt.Errorf("tenplex: JobConfig needs Name, Model and Topology")
	}
	if cfg.Perf.GlobalBatch == 0 {
		cfg.Perf = perfmodel.DefaultParams()
	}
	j := &Job{
		cfg:     cfg,
		stores:  map[cluster.DeviceID]store.Access{},
		storage: store.Local{FS: store.NewMemFS()},
		cursor:  dataset.Cursor{Seed: cfg.Seed},
	}
	for _, d := range cfg.Topology.Devices {
		j.stores[d.ID] = store.Local{FS: store.NewMemFS()}
	}
	return j, nil
}

// Stores exposes the per-device Tensor Stores (read-mostly; examples
// and tests inspect them).
func (j *Job) Stores() map[cluster.DeviceID]store.Access { return j.stores }

// Config returns the current parallelization configuration.
func (j *Job) Config() parallel.Config { return j.par }

// Allocation returns the current device allocation.
func (j *Job) Allocation() cluster.Allocation { return append(cluster.Allocation(nil), j.alloc...) }

// PTC returns the current parallelizable tensor collection.
func (j *Job) PTC() *core.PTC { return j.ptc }

// Cursor returns a pointer to the dataset cursor (the dataset state of
// the PTC); the training loop advances it.
func (j *Job) Cursor() *dataset.Cursor { return &j.cursor }

// Step returns the job's completed training steps.
func (j *Job) Step() int { return j.step }

// SetStep records training progress (called by the training loop).
func (j *Job) SetStep(s int) { j.step = s }

// Deploy places the job on nGPUs devices with the parallelizer's best
// configuration and loads the initial state into the Tensor Stores.
func (j *Job) Deploy(nGPUs int, init map[core.TensorID]*tensor.Tensor) error {
	best, err := perfmodel.Best(j.cfg.Model, j.cfg.Topology, nGPUs, j.cfg.Perf)
	if err != nil {
		return fmt.Errorf("tenplex: deploy: %w", err)
	}
	return j.DeployWith(best.Config, j.cfg.Topology.FirstN(nGPUs), init)
}

// DeployWith places the job with an explicit configuration and
// allocation.
func (j *Job) DeployWith(cfg parallel.Config, alloc cluster.Allocation, init map[core.TensorID]*tensor.Tensor) error {
	ptc, err := parallel.BuildPTC(j.cfg.Model, cfg, alloc)
	if err != nil {
		return fmt.Errorf("tenplex: deploy: %w", err)
	}
	if err := transform.LoadPTC(j.cfg.Name, ptc, j.stores, init); err != nil {
		return fmt.Errorf("tenplex: deploy: %w", err)
	}
	j.ptc, j.par, j.alloc = ptc, cfg, alloc
	return nil
}

// Reconfigure moves the job to nGPUs devices, picking the best new
// configuration, computing the minimal plan against the current PTC and
// executing it. It is the scheduler's entry point (§5.4).
func (j *Job) Reconfigure(nGPUs int) (ReconfigReport, error) {
	best, err := perfmodel.Best(j.cfg.Model, j.cfg.Topology, nGPUs, j.cfg.Perf)
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: reconfigure: %w", err)
	}
	return j.ReconfigureWith(best.Config, j.cfg.Topology.FirstN(nGPUs))
}

// ReconfigureWith moves the job to an explicit configuration and
// allocation.
func (j *Job) ReconfigureWith(cfg parallel.Config, alloc cluster.Allocation) (ReconfigReport, error) {
	if j.ptc == nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	to, err := parallel.BuildPTC(j.cfg.Model, cfg, alloc)
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: reconfigure: %w", err)
	}
	return j.applyPlan(j.ptc, to, cfg, alloc, false)
}

// Recover handles a fail-stop loss of devices: the degraded PTC keeps
// only surviving replicas, and ranges no replica holds are read back
// from the latest persisted checkpoint.
func (j *Job) Recover(failed []cluster.DeviceID, newGPUs int) (ReconfigReport, error) {
	if j.ptc == nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	best, err := perfmodel.Best(j.cfg.Model, j.cfg.Topology, newGPUs, j.cfg.Perf)
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: recover: %w", err)
	}
	dead := map[cluster.DeviceID]bool{}
	for _, d := range failed {
		dead[d] = true
	}
	var alloc cluster.Allocation
	for _, d := range j.cfg.Topology.Devices {
		if !dead[d.ID] && len(alloc) < newGPUs {
			alloc = append(alloc, d.ID)
		}
	}
	if len(alloc) < newGPUs {
		return ReconfigReport{}, fmt.Errorf("tenplex: only %d healthy devices for %d GPUs", len(alloc), newGPUs)
	}
	to, err := parallel.BuildPTC(j.cfg.Model, best.Config, alloc)
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: recover: %w", err)
	}
	degraded := j.ptc.WithoutDevices(failed...)
	return j.applyPlan(degraded, to, best.Config, alloc, true)
}

func (j *Job) applyPlan(from, to *core.PTC, cfg parallel.Config, alloc cluster.Allocation, storageOK bool) (ReconfigReport, error) {
	to = core.AlignDevices(from, to)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{
		Topo:            j.cfg.Topology,
		StorageFallback: storageOK,
	})
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: plan: %w", err)
	}
	tr := &transform.Transformer{Job: j.cfg.Name, Stores: j.stores}
	if storageOK {
		step, err := checkpoint.Latest(j.storage, j.cfg.Name)
		if err == nil {
			if r, err := checkpoint.Open(j.storage, j.cfg.Name, step); err == nil {
				tr.Storage = r
			}
		}
	}
	if _, err := tr.Apply(plan); err != nil {
		return ReconfigReport{}, fmt.Errorf("tenplex: transform: %w", err)
	}
	st := plan.Stats(j.cfg.Topology)
	sim := netsim.Simulate(j.cfg.Topology, plan.Flows(j.cfg.Topology))
	rep := ReconfigReport{
		From: j.par, To: cfg,
		FromGPUs: len(j.alloc), ToGPUs: len(alloc),
		MovedBytes:   st.MovedBytes,
		StorageBytes: st.StorageBytes,
		SimulatedSec: sim.Seconds,
		Splits:       st.Splits, Merges: st.Merges, Fetches: st.Fetches,
	}
	j.ptc, j.par, j.alloc = to, cfg, alloc
	return rep, nil
}

// Replicate mirrors every device's model partition to the Tensor Stores
// of its next n workers, round-robin (§5.3), adding state redundancy so
// that worker loss can be repaired without stale checkpoints. It
// returns the bytes written.
func (j *Job) Replicate(n int) (int64, error) {
	if j.ptc == nil {
		return 0, fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	return transform.Replicate(j.cfg.Name, j.ptc, j.cfg.Topology, j.stores, n)
}

// Checkpoint persists the current partitioned state to remote storage.
func (j *Job) Checkpoint() error {
	if j.ptc == nil {
		return fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	return checkpoint.Save(j.storage, j.cfg.Name, j.step, j.ptc, j.stores)
}

// State assembles and returns the job's full logical tensors from the
// distributed sub-tensors — what the DL system loads to resume.
func (j *Job) State() (map[core.TensorID]*tensor.Tensor, error) {
	if j.ptc == nil {
		return nil, fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	return transform.ReadPTC(j.cfg.Name, j.ptc, j.stores)
}

// WriteState pushes updated full tensors back into the stores under the
// current PTC (the DL system calls it after training steps, the
// equivalent of tenplex.save in §5.2).
func (j *Job) WriteState(full map[core.TensorID]*tensor.Tensor) error {
	if j.ptc == nil {
		return fmt.Errorf("tenplex: job %q not deployed", j.cfg.Name)
	}
	return transform.LoadPTC(j.cfg.Name, j.ptc, j.stores, full)
}

// HandleEvent adapts the job to a scheduler event, returning the
// simulated reconfiguration time; it lets a Job drive sched.Run.
func (j *Job) HandleEvent(e sched.Event) (ReconfigReport, error) {
	switch e.Kind {
	case sched.Failure:
		var failed []cluster.DeviceID
		for _, d := range j.alloc[e.GPUs:] {
			failed = append(failed, d)
		}
		return j.Recover(failed, e.GPUs)
	default:
		return j.Reconfigure(e.GPUs)
	}
}

// ClusterJob, ClusterFailure and ClusterResult are the public names of
// the coordinator's job spec, failure injection and simulation result.
type (
	ClusterJob     = coordinator.JobSpec
	ClusterFailure = coordinator.FailureSpec
	ClusterResult  = coordinator.Result
)

// ClusterConfig describes a multi-job cluster to coordinate.
type ClusterConfig struct {
	// Topology is the shared cluster all jobs compete for.
	Topology *cluster.Topology
	// Perf tunes the placement cost model; the zero value uses the
	// coordinator's reduced-scale default.
	Perf perfmodel.Params
	// DefragMaxSec caps the netsim-priced cost of voluntary
	// defragmenting redeployments (0 = default, negative = disabled).
	DefragMaxSec float64
	// Policy selects the scheduling policy: "" or "fifo" (arrival
	// order, head-of-line blocking, largest-surplus preemption), "drf"
	// (dominant-resource fairness), or "priority" (priority classes
	// with gang admission, driven by ClusterJob.Priority).
	Policy string
	// Placement enables allocation-aware placement scoring: the
	// coordinator enumerates candidate device sets per admission and
	// expansion, scores each concrete set (TP-group locality,
	// worst-link bandwidth, netsim-priced state migration) and lets
	// the policy rank them; preemption victims are scored by the
	// netsim cost of evicting them and forced shrinks take the
	// cheapest feasible reshape. Off (the default), runs are
	// byte-identical to the count-based coordinator.
	Placement bool
	// WallClock switches the runtime from deterministic simulated time
	// to the wall-clock mode: the event heap is paced on the real
	// clock (WallScale per simulated minute) and independent jobs'
	// reconfigurations overlap on the worker pool. Decisions — and the
	// returned timeline — are identical to the deterministic mode.
	WallClock bool
	// Workers bounds the pool executing per-job plan/transform/verify
	// work (0 = GOMAXPROCS, 1 = fully serialized event loop).
	Workers int
	// WallScale is the real duration of one simulated minute in
	// wall-clock mode (0 = the coordinator default).
	WallScale time.Duration
}

// Cluster is the multi-job elastic control plane: a device ledger, an
// admission queue and an arbitration policy that manage a fleet of
// concurrent Tenplex jobs on one shared topology, reconfiguring each
// job's PTC through the planner and State Transformer as its GPU
// allocation changes. It complements the single-job Job API with the
// cluster-side half of the paper's scenario.
type Cluster struct {
	cfg ClusterConfig
}

// NewCluster prepares a coordinator for the topology.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Topology == nil || cfg.Topology.NumDevices() == 0 {
		return nil, fmt.Errorf("tenplex: ClusterConfig needs a Topology")
	}
	if _, err := coordinator.PolicyByName(cfg.Policy); err != nil {
		return nil, fmt.Errorf("tenplex: %w", err)
	}
	return &Cluster{cfg: cfg}, nil
}

// Run executes a multi-job coordinator run: jobs arrive, are admitted
// and placed under the configured policy, resize elastically under
// contention, survive the injected failures, and complete with their
// state verified. It returns the per-job timeline and aggregate
// cluster metrics. With the default configuration the run is
// deterministic; WallClock paces it on the real clock with the same
// timeline.
func (c *Cluster) Run(jobs []ClusterJob, failures []ClusterFailure) (ClusterResult, error) {
	policy, err := coordinator.PolicyByName(c.cfg.Policy)
	if err != nil {
		return ClusterResult{}, fmt.Errorf("tenplex: %w", err)
	}
	opts := coordinator.Options{
		Perf:         c.cfg.Perf,
		DefragMaxSec: c.cfg.DefragMaxSec,
		Policy:       policy,
		Placement:    c.cfg.Placement,
		Workers:      c.cfg.Workers,
		WallScale:    c.cfg.WallScale,
	}
	if c.cfg.WallClock {
		opts.Mode = coordinator.ModeWall
	}
	return coordinator.Run(c.cfg.Topology, jobs, failures, opts)
}
