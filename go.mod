module tenplex

go 1.24
