package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tenplex/internal/api"
	"tenplex/internal/store"
)

// client is a minimal bearer-token client for the coordd REST API.
type client struct {
	base  string
	token string
	t     *testing.T
}

func (c *client) do(method, path string, body any, out any) (int, string) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatalf("request: %v", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func (c *client) submit(req api.SubmitRequest) string {
	c.t.Helper()
	var resp api.SubmitResponse
	code, raw := c.do("POST", "/v1/jobs", req, &resp)
	if code != http.StatusCreated {
		c.t.Fatalf("submit %s: %d %s", req.Name, code, raw)
	}
	return resp.ID
}

// jobStatus is the subset of the job snapshot the harness asserts on
// (decoded structurally so the subprocess mode exercises the wire
// schema, not shared Go types).
type jobStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Alloc    []int  `json:"alloc"`
	Resizes  int    `json:"resizes"`
	Verified bool   `json:"verified"`
}

func (c *client) job(id string) jobStatus {
	c.t.Helper()
	var st jobStatus
	code, raw := c.do("GET", "/v1/jobs/"+id, nil, &st)
	if code != http.StatusOK {
		c.t.Fatalf("get %s: %d %s", id, code, raw)
	}
	return st
}

func (c *client) waitState(id, want string, timeout time.Duration) jobStatus {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := c.job(id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *client) waitRunning(id string, timeout time.Duration) jobStatus {
	return c.waitState(id, "running", timeout)
}

// driveWorkload is the shared multi-job scenario, sized for a 4-device
// cluster: submit a job and fail one of its devices while it owns
// spare capacity (recovery must keep it alive to a bit-verified
// completion), then pile on three more jobs across two more model
// families so the survivors contend for the 3 healthy devices, scale
// one up and one down, cancel a long-runner, and assert terminal
// states. Returns all job IDs and the canceled job's ID.
func driveWorkload(t *testing.T, c *client) (ids []string, canceled string) {
	a := c.submit(api.SubmitRequest{Name: "a", Model: api.ModelSpec{Preset: "gpt-small"},
		GPUs: 2, MinGPUs: 1, MaxGPUs: 4, DurationMin: 1000})
	stA := c.waitRunning(a, 20*time.Second)
	if len(stA.Alloc) < 2 {
		// Alone on the cluster, a holds at least its requested two
		// devices (elastic expansion may have grown it further).
		t.Fatalf("job %s running on %v, want >= 2 devices", a, stA.Alloc)
	}

	// Fail one of a's devices while survivors exist: the coordinator
	// must replan onto the remaining healthy devices, and the restored
	// state must still pass bit-verification at completion.
	if code, raw := c.do("POST", "/v1/cluster/fail", api.FailRequest{Device: stA.Alloc[0]}, nil); code != http.StatusOK {
		t.Fatalf("fail device %d: %d %s", stA.Alloc[0], code, raw)
	}

	// Pile on contention: three more jobs onto the 3 healthy devices.
	b := c.submit(api.SubmitRequest{Name: "b", Model: api.ModelSpec{Preset: "gpt-tiny"},
		GPUs: 2, MinGPUs: 1, MaxGPUs: 2, DurationMin: 600})
	cc := c.submit(api.SubmitRequest{Name: "c", Model: api.ModelSpec{Preset: "moe-small"},
		GPUs: 1, MinGPUs: 1, MaxGPUs: 2, DurationMin: 100000})
	d := c.submit(api.SubmitRequest{Name: "d", Model: api.ModelSpec{Preset: "gpt-tiny"},
		GPUs: 1, MinGPUs: 1, MaxGPUs: 2, DurationMin: 500})
	ids = []string{a, b, cc, d}

	// Scale a up (elastic growth happens as capacity frees) and b down
	// to one device once it runs.
	if code, raw := c.do("POST", "/v1/jobs/"+a+"/scale", api.ScaleRequest{GPUs: 3}, nil); code != http.StatusOK {
		t.Fatalf("scale %s up: %d %s", a, code, raw)
	}
	c.waitRunning(b, 20*time.Second)
	if code, raw := c.do("POST", "/v1/jobs/"+b+"/scale", api.ScaleRequest{GPUs: 1}, nil); code != http.StatusOK {
		t.Fatalf("scale %s down: %d %s", b, code, raw)
	}

	// Cancel the long-runner.
	if code, raw := c.do("POST", "/v1/jobs/"+cc+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel %s: %d %s", cc, code, raw)
	}
	c.waitState(cc, "canceled", 20*time.Second)

	for _, id := range []string{a, b, d} {
		c.waitState(id, "completed", 60*time.Second)
		// Bit-verification runs on the job's execution chain and lands
		// shortly after the completion event in wall mode; poll for it
		// rather than asserting at the completion instant.
		deadline := time.Now().Add(15 * time.Second)
		for !c.job(id).Verified {
			if time.Now().After(deadline) {
				t.Fatalf("job %s completed without store-side bit-verification", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Cluster summary agrees.
	var cs struct {
		Completed int `json:"completed"`
		Canceled  int `json:"canceled"`
		Devices   int `json:"devices"`
	}
	if code, raw := c.do("GET", "/v1/cluster", nil, &cs); code != http.StatusOK {
		t.Fatalf("cluster: %d %s", code, raw)
	}
	if cs.Completed < 3 || cs.Canceled != 1 {
		t.Fatalf("cluster counts: %+v", cs)
	}
	return ids, cc
}

// checkEvents reads the NDJSON stream and requires the workload's
// milestones: submit/admit/complete for done, and the cancel event.
func checkEvents(t *testing.T, c *client, done []string, canceled string) {
	t.Helper()
	req, err := http.NewRequest("GET", c.base+"/v1/events", nil)
	if err != nil {
		t.Fatalf("events request: %v", err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	want := map[string]bool{}
	for _, id := range done {
		if id == canceled {
			want[id+"/cancel"] = true
			continue
		}
		want[id+"/submit"] = true
		want[id+"/admit"] = true
		want[id+"/complete"] = true
	}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(20 * time.Second)
	for len(want) > 0 && time.Now().Before(deadline) && sc.Scan() {
		var e struct {
			Job  string `json:"job"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		delete(want, e.Job+"/"+e.Kind)
	}
	if len(want) > 0 {
		t.Fatalf("event stream missing milestones: %v", want)
	}
}

// checkStoreState asserts completed jobs left their committed model
// trees on the store servers — the bytes the bit-verification oracle
// read over the wire.
func checkStoreState(t *testing.T, stores []*store.Client, completed []string, canceled string) {
	t.Helper()
	for _, id := range completed {
		if id == canceled {
			continue
		}
		root := "/job/" + id + "/model"
		shards := 0
		for _, sc := range stores {
			names, err := sc.List(root)
			if err != nil {
				continue // this device held no shard of the job's final placement
			}
			// List returns child names: per-device trees like "dev3/".
			for _, name := range names {
				if !strings.HasPrefix(name, "dev") {
					t.Fatalf("store listing for %s has unexpected entry %q", id, name)
				}
				files, err := sc.List(root + "/" + strings.TrimSuffix(name, "/"))
				if err != nil || len(files) == 0 {
					t.Fatalf("job %s: committed device tree %s%s is empty (err=%v)", id, root, name, err)
				}
				shards++
			}
		}
		if shards == 0 {
			t.Fatalf("job %s left no committed state on any store server", id)
		}
	}
}

// checkMetrics pulls /v1/metrics and sanity-checks the submit-latency
// summary; requirePlans additionally demands coordinator plan
// accounting (workloads whose jobs all cancel may commit none).
func checkMetrics(t *testing.T, c *client, minSubmits int64, requirePlans bool) api.SubmitLatency {
	t.Helper()
	var mr api.MetricsResponse
	if code, raw := c.do("GET", "/v1/metrics", nil, &mr); code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, raw)
	}
	if mr.SubmitLatency.Count < minSubmits {
		t.Fatalf("submit latency count %d < %d", mr.SubmitLatency.Count, minSubmits)
	}
	if mr.SubmitLatency.P99Ns < mr.SubmitLatency.P50Ns || mr.SubmitLatency.P50Ns <= 0 {
		t.Fatalf("submit latency quantiles: %+v", mr.SubmitLatency)
	}
	found := false
	for _, row := range mr.Metrics {
		if row.Name == "coord.plans" && row.Int > 0 {
			found = true
		}
	}
	if requirePlans && !found {
		t.Fatalf("metrics missing coordinator accounting (coord.plans)")
	}
	return mr.SubmitLatency
}

func fmtLatency(l api.SubmitLatency) string {
	return fmt.Sprintf("submits=%d p50=%s p99=%s", l.Count,
		time.Duration(l.P50Ns), time.Duration(l.P99Ns))
}
