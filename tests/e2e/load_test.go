package e2e

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"tenplex/internal/api"
	"tenplex/internal/cluster"
	"tenplex/internal/coordinator"
	"tenplex/internal/obs"
)

// TestE2ELoad measures control-plane contention: N concurrent
// submitters each push one job through POST /v1/jobs and then cancel
// it, so every request serializes onto the single-goroutine decision
// plane. It reports client-side p50/p99 submit latency next to the
// server-side api.submit_ns histogram from /v1/metrics.
//
// Tier-1 runs a small N; CI sets TENPLEX_E2E_LOAD=200 for the smoke.
// The latency budget is deliberately non-gating — numbers are printed
// (and appended to $GITHUB_STEP_SUMMARY when present) for trending,
// because shared CI runners make hard latency asserts flaky.
func TestE2ELoad(t *testing.T) {
	n := 20
	if v := os.Getenv("TENPLEX_E2E_LOAD"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			t.Fatalf("bad TENPLEX_E2E_LOAD %q", v)
		}
		n = parsed
	}

	svc, err := coordinator.StartService(cluster.Cloud(4), coordinator.Options{
		WallScale: 50 * time.Millisecond, // slow sim clock: measure the API, not job churn
		Metrics:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	srv, err := api.NewServer(api.Config{
		Service: svc,
		Tenants: []api.Tenant{{Name: "load", Token: "load-token"}},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	bound, closeFn, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = closeFn() })

	lats := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &client{base: "http://" + bound, token: "load-token", t: t}
			req := api.SubmitRequest{
				Name:        fmt.Sprintf("l%d", i),
				Model:       api.ModelSpec{Preset: "gpt-tiny"},
				GPUs:        1,
				DurationMin: 1e6,
			}
			t0 := time.Now()
			var resp api.SubmitResponse
			code, raw := c.do("POST", "/v1/jobs", req, &resp)
			lats[i] = time.Since(t0)
			if code != http.StatusCreated {
				errs[i] = fmt.Errorf("submit %s: %d %s", req.Name, code, raw)
				return
			}
			if code, raw := c.do("POST", "/v1/jobs/"+resp.ID+"/cancel", nil, nil); code != http.StatusOK {
				errs[i] = fmt.Errorf("cancel %s: %d %s", resp.ID, code, raw)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration { return lats[int(p*float64(n-1))] }
	clientLine := fmt.Sprintf("load: %d submitters in %s, client submit p50=%s p99=%s max=%s",
		n, wall.Round(time.Millisecond), q(0.50), q(0.99), lats[n-1])
	t.Log(clientLine)

	c := &client{base: "http://" + bound, token: "load-token", t: t}
	server := checkMetrics(t, c, int64(n), false)
	serverLine := "load: server-side " + fmtLatency(server)
	t.Log(serverLine)

	if f := os.Getenv("GITHUB_STEP_SUMMARY"); f != "" {
		summary := fmt.Sprintf("### e2e load smoke\n\n- %s\n- %s\n", clientLine, serverLine)
		fh, err := os.OpenFile(f, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			_, _ = fh.WriteString(summary)
			_ = fh.Close()
		}
	}

	// Non-gating budget: flag (don't fail) when the p99 drifts past
	// 2s — that would mean decision-plane serialization is pathological.
	if q(0.99) > 2*time.Second {
		t.Logf("WARNING: client p99 %s exceeds 2s budget (non-gating)", q(0.99))
	}

	res, err := svc.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if len(res.Jobs) != n {
		t.Fatalf("final result has %d jobs, want %d", len(res.Jobs), n)
	}
}
