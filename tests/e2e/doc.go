// Package e2e holds the end-to-end harness for the networked service
// split: it boots tenplex-coordd (in-process or as a subprocess)
// against real tenplex-store servers, drives a multi-job
// submit/scale/fail/cancel workload through the public HTTP API, and
// asserts final job states plus store-side bit-verification. A bounded
// load-test mode measures control-plane contention (p50/p99 submit
// latency) against the /v1/metrics export.
//
// The in-process mode and a small load test run under plain `go test`;
// the subprocess mode (built binaries, 4 store daemons + coordd,
// SIGINT shutdown, event-log artifact) is gated by
// TENPLEX_E2E_SUBPROCESS=1, and the load test scales to hundreds of
// submitters via TENPLEX_E2E_LOAD.
package e2e
