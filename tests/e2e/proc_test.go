package e2e

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tenplex/internal/store"
)

// TestE2ESubprocess is the full out-of-process pipeline: it builds the
// tenplex-store and tenplex-coordd binaries, boots four store daemons
// and the coordinator daemon as real OS processes wired together over
// localhost HTTP, drives the shared workload through the public API,
// then shuts the coordinator down with SIGINT and checks its exit
// summary. The coordinator's -event-log NDJSON file is left under
// TENPLEX_E2E_OUT (when set) as a CI artifact.
//
// Gated by TENPLEX_E2E_SUBPROCESS=1: it forks processes and builds
// binaries, which tier-1 `go test ./...` should not do implicitly.
func TestE2ESubprocess(t *testing.T) {
	if os.Getenv("TENPLEX_E2E_SUBPROCESS") != "1" {
		t.Skip("set TENPLEX_E2E_SUBPROCESS=1 to run the subprocess e2e pipeline")
	}

	bin := t.TempDir()
	buildBinary(t, bin, "tenplex-store")
	buildBinary(t, bin, "tenplex-coordd")

	outDir := os.Getenv("TENPLEX_E2E_OUT")
	if outDir == "" {
		outDir = t.TempDir()
	} else if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatalf("TENPLEX_E2E_OUT %s: %v", outDir, err)
	}
	eventLog := filepath.Join(outDir, "coordd-events.ndjson")

	// Four store daemons, one per device, on ephemeral ports.
	var storeURLs []string
	var clients []*store.Client
	for i := 0; i < 4; i++ {
		proc := startDaemon(t, filepath.Join(bin, "tenplex-store"), "-addr", "127.0.0.1:0")
		u := "http://" + proc.bound
		storeURLs = append(storeURLs, u)
		clients = append(clients, &store.Client{Base: u})
	}

	coordd := startDaemon(t, filepath.Join(bin, "tenplex-coordd"),
		"-addr", "127.0.0.1:0",
		"-devices", "4",
		"-stores", strings.Join(storeURLs, ","),
		"-wall-scale", "2ms",
		"-auth", "e2e:e2e-token",
		"-event-log", eventLog,
	)
	base := "http://" + coordd.bound
	waitHealthy(t, base, 15*time.Second)

	c := &client{base: base, token: "e2e-token", t: t}
	ids, canceled := driveWorkload(t, c)
	checkEvents(t, c, ids, canceled)
	lat := checkMetrics(t, c, 4, true)
	t.Logf("subprocess e2e: %s", fmtLatency(lat))
	checkStoreState(t, clients, ids, canceled)

	// Graceful shutdown: SIGINT, wait for the exit summary.
	if err := coordd.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal coordd: %v", err)
	}
	if err := coordd.cmd.Wait(); err != nil {
		t.Fatalf("coordd exit: %v\n%s", err, coordd.output())
	}
	out := coordd.output()
	if !strings.Contains(out, "stopped after") {
		t.Fatalf("coordd exit summary missing, got:\n%s", out)
	}
	t.Logf("coordd: %s", strings.TrimSpace(out))

	// The event log must hold the workload's timeline.
	data, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatalf("event log: %v", err)
	}
	for _, id := range ids {
		if !strings.Contains(string(data), fmt.Sprintf("%q", id)) {
			t.Fatalf("event log missing job %s:\n%s", id, data)
		}
	}
	t.Logf("event log: %d bytes at %s", len(data), eventLog)
}

func buildBinary(t *testing.T, dir, name string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
}

// daemon is a child process whose first stdout line announced its
// bound address ("... serving on http://<addr> ...").
type daemon struct {
	cmd   *exec.Cmd
	bound string
	mu    sync.Mutex
	buf   strings.Builder
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.buf.String()
}

func startDaemon(t *testing.T, path string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(path, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("%s stdout: %v", path, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", path, err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Signal(os.Interrupt)
			_ = cmd.Wait()
		}
	})

	// First line announces the bound address; keep draining after that
	// so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stdout)
	boundCh := make(chan string, 1)
	go func() {
		first := true
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.buf.WriteString(line + "\n")
			d.mu.Unlock()
			if first {
				if i := strings.Index(line, "http://"); i >= 0 {
					addr := strings.Fields(line[i+len("http://"):])[0]
					boundCh <- addr
					first = false
				}
			}
		}
		close(boundCh)
	}()
	select {
	case addr, ok := <-boundCh:
		if !ok || addr == "" {
			t.Fatalf("%s exited before announcing its address:\n%s", path, d.output())
		}
		d.bound = addr
	case <-time.After(20 * time.Second):
		t.Fatalf("%s did not announce its address in time", path)
	}
	return d
}

func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s/v1/healthz not healthy after %s (err=%v)", base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
