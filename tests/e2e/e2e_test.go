package e2e

import (
	"testing"
	"time"

	"tenplex/internal/api"
	"tenplex/internal/cluster"
	"tenplex/internal/coordinator"
	"tenplex/internal/obs"
	"tenplex/internal/store"
)

// startStores boots n tensor-store HTTP servers on ephemeral ports and
// returns one client per device.
func startStores(t *testing.T, n int) []*store.Client {
	t.Helper()
	clients := make([]*store.Client, n)
	for i := 0; i < n; i++ {
		srv := store.NewServer(store.NewMemFS())
		bound, closeFn, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		t.Cleanup(func() { _ = closeFn() })
		clients[i] = &store.Client{Base: "http://" + bound}
	}
	return clients
}

// TestE2EInProcess runs the full service split inside the test
// process: 4 tensor-store servers over HTTP, the coordinator service
// in wall-clock mode with its device stores pointed at them, and the
// REST API on an ephemeral port. The multi-job workload goes entirely
// through the public HTTP surface; every byte of job state moves over
// the wire. This mode runs in tier-1 (and under -race in CI).
func TestE2EInProcess(t *testing.T) {
	clients := startStores(t, 4)
	svc, err := coordinator.StartService(cluster.Cloud(4), coordinator.Options{
		WallScale: 2 * time.Millisecond,
		Placement: true,
		Metrics:   obs.NewRegistry(),
		Stores: func(job string, dev cluster.DeviceID) store.Access {
			return clients[int(dev)]
		},
	})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	srv, err := api.NewServer(api.Config{
		Service: svc,
		Tenants: []api.Tenant{{Name: "e2e", Token: "e2e-token"}},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	bound, closeFn, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = closeFn() })

	c := &client{base: "http://" + bound, token: "e2e-token", t: t}
	ids, canceled := driveWorkload(t, c)
	checkEvents(t, c, ids, canceled)
	lat := checkMetrics(t, c, 4, true)
	t.Logf("in-process e2e: %s", fmtLatency(lat))
	checkStoreState(t, clients, ids, canceled)

	res, err := svc.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	completed := 0
	for _, j := range res.Jobs {
		if j.Completed {
			completed++
		}
	}
	if completed < 3 {
		t.Fatalf("final result: %d jobs completed, want >= 3", completed)
	}
}
