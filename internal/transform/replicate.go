package transform

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/store"
)

// Replication (§5.3): to survive frequent failures, Tenplex can
// replicate the model state held in each device's Tensor Store to the
// stores of the next n workers, round-robin. If a worker fails and the
// state in its store is lost, the replicas on the following workers
// still hold it, so recovery avoids stale persisted checkpoints.

// replicaPath is where device d's partition is mirrored on another
// worker's store.
func replicaPath(job string, d cluster.DeviceID, id core.TensorID) string {
	return fmt.Sprintf("/job/%s/replica/dev%d/%s", job, d, id)
}

// Replicate copies every device's partition of the PTC to the Tensor
// Stores of its next n workers (round-robin by worker index). It
// returns the bytes written. Stores are addressed by the first device
// of the target worker.
func Replicate(job string, ptc *core.PTC, topo *cluster.Topology,
	stores map[cluster.DeviceID]store.Access, n int) (int64, error) {
	if n < 1 || n >= topo.NumWorkers() {
		return 0, fmt.Errorf("transform: replication factor %d of %d workers", n, topo.NumWorkers())
	}
	var written int64
	for _, d := range ptc.Devices {
		src, ok := stores[d]
		if !ok {
			return written, fmt.Errorf("transform: no store for device %d", d)
		}
		home := topo.WorkerOf(d)
		for _, s := range ptc.Place[d] {
			t, err := src.Query(ModelPath(job, d, s.Tensor), nil)
			if err != nil {
				return written, fmt.Errorf("transform: replicate read %q: %w", s.Tensor, err)
			}
			for k := 1; k <= n; k++ {
				w := topo.Workers[(home+k)%topo.NumWorkers()]
				dstDev := w.Devices[0]
				dst, ok := stores[dstDev]
				if !ok {
					return written, fmt.Errorf("transform: no store for replica worker %d", w.ID)
				}
				if err := dst.Upload(replicaPath(job, d, s.Tensor), t); err != nil {
					return written, fmt.Errorf("transform: replicate write: %w", err)
				}
				written += int64(t.NumBytes())
			}
		}
	}
	return written, nil
}

// RestoreFromReplicas rebuilds the model partition of a lost device
// into the store of a replacement device, reading the round-robin
// replicas written by Replicate. The PTC is the placement the lost
// device had.
func RestoreFromReplicas(job string, ptc *core.PTC, topo *cluster.Topology,
	stores map[cluster.DeviceID]store.Access, lost, replacement cluster.DeviceID, n int) error {
	dst, ok := stores[replacement]
	if !ok {
		return fmt.Errorf("transform: no store for replacement device %d", replacement)
	}
	home := topo.WorkerOf(lost)
	for _, s := range ptc.Place[lost] {
		var restored bool
		for k := 1; k <= n && !restored; k++ {
			w := topo.Workers[(home+k)%topo.NumWorkers()]
			replDev := w.Devices[0]
			repl, ok := stores[replDev]
			if !ok {
				continue
			}
			t, err := repl.Query(replicaPath(job, lost, s.Tensor), nil)
			if err != nil {
				continue // this replica may be lost too
			}
			if err := dst.Upload(ModelPath(job, replacement, s.Tensor), t); err != nil {
				return fmt.Errorf("transform: restore write: %w", err)
			}
			restored = true
		}
		if !restored {
			return fmt.Errorf("transform: no surviving replica of %q (device %d)", s.Tensor, lost)
		}
	}
	return nil
}
