package transform

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/store"
)

// The paper runs one State Transformer instance per resource (§5.1);
// each instance executes the subset of the reconfiguration plan whose
// destinations it owns, fetching remote ranges from peer Tensor Stores.
// ApplyDistributed reproduces that deployment shape: one goroutine per
// worker, each driving its own Transformer over only its devices, with
// a global barrier before the commit.

// planFor returns the sub-plan whose assignments target the given
// devices. The sub-plan shares From/To so validation still sees the
// full PTCs.
func planFor(plan *core.Plan, devices map[cluster.DeviceID]bool) *core.Plan {
	sub := &core.Plan{From: plan.From, To: plan.To}
	for _, a := range plan.Assignments {
		if devices[a.Device] {
			sub.Assignments = append(sub.Assignments, a)
		}
	}
	return sub
}

// ApplyDistributed executes the plan with one State Transformer per
// worker of the topology, in parallel, then commits once every worker
// has staged its partitions. It is semantically identical to a single
// Transformer.Apply; the split exists to mirror (and test) the
// distributed execution model.
func ApplyDistributed(job string, plan *core.Plan, topo *cluster.Topology,
	stores map[cluster.DeviceID]store.Access, storage StorageReader) (Stats, error) {
	return ApplyDistributedPipeline(job, plan, topo, stores, storage, Streamed)
}

// ApplyDistributedPipeline is ApplyDistributed with an explicit data
// path, letting benchmarks compare the streamed pipeline against the
// materialized reference under the distributed execution shape.
func ApplyDistributedPipeline(job string, plan *core.Plan, topo *cluster.Topology,
	stores map[cluster.DeviceID]store.Access, storage StorageReader, pipeline Pipeline) (Stats, error) {
	return ApplyDistributedOpts(job, plan, topo, stores, storage, DistOptions{Pipeline: pipeline})
}

// DistOptions configures ApplyDistributedOpts.
type DistOptions struct {
	// Pipeline selects the data path (zero value: streamed).
	Pipeline Pipeline
	// NoBatch disables the multi-range batch protocol even against
	// batch-capable stores, forcing per-range QueryInto fetches; the
	// datapath benchmarks use it to measure the protocol's gain.
	NoBatch bool
}

// ApplyDistributedOpts is the fully-configurable distributed apply.
func ApplyDistributedOpts(job string, plan *core.Plan, topo *cluster.Topology,
	stores map[cluster.DeviceID]store.Access, storage StorageReader, opts DistOptions) (Stats, error) {
	if err := plan.Validate(); err != nil {
		return Stats{}, fmt.Errorf("transform: invalid plan: %w", err)
	}

	// Partition destination devices by worker.
	byWorker := map[int]map[cluster.DeviceID]bool{}
	for _, d := range plan.To.Devices {
		w := topo.WorkerOf(d)
		if byWorker[w] == nil {
			byWorker[w] = map[cluster.DeviceID]bool{}
		}
		byWorker[w][d] = true
	}

	var (
		mu    sync.Mutex
		total Stats
		errs  []error
		wg    sync.WaitGroup
	)
	for w, devs := range byWorker {
		wg.Add(1)
		go func(w int, devs map[cluster.DeviceID]bool) {
			defer wg.Done()
			tr := &Transformer{Job: job, Stores: stores, Storage: storage,
				Pipeline: opts.Pipeline, NoBatch: opts.NoBatch}
			sub := planFor(plan, devs)
			st, err := tr.applyNoCommit(sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("worker %d: %w", w, err))
				return
			}
			total.Assignments += st.Assignments
			total.Noops += st.Noops
			total.merge(st)
		}(w, devs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Remove partial staging everywhere before reporting failure.
		tr := &Transformer{Job: job, Stores: stores}
		tr.cleanupStaging(context.Background(), plan)
		return total, fmt.Errorf("transform: distributed apply: %w", errors.Join(errs...))
	}

	// Global barrier reached: every worker staged its partitions.
	tr := &Transformer{Job: job, Stores: stores}
	if err := tr.commit(context.Background(), plan); err != nil {
		return total, err
	}
	return total, nil
}

// applyNoCommit stages every assignment of the plan without swapping it
// live; used by the per-worker execution path.
func (tr *Transformer) applyNoCommit(plan *core.Plan) (Stats, error) {
	return tr.applyNoCommitCtx(context.Background(), plan)
}

// applyNoCommitCtx stages the plan without committing. Against
// batch-capable stores it rides the same batched staging path as
// ApplyContext; otherwise assignments run sequentially (the per-worker
// sub-plans already execute in parallel across workers).
func (tr *Transformer) applyNoCommitCtx(ctx context.Context, plan *core.Plan) (Stats, error) {
	var st Stats
	if err := tr.checkOneRegionPerTensor(plan); err != nil {
		return st, err
	}
	for _, a := range plan.Assignments {
		if _, ok := tr.Stores[a.Device]; !ok {
			return st, fmt.Errorf("transform: no store for destination device %d", a.Device)
		}
	}
	if tr.useBatch() {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		st, errs := tr.stageBatched(ctx, cancel, plan)
		if len(errs) == 0 && ctx.Err() != nil {
			errs = append(errs, ctx.Err())
		}
		if len(errs) > 0 {
			sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
			return st, errs[0]
		}
		return st, nil
	}
	for _, a := range plan.Assignments {
		s, err := tr.applyAssignment(ctx, plan, a)
		if err != nil {
			return st, err
		}
		st.Assignments++
		if a.IsNoop() {
			st.Noops++
		}
		st.merge(s)
	}
	return st, nil
}
