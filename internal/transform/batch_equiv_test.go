package transform

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"tenplex/internal/chaos"
	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// restStores spins up one loopback Tensor Store server per device and
// returns REST clients for them, a counter of /batch requests seen
// across all servers, and a shutdown func.
func restStores(devs cluster.Allocation) (map[cluster.DeviceID]store.Access, *atomic.Int64, func()) {
	stores := map[cluster.DeviceID]store.Access{}
	var batches atomic.Int64
	var servers []*httptest.Server
	for _, d := range devs {
		inner := store.NewServer(store.NewMemFS())
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/batch" {
				batches.Add(1)
			}
			inner.ServeHTTP(w, r)
		}))
		servers = append(servers, hs)
		stores[d] = &store.Client{Base: hs.URL, HTTP: hs.Client()}
	}
	return stores, &batches, func() {
		for _, hs := range servers {
			hs.Close()
		}
	}
}

// TestApplyBatchedEquivalenceOverREST: against real wire stores, the
// batched protocol, the per-range protocol (NoBatch) and the retained
// materialized pipeline must all land byte-identical final state — and
// the batch path must actually be the one moving the bytes when it is
// enabled.
func TestApplyBatchedEquivalenceOverREST(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	cases := []struct {
		from, to parallel.Config
		nf, nt   int
	}{
		{parallel.Config{TP: 2, PP: 1, DP: 1}, parallel.Config{TP: 4, PP: 1, DP: 1}, 2, 4},
		{parallel.Config{TP: 4, PP: 1, DP: 1}, parallel.Config{TP: 1, PP: 1, DP: 4}, 4, 4},
		{parallel.Config{TP: 2, PP: 1, DP: 2}, parallel.Config{TP: 2, PP: 2, DP: 1}, 4, 4},
	}
	const job = "beqv"
	for ci, c := range cases {
		from := buildPTC(t, m, c.from, alloc(c.nf))
		to := buildPTC(t, m, c.to, alloc(c.nt))
		golden := goldenState(from)
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n := c.nf
		if c.nt > n {
			n = c.nt
		}
		var closers []func()
		run := func(p Pipeline, noBatch bool) (map[cluster.DeviceID]store.Access, int64) {
			stores, batches, done := restStores(alloc(n))
			closers = append(closers, done)
			if err := LoadPTC(job, from, stores, golden); err != nil {
				t.Fatal(err)
			}
			tr := &Transformer{Job: job, Stores: stores, Pipeline: p, NoBatch: noBatch, Parallelism: 4}
			if _, err := tr.Apply(plan); err != nil {
				t.Fatalf("case %d pipeline %d noBatch %v: %v", ci, p, noBatch, err)
			}
			return stores, batches.Load()
		}
		bStores, bBatches := run(Streamed, false)
		pStores, pBatches := run(Streamed, true)
		mStores, mBatches := run(Materialized, false)
		if bBatches == 0 {
			t.Fatalf("case %d: batched run issued no /batch requests", ci)
		}
		if pBatches != 0 || mBatches != 0 {
			t.Fatalf("case %d: disabled paths issued /batch requests (per-range %d, materialized %d)",
				ci, pBatches, mBatches)
		}
		for _, d := range to.Devices {
			for _, s := range to.Place[d] {
				want := golden[s.Tensor].Slice(s.Region)
				for which, stores := range map[string]map[cluster.DeviceID]store.Access{
					"batched": bStores, "per-range": pStores, "materialized": mStores} {
					got, err := stores[d].Query(ModelPath(job, d, s.Tensor), nil)
					if err != nil {
						t.Fatalf("case %d: %s dev %d missing %s: %v", ci, which, d, s.Tensor, err)
					}
					if !got.Equal(want) {
						t.Fatalf("case %d: %s dev %d wrong bytes for %s%v", ci, which, d, s.Tensor, s.Region)
					}
				}
			}
		}
		for _, done := range closers {
			done()
		}
	}
}

// TestApplyBatchedChaosPreservesOldState drives the batched staging
// path under the deterministic chaos injector: every armed attempt must
// fail with an injected fault without touching the live model tree, and
// a disarmed retry must complete and commit.
func TestApplyBatchedChaosPreservesOldState(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	const job = "bchaos"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	golden := goldenState(from)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		in := chaos.NewInjector(chaos.Plan{Seed: seed, StoreFaultRate: 0.1})
		plain := localStores(alloc(4))
		if err := LoadPTC(job, from, plain, golden); err != nil {
			t.Fatal(err)
		}
		stores := map[cluster.DeviceID]store.Access{}
		for d, acc := range plain {
			stores[d] = in.WrapAccess(job, fmt.Sprint(d), batchableLocal{acc})
		}
		tr := &Transformer{Job: job, Stores: stores, Pipeline: Streamed, Parallelism: 4}
		in.BeginAttempt(job, uint64(seed))
		_, err := tr.Apply(plan)
		if err == nil {
			t.Fatalf("seed %d: Apply survived 10%% store fault rate", seed)
		}
		if !errors.Is(err, chaos.Err) {
			t.Fatalf("seed %d: failure %v is not an injected fault", seed, err)
		}
		in.EndAttempt(job)
		// The failed attempt must not have disturbed the live model tree.
		verifyAgainstGolden(t, job, from, plain, golden)
		// Disarmed retry commits.
		if _, err := tr.Apply(plan); err != nil {
			t.Fatalf("seed %d: disarmed retry failed: %v", seed, err)
		}
		verifyAgainstGolden(t, job, to, plain, golden)
	}
}

// TestChaosForwardsBatchOp pins the injector's batch-operation coverage
// deterministically: an armed wrapper injects a fault on BatchQueryInto
// itself (for some seed — at a 90% rate, 20 seeds cannot all pass), and
// a disarmed wrapper forwards the batch untouched.
func TestChaosForwardsBatchOp(t *testing.T) {
	fs := store.NewMemFS()
	src := tensor.New(tensor.Float32, 4, 4)
	src.FillSeq(0, 1)
	if err := fs.PutTensor("/t", src); err != nil {
		t.Fatal(err)
	}
	acc := batchableLocal{store.Local{FS: fs}}
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		in := chaos.NewInjector(chaos.Plan{Seed: seed, StoreFaultRate: 0.9})
		w := in.WrapAccess("j", "dev0", acc).(store.BatchQuerier)
		in.BeginAttempt("j", 1)
		dst := tensor.New(tensor.Float32, 4, 4)
		_, err := w.BatchQueryInto(context.Background(), []store.BatchEntry{{Path: "/t", Dst: dst}})
		in.EndAttempt("j")
		if err == nil {
			continue
		}
		if !errors.Is(err, chaos.Err) || !strings.Contains(err.Error(), "batch") {
			t.Fatalf("seed %d: batch fault = %v, want injected batch-op fault", seed, err)
		}
		found = true
	}
	if !found {
		t.Fatal("no seed injected a fault on the batch op; chaos does not cover BatchQueryInto")
	}
	// Never-armed wrapper: pass-through with correct bytes.
	in := chaos.NewInjector(chaos.Plan{Seed: 1, StoreFaultRate: 0.9})
	w := in.WrapAccess("j", "dev0", acc).(store.BatchQuerier)
	dst := tensor.New(tensor.Float32, 4, 4)
	if _, err := w.BatchQueryInto(context.Background(), []store.BatchEntry{{Path: "/t", Dst: dst}}); err != nil {
		t.Fatalf("disarmed batch failed: %v", err)
	}
	if !dst.Equal(src) {
		t.Fatal("disarmed batch landed wrong bytes")
	}
}

// batchableLocal gives a Local store a BatchQuerier face by serving each
// entry per-range — enough for the chaos wrapper to forward the batch op
// without standing up wire servers in every seed iteration.
type batchableLocal struct{ store.Access }

func (b batchableLocal) BatchQueryInto(ctx context.Context, entries []store.BatchEntry) (store.BatchStats, error) {
	st := store.BatchStats{Entries: len(entries)}
	for _, e := range entries {
		n, err := b.Access.QueryInto(e.Path, e.Reg, e.Dst, e.At)
		if err != nil {
			return st, err
		}
		st.Bytes += n
		st.Frames++
	}
	return st, nil
}
