package transform

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// countingFlaky wraps flakyAccess and counts read/write operations so
// tests can observe how much work ran before an apply was abandoned.
type countingFlaky struct {
	flakyAccess
	ops atomic.Int64
}

func (c *countingFlaky) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	c.ops.Add(1)
	return c.flakyAccess.Query(path, reg)
}

func (c *countingFlaky) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	c.ops.Add(1)
	return c.flakyAccess.QueryInto(path, reg, dst, at)
}

func (c *countingFlaky) Upload(path string, t *tensor.Tensor) error {
	c.ops.Add(1)
	return c.flakyAccess.Upload(path, t)
}

func contextPlanFixture(t *testing.T) (*core.Plan, map[int]*countingFlaky, map[cluster.DeviceID]store.Access) {
	t.Helper()
	m := model.GPTCustom(4, 16, 2, 64, 8)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	golden := goldenState(from)
	plain := localStores(alloc(4))
	if err := LoadPTC(job, from, plain, golden); err != nil {
		t.Fatal(err)
	}
	wrapped := map[int]*countingFlaky{}
	stores := localStores(alloc(4))
	for d, acc := range plain {
		cf := &countingFlaky{}
		cf.inner = acc
		wrapped[int(d)] = cf
		stores[d] = cf
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return plan, wrapped, stores
}

// The first fatal error cancels the apply: with a serial pool, queued
// assignments after the failing one must never start.
func TestApplyContextAbandonsWorkOnFirstError(t *testing.T) {
	plan, wrapped, stores := contextPlanFixture(t)
	for _, cf := range wrapped {
		cf.failEvery = 1 // every operation fails
	}
	tr := &Transformer{Job: "job0", Stores: stores, Parallelism: 1}
	if _, err := tr.Apply(plan); err == nil {
		t.Fatal("Apply succeeded despite injected faults")
	}
	var ops int64
	for _, cf := range wrapped {
		ops += cf.ops.Load()
	}
	if ops >= int64(len(plan.Assignments)) {
		t.Fatalf("apply ran %d store ops across %d assignments; queued work was not abandoned after the first error",
			ops, len(plan.Assignments))
	}
}

// A context canceled before the apply starts stops it before any store
// operation runs.
func TestApplyContextPreCanceled(t *testing.T) {
	plan, wrapped, stores := contextPlanFixture(t)
	tr := &Transformer{Job: "job0", Stores: stores, Parallelism: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.ApplyContext(ctx, plan)
	if err == nil {
		t.Fatal("ApplyContext with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	for d, cf := range wrapped {
		if n := cf.ops.Load(); n != 0 {
			t.Fatalf("device %d ran %d ops under a pre-canceled context", d, n)
		}
	}
}

// blockingAccess implements the optional context-aware read interface
// and parks in-flight fetches until their context dies, proving the
// transformer routes cancellation into the store layer.
type blockingAccess struct {
	store.Access
	blocked atomic.Int64
}

func (b *blockingAccess) QueryIntoContext(ctx context.Context, path string, reg tensor.Region,
	dst *tensor.Tensor, at tensor.Region) (int64, error) {
	b.blocked.Add(1)
	<-ctx.Done()
	return 0, fmt.Errorf("fetch %s: %w", path, ctx.Err())
}

func TestApplyContextInterruptsInFlightFetch(t *testing.T) {
	plan, _, stores := contextPlanFixture(t)
	blocking := map[int]*blockingAccess{}
	for d, acc := range stores {
		ba := &blockingAccess{Access: acc}
		blocking[int(d)] = ba
		stores[d] = ba
	}
	tr := &Transformer{Job: "job0", Stores: stores, Parallelism: 4}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tr.ApplyContext(ctx, plan)
		done <- err
	}()
	// Give fetches time to park inside the store, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ApplyContext succeeded with every fetch parked")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ApplyContext did not return after cancellation; in-flight fetches were not interrupted")
	}
}
