package transform

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
)

// The streamed zero-copy pipeline is an optimization of the retained
// materialized reference pipeline, not a redesign: after Apply, every
// destination store must hold byte-identical state whichever pipeline
// executed the plan. These property tests pin that down over randomized
// grow / shrink / redeploy / fail-stop transitions, mirroring the
// planner equivalence methodology of internal/core.

// allocFrom returns n device IDs starting at off.
func allocFrom(off, n int) cluster.Allocation {
	out := make(cluster.Allocation, n)
	for i := range out {
		out[i] = cluster.DeviceID(off + i)
	}
	return out
}

func TestApplyEquivalenceRandomized(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8) // 6 layers incl. embeddings
	var cfgs []parallel.Config
	for _, n := range []int{1, 2, 4, 6, 8} {
		cfgs = append(cfgs, parallel.Enumerate(n, 8, 6)...)
	}
	trials := 0
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			cf := cfgs[rng.Intn(len(cfgs))]
			ct := cfgs[rng.Intn(len(cfgs))]
			offF, offT := rng.Intn(3), rng.Intn(3)
			from, err := parallel.BuildPTC(m, cf, allocFrom(offF, cf.WorldSize()))
			if err != nil {
				t.Fatal(err)
			}
			to, err := parallel.BuildPTC(m, ct, allocFrom(offT, ct.WorldSize()))
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("seed %d trial %d %v@%d -> %v@%d", seed, trial, cf, offF, ct, offT)

			// Healthy transition.
			plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			runEquivalenceTrial(t, label, m, from, to, plan, nil)
			trials++

			// Fail-stop transition: kill a strict subset of source
			// devices and recover with StorageFallback, which mixes
			// storage range-reads into the plan.
			nFail := 1 + rng.Intn(len(from.Devices))
			if nFail >= len(from.Devices) {
				nFail = len(from.Devices) - 1
			}
			if nFail > 0 {
				perm := rng.Perm(len(from.Devices))
				var failed []cluster.DeviceID
				for _, i := range perm[:nFail] {
					failed = append(failed, from.Devices[i])
				}
				degraded := from.WithoutDevices(failed...)
				fplan, err := core.GeneratePlan(degraded, to, core.PlanOptions{StorageFallback: true})
				if err != nil {
					t.Fatalf("%s failstop: %v", label, err)
				}
				runEquivalenceTrial(t, label+" failstop", m, degraded, to, fplan, failed)
				trials++
			}
		}
	}
	if trials < 100 {
		t.Fatalf("only %d randomized scenarios, want >= 100", trials)
	}
}

// runEquivalenceTrial seeds two independent store sets with identical
// golden state, applies the plan through the streamed and materialized
// pipelines, and requires identical outcomes and identical resulting
// bytes on every device that exists in either PTC.
func runEquivalenceTrial(t *testing.T, label string, m *model.Model,
	from, to *core.PTC, plan *core.Plan, failed []cluster.DeviceID) {
	t.Helper()
	const job = "eqv"
	maxDev := cluster.DeviceID(0)
	for _, d := range append(append([]cluster.DeviceID{}, from.Devices...), to.Devices...) {
		if d > maxDev {
			maxDev = d
		}
	}
	devs := alloc(int(maxDev) + 1)
	golden := goldenState(from)
	storage := memStorage(golden)

	run := func(p Pipeline) (map[cluster.DeviceID]store.Access, Stats, error) {
		stores := localStores(devs)
		if err := LoadPTC(job, from, stores, golden); err != nil {
			t.Fatalf("%s: load: %v", label, err)
		}
		tr := &Transformer{Job: job, Stores: stores, Storage: storage, Pipeline: p, Parallelism: 4}
		st, err := tr.Apply(plan)
		return stores, st, err
	}
	sStores, sStats, sErr := run(Streamed)
	mStores, _, mErr := run(Materialized)
	if (sErr == nil) != (mErr == nil) {
		t.Fatalf("%s: outcome mismatch: streamed=%v materialized=%v", label, sErr, mErr)
	}
	if sErr != nil {
		return
	}
	// The streamed path must not copy more than it fetched (local
	// stores retain uploads by reference); memStorage lacks the
	// scatter interface, so storage bytes may legitimately cost one
	// extra copy.
	if sStats.BytesCopied > sStats.PlanBytes()+sStats.StorageBytes {
		t.Fatalf("%s: streamed copied %d bytes for %d plan bytes (%d from storage)",
			label, sStats.BytesCopied, sStats.PlanBytes(), sStats.StorageBytes)
	}
	// Byte-identical post-state everywhere: destination partitions,
	// departed devices, and the golden ground truth.
	for _, d := range to.Devices {
		for _, s := range to.Place[d] {
			want := golden[s.Tensor].Slice(s.Region)
			for which, stores := range map[string]map[cluster.DeviceID]store.Access{"streamed": sStores, "materialized": mStores} {
				got, err := stores[d].Query(ModelPath(job, d, s.Tensor), nil)
				if err != nil {
					t.Fatalf("%s: %s dev %d missing %s: %v", label, which, d, s.Tensor, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s: %s dev %d wrong bytes for %s%v", label, which, d, s.Tensor, s.Region)
				}
			}
		}
	}
	for _, d := range from.Devices {
		inTo := false
		for _, td := range to.Devices {
			if td == d {
				inTo = true
			}
		}
		if inTo {
			continue
		}
		_, errS := sStores[d].List(modelRoot(job))
		_, errM := mStores[d].List(modelRoot(job))
		if (errS == nil) != (errM == nil) {
			t.Fatalf("%s: departed device %d cleanup differs (streamed err=%v, materialized err=%v)", label, d, errS, errM)
		}
	}
}

// TestApplyEquivalenceOverREST repeats a handful of transitions with
// half the stores behind real HTTP servers, proving the wire-streaming
// path (range reads served from the stored buffer, uploads decoded
// incrementally) is byte-identical too.
func TestApplyEquivalenceOverREST(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	cases := []struct {
		from, to parallel.Config
		nf, nt   int
	}{
		{parallel.Config{TP: 2, PP: 1, DP: 1}, parallel.Config{TP: 4, PP: 1, DP: 1}, 2, 4},
		{parallel.Config{TP: 1, PP: 2, DP: 1}, parallel.Config{TP: 2, PP: 2, DP: 1}, 2, 4},
		{parallel.Config{TP: 2, PP: 1, DP: 2}, parallel.Config{TP: 2, PP: 1, DP: 1}, 4, 2},
	}
	const job = "eqv"
	for ci, c := range cases {
		from := buildPTC(t, m, c.from, alloc(c.nf))
		to := buildPTC(t, m, c.to, alloc(c.nt))
		golden := goldenState(from)
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n := c.nf
		if c.nt > n {
			n = c.nt
		}
		var servers []*httptest.Server
		run := func(p Pipeline) map[cluster.DeviceID]store.Access {
			stores := map[cluster.DeviceID]store.Access{}
			for d := 0; d < n; d++ {
				fs := store.NewMemFS()
				if d%2 == 0 {
					stores[cluster.DeviceID(d)] = store.Local{FS: fs}
					continue
				}
				hs := httptest.NewServer(store.NewServer(fs))
				servers = append(servers, hs)
				stores[cluster.DeviceID(d)] = &store.Client{Base: hs.URL, HTTP: hs.Client()}
			}
			if err := LoadPTC(job, from, stores, golden); err != nil {
				t.Fatal(err)
			}
			tr := &Transformer{Job: job, Stores: stores, Pipeline: p}
			if _, err := tr.Apply(plan); err != nil {
				t.Fatalf("case %d pipeline %d: %v", ci, p, err)
			}
			return stores
		}
		sStores := run(Streamed)
		mStores := run(Materialized)
		for _, d := range to.Devices {
			for _, s := range to.Place[d] {
				want := golden[s.Tensor].Slice(s.Region)
				sGot, err := sStores[d].Query(ModelPath(job, d, s.Tensor), nil)
				if err != nil {
					t.Fatalf("case %d: streamed dev %d: %v", ci, d, err)
				}
				mGot, err := mStores[d].Query(ModelPath(job, d, s.Tensor), nil)
				if err != nil {
					t.Fatalf("case %d: materialized dev %d: %v", ci, d, err)
				}
				if !sGot.Equal(want) || !mGot.Equal(want) {
					t.Fatalf("case %d: dev %d bytes diverge for %s%v", ci, d, s.Tensor, s.Region)
				}
			}
		}
		for _, hs := range servers {
			hs.Close()
		}
	}
}
