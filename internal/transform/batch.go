package transform

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/obs"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// The batched staging path. Instead of one store round trip per plan
// range, every assignment's device fetches are grouped by SOURCE store
// and issued as one store.BatchQueryInto per source: the server
// coalesces adjacent ranges and streams one frame sequence, which
// scatter-writes straight into the (already allocated) destination
// buffers. Staging then proceeds in three passes:
//
//  1. per-assignment prep (parallel): noop pointer staging, destination
//     allocation, immediate fetches for anything unbatchable (Local
//     stores, storage fallback, overlapping targets), and deferral of
//     the rest;
//  2. per-source batches (parallel across sources);
//  3. staging uploads (parallel across assignments).
//
// Local stores never implement BatchQuerier, so in-process setups —
// including the coordinator's deterministic sims and their golden obs
// traces — take the classic per-assignment path unchanged.

// useBatch reports whether the batched staging path applies: streamed
// pipeline, batching not disabled, and at least one batch-capable
// store. Per-fetch capability is still checked during prep, so mixed
// store sets batch what they can and fall back for the rest.
func (tr *Transformer) useBatch() bool {
	if tr.Pipeline != Streamed || tr.NoBatch {
		return false
	}
	for _, acc := range tr.Stores {
		if _, ok := acc.(store.BatchQuerier); ok {
			return true
		}
	}
	return false
}

// batchPrep is one assignment moving through the batched staging path.
type batchPrep struct {
	a      core.Assignment
	out    *tensor.Tensor // nil when the noop fast path staged by pointer
	st     Stats
	start  time.Time
	err    error
	staged bool
}

// batchFetch is one plan range deferred to a per-source batch: entry
// scatter-writes into p's destination buffer, and bytes is attributed
// to p's stats when the batch lands.
type batchFetch struct {
	src   cluster.DeviceID
	p     *batchPrep
	entry store.BatchEntry
	bytes int64
}

// stageBatched stages every assignment of the plan through the batched
// path; the first fatal error cancels the rest. Counter totals match
// the per-assignment path: only fully staged assignments contribute.
func (tr *Transformer) stageBatched(ctx context.Context, cancel context.CancelFunc, plan *core.Plan) (Stats, []error) {
	par := tr.Parallelism
	if par <= 0 {
		par = 8
	}
	preps := make([]batchPrep, len(plan.Assignments))
	var (
		mu       sync.Mutex
		deferred []batchFetch
		errs     []error
	)
	fail := func(err error) {
		mu.Lock()
		if ctx.Err() == nil || !errors.Is(err, ctx.Err()) {
			errs = append(errs, err)
		}
		mu.Unlock()
		cancel()
	}

	runBounded(ctx, par, len(plan.Assignments), func(i int) {
		p := &preps[i]
		p.a = plan.Assignments[i]
		p.start = time.Now()
		local, err := tr.prepAssignment(ctx, plan, p)
		if err != nil {
			p.err = err
			fail(err)
			return
		}
		if len(local) > 0 {
			mu.Lock()
			deferred = append(deferred, local...)
			mu.Unlock()
		}
	})

	groups := map[cluster.DeviceID][]batchFetch{}
	for _, bf := range deferred {
		groups[bf.src] = append(groups[bf.src], bf)
	}
	srcs := make([]cluster.DeviceID, 0, len(groups))
	for d := range groups {
		srcs = append(srcs, d)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	runBounded(ctx, par, len(srcs), func(gi int) {
		src := srcs[gi]
		group := groups[src]
		// Order entries by path then source range: that is the sequence
		// the server's coalescer sees, so adjacent ranges of one tensor
		// end up in consecutive entries and merge into single frames. It
		// also makes the request deterministic despite the concurrent
		// prep phase.
		sort.Slice(group, func(i, j int) bool {
			if group[i].entry.Path != group[j].entry.Path {
				return group[i].entry.Path < group[j].entry.Path
			}
			return regionLess(group[i].entry.Reg, group[j].entry.Reg)
		})
		entries := make([]store.BatchEntry, len(group))
		for i, bf := range group {
			entries[i] = bf.entry
		}
		bq := tr.Stores[src].(store.BatchQuerier)
		if _, err := bq.BatchQueryInto(ctx, entries); err != nil {
			fail(fmt.Errorf("transform: batch fetch from dev %d: %w", src, err))
			return
		}
		mu.Lock()
		for _, bf := range group {
			bf.p.st.BytesCopied += bf.bytes
			if src == bf.p.a.Device {
				bf.p.st.LocalBytes += bf.bytes
			} else {
				bf.p.st.PeerBytes += bf.bytes
			}
		}
		mu.Unlock()
	})

	runBounded(ctx, par, len(preps), func(i int) {
		p := &preps[i]
		if p.err != nil || p.out == nil {
			return
		}
		dst := tr.Stores[p.a.Device]
		if err := upload(ctx, dst, stagingPath(tr.Job, p.a.Device, p.a.Tensor), p.out); err != nil {
			p.err = fmt.Errorf("transform: stage %s on dev %d: %w", p.a.Tensor, p.a.Device, err)
			fail(p.err)
			return
		}
		if uploadCopies(dst) {
			p.st.BytesCopied += int64(p.out.NumBytes())
		}
		p.staged = true
	})

	var st Stats
	for i := range preps {
		p := &preps[i]
		tr.recordBatchSpan(ctx, p)
		if !p.staged {
			continue
		}
		st.Assignments++
		if p.a.IsNoop() {
			st.Noops++
		}
		st.merge(p.st)
	}
	return st, errs
}

// prepAssignment stages a noop by pointer or allocates the destination
// and routes every plan range: ranges read from batch-capable device
// stores with pairwise-disjoint targets are returned for the batch
// phase, everything else fetches immediately.
func (tr *Transformer) prepAssignment(ctx context.Context, plan *core.Plan, p *batchPrep) ([]batchFetch, error) {
	a := p.a
	meta := plan.To.Tensors[a.Tensor]
	dst := tr.Stores[a.Device]

	if a.IsNoop() && !uploadCopies(dst) {
		if t, err := dst.Query(ModelPath(tr.Job, a.Device, a.Tensor), nil); err == nil {
			if err := upload(ctx, dst, stagingPath(tr.Job, a.Device, a.Tensor), t); err != nil {
				return nil, fmt.Errorf("transform: stage %s on dev %d: %w", a.Tensor, a.Device, err)
			}
			p.st.LocalBytes += a.Region.NumBytes(meta.DType)
			p.staged = true
			return nil, nil
		}
		// The sub-tensor is unexpectedly absent; fall through so the
		// general path reports the fetch error.
	}

	out := tensor.NewFromRegion(meta.DType, a.Region)
	p.out = out
	p.st.AllocBytes += int64(out.NumBytes())

	covered := 0
	for i := range a.Fetch {
		covered += a.Fetch[i].Want.NumElems()
	}
	if covered < a.Region.NumElems() {
		return nil, fmt.Errorf("transform: assemble %s%v: fetches cover %d of %d elements",
			a.Tensor, a.Region, covered, a.Region.NumElems())
	}

	// Overlapping targets force the immediate sequential path: batches
	// from different sources scatter concurrently, and two writers for
	// one destination byte would race.
	batchable := disjointTargets(a.Fetch)
	var deferred []batchFetch
	for _, f := range a.Fetch {
		if batchable && f.Src.Kind == core.FromDevice {
			if src, ok := tr.Stores[f.Src.Device]; ok {
				if _, ok := src.(store.BatchQuerier); ok {
					target, local := fetchRegions(a, f)
					deferred = append(deferred, batchFetch{
						src: f.Src.Device,
						p:   p,
						entry: store.BatchEntry{
							Path: ModelPath(tr.Job, f.Src.Device, a.Tensor),
							Reg:  local,
							Dst:  out,
							At:   target,
						},
						bytes: f.Want.NumBytes(meta.DType),
					})
					continue
				}
			}
		}
		fs, err := tr.fetchInto(ctx, a, f, meta.DType, out)
		p.st.merge(fs)
		if err != nil {
			return nil, err
		}
	}
	return deferred, nil
}

// recordBatchSpan mirrors applyAssignment's per-assignment datapath
// span for the batched path. The recorded duration runs from prep start
// to staging end and so includes the shared batch wait; spans for
// assignments abandoned by cancellation are suppressed along with their
// errors, exactly as on the per-assignment path.
func (tr *Transformer) recordBatchSpan(ctx context.Context, p *batchPrep) {
	if !tr.Obs.Deep() {
		return
	}
	if p.err != nil && ctx.Err() != nil && errors.Is(p.err, ctx.Err()) {
		return
	}
	if p.err == nil && !p.staged {
		return // abandoned before staging: scheduling, not outcome
	}
	attrs := map[string]any{
		"tensor": string(p.a.Tensor),
		"device": int(p.a.Device),
	}
	if p.a.IsNoop() {
		attrs["noop"] = true
	}
	if b := p.st.PlanBytes(); b > 0 {
		attrs["bytes"] = b
	}
	if p.st.AllocBytes > 0 {
		attrs["alloc_bytes"] = p.st.AllocBytes
	}
	if p.err != nil {
		attrs["err"] = p.err.Error()
	}
	tr.Obs.Record(obs.SpanAssignment, obs.CatDatapath, time.Since(p.start).Nanoseconds(), attrs)
}

// fetchRegions computes a fetch's destination region inside the
// assignment's buffer and its source-local region inside the stored
// sub-tensor (Want translated by the respective origins), mirroring
// fetchInto's arithmetic.
func fetchRegions(a core.Assignment, f core.Fetch) (target, local tensor.Region) {
	rank := len(f.Want)
	regs := make(tensor.Region, 2*rank)
	target, local = regs[:rank:rank], regs[rank:]
	for i := range f.Want {
		target[i] = tensor.Range{Lo: f.Want[i].Lo - a.Region[i].Lo, Hi: f.Want[i].Hi - a.Region[i].Lo}
		local[i] = tensor.Range{Lo: f.Want[i].Lo - f.Src.Region[i].Lo, Hi: f.Want[i].Hi - f.Src.Region[i].Lo}
	}
	return target, local
}

// regionLess orders regions by their bounds, dimension-major.
func regionLess(a, b tensor.Region) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k].Lo != b[k].Lo {
			return a[k].Lo < b[k].Lo
		}
		if a[k].Hi != b[k].Hi {
			return a[k].Hi < b[k].Hi
		}
	}
	return len(a) < len(b)
}

// runBounded runs fn(0..n-1) on up to par goroutines, abandoning the
// remaining indices once ctx is canceled.
func runBounded(ctx context.Context, par, n int, fn func(int)) {
	if n == 0 {
		return
	}
	if par > n {
		par = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue
				}
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
}
