package transform

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// BenchmarkApplyTPReshard measures the full materialized pipeline:
// plan + parallel fetch + assemble + stage + commit for a TP 2->4
// re-shard of a reduced-scale GPT (real bytes through local stores).
func BenchmarkApplyTPReshard(b *testing.B) {
	m := model.GPTCustom(4, 128, 4, 512, 32) // ~1.1 MB of state
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	if err != nil {
		b.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	if err != nil {
		b.Fatal(err)
	}
	golden := goldenState(from)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(m.ParamBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stores := localStores(alloc(4))
		if err := LoadPTC("bench", from, stores, golden); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		tr := &Transformer{Job: "bench", Stores: stores}
		if _, err := tr.Apply(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyDistributed measures the per-worker execution path on
// the same workload.
func BenchmarkApplyDistributed(b *testing.B) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(4, 128, 4, 512, 32)
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 1}, alloc(4))
	if err != nil {
		b.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 2}, alloc(8))
	if err != nil {
		b.Fatal(err)
	}
	golden := goldenState(from)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(m.ParamBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stores := localStores(alloc(8))
		if err := LoadPTC("bench", from, stores, golden); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ApplyDistributed("bench", plan, topo, stores, nil); err != nil {
			b.Fatal(err)
		}
	}
}
