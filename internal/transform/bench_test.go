package transform

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// The datapath benchmarks run both pipelines on identical workloads:
// "streamed" is the production zero-copy path (one destination
// allocation per assignment, ranges fetched into their final offsets),
// "materialized" is the retained reference (fetch sub-tensors, then
// assemble). Each reports copy amplification (bytes physically copied
// per plan byte) as a custom metric, so `go test -bench` output doubles
// as the copy-accounting record.

func benchPipelines(b *testing.B, run func(b *testing.B, p Pipeline)) {
	b.Run("streamed", func(b *testing.B) { run(b, Streamed) })
	b.Run("materialized", func(b *testing.B) { run(b, Materialized) })
}

// BenchmarkApplyTPReshard measures the full pipeline: plan + parallel
// fetch + stage + commit for a TP 2->4 re-shard of a reduced-scale GPT
// (real bytes through local stores).
func BenchmarkApplyTPReshard(b *testing.B) {
	m := model.GPTCustom(4, 128, 4, 512, 32) // ~1.1 MB of state
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	if err != nil {
		b.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	if err != nil {
		b.Fatal(err)
	}
	golden := goldenState(from)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	benchPipelines(b, func(b *testing.B, p Pipeline) {
		b.SetBytes(m.ParamBytes())
		b.ReportAllocs()
		var last Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			stores := localStores(alloc(4))
			if err := LoadPTC("bench", from, stores, golden); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			tr := &Transformer{Job: "bench", Stores: stores, Pipeline: p}
			st, err := tr.Apply(plan)
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.ReportMetric(last.CopyAmplification(), "copy-amp")
		b.ReportMetric(float64(last.AllocBytes), "alloc-B/op")
	})
}

// BenchmarkApplyDistributed measures the per-worker execution path on
// the same workload.
func BenchmarkApplyDistributed(b *testing.B) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(4, 128, 4, 512, 32)
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 1}, alloc(4))
	if err != nil {
		b.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 2}, alloc(8))
	if err != nil {
		b.Fatal(err)
	}
	golden := goldenState(from)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		b.Fatal(err)
	}
	benchPipelines(b, func(b *testing.B, p Pipeline) {
		b.SetBytes(m.ParamBytes())
		b.ReportAllocs()
		var last Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			stores := localStores(alloc(8))
			if err := LoadPTC("bench", from, stores, golden); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st, err := ApplyDistributedPipeline("bench", plan, topo, stores, nil, p)
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.ReportMetric(last.CopyAmplification(), "copy-amp")
		b.ReportMetric(float64(last.AllocBytes), "alloc-B/op")
	})
}
