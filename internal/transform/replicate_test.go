package transform

import (
	"strings"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
)

func TestReplicateAndRestore(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	cfg := parallel.Config{TP: 2, PP: 2, DP: 1}
	// One device per worker so replicas land on distinct machines.
	a := cluster.Allocation{0, 4, 8, 12}
	ptc := buildPTC(t, m, cfg, a)
	stores := localStores(topo.FirstN(16))
	golden := goldenState(ptc)
	const job = "job0"
	if err := LoadPTC(job, ptc, stores, golden); err != nil {
		t.Fatal(err)
	}

	written, err := Replicate(job, ptc, topo, stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	if written != ptc.TotalPlacedBytes() {
		t.Fatalf("replicated %d bytes, want %d", written, ptc.TotalPlacedBytes())
	}

	// Worker 1 (device 4) dies; its store content is gone. Restore its
	// partition to device 5 from the replica on worker 2 (device 8).
	stores[4] = store.Local{FS: store.NewMemFS()} // simulate loss
	if err := RestoreFromReplicas(job, ptc, topo, stores, 4, 5, 1); err != nil {
		t.Fatal(err)
	}
	for _, s := range ptc.Place[4] {
		got, err := stores[5].Query(ModelPath(job, 5, s.Tensor), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(golden[s.Tensor].Slice(s.Region)) {
			t.Fatalf("restored %s differs", s.Tensor)
		}
	}
}

func TestReplicateMultipleCopies(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	a := cluster.Allocation{0, 4}
	ptc := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, a)
	stores := localStores(topo.FirstN(16))
	golden := goldenState(ptc)
	const job = "job0"
	if err := LoadPTC(job, ptc, stores, golden); err != nil {
		t.Fatal(err)
	}
	written, err := Replicate(job, ptc, topo, stores, 2)
	if err != nil {
		t.Fatal(err)
	}
	if written != 2*ptc.TotalPlacedBytes() {
		t.Fatalf("n=2 replicated %d bytes, want %d", written, 2*ptc.TotalPlacedBytes())
	}
	// Both the +1 and +2 workers lose their copies of device 0; the
	// restore falls back across the chain. Kill the first replica.
	// Device 0 lives on worker 0, replicas on workers 1 and 2.
	stores[4] = store.Local{FS: store.NewMemFS()}
	if err := RestoreFromReplicas(job, ptc, topo, stores, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// All replicas gone -> error.
	stores[8] = store.Local{FS: store.NewMemFS()}
	err = RestoreFromReplicas(job, ptc, topo, stores, 0, 2, 2)
	if err == nil || !strings.Contains(err.Error(), "no surviving replica") {
		t.Fatalf("expected no-replica error, got %v", err)
	}
}

func TestReplicateValidation(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	ptc := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, cluster.Allocation{0})
	stores := localStores(topo.FirstN(16))
	if _, err := Replicate("j", ptc, topo, stores, 0); err == nil {
		t.Fatal("replication factor 0 accepted")
	}
	if _, err := Replicate("j", ptc, topo, stores, 4); err == nil {
		t.Fatal("replication factor == workers accepted")
	}
	// State not loaded -> read error.
	if _, err := Replicate("j", ptc, topo, stores, 1); err == nil {
		t.Fatal("replicating missing state succeeded")
	}
}
