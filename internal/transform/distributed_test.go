package transform

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

func TestApplyDistributedMatchesSingle(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(6, 32, 4, 128, 16)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 4, DP: 2}, alloc(16))
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 2, DP: 2}, alloc(8))
	golden := goldenState(from)

	// Single-transformer reference.
	single := localStores(alloc(16))
	if err := LoadPTC(job, from, single, golden); err != nil {
		t.Fatal(err)
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	stS, err := (&Transformer{Job: job, Stores: single}).Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstGolden(t, job, to, single, golden)

	// Distributed execution: one transformer per worker.
	dist := localStores(alloc(16))
	if err := LoadPTC(job, from, dist, golden); err != nil {
		t.Fatal(err)
	}
	stD, err := ApplyDistributed(job, plan, topo, dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstGolden(t, job, to, dist, golden)

	// Same work was done.
	if stS.Assignments != stD.Assignments || stS.PeerBytes != stD.PeerBytes ||
		stS.LocalBytes != stD.LocalBytes {
		t.Fatalf("distributed stats differ: single %+v vs distributed %+v", stS, stD)
	}
	// Departed devices cleared in both.
	for _, d := range []cluster.DeviceID{8, 12} {
		if _, err := dist[d].List("/job/job0/model"); err == nil {
			t.Fatalf("device %d still holds state after distributed apply", d)
		}
	}
}

func TestApplyDistributedFailureRecovery(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	golden := goldenState(from)
	stores := localStores(alloc(4))
	if err := LoadPTC(job, from, stores, golden); err != nil {
		t.Fatal(err)
	}
	degraded := from.WithoutDevices(1)
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	plan, err := core.GeneratePlan(degraded, to, core.PlanOptions{StorageFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without storage: error propagates from the owning worker.
	if _, err := ApplyDistributed(job, plan, topo, stores, nil); err == nil {
		t.Fatal("distributed apply without storage succeeded")
	}
	st, err := ApplyDistributed(job, plan, topo, stores, memStorage(golden))
	if err != nil {
		t.Fatal(err)
	}
	if st.StorageBytes == 0 {
		t.Fatal("no storage reads recorded")
	}
	verifyAgainstGolden(t, job, to, stores, golden)
}
