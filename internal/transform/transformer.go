// Package transform implements the State Transformer (§5.1): the
// component that executes a reconfiguration plan against the Tensor
// Stores of the cluster. Fetches run in parallel, read exactly the
// sub-tensor ranges the plan requires (splits are range-reads, merges
// are local assembly), stage the new partitions next to the old ones,
// and atomically commit when every assignment has landed.
//
// The production data path is streamed and zero-copy: each destination
// sub-tensor is allocated exactly once and every plan range is fetched
// *into* its final strided offset (local ranges are a pure copy,
// peer/storage ranges scatter straight off the wire), so a byte moves
// from source holder to destination buffer exactly once. The previous
// materialize-then-assemble pipeline is retained as a reference
// implementation (Pipeline == Materialized) and property-tested
// byte-identical to the streamed path.
package transform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/obs"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// StorageReader provides ranges of base tensors from persisted
// checkpoints in remote storage; the plan falls back to it when no
// surviving device holds a range (failure recovery).
type StorageReader interface {
	ReadRange(id core.TensorID, reg tensor.Region) (*tensor.Tensor, error)
}

// StorageRangeWriter is optionally implemented by StorageReaders that
// can scatter a checkpointed range directly into a destination buffer
// (checkpoint.Reader does). When available, storage-fallback recovery
// rides the same single-copy path as device fetches; otherwise the
// transformer falls back to ReadRange plus one extra copy.
type StorageRangeWriter interface {
	ReadRangeInto(id core.TensorID, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error)
}

// ModelPath returns the canonical Tensor Store path of a model-state
// tensor: the hierarchy mirrors the layered model structure, scoped by
// job and device (cf. "/2/embedding/weight" in §5.2). Built by
// concatenation, not fmt — it runs once per fetch on the hot path.
func ModelPath(job string, dev cluster.DeviceID, id core.TensorID) string {
	return "/job/" + job + "/model/dev" + strconv.Itoa(int(dev)) + "/" + string(id)
}

// stagingPath is where new partitions accumulate before commit.
func stagingPath(job string, dev cluster.DeviceID, id core.TensorID) string {
	return "/job/" + job + "/model.next/dev" + strconv.Itoa(int(dev)) + "/" + string(id)
}

func modelRoot(job string) string   { return "/job/" + job + "/model" }
func stagingRoot(job string) string { return "/job/" + job + "/model.next" }

// ModelRoot is the live model tree of job on a device store. Exported
// for the coordinator's transactional rollback, which wipes it before
// restoring the last checkpoint.
func ModelRoot(job string) string { return modelRoot(job) }

// StagingRoot is the staged-state tree awaiting commit; rollback wipes
// it alongside ModelRoot.
func StagingRoot(job string) string { return stagingRoot(job) }

// Pipeline selects the transformer's data-path implementation.
type Pipeline int

const (
	// Streamed is the production zero-copy pipeline: one destination
	// allocation per assignment, every range fetched into its final
	// offset.
	Streamed Pipeline = iota
	// Materialized is the retained reference pipeline: every fetched
	// range becomes a fresh sub-tensor which is then assembled into the
	// destination. It exists for equivalence tests and for measuring
	// copy amplification; production callers leave Pipeline zero.
	Materialized
)

// Transformer executes plans. One logical Transformer drives all
// devices here; in a real deployment each worker runs one instance and
// executes the subset of assignments destined for its devices — the
// code path is identical because every store is reached through the
// store.Access interface (local or REST).
type Transformer struct {
	// Job scopes all store paths.
	Job string
	// Stores maps every device to its Tensor Store.
	Stores map[cluster.DeviceID]store.Access
	// Storage reads persisted checkpoints; may be nil if the plan has
	// no storage fetches.
	Storage StorageReader
	// Parallelism bounds concurrent assignment execution; <= 0 means 8.
	Parallelism int
	// Pipeline selects the data path; the zero value is the streamed
	// production pipeline.
	Pipeline Pipeline
	// NoBatch disables the multi-range batch protocol even against
	// batch-capable stores, forcing per-range QueryInto fetches. The
	// zero value (batching on) is the production configuration; the
	// escape hatch exists for benchmarks measuring the protocol's gain
	// and for bisecting datapath issues.
	NoBatch bool
	// Obs, when non-nil and datapath-deep, records one span per
	// assignment (tensor, device, bytes by source, allocation) under
	// the owning change's parent span. Nil costs nothing.
	Obs *obs.TaskCtx
	// Metrics, when non-nil, absorbs a successful apply's Stats into
	// the shared registry under transform.* counters. Nil costs
	// nothing.
	Metrics *obs.Registry
}

// Stats reports what an Apply did.
type Stats struct {
	Assignments  int
	Noops        int
	LocalBytes   int64 // fetched from the destination device itself
	PeerBytes    int64 // fetched from other devices' stores
	StorageBytes int64 // fetched from checkpoint storage
	// BytesCopied counts every byte the transformer physically copied
	// between buffers (store reads into destinations, assembly copies,
	// upload copies into non-reference stores). The ratio
	// BytesCopied/PlanBytes is the data path's copy amplification: 1.0
	// means every byte moved exactly once.
	BytesCopied int64
	// AllocBytes counts tensor buffer bytes allocated on the data path
	// (destination sub-tensors plus, in the materialized reference,
	// every intermediate fetch tensor).
	AllocBytes int64
	Duration   time.Duration
}

// PlanBytes returns the bytes the plan asked to move: every fetched
// range counted once, whatever its source.
func (s Stats) PlanBytes() int64 { return s.LocalBytes + s.PeerBytes + s.StorageBytes }

// CopyAmplification returns BytesCopied per plan byte (0 when the plan
// moved nothing).
func (s Stats) CopyAmplification() float64 {
	if pb := s.PlanBytes(); pb > 0 {
		return float64(s.BytesCopied) / float64(pb)
	}
	return 0
}

// merge folds the byte counters of o into s.
func (s *Stats) merge(o Stats) {
	s.LocalBytes += o.LocalBytes
	s.PeerBytes += o.PeerBytes
	s.StorageBytes += o.StorageBytes
	s.BytesCopied += o.BytesCopied
	s.AllocBytes += o.AllocBytes
}

// Apply executes the plan: every destination sub-tensor is built in
// the staging area of its device's store, and once all assignments
// succeed the staged tree replaces the live model state on every
// destination device. On error nothing is committed and any partially
// staged state is removed.
func (tr *Transformer) Apply(plan *core.Plan) (Stats, error) {
	return tr.ApplyContext(context.Background(), plan)
}

// ApplyContext is Apply under a caller-supplied context. The first
// fatal assignment error cancels the whole apply: the worker pool
// abandons queued assignments and in-flight fetches through
// context-aware stores are interrupted, so a doomed reconfiguration
// stops moving bytes as soon as its outcome is known. Canceling ctx
// externally aborts the apply the same way (nothing is committed,
// staging is cleaned up).
func (tr *Transformer) ApplyContext(ctx context.Context, plan *core.Plan) (Stats, error) {
	start := time.Now()
	var st Stats
	if err := plan.Validate(); err != nil {
		return st, fmt.Errorf("transform: invalid plan: %w", err)
	}
	if err := tr.checkOneRegionPerTensor(plan); err != nil {
		return st, err
	}
	for _, d := range plan.To.Devices {
		if _, ok := tr.Stores[d]; !ok {
			return st, fmt.Errorf("transform: no store for destination device %d", d)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var errs []error
	if tr.useBatch() {
		st, errs = tr.stageBatched(ctx, cancel, plan)
	} else {
		st, errs = tr.stagePooled(ctx, cancel, plan)
	}
	if len(errs) == 0 && ctx.Err() != nil {
		errs = append(errs, ctx.Err())
	}
	if len(errs) > 0 {
		tr.cleanupStaging(ctx, plan)
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return st, fmt.Errorf("transform: %d assignments failed: %w", len(errs), errors.Join(errs...))
	}

	if err := tr.commit(ctx, plan); err != nil {
		return st, err
	}
	st.Duration = time.Since(start)
	tr.recordStats(st)
	return st, nil
}

// stagePooled stages every assignment through a fixed worker pool that
// drains the assignment queue, bounding goroutine count by Parallelism
// instead of plan size. The first fatal error cancels the rest.
func (tr *Transformer) stagePooled(ctx context.Context, cancel context.CancelFunc, plan *core.Plan) (Stats, []error) {
	var st Stats
	par := tr.Parallelism
	if par <= 0 {
		par = 8
	}
	if par > len(plan.Assignments) {
		par = len(plan.Assignments)
	}
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
		work = make(chan core.Assignment)
	)
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range work {
				if ctx.Err() != nil {
					continue // abandoned: drain the queue without working
				}
				s, err := tr.applyAssignment(ctx, plan, a)
				mu.Lock()
				if err != nil {
					if ctx.Err() == nil || !errors.Is(err, ctx.Err()) {
						errs = append(errs, err)
					}
					mu.Unlock()
					cancel()
					continue
				}
				st.Assignments++
				if a.IsNoop() {
					st.Noops++
				}
				st.merge(s)
				mu.Unlock()
			}
		}()
	}
feed:
	for _, a := range plan.Assignments {
		select {
		case work <- a:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	return st, errs
}

// recordStats absorbs one successful apply's Stats into the shared
// registry. Integer counter addition is commutative, so concurrent
// applies of independent jobs keep the totals deterministic for a
// deterministic workload.
func (tr *Transformer) recordStats(st Stats) {
	reg := tr.Metrics
	if reg == nil {
		return
	}
	reg.Add("transform.applies", 1)
	reg.Add("transform.assignments", int64(st.Assignments))
	reg.Add("transform.noops", int64(st.Noops))
	reg.Add("transform.local_bytes", st.LocalBytes)
	reg.Add("transform.peer_bytes", st.PeerBytes)
	reg.Add("transform.storage_bytes", st.StorageBytes)
	reg.Add("transform.bytes_copied", st.BytesCopied)
	reg.Add("transform.alloc_bytes", st.AllocBytes)
	reg.Histogram("transform.apply_ns").Observe(st.Duration.Nanoseconds())
}

// applyAssignment builds one destination sub-tensor in staging through
// the selected pipeline, recording a datapath span per assignment when
// the tracer is deep. Spans for assignments abandoned by cancellation
// are suppressed along with their errors — which operations a doomed
// attempt reached is scheduling, not outcome.
func (tr *Transformer) applyAssignment(ctx context.Context, plan *core.Plan, a core.Assignment) (Stats, error) {
	if !tr.Obs.Deep() {
		return tr.applyAssignmentPipeline(ctx, plan, a)
	}
	start := time.Now()
	st, err := tr.applyAssignmentPipeline(ctx, plan, a)
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return st, err
	}
	attrs := map[string]any{
		"tensor": string(a.Tensor),
		"device": int(a.Device),
	}
	if a.IsNoop() {
		attrs["noop"] = true
	}
	if b := st.PlanBytes(); b > 0 {
		attrs["bytes"] = b
	}
	if st.AllocBytes > 0 {
		attrs["alloc_bytes"] = st.AllocBytes
	}
	if err != nil {
		attrs["err"] = err.Error()
	}
	tr.Obs.Record(obs.SpanAssignment, obs.CatDatapath, time.Since(start).Nanoseconds(), attrs)
	return st, err
}

func (tr *Transformer) applyAssignmentPipeline(ctx context.Context, plan *core.Plan, a core.Assignment) (Stats, error) {
	if tr.Pipeline == Materialized {
		return tr.applyAssignmentMaterialized(ctx, plan, a)
	}
	return tr.applyAssignmentStreamed(ctx, plan, a)
}

// ctxQuerier is the optional context-aware read interface; store.Client
// implements it, so remote in-flight fetches are interrupted when the
// apply is canceled. Stores without it are checked for cancellation
// between operations instead.
type ctxQuerier interface {
	QueryIntoContext(ctx context.Context, path string, reg tensor.Region,
		dst *tensor.Tensor, at tensor.Region) (int64, error)
}

// queryInto routes a range read through the store's context-aware path
// when it has one.
func queryInto(ctx context.Context, acc store.Access, path string, reg tensor.Region,
	dst *tensor.Tensor, at tensor.Region) (int64, error) {
	if cq, ok := acc.(ctxQuerier); ok {
		return cq.QueryIntoContext(ctx, path, reg, dst, at)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return acc.QueryInto(path, reg, dst, at)
}

// The write-side counterparts of ctxQuerier: store.Client implements
// them all, so canceling an apply interrupts in-flight uploads and an
// abort/rollback is never wedged behind a slow store operation. Stores
// without a context-aware variant get a cancellation check up front and
// run the plain call.
type ctxUploader interface {
	UploadContext(ctx context.Context, path string, t *tensor.Tensor) error
}

type ctxUploadFromer interface {
	UploadFromContext(ctx context.Context, path string, dt tensor.DType, shape []int, r io.Reader) error
}

type ctxDeleter interface {
	DeleteContext(ctx context.Context, path string) error
}

type ctxLister interface {
	ListContext(ctx context.Context, path string) ([]string, error)
}

type ctxRenamer interface {
	RenameContext(ctx context.Context, src, dst string) error
}

func upload(ctx context.Context, acc store.Access, path string, t *tensor.Tensor) error {
	if cu, ok := acc.(ctxUploader); ok {
		return cu.UploadContext(ctx, path, t)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return acc.Upload(path, t)
}

func uploadFrom(ctx context.Context, acc store.Access, path string, dt tensor.DType, shape []int, r io.Reader) error {
	if cu, ok := acc.(ctxUploadFromer); ok {
		return cu.UploadFromContext(ctx, path, dt, shape, r)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return acc.UploadFrom(path, dt, shape, r)
}

func deleteCtx(ctx context.Context, acc store.Access, path string) error {
	if cd, ok := acc.(ctxDeleter); ok {
		return cd.DeleteContext(ctx, path)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return acc.Delete(path)
}

func listCtx(ctx context.Context, acc store.Access, path string) ([]string, error) {
	if cl, ok := acc.(ctxLister); ok {
		return cl.ListContext(ctx, path)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return acc.List(path)
}

func renameCtx(ctx context.Context, acc store.Access, src, dst string) error {
	if cr, ok := acc.(ctxRenamer); ok {
		return cr.RenameContext(ctx, src, dst)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return acc.Rename(src, dst)
}

// applyAssignmentStreamed is the zero-copy pipeline: the destination
// sub-tensor is allocated once and every plan range is fetched directly
// into its final strided offset. Independent ranges of one assignment
// fetch concurrently (they are disjoint by plan construction; overlap
// forces a sequential pass). Noop assignments against reference-
// retaining stores move the existing tensor by pointer — no bytes are
// copied or allocated at all.
func (tr *Transformer) applyAssignmentStreamed(ctx context.Context, plan *core.Plan, a core.Assignment) (Stats, error) {
	var st Stats
	meta := plan.To.Tensors[a.Tensor]
	dst := tr.Stores[a.Device]

	if a.IsNoop() && !uploadCopies(dst) {
		if t, err := dst.Query(ModelPath(tr.Job, a.Device, a.Tensor), nil); err == nil {
			if err := upload(ctx, dst, stagingPath(tr.Job, a.Device, a.Tensor), t); err != nil {
				return st, fmt.Errorf("transform: stage %s on dev %d: %w", a.Tensor, a.Device, err)
			}
			st.LocalBytes += a.Region.NumBytes(meta.DType)
			return st, nil
		}
		// The sub-tensor is unexpectedly absent; fall through so the
		// general path reports the fetch error.
	}

	out := tensor.NewFromRegion(meta.DType, a.Region)
	st.AllocBytes += int64(out.NumBytes())

	covered := 0
	for i := range a.Fetch {
		covered += a.Fetch[i].Want.NumElems()
	}
	if covered < a.Region.NumElems() {
		return st, fmt.Errorf("transform: assemble %s%v: fetches cover %d of %d elements",
			a.Tensor, a.Region, covered, a.Region.NumElems())
	}

	if len(a.Fetch) > 1 && disjointTargets(a.Fetch) {
		var (
			mu   sync.Mutex
			errs []error
			wg   sync.WaitGroup
		)
		for _, f := range a.Fetch {
			wg.Add(1)
			go func(f core.Fetch) {
				defer wg.Done()
				fs, err := tr.fetchInto(ctx, a, f, meta.DType, out)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs = append(errs, err)
					return
				}
				st.merge(fs)
			}(f)
		}
		wg.Wait()
		if len(errs) > 0 {
			sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
			return st, errs[0]
		}
	} else {
		for _, f := range a.Fetch {
			fs, err := tr.fetchInto(ctx, a, f, meta.DType, out)
			if err != nil {
				return st, err
			}
			st.merge(fs)
		}
	}

	if err := upload(ctx, dst, stagingPath(tr.Job, a.Device, a.Tensor), out); err != nil {
		return st, fmt.Errorf("transform: stage %s on dev %d: %w", a.Tensor, a.Device, err)
	}
	if uploadCopies(dst) {
		st.BytesCopied += int64(out.NumBytes())
	}
	return st, nil
}

// fetchInto streams one plan range into its final offset inside out.
// The target and (for device sources) source-local regions share one
// backing allocation; everything else on this path is allocation-free
// up to the store call.
func (tr *Transformer) fetchInto(ctx context.Context, a core.Assignment, f core.Fetch, dt tensor.DType, out *tensor.Tensor) (Stats, error) {
	var fs Stats
	bytes := f.Want.NumBytes(dt)
	rank := len(f.Want)
	regs := make(tensor.Region, 2*rank)
	target, local := regs[:rank:rank], regs[rank:]
	for i := range f.Want {
		target[i] = tensor.Range{Lo: f.Want[i].Lo - a.Region[i].Lo, Hi: f.Want[i].Hi - a.Region[i].Lo}
	}
	switch f.Src.Kind {
	case core.FromDevice:
		src, ok := tr.Stores[f.Src.Device]
		if !ok {
			return fs, fmt.Errorf("transform: no store for source device %d", f.Src.Device)
		}
		for i := range f.Want {
			local[i] = tensor.Range{Lo: f.Want[i].Lo - f.Src.Region[i].Lo, Hi: f.Want[i].Hi - f.Src.Region[i].Lo}
		}
		n, err := queryInto(ctx, src, ModelPath(tr.Job, f.Src.Device, a.Tensor), local, out, target)
		if err != nil {
			return fs, fmt.Errorf("transform: fetch %s%v from dev %d: %w", a.Tensor, f.Want, f.Src.Device, err)
		}
		fs.BytesCopied += n
		if f.Src.Device == a.Device {
			fs.LocalBytes += bytes
		} else {
			fs.PeerBytes += bytes
		}
	case core.FromStorage:
		if tr.Storage == nil {
			return fs, fmt.Errorf("transform: plan needs storage for %s%v but no StorageReader configured", a.Tensor, f.Want)
		}
		if rw, ok := tr.Storage.(StorageRangeWriter); ok {
			n, err := rw.ReadRangeInto(a.Tensor, f.Want, out, target)
			if err != nil {
				return fs, fmt.Errorf("transform: storage read %s%v: %w", a.Tensor, f.Want, err)
			}
			fs.BytesCopied += n
		} else {
			t, err := tr.Storage.ReadRange(a.Tensor, f.Want)
			if err != nil {
				return fs, fmt.Errorf("transform: storage read %s%v: %w", a.Tensor, f.Want, err)
			}
			n, err := tensor.CopyRegion(out, target, t, tensor.FullRegion(t.Shape()))
			if err != nil {
				return fs, fmt.Errorf("transform: storage scatter %s%v: %w", a.Tensor, f.Want, err)
			}
			fs.AllocBytes += int64(t.NumBytes())
			fs.BytesCopied += int64(t.NumBytes()) + n
		}
		fs.StorageBytes += bytes
	}
	return fs, nil
}

// applyAssignmentMaterialized is the retained reference pipeline: every
// fetched range materializes as a fresh sub-tensor, the destination is
// assembled from the pieces, and the result is uploaded — each byte is
// copied at least twice before staging.
func (tr *Transformer) applyAssignmentMaterialized(ctx context.Context, plan *core.Plan, a core.Assignment) (Stats, error) {
	var st Stats
	meta := plan.To.Tensors[a.Tensor]
	dst := tr.Stores[a.Device]

	var pieces []tensor.Piece
	for _, f := range a.Fetch {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		bytes := f.Want.NumBytes(meta.DType)
		var data *tensor.Tensor
		var err error
		switch f.Src.Kind {
		case core.FromDevice:
			src, ok := tr.Stores[f.Src.Device]
			if !ok {
				return st, fmt.Errorf("transform: no store for source device %d", f.Src.Device)
			}
			local := f.Want.Translate(f.Src.Region.Offset())
			data, err = src.Query(ModelPath(tr.Job, f.Src.Device, a.Tensor), local)
			if err != nil {
				return st, fmt.Errorf("transform: fetch %s%v from dev %d: %w", a.Tensor, f.Want, f.Src.Device, err)
			}
			if f.Src.Device == a.Device {
				st.LocalBytes += bytes
			} else {
				st.PeerBytes += bytes
			}
		case core.FromStorage:
			if tr.Storage == nil {
				return st, fmt.Errorf("transform: plan needs storage for %s%v but no StorageReader configured", a.Tensor, f.Want)
			}
			data, err = tr.Storage.ReadRange(a.Tensor, f.Want)
			if err != nil {
				return st, fmt.Errorf("transform: storage read %s%v: %w", a.Tensor, f.Want, err)
			}
			st.StorageBytes += bytes
		}
		st.BytesCopied += bytes // materializing the sub-tensor
		st.AllocBytes += bytes
		pieces = append(pieces, tensor.Piece{
			Region: f.Want.Translate(a.Region.Offset()),
			Data:   data,
		})
	}
	merged, err := tensor.Assemble(meta.DType, a.Region.Shape(), pieces)
	if err != nil {
		return st, fmt.Errorf("transform: assemble %s%v: %w", a.Tensor, a.Region, err)
	}
	st.AllocBytes += int64(merged.NumBytes())
	for _, p := range pieces {
		st.BytesCopied += int64(p.Data.NumBytes()) // assembly copy
	}
	if err := upload(ctx, dst, stagingPath(tr.Job, a.Device, a.Tensor), merged); err != nil {
		return st, fmt.Errorf("transform: stage %s on dev %d: %w", a.Tensor, a.Device, err)
	}
	if uploadCopies(dst) {
		st.BytesCopied += int64(merged.NumBytes())
	}
	return st, nil
}

// disjointTargets reports whether the fetched ranges are pairwise
// non-overlapping, which makes concurrent scatter-writes into the
// shared destination buffer safe.
func disjointTargets(fetches []core.Fetch) bool {
	for i := 0; i < len(fetches); i++ {
		for j := i + 1; j < len(fetches); j++ {
			if _, overlap := fetches[i].Want.Intersect(fetches[j].Want); overlap {
				return false
			}
		}
	}
	return true
}

// uploadCopies reports whether uploading to acc copies the tensor's
// bytes (remote stores) rather than retaining them by reference
// (in-process stores).
func uploadCopies(acc store.Access) bool {
	ru, ok := acc.(store.RefUploader)
	return !(ok && ru.UploadsByReference())
}

// cleanupStaging removes partially staged state from every destination
// device after a failed apply, so the live tree is all that remains and
// a retry starts clean. It runs detached from the apply's cancellation
// (the common trigger IS a canceled ctx) but routes through the stores'
// context-aware deletes, which stay bounded by the client's per-request
// timeout.
func (tr *Transformer) cleanupStaging(ctx context.Context, plan *core.Plan) {
	ctx = context.WithoutCancel(ctx)
	for _, d := range plan.To.Devices {
		if acc, ok := tr.Stores[d]; ok {
			_ = deleteCtx(ctx, acc, stagingRoot(tr.Job)) // may not exist
		}
	}
}

// commit swaps the staged tree into place on every destination device
// and clears stale model state on devices that leave the job. Once
// staging has fully succeeded the swap is the point of no return, so it
// runs detached from the apply's cancellation: a ctx canceled in the
// commit window must not strand a half-renamed model tree.
func (tr *Transformer) commit(ctx context.Context, plan *core.Plan) error {
	ctx = context.WithoutCancel(ctx)
	for _, d := range plan.To.Devices {
		acc := tr.Stores[d]
		// A device with no assignments (possible when it holds nothing
		// under the new PTC) still needs its old state cleared below.
		if _, err := listCtx(ctx, acc, stagingRoot(tr.Job)); err != nil {
			continue
		}
		_ = deleteCtx(ctx, acc, modelRoot(tr.Job)) // old state may not exist
		if err := renameCtx(ctx, acc, stagingRoot(tr.Job), modelRoot(tr.Job)); err != nil {
			return fmt.Errorf("transform: commit on dev %d: %w", d, err)
		}
	}
	// Devices that held state before but are not in the new allocation
	// release it so the scheduler can hand their memory to other jobs.
	newSet := map[cluster.DeviceID]bool{}
	for _, d := range plan.To.Devices {
		newSet[d] = true
	}
	for _, d := range plan.From.Devices {
		if newSet[d] {
			continue
		}
		if acc, ok := tr.Stores[d]; ok {
			_ = deleteCtx(ctx, acc, modelRoot(tr.Job))
		}
	}
	return nil
}

// checkOneRegionPerTensor enforces the store layout invariant: a device
// holds at most one sub-tensor per base tensor (one file per tensor
// path). Every parallelization the parallel package produces satisfies
// it.
func (tr *Transformer) checkOneRegionPerTensor(plan *core.Plan) error {
	seen := map[core.TensorID]bool{}
	for _, ptc := range []*core.PTC{plan.From, plan.To} {
		for _, d := range ptc.Devices {
			clear(seen)
			for _, s := range ptc.Place[d] {
				if seen[s.Tensor] {
					return fmt.Errorf("transform: device %d holds multiple regions of %q; unsupported store layout", d, s.Tensor)
				}
				seen[s.Tensor] = true
			}
		}
	}
	return nil
}

// LoadPTC materializes PTC state into the stores: every device's
// sub-tensors stream out of the provided full tensors straight into
// each store (a region view feeds UploadFrom, so no intermediate
// sub-tensor is sliced out).
func LoadPTC(job string, ptc *core.PTC, stores map[cluster.DeviceID]store.Access,
	full map[core.TensorID]*tensor.Tensor) error {
	return LoadPTCContext(context.Background(), job, ptc, stores, full)
}

// LoadPTCContext is LoadPTC under a caller-supplied context: against
// context-aware stores, cancellation aborts an in-flight streaming
// upload promptly instead of letting it run to completion.
func LoadPTCContext(ctx context.Context, job string, ptc *core.PTC, stores map[cluster.DeviceID]store.Access,
	full map[core.TensorID]*tensor.Tensor) error {
	for _, d := range ptc.Devices {
		acc, ok := stores[d]
		if !ok {
			return fmt.Errorf("transform: no store for device %d", d)
		}
		for _, s := range ptc.Place[d] {
			src, ok := full[s.Tensor]
			if !ok {
				return fmt.Errorf("transform: no source tensor for %q", s.Tensor)
			}
			v := src.View(s.Region)
			if err := uploadFrom(ctx, acc, ModelPath(job, d, s.Tensor), src.DType(), v.Shape(), v.Reader()); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadPTC gathers the full tensors of a PTC back out of the stores —
// the inverse of LoadPTC, used to hand a resumed job its merged state
// and by tests to verify reconfigurations end to end. Each full tensor
// is allocated once and every holder's sub-tensor is range-read
// directly into its offset.
func ReadPTC(job string, ptc *core.PTC, stores map[cluster.DeviceID]store.Access) (map[core.TensorID]*tensor.Tensor, error) {
	out := map[core.TensorID]*tensor.Tensor{}
	for id, meta := range ptc.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		covered := 0
		seen := map[string]bool{}
		for _, d := range ptc.Devices {
			for _, s := range ptc.Place[d] {
				if s.Tensor != id || seen[s.Region.String()] {
					continue
				}
				acc, ok := stores[d]
				if !ok {
					return nil, fmt.Errorf("transform: no store for device %d", d)
				}
				if _, err := acc.QueryInto(ModelPath(job, d, id), nil, full, s.Region); err != nil {
					return nil, fmt.Errorf("transform: read %q from dev %d: %w", id, d, err)
				}
				covered += s.Region.NumElems()
				seen[s.Region.String()] = true
			}
		}
		if covered < full.NumElems() {
			return nil, fmt.Errorf("transform: assemble %q: holders cover %d of %d elements", id, covered, full.NumElems())
		}
		out[id] = full
	}
	return out, nil
}
