// Package transform implements the State Transformer (§5.1): the
// component that executes a reconfiguration plan against the Tensor
// Stores of the cluster. Fetches run in parallel, read exactly the
// sub-tensor ranges the plan requires (splits are range-reads, merges
// are local assembly), stage the new partitions next to the old ones,
// and atomically commit when every assignment has landed.
package transform

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// StorageReader provides ranges of base tensors from persisted
// checkpoints in remote storage; the plan falls back to it when no
// surviving device holds a range (failure recovery).
type StorageReader interface {
	ReadRange(id core.TensorID, reg tensor.Region) (*tensor.Tensor, error)
}

// ModelPath returns the canonical Tensor Store path of a model-state
// tensor: the hierarchy mirrors the layered model structure, scoped by
// job and device (cf. "/2/embedding/weight" in §5.2).
func ModelPath(job string, dev cluster.DeviceID, id core.TensorID) string {
	return fmt.Sprintf("/job/%s/model/dev%d/%s", job, dev, id)
}

// stagingPath is where new partitions accumulate before commit.
func stagingPath(job string, dev cluster.DeviceID, id core.TensorID) string {
	return fmt.Sprintf("/job/%s/model.next/dev%d/%s", job, dev, id)
}

func modelRoot(job string) string   { return fmt.Sprintf("/job/%s/model", job) }
func stagingRoot(job string) string { return fmt.Sprintf("/job/%s/model.next", job) }

// Transformer executes plans. One logical Transformer drives all
// devices here; in a real deployment each worker runs one instance and
// executes the subset of assignments destined for its devices — the
// code path is identical because every store is reached through the
// store.Access interface (local or REST).
type Transformer struct {
	// Job scopes all store paths.
	Job string
	// Stores maps every device to its Tensor Store.
	Stores map[cluster.DeviceID]store.Access
	// Storage reads persisted checkpoints; may be nil if the plan has
	// no storage fetches.
	Storage StorageReader
	// Parallelism bounds concurrent assignment execution; <= 0 means 8.
	Parallelism int
}

// Stats reports what an Apply did.
type Stats struct {
	Assignments  int
	Noops        int
	LocalBytes   int64 // fetched from the destination device itself
	PeerBytes    int64 // fetched from other devices' stores
	StorageBytes int64 // fetched from checkpoint storage
	Duration     time.Duration
}

// Apply executes the plan: every destination sub-tensor is assembled in
// the staging area of its device's store, and once all assignments
// succeed the staged tree replaces the live model state on every
// destination device. On error nothing is committed.
func (tr *Transformer) Apply(plan *core.Plan) (Stats, error) {
	start := time.Now()
	var st Stats
	if err := plan.Validate(); err != nil {
		return st, fmt.Errorf("transform: invalid plan: %w", err)
	}
	if err := tr.checkOneRegionPerTensor(plan); err != nil {
		return st, err
	}
	for _, d := range plan.To.Devices {
		if _, ok := tr.Stores[d]; !ok {
			return st, fmt.Errorf("transform: no store for destination device %d", d)
		}
	}

	par := tr.Parallelism
	if par <= 0 {
		par = 8
	}
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
		sem  = make(chan struct{}, par)
	)
	for _, a := range plan.Assignments {
		wg.Add(1)
		go func(a core.Assignment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := tr.applyAssignment(plan, a)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			st.Assignments++
			if a.IsNoop() {
				st.Noops++
			}
			st.LocalBytes += s.LocalBytes
			st.PeerBytes += s.PeerBytes
			st.StorageBytes += s.StorageBytes
		}(a)
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return st, fmt.Errorf("transform: %d assignments failed: %w", len(errs), errors.Join(errs...))
	}

	if err := tr.commit(plan); err != nil {
		return st, err
	}
	st.Duration = time.Since(start)
	return st, nil
}

// applyAssignment assembles one destination sub-tensor in staging.
func (tr *Transformer) applyAssignment(plan *core.Plan, a core.Assignment) (Stats, error) {
	var st Stats
	meta := plan.To.Tensors[a.Tensor]
	dst := tr.Stores[a.Device]

	var pieces []tensor.Piece
	for _, f := range a.Fetch {
		bytes := f.Want.NumBytes(meta.DType)
		var data *tensor.Tensor
		var err error
		switch f.Src.Kind {
		case core.FromDevice:
			src, ok := tr.Stores[f.Src.Device]
			if !ok {
				return st, fmt.Errorf("transform: no store for source device %d", f.Src.Device)
			}
			local := f.Want.Translate(f.Src.Region.Offset())
			data, err = src.Query(ModelPath(tr.Job, f.Src.Device, a.Tensor), local)
			if err != nil {
				return st, fmt.Errorf("transform: fetch %s%v from dev %d: %w", a.Tensor, f.Want, f.Src.Device, err)
			}
			if f.Src.Device == a.Device {
				st.LocalBytes += bytes
			} else {
				st.PeerBytes += bytes
			}
		case core.FromStorage:
			if tr.Storage == nil {
				return st, fmt.Errorf("transform: plan needs storage for %s%v but no StorageReader configured", a.Tensor, f.Want)
			}
			data, err = tr.Storage.ReadRange(a.Tensor, f.Want)
			if err != nil {
				return st, fmt.Errorf("transform: storage read %s%v: %w", a.Tensor, f.Want, err)
			}
			st.StorageBytes += bytes
		}
		pieces = append(pieces, tensor.Piece{
			Region: f.Want.Translate(a.Region.Offset()),
			Data:   data,
		})
	}
	merged, err := tensor.Assemble(meta.DType, a.Region.Shape(), pieces)
	if err != nil {
		return st, fmt.Errorf("transform: assemble %s%v: %w", a.Tensor, a.Region, err)
	}
	if err := dst.Upload(stagingPath(tr.Job, a.Device, a.Tensor), merged); err != nil {
		return st, fmt.Errorf("transform: stage %s on dev %d: %w", a.Tensor, a.Device, err)
	}
	return st, nil
}

// commit swaps the staged tree into place on every destination device
// and clears stale model state on devices that leave the job.
func (tr *Transformer) commit(plan *core.Plan) error {
	for _, d := range plan.To.Devices {
		acc := tr.Stores[d]
		// A device with no assignments (possible when it holds nothing
		// under the new PTC) still needs its old state cleared below.
		if _, err := acc.List(stagingRoot(tr.Job)); err != nil {
			continue
		}
		_ = acc.Delete(modelRoot(tr.Job)) // old state may not exist
		if err := acc.Rename(stagingRoot(tr.Job), modelRoot(tr.Job)); err != nil {
			return fmt.Errorf("transform: commit on dev %d: %w", d, err)
		}
	}
	// Devices that held state before but are not in the new allocation
	// release it so the scheduler can hand their memory to other jobs.
	newSet := map[cluster.DeviceID]bool{}
	for _, d := range plan.To.Devices {
		newSet[d] = true
	}
	for _, d := range plan.From.Devices {
		if newSet[d] {
			continue
		}
		if acc, ok := tr.Stores[d]; ok {
			_ = acc.Delete(modelRoot(tr.Job))
		}
	}
	return nil
}

// checkOneRegionPerTensor enforces the store layout invariant: a device
// holds at most one sub-tensor per base tensor (one file per tensor
// path). Every parallelization the parallel package produces satisfies
// it.
func (tr *Transformer) checkOneRegionPerTensor(plan *core.Plan) error {
	for _, ptc := range []*core.PTC{plan.From, plan.To} {
		for _, d := range ptc.Devices {
			seen := map[core.TensorID]bool{}
			for _, s := range ptc.Place[d] {
				if seen[s.Tensor] {
					return fmt.Errorf("transform: device %d holds multiple regions of %q; unsupported store layout", d, s.Tensor)
				}
				seen[s.Tensor] = true
			}
		}
	}
	return nil
}

// LoadPTC materializes PTC state into the stores: every device uploads
// its sub-tensors sliced from the provided full tensors. Tests,
// examples and the checkpoint path use it to seed initial state.
func LoadPTC(job string, ptc *core.PTC, stores map[cluster.DeviceID]store.Access,
	full map[core.TensorID]*tensor.Tensor) error {
	for _, d := range ptc.Devices {
		acc, ok := stores[d]
		if !ok {
			return fmt.Errorf("transform: no store for device %d", d)
		}
		for _, s := range ptc.Place[d] {
			src, ok := full[s.Tensor]
			if !ok {
				return fmt.Errorf("transform: no source tensor for %q", s.Tensor)
			}
			if err := acc.Upload(ModelPath(job, d, s.Tensor), src.Slice(s.Region)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadPTC gathers the full tensors of a PTC back out of the stores by
// assembling every tensor from the sub-tensors of its holders — the
// inverse of LoadPTC, used to hand a resumed job its merged state and
// by tests to verify reconfigurations end to end.
func ReadPTC(job string, ptc *core.PTC, stores map[cluster.DeviceID]store.Access) (map[core.TensorID]*tensor.Tensor, error) {
	out := map[core.TensorID]*tensor.Tensor{}
	for id, meta := range ptc.Tensors {
		var pieces []tensor.Piece
		seen := map[string]bool{}
		for _, d := range ptc.Devices {
			for _, s := range ptc.Place[d] {
				if s.Tensor != id || seen[s.Region.String()] {
					continue
				}
				acc, ok := stores[d]
				if !ok {
					return nil, fmt.Errorf("transform: no store for device %d", d)
				}
				t, err := acc.Query(ModelPath(job, d, id), nil)
				if err != nil {
					return nil, fmt.Errorf("transform: read %q from dev %d: %w", id, d, err)
				}
				pieces = append(pieces, tensor.Piece{Region: s.Region, Data: t})
				seen[s.Region.String()] = true
			}
		}
		full, err := tensor.Assemble(meta.DType, meta.Shape, pieces)
		if err != nil {
			return nil, fmt.Errorf("transform: assemble %q: %w", id, err)
		}
		out[id] = full
	}
	return out, nil
}
