package transform

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// flakyAccess injects failures into a store.Access: every failEvery-th
// operation returns an error.
type flakyAccess struct {
	inner store.Access
	count atomic.Int64
	// failEvery <= 0 disables injection.
	failEvery int64
}

func (f *flakyAccess) maybeFail(op string) error {
	if f.failEvery <= 0 {
		return nil
	}
	if f.count.Add(1)%f.failEvery == 0 {
		return fmt.Errorf("injected fault during %s", op)
	}
	return nil
}

func (f *flakyAccess) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	if err := f.maybeFail("query"); err != nil {
		return nil, err
	}
	return f.inner.Query(path, reg)
}
func (f *flakyAccess) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	if err := f.maybeFail("queryinto"); err != nil {
		return 0, err
	}
	return f.inner.QueryInto(path, reg, dst, at)
}
func (f *flakyAccess) Upload(path string, t *tensor.Tensor) error {
	if err := f.maybeFail("upload"); err != nil {
		return err
	}
	return f.inner.Upload(path, t)
}
func (f *flakyAccess) UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	if err := f.maybeFail("uploadfrom"); err != nil {
		return err
	}
	return f.inner.UploadFrom(path, dt, shape, r)
}
func (f *flakyAccess) Delete(path string) error { return f.inner.Delete(path) }
func (f *flakyAccess) List(path string) ([]string, error) {
	return f.inner.List(path)
}
func (f *flakyAccess) Rename(src, dst string) error { return f.inner.Rename(src, dst) }

// TestApplyFaultInjectionPreservesOldState: when fetches fail mid-plan,
// Apply must report the error and leave the previous model state
// readable (no partial commit).
func TestApplyFaultInjectionPreservesOldState(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	golden := goldenState(from)

	for _, every := range []int64{3, 7, 13} {
		plain := localStores(alloc(4))
		if err := LoadPTC(job, from, plain, golden); err != nil {
			t.Fatal(err)
		}
		wrapped := map[string]*flakyAccess{}
		stores := localStores(alloc(4))
		for d, acc := range plain {
			fa := &flakyAccess{inner: acc, failEvery: every}
			wrapped[fmt.Sprint(d)] = fa
			stores[d] = fa
		}
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr := &Transformer{Job: job, Stores: stores, Parallelism: 4}
		if _, err := tr.Apply(plan); err == nil {
			t.Fatalf("failEvery=%d: Apply succeeded despite injected faults", every)
		}
		// Old state must be intact and fully readable.
		for _, d := range from.Devices {
			for _, s := range from.Place[d] {
				got, err := plain[d].Query(ModelPath(job, d, s.Tensor), nil)
				if err != nil {
					t.Fatalf("failEvery=%d: old state lost: %v", every, err)
				}
				if !got.Equal(golden[s.Tensor].Slice(s.Region)) {
					t.Fatalf("failEvery=%d: old state corrupted", every)
				}
			}
		}
		// Retrying with the faults cleared succeeds.
		for _, fa := range wrapped {
			fa.failEvery = 0
		}
		if _, err := tr.Apply(plan); err != nil {
			t.Fatalf("failEvery=%d: retry failed: %v", every, err)
		}
		verifyAgainstGolden(t, job, to, stores, golden)
	}
}

// TestApplyMidFailureCleansStaging: when a store error hits partway
// through Apply, the live model tree must be untouched and the staging
// root must be removed from every destination device (no partially
// staged state left behind).
func TestApplyMidFailureCleansStaging(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	golden := goldenState(from)

	plain := localStores(alloc(4))
	if err := LoadPTC(job, from, plain, golden); err != nil {
		t.Fatal(err)
	}
	wrapped := map[int]*flakyAccess{}
	flaky := localStores(alloc(4))
	for d, acc := range plain {
		fa := &flakyAccess{inner: acc, failEvery: 5}
		wrapped[int(d)] = fa
		flaky[d] = fa
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transformer{Job: job, Stores: flaky, Parallelism: 4}
	if _, err := tr.Apply(plan); err == nil {
		t.Fatal("Apply succeeded despite injected faults")
	}
	for _, d := range to.Devices {
		// No staging root may remain anywhere.
		if _, err := flaky[d].List(stagingRoot(job)); err == nil {
			t.Fatalf("device %d still holds a staging tree after failed apply", d)
		}
	}
	// The live model tree is exactly the pre-apply state.
	verifyAgainstGolden(t, job, from, plain, golden)
	// A clean retry completes and commits.
	for _, fa := range wrapped {
		fa.failEvery = 0
	}
	if _, err := tr.Apply(plan); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	verifyAgainstGolden(t, job, to, flaky, golden)
}
