package transform

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

func alloc(n int) cluster.Allocation {
	out := make(cluster.Allocation, n)
	for i := range out {
		out[i] = cluster.DeviceID(i)
	}
	return out
}

func buildPTC(t *testing.T, m *model.Model, cfg parallel.Config, a cluster.Allocation) *core.PTC {
	t.Helper()
	ptc, err := parallel.BuildPTC(m, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	return ptc
}

// localStores gives each device its own in-process MemFS.
func localStores(devs []cluster.DeviceID) map[cluster.DeviceID]store.Access {
	out := map[cluster.DeviceID]store.Access{}
	for _, d := range devs {
		out[d] = store.Local{FS: store.NewMemFS()}
	}
	return out
}

// goldenState makes deterministic full tensors for a PTC.
func goldenState(ptc *core.PTC) map[core.TensorID]*tensor.Tensor {
	out := map[core.TensorID]*tensor.Tensor{}
	seed := 1.0
	for id, meta := range ptc.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		full.FillSeq(seed*1e4, 1)
		seed++
		out[id] = full
	}
	return out
}

// verifyAgainstGolden checks every placed sub-tensor equals the golden
// slice.
func verifyAgainstGolden(t *testing.T, job string, ptc *core.PTC,
	stores map[cluster.DeviceID]store.Access, golden map[core.TensorID]*tensor.Tensor) {
	t.Helper()
	for _, d := range ptc.Devices {
		for _, s := range ptc.Place[d] {
			got, err := stores[d].Query(ModelPath(job, d, s.Tensor), nil)
			if err != nil {
				t.Fatalf("dev %d missing %s: %v", d, s.Tensor, err)
			}
			if !got.Equal(golden[s.Tensor].Slice(s.Region)) {
				t.Fatalf("dev %d has wrong bytes for %s%v", d, s.Tensor, s.Region)
			}
		}
	}
}

func reconfigure(t *testing.T, m *model.Model, fromCfg, toCfg parallel.Config,
	fromAlloc, toAlloc cluster.Allocation, stores map[cluster.DeviceID]store.Access) (Stats, *core.PTC, map[core.TensorID]*tensor.Tensor) {
	t.Helper()
	const job = "job0"
	from := buildPTC(t, m, fromCfg, fromAlloc)
	to := buildPTC(t, m, toCfg, toAlloc)
	golden := goldenState(from)
	if err := LoadPTC(job, from, stores, golden); err != nil {
		t.Fatal(err)
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transformer{Job: job, Stores: stores}
	st, err := tr.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstGolden(t, job, to, stores, golden)
	return st, to, golden
}

func TestApplyTPReshard(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	stores := localStores(alloc(4))
	st, _, _ := reconfigure(t, m,
		parallel.Config{TP: 2, PP: 1, DP: 1}, parallel.Config{TP: 4, PP: 1, DP: 1},
		alloc(2), alloc(4), stores)
	if st.PeerBytes == 0 {
		t.Fatal("TP scale-out must fetch from peers")
	}
}

func TestApplyDPScaleOutAndIn(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	stores := localStores(alloc(4))
	st, to, golden := reconfigure(t, m,
		parallel.Config{TP: 1, PP: 2, DP: 1}, parallel.Config{TP: 1, PP: 2, DP: 2},
		alloc(2), alloc(4), stores)
	if st.PeerBytes != m.ParamBytes() {
		t.Fatalf("DP scale-out peer bytes = %d, want %d", st.PeerBytes, m.ParamBytes())
	}
	// Now scale back in: nothing should move (replica already local).
	from := to
	toPTC := buildPTC(t, m, parallel.Config{TP: 1, PP: 2, DP: 1}, alloc(2))
	plan, err := core.GeneratePlan(from, toPTC, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transformer{Job: "job0", Stores: stores}
	st2, err := tr.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st2.PeerBytes != 0 || st2.StorageBytes != 0 {
		t.Fatalf("DP scale-in moved bytes: %+v", st2)
	}
	verifyAgainstGolden(t, "job0", toPTC, stores, golden)
	// Departed devices released their model state.
	for _, d := range []cluster.DeviceID{2, 3} {
		if _, err := stores[d].List("/job/job0/model"); err == nil {
			t.Fatalf("device %d still holds model state after leaving", d)
		}
	}
}

func TestApplyPipelineRepartition(t *testing.T) {
	m := model.GPTCustom(6, 16, 2, 64, 8)
	stores := localStores(alloc(4))
	st, _, _ := reconfigure(t, m,
		parallel.Config{TP: 1, PP: 2, DP: 1}, parallel.Config{TP: 1, PP: 4, DP: 1},
		alloc(2), alloc(4), stores)
	if st.PeerBytes >= m.ParamBytes() {
		t.Fatalf("PP repartition moved the whole model: %+v", st)
	}
}

func TestApplyMultiDimensional(t *testing.T) {
	// The paper's Fig. 9 transition: (2,4,2) -> (2,4,1) -> (2,2,1) on a
	// shrinking allocation.
	m := model.GPTCustom(8, 32, 4, 128, 16)
	stores := localStores(alloc(16))
	const job = "job0"
	cfgs := []struct {
		cfg parallel.Config
		n   int
	}{
		{parallel.Config{TP: 2, PP: 4, DP: 2}, 16},
		{parallel.Config{TP: 2, PP: 4, DP: 1}, 8},
		{parallel.Config{TP: 2, PP: 2, DP: 1}, 4},
	}
	from := buildPTC(t, m, cfgs[0].cfg, alloc(cfgs[0].n))
	golden := goldenState(from)
	if err := LoadPTC(job, from, stores, golden); err != nil {
		t.Fatal(err)
	}
	for _, next := range cfgs[1:] {
		to := buildPTC(t, m, next.cfg, alloc(next.n))
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr := &Transformer{Job: job, Stores: stores}
		if _, err := tr.Apply(plan); err != nil {
			t.Fatal(err)
		}
		verifyAgainstGolden(t, job, to, stores, golden)
		from = to
	}
}

func TestApplyOverREST(t *testing.T) {
	// Devices 2 and 3 are "remote": their stores are reached through
	// real HTTP servers. The transformer must behave identically.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	stores := map[cluster.DeviceID]store.Access{}
	var servers []*store.Server
	for d := 0; d < 4; d++ {
		fs := store.NewMemFS()
		if d < 2 {
			stores[cluster.DeviceID(d)] = store.Local{FS: fs}
			continue
		}
		srv := store.NewServer(fs)
		hs := httptest.NewServer(srv)
		defer hs.Close()
		servers = append(servers, srv)
		stores[cluster.DeviceID(d)] = &store.Client{Base: hs.URL, HTTP: hs.Client()}
	}
	st, _, _ := reconfigure(t, m,
		parallel.Config{TP: 2, PP: 1, DP: 1}, parallel.Config{TP: 2, PP: 1, DP: 2},
		alloc(2), alloc(4), stores)
	if st.PeerBytes == 0 {
		t.Fatal("expected remote fetches")
	}
	var served int64
	for _, s := range servers {
		served += s.BytesReceived()
	}
	if served == 0 {
		t.Fatal("remote stores received no uploads")
	}
}

// memStorage implements StorageReader over golden tensors.
type memStorage map[core.TensorID]*tensor.Tensor

func (m memStorage) ReadRange(id core.TensorID, reg tensor.Region) (*tensor.Tensor, error) {
	full, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("storage: no checkpoint for %q", id)
	}
	return full.Slice(reg), nil
}

func TestApplyFailureRecoveryViaStorage(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	stores := localStores(alloc(2))
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	golden := goldenState(from)
	if err := LoadPTC(job, from, stores, golden); err != nil {
		t.Fatal(err)
	}
	// Device 1 dies.
	degraded := from.WithoutDevices(1)
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	plan, err := core.GeneratePlan(degraded, to, core.PlanOptions{StorageFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without a StorageReader the transformer must refuse.
	tr := &Transformer{Job: job, Stores: stores}
	if _, err := tr.Apply(plan); err == nil {
		t.Fatal("storage fetch without StorageReader succeeded")
	}
	tr.Storage = memStorage(golden)
	st, err := tr.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.StorageBytes == 0 {
		t.Fatal("expected storage reads")
	}
	verifyAgainstGolden(t, job, to, stores, golden)
}

func TestApplyIdentityKeepsBytesLocal(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	stores := localStores(alloc(2))
	cfg := parallel.Config{TP: 2, PP: 1, DP: 1}
	st, _, _ := reconfigure(t, m, cfg, cfg, alloc(2), alloc(2), stores)
	if st.PeerBytes != 0 || st.StorageBytes != 0 {
		t.Fatalf("identity moved bytes: %+v", st)
	}
	if st.Noops == 0 {
		t.Fatal("identity should be all noops")
	}
}

func TestReadPTCRoundTrip(t *testing.T) {
	m := model.GPTCustom(3, 16, 2, 64, 8)
	stores := localStores(alloc(4))
	const job = "job0"
	ptc := buildPTC(t, m, parallel.Config{TP: 2, PP: 2, DP: 1}, alloc(4))
	golden := goldenState(ptc)
	if err := LoadPTC(job, ptc, stores, golden); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPTC(job, ptc, stores)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range golden {
		if !back[id].Equal(want) {
			t.Fatalf("ReadPTC mismatch for %s", id)
		}
	}
}

func TestApplyErrorsAreDescriptive(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	const job = "job0"
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 2}, alloc(2))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Missing destination store.
	tr := &Transformer{Job: job, Stores: map[cluster.DeviceID]store.Access{0: store.Local{FS: store.NewMemFS()}}}
	if _, err := tr.Apply(plan); err == nil || !strings.Contains(err.Error(), "no store") {
		t.Fatalf("missing store error: %v", err)
	}
	// Stores exist but hold no state.
	tr.Stores = localStores(alloc(2))
	if _, err := tr.Apply(plan); err == nil || !strings.Contains(err.Error(), "fetch") {
		t.Fatalf("missing state error: %v", err)
	}
}
