// Package perfmodel estimates training throughput (samples/s) for a
// model under a multi-dimensional parallelization configuration on a
// cluster topology. It substitutes for profiling-based model
// parallelizers (Alpa, Megatron-LM): Tenplex asks it for the best
// (T, P, D) for a device count, and the Fig. 3 sweep uses it to
// reproduce the >10× throughput spread between configurations.
//
// The per-iteration time model follows the standard decomposition:
//
//	iter = (compute + tpComm + ppComm) · bubble + dpComm
//
// where compute divides the model FLOPs over devices, tensor-parallel
// communication all-reduces activations per layer inside each TP group,
// pipeline parallelism multiplies by the bubble factor (m+P−1)/m for m
// micro-batches and exchanges boundary activations, and data
// parallelism all-reduces gradients across replicas. Which terms
// dominate depends on where the parallelism groups land in the
// topology — TP inside an NVLink pair is nearly free, TP across
// InfiniBand is catastrophic — which is exactly the effect Fig. 3
// demonstrates.
package perfmodel

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
)

// Params tunes the cost model.
type Params struct {
	// GlobalBatch is the per-iteration sample count across all replicas.
	GlobalBatch int
	// MicroBatch is the pipeline micro-batch size per replica.
	MicroBatch int
	// DevFLOPS is the effective per-device compute rate (FLOP/s),
	// already discounted for utilization.
	DevFLOPS float64
	// GradBytesPerParam is the gradient payload per parameter for the
	// DP all-reduce (4 for fp32, 2 for fp16).
	GradBytesPerParam int
	// ActBytesPerElem is the activation element size (4 for fp32).
	ActBytesPerElem int
	// TPAllReducesPerLayer counts activation all-reduces per transformer
	// layer per sample pass (Megatron: 2 forward + 2 backward).
	TPAllReducesPerLayer int
	// DeviceMemGB bounds the per-device state for feasibility; 0 skips
	// the check.
	DeviceMemGB float64
	// StateBytesPerParam sizes the resident training state for the
	// feasibility check (params + grads + optimizer ≈ 16 B/param for
	// mixed precision with fp32 Adam).
	StateBytesPerParam int
	// PlacementHorizonSec amortizes a placement's one-time migration
	// cost into its score (see ScorePlacement); 0 means the default
	// (DefaultPlacementHorizonSec).
	PlacementHorizonSec float64
}

// DefaultParams mirrors the paper's setup: A6000-class devices at
// realistic utilization, fp32 gradients, Megatron-style TP.
func DefaultParams() Params {
	return Params{
		GlobalBatch:          128,
		MicroBatch:           4,
		DevFLOPS:             70e12,
		GradBytesPerParam:    4,
		ActBytesPerElem:      4,
		TPAllReducesPerLayer: 4,
		DeviceMemGB:          48,
		StateBytesPerParam:   16,
	}
}

// Estimate describes one configuration's predicted performance.
type Estimate struct {
	Config     parallel.Config
	SamplesSec float64
	IterSec    float64
	Feasible   bool
	Reason     string // why infeasible, when Feasible is false

	ComputeSec float64
	TPCommSec  float64
	PPCommSec  float64
	DPCommSec  float64
	Bubble     float64
}

// Throughput evaluates cfg for m on the first cfg.WorldSize() devices
// of the allocation.
func Throughput(m *model.Model, cfg parallel.Config, topo *cluster.Topology,
	alloc cluster.Allocation, p Params) Estimate {
	est := Estimate{Config: cfg, Feasible: true}
	if err := cfg.Validate(len(alloc), m); err != nil {
		return Estimate{Config: cfg, Reason: err.Error()}
	}
	if p.GlobalBatch%cfg.DP != 0 {
		return Estimate{Config: cfg, Reason: fmt.Sprintf("global batch %d not divisible by DP %d", p.GlobalBatch, cfg.DP)}
	}
	if cfg.TP > 1 && !m.TensorParallelizable() {
		return Estimate{Config: cfg, Reason: fmt.Sprintf("%s has no tensor-parallel dimensions", m.Name)}
	}

	// Memory feasibility: state bytes per device.
	if p.DeviceMemGB > 0 {
		perDev := float64(m.NumParams()) * float64(p.StateBytesPerParam) / float64(cfg.TP*cfg.PP)
		if perDev > p.DeviceMemGB*1e9 {
			return Estimate{Config: cfg, Reason: fmt.Sprintf("needs %.1f GB/device, have %.0f", perDev/1e9, p.DeviceMemGB)}
		}
	}

	replicaBatch := p.GlobalBatch / cfg.DP
	micro := p.MicroBatch
	if micro > replicaBatch {
		micro = replicaBatch
	}
	numMicro := (replicaBatch + micro - 1) / micro

	// Compute: model FLOPs divided over the TP×PP grid, per replica.
	est.ComputeSec = m.FLOPsPerSample() * float64(replicaBatch) / (float64(cfg.TP*cfg.PP) * p.DevFLOPS)

	actElems := m.ActElemsPerSample
	if actElems == 0 {
		actElems = 1
	}

	// Tensor-parallel activation all-reduces: per layer, per sample,
	// TPAllReducesPerLayer reductions of the boundary activation. All
	// layers of one stage all-reduce within the (worst) TP group.
	if cfg.TP > 1 {
		perLayerBytes := int64(actElems) * int64(p.ActBytesPerElem)
		layers := len(m.Layers)
		vol := perLayerBytes * int64(p.TPAllReducesPerLayer) * int64(layers) * int64(replicaBatch) / int64(cfg.PP)
		group := worstTPGroup(cfg, alloc, topo)
		est.TPCommSec = netsim.AllReduceTime(topo, group, vol)
	}

	// Pipeline: boundary activations per micro-batch per stage edge.
	if cfg.PP > 1 {
		actBytes := int64(actElems) * int64(p.ActBytesPerElem) * int64(micro)
		var worst float64
		for tp := 0; tp < cfg.TP; tp++ {
			stagesDevs := cfg.PPNeighbors(alloc, 0, tp)
			for i := 0; i+1 < len(stagesDevs); i++ {
				t := netsim.PointToPointTime(topo, stagesDevs[i], stagesDevs[i+1], actBytes)
				if t > worst {
					worst = t
				}
			}
		}
		// 2× for forward and backward, once per micro-batch.
		est.PPCommSec = 2 * worst * float64(numMicro)
	}

	est.Bubble = 1
	if cfg.PP > 1 {
		est.Bubble = float64(numMicro+cfg.PP-1) / float64(numMicro)
	}

	// Data-parallel gradient all-reduce: each device syncs its shard of
	// the parameters with its DP group.
	if cfg.DP > 1 {
		gradBytes := m.NumParams() * int64(p.GradBytesPerParam) / int64(cfg.TP*cfg.PP)
		var worst float64
		for pp := 0; pp < cfg.PP; pp++ {
			for tp := 0; tp < cfg.TP; tp++ {
				group := cfg.DPGroup(alloc, pp, tp)
				if t := netsim.AllReduceTime(topo, group, gradBytes); t > worst {
					worst = t
				}
			}
		}
		est.DPCommSec = worst
	}

	est.IterSec = (est.ComputeSec+est.TPCommSec+est.PPCommSec)*est.Bubble + est.DPCommSec
	est.SamplesSec = float64(p.GlobalBatch) / est.IterSec
	return est
}

// worstTPGroup returns the TP group with the slowest interconnect (the
// one that gates the iteration).
func worstTPGroup(cfg parallel.Config, alloc cluster.Allocation, topo *cluster.Topology) []cluster.DeviceID {
	var worst []cluster.DeviceID
	var worstTime float64 = -1
	for dp := 0; dp < cfg.DP; dp++ {
		for pp := 0; pp < cfg.PP; pp++ {
			g := cfg.TPGroup(alloc, dp, pp)
			t := netsim.AllReduceTime(topo, g, 1<<20)
			if t > worstTime {
				worstTime, worst = t, g
			}
		}
	}
	return worst
}

// Sweep evaluates every configuration for n devices and returns the
// estimates sorted by throughput, best first — Fig. 3's bar chart.
func Sweep(m *model.Model, topo *cluster.Topology, n int, p Params) []Estimate {
	alloc := topo.FirstN(n)
	var out []Estimate
	for _, cfg := range parallel.Enumerate(n, n, 8) {
		out = append(out, Throughput(m, cfg, topo, alloc, p))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		return out[i].SamplesSec > out[j].SamplesSec
	})
	return out
}

// Best returns the highest-throughput feasible configuration for n
// devices — the "request a new parallelization configuration from the
// parallelizer" step of a reconfiguration (§5.1, step 2).
func Best(m *model.Model, topo *cluster.Topology, n int, p Params) (Estimate, error) {
	sweep := Sweep(m, topo, n, p)
	if len(sweep) == 0 || !sweep[0].Feasible {
		return Estimate{}, fmt.Errorf("perfmodel: no feasible configuration for %d devices", n)
	}
	return sweep[0], nil
}
