package perfmodel

import (
	"sync"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

func TestCacheBestMatchesBest(t *testing.T) {
	m := model.GPT3XL()
	topo := cluster.OnPrem16()
	p := DefaultParams()
	c := NewCache()
	for _, n := range []int{4, 8, 16, 8, 4, 16} {
		want, werr := Best(m, topo, n, p)
		got, gerr := c.Best(m, topo, n, p)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("n=%d: err %v vs %v", n, gerr, werr)
		}
		if got.Config != want.Config || got.SamplesSec != want.SamplesSec {
			t.Fatalf("n=%d: cached %+v, direct %+v", n, got.Config, want.Config)
		}
	}
	hits, misses := c.Stats()
	if misses != 3 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/3", hits, misses)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d keys, want 3", c.Len())
	}
}

func TestCacheBestCachesErrors(t *testing.T) {
	m := model.GPT3_6B7() // needs several devices to fit in memory
	topo := cluster.OnPrem16()
	c := NewCache()
	if _, err := c.Best(m, topo, 1, DefaultParams()); err == nil {
		t.Skip("1-device placement unexpectedly feasible")
	}
	if _, err := c.Best(m, topo, 1, DefaultParams()); err == nil {
		t.Fatal("cached error lost")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheDistinguishesParams(t *testing.T) {
	m := model.GPT3XL()
	topo := cluster.OnPrem16()
	c := NewCache()
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.GlobalBatch = 256
	if _, err := c.Best(m, topo, 16, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Best(m, topo, 16, p2); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("params change did not miss: %d misses", misses)
	}
}

func TestCacheConcurrent(t *testing.T) {
	m := model.GPT3XL()
	topo := cluster.OnPrem16()
	p := DefaultParams()
	c := NewCache()
	want, err := Best(m, topo, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := c.Best(m, topo, 16, p)
				if err != nil || got.Config != want.Config {
					t.Errorf("concurrent Best: %+v, %v", got.Config, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkCacheBestHit measures the coordinator's steady-state
// placement query: the sweep already memoized, only the map lookup
// remains.
func BenchmarkCacheBestHit(b *testing.B) {
	m := model.GPT3XL()
	topo := cluster.OnPrem16()
	p := DefaultParams()
	c := NewCache()
	if _, err := c.Best(m, topo, 16, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Best(m, topo, 16, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestUncached is the baseline the cache short-circuits: a
// full enumerate-and-price sweep per query.
func BenchmarkBestUncached(b *testing.B) {
	m := model.GPT3XL()
	topo := cluster.OnPrem16()
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Best(m, topo, 16, p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCacheInvalidatedByTopologyGeneration is the regression test for
// the fail-stop staleness bug: cache keys used to ignore topology
// mutations, so a placement scored before a device failure kept being
// served after it. Marking a device failed bumps the topology
// generation, which must invalidate cached entries.
func TestCacheInvalidatedByTopologyGeneration(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	topo := cluster.OnPrem16()
	p := DefaultParams()
	p.DeviceMemGB = 0
	c := NewCache()
	alloc := topo.FirstN(4)
	cfg := parallel.Config{TP: 1, PP: 2, DP: 2}
	before := c.ScorePlacement(m, cfg, topo, alloc, Placement{}, p)
	if !before.Feasible {
		t.Fatalf("healthy placement infeasible: %s", before.Reason)
	}
	// Warm the count-based side too.
	if _, err := c.Best(m, topo, 4, p); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := c.Stats()

	topo.MarkFailed(alloc[0])

	after := c.ScorePlacement(m, cfg, topo, alloc, Placement{}, p)
	if after.Feasible {
		t.Fatal("cache served the pre-failure placement score after the device was marked failed")
	}
	if _, err := c.Best(m, topo, 4, p); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore+2 {
		t.Fatalf("generation bump did not miss: %d misses before, %d after", missesBefore, misses)
	}
	// The post-failure entries are cached under the new generation.
	hitsBefore, _ := c.Stats()
	c.ScorePlacement(m, cfg, topo, alloc, Placement{}, p)
	if hits, _ := c.Stats(); hits != hitsBefore+1 {
		t.Fatal("post-failure score not served from cache")
	}
}

// TestCacheCheapestPlacement: the forced-reshape sweep is memoized and
// infeasible sweeps cache their error.
func TestCacheCheapestPlacement(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	topo := cluster.OnPrem16()
	p := DefaultParams()
	p.DeviceMemGB = 0
	c := NewCache()
	cur := Placement{Alloc: topo.FirstN(8), Config: parallel.Config{TP: 1, PP: 4, DP: 2}}
	a, err := c.CheapestPlacement(m, topo, topo.FirstN(4), cur, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CheapestPlacement(m, topo, topo.FirstN(4), cur, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("memoized cheapest placement differs: %+v vs %+v", a, b)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}
