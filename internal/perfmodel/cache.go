package perfmodel

import (
	"fmt"
	"sync"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// Cache memoizes the best-configuration search per (model, topology,
// device count, params) and the allocation-aware placement search per
// (model, topology, allocation signature, current-allocation signature,
// params). The multi-job coordinator asks for the best (T, P, D) of the
// same handful of models at every admission, resize and recovery
// decision — and, in placement-aware mode, scores several candidate
// device sets per decision; a full sweep enumerates and prices every
// configuration each time, which is wasteful for queries that repeat
// thousands of times per simulation. Keys use pointer identity for the
// model and topology, so callers must reuse their catalog and topology
// values — which Tenplex jobs do by construction.
//
// Staleness is tracked per touched region, not per topology: every
// entry is stamped with the sum of the per-worker health epochs
// (cluster.Topology.WorkerEpoch) of exactly the workers its inputs
// touch. A device failure or link-scale change bumps only its own
// worker's epoch, so it invalidates only the entries whose allocations
// intersect that worker — at datacenter scale an event no longer wipes
// scores for the ~200 jobs it cannot have affected. A stale lookup
// counts as a miss and is recomputed in place.
//
// Growth is bounded: the cache holds at most Cap entries (default
// DefaultCap; SetCap overrides). When an insert exceeds the cap,
// stale-stamped entries are evicted first — they can never hit again —
// then the oldest entries by insertion order until the cache is back
// under cap. Placement entries are tagged with the querying job (the
// *For variants) so DropJob can shed a completed job's scores eagerly.
// Eviction never changes results: the sweeps are pure, so an evicted
// entry is simply recomputed on the next query.
//
// Cache is safe for concurrent use. Concurrent misses for the same key
// may both compute the sweep; the result is identical (the sweeps are
// pure), so last-write-wins is harmless.
type Cache struct {
	mu      sync.Mutex
	m       map[cacheKey]cacheEntry
	pm      map[placementKey]placementEntry
	ord     []ordKey
	ordHead int
	cap     int
	hits    int64
	misses  int64
}

// DefaultCap is the default entry cap across both query kinds — ample
// for a 2048-device, 200-job simulation while bounding a long run's
// footprint to tens of MB.
const DefaultCap = 1 << 16

type cacheKey struct {
	model *model.Model
	topo  *cluster.Topology
	n     int
	p     Params
}

type cacheEntry struct {
	est   Estimate
	err   error
	stamp uint64
	ws    []int32 // workers the estimate depends on
}

type placementKey struct {
	model *model.Model
	topo  *cluster.Topology
	cfg   string // configuration under evaluation
	alloc string // Allocation.Signature of the candidate set
	cur   string // current allocation signature plus its configuration
	p     Params
}

type placementEntry struct {
	ps    PlacementScore
	stamp uint64
	ws    []int32 // workers of alloc ∪ cur
	job   string  // owning job for DropJob; "" = untagged
}

// ordKey records insertion order across both maps for FIFO eviction.
type ordKey struct {
	pm bool
	ck cacheKey
	pk placementKey
}

// NewCache returns an empty memoizing wrapper around Best and
// BestPlacement, capped at DefaultCap entries.
func NewCache() *Cache {
	return &Cache{
		m:   map[cacheKey]cacheEntry{},
		pm:  map[placementKey]placementEntry{},
		cap: DefaultCap,
	}
}

// SetCap changes the entry cap; n <= 0 removes the bound. Shrinking
// below the current size takes effect at the next insert.
func (c *Cache) SetCap(n int) {
	c.mu.Lock()
	c.cap = n
	c.mu.Unlock()
}

// stampOf sums the current health epochs of the given workers. Epochs
// only grow, so the sum is monotone in every component: any mutation of
// a listed worker changes the stamp. Duplicate workers are harmless.
func stampOf(topo *cluster.Topology, ws []int32) uint64 {
	var s uint64
	for _, w := range ws {
		s += topo.WorkerEpoch(int(w))
	}
	return s
}

// workersOf appends the (consecutively deduplicated) workers of the
// allocation to ws.
func workersOf(topo *cluster.Topology, alloc cluster.Allocation, ws []int32) []int32 {
	for _, d := range alloc {
		w := int32(topo.WorkerOf(d))
		if len(ws) == 0 || ws[len(ws)-1] != w {
			ws = append(ws, w)
		}
	}
	return ws
}

// Best returns Best(m, topo, n, p), serving repeated queries from the
// cache. Infeasible device counts (Best errors) are cached too, so the
// coordinator's downward search for a feasible lease size stays cheap.
// Entries are stamped over the workers of the first-n device prefix the
// sweep prices against, so only mutations of those workers invalidate.
func (c *Cache) Best(m *model.Model, topo *cluster.Topology, n int, p Params) (Estimate, error) {
	k := cacheKey{model: m, topo: topo, n: n, p: p}
	c.mu.Lock()
	e, ok := c.m[k]
	if ok && stampOf(topo, e.ws) == e.stamp {
		c.hits++
		c.mu.Unlock()
		return e.est, e.err
	}
	c.mu.Unlock()
	est, err := Best(m, topo, n, p)
	ws := workersOf(topo, topo.FirstN(n), nil)
	c.mu.Lock()
	c.misses++
	if _, existed := c.m[k]; !existed {
		c.ord = append(c.ord, ordKey{ck: k})
	}
	c.m[k] = cacheEntry{est: est, err: err, stamp: stampOf(topo, ws), ws: ws}
	c.evictLocked()
	c.mu.Unlock()
	return est, err
}

// ScorePlacement returns ScorePlacement(m, cfg, topo, alloc, cur, p),
// memoized per allocation signature — the placement-aware coordinator
// scores the same candidate sets repeatedly as the cluster's free pool
// cycles through a handful of shapes. Infeasible scores are cached
// like feasible ones.
func (c *Cache) ScorePlacement(m *model.Model, cfg parallel.Config, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) PlacementScore {
	return c.ScorePlacementFor("", m, cfg, topo, alloc, cur, p)
}

// ScorePlacementFor is ScorePlacement with the entry tagged as owned by
// job, so DropJob(job) sheds it when the job leaves the cluster.
func (c *Cache) ScorePlacementFor(job string, m *model.Model, cfg parallel.Config, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) PlacementScore {
	k := placementKey{
		model: m, topo: topo,
		cfg:   cfg.String(),
		alloc: alloc.Signature(),
		cur:   cur.Alloc.Signature() + "|" + cur.Config.String(),
		p:     p,
	}
	c.mu.Lock()
	e, ok := c.pm[k]
	if ok && stampOf(topo, e.ws) == e.stamp {
		c.hits++
		c.mu.Unlock()
		return e.ps
	}
	c.mu.Unlock()
	ps := ScorePlacement(m, cfg, topo, alloc, cur, p)
	ws := workersOf(topo, cur.Alloc, workersOf(topo, alloc, nil))
	c.mu.Lock()
	c.misses++
	if _, existed := c.pm[k]; !existed {
		c.ord = append(c.ord, ordKey{pm: true, pk: k})
	}
	c.pm[k] = placementEntry{ps: ps, stamp: stampOf(topo, ws), ws: ws, job: job}
	c.evictLocked()
	c.mu.Unlock()
	return ps
}

// cheapestKeyCfg is the placementKey cfg sentinel for memoized
// CheapestPlacement sweeps; it cannot collide with a Config.String().
const cheapestKeyCfg = "<cheapest>"

// CheapestPlacement returns CheapestPlacement(m, topo, alloc, cur, p),
// memoized per allocation signature. A failed sweep (no feasible
// configuration) is cached as an infeasible score.
func (c *Cache) CheapestPlacement(m *model.Model, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) (PlacementScore, error) {
	return c.CheapestPlacementFor("", m, topo, alloc, cur, p)
}

// CheapestPlacementFor is CheapestPlacement with the entry tagged as
// owned by job, so DropJob(job) sheds it when the job leaves.
func (c *Cache) CheapestPlacementFor(job string, m *model.Model, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) (PlacementScore, error) {
	k := placementKey{
		model: m, topo: topo,
		cfg:   cheapestKeyCfg,
		alloc: alloc.Signature(),
		cur:   cur.Alloc.Signature() + "|" + cur.Config.String(),
		p:     p,
	}
	c.mu.Lock()
	e, ok := c.pm[k]
	if ok && stampOf(topo, e.ws) == e.stamp {
		c.hits++
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
		ps, err := CheapestPlacement(m, topo, alloc, cur, p)
		if err != nil {
			ps = PlacementScore{Reason: err.Error()}
		}
		ws := workersOf(topo, cur.Alloc, workersOf(topo, alloc, nil))
		e = placementEntry{ps: ps, stamp: stampOf(topo, ws), ws: ws, job: job}
		c.mu.Lock()
		c.misses++
		if _, existed := c.pm[k]; !existed {
			c.ord = append(c.ord, ordKey{pm: true, pk: k})
		}
		c.pm[k] = e
		c.evictLocked()
		c.mu.Unlock()
	}
	if !e.ps.Feasible {
		return PlacementScore{}, fmt.Errorf("perfmodel: %s", e.ps.Reason)
	}
	return e.ps, nil
}

// DropJob evicts every placement entry tagged with job (via the *For
// variants) and returns the number dropped. The coordinator calls it
// when a job completes or is lost, so a long multi-job run does not
// retain scores for dead jobs until cap pressure finds them.
func (c *Cache) DropJob(job string) int {
	if job == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.pm {
		if e.job == job {
			delete(c.pm, k)
			n++
		}
	}
	return n
}

// evictLocked enforces the cap: stale-stamped entries go first (their
// touched region mutated, so they can never hit again), then the
// oldest entries by insertion order until the cache is 10% under cap.
func (c *Cache) evictLocked() {
	if c.cap <= 0 || len(c.m)+len(c.pm) <= c.cap {
		return
	}
	for k, e := range c.m {
		if stampOf(k.topo, e.ws) != e.stamp {
			delete(c.m, k)
		}
	}
	for k, e := range c.pm {
		if stampOf(k.topo, e.ws) != e.stamp {
			delete(c.pm, k)
		}
	}
	target := c.cap - c.cap/10
	for len(c.m)+len(c.pm) > target && c.ordHead < len(c.ord) {
		o := c.ord[c.ordHead]
		c.ordHead++
		if o.pm {
			delete(c.pm, o.pk)
		} else {
			delete(c.m, o.ck)
		}
	}
	if c.ordHead > len(c.ord)/2 {
		c.ord = append(c.ord[:0:0], c.ord[c.ordHead:]...)
		c.ordHead = 0
	}
}

// Stats reports cache hits and misses since creation (count-based and
// placement queries combined).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached keys across both query kinds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m) + len(c.pm)
}
