package perfmodel

import (
	"sync"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
)

// Cache memoizes the best-configuration search per (model, topology,
// device count, params). The multi-job coordinator asks for the best
// (T, P, D) of the same handful of models at every admission, resize
// and recovery decision; a full Sweep enumerates and prices every
// configuration each time, which is wasteful for queries that repeat
// thousands of times per simulation. Keys use pointer identity for the
// model and topology, so callers must reuse their catalog and topology
// values — which Tenplex jobs do by construction.
//
// Cache is safe for concurrent use. Concurrent misses for the same key
// may both compute the sweep; the result is identical (Sweep is pure),
// so last-write-wins is harmless.
type Cache struct {
	mu     sync.Mutex
	m      map[cacheKey]cacheEntry
	hits   int64
	misses int64
}

type cacheKey struct {
	model *model.Model
	topo  *cluster.Topology
	n     int
	p     Params
}

type cacheEntry struct {
	est Estimate
	err error
}

// NewCache returns an empty memoizing wrapper around Best.
func NewCache() *Cache { return &Cache{m: map[cacheKey]cacheEntry{}} }

// Best returns Best(m, topo, n, p), serving repeated queries from the
// cache. Infeasible device counts (Best errors) are cached too, so the
// coordinator's downward search for a feasible lease size stays cheap.
func (c *Cache) Best(m *model.Model, topo *cluster.Topology, n int, p Params) (Estimate, error) {
	k := cacheKey{model: m, topo: topo, n: n, p: p}
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if ok {
		return e.est, e.err
	}
	est, err := Best(m, topo, n, p)
	c.mu.Lock()
	c.misses++
	c.m[k] = cacheEntry{est: est, err: err}
	c.mu.Unlock()
	return est, err
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached (model, topology, n, params) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
