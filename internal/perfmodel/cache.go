package perfmodel

import (
	"fmt"
	"sync"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// Cache memoizes the best-configuration search per (model, topology,
// device count, params) and the allocation-aware placement search per
// (model, topology, allocation signature, current-allocation signature,
// params). The multi-job coordinator asks for the best (T, P, D) of the
// same handful of models at every admission, resize and recovery
// decision — and, in placement-aware mode, scores several candidate
// device sets per decision; a full sweep enumerates and prices every
// configuration each time, which is wasteful for queries that repeat
// thousands of times per simulation. Keys use pointer identity for the
// model and topology, so callers must reuse their catalog and topology
// values — which Tenplex jobs do by construction — plus the topology's
// Generation, so a fail-stop device marking (or any other topology
// mutation) invalidates every entry computed against the pre-mutation
// cluster instead of silently serving stale results.
//
// Cache is safe for concurrent use. Concurrent misses for the same key
// may both compute the sweep; the result is identical (the sweeps are
// pure), so last-write-wins is harmless.
type Cache struct {
	mu     sync.Mutex
	m      map[cacheKey]cacheEntry
	pm     map[placementKey]placementEntry
	hits   int64
	misses int64
}

type cacheKey struct {
	model *model.Model
	topo  *cluster.Topology
	gen   uint64
	n     int
	p     Params
}

type cacheEntry struct {
	est Estimate
	err error
}

type placementKey struct {
	model *model.Model
	topo  *cluster.Topology
	gen   uint64
	cfg   string // configuration under evaluation
	alloc string // Allocation.Signature of the candidate set
	cur   string // current allocation signature plus its configuration
	p     Params
}

type placementEntry struct {
	ps PlacementScore
}

// NewCache returns an empty memoizing wrapper around Best and
// BestPlacement.
func NewCache() *Cache {
	return &Cache{m: map[cacheKey]cacheEntry{}, pm: map[placementKey]placementEntry{}}
}

// Best returns Best(m, topo, n, p), serving repeated queries from the
// cache. Infeasible device counts (Best errors) are cached too, so the
// coordinator's downward search for a feasible lease size stays cheap.
func (c *Cache) Best(m *model.Model, topo *cluster.Topology, n int, p Params) (Estimate, error) {
	k := cacheKey{model: m, topo: topo, gen: topo.Generation(), n: n, p: p}
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if ok {
		return e.est, e.err
	}
	est, err := Best(m, topo, n, p)
	c.mu.Lock()
	c.misses++
	c.m[k] = cacheEntry{est: est, err: err}
	c.mu.Unlock()
	return est, err
}

// ScorePlacement returns ScorePlacement(m, cfg, topo, alloc, cur, p),
// memoized per allocation signature — the placement-aware coordinator
// scores the same candidate sets repeatedly as the cluster's free pool
// cycles through a handful of shapes. Infeasible scores are cached
// like feasible ones.
func (c *Cache) ScorePlacement(m *model.Model, cfg parallel.Config, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) PlacementScore {
	k := placementKey{
		model: m, topo: topo, gen: topo.Generation(),
		cfg:   cfg.String(),
		alloc: alloc.Signature(),
		cur:   cur.Alloc.Signature() + "|" + cur.Config.String(),
		p:     p,
	}
	c.mu.Lock()
	e, ok := c.pm[k]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if ok {
		return e.ps
	}
	ps := ScorePlacement(m, cfg, topo, alloc, cur, p)
	c.mu.Lock()
	c.misses++
	c.pm[k] = placementEntry{ps: ps}
	c.mu.Unlock()
	return ps
}

// cheapestKeyCfg is the placementKey cfg sentinel for memoized
// CheapestPlacement sweeps; it cannot collide with a Config.String().
const cheapestKeyCfg = "<cheapest>"

// CheapestPlacement returns CheapestPlacement(m, topo, alloc, cur, p),
// memoized per allocation signature. A failed sweep (no feasible
// configuration) is cached as an infeasible score.
func (c *Cache) CheapestPlacement(m *model.Model, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) (PlacementScore, error) {
	k := placementKey{
		model: m, topo: topo, gen: topo.Generation(),
		cfg:   cheapestKeyCfg,
		alloc: alloc.Signature(),
		cur:   cur.Alloc.Signature() + "|" + cur.Config.String(),
		p:     p,
	}
	c.mu.Lock()
	e, ok := c.pm[k]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if !ok {
		ps, err := CheapestPlacement(m, topo, alloc, cur, p)
		if err != nil {
			ps = PlacementScore{Reason: err.Error()}
		}
		e = placementEntry{ps: ps}
		c.mu.Lock()
		c.misses++
		c.pm[k] = e
		c.mu.Unlock()
	}
	if !e.ps.Feasible {
		return PlacementScore{}, fmt.Errorf("perfmodel: %s", e.ps.Reason)
	}
	return e.ps, nil
}

// Stats reports cache hits and misses since creation (count-based and
// placement queries combined).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached keys across both query kinds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m) + len(c.pm)
}
