package perfmodel

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

func TestThroughputBasicShape(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPT3_2B7()
	p := DefaultParams()
	est := Throughput(m, parallel.Config{TP: 2, PP: 4, DP: 2}, topo, topo.FirstN(16), p)
	if !est.Feasible {
		t.Fatalf("(2,4,2) infeasible: %s", est.Reason)
	}
	if est.SamplesSec <= 0 || est.IterSec <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	if est.Bubble <= 1 {
		t.Fatalf("PP>1 must have a bubble, got %v", est.Bubble)
	}
}

// TestFig3Ranking reproduces the qualitative claims of Fig. 3 for GPT-3
// 2.7B on the 16-GPU on-prem cluster: (2,4,2) performs near-best because
// TP stays on NVLink pairs; (16,1,1) performs worst because TP crosses
// workers; and the spread between best and worst exceeds 10×.
func TestFig3Ranking(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPT3_2B7()
	p := DefaultParams()
	sweep := Sweep(m, topo, 16, p)
	if len(sweep) < 5 {
		t.Fatalf("sweep too small: %d configs", len(sweep))
	}
	byCfg := map[parallel.Config]Estimate{}
	var feasible []Estimate
	for _, e := range sweep {
		byCfg[e.Config] = e
		if e.Feasible {
			feasible = append(feasible, e)
		}
	}
	best, worst := feasible[0], feasible[len(feasible)-1]
	if best.SamplesSec < 10*worst.SamplesSec {
		t.Fatalf("spread %0.1fx, want >= 10x (best %v %.1f, worst %v %.1f)",
			best.SamplesSec/worst.SamplesSec, best.Config, best.SamplesSec, worst.Config, worst.SamplesSec)
	}
	// (16,1,1): TP over InfiniBand must rank at the bottom.
	if worst.Config != (parallel.Config{TP: 16, PP: 1, DP: 1}) {
		t.Fatalf("worst = %v, want (16,1,1)", worst.Config)
	}
	// (2,4,2) must be in the top 3.
	target := parallel.Config{TP: 2, PP: 4, DP: 2}
	rank := -1
	for i, e := range feasible {
		if e.Config == target {
			rank = i
		}
	}
	if rank < 0 || rank > 2 {
		t.Fatalf("(2,4,2) ranked %d; top of sweep: %v %v %v",
			rank, feasible[0].Config, feasible[1].Config, feasible[2].Config)
	}
	// TP within NVLink pairs must beat the same TP degree cross-worker
	// by a wide margin: compare TP=2 (intra) against TP=8 (spills to
	// PCIe/worker boundary).
	tp2 := byCfg[parallel.Config{TP: 2, PP: 1, DP: 8}]
	tp16 := byCfg[parallel.Config{TP: 16, PP: 1, DP: 1}]
	if tp2.SamplesSec < 5*tp16.SamplesSec {
		t.Fatalf("NVLink TP=2 (%.1f) should crush cross-worker TP=16 (%.1f)", tp2.SamplesSec, tp16.SamplesSec)
	}
}

func TestBestPicksFeasibleTop(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPT3XL()
	p := DefaultParams()
	for _, n := range []int{4, 8, 16} {
		best, err := Best(m, topo, n, p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if best.Config.WorldSize() != n {
			t.Fatalf("n=%d: best %v has wrong world size", n, best.Config)
		}
	}
}

func TestMemoryFeasibility(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPT3_6B7() // 6.7B × 16 B/param ≈ 107 GB of state
	p := DefaultParams()
	est := Throughput(m, parallel.Config{TP: 1, PP: 1, DP: 16}, topo, topo.FirstN(16), p)
	if est.Feasible {
		t.Fatal("6.7B pure-DP should not fit a 48 GB device")
	}
	if est.Reason == "" {
		t.Fatal("infeasible estimate must say why")
	}
	est2 := Throughput(m, parallel.Config{TP: 4, PP: 2, DP: 2}, topo, topo.FirstN(16), p)
	if !est2.Feasible {
		t.Fatalf("(4,2,2) should fit: %s", est2.Reason)
	}
}

func TestThroughputRejectsBadConfigs(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPT3XL()
	p := DefaultParams()
	est := Throughput(m, parallel.Config{TP: 3, PP: 1, DP: 1}, topo, topo.FirstN(16), p)
	if est.Feasible {
		t.Fatal("size-mismatched config accepted")
	}
	p.GlobalBatch = 10
	est = Throughput(m, parallel.Config{TP: 1, PP: 1, DP: 16}, topo, topo.FirstN(16), p)
	if est.Feasible {
		t.Fatal("indivisible global batch accepted")
	}
}

func TestDPCommGrowsWithModelSize(t *testing.T) {
	topo := cluster.OnPrem16()
	p := DefaultParams()
	cfg := parallel.Config{TP: 4, PP: 1, DP: 4}
	small := Throughput(model.GPT3XL(), cfg, topo, topo.FirstN(16), p)
	big := Throughput(model.GPT3_6B7(), cfg, topo, topo.FirstN(16), p)
	if big.DPCommSec <= small.DPCommSec {
		t.Fatalf("DP comm should grow with model size: %v vs %v", small.DPCommSec, big.DPCommSec)
	}
}

func TestResNetSweepFavorsDP(t *testing.T) {
	// ResNet-50 is small: pure data parallelism should win on 4 GPUs.
	topo := cluster.OnPrem16()
	m := model.ResNet50()
	p := DefaultParams()
	p.GlobalBatch = 256
	best, err := Best(m, topo, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if best.Config.DP != 4 {
		t.Fatalf("ResNet best config = %v, want pure DP", best.Config)
	}
}
