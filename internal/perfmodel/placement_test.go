package perfmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// Property tests for the placement scorer, in the style of the
// planner's TestPlanEquivalence*: randomized topologies, allocations
// and configurations pinning down the invariants the coordinator
// depends on — determinism, bandwidth scale-invariance, and that
// strictly-better-connected device sets never score worse.

// randTopo builds a random topology with physically-ordered link
// speeds (NVLink >= PCIe >= Net — every generated cluster satisfies
// the ordering real ones do).
func randTopo(rng *rand.Rand) *cluster.Topology {
	workers := 2 + rng.Intn(4)
	perWorker := 2 + rng.Intn(3)
	net := (1 + 9*rng.Float64()) * 1e9
	pcie := net * (1 + 9*rng.Float64())
	nvlink := pcie * (1 + 9*rng.Float64())
	return cluster.New(fmt.Sprintf("rand-%dx%d", workers, perWorker), workers, perWorker,
		cluster.LinkConfig{
			NVLinkBW:    nvlink,
			NVLinkPairs: rng.Intn(2) == 0,
			PCIeBW:      pcie,
			NetBW:       net,
			NetLatency:  rng.Float64() * 50e-6,
			StorageBW:   net / 2,
			MemCopyBW:   pcie / 2,
			DeviceMemGB: 48,
		})
}

// scaledTopo returns a copy of t with every bandwidth multiplied by k
// and latency zeroed (latency is an additive constant, not a link
// property the scale-invariance statement covers).
func scaledTopo(t *cluster.Topology, k float64) *cluster.Topology {
	s := *t
	s.NVLinkBW *= k
	s.PCIeBW *= k
	s.NetBW *= k
	s.StorageBW *= k
	s.MemCopyBW *= k
	s.NetLatency = 0
	return &s
}

// randAlloc picks n distinct devices in random order.
func randAlloc(rng *rand.Rand, topo *cluster.Topology, n int) cluster.Allocation {
	perm := rng.Perm(topo.NumDevices())
	out := make(cluster.Allocation, n)
	for i := 0; i < n; i++ {
		out[i] = cluster.DeviceID(perm[i])
	}
	return out
}

func placementParams() Params {
	p := DefaultParams()
	p.GlobalBatch = 64
	p.DeviceMemGB = 0
	return p
}

// TestScorePlacementDeterministic: the scorer is a pure function —
// byte-identical results across repeated calls, for 240 randomized
// (topology, allocation, configuration, current-placement) cases.
func TestScorePlacementDeterministic(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	cases := 0
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 60; trial++ {
			topo := randTopo(rng)
			n := 1 + rng.Intn(topo.NumDevices())
			alloc := randAlloc(rng, topo, n)
			cfgs := parallel.Enumerate(n, n, 8)
			cfg := cfgs[rng.Intn(len(cfgs))]
			var cur Placement
			if rng.Intn(2) == 0 && topo.NumDevices() > n {
				curCfgs := parallel.Enumerate(n, n, 8)
				cur = Placement{
					Alloc:  randAlloc(rng, topo, n),
					Config: curCfgs[rng.Intn(len(curCfgs))],
				}
			}
			a := ScorePlacement(m, cfg, topo, alloc, cur, placementParams())
			b := ScorePlacement(m, cfg, topo, alloc, cur, placementParams())
			if a != b {
				t.Fatalf("seed %d trial %d: scorer not deterministic:\n%+v\n%+v", seed, trial, a, b)
			}
			cases++
		}
	}
	if cases < 200 {
		t.Fatalf("only %d cases, want >= 200", cases)
	}
}

// TestScorePlacementScaleInvariance: multiplying every link bandwidth
// by k leaves MigrationBytes untouched, scales MigrationSec by exactly
// 1/k, and never flips which of two same-configuration candidates has
// the higher throughput — 200 randomized cases.
func TestScorePlacementScaleInvariance(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	cases := 0
	for seed := int64(10); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 140; trial++ {
			topo := randTopo(rng)
			k := 0.25 + 8*rng.Float64()
			fast := scaledTopo(topo, k)
			slow := scaledTopo(topo, 1) // latency zeroed on both sides
			n := 1 + rng.Intn(topo.NumDevices()-1)
			allocA := randAlloc(rng, topo, n)
			allocB := randAlloc(rng, topo, n)
			cfgs := parallel.Enumerate(n, n, 8)
			cfg := cfgs[rng.Intn(len(cfgs))]
			cur := Placement{Alloc: randAlloc(rng, topo, n), Config: cfg}

			sA := ScorePlacement(m, cfg, slow, allocA, cur, placementParams())
			fA := ScorePlacement(m, cfg, fast, allocA, cur, placementParams())
			if sA.Feasible != fA.Feasible {
				t.Fatalf("seed %d trial %d: feasibility changed under scaling", seed, trial)
			}
			if !sA.Feasible {
				continue
			}
			if sA.MigrationBytes != fA.MigrationBytes {
				t.Fatalf("seed %d trial %d: migration bytes %d -> %d under pure bandwidth scaling",
					seed, trial, sA.MigrationBytes, fA.MigrationBytes)
			}
			if sA.MigrationSec > 0 {
				ratio := sA.MigrationSec / fA.MigrationSec
				if math.Abs(ratio-k) > 1e-6*k {
					t.Fatalf("seed %d trial %d: migration time scaled by %g, want %g", seed, trial, ratio, k)
				}
			}
			// Throughput ranking between two candidates under the same
			// configuration is scale-free: compute is unchanged and every
			// communication term scales by 1/k.
			sB := ScorePlacement(m, cfg, slow, allocB, cur, placementParams())
			fB := ScorePlacement(m, cfg, fast, allocB, cur, placementParams())
			if sB.Feasible && (sA.SamplesSec > sB.SamplesSec) != (fA.SamplesSec > fB.SamplesSec) &&
				sA.SamplesSec != sB.SamplesSec {
				t.Fatalf("seed %d trial %d: throughput ranking flipped under bandwidth scaling:\nslow %g vs %g\nfast %g vs %g",
					seed, trial, sA.SamplesSec, sB.SamplesSec, fA.SamplesSec, fB.SamplesSec)
			}
			cases++
		}
	}
	if cases < 150 {
		t.Fatalf("only %d feasible cases, want >= 150", cases)
	}
}

// TestBetterConnectedNeverWorse covers the headline monotonicity
// property from two angles, 240 randomized cases total:
//
//  1. same allocation on a uniformly faster topology never scores
//     worse (every communication and migration term is non-increasing
//     in every bandwidth);
//  2. for communication-bound configurations (DP-only and TP-only,
//     where one group spans the whole allocation), a single-worker
//     device set never scores worse than one spanning workers — the
//     spanning ring includes a NIC link, the compact one only
//     intra-worker links, and PCIe >= Net in every generated topology.
func TestBetterConnectedNeverWorse(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	cases := 0
	for seed := int64(20); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 30; trial++ {
			topo := randTopo(rng)
			n := 1 + rng.Intn(topo.NumDevices())
			alloc := randAlloc(rng, topo, n)
			cfgs := parallel.Enumerate(n, n, 8)
			cfg := cfgs[rng.Intn(len(cfgs))]
			cur := Placement{Alloc: randAlloc(rng, topo, n), Config: cfg}

			// Angle 1: uplift a random subset of bandwidths.
			up := *topo
			if rng.Intn(2) == 0 {
				up.NVLinkBW *= 1 + 4*rng.Float64()
			}
			if rng.Intn(2) == 0 {
				up.PCIeBW *= 1 + 4*rng.Float64()
			}
			up.NetBW *= 1 + 4*rng.Float64()
			base := ScorePlacement(m, cfg, topo, alloc, cur, placementParams())
			better := ScorePlacement(m, cfg, &up, alloc, cur, placementParams())
			if base.Feasible {
				if !better.Feasible {
					t.Fatalf("seed %d trial %d: faster links made placement infeasible", seed, trial)
				}
				if better.Score < base.Score-1e-9*base.Score {
					t.Fatalf("seed %d trial %d: faster links lowered the score: %g -> %g",
						seed, trial, base.Score, better.Score)
				}
			}
			cases++
		}

		// Angle 2: compact vs spanning under whole-allocation groups.
		for trial := 0; trial < 30; trial++ {
			topo := randTopo(rng)
			perWorker := len(topo.Workers[0].Devices)
			if perWorker < 2 {
				continue
			}
			n := 2 + rng.Intn(perWorker-1)
			w := rng.Intn(topo.NumWorkers())
			compact := append(cluster.Allocation(nil), topo.Workers[w].Devices[:n]...)
			// The spanning set keeps one device on worker w and strays
			// the rest over other workers.
			spanning := cluster.Allocation{topo.Workers[w].Devices[0]}
			for i := 0; len(spanning) < n; i++ {
				ww := topo.Workers[(w+1+i)%topo.NumWorkers()]
				spanning = append(spanning, ww.Devices[i%len(ww.Devices)])
			}
			for _, cfg := range []parallel.Config{
				{TP: 1, PP: 1, DP: n},
				{TP: n, PP: 1, DP: 1},
			} {
				sc := ScorePlacement(m, cfg, topo, compact, Placement{}, placementParams())
				sp := ScorePlacement(m, cfg, topo, spanning, Placement{}, placementParams())
				if !sc.Feasible || !sp.Feasible {
					continue
				}
				if sc.Score < sp.Score {
					t.Fatalf("seed %d trial %d %v: compact single-worker set scored below the worker-spanning one: %g < %g",
						seed, trial, cfg, sc.Score, sp.Score)
				}
				cases++
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d cases, want >= 200", cases)
	}
}

// TestMigrationCostModel pins the layout model's qualitative shape on
// a concrete topology: no source or unchanged placement is free,
// shedding data-parallel replicas is free, growing them hauls full
// shard copies (dearer than pipeline re-sharding), and a device new to
// the allocation pays for its shard.
func TestMigrationCostModel(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(4, 16, 2, 32, 8)
	p := placementParams()
	eight := topo.FirstN(8)
	four := topo.FirstN(4)
	p42 := Placement{Alloc: eight, Config: parallel.Config{TP: 1, PP: 4, DP: 2}}
	p41 := Placement{Alloc: four, Config: parallel.Config{TP: 1, PP: 4, DP: 1}}

	if sec, b := MigrationCost(m, topo, Placement{}, p42, p); sec != 0 || b != 0 {
		t.Fatalf("initial placement priced %g s / %d B, want free", sec, b)
	}
	if sec, b := MigrationCost(m, topo, p42, p42, p); sec != 0 || b != 0 {
		t.Fatalf("unchanged placement priced %g s / %d B, want free", sec, b)
	}
	// DP shed: the surviving replica already holds every shard.
	if sec, b := MigrationCost(m, topo, p42, p41, p); sec != 0 || b != 0 {
		t.Fatalf("replica shed priced %g s / %d B, want free", sec, b)
	}
	// DP growth replicates the full shard set; PP growth only
	// re-shards. Both from the same 4-device (P4,D1) start.
	_, dpGrow := MigrationCost(m, topo, p41, Placement{Alloc: eight, Config: parallel.Config{TP: 1, PP: 4, DP: 2}}, p)
	_, ppGrow := MigrationCost(m, topo, p41, Placement{Alloc: eight, Config: parallel.Config{TP: 1, PP: 8, DP: 1}}, p)
	if dpGrow <= ppGrow {
		t.Fatalf("DP growth (%d B) should move more state than PP growth (%d B)", dpGrow, ppGrow)
	}
	// Same configuration onto a set with one new device: only the new
	// device's shard moves.
	swapped := append(cluster.Allocation(nil), four[:3]...)
	swapped = append(swapped, topo.Devices[10].ID)
	sec, b := MigrationCost(m, topo, p41, Placement{Alloc: swapped, Config: p41.Config}, p)
	if sec <= 0 || b <= 0 {
		t.Fatal("replacing a device should cost a shard move")
	}
	bpp := int64(p.StateBytesPerParam)
	if want := m.NumParams() * bpp / 4; b != want {
		t.Fatalf("replacement moved %d B, want one shard = %d B", b, want)
	}
}

// TestCheapestPlacement: the forced-reshape pick moves no more state
// than any other feasible configuration within the rate floor, and a
// pure replica shed prices as free.
func TestCheapestPlacement(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(4, 16, 2, 32, 8)
	p := placementParams()
	cur := Placement{Alloc: topo.FirstN(8), Config: parallel.Config{TP: 1, PP: 4, DP: 2}}
	four := topo.FirstN(4)
	got, err := CheapestPlacement(m, topo, four, cur, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.MigrationBytes != 0 {
		t.Fatalf("shrinking (P4,D2)@8 onto its leading replica should be free, got %d B as %v",
			got.MigrationBytes, got.Config)
	}
	if got.Config != (parallel.Config{TP: 1, PP: 4, DP: 1}) {
		t.Fatalf("cheapest shrink picked %v, want the replica shed (T=1,P=4,D=1)", got.Config)
	}
	// And it never returns a configuration dearer than ScorePlacement
	// says another in-floor configuration would be.
	best, err := BestPlacement(m, topo, four, cur, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.MigrationBytes > best.MigrationBytes {
		t.Fatalf("cheapest (%d B) moved more than the best-scoring configuration (%d B)",
			got.MigrationBytes, best.MigrationBytes)
	}
}

// TestScorePlacementRejectsFailedDevices: a candidate containing a
// fail-stopped device is infeasible, and the marking flows through the
// topology generation.
func TestScorePlacementRejectsFailedDevices(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(4, 16, 2, 32, 8)
	alloc := topo.FirstN(4)
	cfg := parallel.Config{TP: 1, PP: 2, DP: 2}
	before := ScorePlacement(m, cfg, topo, alloc, Placement{}, placementParams())
	if !before.Feasible {
		t.Fatalf("healthy placement infeasible: %s", before.Reason)
	}
	gen := topo.Generation()
	topo.MarkFailed(alloc[1])
	if topo.Generation() == gen {
		t.Fatal("MarkFailed did not bump the topology generation")
	}
	after := ScorePlacement(m, cfg, topo, alloc, Placement{}, placementParams())
	if after.Feasible {
		t.Fatal("placement on a failed device still feasible")
	}
}
