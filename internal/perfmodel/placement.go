package perfmodel

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
)

// This file is the allocation-aware half of the performance model: where
// Best/Sweep answer "what is the best (T, P, D) for n devices", assuming
// the scheduler's compact default placement, ScorePlacement answers "how
// good is THIS concrete device set" — the quantity the paper's central
// claim turns on: reconfiguration cost and steady-state throughput both
// depend on which devices a job holds, not just how many (§2, Fig. 3).
//
// A placement score combines two terms:
//
//   - the modeled training throughput of the configuration on the
//     concrete allocation (Throughput already prices TP-group locality,
//     pipeline boundary links and DP-ring worst links on the actual
//     topology links between the actual devices);
//   - a migration cost: the netsim-priced transfers that moving the
//     job's resident state from its current placement onto the
//     candidate would require. The model is layout-aware: under
//     (T, P, D) every device holds a 1/(T·P) shard of the state (data
//     parallelism replicates it), so growing DP means hauling full
//     shard copies to the new replicas while growing PP only re-shards
//     — exactly why the paper finds pipeline reconfiguration cheaper
//     than replication (Fig. 15).
//
// The combined Score amortizes the one-time migration over the
// placement horizon: Score = SamplesSec · H / (H + MigrationSec).
// Multiplying every link bandwidth by k > 0 leaves MigrationBytes
// untouched, scales MigrationSec by exactly 1/k, and never flips the
// SamplesSec ranking of two candidates sharing a configuration — the
// scale-invariance the property tests pin down.

// DefaultPlacementHorizonSec amortizes migration cost into a placement
// score when Params.PlacementHorizonSec is zero: a placement is assumed
// to live ~10 minutes before the cluster reshuffles again (the Philly
// median inter-arrival regime the coordinator simulates).
const DefaultPlacementHorizonSec = 600

// Placement names a concrete layout: which devices a job holds and the
// configuration laid out on them. The zero Config means the layout is
// unknown and the state is assumed evenly sharded over the devices.
type Placement struct {
	Alloc  cluster.Allocation
	Config parallel.Config
}

// PlacementScore is the evaluation of one concrete candidate device
// set for a job.
type PlacementScore struct {
	Config   parallel.Config
	Feasible bool
	Reason   string // why infeasible, when Feasible is false

	// SamplesSec and IterSec are the throughput estimate on the
	// concrete allocation (not the compact default).
	SamplesSec float64
	IterSec    float64
	// MigrationSec is the netsim-priced time to move the resident state
	// from the current placement onto the candidate; MigrationBytes is
	// the payload that crosses a device boundary doing so.
	MigrationSec   float64
	MigrationBytes int64
	// Score is SamplesSec discounted by migration amortized over the
	// placement horizon. Higher is better.
	Score float64
}

// shardBytes returns the per-device resident state bytes under a
// placement: a 1/(TP·PP) shard of the full state when the layout is
// known (every DP replica holds a full copy of its shard; a degraded
// allocation — fewer devices than the configuration's world size after
// a failure — keeps the surviving shards' size), an even 1/n split
// when it is not.
func shardBytes(total int64, p Placement) int64 {
	c := p.Config
	if c.TP >= 1 && c.PP >= 1 && c.DP >= 1 && c.WorldSize() >= len(p.Alloc) {
		return total / int64(c.TP*c.PP)
	}
	if len(p.Alloc) == 0 {
		return 0
	}
	return total / int64(len(p.Alloc))
}

// MigrationCost prices moving a job's resident training state from one
// placement to another on the topology. Every destination device needs
// its target shard; bytes it already holds (it was part of the source
// placement) are free, the rest stream in from the source devices,
// round-robin in device order, and the resulting transfers are priced
// as concurrent netsim flows. An empty source (initial placement:
// state materializes in place) costs zero; shrinking data parallelism
// costs zero too (surviving replicas already hold everything), while
// growing it hauls full shard copies to the new replicas.
func MigrationCost(m *model.Model, topo *cluster.Topology, from, to Placement, p Params) (float64, int64) {
	if len(from.Alloc) == 0 || len(to.Alloc) == 0 {
		return 0, 0
	}
	bpp := p.StateBytesPerParam
	if bpp == 0 {
		bpp = 16
	}
	total := m.NumParams() * int64(bpp)
	perFrom := shardBytes(total, from)
	perTo := shardBytes(total, to)
	// Under an unchanged configuration the planner identity-maps every
	// surviving device's shard (core.AlignDevices), so only devices new
	// to the allocation pay; a same-size shard under a DIFFERENT
	// configuration is different bytes and still re-shards.
	sameCfg := from.Config == to.Config && from.Config.TP >= 1

	held := map[cluster.DeviceID]bool{}
	for _, d := range from.Alloc {
		held[d] = true
	}
	var flows []netsim.Flow
	var moved int64
	src := 0
	for _, d := range to.Alloc {
		need := perTo
		if held[d] {
			if sameCfg {
				need = 0
			} else if perFrom > 0 {
				need -= perFrom
			}
		}
		if need <= 0 {
			continue
		}
		// Stream the missing bytes from the source devices, skipping
		// the receiver itself (local bytes are free).
		for need > 0 {
			s := from.Alloc[src%len(from.Alloc)]
			src++
			if s == d && len(from.Alloc) > 1 {
				s = from.Alloc[src%len(from.Alloc)]
				src++
			}
			if s == d {
				break // single-device source == receiver: nothing to move
			}
			b := need
			if b > perFrom && perFrom > 0 {
				b = perFrom
			}
			flows = append(flows, netsim.Flow{From: netsim.DevEP(s), To: netsim.DevEP(d), Bytes: b})
			moved += b
			need -= b
		}
	}
	if len(flows) == 0 {
		return 0, 0
	}
	return netsim.Simulate(topo, flows).Seconds, moved
}

// ScorePlacement evaluates one concrete candidate device set for a job:
// the throughput of cfg laid out on exactly those devices (TP-group
// locality, worst pipeline and DP links between the actual GPUs), plus
// the netsim-priced cost of migrating the job's state from its current
// placement onto the candidate. cur may be the zero Placement for an
// initial placement. Candidates containing a failed device are
// infeasible.
func ScorePlacement(m *model.Model, cfg parallel.Config, topo *cluster.Topology,
	alloc cluster.Allocation, cur Placement, p Params) PlacementScore {
	for _, d := range alloc {
		if topo.FailedDevice(d) {
			return PlacementScore{Config: cfg, Reason: fmt.Sprintf("device %d is failed", d)}
		}
	}
	est := Throughput(m, cfg, topo, alloc, p)
	if !est.Feasible {
		return PlacementScore{Config: cfg, Reason: est.Reason}
	}
	migSec, migBytes := MigrationCost(m, topo, cur, Placement{Alloc: alloc, Config: cfg}, p)
	horizon := p.PlacementHorizonSec
	if horizon <= 0 {
		horizon = DefaultPlacementHorizonSec
	}
	return PlacementScore{
		Config:         cfg,
		Feasible:       true,
		SamplesSec:     est.SamplesSec,
		IterSec:        est.IterSec,
		MigrationSec:   migSec,
		MigrationBytes: migBytes,
		Score:          est.SamplesSec * horizon / (horizon + migSec),
	}
}

// cheapestRateFloor bounds how much steady-state throughput a forced
// reshape may sacrifice for a cheaper move: CheapestPlacement only
// considers configurations at least this fraction as fast as the best
// one on the same device set. Without the floor, the size-only shard
// model can rate a pathological layout (tensor parallelism across
// NICs) as "free" and strand the job on it.
const cheapestRateFloor = 0.5

// CheapestPlacement returns the feasible configuration that moves the
// least state from cur onto alloc, considering only configurations
// within cheapestRateFloor of the set's best modeled throughput; ties
// break towards the higher throughput and then the earlier enumerated
// configuration. It is the reshape a preempted or failure-struck job
// should take: the job gains nothing from a forced change, so minimal
// disruption — not maximal steady-state rate — is the objective.
// (Voluntary growth is the opposite case; see BestPlacement.)
func CheapestPlacement(m *model.Model, topo *cluster.Topology, alloc cluster.Allocation,
	cur Placement, p Params) (PlacementScore, error) {
	n := len(alloc)
	if n == 0 {
		return PlacementScore{}, fmt.Errorf("perfmodel: empty candidate allocation")
	}
	var scored []PlacementScore
	bestRate := 0.0
	for _, cfg := range parallel.Enumerate(n, n, 8) {
		ps := ScorePlacement(m, cfg, topo, alloc, cur, p)
		if !ps.Feasible {
			continue
		}
		scored = append(scored, ps)
		if ps.SamplesSec > bestRate {
			bestRate = ps.SamplesSec
		}
	}
	if len(scored) == 0 {
		return PlacementScore{}, fmt.Errorf("perfmodel: no feasible configuration for allocation %v", alloc)
	}
	var best PlacementScore
	found := false
	for _, ps := range scored {
		if ps.SamplesSec < cheapestRateFloor*bestRate {
			continue
		}
		if !found || ps.MigrationBytes < best.MigrationBytes ||
			(ps.MigrationBytes == best.MigrationBytes && ps.SamplesSec > best.SamplesSec) {
			best, found = ps, true
		}
	}
	return best, nil
}

// BestPlacement evaluates every configuration for the concrete
// allocation and returns the highest-scoring feasible one — the
// allocation-aware counterpart of Best, answering "what would the
// parallelizer pick if it saw the real device set". Ties keep the
// earlier enumerated configuration so the choice is deterministic.
func BestPlacement(m *model.Model, topo *cluster.Topology, alloc cluster.Allocation,
	cur Placement, p Params) (PlacementScore, error) {
	n := len(alloc)
	if n == 0 {
		return PlacementScore{}, fmt.Errorf("perfmodel: empty candidate allocation")
	}
	var best PlacementScore
	found := false
	for _, cfg := range parallel.Enumerate(n, n, 8) {
		ps := ScorePlacement(m, cfg, topo, alloc, cur, p)
		if !ps.Feasible {
			continue
		}
		if !found || ps.Score > best.Score {
			best, found = ps, true
		}
	}
	if !found {
		return PlacementScore{}, fmt.Errorf("perfmodel: no feasible configuration for allocation %v", alloc)
	}
	return best, nil
}
