package perfmodel

import (
	"fmt"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// TestCacheSurvivesUnrelatedFailure pins the epoch-locality property
// the datacenter-scale control plane depends on: a device failure
// invalidates only the entries whose allocations touch the failed
// worker. Under the old generation-keyed cache, one failure wiped
// every job's scores.
func TestCacheSurvivesUnrelatedFailure(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	topo := cluster.OnPrem16() // 4 workers x 4 devices
	p := DefaultParams()
	p.DeviceMemGB = 0
	c := NewCache()
	cfg := parallel.Config{TP: 1, PP: 2, DP: 2}
	w0 := topo.FirstN(4)                                       // worker 0
	w1 := cluster.Allocation{4, 5, 6, 7}                       // worker 1
	if topo.WorkerOf(w1[0]) != 1 || topo.WorkerOf(w1[3]) != 1 { // layout guard
		t.Fatalf("expected devices 4-7 on worker 1")
	}
	c.ScorePlacement(m, cfg, topo, w0, Placement{}, p)
	c.ScorePlacement(m, cfg, topo, w1, Placement{}, p)

	topo.MarkFailed(w0[0]) // bumps only worker 0's epoch

	hitsBefore, missesBefore := c.Stats()
	c.ScorePlacement(m, cfg, topo, w1, Placement{}, p)
	if hits, _ := c.Stats(); hits != hitsBefore+1 {
		t.Fatal("failure on worker 0 evicted worker 1's placement score")
	}
	c.ScorePlacement(m, cfg, topo, w0, Placement{}, p)
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Fatal("failure on worker 0 did not invalidate worker 0's placement score")
	}
}

// TestCacheDropJob: a completed job's tagged placement entries are shed
// eagerly, other jobs' entries stay hot.
func TestCacheDropJob(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	topo := cluster.OnPrem16()
	p := DefaultParams()
	p.DeviceMemGB = 0
	c := NewCache()
	cfg := parallel.Config{TP: 1, PP: 2, DP: 2}
	allocA := topo.FirstN(4)
	allocB := cluster.Allocation{4, 5, 6, 7}
	c.ScorePlacementFor("job-a", m, cfg, topo, allocA, Placement{}, p)
	if _, err := c.CheapestPlacementFor("job-a", m, topo, allocA, Placement{Alloc: allocA, Config: cfg}, p); err != nil {
		t.Fatal(err)
	}
	c.ScorePlacementFor("job-b", m, cfg, topo, allocB, Placement{}, p)
	before := c.Len()

	if n := c.DropJob("job-a"); n != 2 {
		t.Fatalf("DropJob(job-a) dropped %d entries, want 2", n)
	}
	if got := c.Len(); got != before-2 {
		t.Fatalf("Len() = %d after DropJob, want %d", got, before-2)
	}
	hitsBefore, _ := c.Stats()
	c.ScorePlacementFor("job-b", m, cfg, topo, allocB, Placement{}, p)
	if hits, _ := c.Stats(); hits != hitsBefore+1 {
		t.Fatal("DropJob(job-a) evicted job-b's entry")
	}
	_, missesBefore := c.Stats()
	c.ScorePlacementFor("job-a", m, cfg, topo, allocA, Placement{}, p)
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Fatal("job-a's entry survived DropJob")
	}
	if n := c.DropJob(""); n != 0 {
		t.Fatalf("DropJob(\"\") dropped %d entries, want 0", n)
	}
}

// TestCacheCapBoundsGrowth: the cap holds under sustained distinct
// queries, stale entries go first, and surviving fresh entries still
// hit.
func TestCacheCapBoundsGrowth(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 32, 8)
	topo := cluster.OnPrem16()
	p := DefaultParams()
	p.DeviceMemGB = 0
	c := NewCache()
	c.SetCap(8)
	cfg := parallel.Config{TP: 1, PP: 2, DP: 2}
	// Distinct keys via distinct current placements of the same alloc.
	alloc := cluster.Allocation{4, 5, 6, 7}
	for i := 0; i < 40; i++ {
		cur := Placement{Alloc: cluster.Allocation{cluster.DeviceID(i % topo.NumDevices())}, Config: cfg}
		c.ScorePlacementFor(fmt.Sprintf("job-%d", i), m, cfg, topo, alloc, cur, p)
		if got := c.Len(); got > 8 {
			t.Fatalf("insert %d: Len() = %d exceeds cap 8", i, got)
		}
	}

	// Stale-first eviction: stamp one entry against worker 0, fail a
	// worker-0 device, then overflow the cap — the stale entry is
	// evicted (and would miss anyway), while the newest insert, at the
	// FIFO tail, always survives.
	c2 := NewCache()
	c2.SetCap(4)
	topo2 := cluster.OnPrem16()
	w0 := topo2.FirstN(4)
	c2.ScorePlacementFor("stale", m, cfg, topo2, w0, Placement{}, p)
	topo2.MarkFailed(w0[0])
	fresh := cluster.Allocation{4, 5, 6, 7}
	var lastCur Placement
	for i := 0; i < 6; i++ {
		lastCur = Placement{Alloc: cluster.Allocation{cluster.DeviceID(8 + i)}, Config: cfg}
		c2.ScorePlacementFor("filler", m, cfg, topo2, fresh, lastCur, p)
	}
	if got := c2.Len(); got > 4 {
		t.Fatalf("Len() = %d exceeds cap 4", got)
	}
	hitsBefore, _ := c2.Stats()
	c2.ScorePlacementFor("filler", m, cfg, topo2, fresh, lastCur, p)
	if hits, _ := c2.Stats(); hits != hitsBefore+1 {
		t.Fatal("newest entry did not survive eviction")
	}
	_, missesBefore := c2.Stats()
	c2.ScorePlacementFor("stale", m, cfg, topo2, w0, Placement{}, p)
	if _, misses := c2.Stats(); misses != missesBefore+1 {
		t.Fatal("stale entry served after its worker's epoch moved")
	}
}
