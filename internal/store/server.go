package store

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"

	"tenplex/internal/tensor"
)

// Server exposes a MemFS over the Tensor Store REST API:
//
//	GET    /query?path=P[&range=R]   tensor (wire format); R slices it
//	POST   /batch                    multi-range query: JSON entry list
//	                                 in, coalesced frame stream out
//	GET    /capabilities             JSON {batch, crc} feature probe
//	POST   /upload?path=P            store the tensor in the body
//	GET    /blob?path=P              raw blob bytes
//	POST   /blob?path=P              store the body as a blob
//	GET    /stat?path=P              JSON {dtype, shape, bytes, blob}
//	GET    /list?path=P              JSON [names...]
//	DELETE /delete?path=P            remove a file or directory
//
// The range attribute uses the NumPy-like syntax of
// tensor.ParseRegion, e.g. range=[:,2:4] returns the sub-tensor
// covering rows 2..4 of the second dimension.
type Server struct {
	FS  *MemFS
	mux *http.ServeMux

	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// NewServer wraps fs in a REST handler.
func NewServer(fs *MemFS) *Server {
	s := &Server{FS: fs, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("/upload", s.handleUpload)
	s.mux.HandleFunc("/blob", s.handleBlob)
	s.mux.HandleFunc("/stat", s.handleStat)
	s.mux.HandleFunc("/list", s.handleList)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/rename", s.handleRename)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BytesServed returns the total payload bytes sent to clients; tests use
// it to assert that range queries move only the requested data.
func (s *Server) BytesServed() int64 { return s.bytesOut.Load() }

// BytesReceived returns the total payload bytes uploaded by clients.
func (s *Server) BytesReceived() int64 { return s.bytesIn.Load() }

// Listen serves the API on addr (e.g. "127.0.0.1:0") until the listener
// is closed; it returns the bound address.
func (s *Server) Listen(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("store: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func pathParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	p := r.URL.Query().Get("path")
	if p == "" {
		httpError(w, http.StatusBadRequest, "missing path parameter")
		return "", false
	}
	return p, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "query is GET")
		return
	}
	path, ok := pathParam(w, r)
	if !ok {
		return
	}
	t, err := s.FS.GetTensor(path)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The response streams straight out of the stored tensor's buffer:
	// no sub-tensor is materialized for range reads, and whole-tensor
	// reads write the backing bytes after a small header. The view is
	// built from the tensor already in hand, so the range validates
	// against exactly the snapshot being served.
	v := t.FullView()
	if rangeStr := r.URL.Query().Get("range"); rangeStr != "" {
		reg, err := tensor.ParseRegion(rangeStr, t.Shape())
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// "[]" parses to an empty region, which means the whole tensor
		// (the same convention Client.Query uses); building a View from
		// it would panic on rank mismatch.
		if len(reg) > 0 {
			v = t.View(reg)
		}
	}
	w.Header().Set("Content-Type", "application/x-tenplex-tensor")
	w.Header().Set("Content-Length", fmt.Sprint(v.EncodedSize()))
	n, _ := v.Encode(w)
	s.bytesOut.Add(n)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "upload is POST")
		return
	}
	path, ok := pathParam(w, r)
	if !ok {
		return
	}
	// Decode incrementally: the header sizes one allocation and the
	// payload streams from the request body directly into it — the
	// server never buffers the full encoded body.
	cr := &countingReader{r: r.Body}
	dt, shape, err := tensor.DecodeHeaderFrom(cr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The header is untrusted: before allocating, require the declared
	// payload to match the announced body size (clients always set
	// Content-Length; chunked uploads are bounded by the read below).
	payload := tensor.ShapeNumBytes(dt, shape)
	if want := int64(tensor.HeaderSize(len(shape))) + payload; r.ContentLength >= 0 && r.ContentLength != want {
		httpError(w, http.StatusBadRequest, "upload body %d bytes, header declares %d", r.ContentLength, want)
		return
	}
	t := tensor.New(dt, shape...)
	if _, err := io.ReadFull(cr, t.Data()); err != nil {
		httpError(w, http.StatusBadRequest, "upload payload: %v", err)
		return
	}
	// Reject trailing bytes (e.g. two concatenated tensors) before
	// storing, mirroring the strictness of the old whole-body decode.
	var extra [1]byte
	if n, _ := io.ReadFull(cr, extra[:]); n != 0 {
		httpError(w, http.StatusBadRequest, "trailing bytes after encoded tensor")
		return
	}
	if err := s.FS.PutTensor(path, t); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.bytesIn.Add(cr.n)
	w.WriteHeader(http.StatusNoContent)
}

// countingReader counts the bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	path, ok := pathParam(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, err := s.FS.GetBlob(path)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		s.bytesOut.Add(int64(len(data)))
		_, _ = w.Write(data)
	case http.MethodPost:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if err := s.FS.PutBlob(path, data); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.bytesIn.Add(int64(len(data)))
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusMethodNotAllowed, "blob is GET or POST")
	}
}

// statJSON is the wire form of Stat.
type statJSON struct {
	Path  string `json:"path"`
	Blob  bool   `json:"blob"`
	DType string `json:"dtype,omitempty"`
	Shape []int  `json:"shape,omitempty"`
	Bytes int    `json:"bytes"`
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "stat is GET")
		return
	}
	path, ok := pathParam(w, r)
	if !ok {
		return
	}
	st, err := s.FS.Stat(path)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	out := statJSON{Path: st.Path, Blob: st.IsBlob, Bytes: st.Bytes}
	if !st.IsBlob {
		out.DType = st.DType.String()
		out.Shape = st.Shape
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "list is GET")
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "/"
	}
	names, err := s.FS.List(path)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(names)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "delete is DELETE")
		return
	}
	path, ok := pathParam(w, r)
	if !ok {
		return
	}
	if err := s.FS.Delete(path); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRename(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "rename is POST")
		return
	}
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "rename needs src and dst")
		return
	}
	if err := s.FS.Rename(src, dst); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// trimStatus extracts the first line of an HTTP error body for client
// error messages.
func trimStatus(body []byte) string {
	s := strings.TrimSpace(string(body))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
