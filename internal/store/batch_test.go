package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tenplex/internal/tensor"
)

// batchFS builds a MemFS holding three distinct 4x4 tensors (distinct
// stored tensors never coalesce, so each maps to its own frame).
func batchFS(t *testing.T) *MemFS {
	t.Helper()
	fs := NewMemFS()
	for i, p := range []string{"/a", "/b", "/c"} {
		tn := tensor.New(tensor.Float32, 4, 4)
		tn.FillSeq(float64(100*i), 1)
		if err := fs.PutTensor(p, tn); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestBatchQueryIntoMatchesPerRange(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(8, 6)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	other := seqTensor(5, 5)
	if err := fs.PutTensor("/o", other); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewServer(fs))
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}

	type rng struct {
		path string
		reg  tensor.Region
		at   tensor.Region
	}
	rngs := []rng{
		{"/w", tensor.Region{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 6}}, tensor.Region{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 6}}},
		{"/w", tensor.Region{{Lo: 5, Hi: 8}, {Lo: 2, Hi: 5}}, tensor.Region{{Lo: 3, Hi: 6}, {Lo: 0, Hi: 3}}},
		{"/o", nil, tensor.Region{{Lo: 0, Hi: 5}, {Lo: 0, Hi: 5}}},
	}
	batched := tensor.New(tensor.Float32, 8, 6)
	perRange := tensor.New(tensor.Float32, 8, 6)
	batchedO := tensor.New(tensor.Float32, 5, 5)
	perRangeO := tensor.New(tensor.Float32, 5, 5)
	dstFor := func(path string, b bool) *tensor.Tensor {
		if path == "/o" {
			if b {
				return batchedO
			}
			return perRangeO
		}
		if b {
			return batched
		}
		return perRange
	}
	entries := make([]BatchEntry, len(rngs))
	for i, r := range rngs {
		entries[i] = BatchEntry{Path: r.path, Reg: r.reg, Dst: dstFor(r.path, true), At: r.at}
	}
	st, err := c.BatchQueryInto(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("batch-capable server fell back to per-range queries")
	}
	var want int64
	for _, r := range rngs {
		n, err := c.QueryInto(r.path, r.reg, dstFor(r.path, false), r.at)
		if err != nil {
			t.Fatal(err)
		}
		want += n
	}
	if st.Bytes != want {
		t.Fatalf("batch moved %d bytes, per-range moved %d", st.Bytes, want)
	}
	if !batched.Equal(perRange) || !batchedO.Equal(perRangeO) {
		t.Fatal("batched scatter differs from per-range QueryInto")
	}
}

func TestBatchCoalescesAdjacentRanges(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(8, 6)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewServer(fs))
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	dst := tensor.New(tensor.Float32, 8, 6)
	rows := []tensor.Region{
		{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 6}},
		{{Lo: 2, Hi: 5}, {Lo: 0, Hi: 6}},
		{{Lo: 5, Hi: 8}, {Lo: 0, Hi: 6}},
	}
	entries := make([]BatchEntry, len(rows))
	for i, reg := range rows {
		entries[i] = BatchEntry{Path: "/w", Reg: reg, Dst: dst, At: reg}
	}
	st, err := c.BatchQueryInto(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 1 || st.Coalesced != 2 {
		t.Fatalf("adjacent row ranges produced %d frames / %d coalesced, want 1 / 2", st.Frames, st.Coalesced)
	}
	if !dst.Equal(src) {
		t.Fatal("coalesced batch landed wrong bytes")
	}
}

func TestBatchFallsBackOnOldServer(t *testing.T) {
	fs := batchFS(t)
	inner := NewServer(fs)
	// An old server: no /batch, no /capabilities.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/batch" || r.URL.Path == "/capabilities" {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	dsts := []*tensor.Tensor{
		tensor.New(tensor.Float32, 4, 4),
		tensor.New(tensor.Float32, 4, 4),
	}
	entries := []BatchEntry{
		{Path: "/a", Dst: dsts[0]},
		{Path: "/b", Dst: dsts[1]},
	}
	st, err := c.BatchQueryInto(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack || st.Attempts != 0 {
		t.Fatalf("stats = %+v, want a fallback with zero batch attempts", st)
	}
	for i, p := range []string{"/a", "/b"} {
		want, err := fs.GetTensor(p)
		if err != nil {
			t.Fatal(err)
		}
		if !dsts[i].Equal(want) {
			t.Fatalf("fallback entry %d (%s) landed wrong bytes", i, p)
		}
	}
	// The "no batch" verdict is cached: a second batch goes straight to
	// per-range queries without re-probing.
	if c.batchCap.Load() != -1 {
		t.Fatalf("capability cache = %d, want -1", c.batchCap.Load())
	}
}

// tamperHandler wraps a Server, records the entry paths of every /batch
// request, and applies a ResponseWriter wrapper to the first tamperN
// responses whose URL path matches match.
type tamperHandler struct {
	next    http.Handler
	match   string
	tamperN int
	wrap    func(http.ResponseWriter) http.ResponseWriter

	mu      sync.Mutex
	matched int
	batches [][]string
}

func (h *tamperHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/batch" {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req batchWireRequest
		if err := json.Unmarshal(body, &req); err == nil {
			paths := make([]string, len(req.Entries))
			for i, e := range req.Entries {
				paths[i] = e.Path
			}
			h.mu.Lock()
			h.batches = append(h.batches, paths)
			h.mu.Unlock()
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	if r.URL.Path == h.match {
		h.mu.Lock()
		h.matched++
		tamper := h.matched <= h.tamperN
		h.mu.Unlock()
		if tamper {
			w = h.wrap(w)
		}
	}
	h.next.ServeHTTP(w, r)
}

func (h *tamperHandler) batchRequests() [][]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([][]string(nil), h.batches...)
}

// cutWriter forwards limit body bytes, flushes them to the wire, then
// aborts the connection — a server dying mid-stream.
type cutWriter struct {
	http.ResponseWriter
	remain int64
}

func (w *cutWriter) Write(p []byte) (int, error) {
	if int64(len(p)) <= w.remain {
		w.remain -= int64(len(p))
		return w.ResponseWriter.Write(p)
	}
	w.ResponseWriter.Write(p[:w.remain])
	w.remain = 0
	w.ResponseWriter.(http.Flusher).Flush()
	panic(http.ErrAbortHandler)
}

// corruptWriter flips one body byte at offset off — damage in flight.
type corruptWriter struct {
	http.ResponseWriter
	off, pos int64
}

func (w *corruptWriter) Write(p []byte) (int, error) {
	if w.off >= w.pos && w.off < w.pos+int64(len(p)) {
		q := append([]byte(nil), p...)
		q[w.off-w.pos] ^= 0xff
		p = q
	}
	w.pos += int64(len(p))
	return w.ResponseWriter.Write(p)
}

func testRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, JitterSeed: 1, Sleep: func(time.Duration) {}}
}

// Per-entry frame cost for a whole 4x4 float32 tensor with CRC on.
const frame4x4 = tensor.FrameHeaderSize + 64 + tensor.FrameCRCSize

func TestBatchRetriesOnlyUnreceivedEntries(t *testing.T) {
	fs := batchFS(t)
	// Cut the first batch response right after the first complete frame:
	// entry /a arrives verified, /b and /c are lost with the connection.
	th := &tamperHandler{next: NewServer(fs), match: "/batch", tamperN: 1,
		wrap: func(w http.ResponseWriter) http.ResponseWriter {
			return &cutWriter{ResponseWriter: w, remain: tensor.FrameStreamHeaderSize + frame4x4}
		}}
	hs := httptest.NewServer(th)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client(), Retry: testRetryPolicy()}
	dsts := make([]*tensor.Tensor, 3)
	entries := make([]BatchEntry, 3)
	paths := []string{"/a", "/b", "/c"}
	for i, p := range paths {
		dsts[i] = tensor.New(tensor.Float32, 4, 4)
		entries[i] = BatchEntry{Path: p, Dst: dsts[i]}
	}
	st, err := c.BatchQueryInto(context.Background(), entries)
	if err != nil {
		t.Fatalf("batch through one mid-stream death failed: %v", err)
	}
	if st.Attempts != 2 {
		t.Fatalf("batch took %d attempts, want 2", st.Attempts)
	}
	reqs := th.batchRequests()
	if len(reqs) != 2 {
		t.Fatalf("server saw %d batch requests, want 2", len(reqs))
	}
	if len(reqs[0]) != 3 {
		t.Fatalf("first attempt requested %v, want all three entries", reqs[0])
	}
	// The retry re-requests ONLY the entries whose frames were lost.
	if len(reqs[1]) != 2 || reqs[1][0] != "/b" || reqs[1][1] != "/c" {
		t.Fatalf("retry requested %v, want [/b /c]", reqs[1])
	}
	for i, p := range paths {
		want, err := fs.GetTensor(p)
		if err != nil {
			t.Fatal(err)
		}
		if !dsts[i].Equal(want) {
			t.Fatalf("entry %d (%s) landed wrong bytes after partial retry", i, p)
		}
	}
}

func TestBatchMidFrameTruncationIsTypedAndRetryable(t *testing.T) {
	fs := batchFS(t)
	wrap := func(w http.ResponseWriter) http.ResponseWriter {
		// Cut inside the first frame's payload.
		return &cutWriter{ResponseWriter: w, remain: tensor.FrameStreamHeaderSize + tensor.FrameHeaderSize + 24}
	}
	entriesFor := func(dsts []*tensor.Tensor) []BatchEntry {
		entries := make([]BatchEntry, len(dsts))
		for i, p := range []string{"/a", "/b"} {
			dsts[i] = tensor.New(tensor.Float32, 4, 4)
			entries[i] = BatchEntry{Path: p, Dst: dsts[i]}
		}
		return entries
	}

	// Without a retry policy the truncation surfaces as a typed,
	// retryable error — not a silent short scatter.
	th := &tamperHandler{next: NewServer(fs), match: "/batch", tamperN: 1, wrap: wrap}
	hs := httptest.NewServer(th)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	dsts := make([]*tensor.Tensor, 2)
	_, err := c.BatchQueryInto(context.Background(), entriesFor(dsts))
	if err == nil {
		t.Fatal("mid-frame truncation went unnoticed")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, not io.ErrUnexpectedEOF", err)
	}
	if !retryable(err) {
		t.Fatalf("truncation error %v classified as non-retryable", err)
	}

	// Under the policy the same failure heals on the second attempt.
	th2 := &tamperHandler{next: NewServer(fs), match: "/batch", tamperN: 1, wrap: wrap}
	hs2 := httptest.NewServer(th2)
	defer hs2.Close()
	c2 := &Client{Base: hs2.URL, HTTP: hs2.Client(), Retry: testRetryPolicy()}
	dsts2 := make([]*tensor.Tensor, 2)
	entries := entriesFor(dsts2)
	st, err := c2.BatchQueryInto(context.Background(), entries)
	if err != nil {
		t.Fatalf("batch through mid-frame truncation failed under retry: %v", err)
	}
	if st.Attempts != 2 {
		t.Fatalf("batch took %d attempts, want 2", st.Attempts)
	}
	for i, p := range []string{"/a", "/b"} {
		want, _ := fs.GetTensor(p)
		if !dsts2[i].Equal(want) {
			t.Fatalf("entry %d (%s) landed wrong bytes", i, p)
		}
	}
}

func TestBatchChecksumMismatchRejectedAndRetried(t *testing.T) {
	fs := batchFS(t)
	wrap := func(w http.ResponseWriter) http.ResponseWriter {
		// Flip a byte inside the first frame's payload; the CRC trailer
		// no longer matches.
		return &corruptWriter{ResponseWriter: w, off: tensor.FrameStreamHeaderSize + tensor.FrameHeaderSize + 7}
	}
	// Corrupt once: the client rejects the frame, re-requests it, and the
	// clean second attempt wins.
	th := &tamperHandler{next: NewServer(fs), match: "/batch", tamperN: 1, wrap: wrap}
	hs := httptest.NewServer(th)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client(), Retry: testRetryPolicy()}
	dst := tensor.New(tensor.Float32, 4, 4)
	st, err := c.BatchQueryInto(context.Background(), []BatchEntry{{Path: "/a", Dst: dst}})
	if err != nil {
		t.Fatalf("batch through one corrupt frame failed: %v", err)
	}
	if st.Attempts != 2 {
		t.Fatalf("batch took %d attempts, want 2", st.Attempts)
	}
	want, _ := fs.GetTensor("/a")
	if !dst.Equal(want) {
		t.Fatal("retried frame landed wrong bytes")
	}

	// Corrupt forever: the budget exhausts and the ChecksumError is
	// visible through the wrapper.
	th2 := &tamperHandler{next: NewServer(fs), match: "/batch", tamperN: 1 << 30, wrap: wrap}
	hs2 := httptest.NewServer(th2)
	defer hs2.Close()
	c2 := &Client{Base: hs2.URL, HTTP: hs2.Client(), Retry: testRetryPolicy()}
	_, err = c2.BatchQueryInto(context.Background(), []BatchEntry{{Path: "/a", Dst: tensor.New(tensor.Float32, 4, 4)}})
	if err == nil {
		t.Fatal("permanently corrupt stream accepted")
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v) does not wrap ChecksumError", err, err)
	}
	var re *RetryExhaustedError
	if !errors.As(err, &re) || re.Attempts != 4 {
		t.Fatalf("error %v is not a 4-attempt RetryExhaustedError", err)
	}
}

func TestBatchContextCancel(t *testing.T) {
	stall := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/capabilities" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"batch":true,"crc":true}`))
			return
		}
		<-stall
	}))
	defer hs.Close()
	defer close(stall)
	c := &Client{Base: hs.URL, HTTP: hs.Client(), Retry: testRetryPolicy()}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.BatchQueryInto(ctx, []BatchEntry{{Path: "/a", Dst: tensor.New(tensor.Float32, 4, 4)}})
	if err == nil {
		t.Fatal("batch against stalled server with canceled context succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestBatchRejectsMismatchedEntries(t *testing.T) {
	hs := httptest.NewServer(NewServer(NewMemFS()))
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	if _, err := c.BatchQueryInto(context.Background(), []BatchEntry{{Path: "/a"}}); err == nil {
		t.Fatal("nil destination accepted")
	}
	dst := tensor.New(tensor.Float32, 4, 4)
	bad := []BatchEntry{{Path: "/a", Reg: tensor.Region{{Lo: 0, Hi: 2}}, Dst: dst,
		At: tensor.Region{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 4}}}}
	if _, err := c.BatchQueryInto(context.Background(), bad); err == nil {
		t.Fatal("mismatched source/destination regions accepted")
	}
}

func TestQueryIntoMidStreamDeathIsTypedAndRetried(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(8, 8)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	wrap := func(w http.ResponseWriter) http.ResponseWriter {
		// Cut inside the payload, after the tensor wire header.
		return &cutWriter{ResponseWriter: w, remain: int64(tensor.HeaderSize(2)) + 40}
	}
	// Without retries: a typed truncation error, never a silent short
	// scatter.
	th := &tamperHandler{next: NewServer(fs), match: "/query", tamperN: 1, wrap: wrap}
	hs := httptest.NewServer(th)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	dst := tensor.New(tensor.Float32, 8, 8)
	_, err := c.QueryInto("/w", nil, dst, nil)
	if err == nil {
		t.Fatal("mid-stream death went unnoticed")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, not io.ErrUnexpectedEOF", err)
	}

	// Under the policy the second attempt repairs the scatter in place.
	th2 := &tamperHandler{next: NewServer(fs), match: "/query", tamperN: 1, wrap: wrap}
	hs2 := httptest.NewServer(th2)
	defer hs2.Close()
	c2 := &Client{Base: hs2.URL, HTTP: hs2.Client(), Retry: testRetryPolicy()}
	dst2 := tensor.New(tensor.Float32, 8, 8)
	if _, err := c2.QueryInto("/w", nil, dst2, nil); err != nil {
		t.Fatalf("QueryInto through mid-stream death failed under retry: %v", err)
	}
	if !dst2.Equal(src) {
		t.Fatal("retried QueryInto landed wrong bytes")
	}
	if st := c2.Stats.Snapshot(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want exactly 1 retry", st)
	}
}
