// Package store implements the Tensor Store: a hierarchical, in-memory
// virtual file system that holds the model and dataset partitions of the
// PTC on every worker (§5.2). The tree hierarchy mirrors the layered
// model structure ("/job/model/dev0/block.2/attn/qkv/weight"), with
// sub-tensors as leaves. A REST API exposes NumPy-like sub-tensor range
// queries ("range=[:,2:4]"), which let the State Transformer fetch
// exactly the ranges it needs instead of whole tensors.
package store

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"tenplex/internal/tensor"
)

// MemFS is a thread-safe hierarchical in-memory file system whose leaves
// are tensors or raw blobs. The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu   sync.RWMutex
	root *node
}

// node maps are created lazily on first insert (reads of nil maps are
// valid in Go), so growing a deep staging tree costs one allocation per
// directory instead of three.
type node struct {
	dirs  map[string]*node
	files map[string]entry
}

type entry struct {
	t    *tensor.Tensor
	blob []byte
}

func newNode() *node { return &node{} }

func (n *node) putDir(name string, d *node) {
	if n.dirs == nil {
		n.dirs = map[string]*node{}
	}
	n.dirs[name] = d
}

func (n *node) putFile(name string, e entry) {
	if n.files == nil {
		n.files = map[string]entry{}
	}
	n.files[name] = e
}

// NewMemFS returns an empty file system.
func NewMemFS() *MemFS { return &MemFS{root: newNode()} }

// lookupPath walks to the parent directory of path without allocating
// (components are substrings of path; no intermediate slice is built).
// If create is set, missing directories are created. Returns the parent
// node and the leaf name. The store sits on the transformer's per-fetch
// hot path, so the walk being allocation-free matters.
func (fs *MemFS) lookupPath(path string, create bool) (*node, string, error) {
	n := fs.root
	var prev string
	seen := false
	for i := 0; i < len(path); {
		for i < len(path) && path[i] == '/' {
			i++
		}
		if i >= len(path) {
			break
		}
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		i = j
		if comp == "." || comp == ".." {
			return nil, "", fmt.Errorf("store: path %q contains %q", path, comp)
		}
		if seen {
			child, ok := n.dirs[prev]
			if !ok {
				if !create {
					return nil, "", fmt.Errorf("store: directory %q not found", prev)
				}
				if _, isFile := n.files[prev]; isFile {
					return nil, "", fmt.Errorf("store: %q is a file, not a directory", prev)
				}
				child = newNode()
				n.putDir(prev, child)
			}
			n = child
		}
		prev = comp
		seen = true
	}
	if !seen {
		return nil, "", fmt.Errorf("store: empty path %q", path)
	}
	return n, prev, nil
}

// PutTensor stores t at path, overwriting any existing file.
func (fs *MemFS) PutTensor(path string, t *tensor.Tensor) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupPath(path, true)
	if err != nil {
		return err
	}
	if _, isDir := dir.dirs[name]; isDir {
		return fmt.Errorf("store: %q is a directory", path)
	}
	dir.putFile(name, entry{t: t})
	return nil
}

// PutBlob stores raw bytes (e.g. checkpoint metadata, dataset chunks) at
// path.
func (fs *MemFS) PutBlob(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupPath(path, true)
	if err != nil {
		return err
	}
	if _, isDir := dir.dirs[name]; isDir {
		return fmt.Errorf("store: %q is a directory", path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	dir.putFile(name, entry{blob: cp})
	return nil
}

// GetTensor returns the tensor stored at path.
func (fs *MemFS) GetTensor(path string) (*tensor.Tensor, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, name, err := fs.lookupPath(path, false)
	if err != nil {
		return nil, err
	}
	e, ok := dir.files[name]
	if !ok {
		return nil, fmt.Errorf("store: %q not found", path)
	}
	if e.t == nil {
		return nil, fmt.Errorf("store: %q is a blob, not a tensor", path)
	}
	return e.t, nil
}

// GetSlice returns a copy of the sub-tensor reg of the tensor at path.
// This is the range-query primitive: only the requested bytes are
// copied, so remote callers move minimal data.
func (fs *MemFS) GetSlice(path string, reg tensor.Region) (*tensor.Tensor, error) {
	t, err := fs.GetTensor(path)
	if err != nil {
		return nil, err
	}
	if !reg.Valid(t.Shape()) {
		return nil, fmt.Errorf("store: range %v invalid for %q (shape %v)", reg, path, t.Shape())
	}
	// Tensors in the store are replaced, never mutated, so slicing the
	// snapshot without the lock is safe.
	return t.Slice(reg), nil
}

// GetView returns a zero-copy read-only view over the range reg (nil
// for the whole tensor) of the tensor at path. The view aliases the
// stored buffer; because stored tensors are replaced, never mutated,
// handing it out without holding the lock is safe.
func (fs *MemFS) GetView(path string, reg tensor.Region) (tensor.View, error) {
	t, err := fs.GetTensor(path)
	if err != nil {
		return tensor.View{}, err
	}
	if reg == nil {
		return t.FullView(), nil
	}
	if !reg.Valid(t.Shape()) {
		return tensor.View{}, fmt.Errorf("store: range %v invalid for %q (shape %v)", reg, path, t.Shape())
	}
	return t.View(reg), nil
}

// ReadRegionInto copies the range reg (nil for the whole tensor) of the
// tensor at path directly into the sub-region at of dst (nil for all of
// dst) — the single-copy read path: bytes move from the stored buffer
// to their final strided destination offsets exactly once.
func (fs *MemFS) ReadRegionInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	t, err := fs.GetTensor(path)
	if err != nil {
		return 0, err
	}
	if reg == nil {
		reg = tensor.FullRegion(t.Shape())
	}
	if at == nil {
		at = tensor.FullRegion(dst.Shape())
	}
	// CopyRegion validates both regions in place (no allocation), which
	// keeps this hot path free of per-call garbage.
	n, err := tensor.CopyRegion(dst, at, t, reg)
	if err != nil {
		return 0, fmt.Errorf("store: read %q into region: %w", path, err)
	}
	return n, nil
}

// PutTensorFrom stores a tensor of the given dtype and shape at path,
// reading exactly its payload from r directly into the new tensor's
// backing buffer (one allocation, one copy).
func (fs *MemFS) PutTensorFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	if !dt.Valid() {
		return fmt.Errorf("store: put %q: invalid dtype", path)
	}
	t := tensor.New(dt, shape...)
	if _, err := io.ReadFull(r, t.Data()); err != nil {
		return fmt.Errorf("store: put %q: payload: %w", path, err)
	}
	return fs.PutTensor(path, t)
}

// GetBlob returns the raw bytes stored at path.
func (fs *MemFS) GetBlob(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, name, err := fs.lookupPath(path, false)
	if err != nil {
		return nil, err
	}
	e, ok := dir.files[name]
	if !ok {
		return nil, fmt.Errorf("store: %q not found", path)
	}
	if e.blob == nil {
		return nil, fmt.Errorf("store: %q is a tensor, not a blob", path)
	}
	cp := make([]byte, len(e.blob))
	copy(cp, e.blob)
	return cp, nil
}

// Stat describes a file.
type Stat struct {
	Path   string
	IsBlob bool
	DType  tensor.DType // tensors only
	Shape  []int        // tensors only
	Bytes  int
}

// Stat returns metadata for the file at path.
func (fs *MemFS) Stat(path string) (Stat, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, name, err := fs.lookupPath(path, false)
	if err != nil {
		return Stat{}, err
	}
	e, ok := dir.files[name]
	if !ok {
		return Stat{}, fmt.Errorf("store: %q not found", path)
	}
	if e.t != nil {
		return Stat{Path: path, DType: e.t.DType(), Shape: e.t.Shape(), Bytes: e.t.NumBytes()}, nil
	}
	return Stat{Path: path, IsBlob: true, Bytes: len(e.blob)}, nil
}

// List returns the children of the directory at path ("/" for the root):
// sub-directory names with a trailing slash and file names bare, sorted.
func (fs *MemFS) List(path string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := fs.root
	if trimmed := strings.Trim(path, "/"); trimmed != "" {
		parts := strings.Split(trimmed, "/")
		for _, p := range parts {
			child, ok := n.dirs[p]
			if !ok {
				return nil, fmt.Errorf("store: directory %q not found", path)
			}
			n = child
		}
	}
	var out []string
	for name := range n.dirs {
		out = append(out, name+"/")
	}
	for name := range n.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes the file or directory tree at path.
func (fs *MemFS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupPath(path, false)
	if err != nil {
		return err
	}
	if _, ok := dir.files[name]; ok {
		delete(dir.files, name)
		return nil
	}
	if _, ok := dir.dirs[name]; ok {
		delete(dir.dirs, name)
		return nil
	}
	return fmt.Errorf("store: %q not found", path)
}

// Rename atomically moves the file or directory at src to dst,
// overwriting dst. The State Transformer uses it to commit a staged
// model partition ("model.next" -> "model") once all fetches complete.
func (fs *MemFS) Rename(src, dst string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sDir, sName, err := fs.lookupPath(src, false)
	if err != nil {
		return err
	}
	var moveDir *node
	var moveFile entry
	isFile := false
	if d, ok := sDir.dirs[sName]; ok {
		moveDir = d
	} else if f, ok := sDir.files[sName]; ok {
		moveFile, isFile = f, true
	} else {
		return fmt.Errorf("store: %q not found", src)
	}
	dDir, dName, err := fs.lookupPath(dst, true)
	if err != nil {
		return err
	}
	delete(sDir.dirs, sName)
	delete(sDir.files, sName)
	delete(dDir.dirs, dName)
	delete(dDir.files, dName)
	if !isFile {
		dDir.putDir(dName, moveDir)
	} else {
		dDir.putFile(dName, moveFile)
	}
	return nil
}

// Walk calls fn for every file under prefix (the whole tree for "/"),
// in sorted path order.
func (fs *MemFS) Walk(prefix string, fn func(path string, st Stat) error) error {
	fs.mu.RLock()
	n := fs.root
	trimmed := strings.Trim(prefix, "/")
	base := ""
	if trimmed != "" {
		for _, p := range strings.Split(trimmed, "/") {
			child, ok := n.dirs[p]
			if !ok {
				fs.mu.RUnlock()
				return fmt.Errorf("store: directory %q not found", prefix)
			}
			n = child
		}
		base = "/" + trimmed
	}
	type item struct {
		n    *node
		path string
	}
	var paths []string
	stats := map[string]Stat{}
	stack := []item{{n, base}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for name, e := range it.n.files {
			p := it.path + "/" + name
			paths = append(paths, p)
			if e.t != nil {
				stats[p] = Stat{Path: p, DType: e.t.DType(), Shape: e.t.Shape(), Bytes: e.t.NumBytes()}
			} else {
				stats[p] = Stat{Path: p, IsBlob: true, Bytes: len(e.blob)}
			}
		}
		for name, d := range it.n.dirs {
			stack = append(stack, item{d, it.path + "/" + name})
		}
	}
	fs.mu.RUnlock()
	sort.Strings(paths)
	for _, p := range paths {
		if err := fn(p, stats[p]); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes sums the sizes of every file in the tree.
func (fs *MemFS) TotalBytes() int64 {
	var n int64
	_ = fs.Walk("/", func(_ string, st Stat) error {
		n += int64(st.Bytes)
		return nil
	})
	return n
}
