package store

import (
	"net/http/httptest"
	"testing"

	"tenplex/internal/tensor"
)

func TestEmptyRangePanic(t *testing.T) {
	fs := NewMemFS()
	tt := tensor.New(tensor.Float32, 4, 4)
	if err := fs.PutTensor("/a", tt); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs)
	req := httptest.NewRequest("GET", "/query?path=/a&range=[]", nil)
	w := httptest.NewRecorder()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("handler panicked: %v", r)
		}
	}()
	srv.ServeHTTP(w, req)
	t.Logf("status %d body %s", w.Code, w.Body.String())
}
