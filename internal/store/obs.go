package store

import (
	"context"
	"io"
	"time"

	"tenplex/internal/obs"
	"tenplex/internal/tensor"
)

// Observe wraps an Access with per-operation datapath spans: every
// query, upload, delete, list and rename records one leaf span under
// the scope's current task context, carrying the op, path, payload
// bytes and — when the operation failed — the error. The wrapper sits
// OUTSIDE any chaos wrapper, so injected faults and the retries they
// trigger are visible in the trace as the failed operations they are.
// Recording is gated on the scope's level (LevelDatapath), so a
// phases-level tracer pays one atomic load per operation and nothing
// else.
func Observe(inner Access, tag string, scope *obs.ScopeVar) Access {
	o := &observedAccess{inner: inner, tag: tag, scope: scope}
	// Forward the batch capability only when the wrapped store actually
	// has it: a separate wrapper type keeps a plain observed Local from
	// falsely asserting as a BatchQuerier.
	if _, ok := inner.(BatchQuerier); ok {
		return &observedBatchAccess{observedAccess: o}
	}
	return o
}

// observedBatchAccess augments observedAccess with BatchQuerier
// forwarding plus a store.batch span carrying the frame/byte counts.
type observedBatchAccess struct{ *observedAccess }

var _ BatchQuerier = (*observedBatchAccess)(nil)

func (o *observedBatchAccess) BatchQueryInto(ctx context.Context, entries []BatchEntry) (BatchStats, error) {
	bq := o.inner.(BatchQuerier)
	c := o.scope.Get()
	if !c.Deep() {
		return bq.BatchQueryInto(ctx, entries)
	}
	start := time.Now()
	st, err := bq.BatchQueryInto(ctx, entries)
	attrs := map[string]any{"op": "batch", "store": o.tag,
		"entries": int64(st.Entries), "frames": int64(st.Frames)}
	if st.Bytes > 0 {
		attrs["bytes"] = st.Bytes
	}
	if st.FellBack {
		attrs["fellback"] = true
	}
	if err != nil {
		attrs["err"] = err.Error()
	}
	c.Record(obs.StorePrefix+"batch", obs.CatDatapath, time.Since(start).Nanoseconds(), attrs)
	return st, err
}

type observedAccess struct {
	inner Access
	tag   string
	scope *obs.ScopeVar
}

var _ Access = (*observedAccess)(nil)

// record emits one store-operation span. The span's payload is a pure
// function of the operation and its deterministic outcome, so sim-mode
// trace bytes stay schedule-independent (wall time is stripped by the
// tracer in deterministic mode).
func (o *observedAccess) record(c *obs.TaskCtx, op, path string, bytes int64, start time.Time, err error) {
	attrs := map[string]any{"op": op, "path": path, "store": o.tag}
	if bytes > 0 {
		attrs["bytes"] = bytes
	}
	if err != nil {
		attrs["err"] = err.Error()
	}
	c.Record(obs.StorePrefix+op, obs.CatDatapath, time.Since(start).Nanoseconds(), attrs)
}

func (o *observedAccess) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.Query(path, reg)
	}
	start := time.Now()
	t, err := o.inner.Query(path, reg)
	var n int64
	if t != nil {
		n = int64(t.NumBytes())
	}
	o.record(c, "query", path, n, start, err)
	return t, err
}

func (o *observedAccess) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.QueryInto(path, reg, dst, at)
	}
	start := time.Now()
	n, err := o.inner.QueryInto(path, reg, dst, at)
	o.record(c, "query", path, n, start, err)
	return n, err
}

func (o *observedAccess) Upload(path string, t *tensor.Tensor) error {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.Upload(path, t)
	}
	start := time.Now()
	err := o.inner.Upload(path, t)
	o.record(c, "upload", path, int64(t.NumBytes()), start, err)
	return err
}

func (o *observedAccess) UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.UploadFrom(path, dt, shape, r)
	}
	start := time.Now()
	err := o.inner.UploadFrom(path, dt, shape, r)
	o.record(c, "upload", path, tensor.ShapeNumBytes(dt, shape), start, err)
	return err
}

func (o *observedAccess) Delete(path string) error {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.Delete(path)
	}
	start := time.Now()
	err := o.inner.Delete(path)
	o.record(c, "delete", path, 0, start, err)
	return err
}

func (o *observedAccess) List(path string) ([]string, error) {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.List(path)
	}
	start := time.Now()
	names, err := o.inner.List(path)
	o.record(c, "list", path, 0, start, err)
	return names, err
}

func (o *observedAccess) Rename(src, dst string) error {
	c := o.scope.Get()
	if !c.Deep() {
		return o.inner.Rename(src, dst)
	}
	start := time.Now()
	err := o.inner.Rename(src, dst)
	o.record(c, "rename", src, 0, start, err)
	return err
}

// UploadsByReference preserves the wrapped store's copy-accounting
// contract (transform.uploadCopies type-asserts store.RefUploader), so
// observing a store never changes the transformer's noop fast path or
// its copy-amplification numbers.
func (o *observedAccess) UploadsByReference() bool {
	ru, ok := o.inner.(RefUploader)
	return ok && ru.UploadsByReference()
}
