package store

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tenplex/internal/tensor"
)

func seqTensor(shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.Float32, shape...)
	t.FillSeq(0, 1)
	return t
}

func TestLocalQueryInto(t *testing.T) {
	fs := NewMemFS()
	l := Local{FS: fs}
	src := seqTensor(8, 6)
	if err := l.Upload("/w", src); err != nil {
		t.Fatal(err)
	}
	reg := tensor.Region{{Lo: 2, Hi: 5}, {Lo: 1, Hi: 4}}
	dst := tensor.New(tensor.Float32, 10, 10)
	at := tensor.Region{{Lo: 4, Hi: 7}, {Lo: 6, Hi: 9}}
	n, err := l.QueryInto("/w", reg, dst, at)
	if err != nil {
		t.Fatal(err)
	}
	if n != reg.NumBytes(tensor.Float32) {
		t.Fatalf("QueryInto wrote %d bytes, want %d", n, reg.NumBytes(tensor.Float32))
	}
	if !dst.Slice(at).Equal(src.Slice(reg)) {
		t.Fatal("QueryInto landed wrong bytes")
	}
	// nil region = whole tensor; nil at = whole destination.
	whole := tensor.New(tensor.Float32, 8, 6)
	if _, err := l.QueryInto("/w", nil, whole, nil); err != nil {
		t.Fatal(err)
	}
	if !whole.Equal(src) {
		t.Fatal("whole-tensor QueryInto mismatch")
	}
	// Shape mismatches are rejected.
	if _, err := l.QueryInto("/w", reg, dst, tensor.Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("mismatched destination region accepted")
	}
}

func TestLocalUploadFrom(t *testing.T) {
	l := Local{FS: NewMemFS()}
	src := seqTensor(4, 5)
	if err := l.UploadFrom("/w", src.DType(), src.Shape(), bytes.NewReader(src.Data())); err != nil {
		t.Fatal(err)
	}
	got, err := l.Query("/w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(src) {
		t.Fatal("UploadFrom round trip mismatch")
	}
	// Short payloads are rejected.
	if err := l.UploadFrom("/short", tensor.Float32, []int{4}, bytes.NewReader(make([]byte, 7))); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestRESTQueryIntoAndUploadFrom(t *testing.T) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}

	src := seqTensor(16, 8)
	if err := c.UploadFrom("/w", src.DType(), src.Shape(), bytes.NewReader(src.Data())); err != nil {
		t.Fatal(err)
	}
	reg := tensor.Region{{Lo: 3, Hi: 9}, {Lo: 2, Hi: 7}}
	dst := tensor.New(tensor.Float32, 20, 20)
	at := tensor.Region{{Lo: 10, Hi: 16}, {Lo: 0, Hi: 5}}
	before := srv.BytesServed()
	n, err := c.QueryInto("/w", reg, dst, at)
	if err != nil {
		t.Fatal(err)
	}
	if n != reg.NumBytes(tensor.Float32) {
		t.Fatalf("QueryInto wrote %d bytes, want %d", n, reg.NumBytes(tensor.Float32))
	}
	if !dst.Slice(at).Equal(src.Slice(reg)) {
		t.Fatal("REST QueryInto landed wrong bytes")
	}
	// The server served only the range (plus the fixed header), not the
	// whole tensor.
	served := srv.BytesServed() - before
	wantServed := int64(tensor.HeaderSize(2)) + reg.NumBytes(tensor.Float32)
	if served != wantServed {
		t.Fatalf("server sent %d bytes for range query, want %d", served, wantServed)
	}
	// dtype mismatches are detected before any scatter.
	bad := tensor.New(tensor.Float64, 6, 5)
	if _, err := c.QueryInto("/w", reg, bad, nil); err == nil || !strings.Contains(err.Error(), "dtype") {
		t.Fatalf("dtype mismatch error = %v", err)
	}
}

func TestClientTimeout(t *testing.T) {
	stall := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer hs.Close()
	defer close(stall)
	c := &Client{Base: hs.URL, HTTP: hs.Client(), Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Query("/w", nil)
	if err == nil {
		t.Fatal("query against stalled server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v, configured 50ms", d)
	}
}

func TestClientContextCancel(t *testing.T) {
	stall := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer hs.Close()
	defer close(stall)
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.QueryContext(ctx, "/w", nil); err == nil {
		t.Fatal("query with canceled context succeeded")
	}
	// UploadContext honors the context too.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := c.UploadContext(ctx2, "/w", seqTensor(2)); err == nil {
		t.Fatal("upload with canceled context succeeded")
	}
}

func TestServerUploadRejectsMalformedBodies(t *testing.T) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	post := func(body []byte) int {
		resp, err := hs.Client().Post(hs.URL+"/upload?path=/w", "application/x-tenplex-tensor", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	good := seqTensor(2, 3).Encode()
	if code := post(good); code != http.StatusNoContent {
		t.Fatalf("valid upload rejected: %d", code)
	}
	// Trailing bytes (two concatenated tensors) are rejected.
	if code := post(append(append([]byte{}, good...), good...)); code != http.StatusBadRequest {
		t.Fatalf("concatenated tensors accepted: %d", code)
	}
	// A header declaring more payload than the body carries is rejected
	// before the server commits anything.
	short := append([]byte{}, good...)
	short = short[:len(short)-4]
	if code := post(short); code != http.StatusBadRequest {
		t.Fatalf("truncated payload accepted: %d", code)
	}
	// A forged header whose element count overflows is rejected without
	// allocating.
	huge := tensor.EncodeHeader(tensor.Float64, []int{1 << 31, 1 << 31, 1 << 31})
	if code := post(huge); code != http.StatusBadRequest {
		t.Fatalf("overflowing shape accepted: %d", code)
	}
}

func TestServerStreamedQueryMatchesMaterialized(t *testing.T) {
	// The streamed wire encoding of a range must be byte-identical to
	// encoding the materialized slice.
	fs := NewMemFS()
	src := seqTensor(8, 6)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewServer(fs))
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/query?path=/w&range=" + "%5B1%3A4%2C2%3A5%5D") // [1:4,2:5]
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := make([]byte, 0)
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	want := src.Slice(tensor.Region{{Lo: 1, Hi: 4}, {Lo: 2, Hi: 5}}).Encode()
	if !bytes.Equal(got, want) {
		t.Fatal("streamed range response differs from materialized encoding")
	}
}

func TestMemFSReadRegionInto(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(6, 6)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(tensor.Float32, 3, 3)
	if _, err := fs.ReadRegionInto("/w", tensor.Region{{Lo: 1, Hi: 4}, {Lo: 1, Hi: 4}}, dst, nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src.Slice(tensor.Region{{Lo: 1, Hi: 4}, {Lo: 1, Hi: 4}})) {
		t.Fatal("ReadRegionInto mismatch")
	}
	// Out-of-bounds region is rejected.
	if _, err := fs.ReadRegionInto("/w", tensor.Region{{Lo: 0, Hi: 9}, {Lo: 0, Hi: 9}}, dst, nil); err == nil {
		t.Fatal("out-of-bounds region accepted")
	}
	// Blob paths are rejected.
	if err := fs.PutBlob("/b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadRegionInto("/b", nil, dst, nil); err == nil {
		t.Fatal("blob read as tensor accepted")
	}
}

// flakyHandler wraps a handler, failing the first failN requests with
// 500 and counting every request seen.
type flakyHandler struct {
	next  http.Handler
	mu    sync.Mutex
	seen  int
	failN int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen++
	fail := f.seen <= f.failN
	f.mu.Unlock()
	if fail {
		http.Error(w, "injected", http.StatusInternalServerError)
		return
	}
	f.next.ServeHTTP(w, r)
}

func (f *flakyHandler) requests() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

func retryClient(t *testing.T, failN int) (*Client, *flakyHandler, func()) {
	t.Helper()
	fs := NewMemFS()
	if err := fs.PutTensor("/w", seqTensor(4, 4)); err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{next: NewServer(fs), failN: failN}
	hs := httptest.NewServer(fh)
	c := &Client{Base: hs.URL, HTTP: hs.Client(),
		Retry: &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond,
			MaxDelay: 4 * time.Millisecond, JitterSeed: 1, Sleep: func(time.Duration) {}}}
	return c, fh, hs.Close
}

func TestClientRetryRecoversFromTransientFailures(t *testing.T) {
	c, fh, done := retryClient(t, 2)
	defer done()
	got, err := c.Query("/w", nil)
	if err != nil {
		t.Fatalf("query through 2 transient 500s failed: %v", err)
	}
	if !got.Equal(seqTensor(4, 4)) {
		t.Fatal("retried query returned wrong tensor")
	}
	if n := fh.requests(); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
	st := c.Stats.Snapshot()
	if st.Attempts != 3 || st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries / 0 exhausted", st)
	}
}

func TestClientRetryExhaustedError(t *testing.T) {
	c, fh, done := retryClient(t, 1000)
	defer done()
	_, err := c.Query("/w", nil)
	if err == nil {
		t.Fatal("query against permanently failing server succeeded")
	}
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("error %T (%v) is not *RetryExhaustedError", err, err)
	}
	if re.Attempts != 4 {
		t.Fatalf("RetryExhaustedError.Attempts = %d, want 4", re.Attempts)
	}
	if re.Unwrap() == nil || !strings.Contains(re.Unwrap().Error(), "500") {
		t.Fatalf("exhausted error does not wrap the last attempt's failure: %v", re.Unwrap())
	}
	if n := fh.requests(); n != 4 {
		t.Fatalf("server saw %d requests, want the full budget of 4", n)
	}
	if st := c.Stats.Snapshot(); st.Exhausted != 1 {
		t.Fatalf("stats = %+v, want 1 exhausted", st)
	}
}

func TestClientNoRetryOnClientError(t *testing.T) {
	c, fh, done := retryClient(t, 0)
	defer done()
	if _, err := c.Query("/missing", nil); err == nil {
		t.Fatal("query for missing path succeeded")
	}
	if n := fh.requests(); n != 1 {
		t.Fatalf("4xx was retried: server saw %d requests", n)
	}
}

func TestClientNonIdempotentOpsSingleAttempt(t *testing.T) {
	c, fh, done := retryClient(t, 1000)
	defer done()
	if err := c.Rename("/a", "/b"); err == nil {
		t.Fatal("rename against failing server succeeded")
	}
	if err := c.Delete("/w"); err == nil {
		t.Fatal("delete against failing server succeeded")
	}
	if n := fh.requests(); n != 2 {
		t.Fatalf("non-idempotent ops retried: server saw %d requests, want 2", n)
	}
	var re *RetryExhaustedError
	if err := c.Rename("/a", "/b"); errors.As(err, &re) {
		t.Fatal("single-attempt op reported RetryExhaustedError")
	}
}

func TestClientUploadRetries(t *testing.T) {
	c, fh, done := retryClient(t, 2)
	defer done()
	src := seqTensor(3, 3)
	if err := c.Upload("/u", src); err != nil {
		t.Fatalf("upload through transient 500s failed: %v", err)
	}
	if n := fh.requests(); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
	got, err := c.Query("/u", nil)
	if err != nil || !got.Equal(src) {
		t.Fatalf("uploaded tensor corrupt after retry: %v", err)
	}
}

func TestClientHedgedRead(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(4, 4)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(fs)
	var mu sync.Mutex
	seen := 0
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen++
		first := seen == 1
		mu.Unlock()
		if first {
			<-release // first request straggles until the test ends
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()
	defer close(release)
	c := &Client{Base: hs.URL, HTTP: hs.Client(), HedgeAfter: 20 * time.Millisecond}
	start := time.Now()
	got, err := c.Query("/w", nil)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if !got.Equal(src) {
		t.Fatal("hedged query returned wrong tensor")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hedged read took %v despite straggler mitigation", d)
	}
	if st := c.Stats.Snapshot(); st.Hedges != 1 {
		t.Fatalf("stats = %+v, want 1 hedge", st)
	}
}

func TestClientBackoffIsCappedExponential(t *testing.T) {
	var delays []time.Duration
	c := &Client{Base: "http://127.0.0.1:0", // nothing listens: every attempt is a transport error
		Retry: &RetryPolicy{MaxAttempts: 5, BaseDelay: 8 * time.Millisecond,
			MaxDelay: 20 * time.Millisecond, JitterSeed: 7,
			Sleep: func(d time.Duration) { delays = append(delays, d) }}}
	if _, err := c.Query("/w", nil); err == nil {
		t.Fatal("query against dead address succeeded")
	}
	if len(delays) != 4 {
		t.Fatalf("saw %d backoffs, want 4", len(delays))
	}
	steps := []time.Duration{8, 16, 20, 20} // capped at MaxDelay
	for i, d := range delays {
		step := steps[i] * time.Millisecond
		if d < step/2 || d >= step {
			t.Fatalf("backoff %d = %v outside jitter window [%v, %v)", i, d, step/2, step)
		}
	}
}
