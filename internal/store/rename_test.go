package store

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestClientRenameOverREST(t *testing.T) {
	_, c, done := newTestServer(t)
	defer done()
	if err := c.Upload("/job/model.next/dev0/w", seq(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/job/model.next", "/job/model"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query("/job/model/dev0/w", nil)
	if err != nil || got.NumElems() != 3 {
		t.Fatalf("rename lost data: %v", err)
	}
	if _, err := c.Query("/job/model.next/dev0/w", nil); err == nil {
		t.Fatal("source still present after rename")
	}
	if err := c.Rename("/missing", "/m"); err == nil {
		t.Fatal("rename of missing path succeeded")
	}
}

func TestRenameEndpointValidation(t *testing.T) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	// Missing params.
	resp, err := http.Post(hs.URL+"/rename?src=/a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing dst: %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(hs.URL + "/rename?src=/a&dst=/b")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rename: %d", resp.StatusCode)
	}
}

func TestBlobEndpointErrors(t *testing.T) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	if _, err := c.GetBlob("/missing"); err == nil {
		t.Fatal("missing blob read succeeded")
	}
	// Wrong method on /blob.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/blob?path=/x", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /blob: %d", resp.StatusCode)
	}
	if srv.BytesReceived() != 0 {
		t.Fatal("error paths counted as received bytes")
	}
}

func TestTrimStatus(t *testing.T) {
	long := make([]byte, 500)
	for i := range long {
		long[i] = 'a'
	}
	if got := trimStatus(long); len(got) != 200 {
		t.Fatalf("trimStatus long = %d chars", len(got))
	}
	if got := trimStatus([]byte("line1\nline2")); got != "line1" {
		t.Fatalf("trimStatus multiline = %q", got)
	}
}
