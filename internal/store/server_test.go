package store

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"tenplex/internal/tensor"
)

func newTestServer(t *testing.T) (*Server, *Client, func()) {
	t.Helper()
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	return srv, &Client{Base: hs.URL, HTTP: hs.Client()}, hs.Close
}

func TestClientUploadQueryRoundTrip(t *testing.T) {
	_, c, done := newTestServer(t)
	defer done()

	x := seq(4, 6)
	if err := c.Upload("/job/model/dev0/w", x); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query("/job/model/dev0/w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestClientRangeQueryMovesOnlyRequestedBytes(t *testing.T) {
	srv, c, done := newTestServer(t)
	defer done()

	x := seq(100, 100) // 80 KB
	if err := c.Upload("/w", x); err != nil {
		t.Fatal(err)
	}
	before := srv.BytesServed()
	reg := tensor.Region{{Lo: 0, Hi: 100}, {Lo: 10, Hi: 12}} // 2 columns = 1.6 KB
	got, err := c.Query("/w", reg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x.Slice(reg)) {
		t.Fatal("range query returned wrong data")
	}
	served := srv.BytesServed() - before
	want := int64(got.EncodedSize())
	if served != want {
		t.Fatalf("served %d bytes for a %d-byte sub-tensor", served, want)
	}
	if served > int64(x.EncodedSize())/10 {
		t.Fatalf("range query served %d bytes of an %d-byte tensor", served, x.EncodedSize())
	}
}

func TestClientBlobAndStat(t *testing.T) {
	_, c, done := newTestServer(t)
	defer done()

	if err := c.PutBlob("/meta", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	data, err := c.GetBlob("/meta")
	if err != nil || string(data) != `{"a":1}` {
		t.Fatalf("blob roundtrip: %q %v", data, err)
	}
	st, err := c.Stat("/meta")
	if err != nil || !st.Blob || st.Bytes != 7 {
		t.Fatalf("stat blob = %+v, %v", st, err)
	}
	_ = c.Upload("/t", seq(2, 2))
	ts, err := c.Stat("/t")
	if err != nil || ts.Blob || ts.DType != "float64" || len(ts.Shape) != 2 {
		t.Fatalf("stat tensor = %+v, %v", ts, err)
	}
}

func TestClientListAndDelete(t *testing.T) {
	_, c, done := newTestServer(t)
	defer done()

	_ = c.Upload("/a/x", seq(1))
	_ = c.Upload("/a/y", seq(1))
	names, err := c.List("/a")
	if err != nil || len(names) != 2 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := c.Delete("/a/x"); err != nil {
		t.Fatal(err)
	}
	names, _ = c.List("/a")
	if len(names) != 1 || names[0] != "y" {
		t.Fatalf("after delete: %v", names)
	}
	if err := c.Delete("/a/x"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()

	get := func(u string) int {
		resp, err := http.Get(hs.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/query"); got != http.StatusBadRequest {
		t.Errorf("missing path: %d", got)
	}
	if got := get("/query?path=/missing"); got != http.StatusNotFound {
		t.Errorf("missing tensor: %d", got)
	}
	if got := get("/stat?path=/missing"); got != http.StatusNotFound {
		t.Errorf("missing stat: %d", got)
	}
	if got := get("/list?path=/missing"); got != http.StatusNotFound {
		t.Errorf("missing list: %d", got)
	}
	// Bad range.
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	_ = c.Upload("/w", seq(2, 2))
	if got := get("/query?path=/w&range=" + url.QueryEscape("[0:9,0:9]")); got != http.StatusBadRequest {
		t.Errorf("bad range: %d", got)
	}
	if got := get("/query?path=/w&range=oops"); got != http.StatusBadRequest {
		t.Errorf("unparsable range: %d", got)
	}
	// Wrong methods.
	resp, err := http.Post(hs.URL+"/query?path=/w", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /query: %d", resp.StatusCode)
	}
	// Corrupt upload body.
	resp, err = http.Post(hs.URL+"/upload?path=/bad", "", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: %d", resp.StatusCode)
	}
}

func TestClientErrorsIncludeServerMessage(t *testing.T) {
	_, c, done := newTestServer(t)
	defer done()
	_, err := c.Query("/nope", nil)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("error lacks server message: %v", err)
	}
}

func TestListenServesRealSocket(t *testing.T) {
	srv := NewServer(NewMemFS())
	addr, closeFn, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeFn() }()
	c := &Client{Base: "http://" + addr}
	if err := c.Upload("/w", seq(2)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query("/w", nil)
	if err != nil || got.NumElems() != 2 {
		t.Fatalf("real socket roundtrip: %v", err)
	}
}

func TestLocalAccessMatchesClient(t *testing.T) {
	fs := NewMemFS()
	l := Local{FS: fs}
	x := seq(3, 3)
	if err := l.Upload("/w", x); err != nil {
		t.Fatal(err)
	}
	got, err := l.Query("/w", tensor.Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 3}})
	if err != nil || got.NumElems() != 3 {
		t.Fatalf("local slice: %v", err)
	}
	whole, err := l.Query("/w", nil)
	if err != nil || !whole.Equal(x) {
		t.Fatalf("local whole query: %v", err)
	}
	names, err := l.List("/")
	if err != nil || len(names) != 1 {
		t.Fatalf("local list: %v %v", names, err)
	}
	if err := l.Delete("/w"); err != nil {
		t.Fatal(err)
	}
}
