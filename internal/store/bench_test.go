package store

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"tenplex/internal/tensor"
)

func BenchmarkMemFSPutGet(b *testing.B) {
	fs := NewMemFS()
	x := tensor.New(tensor.Float32, 256, 256)
	b.SetBytes(int64(x.NumBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/job/model/dev%d/w", i%16)
		if err := fs.PutTensor(path, x); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.GetTensor(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemFSGetSlice(b *testing.B) {
	fs := NewMemFS()
	x := tensor.New(tensor.Float32, 1024, 1024)
	if err := fs.PutTensor("/w", x); err != nil {
		b.Fatal(err)
	}
	reg := tensor.Region{{Lo: 0, Hi: 1024}, {Lo: 128, Hi: 256}}
	b.SetBytes(reg.NumBytes(tensor.Float32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.GetSlice("/w", reg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRESTRangeQuery(b *testing.B) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	x := tensor.New(tensor.Float32, 512, 512)
	if err := c.Upload("/w", x); err != nil {
		b.Fatal(err)
	}
	reg := tensor.Region{{Lo: 0, Hi: 512}, {Lo: 0, Hi: 64}}
	b.SetBytes(reg.NumBytes(tensor.Float32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("/w", reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemFSQueryInto measures the zero-copy local read path: the
// range lands in the caller's buffer with one strided copy and no
// allocation.
func BenchmarkMemFSQueryInto(b *testing.B) {
	l := Local{FS: NewMemFS()}
	x := tensor.New(tensor.Float32, 1024, 1024)
	if err := l.Upload("/w", x); err != nil {
		b.Fatal(err)
	}
	reg := tensor.Region{{Lo: 0, Hi: 1024}, {Lo: 128, Hi: 256}}
	dst := tensor.New(tensor.Float32, 1024, 128)
	b.SetBytes(reg.NumBytes(tensor.Float32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.QueryInto("/w", reg, dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRESTQueryInto measures the streamed wire read: the response
// payload scatter-writes from the socket straight into the destination
// buffer.
func BenchmarkRESTQueryInto(b *testing.B) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	x := tensor.New(tensor.Float32, 512, 512)
	if err := c.Upload("/w", x); err != nil {
		b.Fatal(err)
	}
	reg := tensor.Region{{Lo: 0, Hi: 512}, {Lo: 0, Hi: 64}}
	dst := tensor.New(tensor.Float32, 512, 64)
	b.SetBytes(reg.NumBytes(tensor.Float32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.QueryInto("/w", reg, dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRESTUpload(b *testing.B) {
	srv := NewServer(NewMemFS())
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	x := tensor.New(tensor.Float32, 512, 512)
	b.SetBytes(int64(x.NumBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Upload("/w", x); err != nil {
			b.Fatal(err)
		}
	}
}
