package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures capped exponential backoff with jitter for the
// Client's idempotent operations (range queries, full-overwrite
// uploads, listings, stats, blob I/O). Non-idempotent operations —
// Rename, Delete, UploadFrom (whose reader cannot be replayed) — always
// run single-attempt regardless of policy.
type RetryPolicy struct {
	// MaxAttempts is the per-call budget including the first attempt;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the first backoff; each retry doubles it up to
	// MaxDelay. Zero means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means 1s.
	MaxDelay time.Duration
	// JitterSeed makes the jitter sequence deterministic for tests;
	// zero seeds from the policy address identity (still deterministic
	// per client, arbitrary across runs).
	JitterSeed int64
	// Sleep replaces time.Sleep between attempts; test hook.
	Sleep func(time.Duration)
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the pause before attempt+1: the capped exponential
// step equal-jittered into [step/2, step).
func (p *RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	step := base
	for i := 1; i < attempt && step < max; i++ {
		step *= 2
	}
	if step > max {
		step = max
	}
	half := step / 2
	if half <= 0 {
		return step
	}
	return half + time.Duration(rng.Int63n(int64(half)))
}

// ClientStats counts a Client's request outcomes; all fields are
// atomic, so one stats block can be read while transfers are in flight.
type ClientStats struct {
	// Attempts counts every request attempt issued, including firsts.
	Attempts atomic.Int64
	// Retries counts attempts beyond an operation's first.
	Retries atomic.Int64
	// Hedges counts hedge requests launched for straggling reads.
	Hedges atomic.Int64
	// Exhausted counts operations that gave up with RetryExhaustedError.
	Exhausted atomic.Int64
}

// StatsSnapshot is a point-in-time copy of ClientStats.
type StatsSnapshot struct {
	Attempts, Retries, Hedges, Exhausted int64
}

// Snapshot reads the counters atomically (each counter individually;
// the set is not a consistent cut, which is fine for monitoring).
func (s *ClientStats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Attempts:  s.Attempts.Load(),
		Retries:   s.Retries.Load(),
		Hedges:    s.Hedges.Load(),
		Exhausted: s.Exhausted.Load(),
	}
}

// RetryExhaustedError reports that an idempotent operation burned its
// whole attempt budget; it wraps the LAST attempt's error, so
// errors.Is/As see through to the underlying failure.
type RetryExhaustedError struct {
	// Op names the operation, e.g. "GET /query".
	Op string
	// Attempts is the number of attempts issued.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("store client: %s: retry budget exhausted after %d attempts: %v",
		e.Op, e.Attempts, e.Err)
}

func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// transportError marks a request that never produced an HTTP response
// (dial/write/read failures, dropped responses) — always retryable.
type transportError struct {
	method, endpoint string
	err              error
}

func (e *transportError) Error() string {
	return fmt.Sprintf("store client: %s %s: %v", e.method, e.endpoint, e.err)
}

func (e *transportError) Unwrap() error { return e.err }

// statusError is a non-2xx HTTP response; 5xx is retryable, 4xx is the
// caller's fault and is not.
type statusError struct {
	method, endpoint string
	code             int
	status, body     string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("store client: %s %s: %s: %s", e.method, e.endpoint, e.status, e.body)
}

// retryable classifies an attempt's failure. Transport-level failures
// and server-side (5xx) responses may heal on retry; 4xx responses and
// payload-validation failures are deterministic and do not.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	// A corrupt batch frame (CRC mismatch) is in-flight damage, not a
	// deterministic failure: re-request the frame.
	var ce *ChecksumError
	if errors.As(err, &ce) {
		return true
	}
	// A truncated response body (server died mid-stream) surfaces from
	// the decoder rather than the transport.
	return errors.Is(err, io.ErrUnexpectedEOF)
}

func (c *Client) jitterRNG() *rand.Rand {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		seed := int64(1)
		if c.Retry != nil && c.Retry.JitterSeed != 0 {
			seed = c.Retry.JitterSeed
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	return c.rng
}

// jitterStep draws one jittered backoff under the client's RNG mutex so
// concurrent operations don't race the source.
func (c *Client) jitterStep(attempt int) time.Duration {
	rng := c.jitterRNG()
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.Retry.backoff(attempt, rng)
}

// withRetry runs fn under the client's retry policy. ctx is the
// CALLER's context: its cancellation always stops the loop (a deadline
// that fired inside an attempt came from the per-request timeout and is
// retried; one observable on ctx itself is not).
func (c *Client) withRetry(ctx context.Context, op string, fn func() error) error {
	max := c.Retry.attempts()
	var err error
	attempt := 0
	for attempt < max {
		attempt++
		c.Stats.Attempts.Add(1)
		c.Metrics.Add("store.client.attempts", 1)
		if attempt > 1 {
			c.Stats.Retries.Add(1)
			c.Metrics.Add("store.client.retries", 1)
		}
		err = fn()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || !retryable(err) {
			return err
		}
		if attempt < max {
			d := c.jitterStep(attempt)
			if c.Retry.Sleep != nil {
				c.Retry.Sleep(d)
			} else {
				time.Sleep(d)
			}
		}
	}
	if max > 1 {
		c.Stats.Exhausted.Add(1)
		c.Metrics.Add("store.client.exhausted", 1)
		return &RetryExhaustedError{Op: op, Attempts: attempt, Err: err}
	}
	return err
}

// hedgeStream issues a read request like doStream, racing a second
// identical request HedgeAfter into the first one's flight (straggler
// mitigation). The first 2xx response wins and is returned with its
// body open; the straggler is canceled and drained in the background.
// Only the winner's body is ever handed to a decoder, so destination
// buffers see exactly one writer.
func (c *Client) hedgeStream(ctx context.Context, method, endpoint string, params url.Values) (*http.Response, context.CancelFunc, error) {
	if c.HedgeAfter <= 0 {
		return c.doStream(ctx, method, endpoint, params, nil, -1)
	}
	type hres struct {
		i      int
		resp   *http.Response
		cancel context.CancelFunc
		err    error
	}
	var (
		mu      sync.Mutex
		cancels [2]context.CancelFunc
	)
	ch := make(chan hres, 2)
	launch := func(i int) {
		lctx, lcancel := context.WithCancel(ctx)
		mu.Lock()
		cancels[i] = lcancel
		mu.Unlock()
		resp, cancel, err := c.doStream(lctx, method, endpoint, params, nil, -1)
		if err != nil {
			lcancel()
			ch <- hres{i: i, err: err}
			return
		}
		ch <- hres{i: i, resp: resp, cancel: func() { cancel(); lcancel() }}
	}
	go launch(0)
	launched := 1
	timer := time.NewTimer(c.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for received := 0; received < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				c.Stats.Hedges.Add(1)
				c.Metrics.Add("store.client.hedges", 1)
				launched++
				go launch(1)
			}
		case r := <-ch:
			received++
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			// Winner: cancel the straggler and drain its eventual
			// result in the background so nothing leaks.
			mu.Lock()
			for j, cancel := range cancels {
				if j != r.i && cancel != nil {
					cancel()
				}
			}
			mu.Unlock()
			if n := launched - received; n > 0 {
				go func(n int) {
					for k := 0; k < n; k++ {
						if o := <-ch; o.err == nil {
							o.resp.Body.Close()
							o.cancel()
						}
					}
				}(n)
			}
			return r.resp, r.cancel, nil
		}
	}
	return nil, nil, firstErr
}
