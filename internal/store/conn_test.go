package store

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tenplex/internal/tensor"
)

// countingClient returns an *http.Client that counts TCP dials. Every
// response body the store client fails to drain to EOF forfeits its
// connection and forces a fresh dial, so the dial count is the
// regression signal for keep-alive reuse.
func countingClient(dials *atomic.Int32) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}}
}

func TestSequentialQueriesReuseOneConnection(t *testing.T) {
	fs := NewMemFS()
	src := seqTensor(8, 8)
	if err := fs.PutTensor("/w", src); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewServer(fs))
	defer hs.Close()
	var dials atomic.Int32
	c := &Client{Base: hs.URL, HTTP: countingClient(&dials)}
	dst := tensor.New(tensor.Float32, 8, 8)
	for i := 0; i < 8; i++ {
		if _, err := c.Query("/w", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := c.QueryInto("/w", tensor.Region{{Lo: 1, Hi: 4}, {Lo: 0, Hi: 8}}, dst,
			tensor.Region{{Lo: 1, Hi: 4}, {Lo: 0, Hi: 8}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stat("/w"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.List("/"); err != nil {
			t.Fatal(err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials across sequential requests, want 1 (keep-alive broken: response bodies not drained)", n)
	}
}

func TestSequentialBatchesReuseOneConnection(t *testing.T) {
	fs := NewMemFS()
	if err := fs.PutTensor("/w", seqTensor(4, 4)); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewServer(fs))
	defer hs.Close()
	var dials atomic.Int32
	c := &Client{Base: hs.URL, HTTP: countingClient(&dials)}
	for i := 0; i < 8; i++ {
		dst := tensor.New(tensor.Float32, 4, 4)
		if _, err := c.BatchQueryInto(context.Background(),
			[]BatchEntry{{Path: "/w", Dst: dst}}); err != nil {
			t.Fatal(err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials across sequential batches, want 1", n)
	}
}

// meteredReader yields the payload in slow 4KiB chunks, counting bytes
// handed to the transport. The trickle keeps the body copy alive long
// enough for a mid-upload cancel; the counter shows where it stopped.
type meteredReader struct {
	n     atomic.Int64
	delay time.Duration
}

func (r *meteredReader) Read(p []byte) (int, error) {
	time.Sleep(r.delay)
	if len(p) > 4096 {
		p = p[:4096]
	}
	for i := range p {
		p[i] = 0x5a
	}
	r.n.Add(int64(len(p)))
	return len(p), nil
}

func TestUploadFromContextCancelAbortsPromptly(t *testing.T) {
	hs := httptest.NewServer(NewServer(NewMemFS()))
	defer hs.Close()
	c := &Client{Base: hs.URL, HTTP: hs.Client()}
	shape := []int{1 << 20} // 4 MiB of Float32: far more than arrives before the cancel
	payload := tensor.ShapeNumBytes(tensor.Float32, shape)
	src := &meteredReader{delay: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.UploadFromContext(ctx, "/u", tensor.Float32, shape, src)
	if err == nil {
		t.Fatal("canceled upload succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled upload error = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", d)
	}
	// The transfer stopped near the cancel point instead of streaming the
	// remaining payload to a doomed staging path.
	if got := src.n.Load(); got >= payload/2 {
		t.Fatalf("reader supplied %d of %d bytes after cancel, transfer was not aborted", got, payload)
	}
	// Nothing was committed.
	if _, err := c.Stat("/u"); err == nil {
		t.Fatal("aborted upload left a tensor behind")
	}
}
