package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"time"

	"tenplex/internal/tensor"
)

// Multi-range batch protocol. One POST /batch carries a JSON list of
// (path, range) entries; the server coalesces adjacent ranges per
// stored tensor and streams back a single length-prefixed binary frame
// sequence (tensor/frame.go), which the client scatter-writes
// frame-by-frame straight into the destination buffers. Compared with
// one GET /query per plan range, a reconfiguration's whole fetch set
// from a source device costs one round trip and one response body.

// BatchEntry is one range of the batch: read Reg (nil for the whole
// stored tensor) of the tensor at Path into the sub-region At of Dst
// (nil for all of Dst). The region shapes must match; dtypes are the
// caller's contract — the frame stream carries raw payload bytes only.
type BatchEntry struct {
	Path string
	Reg  tensor.Region
	Dst  *tensor.Tensor
	At   tensor.Region
}

// BatchStats reports how a batch was served.
type BatchStats struct {
	// Entries is the number of requested ranges.
	Entries int
	// Frames is the number of data frames received; Coalesced counts
	// entries the server merged into a preceding frame, so
	// Frames+Coalesced == Entries on a single-attempt batch.
	Frames    int
	Coalesced int
	// Bytes is the total payload received across all attempts.
	Bytes int64
	// Attempts counts batch request attempts (0 when falling back).
	Attempts int
	// FellBack is set when the server lacks batch support and the
	// entries were served by per-range QueryInto calls instead.
	FellBack bool
}

// BatchQuerier is implemented by Access implementations that can serve
// many ranges in one round trip. The transformer probes for it and
// falls back to per-range QueryInto when absent (Local stores, old
// servers).
type BatchQuerier interface {
	BatchQueryInto(ctx context.Context, entries []BatchEntry) (BatchStats, error)
}

// ChecksumError reports a batch frame whose CRC32C trailer does not
// match its payload — corruption in flight. It is retryable: the
// scatter-write is idempotent, so the frame is simply re-requested.
type ChecksumError struct {
	// Path is the tensor path of the frame's first entry.
	Path string
	// Declared is the trailer's checksum; Computed is the payload's.
	Declared, Computed uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("store: batch frame for %s: checksum mismatch (declared %#x, computed %#x)",
		e.Path, e.Declared, e.Computed)
}

// castagnoli is the CRC32C table shared by client and server; the
// Castagnoli polynomial is hardware-accelerated on amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// batchWireEntry / batchWireRequest form the JSON body of POST /batch.
type batchWireEntry struct {
	Path  string `json:"path"`
	Range string `json:"range,omitempty"`
}

type batchWireRequest struct {
	Entries []batchWireEntry `json:"entries"`
	CRC     bool             `json:"crc,omitempty"`
}

// capabilitiesJSON is the body of GET /capabilities. Old servers answer
// 404, which the client caches as "no batch support".
type capabilitiesJSON struct {
	Batch bool `json:"batch"`
	CRC   bool `json:"crc"`
}

var _ BatchQuerier = (*Client)(nil)

// batchSupported resolves (and caches) whether the server speaks the
// batch protocol. Only a definite answer — a capabilities document or a
// 404/405 from an old server — is cached; transport failures are not,
// so a flaky probe does not permanently disable batching.
func (c *Client) batchSupported(ctx context.Context) (bool, error) {
	switch c.batchCap.Load() {
	case 1:
		return true, nil
	case -1:
		return false, nil
	}
	var data []byte
	err := c.withRetry(ctx, "capabilities", func() error {
		var e error
		data, e = c.do(ctx, http.MethodGet, "/capabilities", url.Values{}, nil)
		return e
	})
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && (se.code == http.StatusNotFound || se.code == http.StatusMethodNotAllowed) {
			c.batchCap.Store(-1)
			return false, nil
		}
		return false, err
	}
	var caps capabilitiesJSON
	if err := json.Unmarshal(data, &caps); err != nil || !caps.Batch {
		c.batchCap.Store(-1)
		return false, nil
	}
	c.batchCap.Store(1)
	return true, nil
}

// BatchQueryInto implements BatchQuerier: all entries in one POST, the
// response scatter-written frame-by-frame into the destination buffers.
// Batches run under the retry policy but are never hedged (a second
// in-flight copy of a bulk transfer doubles the bytes, not the odds); a
// failed attempt re-requests ONLY the entries whose frames had not yet
// been received and verified, so a connection that dies near the end of
// a large batch does not repeat the transfer from scratch.
func (c *Client) BatchQueryInto(ctx context.Context, entries []BatchEntry) (BatchStats, error) {
	st := BatchStats{Entries: len(entries)}
	if len(entries) == 0 {
		return st, nil
	}
	ats := make([]tensor.Region, len(entries))
	sizes := make([]int64, len(entries))
	for i, e := range entries {
		if e.Dst == nil {
			return st, fmt.Errorf("store client: batch entry %d (%s): nil destination", i, e.Path)
		}
		at := e.At
		if at == nil {
			at = tensor.FullRegion(e.Dst.Shape())
		}
		if e.Reg != nil && !tensor.ShapeEqual(e.Reg.Shape(), at.Shape()) {
			return st, fmt.Errorf("store client: batch entry %d (%s): source region %v != destination region %v",
				i, e.Path, e.Reg, at)
		}
		ats[i] = at
		sizes[i] = at.NumBytes(e.Dst.DType())
	}
	ok, err := c.batchSupported(ctx)
	if err != nil {
		return st, err
	}
	if !ok {
		st.FellBack = true
		for i, e := range entries {
			n, err := c.QueryIntoContext(ctx, e.Path, e.Reg, e.Dst, ats[i])
			if err != nil {
				return st, err
			}
			st.Bytes += n
		}
		return st, nil
	}

	done := make([]bool, len(entries))
	remaining := len(entries)
	max := c.Retry.attempts()
	var lastErr error
	attempt := 0
	for attempt < max {
		attempt++
		st.Attempts++
		c.Stats.Attempts.Add(1)
		c.Metrics.Add("store.client.attempts", 1)
		if attempt > 1 {
			c.Stats.Retries.Add(1)
			c.Metrics.Add("store.client.retries", 1)
		}
		err := c.batchAttempt(ctx, entries, ats, sizes, done, &remaining, &st)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return st, err
		}
		if attempt < max {
			d := c.jitterStep(attempt)
			if c.Retry.Sleep != nil {
				c.Retry.Sleep(d)
			} else {
				time.Sleep(d)
			}
		}
	}
	if max > 1 {
		c.Stats.Exhausted.Add(1)
		c.Metrics.Add("store.client.exhausted", 1)
		return st, &RetryExhaustedError{Op: "batch", Attempts: attempt, Err: lastErr}
	}
	return st, lastErr
}

// batchAttempt issues one POST /batch for the not-yet-received entries
// and scatters the response. Entries are marked received only after
// their frame's checksum verifies, so a corrupt frame is re-requested
// on the next attempt and its (idempotent) scatter overwritten.
func (c *Client) batchAttempt(ctx context.Context, entries []BatchEntry, ats []tensor.Region,
	sizes []int64, done []bool, remaining *int, st *BatchStats) error {
	sub := make([]int, 0, *remaining)
	wire := batchWireRequest{CRC: true, Entries: make([]batchWireEntry, 0, *remaining)}
	for i, e := range entries {
		if done[i] {
			continue
		}
		sub = append(sub, i)
		we := batchWireEntry{Path: e.Path}
		if e.Reg != nil {
			we.Range = e.Reg.String()
		}
		wire.Entries = append(wire.Entries, we)
	}
	payload, err := json.Marshal(wire)
	if err != nil {
		return fmt.Errorf("store client: batch: %w", err)
	}
	resp, cancel, err := c.doStream(ctx, http.MethodPost, "/batch", url.Values{},
		bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		return err
	}
	defer cancel()
	defer drainAndClose(resp.Body)
	flags, err := tensor.DecodeFrameStreamHeader(resp.Body)
	if err != nil {
		return fmt.Errorf("store client: batch: %w", err)
	}
	crcOn := flags&tensor.FrameFlagCRC != 0
	for {
		h, err := tensor.DecodeFrameHeaderFrom(resp.Body)
		if err != nil {
			return fmt.Errorf("store client: batch: %w", err)
		}
		if h.End() {
			break
		}
		lo, hi := int(h.Index), int(h.Index)+int(h.Count)
		if lo >= len(sub) || hi > len(sub) {
			return fmt.Errorf("store client: batch: frame covers entries [%d,%d) of %d", lo, hi, len(sub))
		}
		var want int64
		for j := lo; j < hi; j++ {
			want += sizes[sub[j]]
		}
		if h.Length != uint64(want) {
			return fmt.Errorf("store client: batch: frame for %s declares %d bytes, entries total %d",
				entries[sub[lo]].Path, h.Length, want)
		}
		var body io.Reader = resp.Body
		sum := crc32.New(castagnoli)
		if crcOn {
			body = io.TeeReader(resp.Body, sum)
		}
		for j := lo; j < hi; j++ {
			i := sub[j]
			if _, err := entries[i].Dst.WriteRegion(ats[i], io.LimitReader(body, sizes[i])); err != nil {
				return fmt.Errorf("store client: batch %s: %w", entries[i].Path, err)
			}
		}
		if crcOn {
			var tr [tensor.FrameCRCSize]byte
			if _, err := io.ReadFull(resp.Body, tr[:]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return fmt.Errorf("store client: batch: crc trailer: %w", err)
			}
			if declared := binary.LittleEndian.Uint32(tr[:]); declared != sum.Sum32() {
				return &ChecksumError{Path: entries[sub[lo]].Path, Declared: declared, Computed: sum.Sum32()}
			}
		}
		for j := lo; j < hi; j++ {
			done[sub[j]] = true
		}
		*remaining -= int(h.Count)
		st.Frames++
		st.Coalesced += int(h.Count) - 1
		st.Bytes += want
	}
	if *remaining > 0 {
		return fmt.Errorf("store client: batch: server answered %d of %d entries", len(sub)-*remaining, len(sub))
	}
	return nil
}

// maxBatchEntries bounds one batch request; maxBatchRequestBytes bounds
// its JSON body. Both are far above what a reconfiguration plan emits
// per (device, source) pair.
const (
	maxBatchEntries      = 1 << 16
	maxBatchRequestBytes = 16 << 20
)

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "capabilities is GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(capabilitiesJSON{Batch: true, CRC: true})
}

// batchFrame is one coalesced run of response entries: count entries
// starting at start, whose union region of t streams as one payload.
type batchFrame struct {
	start, count int
	t            *tensor.Tensor
	union        tensor.Region
	bytes        int64
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "batch is POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req batchWireRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if len(req.Entries) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Entries) > maxBatchEntries {
		httpError(w, http.StatusBadRequest, "batch of %d entries exceeds limit %d", len(req.Entries), maxBatchEntries)
		return
	}
	// Resolve and validate every entry before the first response byte:
	// the frame stream has no error frames, so failures must surface as
	// plain HTTP statuses, which is only possible up front.
	type resolvedEntry struct {
		t   *tensor.Tensor
		reg tensor.Region
	}
	res := make([]resolvedEntry, len(req.Entries))
	for i, e := range req.Entries {
		t, err := s.FS.GetTensor(e.Path)
		if err != nil {
			httpError(w, http.StatusNotFound, "batch entry %d: %v", i, err)
			return
		}
		reg := tensor.FullRegion(t.Shape())
		if e.Range != "" {
			pr, err := tensor.ParseRegion(e.Range, t.Shape())
			if err != nil {
				httpError(w, http.StatusBadRequest, "batch entry %d: %v", i, err)
				return
			}
			if len(pr) > 0 {
				reg = pr
			}
		}
		res[i] = resolvedEntry{t: t, reg: reg}
	}
	// Coalesce runs of adjacent ranges over the same stored tensor into
	// single frames, so a plan that slices a tensor into consecutive
	// rows costs one header + one contiguous payload.
	frames := make([]batchFrame, 0, len(res))
	for i, re := range res {
		n := re.reg.NumBytes(re.t.DType())
		if len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.t == re.t {
				if u, ok := coalesceRegions(f.union, re.reg); ok {
					f.union = u
					f.count++
					f.bytes += n
					continue
				}
			}
		}
		frames = append(frames, batchFrame{start: i, count: 1, t: re.t, union: re.reg, bytes: n})
	}
	crcSize := int64(0)
	if req.CRC {
		crcSize = tensor.FrameCRCSize
	}
	total := int64(tensor.FrameStreamHeaderSize) + int64(tensor.FrameHeaderSize) // stream header + end frame
	for _, f := range frames {
		total += int64(tensor.FrameHeaderSize) + f.bytes + crcSize
	}
	var flags uint16
	if req.CRC {
		flags = tensor.FrameFlagCRC
	}
	w.Header().Set("Content-Type", "application/x-tenplex-frames")
	w.Header().Set("Content-Length", fmt.Sprint(total))
	if _, err := w.Write(tensor.EncodeFrameStreamHeader(flags)); err != nil {
		return
	}
	for _, f := range frames {
		h := tensor.FrameHeader{Index: uint32(f.start), Count: uint32(f.count), Length: uint64(f.bytes)}
		if _, err := w.Write(tensor.EncodeFrameHeader(h)); err != nil {
			return
		}
		v := f.t.View(f.union)
		if req.CRC {
			sum := crc32.New(castagnoli)
			n, err := v.WriteTo(io.MultiWriter(w, sum))
			s.bytesOut.Add(n)
			if err != nil {
				return
			}
			var tr [tensor.FrameCRCSize]byte
			binary.LittleEndian.PutUint32(tr[:], sum.Sum32())
			if _, err := w.Write(tr[:]); err != nil {
				return
			}
		} else {
			n, err := v.WriteTo(w)
			s.bytesOut.Add(n)
			if err != nil {
				return
			}
		}
	}
	_, _ = w.Write(tensor.EncodeEndFrame())
}

// coalesceRegions merges b onto the end of a when the union's row-major
// payload equals a's payload followed by b's: the regions must differ
// in exactly one dimension d, be adjacent there (a ends where b
// begins), and every dimension before d must have length 1 — otherwise
// the union would interleave the two payloads. Returns a fresh Region.
func coalesceRegions(a, b tensor.Region) (tensor.Region, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	d := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		if d >= 0 {
			return nil, false
		}
		d = i
	}
	if d < 0 || a[d].Hi != b[d].Lo {
		return nil, false
	}
	for i := 0; i < d; i++ {
		if a[i].Len() != 1 {
			return nil, false
		}
	}
	u := a.Clone()
	u[d] = tensor.Range{Lo: a[d].Lo, Hi: b[d].Hi}
	return u, true
}
