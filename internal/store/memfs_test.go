package store

import (
	"fmt"
	"sync"
	"testing"

	"tenplex/internal/tensor"
)

func seq(shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.Float64, shape...)
	t.FillSeq(0, 1)
	return t
}

func TestPutGetTensor(t *testing.T) {
	fs := NewMemFS()
	x := seq(3, 4)
	if err := fs.PutTensor("/job/model/dev0/block.0/attn/qkv/weight", x); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetTensor("/job/model/dev0/block.0/attn/qkv/weight")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x) {
		t.Fatal("roundtrip mismatch")
	}
	if _, err := fs.GetTensor("/job/model/dev0/nope"); err == nil {
		t.Fatal("missing file found")
	}
	if _, err := fs.GetTensor("/job/missing/dir"); err == nil {
		t.Fatal("missing dir found")
	}
}

func TestGetSlice(t *testing.T) {
	fs := NewMemFS()
	x := seq(4, 6)
	if err := fs.PutTensor("/w", x); err != nil {
		t.Fatal(err)
	}
	reg := tensor.Region{{Lo: 1, Hi: 3}, {Lo: 2, Hi: 5}}
	got, err := fs.GetSlice("/w", reg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x.Slice(reg)) {
		t.Fatal("slice mismatch")
	}
	if _, err := fs.GetSlice("/w", tensor.Region{{Lo: 0, Hi: 9}, {Lo: 0, Hi: 6}}); err == nil {
		t.Fatal("out-of-bounds slice accepted")
	}
}

func TestBlobs(t *testing.T) {
	fs := NewMemFS()
	data := []byte(`{"step": 42}`)
	if err := fs.PutBlob("/job/checkpoint/meta.json", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetBlob("/job/checkpoint/meta.json")
	if err != nil || string(got) != string(data) {
		t.Fatalf("blob roundtrip: %q, %v", got, err)
	}
	// Mutating the returned copy must not affect the store.
	got[0] = 'X'
	again, _ := fs.GetBlob("/job/checkpoint/meta.json")
	if string(again) != string(data) {
		t.Fatal("GetBlob aliases internal storage")
	}
	// Type confusion errors.
	if _, err := fs.GetTensor("/job/checkpoint/meta.json"); err == nil {
		t.Fatal("blob read as tensor")
	}
	if err := fs.PutTensor("/t", seq(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetBlob("/t"); err == nil {
		t.Fatal("tensor read as blob")
	}
}

func TestStat(t *testing.T) {
	fs := NewMemFS()
	_ = fs.PutTensor("/a/t", seq(2, 3))
	_ = fs.PutBlob("/a/b", []byte("xyz"))
	st, err := fs.Stat("/a/t")
	if err != nil || st.IsBlob || st.DType != tensor.Float64 || st.Bytes != 48 {
		t.Fatalf("tensor stat = %+v, %v", st, err)
	}
	sb, err := fs.Stat("/a/b")
	if err != nil || !sb.IsBlob || sb.Bytes != 3 {
		t.Fatalf("blob stat = %+v, %v", sb, err)
	}
	if _, err := fs.Stat("/a/missing"); err == nil {
		t.Fatal("missing stat")
	}
}

func TestListAndDelete(t *testing.T) {
	fs := NewMemFS()
	_ = fs.PutTensor("/job/model/dev0/w", seq(2))
	_ = fs.PutTensor("/job/model/dev1/w", seq(2))
	_ = fs.PutBlob("/job/meta", []byte("m"))

	names, err := fs.List("/job")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "meta" || names[1] != "model/" {
		t.Fatalf("List(/job) = %v", names)
	}
	root, err := fs.List("/")
	if err != nil || len(root) != 1 || root[0] != "job/" {
		t.Fatalf("List(/) = %v, %v", root, err)
	}
	if err := fs.Delete("/job/model/dev0"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetTensor("/job/model/dev0/w"); err == nil {
		t.Fatal("deleted subtree still readable")
	}
	if _, err := fs.GetTensor("/job/model/dev1/w"); err != nil {
		t.Fatal("sibling deleted too")
	}
	if err := fs.Delete("/job/model/dev0"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestRename(t *testing.T) {
	fs := NewMemFS()
	_ = fs.PutTensor("/job/model.next/dev0/w", seq(3))
	_ = fs.PutTensor("/job/model/dev0/w", seq(5)) // old state to overwrite
	if err := fs.Rename("/job/model.next", "/job/model"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetTensor("/job/model/dev0/w")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumElems() != 3 {
		t.Fatal("rename did not replace old tree")
	}
	if _, err := fs.List("/job/model.next"); err == nil {
		t.Fatal("source of rename still present")
	}
	// File rename.
	_ = fs.PutBlob("/x", []byte("1"))
	if err := fs.Rename("/x", "/y/z"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetBlob("/y/z"); err != nil {
		t.Fatal("file rename lost data")
	}
	if err := fs.Rename("/missing", "/m"); err == nil {
		t.Fatal("rename of missing path succeeded")
	}
}

func TestWalkAndTotalBytes(t *testing.T) {
	fs := NewMemFS()
	_ = fs.PutTensor("/a/t1", seq(2))    // 16 bytes
	_ = fs.PutTensor("/a/b/t2", seq(3))  // 24 bytes
	_ = fs.PutBlob("/c", []byte("1234")) // 4 bytes

	var paths []string
	err := fs.Walk("/", func(p string, st Stat) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a/b/t2", "/a/t1", "/c"}
	if len(paths) != 3 {
		t.Fatalf("Walk = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", paths, want)
		}
	}
	if got := fs.TotalBytes(); got != 44 {
		t.Fatalf("TotalBytes = %d", got)
	}
	// Walk a subtree.
	paths = nil
	_ = fs.Walk("/a", func(p string, _ Stat) error { paths = append(paths, p); return nil })
	if len(paths) != 2 {
		t.Fatalf("Walk(/a) = %v", paths)
	}
	if err := fs.Walk("/nope", func(string, Stat) error { return nil }); err == nil {
		t.Fatal("walk of missing dir succeeded")
	}
}

func TestPathValidation(t *testing.T) {
	fs := NewMemFS()
	for _, bad := range []string{"", "/", "//", "/a/../b", "/./x"} {
		if err := fs.PutTensor(bad, seq(1)); err == nil {
			t.Errorf("PutTensor(%q) accepted", bad)
		}
	}
	// A file cannot become a directory.
	_ = fs.PutTensor("/a", seq(1))
	if err := fs.PutTensor("/a/b", seq(1)); err == nil {
		t.Fatal("file used as directory")
	}
	// A directory cannot be overwritten by a file.
	_ = fs.PutTensor("/d/x", seq(1))
	if err := fs.PutTensor("/d", seq(1)); err == nil {
		t.Fatal("directory overwritten by file")
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := NewMemFS()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/w/%d/t", i)
			x := seq(8, 8)
			for k := 0; k < 20; k++ {
				if err := fs.PutTensor(path, x); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := fs.GetSlice(path, tensor.Region{{Lo: 2, Hi: 6}, {Lo: 0, Hi: 8}})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if got.NumElems() != 32 {
					t.Errorf("bad slice size")
					return
				}
				_, _ = fs.List("/w")
			}
		}(i)
	}
	wg.Wait()
	if fs.TotalBytes() != n*8*8*8 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}
