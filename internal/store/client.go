package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"tenplex/internal/tensor"
)

// Access is the interface shared by local (in-process) and remote (REST)
// Tensor Stores. The State Transformer operates through it, so a plan
// executes identically whether sub-tensors live on this worker or
// another.
type Access interface {
	// Query returns the tensor at path, optionally sliced to reg (nil
	// for the whole tensor).
	Query(path string, reg tensor.Region) (*tensor.Tensor, error)
	// Upload stores t at path.
	Upload(path string, t *tensor.Tensor) error
	// Delete removes the file or tree at path.
	Delete(path string) error
	// List returns directory children.
	List(path string) ([]string, error)
	// Rename atomically moves a file or tree, overwriting the target;
	// used to commit staged state.
	Rename(src, dst string) error
}

// Local adapts a MemFS to the Access interface.
type Local struct{ FS *MemFS }

// Query implements Access.
func (l Local) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	if reg == nil {
		t, err := l.FS.GetTensor(path)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return l.FS.GetSlice(path, reg)
}

// Upload implements Access.
func (l Local) Upload(path string, t *tensor.Tensor) error { return l.FS.PutTensor(path, t) }

// Delete implements Access.
func (l Local) Delete(path string) error { return l.FS.Delete(path) }

// List implements Access.
func (l Local) List(path string) ([]string, error) { return l.FS.List(path) }

// Rename implements Access.
func (l Local) Rename(src, dst string) error { return l.FS.Rename(src, dst) }

// PutBlob stores raw bytes; it mirrors Client.PutBlob so blob users can
// hold either through the Access interface.
func (l Local) PutBlob(path string, data []byte) error { return l.FS.PutBlob(path, data) }

// GetBlob fetches raw bytes; it mirrors Client.GetBlob.
func (l Local) GetBlob(path string) ([]byte, error) { return l.FS.GetBlob(path) }

// Client talks to a remote Tensor Store server.
type Client struct {
	// Base is the server address, e.g. "http://10.0.0.2:7070".
	Base string
	// HTTP is the client to use; http.DefaultClient when nil.
	HTTP *http.Client
}

var _ Access = (*Client)(nil)
var _ Access = Local{}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(method, endpoint string, params url.Values, body io.Reader) ([]byte, error) {
	u := fmt.Sprintf("%s%s?%s", c.Base, endpoint, params.Encode())
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return nil, fmt.Errorf("store client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("store client: %s %s: %w", method, endpoint, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store client: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("store client: %s %s: %s: %s", method, endpoint, resp.Status, trimStatus(data))
	}
	return data, nil
}

// Query implements Access. A nil region fetches the whole tensor; a
// non-nil region is sent as a range attribute so only those bytes cross
// the network.
func (c *Client) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	params := url.Values{"path": {path}}
	if reg != nil {
		params.Set("range", reg.String())
	}
	data, err := c.do(http.MethodGet, "/query", params, nil)
	if err != nil {
		return nil, err
	}
	return tensor.Decode(data)
}

// Upload implements Access.
func (c *Client) Upload(path string, t *tensor.Tensor) error {
	_, err := c.do(http.MethodPost, "/upload", url.Values{"path": {path}}, bytes.NewReader(t.Encode()))
	return err
}

// Delete implements Access.
func (c *Client) Delete(path string) error {
	_, err := c.do(http.MethodDelete, "/delete", url.Values{"path": {path}}, nil)
	return err
}

// List implements Access.
func (c *Client) List(path string) ([]string, error) {
	data, err := c.do(http.MethodGet, "/list", url.Values{"path": {path}}, nil)
	if err != nil {
		return nil, err
	}
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("store client: bad list response: %w", err)
	}
	return names, nil
}

// Rename implements Access.
func (c *Client) Rename(src, dst string) error {
	_, err := c.do(http.MethodPost, "/rename", url.Values{"src": {src}, "dst": {dst}}, nil)
	return err
}

// GetBlob fetches raw bytes from the server.
func (c *Client) GetBlob(path string) ([]byte, error) {
	return c.do(http.MethodGet, "/blob", url.Values{"path": {path}}, nil)
}

// PutBlob stores raw bytes on the server.
func (c *Client) PutBlob(path string, data []byte) error {
	_, err := c.do(http.MethodPost, "/blob", url.Values{"path": {path}}, bytes.NewReader(data))
	return err
}

// StatResult mirrors the server's stat response.
type StatResult struct {
	Path  string `json:"path"`
	Blob  bool   `json:"blob"`
	DType string `json:"dtype,omitempty"`
	Shape []int  `json:"shape,omitempty"`
	Bytes int    `json:"bytes"`
}

// Stat fetches file metadata.
func (c *Client) Stat(path string) (StatResult, error) {
	data, err := c.do(http.MethodGet, "/stat", url.Values{"path": {path}}, nil)
	if err != nil {
		return StatResult{}, err
	}
	var st StatResult
	if err := json.Unmarshal(data, &st); err != nil {
		return StatResult{}, fmt.Errorf("store client: bad stat response: %w", err)
	}
	return st, nil
}
