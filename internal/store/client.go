package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"tenplex/internal/obs"
	"tenplex/internal/tensor"
)

// Access is the interface shared by local (in-process) and remote (REST)
// Tensor Stores. The State Transformer operates through it, so a plan
// executes identically whether sub-tensors live on this worker or
// another.
//
// The streaming pair QueryInto/UploadFrom is the zero-copy data path:
// range reads land directly in a caller-owned destination buffer at
// their final strided offsets, and uploads stream from any io.Reader
// without materializing an intermediate tensor. Query and Upload remain
// as whole-tensor conveniences layered on the same machinery.
type Access interface {
	// Query returns the tensor at path, optionally sliced to reg (nil
	// for the whole tensor).
	Query(path string, reg tensor.Region) (*tensor.Tensor, error)
	// QueryInto copies the range reg (nil for the whole tensor) of the
	// tensor at path directly into the sub-region at of dst (nil for
	// all of dst). The two region shapes must match, as must dtypes. It
	// returns the payload bytes written into dst; for an in-process
	// store that is one copy, for a remote store the bytes go from the
	// response stream straight into dst's buffer.
	QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error)
	// Upload stores t at path.
	Upload(path string, t *tensor.Tensor) error
	// UploadFrom stores a tensor of the given dtype and shape at path,
	// streaming its row-major payload from r (exactly
	// tensor.ShapeNumBytes(dt, shape) bytes) without buffering the
	// whole body.
	UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error
	// Delete removes the file or tree at path.
	Delete(path string) error
	// List returns directory children.
	List(path string) ([]string, error)
	// Rename atomically moves a file or tree, overwriting the target;
	// used to commit staged state.
	Rename(src, dst string) error
}

// RefUploader is implemented by Access implementations whose Upload
// retains the tensor by reference instead of copying its bytes
// (in-process MemFS-backed stores). The transformer uses it to account
// copy amplification precisely.
type RefUploader interface{ UploadsByReference() bool }

// Local adapts a MemFS to the Access interface.
type Local struct{ FS *MemFS }

// Query implements Access.
func (l Local) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	if reg == nil {
		t, err := l.FS.GetTensor(path)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return l.FS.GetSlice(path, reg)
}

// QueryInto implements Access: a single strided copy from the stored
// tensor's buffer into dst.
func (l Local) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	return l.FS.ReadRegionInto(path, reg, dst, at)
}

// Upload implements Access.
func (l Local) Upload(path string, t *tensor.Tensor) error { return l.FS.PutTensor(path, t) }

// UploadFrom implements Access: the payload streams directly into the
// freshly allocated tensor's buffer.
func (l Local) UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	return l.FS.PutTensorFrom(path, dt, shape, r)
}

// UploadsByReference implements RefUploader: Local stores the uploaded
// tensor pointer without copying its bytes.
func (l Local) UploadsByReference() bool { return true }

// Delete implements Access.
func (l Local) Delete(path string) error { return l.FS.Delete(path) }

// List implements Access.
func (l Local) List(path string) ([]string, error) { return l.FS.List(path) }

// Rename implements Access.
func (l Local) Rename(src, dst string) error { return l.FS.Rename(src, dst) }

// PutBlob stores raw bytes; it mirrors Client.PutBlob so blob users can
// hold either through the Access interface.
func (l Local) PutBlob(path string, data []byte) error { return l.FS.PutBlob(path, data) }

// GetBlob fetches raw bytes; it mirrors Client.GetBlob.
func (l Local) GetBlob(path string) ([]byte, error) { return l.FS.GetBlob(path) }

// DefaultTimeout bounds every Client request when neither
// Client.Timeout nor a caller context supplies a tighter deadline. It
// covers the whole transfer (connection + body), so it is sized for
// bulk sub-tensor movement, not just round trips; callers streaming
// very large state over slow links should raise Timeout or set it
// negative and bound requests with their own contexts.
const DefaultTimeout = 5 * time.Minute

// Client talks to a remote Tensor Store server. Query and Upload
// stream: response payloads decode incrementally into a single
// destination allocation, and upload bodies read straight out of the
// tensor's backing buffer, so no whole-body intermediate copy exists on
// either side of the wire.
type Client struct {
	// Base is the server address, e.g. "http://10.0.0.2:7070".
	Base string
	// HTTP is the client to use; http.DefaultClient when nil.
	HTTP *http.Client
	// Timeout bounds each request (connection + transfer). Zero means
	// DefaultTimeout; negative disables the bound.
	Timeout time.Duration
	// Retry, when non-nil, retries idempotent operations (queries,
	// full-overwrite uploads, listings, blob I/O) with capped
	// exponential backoff and jitter; an exhausted budget surfaces as
	// *RetryExhaustedError. Nil keeps every operation single-attempt.
	Retry *RetryPolicy
	// HedgeAfter, when positive, races a second identical request into
	// any read still in flight after this delay (straggler
	// mitigation); the first response wins, the loser is canceled.
	HedgeAfter time.Duration
	// Stats counts attempts, retries, hedges, and exhaustions.
	Stats ClientStats
	// Metrics, when non-nil, mirrors every Stats increment into the
	// shared observability registry (store.client.attempts, .retries,
	// .hedges, .exhausted), so client behavior shows up next to
	// coordinator and transformer metrics instead of in a bespoke
	// struct. Nil costs nothing.
	Metrics *obs.Registry

	rngMu sync.Mutex
	rng   *rand.Rand

	// batchCap caches the server's batch capability probe: 0 unknown,
	// 1 batch-capable, -1 not (old server). See BatchQueryInto.
	batchCap atomic.Int32
}

// drainLimit caps how many unread trailing bytes drainAndClose swallows
// to keep a connection reusable; larger remainders are abandoned
// (closing the connection is cheaper than downloading them).
const drainLimit = 1 << 20

// drainAndClose reads the response body to EOF before closing it. The
// HTTP transport only returns a connection to the keep-alive pool once
// its body has been consumed to EOF; closing early tears the connection
// down and the next request pays a fresh dial. The streaming decoders
// read exactly the payload bytes and never observe EOF themselves, so
// every response here must drain explicitly.
func drainAndClose(body io.ReadCloser) error {
	io.Copy(io.Discard, io.LimitReader(body, drainLimit)) //nolint:errcheck // best-effort drain
	return body.Close()
}

var _ Access = (*Client)(nil)
var _ Access = Local{}

// defaultHTTPClient backs Clients that do not supply their own
// http.Client. The stock transport keeps only two idle connections per
// host, but transformer staging fans out dozens of concurrent requests
// per store — under that load most connections would be discarded after
// one use and every follow-up request pays a fresh dial. Keeping a
// deeper idle pool makes keep-alive actually hold at staging
// concurrency.
var defaultHTTPClient = &http.Client{Transport: defaultTransport()}

func defaultTransport() http.RoundTripper {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return http.DefaultTransport
	}
	t = t.Clone()
	t.MaxIdleConns = 0 // no global cap; the per-host limit governs
	t.MaxIdleConnsPerHost = 64
	return t
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// reqContext applies the configured timeout to ctx; the returned cancel
// must run once the response body is fully consumed.
func (c *Client) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.Timeout
	if d == 0 {
		d = DefaultTimeout
	}
	if d < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// doStream issues the request and returns the 2xx response with its
// body still open; the caller must Close it and then call cancel.
// contentLength < 0 leaves the transfer chunked.
func (c *Client) doStream(ctx context.Context, method, endpoint string, params url.Values,
	body io.Reader, contentLength int64) (*http.Response, context.CancelFunc, error) {
	rctx, cancel := c.reqContext(ctx)
	u := fmt.Sprintf("%s%s?%s", c.Base, endpoint, params.Encode())
	req, err := http.NewRequestWithContext(rctx, method, u, body)
	if err != nil {
		cancel()
		return nil, nil, fmt.Errorf("store client: %w", err)
	}
	if contentLength >= 0 {
		req.ContentLength = contentLength
	}
	resp, err := c.http().Do(req)
	if err != nil {
		cancel()
		return nil, nil, &transportError{method: method, endpoint: endpoint, err: err}
	}
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, nil, &statusError{method: method, endpoint: endpoint,
			code: resp.StatusCode, status: resp.Status, body: trimStatus(data)}
	}
	return resp, cancel, nil
}

func (c *Client) do(ctx context.Context, method, endpoint string, params url.Values, body io.Reader) ([]byte, error) {
	resp, cancel, err := c.doStream(ctx, method, endpoint, params, body, -1)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store client: read response: %w", err)
	}
	return data, nil
}

// Query implements Access. A nil region fetches the whole tensor; a
// non-nil region is sent as a range attribute so only those bytes cross
// the network.
func (c *Client) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	return c.QueryContext(context.Background(), path, reg)
}

// QueryContext is Query under a caller-supplied context; the payload
// decodes incrementally off the response stream into one allocation.
// Range queries are idempotent, so the request runs under the client's
// retry policy and (when HedgeAfter is set) hedged against stragglers.
func (c *Client) QueryContext(ctx context.Context, path string, reg tensor.Region) (*tensor.Tensor, error) {
	params := url.Values{"path": {path}}
	if reg != nil {
		params.Set("range", reg.String())
	}
	var t *tensor.Tensor
	err := c.withRetry(ctx, "query "+path, func() error {
		resp, cancel, err := c.hedgeStream(ctx, http.MethodGet, "/query", params)
		if err != nil {
			return err
		}
		defer cancel()
		defer drainAndClose(resp.Body)
		t, err = tensor.DecodeFrom(resp.Body)
		if err != nil {
			return fmt.Errorf("store client: query %s: %w", path, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// QueryInto implements Access: the response payload scatter-writes
// straight from the socket into dst's buffer at its final strided
// offsets — no intermediate tensor on the client side.
func (c *Client) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	return c.QueryIntoContext(context.Background(), path, reg, dst, at)
}

// QueryIntoContext is QueryInto under a caller-supplied context. The
// scatter into dst is idempotent (same region, same bytes), so a
// failed attempt — even one that died mid-write — is safely re-run
// under the retry policy; the decoder only ever reads the hedge
// winner's body, so dst sees exactly one writer.
func (c *Client) QueryIntoContext(ctx context.Context, path string, reg tensor.Region,
	dst *tensor.Tensor, at tensor.Region) (int64, error) {
	if at == nil {
		at = tensor.FullRegion(dst.Shape())
	}
	params := url.Values{"path": {path}}
	if reg != nil {
		params.Set("range", reg.String())
	}
	var n int64
	err := c.withRetry(ctx, "query "+path, func() error {
		resp, cancel, err := c.hedgeStream(ctx, http.MethodGet, "/query", params)
		if err != nil {
			return err
		}
		defer cancel()
		defer drainAndClose(resp.Body)
		dt, shape, err := tensor.DecodeHeaderFrom(resp.Body)
		if err != nil {
			return fmt.Errorf("store client: query %s: %w", path, err)
		}
		if dt != dst.DType() {
			return fmt.Errorf("store client: query %s: dtype %s != destination %s", path, dt, dst.DType())
		}
		if !tensor.ShapeEqual(shape, at.Shape()) {
			return fmt.Errorf("store client: query %s: payload shape %v != destination region %v", path, shape, at)
		}
		n, err = dst.WriteRegion(at, resp.Body)
		if err != nil {
			return fmt.Errorf("store client: query %s: %w", path, err)
		}
		return nil
	})
	return n, err
}

// Upload implements Access. The request body streams the wire header
// followed by the tensor's backing bytes; nothing is re-encoded into an
// intermediate buffer.
func (c *Client) Upload(path string, t *tensor.Tensor) error {
	return c.UploadContext(context.Background(), path, t)
}

// UploadContext is Upload under a caller-supplied context. A full
// tensor overwrite is idempotent and its body replays from the
// tensor's backing buffer, so the request runs under the retry policy.
func (c *Client) UploadContext(ctx context.Context, path string, t *tensor.Tensor) error {
	header := tensor.EncodeHeader(t.DType(), t.Shape())
	return c.withRetry(ctx, "upload "+path, func() error {
		body := io.MultiReader(bytes.NewReader(header), bytes.NewReader(t.Data()))
		resp, cancel, err := c.doStream(ctx, http.MethodPost, "/upload", url.Values{"path": {path}},
			body, int64(len(header)+t.NumBytes()))
		if err != nil {
			return err
		}
		cancel()
		return drainAndClose(resp.Body)
	})
}

// UploadFrom implements Access: the payload is forwarded from r to the
// server in chunks. r cannot be replayed, so UploadFrom always runs
// single-attempt regardless of the retry policy.
func (c *Client) UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	return c.UploadFromContext(context.Background(), path, dt, shape, r)
}

// UploadFromContext is UploadFrom under a caller-supplied context:
// canceling ctx aborts the in-flight transfer promptly instead of
// streaming the remaining payload to a doomed staging tree.
func (c *Client) UploadFromContext(ctx context.Context, path string, dt tensor.DType, shape []int, r io.Reader) error {
	header := tensor.EncodeHeader(dt, shape)
	payload := tensor.ShapeNumBytes(dt, shape)
	body := io.MultiReader(bytes.NewReader(header), io.LimitReader(r, payload))
	resp, cancel, err := c.doStream(ctx, http.MethodPost, "/upload",
		url.Values{"path": {path}}, body, int64(len(header))+payload)
	if err != nil {
		return err
	}
	cancel()
	return drainAndClose(resp.Body)
}

// Delete implements Access. A retried delete whose first attempt
// half-applied could race a concurrent re-create, so it stays
// single-attempt.
func (c *Client) Delete(path string) error {
	return c.DeleteContext(context.Background(), path)
}

// DeleteContext is Delete under a caller-supplied context, so aborts and
// rollbacks are not wedged behind a slow store.
func (c *Client) DeleteContext(ctx context.Context, path string) error {
	_, err := c.do(ctx, http.MethodDelete, "/delete", url.Values{"path": {path}}, nil)
	return err
}

// List implements Access; read-only, retried under the policy.
func (c *Client) List(path string) ([]string, error) {
	return c.ListContext(context.Background(), path)
}

// ListContext is List under a caller-supplied context.
func (c *Client) ListContext(ctx context.Context, path string) ([]string, error) {
	var data []byte
	err := c.withRetry(ctx, "list "+path, func() error {
		var err error
		data, err = c.do(ctx, http.MethodGet, "/list", url.Values{"path": {path}}, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("store client: bad list response: %w", err)
	}
	return names, nil
}

// Rename implements Access. Rename is NOT idempotent — a retry after a
// response lost in flight would fail on the now-missing source — so it
// always runs single-attempt.
func (c *Client) Rename(src, dst string) error {
	return c.RenameContext(context.Background(), src, dst)
}

// RenameContext is Rename under a caller-supplied context.
func (c *Client) RenameContext(ctx context.Context, src, dst string) error {
	_, err := c.do(ctx, http.MethodPost, "/rename", url.Values{"src": {src}, "dst": {dst}}, nil)
	return err
}

// GetBlob fetches raw bytes from the server; read-only, retried under
// the policy.
func (c *Client) GetBlob(path string) ([]byte, error) {
	return c.GetBlobContext(context.Background(), path)
}

// GetBlobContext is GetBlob under a caller-supplied context.
func (c *Client) GetBlobContext(ctx context.Context, path string) ([]byte, error) {
	var data []byte
	err := c.withRetry(ctx, "getblob "+path, func() error {
		var err error
		data, err = c.do(ctx, http.MethodGet, "/blob", url.Values{"path": {path}}, nil)
		return err
	})
	return data, err
}

// PutBlob stores raw bytes on the server; a full overwrite with a
// replayable body, retried under the policy.
func (c *Client) PutBlob(path string, data []byte) error {
	return c.PutBlobContext(context.Background(), path, data)
}

// PutBlobContext is PutBlob under a caller-supplied context.
func (c *Client) PutBlobContext(ctx context.Context, path string, data []byte) error {
	return c.withRetry(ctx, "putblob "+path, func() error {
		_, err := c.do(ctx, http.MethodPost, "/blob", url.Values{"path": {path}}, bytes.NewReader(data))
		return err
	})
}

// StatResult mirrors the server's stat response.
type StatResult struct {
	Path  string `json:"path"`
	Blob  bool   `json:"blob"`
	DType string `json:"dtype,omitempty"`
	Shape []int  `json:"shape,omitempty"`
	Bytes int    `json:"bytes"`
}

// Stat fetches file metadata; read-only, retried under the policy.
func (c *Client) Stat(path string) (StatResult, error) {
	return c.StatContext(context.Background(), path)
}

// StatContext is Stat under a caller-supplied context.
func (c *Client) StatContext(ctx context.Context, path string) (StatResult, error) {
	var data []byte
	err := c.withRetry(ctx, "stat "+path, func() error {
		var err error
		data, err = c.do(ctx, http.MethodGet, "/stat", url.Values{"path": {path}}, nil)
		return err
	})
	if err != nil {
		return StatResult{}, err
	}
	var st StatResult
	if err := json.Unmarshal(data, &st); err != nil {
		return StatResult{}, fmt.Errorf("store client: bad stat response: %w", err)
	}
	return st, nil
}
