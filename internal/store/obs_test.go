package store

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tenplex/internal/obs"
)

// TestClientStatsAndMetricsRaceFree is the -race regression for the
// hedged datapath: many goroutines share one Client whose every read
// may spawn a hedge goroutine, all bumping Stats and the mirrored obs
// registry concurrently. The snapshot taken afterwards must be
// internally consistent and agree with the registry — any torn read or
// missed increment trips the race detector or the equality checks.
func TestClientStatsAndMetricsRaceFree(t *testing.T) {
	fs := NewMemFS()
	if err := fs.PutTensor("/w", seqTensor(4, 4)); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(fs)
	var mu sync.Mutex
	seen := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen++
		slow := seen%3 == 0
		mu.Unlock()
		if slow { // every third request straggles so hedges actually fire
			time.Sleep(5 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	reg := obs.NewRegistry()
	c := &Client{Base: hs.URL, HTTP: hs.Client(), HedgeAfter: time.Millisecond,
		Metrics: reg}
	const goroutines, reads = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if _, err := c.Query("/w", nil); err != nil {
					t.Errorf("hedged query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := c.Stats.Snapshot()
	if st.Attempts != goroutines*reads {
		t.Fatalf("attempts = %d, want %d", st.Attempts, goroutines*reads)
	}
	if st.Hedges == 0 {
		t.Fatal("no hedges fired; the contended path went untested")
	}
	rows := reg.Snapshot()
	check := func(name string, want int64) {
		t.Helper()
		row, ok := obs.Get(rows, name)
		if want == 0 {
			if ok && row.Int != 0 {
				t.Fatalf("%s = %d, want absent or 0", name, row.Int)
			}
			return
		}
		if !ok || row.Int != want {
			t.Fatalf("%s = %+v (ok=%v), want %d", name, row, ok, want)
		}
	}
	check("store.client.attempts", st.Attempts)
	check("store.client.hedges", st.Hedges)
	check("store.client.retries", st.Retries)
	check("store.client.exhausted", st.Exhausted)
}

// TestObserveRecordsPerOpSpans: the Observe wrapper parents one
// datapath span per store operation under the chain's current task
// scope, tags it with op/path/store and payload bytes, and surfaces
// errors as attrs instead of swallowing them.
func TestObserveRecordsPerOpSpans(t *testing.T) {
	fs := NewMemFS()
	if err := fs.PutTensor("/w", seqTensor(2, 3)); err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{Det: true, Level: obs.LevelDatapath})
	var scope obs.ScopeVar
	acc := Observe(Local{FS: fs}, "dev3", &scope)

	// No scope installed yet: operations must pass through unrecorded.
	if _, err := acc.Query("/w", nil); err != nil {
		t.Fatal(err)
	}
	if n := tr.SpanCount(); n != 0 {
		t.Fatalf("unscoped op recorded %d spans", n)
	}

	scope.Set(obs.TaskCtx{T: tr, Parent: 42, Job: "job-7", TMin: 9})
	if _, err := acc.Query("/w", nil); err != nil {
		t.Fatal(err)
	}
	if err := acc.Upload("/u", seqTensor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Rename("/u", "/v"); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.List("/"); err != nil {
		t.Fatal(err)
	}
	if err := acc.Delete("/v"); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Query("/missing", nil); err == nil {
		t.Fatal("query for missing path succeeded")
	}

	spans := tr.Export().Spans
	if len(spans) != 6 {
		t.Fatalf("recorded %d spans, want 6", len(spans))
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
		if s.Cat != obs.CatDatapath || s.Parent != 42 || s.Job != "job-7" || s.TMin != 9 {
			t.Fatalf("span misattributed: %+v", s)
		}
		if s.Attrs["store"] != "dev3" {
			t.Fatalf("span lacks store tag: %+v", s)
		}
	}
	if byName["store.query"] != 2 || byName["store.upload"] != 1 ||
		byName["store.rename"] != 1 || byName["store.list"] != 1 ||
		byName["store.delete"] != 1 {
		t.Fatalf("span names off: %v", byName)
	}
	var sawErr, sawBytes bool
	for _, s := range spans {
		if _, ok := s.Attrs["err"]; ok && s.Name == "store.query" {
			sawErr = true
		}
		if b, ok := s.Attrs["bytes"]; ok && s.Name == "store.query" && b != nil {
			sawBytes = true
		}
	}
	if !sawErr {
		t.Fatal("failed query span carries no err attr")
	}
	if !sawBytes {
		t.Fatal("successful query span carries no bytes attr")
	}

	// Observe must preserve the reference-upload contract Local makes.
	if ru, ok := acc.(RefUploader); !ok || !ru.UploadsByReference() {
		t.Fatal("Observe dropped UploadsByReference")
	}

	// Dropping to phases level turns the wrapper back into a passthrough.
	shallow := obs.New(obs.Options{Det: true, Level: obs.LevelPhases})
	scope.Set(obs.TaskCtx{T: shallow, Parent: 1, Job: "job-7"})
	if _, err := acc.Query("/w", nil); err != nil {
		t.Fatal(err)
	}
	if n := shallow.SpanCount(); n != 0 {
		t.Fatalf("phases-level scope recorded %d datapath spans", n)
	}
}
