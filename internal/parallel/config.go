// Package parallel generates multi-dimensional parallelization
// configurations: which (tensor, pipeline, data)-parallel degree a job
// uses and how model state maps onto devices under it. It plays the role
// of the model parallelizer in the paper's architecture (Megatron-LM /
// Alpa / DeepSpeed): Tenplex asks it for a configuration and receives
// the per-rank model structure from which a PTC is built (§5.1).
package parallel

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
)

// Config is a multi-dimensional parallelization configuration: the
// degrees of tensor (TP), pipeline (PP) and data (DP) parallelism. A job
// uses TP·PP·DP devices.
type Config struct {
	TP, PP, DP int
}

// WorldSize returns the number of devices the configuration occupies.
func (c Config) WorldSize() int { return c.TP * c.PP * c.DP }

// Validate checks the configuration against a device count and model.
func (c Config) Validate(nDevices int, m *model.Model) error {
	if c.TP < 1 || c.PP < 1 || c.DP < 1 {
		return fmt.Errorf("parallel: degrees must be >= 1, got %v", c)
	}
	if c.WorldSize() != nDevices {
		return fmt.Errorf("parallel: %v needs %d devices, allocation has %d", c, c.WorldSize(), nDevices)
	}
	if m != nil && c.PP > len(m.Layers) {
		return fmt.Errorf("parallel: PP=%d exceeds %d model layers", c.PP, len(m.Layers))
	}
	return nil
}

// String renders the configuration in the paper's (T, P, D) notation.
func (c Config) String() string { return fmt.Sprintf("(T=%d,P=%d,D=%d)", c.TP, c.PP, c.DP) }

// Rank is a position in the three-dimensional parallelism grid.
type Rank struct {
	DP, PP, TP int
}

// RankIndex linearizes a rank. TP varies fastest, then PP, then DP —
// Megatron-LM's default order, which places tensor-parallel groups on
// consecutive devices (and therefore, with compact allocations, on
// NVLink-connected GPUs of the same worker).
func (c Config) RankIndex(r Rank) int {
	if r.DP < 0 || r.DP >= c.DP || r.PP < 0 || r.PP >= c.PP || r.TP < 0 || r.TP >= c.TP {
		panic(fmt.Sprintf("parallel: rank %+v out of range for %v", r, c))
	}
	return (r.DP*c.PP+r.PP)*c.TP + r.TP
}

// RankOf inverts RankIndex.
func (c Config) RankOf(i int) Rank {
	if i < 0 || i >= c.WorldSize() {
		panic(fmt.Sprintf("parallel: rank index %d out of range for %v", i, c))
	}
	return Rank{
		DP: i / (c.PP * c.TP),
		PP: (i / c.TP) % c.PP,
		TP: i % c.TP,
	}
}

// DeviceFor maps a rank to a device of the allocation.
func (c Config) DeviceFor(alloc cluster.Allocation, r Rank) cluster.DeviceID {
	return alloc[c.RankIndex(r)]
}

// Ranks enumerates all ranks in linear order.
func (c Config) Ranks() []Rank {
	out := make([]Rank, 0, c.WorldSize())
	for i := 0; i < c.WorldSize(); i++ {
		out = append(out, c.RankOf(i))
	}
	return out
}

// TPGroup returns the devices of one tensor-parallel group (fixed dp,
// pp), in tp order. These devices all-reduce activations every layer.
func (c Config) TPGroup(alloc cluster.Allocation, dp, pp int) []cluster.DeviceID {
	out := make([]cluster.DeviceID, c.TP)
	for tp := 0; tp < c.TP; tp++ {
		out[tp] = c.DeviceFor(alloc, Rank{DP: dp, PP: pp, TP: tp})
	}
	return out
}

// DPGroup returns the devices of one data-parallel group (fixed pp, tp),
// in dp order. These devices all-reduce gradients every step.
func (c Config) DPGroup(alloc cluster.Allocation, pp, tp int) []cluster.DeviceID {
	out := make([]cluster.DeviceID, c.DP)
	for dp := 0; dp < c.DP; dp++ {
		out[dp] = c.DeviceFor(alloc, Rank{DP: dp, PP: pp, TP: tp})
	}
	return out
}

// PPNeighbors returns the devices of one pipeline (fixed dp, tp), in
// stage order. Consecutive entries exchange activations.
func (c Config) PPNeighbors(alloc cluster.Allocation, dp, tp int) []cluster.DeviceID {
	out := make([]cluster.DeviceID, c.PP)
	for pp := 0; pp < c.PP; pp++ {
		out[pp] = c.DeviceFor(alloc, Rank{DP: dp, PP: pp, TP: tp})
	}
	return out
}

// Enumerate lists every configuration with TP·PP·DP == n, TP and PP
// restricted to powers of two (Megatron's constraint), TP ≤ maxTP and
// PP ≤ maxPP. It reproduces the configuration sweep of Fig. 3.
func Enumerate(n, maxTP, maxPP int) []Config {
	var out []Config
	for tp := 1; tp <= n && tp <= maxTP; tp *= 2 {
		for pp := 1; tp*pp <= n && pp <= maxPP; pp *= 2 {
			if n%(tp*pp) != 0 {
				continue
			}
			out = append(out, Config{TP: tp, PP: pp, DP: n / (tp * pp)})
		}
	}
	return out
}

// PartitionStages cuts the model's layer list into pp contiguous stages,
// minimizing the maximum per-stage FLOPs (balanced pipeline). It returns
// per-stage [start, end) layer-index ranges.
func PartitionStages(m *model.Model, pp int) [][2]int {
	n := len(m.Layers)
	if pp < 1 || pp > n {
		panic(fmt.Sprintf("parallel: cannot cut %d layers into %d stages", n, pp))
	}
	cost := make([]float64, n)
	for i, l := range m.Layers {
		cost[i] = l.FLOPsPerSample
		if cost[i] <= 0 {
			cost[i] = 1 // layers with no estimate still occupy a slot
		}
	}
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + cost[i]
	}
	rangeCost := func(a, b int) float64 { return prefix[b] - prefix[a] }

	const inf = 1e300
	// dp[k][i]: minimal max-stage cost cutting the first i layers into k
	// stages; cut[k][i]: position of the last cut.
	dp := make([][]float64, pp+1)
	cut := make([][]int, pp+1)
	for k := 0; k <= pp; k++ {
		dp[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= pp; k++ {
		for i := k; i <= n; i++ {
			for j := k - 1; j < i; j++ {
				c := dp[k-1][j]
				if rc := rangeCost(j, i); rc > c {
					c = rc
				}
				if c < dp[k][i] {
					dp[k][i] = c
					cut[k][i] = j
				}
			}
		}
	}
	out := make([][2]int, pp)
	end := n
	for k := pp; k >= 1; k-- {
		start := cut[k][end]
		out[k-1] = [2]int{start, end}
		end = start
	}
	return out
}
