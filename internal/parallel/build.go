package parallel

import (
	"encoding/json"
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/tensor"
)

// BuildPTC constructs the parallelizable tensor collection describing
// model m's state parallelized with cfg over the allocation:
//
//   - the slicing function σ cuts every tensor-parallel parameter into
//     cfg.TP near-equal ranges along its TPDim (replicated parameters
//     are "sliced" into one full range);
//   - the partitioning function φ groups sub-tensors by pipeline stage
//     (contiguous, FLOP-balanced layer ranges) and replicates every
//     group cfg.DP times;
//   - the allocation function α maps rank (dp, pp, tp) onto
//     alloc[RankIndex], TP fastest.
//
// Optimizer-state tensors follow their parameter's slicing, as Megatron
// checkpoints do.
func BuildPTC(m *model.Model, cfg Config, alloc cluster.Allocation) (*core.PTC, error) {
	if err := cfg.Validate(len(alloc), m); err != nil {
		return nil, err
	}
	stages := PartitionStages(m, cfg.PP)

	ptc := core.NewPTC(fmt.Sprintf("%s %s", m.Name, cfg), alloc)
	params := m.StateParams()
	for _, lp := range params {
		ptc.AddTensor(core.TensorMeta{
			ID:    core.TensorID(lp.Path()),
			DType: lp.Param.DType,
			Shape: lp.Param.Shape,
		})
	}

	// layerStage[i] = pipeline stage owning layer i.
	layerStage := make([]int, len(m.Layers))
	for s, rng := range stages {
		for i := rng[0]; i < rng[1]; i++ {
			layerStage[i] = s
		}
	}

	for _, r := range cfg.Ranks() {
		dev := cfg.DeviceFor(alloc, r)
		for _, lp := range params {
			if layerStage[lp.LayerIndex] != r.PP {
				continue
			}
			reg := tpRegion(lp.Param, cfg.TP, r.TP)
			ptc.Assign(dev, core.TensorID(lp.Path()), reg)
		}
	}
	if err := ptc.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: built PTC invalid: %w", err)
	}
	return ptc, nil
}

// tpRegion returns the region of p held by tensor-parallel rank tp out
// of tpDegree. Parameters without a TP dimension — or too small to cut —
// are replicated in full on every TP rank.
func tpRegion(p model.Param, tpDegree, tp int) tensor.Region {
	full := tensor.FullRegion(p.Shape)
	if p.TPDim == model.NoTP || tpDegree == 1 || p.Shape[p.TPDim] < tpDegree {
		return full
	}
	full[p.TPDim] = tensor.SplitRanges(p.Shape[p.TPDim], tpDegree)[tp]
	return full
}

// RankSpec is the JSON interchange structure the State Transformer
// exchanges with model parallelizers (§5.1): one object per rank,
// following the structure of the model hosted by that rank, with tensor
// shapes (and their sub-tensor ranges) as leaves.
type RankSpec struct {
	Rank    int                   `json:"rank"`
	Device  int                   `json:"device"`
	DP      int                   `json:"dp"`
	PP      int                   `json:"pp"`
	TP      int                   `json:"tp"`
	Tensors map[string]RankTensor `json:"tensors"`
}

// RankTensor is one leaf of a RankSpec.
type RankTensor struct {
	DType string `json:"dtype"`
	Shape []int  `json:"shape"`
	Range string `json:"range"`
}

// ConfigJSON renders the full parallelization configuration — a list of
// per-rank model structures — as JSON.
func ConfigJSON(m *model.Model, cfg Config, alloc cluster.Allocation) ([]byte, error) {
	ptc, err := BuildPTC(m, cfg, alloc)
	if err != nil {
		return nil, err
	}
	specs := make([]RankSpec, 0, cfg.WorldSize())
	for i, r := range cfg.Ranks() {
		dev := cfg.DeviceFor(alloc, r)
		spec := RankSpec{
			Rank: i, Device: int(dev), DP: r.DP, PP: r.PP, TP: r.TP,
			Tensors: map[string]RankTensor{},
		}
		for _, s := range ptc.Place[dev] {
			meta := ptc.Tensors[s.Tensor]
			spec.Tensors[string(s.Tensor)] = RankTensor{
				DType: meta.DType.String(),
				Shape: s.Region.Shape(),
				Range: s.Region.String(),
			}
		}
		specs = append(specs, spec)
	}
	return json.MarshalIndent(specs, "", "  ")
}

// ParseConfigJSON decodes a ConfigJSON document back into rank specs,
// letting external parallelizers hand Tenplex a configuration.
func ParseConfigJSON(data []byte) ([]RankSpec, error) {
	var specs []RankSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("parallel: bad configuration JSON: %w", err)
	}
	return specs, nil
}
