package parallel

import (
	"strings"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/tensor"
)

// firstN returns an allocation of devices 0..n-1.
func firstN(n int) cluster.Allocation {
	out := make(cluster.Allocation, n)
	for i := range out {
		out[i] = cluster.DeviceID(i)
	}
	return out
}

func testModel() *model.Model { return model.GPTCustom(4, 32, 4, 96, 16) }

func TestBuildPTCValidatesEveryConfig(t *testing.T) {
	m := testModel()
	for _, n := range []int{1, 2, 4, 8} {
		for _, cfg := range Enumerate(n, 8, 4) {
			ptc, err := BuildPTC(m, cfg, firstN(n))
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, cfg, err)
			}
			if err := ptc.Validate(); err != nil {
				t.Fatalf("n=%d %v: invalid PTC: %v", n, cfg, err)
			}
			if len(ptc.Devices) != n {
				t.Fatalf("n=%d %v: %d devices", n, cfg, len(ptc.Devices))
			}
		}
	}
}

func TestBuildPTCRejectsBadConfig(t *testing.T) {
	m := testModel()
	if _, err := BuildPTC(m, Config{TP: 2, PP: 2, DP: 2}, firstN(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := BuildPTC(m, Config{TP: 1, PP: 7, DP: 1}, firstN(7)); err == nil {
		t.Fatal("PP > layers accepted")
	}
}

func TestBuildPTCTensorParallelSlicing(t *testing.T) {
	m := testModel() // hidden 32: qkv weight [96, 32]
	cfg := Config{TP: 2, PP: 1, DP: 1}
	ptc, err := BuildPTC(m, cfg, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	id := core.TensorID("block.0/attn/qkv/weight")
	slices := ptc.Slices(id)
	if len(slices) != 2 {
		t.Fatalf("qkv slices = %v", slices)
	}
	if !slices[0].Equal(tensor.Region{{Lo: 0, Hi: 48}, {Lo: 0, Hi: 32}}) ||
		!slices[1].Equal(tensor.Region{{Lo: 48, Hi: 96}, {Lo: 0, Hi: 32}}) {
		t.Fatalf("qkv sliced wrongly: %v", slices)
	}
	// Row-parallel proj slices dim 1.
	proj := ptc.Slices(core.TensorID("block.0/attn/proj/weight"))
	if !proj[0].Equal(tensor.Region{{Lo: 0, Hi: 32}, {Lo: 0, Hi: 16}}) {
		t.Fatalf("proj sliced wrongly: %v", proj)
	}
	// Layer norm replicated: single full slice held by both devices.
	ln := core.TensorID("block.0/ln1/weight")
	if got := ptc.Slices(ln); len(got) != 1 {
		t.Fatalf("ln slices = %v", got)
	}
	if h := ptc.Holders(ln, tensor.FullRegion([]int{32})); len(h) != 2 {
		t.Fatalf("ln holders = %v", h)
	}
}

func TestBuildPTCPipelineAssignsDisjointLayers(t *testing.T) {
	m := testModel() // 6 layers
	cfg := Config{TP: 1, PP: 2, DP: 1}
	ptc, err := BuildPTC(m, cfg, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	layerOf := func(id core.TensorID) string {
		return strings.SplitN(string(id), "/", 2)[0]
	}
	l0, l1 := map[string]bool{}, map[string]bool{}
	for _, s := range ptc.Place[0] {
		l0[layerOf(s.Tensor)] = true
	}
	for _, s := range ptc.Place[1] {
		l1[layerOf(s.Tensor)] = true
	}
	for l := range l0 {
		if l1[l] {
			t.Fatalf("layer %s on both pipeline stages", l)
		}
	}
	if !l0["embedding"] || !l1["final"] {
		t.Fatalf("stage contents: %v | %v", l0, l1)
	}
}

func TestBuildPTCDataParallelReplicates(t *testing.T) {
	m := testModel()
	cfg := Config{TP: 1, PP: 1, DP: 2}
	ptc, err := BuildPTC(m, cfg, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ptc.Place[0]) != len(ptc.Place[1]) {
		t.Fatal("replicas differ in size")
	}
	for i := range ptc.Place[0] {
		a, b := ptc.Place[0][i], ptc.Place[1][i]
		if a.Tensor != b.Tensor || !a.Region.Equal(b.Region) {
			t.Fatalf("replica divergence at %d: %v vs %v", i, a, b)
		}
	}
	if ptc.DeviceBytes(0) != ptc.DeviceBytes(1) {
		t.Fatal("replica byte counts differ")
	}
}

func TestBuildPTCBytesConservation(t *testing.T) {
	// Without replication (DP=1) and TP cutting every slicable tensor,
	// total placed bytes must equal total model bytes exactly when no
	// tensor is replicated across TP... layer norms are, so placed >=
	// model bytes, and placed == model bytes when TP == 1.
	m := testModel()
	ptc, err := BuildPTC(m, Config{TP: 1, PP: 2, DP: 1}, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	if ptc.TotalPlacedBytes() != m.ParamBytes() {
		t.Fatalf("placed %d bytes, model %d", ptc.TotalPlacedBytes(), m.ParamBytes())
	}
	// With DP=3 total placed bytes triple.
	ptc3, err := BuildPTC(m, Config{TP: 1, PP: 2, DP: 3}, firstN(6))
	if err != nil {
		t.Fatal(err)
	}
	if ptc3.TotalPlacedBytes() != 3*m.ParamBytes() {
		t.Fatalf("DP=3 placed %d, want %d", ptc3.TotalPlacedBytes(), 3*m.ParamBytes())
	}
}

func TestBuildPTCWithOptimizerState(t *testing.T) {
	m := testModel().WithAdam()
	ptc, err := BuildPTC(m, Config{TP: 2, PP: 1, DP: 1}, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	// Optimizer tensors follow their parameter's slicing.
	w := ptc.Slices(core.TensorID("block.1/mlp/fc1/weight"))
	o := ptc.Slices(core.TensorID("block.1/mlp/fc1/weight.opt0"))
	if len(w) != len(o) {
		t.Fatalf("optimizer slicing differs: %v vs %v", w, o)
	}
	for i := range w {
		if !w[i].Equal(o[i]) {
			t.Fatalf("optimizer slice %d differs", i)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	m := testModel()
	cfg := Config{TP: 2, PP: 2, DP: 1}
	data, err := ConfigJSON(m, cfg, firstN(4))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseConfigJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("%d rank specs", len(specs))
	}
	for i, s := range specs {
		if s.Rank != i {
			t.Fatalf("rank %d out of order", s.Rank)
		}
		if len(s.Tensors) == 0 {
			t.Fatalf("rank %d has no tensors", i)
		}
		for name, rt := range s.Tensors {
			if rt.Range == "" || len(rt.Shape) == 0 || rt.DType == "" {
				t.Fatalf("rank %d tensor %s incomplete: %+v", i, name, rt)
			}
		}
	}
	if _, err := ParseConfigJSON([]byte("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSmallTensorReplicatedUnderWideTP(t *testing.T) {
	// A model with a dimension smaller than TP must replicate rather
	// than produce empty slices.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	ptc, err := BuildPTC(m, Config{TP: 8, PP: 1, DP: 1}, firstN(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ptc.Validate(); err != nil {
		t.Fatal(err)
	}
	// position embedding has shape [8, 16]; TPDim NoTP => replicated.
	if got := ptc.Slices(core.TensorID("embedding/position/weight")); len(got) != 1 {
		t.Fatalf("position embedding slices = %v", got)
	}
}
