package parallel

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/tensor"
)

// The PTC's three functions generalize beyond (T, P, D) — §4.3. This
// file implements the two strategies the paper calls out: expert
// parallelism for mixture-of-experts models, and sequence parallelism
// for data sample tensors.

// MoEConfig is an expert-parallel configuration: EP expert groups
// replicated DP ways. Experts are distributed round-robin over the EP
// ranks; attention/norm/router parameters are replicated within each
// replica's EP group (the usual DeepSpeed-MoE deployment).
type MoEConfig struct {
	EP, DP int
}

// WorldSize returns the device count the configuration occupies.
func (c MoEConfig) WorldSize() int { return c.EP * c.DP }

func (c MoEConfig) String() string { return fmt.Sprintf("(E=%d,D=%d)", c.EP, c.DP) }

// BuildMoEPTC expresses expert parallelism with the PTC functions: the
// slicing function σ is the identity (experts are whole tensors), the
// partitioning function φ groups tensors by expert — analogous to
// pipeline stages, with expert groups in place of stage groups — and α
// assigns group (dp, ep) to alloc[dp·EP + ep].
func BuildMoEPTC(m *model.Model, cfg MoEConfig, alloc cluster.Allocation) (*core.PTC, error) {
	if cfg.EP < 1 || cfg.DP < 1 {
		return nil, fmt.Errorf("parallel: bad MoE config %v", cfg)
	}
	if cfg.WorldSize() != len(alloc) {
		return nil, fmt.Errorf("parallel: %v needs %d devices, allocation has %d", cfg, cfg.WorldSize(), len(alloc))
	}
	nExperts := m.NumExperts()
	if nExperts == 0 {
		return nil, fmt.Errorf("parallel: model %s has no experts", m.Name)
	}
	if cfg.EP > nExperts {
		return nil, fmt.Errorf("parallel: EP=%d exceeds %d experts", cfg.EP, nExperts)
	}

	ptc := core.NewPTC(fmt.Sprintf("%s %s", m.Name, cfg), alloc)
	params := m.StateParams()
	for _, lp := range params {
		ptc.AddTensor(core.TensorMeta{
			ID:    core.TensorID(lp.Path()),
			DType: lp.Param.DType,
			Shape: lp.Param.Shape,
		})
	}
	for dp := 0; dp < cfg.DP; dp++ {
		for ep := 0; ep < cfg.EP; ep++ {
			dev := alloc[dp*cfg.EP+ep]
			for _, lp := range params {
				p := lp.Param
				if p.IsExpert && p.Expert%cfg.EP != ep {
					continue // owned by another expert group
				}
				ptc.Assign(dev, core.TensorID(lp.Path()), tensor.FullRegion(p.Shape))
			}
		}
	}
	if err := ptc.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: built MoE PTC invalid: %w", err)
	}
	return ptc, nil
}

// SequenceBatch describes a batch of data sample tensors for sequence
// parallelism: each sample is a [SeqLen, Features] tensor that σ slices
// along the sequence dimension.
type SequenceBatch struct {
	// Samples names the per-sample tensors (e.g. "sample.0").
	Samples []string
	// SeqLen and Features are the sample tensor shape.
	SeqLen, Features int
	DType            tensor.DType
}

// BuildSequencePTC expresses sequence parallelism with the PTC
// functions: like tensor parallelism, σ slices tensors — but it slices
// the *data sample* tensors along the sequence dimension instead of the
// model tensors (§4.3). Rank r of sp holds rows
// SplitRanges(SeqLen, sp)[r] of every sample.
func BuildSequencePTC(name string, batch SequenceBatch, sp int, alloc cluster.Allocation) (*core.PTC, error) {
	if sp < 1 || sp > batch.SeqLen {
		return nil, fmt.Errorf("parallel: SP=%d for sequence length %d", sp, batch.SeqLen)
	}
	if sp != len(alloc) {
		return nil, fmt.Errorf("parallel: SP=%d needs %d devices, allocation has %d", sp, sp, len(alloc))
	}
	ptc := core.NewPTC(fmt.Sprintf("%s SP=%d", name, sp), alloc)
	shape := []int{batch.SeqLen, batch.Features}
	for _, s := range batch.Samples {
		ptc.AddTensor(core.TensorMeta{ID: core.TensorID(s), DType: batch.DType, Shape: shape})
	}
	ranges := tensor.SplitRanges(batch.SeqLen, sp)
	for r, dev := range alloc {
		reg := tensor.Region{ranges[r], {Lo: 0, Hi: batch.Features}}
		for _, s := range batch.Samples {
			ptc.Assign(dev, core.TensorID(s), reg.Clone())
		}
	}
	if err := ptc.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: built SP PTC invalid: %w", err)
	}
	return ptc, nil
}
