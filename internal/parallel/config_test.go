package parallel

import (
	"math"
	"testing"

	"tenplex/internal/model"
)

func TestConfigWorldSizeAndValidate(t *testing.T) {
	c := Config{TP: 2, PP: 4, DP: 2}
	if c.WorldSize() != 16 {
		t.Fatalf("world size %d", c.WorldSize())
	}
	m := model.GPTCustom(4, 32, 4, 100, 16)
	if err := c.Validate(16, m); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := c.Validate(8, m); err == nil {
		t.Fatal("wrong device count accepted")
	}
	if err := (Config{TP: 0, PP: 1, DP: 1}).Validate(0, m); err == nil {
		t.Fatal("zero degree accepted")
	}
	if err := (Config{TP: 1, PP: 7, DP: 1}).Validate(7, m); err == nil {
		t.Fatal("PP > layers accepted")
	}
}

func TestRankIndexRoundTrip(t *testing.T) {
	c := Config{TP: 2, PP: 3, DP: 4}
	seen := map[int]bool{}
	for dp := 0; dp < 4; dp++ {
		for pp := 0; pp < 3; pp++ {
			for tp := 0; tp < 2; tp++ {
				r := Rank{DP: dp, PP: pp, TP: tp}
				i := c.RankIndex(r)
				if seen[i] {
					t.Fatalf("rank index %d assigned twice", i)
				}
				seen[i] = true
				if back := c.RankOf(i); back != r {
					t.Fatalf("RankOf(%d) = %+v, want %+v", i, back, r)
				}
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d of 24 ranks", len(seen))
	}
	// TP varies fastest.
	if c.RankIndex(Rank{0, 0, 1}) != 1 || c.RankIndex(Rank{0, 1, 0}) != 2 {
		t.Fatal("rank order is not TP-fastest")
	}
}

func TestRankPanics(t *testing.T) {
	c := Config{TP: 2, PP: 2, DP: 2}
	for name, f := range map[string]func(){
		"rank oob":  func() { c.RankIndex(Rank{DP: 2, PP: 0, TP: 0}) },
		"index oob": func() { c.RankOf(8) },
		"negative":  func() { c.RankOf(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGroupEnumeration(t *testing.T) {
	c := Config{TP: 2, PP: 2, DP: 2}
	alloc := firstN(8)
	tp := c.TPGroup(alloc, 0, 0)
	if int(tp[0]) != 0 || int(tp[1]) != 1 {
		t.Fatalf("TPGroup(0,0) = %v", tp)
	}
	dp := c.DPGroup(alloc, 0, 0)
	if int(dp[0]) != 0 || int(dp[1]) != 4 {
		t.Fatalf("DPGroup = %v", dp)
	}
	pp := c.PPNeighbors(alloc, 0, 1)
	if int(pp[0]) != 1 || int(pp[1]) != 3 {
		t.Fatalf("PPNeighbors = %v", pp)
	}
}

func TestEnumerate(t *testing.T) {
	cfgs := Enumerate(16, 16, 8)
	if len(cfgs) == 0 {
		t.Fatal("no configurations")
	}
	seen := map[Config]bool{}
	for _, c := range cfgs {
		if c.WorldSize() != 16 {
			t.Fatalf("config %v does not use 16 devices", c)
		}
		if seen[c] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c] = true
	}
	for _, want := range []Config{{2, 4, 2}, {16, 1, 1}, {1, 1, 16}, {4, 2, 2}} {
		if !seen[want] {
			t.Errorf("expected config %v missing", want)
		}
	}
	// maxTP honored.
	for _, c := range Enumerate(16, 4, 8) {
		if c.TP > 4 {
			t.Fatalf("config %v exceeds maxTP", c)
		}
	}
}

func TestPartitionStagesBalanced(t *testing.T) {
	m := model.GPT3XL() // 26 layers
	for _, pp := range []int{1, 2, 4, 8} {
		stages := PartitionStages(m, pp)
		if len(stages) != pp {
			t.Fatalf("pp=%d: %d stages", pp, len(stages))
		}
		// Contiguity and coverage.
		if stages[0][0] != 0 || stages[pp-1][1] != len(m.Layers) {
			t.Fatalf("pp=%d: stages %v do not cover the model", pp, stages)
		}
		var maxC, total float64
		for i, s := range stages {
			if i > 0 && s[0] != stages[i-1][1] {
				t.Fatalf("pp=%d: gap between stages %v", pp, stages)
			}
			if s[1] <= s[0] {
				t.Fatalf("pp=%d: empty stage %v", pp, s)
			}
			var c float64
			for l := s[0]; l < s[1]; l++ {
				c += m.Layers[l].FLOPsPerSample
			}
			if c > maxC {
				maxC = c
			}
			total += c
		}
		// Balanced: max stage within 2x of the mean (generous, since the
		// embedding layer is lighter than blocks).
		if maxC > 2*total/float64(pp)+1 {
			t.Fatalf("pp=%d: unbalanced stages (max %.2g, mean %.2g)", pp, maxC, total/float64(pp))
		}
	}
}

func TestPartitionStagesSingleLayerStages(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8) // 4 layers
	stages := PartitionStages(m, 4)
	for i, s := range stages {
		if s[1]-s[0] != 1 {
			t.Fatalf("stage %d = %v, want single layer", i, s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PP > layers should panic in PartitionStages")
		}
	}()
	PartitionStages(m, 5)
}

func TestPartitionStagesOptimal(t *testing.T) {
	// Craft a model where greedy would misplace the cut: costs 10,1,1,10.
	m := &model.Model{Name: "toy", Layers: []model.Layer{
		{Name: "a", FLOPsPerSample: 10},
		{Name: "b", FLOPsPerSample: 1},
		{Name: "c", FLOPsPerSample: 1},
		{Name: "d", FLOPsPerSample: 10},
	}}
	stages := PartitionStages(m, 2)
	// Optimal cut is {a,b}|{c,d} with max stage cost 11.
	var worst float64
	for _, s := range stages {
		var c float64
		for l := s[0]; l < s[1]; l++ {
			c += m.Layers[l].FLOPsPerSample
		}
		worst = math.Max(worst, c)
	}
	if worst != 11 {
		t.Fatalf("max stage cost %v, want optimal 11 (stages %v)", worst, stages)
	}
}
