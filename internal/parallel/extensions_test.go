package parallel

import (
	"strings"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/tensor"
)

func TestMoECatalog(t *testing.T) {
	m := model.MoECustom(2, 16, 4)
	if m.NumExperts() != 4 {
		t.Fatalf("experts = %d", m.NumExperts())
	}
	// Dense GPT has no experts.
	if model.GPTCustom(2, 16, 2, 64, 8).NumExperts() != 0 {
		t.Fatal("dense model reports experts")
	}
	// Expert params are flagged; router is not.
	blk, ok := m.Layer("block.0")
	if !ok {
		t.Fatal("block.0 missing")
	}
	var expertParams, routers int
	for _, p := range blk.Params {
		if p.IsExpert {
			expertParams++
		}
		if strings.HasPrefix(p.Name, "router/") {
			routers++
			if p.IsExpert {
				t.Fatal("router flagged as expert")
			}
		}
	}
	if expertParams != 4*4 || routers != 1 {
		t.Fatalf("expert params %d, routers %d", expertParams, routers)
	}
}

func TestBuildMoEPTCGroupsExperts(t *testing.T) {
	m := model.MoECustom(2, 16, 4)
	cfg := MoEConfig{EP: 2, DP: 1}
	ptc, err := BuildMoEPTC(m, cfg, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ptc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Experts 0,2 on device 0; experts 1,3 on device 1; attention
	// replicated on both.
	holdsExpert := func(dev int, e string) bool {
		for _, s := range ptc.Place[cluster.DeviceID(dev)] {
			if strings.Contains(string(s.Tensor), "expert."+e+"/") {
				return true
			}
		}
		return false
	}
	if !holdsExpert(0, "0") || !holdsExpert(0, "2") || holdsExpert(0, "1") {
		t.Fatal("device 0 expert grouping wrong")
	}
	if !holdsExpert(1, "1") || !holdsExpert(1, "3") || holdsExpert(1, "0") {
		t.Fatal("device 1 expert grouping wrong")
	}
	// σ is the identity: every slice is the full region.
	for id := range ptc.Tensors {
		for _, reg := range ptc.Slices(id) {
			if !reg.Equal(tensor.FullRegion(ptc.Tensors[id].Shape)) {
				t.Fatalf("EP sliced %s: %v", id, reg)
			}
		}
	}
	// Attention is replicated: both devices hold qkv.
	qkv := core.TensorID("block.0/attn/qkv/weight")
	if h := ptc.Holders(qkv, tensor.FullRegion(ptc.Tensors[qkv].Shape)); len(h) != 2 {
		t.Fatalf("qkv holders = %v", h)
	}
}

func TestBuildMoEPTCErrors(t *testing.T) {
	m := model.MoECustom(2, 16, 4)
	if _, err := BuildMoEPTC(m, MoEConfig{EP: 2, DP: 1}, firstN(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := BuildMoEPTC(m, MoEConfig{EP: 8, DP: 1}, firstN(8)); err == nil {
		t.Fatal("EP > experts accepted")
	}
	dense := model.GPTCustom(2, 16, 2, 64, 8)
	if _, err := BuildMoEPTC(dense, MoEConfig{EP: 2, DP: 1}, firstN(2)); err == nil {
		t.Fatal("dense model accepted for EP")
	}
}

// TestMoEReconfiguration: growing EP 2 -> 4 must move only the expert
// tensors that change owners — the PTC plan machinery handles the new
// strategy without modification.
func TestMoEReconfiguration(t *testing.T) {
	m := model.MoECustom(2, 16, 4)
	from, err := BuildMoEPTC(m, MoEConfig{EP: 2, DP: 1}, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	to, err := BuildMoEPTC(m, MoEConfig{EP: 4, DP: 1}, firstN(4))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.Splits != 0 || st.Merges != 0 {
		t.Fatalf("EP reconfiguration must not split/merge: %+v", st)
	}
	if st.MovedBytes == 0 {
		t.Fatal("EP growth must move expert tensors")
	}
	// Moving 2 experts per block (1,3 to new homes) plus replicating
	// attention to 2 new devices; must be well below full state.
	if st.MovedBytes >= m.ParamBytes() {
		t.Fatalf("EP reconfig moved %d >= model %d", st.MovedBytes, m.ParamBytes())
	}
}

func TestBuildSequencePTC(t *testing.T) {
	batch := SequenceBatch{
		Samples: []string{"sample.0", "sample.1", "sample.2"},
		SeqLen:  16, Features: 8, DType: tensor.Float32,
	}
	ptc, err := BuildSequencePTC("batch0", batch, 4, firstN(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ptc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank 2 holds rows 8..12 of every sample.
	for _, s := range ptc.Place[2] {
		if !s.Region.Equal(tensor.Region{{Lo: 8, Hi: 12}, {Lo: 0, Hi: 8}}) {
			t.Fatalf("rank 2 region = %v", s.Region)
		}
	}
	// Re-slicing SP 4 -> 2 merges halves.
	to, err := BuildSequencePTC("batch0", batch, 2, firstN(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.GeneratePlan(ptc, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if st := plan.Stats(nil); st.Merges == 0 {
		t.Fatal("SP shrink should merge sequence slices")
	}
}

func TestBuildSequencePTCErrors(t *testing.T) {
	batch := SequenceBatch{Samples: []string{"s"}, SeqLen: 8, Features: 2, DType: tensor.Float32}
	if _, err := BuildSequencePTC("b", batch, 16, firstN(16)); err == nil {
		t.Fatal("SP > seqlen accepted")
	}
	if _, err := BuildSequencePTC("b", batch, 2, firstN(3)); err == nil {
		t.Fatal("allocation mismatch accepted")
	}
}
