// Package train is the mini DL system of this reproduction: a real
// (CPU, float64) training stack with deterministic SGD, data-parallel
// gradient averaging, Megatron-style tensor-parallel execution, and
// hooks for elastic reconfiguration. The convergence experiments of the
// paper (Figs. 2, 9, 16) depend on state-consistency semantics — sample
// order, exactly-once consumption, global batch size, parameter
// re-sharding — not on GPUs, so this small real system exhibits exactly
// the pathologies the paper demonstrates when state is handled
// inconsistently.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"tenplex/internal/model"
	"tenplex/internal/tensor"
)

// Task is a synthetic classification problem: inputs are deterministic
// pseudo-random vectors keyed by sample ID, labels come from a hidden
// teacher network, so the task is learnable and every worker can
// materialize any sample from its ID alone (the dataset package
// provides the IDs; features are a pure function of them).
type Task struct {
	In         int
	Classes    int
	NumSamples int
	Seed       int64
	// NoiseFrac is the fraction of samples whose label is replaced by a
	// deterministic random class. Label noise makes per-sample
	// memorization visible, which the Fig. 2a experiment (overfitting
	// after inconsistent dataset access) relies on.
	NoiseFrac float64

	teacher *tensor.Tensor // [Classes, In]
}

// NewTask builds a task with a fixed teacher.
func NewTask(in, classes, numSamples int, seed int64) *Task {
	if in < 1 || classes < 2 || numSamples < 1 {
		panic(fmt.Sprintf("train: bad task (in=%d classes=%d n=%d)", in, classes, numSamples))
	}
	teacher := tensor.New(tensor.Float64, classes, in)
	teacher.FillRand(seed*31+7, 1.0)
	return &Task{In: in, Classes: classes, NumSamples: numSamples, Seed: seed, teacher: teacher}
}

// Features materializes the inputs for a batch of sample IDs as a
// [B, In] matrix.
func (tk *Task) Features(ids []int) *tensor.Tensor {
	x := tensor.New(tensor.Float64, len(ids), tk.In)
	for r, id := range ids {
		if id < 0 || id >= tk.NumSamples {
			panic(fmt.Sprintf("train: sample %d of %d", id, tk.NumSamples))
		}
		rng := rand.New(rand.NewSource(tk.Seed ^ int64(id)*0x9e3779b9))
		for j := 0; j < tk.In; j++ {
			x.SetFloat64(rng.NormFloat64(), r, j)
		}
	}
	return x
}

// Labels returns each sample's class: the teacher's argmax, except for
// the NoiseFrac of samples that carry a deterministic random label.
func (tk *Task) Labels(ids []int) []int {
	x := tk.Features(ids)
	logits := tensor.MatMulABT(x, tk.teacher)
	out := make([]int, len(ids))
	for r, id := range ids {
		rng := rand.New(rand.NewSource(tk.Seed ^ int64(id)*0x51ed2701 + 13))
		if tk.NoiseFrac > 0 && rng.Float64() < tk.NoiseFrac {
			out[r] = rng.Intn(tk.Classes)
			continue
		}
		best, bestV := 0, math.Inf(-1)
		for c := 0; c < tk.Classes; c++ {
			if v := logits.Float64At(r, c); v > bestV {
				best, bestV = c, v
			}
		}
		out[r] = best
	}
	return out
}

// MLPCatalog describes the trainer's two-layer MLP in the model
// package's terms, so the PTC machinery can parallelize and reconfigure
// its state. fc1 is column-parallel (its output dimension slices under
// TP), fc2 is row-parallel; each parameter carries one optimizer-state
// tensor (the SGD momentum buffer).
func MLPCatalog(in, hidden, classes int) *model.Model {
	dt := tensor.Float64
	m := &model.Model{
		Name:              fmt.Sprintf("mlp-i%d-h%d-c%d", in, hidden, classes),
		OptimizerStates:   1,
		OptimizerDType:    dt,
		ActElemsPerSample: hidden,
	}
	m.Layers = []model.Layer{
		{
			Name: "fc1",
			Params: []model.Param{
				{Name: "weight", Shape: []int{hidden, in}, DType: dt, TPDim: 0},
				{Name: "bias", Shape: []int{hidden}, DType: dt, TPDim: 0},
			},
			FLOPsPerSample: 6 * float64(hidden*in),
		},
		{
			Name: "fc2",
			Params: []model.Param{
				{Name: "weight", Shape: []int{classes, hidden}, DType: dt, TPDim: 1},
				{Name: "bias", Shape: []int{classes}, DType: dt, TPDim: model.NoTP},
			},
			FLOPsPerSample: 6 * float64(classes*hidden),
		},
	}
	return m
}

// InitState returns deterministic initial parameters (and zeroed
// momentum buffers) for an MLP catalog, keyed by tensor path.
func InitState(cat *model.Model, seed int64) map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	i := int64(0)
	for _, lp := range cat.StateParams() {
		t := tensor.New(tensor.Float64, lp.Param.Shape...)
		if isOptState(lp.Param.Name) {
			// momentum buffers start at zero
		} else {
			fan := lp.Param.Shape[len(lp.Param.Shape)-1]
			t.FillRand(seed+i, 1/math.Sqrt(float64(fan)))
		}
		out[lp.Path()] = t
		i++
	}
	return out
}

func isOptState(name string) bool {
	n := len(name)
	return n > 5 && name[n-5:] == ".opt0"
}
