package train

import (
	"fmt"
	"math"

	"tenplex/internal/tensor"
)

// Gradients holds per-parameter gradients keyed by tensor path
// ("fc1/weight", ...).
type Gradients map[string]*tensor.Tensor

// Forward runs the MLP on x [B,In] with full (unsharded) parameters and
// returns hidden activations and logits.
func Forward(state map[string]*tensor.Tensor, x *tensor.Tensor) (h, logits *tensor.Tensor) {
	pre := tensor.AddRowVec(tensor.MatMulABT(x, state["fc1/weight"]), state["fc1/bias"])
	h = tensor.Apply(pre, math.Tanh)
	logits = tensor.AddRowVec(tensor.MatMulABT(h, state["fc2/weight"]), state["fc2/bias"])
	return h, logits
}

// SoftmaxCE returns the mean cross-entropy loss and dLoss/dLogits for a
// batch of integer labels.
func SoftmaxCE(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	shape := logits.Shape()
	b, c := shape[0], shape[1]
	if len(labels) != b {
		panic(fmt.Sprintf("train: %d labels for batch %d", len(labels), b))
	}
	dl := tensor.New(tensor.Float64, b, c)
	var loss float64
	for r := 0; r < b; r++ {
		// log-sum-exp with max subtraction for stability
		maxV := math.Inf(-1)
		for j := 0; j < c; j++ {
			if v := logits.Float64At(r, j); v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j := 0; j < c; j++ {
			sum += math.Exp(logits.Float64At(r, j) - maxV)
		}
		lse := maxV + math.Log(sum)
		loss += lse - logits.Float64At(r, labels[r])
		for j := 0; j < c; j++ {
			p := math.Exp(logits.Float64At(r, j)-maxV) / sum
			g := p / float64(b)
			if j == labels[r] {
				g -= 1 / float64(b)
			}
			dl.SetFloat64(g, r, j)
		}
	}
	return loss / float64(b), dl
}

// Backward computes gradients for the full MLP given the forward
// activations and dLogits.
func Backward(state map[string]*tensor.Tensor, x, h, dLogits *tensor.Tensor) Gradients {
	g := Gradients{}
	g["fc2/weight"] = tensor.MatMulATB(dLogits, h) // [C,H]
	g["fc2/bias"] = tensor.SumRows(dLogits)
	dh := tensor.MatMul(dLogits, state["fc2/weight"]) // [B,H]
	// tanh' = 1 - h^2
	dpre := tensor.Mul(dh, tensor.Apply(h, func(v float64) float64 { return 1 - v*v }))
	g["fc1/weight"] = tensor.MatMulATB(dpre, x) // [H,In]
	g["fc1/bias"] = tensor.SumRows(dpre)
	return g
}

// Loss runs a full forward pass and returns the batch loss only.
func Loss(state map[string]*tensor.Tensor, x *tensor.Tensor, labels []int) float64 {
	_, logits := Forward(state, x)
	l, _ := SoftmaxCE(logits, labels)
	return l
}

// SGDUpdate applies one SGD-with-momentum step in place:
// v ← μ·v + g; w ← w − η·v. Momentum buffers are the ".opt0" tensors of
// the state map — real optimizer state that reconfigurations must carry.
func SGDUpdate(state map[string]*tensor.Tensor, grads Gradients, lr, momentum float64) {
	for name, g := range grads {
		w, ok := state[name]
		if !ok {
			panic(fmt.Sprintf("train: gradient for unknown parameter %q", name))
		}
		v, ok := state[name+".opt0"]
		if !ok {
			panic(fmt.Sprintf("train: no momentum buffer for %q", name))
		}
		v.ScaleInPlace(momentum)
		v.AddScaledInPlace(1, g)
		w.AddScaledInPlace(-lr, v)
	}
}

// --- tensor-parallel execution ----------------------------------------

// TPShard holds one tensor-parallel rank's slice of the MLP: rows
// [lo,hi) of fc1 (column parallelism) and the matching columns of fc2
// (row parallelism). fc2/bias is replicated and updated identically on
// every shard.
type TPShard struct {
	Lo, Hi int // hidden-dimension range
	State  map[string]*tensor.Tensor
}

// ShardState cuts full state into tp TPShards along the hidden
// dimension, momentum buffers included — exactly the slicing σ the
// parallel package would produce for MLPCatalog.
func ShardState(full map[string]*tensor.Tensor, tp int) []*TPShard {
	hidden := full["fc1/weight"].Dim(0)
	ranges := tensor.SplitRanges(hidden, tp)
	shards := make([]*TPShard, tp)
	for s, r := range ranges {
		st := map[string]*tensor.Tensor{}
		for _, name := range []string{"fc1/weight", "fc1/bias", "fc2/weight", "fc2/bias"} {
			for _, suffix := range []string{"", ".opt0"} {
				t := full[name+suffix]
				reg := tensor.FullRegion(t.Shape())
				switch name {
				case "fc1/weight", "fc1/bias":
					reg[0] = r
				case "fc2/weight":
					reg[1] = r
				}
				st[name+suffix] = t.Slice(reg)
			}
		}
		shards[s] = &TPShard{Lo: r.Lo, Hi: r.Hi, State: st}
	}
	return shards
}

// MergeShards reassembles full state from TP shards — the inverse of
// ShardState, used to compare sharded training against the unsharded
// reference.
func MergeShards(shards []*TPShard) map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, suffix := range []string{"", ".opt0"} {
		var w1, b1, w2 []*tensor.Tensor
		for _, s := range shards {
			w1 = append(w1, s.State["fc1/weight"+suffix])
			b1 = append(b1, s.State["fc1/bias"+suffix])
			w2 = append(w2, s.State["fc2/weight"+suffix])
		}
		out["fc1/weight"+suffix] = tensor.Concat(0, w1...)
		out["fc1/bias"+suffix] = tensor.Concat(0, b1...)
		out["fc2/weight"+suffix] = tensor.Concat(1, w2...)
		out["fc2/bias"+suffix] = shards[0].State["fc2/bias"+suffix].Clone()
	}
	return out
}

// TPStep executes one training step across tensor-parallel shards:
// every shard computes its hidden slice, partial logits are all-reduced
// (summed), the shared bias is added once, and each shard updates its
// own slice of the parameters. The math is the Megatron decomposition,
// so the result matches unsharded execution up to float re-association.
// Returns the batch loss.
func TPStep(shards []*TPShard, x *tensor.Tensor, labels []int, lr, momentum float64) float64 {
	b := x.Dim(0)
	classes := shards[0].State["fc2/weight"].Dim(0)

	// Forward: per-shard hidden slices and partial logits.
	hs := make([]*tensor.Tensor, len(shards))
	logits := tensor.New(tensor.Float64, b, classes)
	for i, s := range shards {
		pre := tensor.AddRowVec(tensor.MatMulABT(x, s.State["fc1/weight"]), s.State["fc1/bias"])
		hs[i] = tensor.Apply(pre, math.Tanh)
		logits = tensor.Add(logits, tensor.MatMulABT(hs[i], s.State["fc2/weight"]))
	}
	logits = tensor.AddRowVec(logits, shards[0].State["fc2/bias"])

	loss, dLogits := SoftmaxCE(logits, labels)

	// Backward + update per shard.
	db2 := tensor.SumRows(dLogits) // identical on every shard
	for i, s := range shards {
		g := Gradients{}
		g["fc2/weight"] = tensor.MatMulATB(dLogits, hs[i])
		g["fc2/bias"] = db2
		dh := tensor.MatMul(dLogits, s.State["fc2/weight"])
		dpre := tensor.Mul(dh, tensor.Apply(hs[i], func(v float64) float64 { return 1 - v*v }))
		g["fc1/weight"] = tensor.MatMulATB(dpre, x)
		g["fc1/bias"] = tensor.SumRows(dpre)
		SGDUpdate(s.State, g, lr, momentum)
	}
	return loss
}
