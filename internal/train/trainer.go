package train

import (
	"fmt"

	"tenplex/internal/dataset"
	"tenplex/internal/tensor"
)

// BatchPolicy controls how hyper-parameters react to a change in the
// degree of data parallelism (§2.3, "consistency of hyper-parameters").
type BatchPolicy int

const (
	// KeepGlobalBatch holds the global batch size constant: each device
	// batch becomes global/dp. Convergence is unaffected — the correct
	// behaviour, which Tenplex enforces.
	KeepGlobalBatch BatchPolicy = iota
	// KeepDeviceBatch holds the per-device batch constant, so the global
	// batch (and, with the common linear-scaling rule, the learning
	// rate) grows with dp. This is the inconsistent behaviour of Fig. 2b.
	KeepDeviceBatch
)

// DataPolicy controls how the dataset position reacts to a
// reconfiguration (§2.3, "consistency of training dataset").
type DataPolicy int

const (
	// ResumePosition keeps the epoch cursor: every sample of the epoch
	// is still consumed exactly once — the correct behaviour.
	ResumePosition DataPolicy = iota
	// RestartEpoch rewinds the epoch after a resource change, re-reading
	// the first part of the epoch. This is the inconsistent behaviour of
	// Fig. 2a: the repeated samples overfit and the loss drops
	// unreasonably.
	RestartEpoch
)

// Trainer drives data-parallel SGD over the synthetic task with real
// state: parameters and momentum live in tensors, batches come from the
// dataset cursor, and the degree of data parallelism can change between
// steps.
type Trainer struct {
	Task  *Task
	State map[string]*tensor.Tensor
	// Cursor is the dataset state (part of the PTC).
	Cursor dataset.Cursor

	LR          float64
	Momentum    float64
	GlobalBatch int
	DeviceBatch int // used by KeepDeviceBatch
	DP          int

	BatchPolicy BatchPolicy
	DataPolicy  DataPolicy

	// Losses records the loss of every step taken.
	Losses []float64
	// Step counts completed steps.
	Step int
}

// NewTrainer builds a trainer with deterministic initial state.
func NewTrainer(task *Task, hidden int, lr, momentum float64, globalBatch, dp int, seed int64) *Trainer {
	cat := MLPCatalog(task.In, hidden, task.Classes)
	return &Trainer{
		Task:        task,
		State:       InitState(cat, seed),
		Cursor:      dataset.Cursor{Seed: seed},
		LR:          lr,
		Momentum:    momentum,
		GlobalBatch: globalBatch,
		DeviceBatch: globalBatch / dp,
		DP:          dp,
	}
}

// TrainStep runs one data-parallel step: the global batch is cut into
// per-replica shards by the dataset cursor, every replica computes
// gradients on its shard, gradients are averaged (weighted by shard
// size), and a single SGD update is applied — numerically the same
// computation a DP cluster performs. Returns the global-batch loss.
func (tr *Trainer) TrainStep() float64 {
	gb := tr.GlobalBatch
	if tr.BatchPolicy == KeepDeviceBatch {
		gb = tr.DeviceBatch * tr.DP
	}
	shards := tr.Cursor.NextBatch(tr.Task.NumSamples, gb, tr.DP)

	var total Gradients
	var loss float64
	for _, sh := range shards {
		x := tr.Task.Features(sh.Samples)
		labels := tr.Task.Labels(sh.Samples)
		h, logits := Forward(tr.State, x)
		l, dl := SoftmaxCE(logits, labels)
		g := Backward(tr.State, x, h, dl)
		w := float64(len(sh.Samples)) / float64(gb)
		loss += l * w
		if total == nil {
			total = Gradients{}
			for name, gt := range g {
				total[name] = tensor.Scale(gt, w)
			}
		} else {
			for name, gt := range g {
				total[name].AddScaledInPlace(w, gt)
			}
		}
	}
	SGDUpdate(tr.State, total, tr.LR, tr.Momentum)
	tr.Losses = append(tr.Losses, loss)
	tr.Step++
	return loss
}

// Run takes n steps.
func (tr *Trainer) Run(n int) {
	for i := 0; i < n; i++ {
		tr.TrainStep()
	}
}

// Rescale changes the data-parallel degree mid-training, applying the
// trainer's batch and data policies — the moment a GPU change lands.
func (tr *Trainer) Rescale(newDP int) {
	if newDP < 1 {
		panic(fmt.Sprintf("train: bad dp %d", newDP))
	}
	switch tr.DataPolicy {
	case ResumePosition:
		// Cursor unchanged: the epoch suffix is re-partitioned.
	case RestartEpoch:
		tr.Cursor.Consumed = 0
	}
	switch tr.BatchPolicy {
	case KeepGlobalBatch:
		// Global batch constant; device batch implicitly shrinks/grows.
	case KeepDeviceBatch:
		// Device batch constant -> global batch scales with dp, and the
		// job applies the linear LR scaling rule naively.
		tr.LR *= float64(newDP) / float64(tr.DP)
	}
	tr.DP = newDP
}

// EvalLoss computes the loss on a fixed probe batch without advancing
// any state; convergence plots use it for comparability across runs.
func (tr *Trainer) EvalLoss(probe []int) float64 {
	x := tr.Task.Features(probe)
	labels := tr.Task.Labels(probe)
	return Loss(tr.State, x, labels)
}

// CloneState deep-copies the trainer's state map.
func CloneState(state map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(state))
	for k, v := range state {
		out[k] = v.Clone()
	}
	return out
}

// StateClose reports whether two state maps agree within tol.
func StateClose(a, b map[string]*tensor.Tensor, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !av.AllClose(bv, tol) {
			return false
		}
	}
	return true
}
