package train

import (
	"math"
	"testing"

	"tenplex/internal/tensor"
)

func newSmallTask() *Task { return NewTask(8, 4, 4096, 11) }

func TestTaskDeterministic(t *testing.T) {
	tk := newSmallTask()
	a := tk.Features([]int{3, 99})
	b := tk.Features([]int{3, 99})
	if !a.Equal(b) {
		t.Fatal("features not deterministic")
	}
	la := tk.Labels([]int{3, 99})
	lb := tk.Labels([]int{3, 99})
	if la[0] != lb[0] || la[1] != lb[1] {
		t.Fatal("labels not deterministic")
	}
	// Labels cover multiple classes over a large batch.
	ids := make([]int, 256)
	for i := range ids {
		ids[i] = i
	}
	seen := map[int]bool{}
	for _, l := range tk.Labels(ids) {
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("degenerate task: single class")
	}
}

func TestSoftmaxCE(t *testing.T) {
	// Uniform logits: loss = log(C); gradient rows sum to 0.
	logits := tensor.New(tensor.Float64, 2, 4)
	loss, dl := SoftmaxCE(logits, []int{1, 2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln4", loss)
	}
	for r := 0; r < 2; r++ {
		var s float64
		for c := 0; c < 4; c++ {
			s += dl.Float64At(r, c)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("gradient row %d sums to %v", r, s)
		}
	}
	// Perfect prediction → tiny loss.
	confident := tensor.FromFloat64([]float64{30, 0, 0, 0}, 1, 4)
	l2, _ := SoftmaxCE(confident, []int{0})
	if l2 > 1e-10 {
		t.Fatalf("confident loss = %v", l2)
	}
}

// TestGradientsNumerically verifies Backward against finite differences.
func TestGradientsNumerically(t *testing.T) {
	tk := NewTask(5, 3, 100, 2)
	cat := MLPCatalog(5, 6, 3)
	state := InitState(cat, 3)
	ids := []int{0, 1, 2, 3}
	x := tk.Features(ids)
	labels := tk.Labels(ids)

	h, logits := Forward(state, x)
	_, dl := SoftmaxCE(logits, labels)
	grads := Backward(state, x, h, dl)

	const eps = 1e-6
	for _, name := range []string{"fc1/weight", "fc1/bias", "fc2/weight", "fc2/bias"} {
		w := state[name]
		g := grads[name]
		// Probe a handful of coordinates.
		n := w.NumElems()
		for _, flat := range []int{0, n / 2, n - 1} {
			idx := flatToIdx(flat, w.Shape())
			orig := w.Float64At(idx...)
			w.SetFloat64(orig+eps, idx...)
			lPlus := Loss(state, x, labels)
			w.SetFloat64(orig-eps, idx...)
			lMinus := Loss(state, x, labels)
			w.SetFloat64(orig, idx...)
			numeric := (lPlus - lMinus) / (2 * eps)
			analytic := g.Float64At(idx...)
			if math.Abs(numeric-analytic) > 1e-6*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%v]: analytic %v vs numeric %v", name, idx, analytic, numeric)
			}
		}
	}
}

func flatToIdx(flat int, shape []int) []int {
	idx := make([]int, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		idx[i] = flat % shape[i]
		flat /= shape[i]
	}
	return idx
}

func TestTrainingConverges(t *testing.T) {
	tk := newSmallTask()
	tr := NewTrainer(tk, 32, 0.3, 0.9, 64, 1, 5)
	tr.Run(150)
	first := avg(tr.Losses[:10])
	last := avg(tr.Losses[len(tr.Losses)-10:])
	if last >= first*0.7 {
		t.Fatalf("no convergence: first %v, last %v", first, last)
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestDPDegreesEquivalent: with a fixed global batch, training with
// DP=1, 2 or 4 performs the same computation.
func TestDPDegreesEquivalent(t *testing.T) {
	tk := newSmallTask()
	ref := NewTrainer(tk, 16, 0.2, 0.9, 32, 1, 7)
	ref.Run(30)
	for _, dp := range []int{2, 4} {
		tr := NewTrainer(tk, 16, 0.2, 0.9, 32, dp, 7)
		tr.Run(30)
		if !StateClose(ref.State, tr.State, 1e-9) {
			t.Fatalf("DP=%d diverges from DP=1", dp)
		}
		for i := range ref.Losses {
			if math.Abs(ref.Losses[i]-tr.Losses[i]) > 1e-9 {
				t.Fatalf("DP=%d loss %d differs: %v vs %v", dp, i, tr.Losses[i], ref.Losses[i])
			}
		}
	}
}

// TestRescaleConsistentMatchesStatic is Fig. 16a in miniature: changing
// DP mid-run with consistent policies leaves the loss curve unchanged.
func TestRescaleConsistentMatchesStatic(t *testing.T) {
	tk := newSmallTask()
	static := NewTrainer(tk, 16, 0.2, 0.9, 32, 2, 7)
	static.Run(40)

	dyn := NewTrainer(tk, 16, 0.2, 0.9, 32, 2, 7)
	dyn.Run(15)
	dyn.Rescale(4) // scale out
	dyn.Run(10)
	dyn.Rescale(1) // scale in
	dyn.Run(15)

	if !StateClose(static.State, dyn.State, 1e-9) {
		t.Fatal("consistent rescaling changed the final state")
	}
	for i := range static.Losses {
		if math.Abs(static.Losses[i]-dyn.Losses[i]) > 1e-9 {
			t.Fatalf("loss %d differs after rescale: %v vs %v", i, dyn.Losses[i], static.Losses[i])
		}
	}
}

// TestRestartEpochOverfits is Fig. 2a in miniature: rewinding the epoch
// after a scale-out consumes repeated samples and drops the training
// loss below the consistent run (overfitting).
func TestRestartEpochOverfits(t *testing.T) {
	// The overfit shows up right after the scaling event: the rewound
	// run re-reads samples it already trained on, so its training loss
	// drops below the consistent run's, which sees fresh data.
	tk := NewTask(8, 4, 1024, 11)
	tk.NoiseFrac = 0.25 // memorizable noise, as in over-parameterized LMs
	run := func(policy DataPolicy) *Trainer {
		tr := NewTrainer(tk, 64, 0.3, 0.9, 64, 2, 7)
		tr.DataPolicy = policy
		tr.Run(24) // 1.5 epochs: the current epoch is half consumed
		tr.Rescale(4)
		tr.Run(8)
		return tr
	}
	consistent := run(ResumePosition)
	rewind := run(RestartEpoch)

	cAfter := avg(consistent.Losses[24:32])
	rAfter := avg(rewind.Losses[24:32])
	if rAfter >= cAfter {
		t.Fatalf("epoch restart should overfit (lower train loss right after the event): consistent %v, rewind %v", cAfter, rAfter)
	}
}

// TestKeepDeviceBatchDiverges is Fig. 2b in miniature: holding the
// device batch while scaling out (with naive linear LR scaling) makes
// the loss worse than the consistent run.
func TestKeepDeviceBatchDiverges(t *testing.T) {
	tk := newSmallTask()
	lr := 1.05 // near the stability edge
	consistent := NewTrainer(tk, 32, lr, 0.9, 32, 2, 7)
	consistent.Run(10)
	consistent.Rescale(4)
	consistent.Run(40)

	naive := NewTrainer(tk, 32, lr, 0.9, 32, 2, 7)
	naive.BatchPolicy = KeepDeviceBatch
	naive.DeviceBatch = 16
	naive.Run(10)
	naive.Rescale(4) // LR doubles
	naive.Run(40)

	cLast := avg(consistent.Losses[len(consistent.Losses)-10:])
	nLast := avg(naive.Losses[len(naive.Losses)-10:])
	if nLast <= cLast*1.05 {
		t.Fatalf("inconsistent batch policy should hurt: consistent %v, naive %v", cLast, nLast)
	}
}

// TestTPStepMatchesUnsharded verifies the Megatron decomposition: TP=2
// and TP=4 sharded steps produce the same parameters as unsharded
// training (up to float re-association).
func TestTPStepMatchesUnsharded(t *testing.T) {
	tk := newSmallTask()
	cat := MLPCatalog(tk.In, 16, tk.Classes)
	for _, tp := range []int{2, 4} {
		full := InitState(cat, 9)
		shards := ShardState(CloneState(full), tp)

		cur := Cursor{}
		_ = cur
		ids := []int{5, 17, 33, 60, 101, 7, 8, 9}
		x := tk.Features(ids)
		labels := tk.Labels(ids)
		for step := 0; step < 5; step++ {
			// Unsharded reference step.
			h, logits := Forward(full, x)
			_, dl := SoftmaxCE(logits, labels)
			SGDUpdate(full, Backward(full, x, h, dl), 0.1, 0.9)
			// Sharded step.
			TPStep(shards, x, labels, 0.1, 0.9)
		}
		merged := MergeShards(shards)
		if !StateClose(full, merged, 1e-9) {
			t.Fatalf("TP=%d diverges from unsharded", tp)
		}
	}
}

// Cursor is a local alias to avoid importing dataset in this test file.
type Cursor struct{}

func TestShardMergeRoundTrip(t *testing.T) {
	cat := MLPCatalog(8, 12, 4)
	full := InitState(cat, 1)
	for _, tp := range []int{1, 2, 3, 4} {
		merged := MergeShards(ShardState(full, tp))
		if !StateClose(full, merged, 0) {
			t.Fatalf("shard/merge roundtrip failed for tp=%d", tp)
		}
	}
}

func TestEvalLossStable(t *testing.T) {
	tk := newSmallTask()
	tr := NewTrainer(tk, 16, 0.2, 0.9, 32, 1, 7)
	probe := []int{1, 2, 3, 4, 5, 6, 7, 8}
	before := tr.EvalLoss(probe)
	again := tr.EvalLoss(probe)
	if before != again {
		t.Fatal("EvalLoss advanced state")
	}
	tr.Run(50)
	after := tr.EvalLoss(probe)
	if after >= before {
		t.Fatalf("probe loss did not improve: %v -> %v", before, after)
	}
}

func TestInitStateMomentumZero(t *testing.T) {
	cat := MLPCatalog(4, 6, 3)
	st := InitState(cat, 1)
	for name, tns := range st {
		if isOptState(name) {
			for _, v := range tns.Float64s() {
				if v != 0 {
					t.Fatalf("momentum %s not zero-initialized", name)
				}
			}
		}
	}
	if len(st) != 8 { // 4 params + 4 momentum
		t.Fatalf("state has %d tensors", len(st))
	}
}
