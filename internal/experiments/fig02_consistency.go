package experiments

import (
	"fmt"

	"tenplex/internal/train"
)

// Fig2Point is one step of a convergence comparison: the loss of the
// static-GPU run against the dynamic run.
type Fig2Point struct {
	Step    int
	Static  float64
	Dynamic float64
}

// Fig2Result carries the series and the step at which GPUs changed.
type Fig2Result struct {
	EventStep int
	Points    []Fig2Point
}

// fig2Task builds the shared workload: a memorizable noisy
// classification task (over-parameterized, like the paper's GPT-3 on
// MNIST demonstration).
func fig2Task() *train.Task {
	tk := train.NewTask(8, 4, 1024, 11)
	tk.NoiseFrac = 0.25
	return tk
}

// Fig2aDatasetConsistency reproduces Fig. 2a: scaling from 2 to 4 GPUs
// mid-epoch while *restarting* the epoch makes the job re-read data it
// already trained on; the training loss drops unreasonably (overfit)
// compared to the static run. Tenplex's consistent re-partitioning
// (ResumePosition) instead tracks the static curve exactly.
func Fig2aDatasetConsistency() (Fig2Result, Table) {
	const preSteps, postSteps = 24, 16
	run := func(dynamic bool) []float64 {
		tr := train.NewTrainer(fig2Task(), 64, 0.3, 0.9, 64, 2, 7)
		if dynamic {
			tr.DataPolicy = train.RestartEpoch
		}
		tr.Run(preSteps)
		if dynamic {
			tr.Rescale(4)
		}
		tr.Run(postSteps)
		return tr.Losses
	}
	static := run(false)
	dynamic := run(true)

	res := Fig2Result{EventStep: preSteps}
	table := Table{
		ID:      "fig2a",
		Title:   "Impact of inconsistent dataset access on convergence (2 -> 4 GPUs)",
		Columns: []string{"step", "static-loss", "dynamic-loss"},
		Notes: []string{
			"paper: re-reading the first half of the epoch overfits; loss drops unreasonably",
		},
	}
	for i := range static {
		p := Fig2Point{Step: i, Static: static[i], Dynamic: dynamic[i]}
		res.Points = append(res.Points, p)
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(i), fmt.Sprintf("%.4f", p.Static), fmt.Sprintf("%.4f", p.Dynamic),
		})
	}
	return res, table
}

// Fig2bBatchConsistency reproduces Fig. 2b: scaling from 2 to 4 GPUs
// while keeping the *device* batch size constant doubles the global
// batch, and with the naive linear learning-rate scaling rule the run
// diverges from the static curve. Keeping the global batch constant
// (Tenplex's policy) is unaffected.
func Fig2bBatchConsistency() (Fig2Result, Table) {
	const preSteps, postSteps = 10, 40
	lr := 1.05 // near the stability edge, as large-batch LMs are
	run := func(dynamic bool) []float64 {
		tk := train.NewTask(8, 4, 4096, 11)
		tr := train.NewTrainer(tk, 32, lr, 0.9, 32, 2, 7)
		if dynamic {
			tr.BatchPolicy = train.KeepDeviceBatch
			tr.DeviceBatch = 16
		}
		tr.Run(preSteps)
		if dynamic {
			tr.Rescale(4) // device batch kept, LR scaled linearly
		} else {
			tr.Rescale(4) // global batch kept: nothing changes
		}
		tr.Run(postSteps)
		return tr.Losses
	}
	static := run(false)
	dynamic := run(true)

	res := Fig2Result{EventStep: preSteps}
	table := Table{
		ID:      "fig2b",
		Title:   "Impact of inconsistent batch size on convergence (2 -> 4 GPUs)",
		Columns: []string{"step", "static-loss", "dynamic-loss"},
		Notes: []string{
			"paper: constant device batch (growing global batch) diverges after the change",
		},
	}
	for i := range static {
		p := Fig2Point{Step: i, Static: static[i], Dynamic: dynamic[i]}
		res.Points = append(res.Points, p)
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(i), fmt.Sprintf("%.4f", p.Static), fmt.Sprintf("%.4f", p.Dynamic),
		})
	}
	return res, table
}
