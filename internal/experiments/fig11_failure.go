package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
	"tenplex/internal/perfmodel"
)

// Fig11Row is one group of Fig. 11: recovery time after losing a number
// of GPUs, for Tenplex and the checkpoint-rollback baseline.
type Fig11Row struct {
	FailedGPUs  int
	TenplexSec  float64
	BaselineSec float64
	// UsedReplica reports whether a surviving model replica made
	// rollback-free recovery possible.
	UsedReplica bool
}

// lostStepsOnFailure is the paper's average progress lost when rolling
// back to the last checkpoint (§6.4).
const lostStepsOnFailure = 50

// Fig11FailureRecovery reproduces Fig. 11: GPT-3 2.7B with
// (T,P,D) = (4,2,2) on the 16-GPU cluster, failing 4, 8 and 12 GPUs.
// With ≤ 8 failures one data-parallel replica survives, so Tenplex
// rebuilds state from live Tensor Stores without losing a step (the
// paper reports ≈ 5% of the baseline's recovery time); with 12 failures
// no replica survives and both systems roll back to the checkpoint and
// re-run the lost steps — Tenplex retains only a small edge from
// reading the checkpoint in parallel across surviving workers.
func Fig11FailureRecovery() ([]Fig11Row, Table) {
	topo := cluster.OnPrem16()
	m := gptWithOpt("2.7B")
	cfg := parallel.Config{TP: 4, PP: 2, DP: 2}
	from := buildPTC(m, cfg, topo.FirstN(16))
	p := perfmodel.DefaultParams()
	// 240 divides by every DP degree reachable with 4, 8 and 12
	// surviving devices.
	p.GlobalBatch = 240

	var rows []Fig11Row
	table := Table{
		ID:      "fig11",
		Title:   "Failure recovery time (GPT-3 2.7B, (T,P,D)=(4,2,2))",
		Columns: []string{"failed-gpus", "tenplex(s)", "baseline(s)", "via"},
		Notes: []string{
			"paper: with a surviving replica (4/8 failures) Tenplex needs ~5% of the baseline",
			fmt.Sprintf("baseline: restore last checkpoint from storage + re-run %d lost steps", lostStepsOnFailure),
		},
	}
	for _, failed := range []int{4, 8, 12} {
		remaining := 16 - failed
		var dead []cluster.DeviceID
		for i := remaining; i < 16; i++ {
			dead = append(dead, cluster.DeviceID(i))
		}
		degraded := from.WithoutDevices(dead...)
		best, err := perfmodel.Best(m, topo, remaining, p)
		if err != nil {
			panic(err)
		}
		to := buildPTC(m, best.Config, topo.FirstN(remaining))
		iterSec := perfmodel.Throughput(m, best.Config, topo, topo.FirstN(remaining), p).IterSec

		// Does a full replica survive? Equivalent to: every tensor
		// range still has a holder.
		replica := degraded.Validate() == nil

		var tenplex float64
		if replica {
			sec, st := reconfigSeconds(topo, degraded, to, true)
			if st.StorageBytes != 0 {
				panic("experiments: replica recovery read storage")
			}
			tenplex = sec
		} else {
			// Both systems roll back; Tenplex restores in parallel
			// across the surviving workers' storage links.
			tenplex = storageRestoreSeconds(topo, to, false) + lostStepsOnFailure*iterSec
		}
		baseline := storageRestoreSeconds(topo, to, true) + lostStepsOnFailure*iterSec

		rows = append(rows, Fig11Row{
			FailedGPUs: failed, TenplexSec: tenplex, BaselineSec: baseline, UsedReplica: replica,
		})
		via := "replica"
		if !replica {
			via = "checkpoint"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(failed), secs(tenplex), secs(baseline), via,
		})
	}
	return rows, table
}

// storageRestoreSeconds models loading a full checkpoint into the
// destination PTC. central=true funnels all reads through one worker's
// storage link (the baseline's single restore process); otherwise every
// destination worker reads its partitions in parallel.
func storageRestoreSeconds(topo *cluster.Topology, to *core.PTC, central bool) float64 {
	var flows []netsim.Flow
	for _, d := range to.Devices {
		dst := d
		if central {
			dst = to.Devices[0]
		}
		for _, s := range to.Place[d] {
			flows = append(flows, netsim.Flow{
				From:  netsim.StorageEP(),
				To:    netsim.DevEP(dst),
				Bytes: s.NumBytes(to.Tensors[s.Tensor]),
			})
		}
	}
	t := netsim.Simulate(topo, flows).Seconds
	if central {
		// The central process re-distributes partitions to the other
		// workers after loading.
		var scatter []netsim.Flow
		for _, d := range to.Devices {
			if d == to.Devices[0] {
				continue
			}
			for _, s := range to.Place[d] {
				scatter = append(scatter, netsim.Flow{
					From:  netsim.DevEP(to.Devices[0]),
					To:    netsim.DevEP(d),
					Bytes: s.NumBytes(to.Tensors[s.Tensor]),
				})
			}
		}
		t += netsim.Simulate(topo, scatter).Seconds
	}
	return t
}
