package experiments

// Tab1Row is one system of Tab. 1: which consistency and parallelism
// features it supports and its reconfiguration overhead class.
type Tab1Row struct {
	Approach string
	System   string

	DatasetConsistency bool
	HyperParamConsist  bool

	StaticDP, StaticPP, StaticTP    string // "yes" | "no" | "user"
	DynamicDP, DynamicPP, DynamicTP string

	ReconfigOverhead string // "full state" | "GPU state" | "minimal state"
}

// Tab1SystemComparison reproduces Tab. 1, the qualitative comparison of
// proposals for dynamic GPU changes. It is a fixed fact table (the
// paper's own survey); this reproduction implements the bottom row.
func Tab1SystemComparison() ([]Tab1Row, Table) {
	yes, no, user := "yes", "no", "user"
	rows := []Tab1Row{
		{Approach: "model libraries", System: "Alpa", StaticDP: yes, StaticPP: yes, StaticTP: yes,
			DynamicDP: no, DynamicPP: no, DynamicTP: no, ReconfigOverhead: "-"},
		{Approach: "model libraries", System: "Megatron-LM", StaticDP: yes, StaticPP: yes, StaticTP: yes,
			DynamicDP: yes, DynamicPP: no, DynamicTP: no, ReconfigOverhead: "full state"},
		{Approach: "model libraries", System: "DeepSpeed", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: yes, StaticTP: no, DynamicDP: yes, DynamicPP: no, DynamicTP: no,
			ReconfigOverhead: "full state"},
		{Approach: "elastic DL systems", System: "Elastic Horovod", StaticDP: yes,
			DynamicDP: yes, DynamicPP: "-", DynamicTP: "-", StaticPP: "-", StaticTP: "-",
			ReconfigOverhead: "full state"},
		{Approach: "elastic DL systems", System: "Torch Distributed", DatasetConsistency: true,
			StaticDP: yes, StaticPP: yes, StaticTP: user, DynamicDP: yes, DynamicPP: user, DynamicTP: user,
			ReconfigOverhead: "full state"},
		{Approach: "elastic DL systems", System: "Varuna", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: yes, StaticTP: "-", DynamicDP: yes, DynamicPP: yes, DynamicTP: "-",
			ReconfigOverhead: "full state"},
		{Approach: "elastic DL systems", System: "KungFu", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: "-", StaticTP: "-", DynamicDP: yes, DynamicPP: "-", DynamicTP: "-",
			ReconfigOverhead: "full state"},
		{Approach: "virtual devices", System: "VirtualFlow", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: "-", StaticTP: "-", DynamicDP: yes, DynamicPP: "-", DynamicTP: "-",
			ReconfigOverhead: "full state"},
		{Approach: "virtual devices", System: "EasyScale", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: "-", StaticTP: "-", DynamicDP: yes, DynamicPP: "-", DynamicTP: "-",
			ReconfigOverhead: "full state"},
		{Approach: "virtual devices", System: "Singularity", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: yes, StaticTP: yes, DynamicDP: yes, DynamicPP: no, DynamicTP: no,
			ReconfigOverhead: "GPU state"},
		{Approach: "state management", System: "Tenplex", DatasetConsistency: true, HyperParamConsist: true,
			StaticDP: yes, StaticPP: yes, StaticTP: yes, DynamicDP: yes, DynamicPP: yes, DynamicTP: yes,
			ReconfigOverhead: "minimal state"},
	}
	table := Table{
		ID:      "tab1",
		Title:   "Comparison of proposals for dynamic GPU changes in DL jobs",
		Columns: []string{"approach", "system", "dataset", "hyper", "dynDP", "dynPP", "dynTP", "overhead"},
	}
	b := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Approach, r.System, b(r.DatasetConsistency), b(r.HyperParamConsist),
			r.DynamicDP, r.DynamicPP, r.DynamicTP, r.ReconfigOverhead,
		})
	}
	return rows, table
}
