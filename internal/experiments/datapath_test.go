package experiments

import (
	"testing"
	"time"
)

// TestDatapathComparison pins the acceptance bars of the streaming
// refactor: on every workload the streamed pipeline's copy
// amplification stays at or below 1 (local stores retain uploads by
// reference, so each plan byte is copied at most once), the
// materialized reference pays >= 2x, and the streamed pipeline
// allocates well under half the reference's objects and bytes.
func TestDatapathComparison(t *testing.T) {
	rows, table, err := DatapathComparison(20 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(table.Rows) != 4 {
		t.Fatalf("expected 4 rows (2 workloads x 2 pipelines), got %d", len(rows))
	}
	byKey := map[string]DatapathRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Pipeline] = r
		if r.PlanBytes == 0 {
			t.Fatalf("%s/%s moved no bytes", r.Workload, r.Pipeline)
		}
	}
	for _, w := range []string{"tp-reshard", "distributed-dp-scaleout"} {
		s, okS := byKey[w+"/streamed"]
		m, okM := byKey[w+"/materialized"]
		if !okS || !okM {
			t.Fatalf("missing pipeline rows for %s", w)
		}
		if s.CopyAmp > 1.01 {
			t.Errorf("%s: streamed copy amplification %.3f > 1", w, s.CopyAmp)
		}
		if m.CopyAmp < 1.99 {
			t.Errorf("%s: materialized copy amplification %.3f < 2", w, m.CopyAmp)
		}
		if s.AllocsPerOp*2 >= m.AllocsPerOp {
			t.Errorf("%s: streamed allocs/op %d not < half of materialized %d",
				w, s.AllocsPerOp, m.AllocsPerOp)
		}
		if s.AllocBytes*3/2 >= m.AllocBytes {
			t.Errorf("%s: streamed alloc bytes %d not well under materialized %d",
				w, s.AllocBytes, m.AllocBytes)
		}
		if s.PlanBytes != m.PlanBytes {
			t.Errorf("%s: plan bytes differ between pipelines: %d vs %d", w, s.PlanBytes, m.PlanBytes)
		}
	}
}
