package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/perfmodel"
)

// Fig13Row is one bar of Fig. 13: steady-state training throughput of
// ResNet-50 on 2 GPUs for one system.
type Fig13Row struct {
	System     string
	SamplesSec float64
}

// Modeling constants for Fig. 13, documented in EXPERIMENTS.md.
const (
	// resnetDevFLOPS is the effective per-device compute rate for
	// ResNet-50 (convolutions reach far lower utilization than
	// transformer GEMMs on tensor cores).
	resnetDevFLOPS = 2.75e12
	// horovodElasticOverhead: Elastic Horovod blocks training for a
	// state broadcast/commit every user-defined number of steps (§6.5);
	// amortized ≈ 4.5% of step time.
	horovodElasticOverhead = 0.045
	// tenplexOverhead: Tenplex streams dataset partitions and writes
	// checkpoints asynchronously; residual interference ≈ 1.5%.
	tenplexOverhead = 0.015
)

// Fig13HorovodThroughput reproduces Fig. 13: ResNet-50 / ImageNet-shape
// training on 2 GPUs. The paper measures Horovod 437, Horovod-Elastic
// 417 and Tenplex 429 samples/s — i.e. Tenplex matches plain Horovod
// despite supporting dynamic reconfiguration, while Horovod-Elastic
// pays for blocking state synchronization.
func Fig13HorovodThroughput() ([]Fig13Row, Table) {
	topo := cluster.OnPrem16()
	p := perfmodel.DefaultParams()
	p.DevFLOPS = resnetDevFLOPS
	p.GlobalBatch = 64
	m := model.ResNet50()
	est := perfmodel.Throughput(m, parallel.Config{TP: 1, PP: 1, DP: 2}, topo, topo.FirstN(2), p)
	if !est.Feasible {
		panic("experiments: fig13 base config infeasible: " + est.Reason)
	}
	base := est.SamplesSec

	rows := []Fig13Row{
		{System: "Horovod", SamplesSec: base},
		{System: "Horovod Elastic", SamplesSec: base * (1 - horovodElasticOverhead)},
		{System: "Tenplex", SamplesSec: base * (1 - tenplexOverhead)},
	}
	table := Table{
		ID:      "fig13",
		Title:   "Training throughput vs Horovod (ResNet-50, 2 GPUs)",
		Columns: []string{"system", "samples/s"},
		Notes: []string{
			"paper: Horovod 437, Horovod-Elastic 417, Tenplex 429 samples/s",
			fmt.Sprintf("overhead model: elastic sync %.1f%%, tenplex streaming %.1f%%",
				horovodElasticOverhead*100, tenplexOverhead*100),
		},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{r.System, fmt.Sprintf("%.0f", r.SamplesSec)})
	}
	return rows, table
}
