package experiments

import "testing"

// TestDCScaleSmoke runs the smallest dcscale cell end to end — the CI
// gate for the datacenter-scale path. The scheduling outcome is
// deterministic (ModeSim), so the cell's structural numbers are pinned
// exactly; latency percentiles are machine-dependent and only checked
// for presence and ordering.
func TestDCScaleSmoke(t *testing.T) {
	row := RunDCScale(512, 50)
	if row.Completed != 50 {
		t.Fatalf("completed %d of 50 jobs", row.Completed)
	}
	if row.Events <= 0 || row.Plans <= 0 {
		t.Fatalf("degenerate run: %d events, %d plans", row.Events, row.Plans)
	}
	if row.MakespanMin <= 0 {
		t.Fatalf("makespan %.2f min", row.MakespanMin)
	}
	if !(row.P50us > 0 && row.P50us <= row.P90us && row.P90us <= row.P99us) {
		t.Fatalf("latency percentiles not ordered: p50=%.0f p90=%.0f p99=%.0f",
			row.P50us, row.P90us, row.P99us)
	}
}

// TestDCScaleFull sweeps every cell including 2048 devices x 200 jobs
// and asserts the headline: p50 decision latency at 2048 devices stays
// within 3x of the 512-device p50 (same 200-job trace). Skipped under
// -short; CI runs the smoke above instead.
func TestDCScaleFull(t *testing.T) {
	if testing.Short() {
		t.Skip("dcscale full sweep skipped in -short mode")
	}
	rows, _ := CompareDCScale()
	if len(rows) != len(DCScaleCells()) {
		t.Fatalf("%d rows for %d cells", len(rows), len(DCScaleCells()))
	}
	for _, r := range rows {
		if r.Completed != r.Jobs {
			t.Fatalf("%dx%d: completed %d of %d jobs", r.Devices, r.Jobs, r.Completed, r.Jobs)
		}
	}
	small, big := rows[1], rows[3] // 512x200 vs 2048x200
	const factor, slackUs = 3.0, 250.0
	if big.P50us > factor*small.P50us+slackUs {
		t.Fatalf("per-decision p50 not flat: %.0fus at 2048 devices vs %.0fus at 512 (limit %.0fx + %.0fus)",
			big.P50us, small.P50us, factor, slackUs)
	}
}

func TestPercentileNs(t *testing.T) {
	if got := PercentileNs(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	s := []int64{40, 10, 30, 20}
	if got := PercentileNs(s, 0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := PercentileNs(s, 1); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got := PercentileNs(s, 0.5); got != 30 {
		t.Fatalf("p50 = %v, want 30 (nearest rank)", got)
	}
	if s[0] != 40 {
		t.Fatal("PercentileNs must not mutate its input")
	}
}
