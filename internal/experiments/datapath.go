package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/transform"
)

// The datapath comparison measures the State Transformer's two
// pipelines on identical workloads moving real bytes through per-device
// Tensor Stores: "streamed" is the production zero-copy path (every
// plan range fetched directly into its final offset in a single
// destination allocation), "materialized" is the retained
// fetch-then-assemble reference. Copy amplification — bytes physically
// copied per plan byte — is the headline metric: the streamed pipeline
// holds it at <= 1, the reference pays >= 2.

// DatapathRow is one (workload, pipeline) measurement.
type DatapathRow struct {
	Workload    string  `json:"workload"`
	Pipeline    string  `json:"pipeline"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSecond float64 `json:"mb_per_s"`
	PlanBytes   int64   `json:"plan_bytes"`
	BytesCopied int64   `json:"bytes_copied"`
	CopyAmp     float64 `json:"copy_amplification"`
	AllocBytes  int64   `json:"alloc_bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// datapathWorkload is a reconfiguration executed with real state.
type datapathWorkload struct {
	name  string
	m     *model.Model
	from  *core.PTC
	to    *core.PTC
	topo  *cluster.Topology // non-nil: execute per-worker (distributed)
	nDevs int
	plan  *core.Plan
}

func datapathWorkloads() []datapathWorkload {
	m := model.GPTCustom(4, 128, 4, 512, 32) // ~1.1 MB of real state
	seqAlloc := func(n int) cluster.Allocation {
		out := make(cluster.Allocation, n)
		for i := range out {
			out[i] = cluster.DeviceID(i)
		}
		return out
	}
	tpFrom := buildPTC(m, parallel.Config{TP: 2, PP: 1, DP: 1}, seqAlloc(2))
	tpTo := buildPTC(m, parallel.Config{TP: 4, PP: 1, DP: 1}, seqAlloc(4))
	tpPlan, err := core.GeneratePlan(tpFrom, tpTo, core.PlanOptions{})
	if err != nil {
		panic(fmt.Sprintf("experiments: datapath plan: %v", err))
	}
	topo := cluster.OnPrem16()
	dFrom := buildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 1}, seqAlloc(4))
	dTo := buildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 2}, seqAlloc(8))
	dPlan, err := core.GeneratePlan(dFrom, dTo, core.PlanOptions{Topo: topo})
	if err != nil {
		panic(fmt.Sprintf("experiments: datapath plan: %v", err))
	}
	return []datapathWorkload{
		{name: "tp-reshard", m: m, from: tpFrom, to: tpTo, nDevs: 4, plan: tpPlan},
		{name: "distributed-dp-scaleout", m: m, from: dFrom, to: dTo, topo: topo, nDevs: 8, plan: dPlan},
	}
}

// measureDatapath executes one workload through one pipeline until the
// budget elapses (at least minIters), tracking wall time and the
// allocation counters of the timed Apply only (store seeding is
// excluded, mirroring the Go benchmark's StopTimer discipline).
func measureDatapath(w datapathWorkload, p transform.Pipeline, name string,
	budget time.Duration, minIters int) (DatapathRow, error) {
	golden := map[core.TensorID]*tensor.Tensor{}
	seed := 1.0
	for id, meta := range w.from.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		full.FillSeq(seed*1e4, 1)
		seed++
		golden[id] = full
	}
	var (
		iters      int
		elapsed    time.Duration
		allocs     uint64
		allocBytes uint64
		last       transform.Stats
		m1, m2     runtime.MemStats
	)
	for iters < minIters || elapsed < budget {
		stores := map[cluster.DeviceID]store.Access{}
		for d := 0; d < w.nDevs; d++ {
			stores[cluster.DeviceID(d)] = store.Local{FS: store.NewMemFS()}
		}
		if err := transform.LoadPTC("datapath", w.from, stores, golden); err != nil {
			return DatapathRow{}, err
		}
		runtime.ReadMemStats(&m1)
		t0 := time.Now()
		var st transform.Stats
		var err error
		if w.topo != nil {
			st, err = transform.ApplyDistributedPipeline("datapath", w.plan, w.topo, stores, nil, p)
		} else {
			tr := &transform.Transformer{Job: "datapath", Stores: stores, Pipeline: p}
			st, err = tr.Apply(w.plan)
		}
		elapsed += time.Since(t0)
		runtime.ReadMemStats(&m2)
		if err != nil {
			return DatapathRow{}, fmt.Errorf("datapath %s/%s: %w", w.name, name, err)
		}
		allocs += m2.Mallocs - m1.Mallocs
		allocBytes += m2.TotalAlloc - m1.TotalAlloc
		last = st
		iters++
	}
	nsPerOp := elapsed.Nanoseconds() / int64(iters)
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(w.m.ParamBytes()) / (float64(nsPerOp) / 1e9) / 1e6
	}
	return DatapathRow{
		Workload:    w.name,
		Pipeline:    name,
		Iters:       iters,
		NsPerOp:     nsPerOp,
		MBPerSecond: mbps,
		PlanBytes:   last.PlanBytes(),
		BytesCopied: last.BytesCopied,
		CopyAmp:     last.CopyAmplification(),
		AllocBytes:  int64(allocBytes) / int64(iters),
		AllocsPerOp: int64(allocs) / int64(iters),
	}, nil
}

// DatapathComparison runs both pipelines over every datapath workload.
func DatapathComparison(budget time.Duration) ([]DatapathRow, Table, error) {
	var rows []DatapathRow
	for _, w := range datapathWorkloads() {
		for _, pl := range []struct {
			p    transform.Pipeline
			name string
		}{{transform.Streamed, "streamed"}, {transform.Materialized, "materialized"}} {
			row, err := measureDatapath(w, pl.p, pl.name, budget, 2)
			if err != nil {
				return nil, Table{}, err
			}
			rows = append(rows, row)
		}
	}
	t := Table{
		ID:    "datapath",
		Title: "State Transformer data path: streamed (zero-copy) vs materialized reference",
		Columns: []string{"workload", "pipeline", "MB/s", "plan-MB", "copied-MB",
			"copy-amp", "alloc-MB/op", "allocs/op"},
		Notes: []string{
			"copy-amp = bytes physically copied / plan bytes; 1.0 means every byte moved once",
			"both pipelines are property-tested byte-identical (transform.TestApplyEquivalenceRandomized)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Pipeline,
			fmt.Sprintf("%.0f", r.MBPerSecond),
			fmt.Sprintf("%.2f", float64(r.PlanBytes)/1e6),
			fmt.Sprintf("%.2f", float64(r.BytesCopied)/1e6),
			fmt.Sprintf("%.2f", r.CopyAmp),
			fmt.Sprintf("%.2f", float64(r.AllocBytes)/1e6),
			fmt.Sprintf("%d", r.AllocsPerOp),
		})
	}
	return rows, t, nil
}
