package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/transform"
)

// The datapath comparison measures the State Transformer's two
// pipelines on identical workloads moving real bytes through per-device
// Tensor Stores: "streamed" is the production zero-copy path (every
// plan range fetched directly into its final offset in a single
// destination allocation), "materialized" is the retained
// fetch-then-assemble reference. Copy amplification — bytes physically
// copied per plan byte — is the headline metric: the streamed pipeline
// holds it at <= 1, the reference pays >= 2.

// DatapathRow is one (workload, pipeline) measurement.
type DatapathRow struct {
	Workload    string  `json:"workload"`
	Pipeline    string  `json:"pipeline"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSecond float64 `json:"mb_per_s"`
	PlanBytes   int64   `json:"plan_bytes"`
	BytesCopied int64   `json:"bytes_copied"`
	CopyAmp     float64 `json:"copy_amplification"`
	AllocBytes  int64   `json:"alloc_bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// datapathWorkload is a reconfiguration executed with real state.
type datapathWorkload struct {
	name  string
	m     *model.Model
	from  *core.PTC
	to    *core.PTC
	topo  *cluster.Topology // non-nil: execute per-worker (distributed)
	nDevs int
	plan  *core.Plan
}

func datapathWorkloads() []datapathWorkload {
	m := model.GPTCustom(4, 128, 4, 512, 32) // ~1.1 MB of real state
	seqAlloc := func(n int) cluster.Allocation {
		out := make(cluster.Allocation, n)
		for i := range out {
			out[i] = cluster.DeviceID(i)
		}
		return out
	}
	tpFrom := buildPTC(m, parallel.Config{TP: 2, PP: 1, DP: 1}, seqAlloc(2))
	tpTo := buildPTC(m, parallel.Config{TP: 4, PP: 1, DP: 1}, seqAlloc(4))
	tpPlan, err := core.GeneratePlan(tpFrom, tpTo, core.PlanOptions{})
	if err != nil {
		panic(fmt.Sprintf("experiments: datapath plan: %v", err))
	}
	topo := cluster.OnPrem16()
	dFrom := buildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 1}, seqAlloc(4))
	dTo := buildPTC(m, parallel.Config{TP: 2, PP: 2, DP: 2}, seqAlloc(8))
	dPlan, err := core.GeneratePlan(dFrom, dTo, core.PlanOptions{Topo: topo})
	if err != nil {
		panic(fmt.Sprintf("experiments: datapath plan: %v", err))
	}
	return []datapathWorkload{
		{name: "tp-reshard", m: m, from: tpFrom, to: tpTo, nDevs: 4, plan: tpPlan},
		{name: "distributed-dp-scaleout", m: m, from: dFrom, to: dTo, topo: topo, nDevs: 8, plan: dPlan},
	}
}

// measureDatapath executes one workload through one pipeline until the
// budget elapses (at least minIters), tracking wall time and the
// allocation counters of the timed Apply only (store seeding is
// excluded, mirroring the Go benchmark's StopTimer discipline).
func measureDatapath(w datapathWorkload, p transform.Pipeline, name string,
	budget time.Duration, minIters int) (DatapathRow, error) {
	golden := map[core.TensorID]*tensor.Tensor{}
	seed := 1.0
	for id, meta := range w.from.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		full.FillSeq(seed*1e4, 1)
		seed++
		golden[id] = full
	}
	var (
		iters      int
		elapsed    time.Duration
		allocs     uint64
		allocBytes uint64
		last       transform.Stats
		m1, m2     runtime.MemStats
	)
	for iters < minIters || elapsed < budget {
		stores := map[cluster.DeviceID]store.Access{}
		for d := 0; d < w.nDevs; d++ {
			stores[cluster.DeviceID(d)] = store.Local{FS: store.NewMemFS()}
		}
		if err := transform.LoadPTC("datapath", w.from, stores, golden); err != nil {
			return DatapathRow{}, err
		}
		runtime.ReadMemStats(&m1)
		t0 := time.Now()
		var st transform.Stats
		var err error
		if w.topo != nil {
			st, err = transform.ApplyDistributedPipeline("datapath", w.plan, w.topo, stores, nil, p)
		} else {
			tr := &transform.Transformer{Job: "datapath", Stores: stores, Pipeline: p}
			st, err = tr.Apply(w.plan)
		}
		elapsed += time.Since(t0)
		runtime.ReadMemStats(&m2)
		if err != nil {
			return DatapathRow{}, fmt.Errorf("datapath %s/%s: %w", w.name, name, err)
		}
		allocs += m2.Mallocs - m1.Mallocs
		allocBytes += m2.TotalAlloc - m1.TotalAlloc
		last = st
		iters++
	}
	nsPerOp := elapsed.Nanoseconds() / int64(iters)
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(w.m.ParamBytes()) / (float64(nsPerOp) / 1e9) / 1e6
	}
	return DatapathRow{
		Workload:    w.name,
		Pipeline:    name,
		Iters:       iters,
		NsPerOp:     nsPerOp,
		MBPerSecond: mbps,
		PlanBytes:   last.PlanBytes(),
		BytesCopied: last.BytesCopied,
		CopyAmp:     last.CopyAmplification(),
		AllocBytes:  int64(allocBytes) / int64(iters),
		AllocsPerOp: int64(allocs) / int64(iters),
	}, nil
}

// DatapathREST measures the wire datapath against real tenplex-store
// servers over loopback HTTP, comparing per-range QueryInto fetches
// ("per-range", batching disabled) against the multi-range batch
// protocol ("batched"). The workload is a TP-merge migration — four
// tensor-parallel shards on devices 0..3 reassembled into full replicas
// on devices 4..7 — so every destination tensor is a merge of four
// remote range-reads: the per-range path pays one round trip per range,
// the batch path one request per (destination, source) store pair. The
// servers and clients live for the whole measurement — connection reuse
// across requests is part of what the numbers claim — and each
// iteration wipes and reloads the job's state tree in untimed setup.
func DatapathREST(budget time.Duration) ([]DatapathRow, error) {
	// Finer-grained than the local workloads (more layers, smaller
	// hidden): per-request overhead is what the batch protocol removes,
	// so the wire comparison uses a realistic many-small-tensors state.
	m := model.GPTCustom(12, 48, 4, 192, 32)
	srcAlloc := cluster.Allocation{0, 1, 2, 3}
	dstAlloc := cluster.Allocation{4, 5, 6, 7}
	topo := cluster.OnPrem16()
	from := buildPTC(m, parallel.Config{TP: 4, PP: 1, DP: 1}, srcAlloc)
	to := buildPTC(m, parallel.Config{TP: 1, PP: 1, DP: 4}, dstAlloc)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		return nil, fmt.Errorf("experiments: datapath: rest plan: %w", err)
	}
	w := datapathWorkload{name: "rest-tp-migrate", m: m, from: from, to: to,
		topo: topo, nDevs: 8, plan: plan}

	stores := map[cluster.DeviceID]store.Access{}
	clients := make([]*store.Client, 0, w.nDevs)
	for d := 0; d < w.nDevs; d++ {
		srv := store.NewServer(store.NewMemFS())
		addr, closeSrv, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer closeSrv() //nolint:errcheck // teardown
		c := &store.Client{Base: "http://" + addr}
		stores[cluster.DeviceID(d)] = c
		clients = append(clients, c)
	}
	wipe := func() {
		for _, c := range clients {
			c.Delete("/job/datapath") //nolint:errcheck // absent on the first iteration
		}
	}

	var rows []DatapathRow
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"per-range", true}, {"batched", false}} {
		row, err := measureDatapathREST(w, stores, wipe, mode.noBatch, mode.name, budget, 5)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureDatapathREST is measureDatapath against long-lived remote
// stores: state reloads through the wire in untimed setup, and the
// timed region is exactly the distributed apply. Unlike the in-process
// measurements it reports the MEDIAN per-op time rather than the mean:
// wire runs ride the kernel scheduler and the allocator hard enough
// that a single stalled iteration (GC mark on one core, a dropped
// segment) would otherwise swamp the whole sample, and the batched
// headline gate needs a statistic that survives one outlier.
func measureDatapathREST(w datapathWorkload, stores map[cluster.DeviceID]store.Access,
	wipe func(), noBatch bool, name string, budget time.Duration, minIters int) (DatapathRow, error) {
	golden := map[core.TensorID]*tensor.Tensor{}
	seed := 1.0
	for id, meta := range w.from.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		full.FillSeq(seed*1e4, 1)
		seed++
		golden[id] = full
	}
	var (
		iters      int
		elapsed    time.Duration
		samples    []time.Duration
		allocs     uint64
		allocBytes uint64
		last       transform.Stats
		m1, m2     runtime.MemStats
	)
	for iters < minIters || elapsed < budget {
		wipe()
		if err := transform.LoadPTC("datapath", w.from, stores, golden); err != nil {
			return DatapathRow{}, err
		}
		runtime.ReadMemStats(&m1)
		t0 := time.Now()
		st, err := transform.ApplyDistributedOpts("datapath", w.plan, w.topo, stores, nil,
			transform.DistOptions{Pipeline: transform.Streamed, NoBatch: noBatch})
		d := time.Since(t0)
		elapsed += d
		samples = append(samples, d)
		runtime.ReadMemStats(&m2)
		if err != nil {
			return DatapathRow{}, fmt.Errorf("datapath %s/%s: %w", w.name, name, err)
		}
		allocs += m2.Mallocs - m1.Mallocs
		allocBytes += m2.TotalAlloc - m1.TotalAlloc
		last = st
		iters++
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	nsPerOp := samples[len(samples)/2].Nanoseconds()
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(w.m.ParamBytes()) / (float64(nsPerOp) / 1e9) / 1e6
	}
	return DatapathRow{
		Workload:    w.name,
		Pipeline:    name,
		Iters:       iters,
		NsPerOp:     nsPerOp,
		MBPerSecond: mbps,
		PlanBytes:   last.PlanBytes(),
		BytesCopied: last.BytesCopied,
		CopyAmp:     last.CopyAmplification(),
		AllocBytes:  int64(allocBytes) / int64(iters),
		AllocsPerOp: int64(allocs) / int64(iters),
	}, nil
}

// DatapathComparison runs both pipelines over every datapath workload.
func DatapathComparison(budget time.Duration) ([]DatapathRow, Table, error) {
	var rows []DatapathRow
	for _, w := range datapathWorkloads() {
		for _, pl := range []struct {
			p    transform.Pipeline
			name string
		}{{transform.Streamed, "streamed"}, {transform.Materialized, "materialized"}} {
			row, err := measureDatapath(w, pl.p, pl.name, budget, 2)
			if err != nil {
				return nil, Table{}, err
			}
			rows = append(rows, row)
		}
	}
	t := Table{
		ID:    "datapath",
		Title: "State Transformer data path: streamed (zero-copy) vs materialized reference",
		Columns: []string{"workload", "pipeline", "MB/s", "plan-MB", "copied-MB",
			"copy-amp", "alloc-MB/op", "allocs/op"},
		Notes: []string{
			"copy-amp = bytes physically copied / plan bytes; 1.0 means every byte moved once",
			"both pipelines are property-tested byte-identical (transform.TestApplyEquivalenceRandomized)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Pipeline,
			fmt.Sprintf("%.0f", r.MBPerSecond),
			fmt.Sprintf("%.2f", float64(r.PlanBytes)/1e6),
			fmt.Sprintf("%.2f", float64(r.BytesCopied)/1e6),
			fmt.Sprintf("%.2f", r.CopyAmp),
			fmt.Sprintf("%.2f", float64(r.AllocBytes)/1e6),
			fmt.Sprintf("%d", r.AllocsPerOp),
		})
	}
	return rows, t, nil
}
