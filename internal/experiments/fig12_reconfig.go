package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

// Fig12Row is one group of Fig. 12: reconfiguration time for one
// direction of scaling, per system.
type Fig12Row struct {
	Direction   string // "8 to 16" or "16 to 8"
	TenplexSec  float64
	DeepSpeed   float64
	Singularity float64
}

// Modeling constants for the Fig. 12 baselines, documented in
// EXPERIMENTS.md:
const (
	// deepSpeedDetectSecOut: DeepSpeed has no explicit reconfiguration
	// notification; a graceful scale-out still pays the elastic-agent
	// restart round.
	deepSpeedDetectSecOut = 30.0
	// deepSpeedDetectSecIn: scale-in goes through Torch Distributed
	// Elastic's *failure* detection, which must time out first (§6.5:
	// "DeepSpeed relies on TDE's failure mechanism, which increases
	// time").
	deepSpeedDetectSecIn = 60.0
	// singularityGPUStateFactor: Singularity migrates the full GPU
	// device state — training state plus activations, allocator pools
	// and CUDA runtime buffers — modeled as 1.6× the model state.
	singularityGPUStateFactor = 1.6
	// singularityCheckpointSec: CUDA-level device checkpoint/restore
	// fixed cost at both ends.
	singularityCheckpointSec = 30.0
	// tenplexRestartSec: Tenplex terminates the training program and
	// re-invokes it after transforming state (§5.4); the constant
	// covers process relaunch and NCCL/Megatron re-initialization.
	tenplexRestartSec = 20.0
)

// Fig12ReconfigOverhead reproduces Fig. 12: reconfiguring GPT-3 XL
// between 8 and 16 GPUs on the on-prem cluster, comparing Tenplex
// against DeepSpeed (full state through storage after failure-detection)
// and Singularity (full GPU state migration; the paper itself quotes
// numbers from the Singularity paper on similar hardware).
//
// Paper: 8->16, Tenplex needs 24% less time than DeepSpeed and 10% less
// than Singularity; 16->8, 64% less than DeepSpeed and 43% less than
// Singularity.
func Fig12ReconfigOverhead() ([]Fig12Row, Table) {
	topo := cluster.OnPrem16()
	m := gptWithOpt("1.3B")
	cfg16 := parallel.Config{TP: 2, PP: 4, DP: 2} // the paper's best 16-GPU config
	cfg8 := parallel.Config{TP: 2, PP: 4, DP: 1}

	ptc16 := buildPTC(m, cfg16, topo.FirstN(16))
	ptc8 := buildPTC(m, cfg8, topo.FirstN(8))

	var rows []Fig12Row
	// Scale out: 8 -> 16.
	tenplexOut, _ := reconfigSeconds(topo, ptc8, ptc16, false)
	tenplexOut += tenplexRestartSec
	dsOut := deepSpeedDetectSecOut + fullStateViaStorageSeconds(topo, ptc8, ptc16)
	sgOut := singularityCheckpointSec + fullGPUStateSeconds(topo, ptc8, ptc16, singularityGPUStateFactor)
	rows = append(rows, Fig12Row{Direction: "8 to 16", TenplexSec: tenplexOut, DeepSpeed: dsOut, Singularity: sgOut})

	// Scale in: 16 -> 8.
	tenplexIn, _ := reconfigSeconds(topo, ptc16, ptc8, false)
	tenplexIn += tenplexRestartSec
	dsIn := deepSpeedDetectSecIn + fullStateViaStorageSeconds(topo, ptc16, ptc8)
	sgIn := singularityCheckpointSec + fullGPUStateSeconds(topo, ptc16, ptc8, singularityGPUStateFactor)
	rows = append(rows, Fig12Row{Direction: "16 to 8", TenplexSec: tenplexIn, DeepSpeed: dsIn, Singularity: sgIn})

	table := Table{
		ID:      "fig12",
		Title:   "Reconfiguration time, GPT-3 XL (Tenplex vs DeepSpeed vs Singularity)",
		Columns: []string{"devices", "tenplex(s)", "deepspeed(s)", "singularity(s)"},
		Notes: []string{
			"paper: 8->16 Tenplex -24% vs DeepSpeed, -10% vs Singularity",
			"paper: 16->8 Tenplex -64% vs DeepSpeed, -43% vs Singularity",
			fmt.Sprintf("baseline model: DeepSpeed = %.0f/%.0fs detect (out/in) + full state via storage; Singularity = %.0fs ckpt/restore + %.1fx GPU state p2p; Tenplex adds %.0fs restart",
				deepSpeedDetectSecOut, deepSpeedDetectSecIn, singularityCheckpointSec, singularityGPUStateFactor, tenplexRestartSec),
		},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Direction, secs(r.TenplexSec), secs(r.DeepSpeed), secs(r.Singularity),
		})
	}
	return rows, table
}
