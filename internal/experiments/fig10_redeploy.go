package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

// Fig10Row is one bar pair of Fig. 10: redeploying a job from one set
// of 8 GPUs to a different set of 8 GPUs.
type Fig10Row struct {
	ModelSize   string
	TenplexSec  float64
	CentralSec  float64
	CentralOver float64 // Central / Tenplex
}

// Fig10Redeployment reproduces Fig. 10: redeployment time of a DL job
// (GPT-3 1.3B / 2.7B / 6.7B with optimizer state, (T,P,D) = (4,2,1))
// from workers 0–1 to workers 2–3 of the on-premise cluster, comparing
// Tenplex's distributed state management against Tenplex-Central.
// The paper reports Central taking 1.9–2.1× longer.
func Fig10Redeployment() ([]Fig10Row, Table) {
	topo := cluster.OnPrem16()
	cfg := parallel.Config{TP: 4, PP: 2, DP: 1}
	fromAlloc := topo.DevicesOn(0, 1)
	toAlloc := topo.DevicesOn(2, 3)

	var rows []Fig10Row
	table := Table{
		ID:      "fig10",
		Title:   "Redeployment time of DL job (8 GPUs -> 8 fresh GPUs)",
		Columns: []string{"model", "tenplex(s)", "central(s)", "central/tenplex"},
		Notes: []string{
			"paper: Central 2.1x (1.3B), 1.9x (2.7B), 2.0x (6.7B) slower than Tenplex",
			"payload: fp32 parameters + Adam moments (12 B/param)",
		},
	}
	for _, size := range []string{"1.3B", "2.7B", "6.7B"} {
		m := gptWithOpt(size)
		from := buildPTC(m, cfg, fromAlloc)
		to := buildPTC(m, cfg, toAlloc)
		tenplex, _ := reconfigSeconds(topo, from, to, false)
		central := centralReconfigSeconds(topo, from, to, fromAlloc[0])
		r := Fig10Row{
			ModelSize:   size,
			TenplexSec:  tenplex,
			CentralSec:  central,
			CentralOver: central / tenplex,
		}
		rows = append(rows, r)
		table.Rows = append(table.Rows, []string{
			size, secs(r.TenplexSec), secs(r.CentralSec), fmt.Sprintf("%.1fx", r.CentralOver),
		})
	}
	return rows, table
}
