package experiments

import (
	"fmt"

	"tenplex/internal/coordinator"
)

// The policy-comparison experiment runs the shared 32-device/12-job
// multi-job scenario under each coordinator scheduling policy and
// contrasts cluster-level outcomes: the same arrival trace, models and
// injected failure, with only the admission/preemption/expansion
// decisions changing. It extends the paper's single-policy scenario
// (§2) the same way MultiJobCluster does, and is the evidence base for
// choosing a policy per workload.

// PolicyRow is one policy's aggregate outcome on the shared scenario.
type PolicyRow struct {
	Policy          string  `json:"policy"`
	MakespanMin     float64 `json:"makespan_min"`
	MeanUtilization float64 `json:"mean_cluster_utilization"`
	Preemptions     int     `json:"preemptions"`
	ReconfigSec     float64 `json:"aggregate_reconfig_seconds"`
	Completed       int     `json:"jobs_completed"`
	Rejected        int     `json:"jobs_rejected"`
	MeanQueueMin    float64 `json:"mean_queue_min"`
}

// PolicyPriorities assigns the deterministic priority classes the
// priority policy uses on generated workloads: jobs rotate through
// classes 0 (batch), 1 (standard) and 2 (production) in submission
// order. FIFO and DRF ignore the field, so the assignment is safe to
// apply unconditionally.
func PolicyPriorities(specs []coordinator.JobSpec) []coordinator.JobSpec {
	out := append([]coordinator.JobSpec(nil), specs...)
	for i := range out {
		out[i].Priority = i % 3
	}
	return out
}

// ComparePolicies runs the multi-job scenario once per policy and
// returns one row per policy, FIFO first.
func ComparePolicies(devices, jobs int, seed int64) ([]PolicyRow, error) {
	policies := []coordinator.Policy{coordinator.FIFO{}, coordinator.DRF{}, coordinator.PriorityGang{}}
	var rows []PolicyRow
	for _, p := range policies {
		topo, specs, failures := MultiJobScenario(devices, jobs, seed)
		specs = PolicyPriorities(specs)
		res, err := coordinator.Run(topo, specs, failures, coordinator.Options{Policy: p})
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", p.Name(), err)
		}
		row := PolicyRow{
			Policy:          res.Policy,
			MakespanMin:     res.MakespanMin,
			MeanUtilization: res.MeanUtilization,
			Preemptions:     res.Preemptions,
			ReconfigSec:     res.ReconfigSecTotal,
		}
		// Classify jobs from the timeline, not from AdmitMin sentinels:
		// a job admitted at minute 0 and later lost would otherwise be
		// indistinguishable from a never-admitted one.
		admittedJobs := map[string]bool{}
		for _, e := range res.Timeline {
			switch e.Kind {
			case coordinator.EvAdmit:
				admittedJobs[e.Job] = true
			case coordinator.EvReject:
				row.Rejected++
			}
		}
		queued, admitted := 0.0, 0
		for _, js := range res.Jobs {
			if js.Completed {
				row.Completed++
			}
			if admittedJobs[js.Name] {
				queued += js.AdmitMin - js.ArrivalMin
				admitted++
			}
		}
		if admitted > 0 {
			row.MeanQueueMin = queued / float64(admitted)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PolicyComparison tabulates ComparePolicies on the shared
// 32-device/12-job scenario.
func PolicyComparison() ([]PolicyRow, Table, error) {
	rows, err := ComparePolicies(32, 12, MultiJobSeed)
	if err != nil {
		return nil, Table{}, err
	}
	tab := Table{
		ID:    "policies",
		Title: "Scheduling policies on the multi-job cluster (32 devices, 12 jobs)",
		Columns: []string{"policy", "makespan-min", "mean-util", "preemptions",
			"reconfig-s", "completed", "rejected", "mean-queue-min"},
	}
	for _, r := range rows {
		tab.Rows = append(tab.Rows, []string{
			r.Policy,
			fmt.Sprintf("%.1f", r.MakespanMin),
			fmt.Sprintf("%.2f", r.MeanUtilization),
			fmt.Sprintf("%d", r.Preemptions),
			fmt.Sprintf("%.3f", r.ReconfigSec),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%.1f", r.MeanQueueMin),
		})
	}
	tab.Notes = append(tab.Notes,
		"same arrival trace, models and injected failure per row; only the Policy changes",
		"priority classes rotate 0/1/2 in submission order (PriorityGang admits gangs whole)",
		"fifo row matches the \"multijob\" experiment exactly (byte-identical traces)",
	)
	return rows, tab, nil
}
