package experiments

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/coordinator"
	"tenplex/internal/model"
	"tenplex/internal/sched"
)

// The dcscale experiment measures what the ROADMAP's datacenter-scale
// item asks for: does the control plane's per-decision latency stay
// flat as the cluster grows from 512 to 2048 devices, or does it grow
// linearly because every decision rescans the whole cluster? The
// scenarios run the full ModeSim coordinator — placement-aware, on the
// hierarchical Datacenter topology (NVLink island → node → rack → pod)
// — with 50–200 competing elastic jobs and spread fail-stop failures,
// recording the wall-clock latency of every decision-plane event
// handler (Options.RecordDecisions). Scheduling outcomes (events,
// completions, plans, makespan) are deterministic per cell; latency
// percentiles are machine-dependent and gated only relatively (the
// flatness ratio), never absolutely.

// DCScaleSeed fixes the dcscale arrival traces.
const DCScaleSeed = 77

// DCScaleCell names one scenario size.
type DCScaleCell struct {
	Devices int
	Jobs    int
}

// DCScaleCells are the scenario sizes the dcscale table sweeps. The
// (512, 200) and (2048, 200) cells hold the job population fixed while
// the cluster grows 4x — the pair the flatness gate compares.
func DCScaleCells() []DCScaleCell {
	return []DCScaleCell{
		{Devices: 512, Jobs: 50},
		{Devices: 512, Jobs: 200},
		{Devices: 1024, Jobs: 100},
		{Devices: 2048, Jobs: 200},
	}
}

// DCScaleAuditStride is the Options.AuditStride dcscale runs use: full
// per-job PTC audits every 32nd event (plus the unconditional terminal
// sweep) keep O(jobs·state) verification machinery from dominating a
// 200-job run without weakening what an error would fail.
const DCScaleAuditStride = 32

// DCScaleScenario builds the datacenter-scale workload: the
// hierarchical topology (devices must be a multiple of 8), a contended
// elastic arrival trace of the given job count, and three fail-stop
// failures spread across the cluster's racks.
func DCScaleScenario(devices, jobs int, seed int64) (*cluster.Topology, []coordinator.JobSpec, []coordinator.FailureSpec) {
	if jobs < 1 {
		panic(fmt.Sprintf("experiments: DCScaleScenario with %d jobs", jobs))
	}
	p := sched.DefaultArrivalParams()
	p.Jobs = jobs
	// Arrivals every ~2 min against ~90 min jobs: at 512 devices the
	// offered load oversubscribes the cluster (admission arbitrates,
	// preemption and elasticity engage); at 2048 the same trace leaves
	// headroom, so the latency comparison spans both regimes.
	p.MeanInterArrivalMin = 2
	p.MeanDurationMin = 90
	p.Sizes = []int{4, 8, 16, 32}
	p.SizeWeights = []float64{0.3, 0.35, 0.25, 0.1}
	arrivals, err := sched.Arrivals(p, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	models := multiJobModels()
	specs := coordinator.SpecsFromArrivals(arrivals, func(i int) *model.Model {
		return models[i%len(models)]
	})
	failures := []coordinator.FailureSpec{
		{TimeMin: 60, Device: cluster.DeviceID(7)},
		{TimeMin: 90, Device: cluster.DeviceID(devices/2 + 1)},
		{TimeMin: 120, Device: cluster.DeviceID(devices - 3)},
	}
	return cluster.Datacenter(devices), specs, failures
}

// DCScaleRow is one measured cell of the dcscale table.
type DCScaleRow struct {
	Devices int
	Jobs    int
	// Deterministic scheduling outcome (ModeSim): the -check gate
	// compares these exactly.
	Events      int
	Completed   int
	Preemptions int
	Plans       int
	MakespanMin float64
	MovedGB     float64
	// Per-decision latency percentiles in microseconds
	// (machine-dependent; gated only via the flatness ratio).
	P50us float64
	P90us float64
	P99us float64
}

// RunDCScale runs one dcscale cell and reduces it to a row.
func RunDCScale(devices, jobs int) DCScaleRow {
	topo, specs, failures := DCScaleScenario(devices, jobs, DCScaleSeed)
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Placement:       true,
		RecordDecisions: true,
		AuditStride:     DCScaleAuditStride,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: dcscale %dx%d: %v", devices, jobs, err))
	}
	completed := 0
	for _, js := range res.Jobs {
		if js.Completed {
			completed++
		}
	}
	return DCScaleRow{
		Devices:     devices,
		Jobs:        jobs,
		Events:      len(res.DecisionNs),
		Completed:   completed,
		Preemptions: res.Preemptions,
		Plans:       res.PlansValidated,
		MakespanMin: res.MakespanMin,
		MovedGB:     float64(res.MovedBytesTotal) / 1e9,
		P50us:       PercentileNs(res.DecisionNs, 0.50) / 1e3,
		P90us:       PercentileNs(res.DecisionNs, 0.90) / 1e3,
		P99us:       PercentileNs(res.DecisionNs, 0.99) / 1e3,
	}
}

// PercentileNs returns the nearest-rank q-quantile (q in [0, 1]) of the
// samples, in nanoseconds. Zero when there are no samples.
func PercentileNs(samples []int64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s)-1)*q + 0.5)
	return float64(s[idx])
}

// CompareDCScale sweeps the dcscale cells and tabulates per-decision
// latency against cluster size.
func CompareDCScale() ([]DCScaleRow, Table) {
	var rows []DCScaleRow
	for _, c := range DCScaleCells() {
		rows = append(rows, RunDCScale(c.Devices, c.Jobs))
	}
	tab := Table{
		ID:    "dcscale",
		Title: "Datacenter-scale control plane: per-decision latency vs cluster size",
		Columns: []string{"devices", "jobs", "events", "completed", "preempt",
			"plans", "makespan-min", "moved-GB", "p50-us", "p90-us", "p99-us"},
	}
	for _, r := range rows {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", r.Devices),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Preemptions),
			fmt.Sprintf("%d", r.Plans),
			fmt.Sprintf("%.1f", r.MakespanMin),
			fmt.Sprintf("%.2f", r.MovedGB),
			fmt.Sprintf("%.0f", r.P50us),
			fmt.Sprintf("%.0f", r.P90us),
			fmt.Sprintf("%.0f", r.P99us),
		})
	}
	var flat string
	if p512, p2048 := rows[1].P50us, rows[3].P50us; p512 > 0 {
		flat = fmt.Sprintf("flatness: p50 %.0fus at 512 devices vs %.0fus at 2048 devices (%.2fx for a 4x cluster)",
			p512, p2048, p2048/p512)
	}
	tab.Notes = append(tab.Notes,
		"hierarchical Datacenter topology: 4-GPU NVLink islands, 8-GPU nodes, 4-node racks, 8-rack pods, oversubscribed spine",
		"placement-aware ModeSim coordinator; per-decision latency is the event handler only (verification machinery excluded)",
		flat,
		"incremental ledger summaries + epoch-stamped score cache keep per-decision cost flat in cluster size",
	)
	return rows, tab
}
