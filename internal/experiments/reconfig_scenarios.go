package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// PlannerScenario is one production-scale reconfiguration whose plan
// generation is benchmarked by the core bench suite, the root bench
// suite, and tenplex-bench's -json mode. Scenarios cover the elastic
// events the paper evaluates (§6) — scale-out, scale-in, redeployment,
// fail-stop recovery — at 64 and 128 devices, plus an MoE
// expert-parallel reshape.
type PlannerScenario struct {
	Name string
	// Devices is the total device count involved (max of both sides).
	Devices  int
	Topo     *cluster.Topology
	From, To *core.PTC
	Opts     core.PlanOptions
}

// buildMoEPTC is the panic-on-error MoE sibling of buildPTC.
func buildMoEPTC(m *model.Model, cfg parallel.MoEConfig, alloc cluster.Allocation) *core.PTC {
	ptc, err := parallel.BuildMoEPTC(m, cfg, alloc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return ptc
}

// PlannerScenarios builds the scenario set. Construction is pure
// metadata and deterministic; callers time only core.GeneratePlan.
func PlannerScenarios() []PlannerScenario {
	gpt := model.GPT3_6B7().WithAdam()
	moe := model.MoE(model.MoEConfig{
		Name: "moe-16e", Layers: 12, Hidden: 1024, Heads: 16,
		Experts: 64, Vocab: 32000, SeqLen: 1024,
	}).WithAdam()

	c64 := cluster.Cloud(64)
	c128 := cluster.Cloud(128)

	var out []PlannerScenario

	// Scale-out 32 -> 64: double data parallelism onto fresh devices.
	out = append(out, PlannerScenario{
		Name: "scale-out-64", Devices: 64, Topo: c64,
		From: buildPTC(gpt, parallel.Config{TP: 4, PP: 4, DP: 2}, c64.FirstN(32)),
		To:   buildPTC(gpt, parallel.Config{TP: 4, PP: 4, DP: 4}, c64.FirstN(64)),
		Opts: core.PlanOptions{Topo: c64},
	})

	// Scale-out 64 -> 128 and scale-in 128 -> 64 at full cluster size.
	from64 := buildPTC(gpt, parallel.Config{TP: 8, PP: 4, DP: 2}, c128.FirstN(64))
	full128 := buildPTC(gpt, parallel.Config{TP: 8, PP: 4, DP: 4}, c128.FirstN(128))
	out = append(out, PlannerScenario{
		Name: "scale-out-128", Devices: 128, Topo: c128,
		From: from64, To: full128, Opts: core.PlanOptions{Topo: c128},
	})
	out = append(out, PlannerScenario{
		Name: "scale-in-128", Devices: 128, Topo: c128,
		From: full128, To: from64, Opts: core.PlanOptions{Topo: c128},
	})

	// Redeployment: same parallelization, disjoint device halves of the
	// 128-device cluster (Fig. 10's scenario at scale).
	cfgRedeploy := parallel.Config{TP: 8, PP: 4, DP: 2}
	redeployTo := make(cluster.Allocation, 64)
	for i := range redeployTo {
		redeployTo[i] = cluster.DeviceID(64 + i)
	}
	out = append(out, PlannerScenario{
		Name: "redeploy-128", Devices: 128, Topo: c128,
		From: buildPTC(gpt, cfgRedeploy, c128.FirstN(64)),
		To:   buildPTC(gpt, cfgRedeploy, redeployTo),
		Opts: core.PlanOptions{Topo: c128},
	})

	// Fail-stop recovery from the surviving replica: DP=2 on 64
	// devices, one half-worker of the first replica dies; the job
	// shrinks to DP=1 on the surviving replica's devices.
	from64dp2 := buildPTC(gpt, parallel.Config{TP: 8, PP: 4, DP: 2}, c64.FirstN(64))
	survivors := make(cluster.Allocation, 32)
	for i := range survivors {
		survivors[i] = cluster.DeviceID(32 + i)
	}
	out = append(out, PlannerScenario{
		Name: "failstop-replica-64", Devices: 64, Topo: c64,
		From: from64dp2.WithoutDevices(0, 1, 2, 3),
		To:   buildPTC(gpt, parallel.Config{TP: 8, PP: 4, DP: 1}, survivors),
		Opts: core.PlanOptions{Topo: c64, StorageFallback: true},
	})

	// Fail-stop recovery from storage: both replicas of the first
	// pipeline stage's leading TP ranks die, forcing checkpoint reads
	// for exactly the lost ranges.
	bothReplicas := make(cluster.Allocation, 0, 32)
	for i := 4; i < 32; i++ {
		bothReplicas = append(bothReplicas, cluster.DeviceID(i))
	}
	for i := 36; i < 40; i++ {
		bothReplicas = append(bothReplicas, cluster.DeviceID(i))
	}
	out = append(out, PlannerScenario{
		Name: "failstop-storage-64", Devices: 64, Topo: c64,
		From: from64dp2.WithoutDevices(0, 1, 2, 3, 32, 33, 34, 35),
		To:   buildPTC(gpt, parallel.Config{TP: 8, PP: 4, DP: 1}, bothReplicas),
		Opts: core.PlanOptions{Topo: c64, StorageFallback: true},
	})

	// MoE expert-parallel reshape: 64 experts from EP=32 (two experts
	// per group, DP=2) to EP=64 (one expert per device, DP=1). The
	// target allocation is rotated so expert groups land on different
	// devices and every expert's tensors actually move.
	rotated := make(cluster.Allocation, 64)
	for i := range rotated {
		rotated[i] = cluster.DeviceID((i + 16) % 64)
	}
	out = append(out, PlannerScenario{
		Name: "moe-expert-64", Devices: 64, Topo: c64,
		From: buildMoEPTC(moe, parallel.MoEConfig{EP: 32, DP: 2}, c64.FirstN(64)),
		To:   buildMoEPTC(moe, parallel.MoEConfig{EP: 64, DP: 1}, rotated),
		Opts: core.PlanOptions{Topo: c64},
	})

	return out
}
