package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

// Fig14Row is one bar pair of Fig. 14: reconfiguration time along one
// parallelism dimension for one model size.
type Fig14Row struct {
	Dim        string // "data" | "pipeline" | "tensor"
	ModelSize  string
	TenplexSec float64
	CentralSec float64
}

// Fig14ParallelizationType reproduces Fig. 14: reconfiguration time for
// GPT-3 1.3B/2.7B/6.7B when one parallelism dimension changes:
//
//	data:     (T,P,D) = (4,2,1) -> (4,2,2)
//	pipeline: (4,2,1) -> (4,4,1)
//	tensor:   (4,2,1) -> (8,2,1)
//
// comparing Tenplex against Tenplex-Central. The paper reports Central
// 4× slower under DP, 3.5× under PP and 3.7× under TP for the 6.7B
// model, with the 1.3B pipeline case as the exception where the network
// does not bottleneck.
func Fig14ParallelizationType() ([]Fig14Row, Table) {
	topo := cluster.OnPrem16()
	base := parallel.Config{TP: 4, PP: 2, DP: 1}
	targets := []struct {
		dim string
		cfg parallel.Config
	}{
		{"data", parallel.Config{TP: 4, PP: 2, DP: 2}},
		{"pipeline", parallel.Config{TP: 4, PP: 4, DP: 1}},
		{"tensor", parallel.Config{TP: 8, PP: 2, DP: 1}},
	}

	var rows []Fig14Row
	table := Table{
		ID:      "fig14",
		Title:   "Reconfiguration time by parallelization type (Tenplex vs Tenplex-Central)",
		Columns: []string{"dim", "model", "tenplex(s)", "central(s)", "ratio"},
		Notes: []string{
			"paper: at 6.7B, Central is 4.0x (DP), 3.5x (PP), 3.7x (TP) slower",
			"base config (T,P,D)=(4,2,1) on 8 GPUs; target grows one dimension",
		},
	}
	for _, tgt := range targets {
		for _, size := range []string{"1.3B", "2.7B", "6.7B"} {
			m := gptWithOpt(size)
			from := buildPTC(m, base, topo.FirstN(base.WorldSize()))
			to := buildPTC(m, tgt.cfg, topo.FirstN(tgt.cfg.WorldSize()))
			tenplex, _ := reconfigSeconds(topo, from, to, false)
			central := centralReconfigSeconds(topo, from, to, 0)
			rows = append(rows, Fig14Row{
				Dim: tgt.dim, ModelSize: size,
				TenplexSec: tenplex, CentralSec: central,
			})
			table.Rows = append(table.Rows, []string{
				tgt.dim, size, secs(tenplex), secs(central), fmt.Sprintf("%.1fx", central/tenplex),
			})
		}
	}
	return rows, table
}
