package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/perfmodel"
)

// Fig3Row is one bar of Fig. 3: throughput of one parallelization
// configuration on 16 GPUs.
type Fig3Row struct {
	Model      string
	Config     string
	SamplesSec float64
	Feasible   bool
}

// Fig3ParallelizationSweep reproduces Fig. 3: training throughput of
// BERT-large and GPT-3 2.7B on the 16-GPU on-premise cluster under
// every (T,P,D) configuration. The paper's headline findings: the
// spread between best and worst exceeds 10×; (2,4,2) performs best for
// GPT-3 2.7B because tensor parallelism stays inside NVLink-connected
// workers; (16,1,1) performs worst because TP crosses the inter-worker
// network.
func Fig3ParallelizationSweep() ([]Fig3Row, Table) {
	topo := cluster.OnPrem16()
	p := perfmodel.DefaultParams()
	table := Table{
		ID:      "fig3",
		Title:   "Throughput by parallelization configuration (16 GPUs)",
		Columns: []string{"model", "(T,P,D)", "samples/s", "feasible"},
		Notes: []string{
			"paper: >10x spread; (2,4,2) best for GPT-3 2.7B; (16,1,1) worst",
		},
	}
	var rows []Fig3Row
	for _, m := range []*model.Model{model.BERTLarge(), model.GPT3_2B7()} {
		for _, est := range perfmodel.Sweep(m, topo, 16, p) {
			r := Fig3Row{
				Model:      m.Name,
				Config:     est.Config.String(),
				SamplesSec: est.SamplesSec,
				Feasible:   est.Feasible,
			}
			rows = append(rows, r)
			val := "-"
			if est.Feasible {
				val = fmt.Sprintf("%.1f", est.SamplesSec)
			}
			table.Rows = append(table.Rows, []string{
				m.Name, est.Config.String(), val, fmt.Sprintf("%v", est.Feasible),
			})
		}
	}
	return rows, table
}
