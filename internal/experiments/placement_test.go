package experiments

import (
	"reflect"
	"testing"
)

// TestPlacementComparisonAcceptance is the experiment's acceptance
// gate (mirrored by tenplex-bench -check against the committed
// BENCH_placement baseline): on the contended steady 32-device/12-job
// scenario, placement-aware scheduling keeps at least count-based
// utilization (to simulation float noise) and strictly reduces the
// aggregate reconfiguration bytes moved, with every job still
// completing.
func TestPlacementComparisonAcceptance(t *testing.T) {
	rows, tab, err := PlacementComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tab.Rows) != 4 {
		t.Fatalf("want 4 comparison cells, got %d", len(rows))
	}
	cell := map[string]PlacementRow{}
	for _, r := range rows {
		cell[r.Workload+"/"+r.Mode] = r
	}
	count, placed := cell["steady/count"], cell["steady/placement"]
	if count.Workload == "" || placed.Workload == "" {
		t.Fatalf("missing steady cells in %v", rows)
	}
	if placed.MeanUtilization < count.MeanUtilization-1e-6 {
		t.Fatalf("placement utilization %.6f below count-based %.6f",
			placed.MeanUtilization, count.MeanUtilization)
	}
	if placed.MovedBytes >= count.MovedBytes {
		t.Fatalf("placement moved %d bytes, not strictly below count-based %d",
			placed.MovedBytes, count.MovedBytes)
	}
	if placed.ReconfigSec > count.ReconfigSec+1e-9 {
		t.Fatalf("placement reconfiguration time %.6f above count-based %.6f",
			placed.ReconfigSec, count.ReconfigSec)
	}
	for k, r := range cell {
		if r.Completed != 12 {
			t.Fatalf("%s completed only %d of 12 jobs", k, r.Completed)
		}
	}
	// The bursty workload is a different trace (same offered load).
	if cell["bursty/count"].MakespanMin == count.MakespanMin {
		t.Fatal("bursty workload reproduced the steady trace")
	}
}

// TestPlacementComparisonDeterministic: the whole four-cell comparison
// is reproducible run over run.
func TestPlacementComparisonDeterministic(t *testing.T) {
	a, _, err := PlacementComparison()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := PlacementComparison()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("placement comparison not deterministic:\n%v\n%v", a, b)
	}
}
