package experiments

import (
	"fmt"
	"math"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/parallel"
	"tenplex/internal/perfmodel"
	"tenplex/internal/sched"
)

// Fig9Row summarizes one system's elastic run.
type Fig9Row struct {
	System string
	// FinalSteps after the 538-minute Philly-derived trace.
	FinalSteps float64
	// MinToTarget is when the system reaches the reference step count
	// (the slowest system's final progress); +Inf if never.
	MinToTarget float64
	// PausedMin counts time spent with no runnable configuration.
	PausedMin float64
	// ReconfigSec accumulates reconfiguration downtime.
	ReconfigSec float64
	Timeline    []sched.TimePoint
}

// elasticSystem models one of Fig. 9's contenders as a sched.Job.
type elasticSystem struct {
	name string
	topo *cluster.Topology
	p    perfmodel.Params

	// configFor picks the parallelization for n GPUs; ok=false means
	// the system cannot run with n GPUs and pauses.
	configFor func(n int) (parallel.Config, bool)
	// reconfig computes the reconfiguration downtime in seconds.
	reconfig func(from, to *core.PTC) float64
	// restartSec is fixed process-restart overhead per event.
	restartSec float64

	cur     *core.PTC
	curCfg  parallel.Config
	curOK   bool
	modelID string
}

func (s *elasticSystem) ptcFor(cfg parallel.Config, n int) *core.PTC {
	return buildPTC(gptWithOpt("1.3B"), cfg, s.topo.FirstN(n))
}

func (s *elasticSystem) Reconfigure(e sched.Event) (float64, error) {
	cfg, ok := s.configFor(e.GPUs)
	if !ok {
		s.curOK = false
		return s.restartSec, nil
	}
	to := s.ptcFor(cfg, e.GPUs)
	var sec float64
	if s.cur != nil && s.curOK {
		sec = s.reconfig(s.cur, to)
	} else if s.cur != nil {
		// Resuming from a pause: state still lives on the old devices.
		sec = s.reconfig(s.cur, to)
	}
	s.cur, s.curCfg, s.curOK = to, cfg, true
	return sec + s.restartSec, nil
}

func (s *elasticSystem) StepRate() float64 {
	if !s.curOK {
		return 0
	}
	est := perfmodel.Throughput(gptWithOpt("1.3B"), s.curCfg, s.topo, s.topo.FirstN(s.curCfg.WorldSize()), s.p)
	if !est.Feasible {
		return 0
	}
	return 1 / est.IterSec // steps per second
}

// Fig9ElasticConvergence reproduces Fig. 9: GPT-3 XL trained over the
// 538-minute Philly-derived trace with GPU counts moving between 16, 8
// and 4. Tenplex reconfigures every parallelism dimension and keeps the
// best configuration; Tenplex-DP and Torch Distributed Elastic only
// change data parallelism over a fixed (T,P) = (2,4) plan, so they
// cannot run on 4 GPUs at all and pause. The paper reports Tenplex
// reaching the DP baseline's final step count in 46% less time.
func Fig9ElasticConvergence(seed int64) ([]Fig9Row, Table) {
	topo := cluster.OnPrem16()
	p := perfmodel.DefaultParams()
	trace := sched.PhillyDerived(seed)

	// Tenplex: best feasible configuration per GPU count (the paper's
	// choices: (2,4,2) -> (2,4,1) -> (2,2,1)).
	tenplexCfg := func(n int) (parallel.Config, bool) {
		switch n {
		case 16:
			return parallel.Config{TP: 2, PP: 4, DP: 2}, true
		case 8:
			return parallel.Config{TP: 2, PP: 4, DP: 1}, true
		case 4:
			return parallel.Config{TP: 2, PP: 2, DP: 1}, true
		}
		best, err := perfmodel.Best(gptWithOpt("1.3B"), topo, n, p)
		if err != nil {
			return parallel.Config{}, false
		}
		return best.Config, true
	}
	// DP-only systems: (T,P) pinned at (2,4); n must be a multiple of 8.
	dpOnlyCfg := func(n int) (parallel.Config, bool) {
		if n%8 != 0 {
			return parallel.Config{}, false
		}
		return parallel.Config{TP: 2, PP: 4, DP: n / 8}, true
	}

	planReconfig := func(from, to *core.PTC) float64 {
		sec, _ := reconfigSeconds(topo, from, to, false)
		return sec
	}
	storageReconfig := func(from, to *core.PTC) float64 {
		return fullStateViaStorageSeconds(topo, from, to)
	}

	systems := []*elasticSystem{
		{name: "Tenplex", topo: topo, p: p, configFor: tenplexCfg, reconfig: planReconfig, restartSec: 10},
		{name: "Tenplex-DP", topo: topo, p: p, configFor: dpOnlyCfg, reconfig: planReconfig, restartSec: 10},
		{name: "Torch Distributed Elastic", topo: topo, p: p, configFor: dpOnlyCfg, reconfig: storageReconfig, restartSec: 60},
	}

	var rows []Fig9Row
	var results []sched.RunResult
	for _, s := range systems {
		cfg, ok := s.configFor(trace.InitialGPUs)
		if !ok {
			panic("experiments: initial config infeasible")
		}
		s.cur, s.curCfg, s.curOK = s.ptcFor(cfg, trace.InitialGPUs), cfg, true
		res, err := sched.Run(trace, s)
		if err != nil {
			panic(err)
		}
		results = append(results, res)
		rows = append(rows, Fig9Row{
			System:      s.name,
			FinalSteps:  res.Steps,
			ReconfigSec: res.ReconfigSec,
			Timeline:    res.Timeline,
		})
	}

	// Reference: the slowest system's final step count; when does each
	// system reach it?
	target := math.Inf(1)
	for _, r := range rows {
		if r.FinalSteps < target {
			target = r.FinalSteps
		}
	}
	for i := range rows {
		rows[i].MinToTarget = timeToReach(results[i].Timeline, target)
		rows[i].PausedMin = pausedMinutes(results[i].Timeline)
	}

	table := Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("Elastic convergence over a %0.0f-min Philly-derived trace (GPT-3 XL)", trace.DurationMin),
		Columns: []string{"system", "final-steps", "min-to-slowest-final", "paused(min)", "reconfig(s)"},
		Notes: []string{
			"paper: Tenplex reaches the DP baseline's final step in 46% less time",
			"Tenplex-DP/Torch pause at 4 GPUs: (T=2,P=4) needs 8 devices",
		},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.System,
			fmt.Sprintf("%.0f", r.FinalSteps),
			fmt.Sprintf("%.0f", r.MinToTarget),
			fmt.Sprintf("%.0f", r.PausedMin),
			fmt.Sprintf("%.0f", r.ReconfigSec),
		})
	}
	if len(rows) == 3 {
		red := 1 - rows[0].MinToTarget/rows[1].MinToTarget
		table.Notes = append(table.Notes,
			fmt.Sprintf("measured: Tenplex reaches Tenplex-DP's final step in %.0f%% less time", red*100))
	}
	return rows, table
}

// timeToReach interpolates when a timeline first crosses `steps`.
func timeToReach(tl []sched.TimePoint, steps float64) float64 {
	prev := sched.TimePoint{}
	for _, p := range tl {
		if p.Steps >= steps {
			if p.Steps == prev.Steps {
				return p.Min
			}
			frac := (steps - prev.Steps) / (p.Steps - prev.Steps)
			return prev.Min + frac*(p.Min-prev.Min)
		}
		prev = p
	}
	return math.Inf(1)
}

// pausedMinutes sums timeline segments with zero progress that are
// longer than reconfiguration downtime (true pauses last until the next
// scheduler event, tens of minutes).
func pausedMinutes(tl []sched.TimePoint) float64 {
	const minPause = 2.0 // minutes; reconfigurations finish in seconds
	var paused float64
	prev := sched.TimePoint{}
	for _, p := range tl {
		if p.Min-prev.Min > minPause && p.Steps == prev.Steps {
			paused += p.Min - prev.Min
		}
		prev = p
	}
	return paused
}

// PerplexityAt maps step progress onto the perplexity curve shown in
// Fig. 9 (a fitted LM learning curve: ppl = 8 + 92·exp(−steps/τ)).
func PerplexityAt(steps float64) float64 {
	const tau = 4000.0
	return 8 + 92*math.Exp(-steps/tau)
}
