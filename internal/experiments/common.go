// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is a pure function returning
// machine-readable rows; cmd/tenplex-bench renders them and
// bench_test.go wraps them as Go benchmarks.
//
// Two execution planes are used (see DESIGN.md): reconfiguration-time
// experiments run the real plan generator on full-scale model shapes
// and convert the resulting per-flow byte counts into seconds with the
// netsim bandwidth model; convergence experiments run the real mini DL
// system end to end, moving real bytes through Tensor Stores.
package experiments

import (
	"fmt"
	"strings"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig10"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records modelling assumptions and the paper's reported
	// numbers for comparison.
	Notes []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// buildPTC is a panic-on-error helper for experiment setup code whose
// configurations are fixed by construction.
func buildPTC(m *model.Model, cfg parallel.Config, alloc cluster.Allocation) *core.PTC {
	ptc, err := parallel.BuildPTC(m, cfg, alloc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return ptc
}

// reconfigSeconds runs the real planner between two PTCs and simulates
// the resulting transfers on the topology — Tenplex's distributed,
// locality-aware reconfiguration path (with the allocation aligned to
// the old placement so devices keep resident state).
func reconfigSeconds(topo *cluster.Topology, from, to *core.PTC, storageOK bool) (float64, core.Stats) {
	to = core.AlignDevices(from, to)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo, StorageFallback: storageOK})
	if err != nil {
		panic(fmt.Sprintf("experiments: plan: %v", err))
	}
	res := netsim.Simulate(topo, plan.Flows(topo))
	return res.Seconds, plan.Stats(topo)
}

// centralReconfigSeconds models the Tenplex-Central baseline (the
// PyTorch-Elastic / DeepSpeed pattern, §6.3): all state is gathered at
// one central device, transformed there, and scattered to the new
// devices. Gather and scatter are serialized phases, and all split and
// merge copy work lands on the central worker.
func centralReconfigSeconds(topo *cluster.Topology, from, to *core.PTC, central cluster.DeviceID) float64 {
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		panic(fmt.Sprintf("experiments: central plan: %v", err))
	}
	var gather, scatter []netsim.Flow
	for _, a := range plan.Assignments {
		if a.IsNoop() {
			continue
		}
		meta := plan.To.Tensors[a.Tensor]
		merge := len(a.Fetch) > 1
		for _, f := range a.Fetch {
			bytes := f.Want.NumBytes(meta.DType)
			var cp int64
			if f.Src.Kind == core.FromDevice && !f.Src.Region.Equal(f.Want) {
				cp += bytes // split happens at the central node
			}
			if merge {
				cp += bytes
			}
			// Phase 1: source -> central.
			src := netsim.StorageEP()
			if f.Src.Kind == core.FromDevice {
				src = netsim.DevEP(f.Src.Device)
			}
			g := netsim.Flow{From: src, To: netsim.DevEP(central), Bytes: bytes, CopyBytes: cp}
			if f.Src.Kind == core.FromDevice && f.Src.Device == central {
				g.Bytes = 0
			}
			gather = append(gather, g)
			// Phase 2: central -> destination.
			s := netsim.Flow{From: netsim.DevEP(central), To: netsim.DevEP(a.Device), Bytes: bytes}
			if a.Device == central {
				s.Bytes = 0
			}
			scatter = append(scatter, s)
		}
	}
	t1 := netsim.Simulate(topo, gather)
	t2 := netsim.Simulate(topo, scatter)
	return t1.Seconds + t2.Seconds
}

// fullStateViaStorageSeconds models baselines that persist the entire
// job state to remote storage and read it back under the new
// configuration (DeepSpeed's resource-change path, §6.5): no minimality,
// every byte crosses the storage link twice.
func fullStateViaStorageSeconds(topo *cluster.Topology, from, to *core.PTC) float64 {
	var save, load []netsim.Flow
	seen := map[string]bool{}
	for _, d := range from.Devices {
		for _, s := range from.Place[d] {
			key := string(s.Tensor) + s.Region.String()
			if seen[key] {
				continue // one replica persists
			}
			seen[key] = true
			save = append(save, netsim.Flow{
				From:  netsim.DevEP(d),
				To:    netsim.StorageEP(),
				Bytes: s.NumBytes(from.Tensors[s.Tensor]),
			})
		}
	}
	for _, d := range to.Devices {
		for _, s := range to.Place[d] {
			load = append(load, netsim.Flow{
				From:  netsim.StorageEP(),
				To:    netsim.DevEP(d),
				Bytes: s.NumBytes(to.Tensors[s.Tensor]),
			})
		}
	}
	t1 := netsim.Simulate(topo, save)
	t2 := netsim.Simulate(topo, load)
	return t1.Seconds + t2.Seconds
}

// fullGPUStateSeconds models the Singularity-style virtual-device
// baseline (§6.5): the complete GPU device state — training state plus
// activations, allocator pools and runtime buffers, modeled as a
// multiplier on the model state — migrates point-to-point between old
// and new devices, even when replicas already exist at the target.
func fullGPUStateSeconds(topo *cluster.Topology, from, to *core.PTC, gpuStateFactor float64) float64 {
	var flows []netsim.Flow
	nTo := len(to.Devices)
	for i, d := range from.Devices {
		bytes := int64(float64(from.DeviceBytes(d)) * gpuStateFactor)
		dst := to.Devices[i%nTo]
		if dst == d {
			continue
		}
		flows = append(flows, netsim.Flow{From: netsim.DevEP(d), To: netsim.DevEP(dst), Bytes: bytes})
	}
	return netsim.Simulate(topo, flows).Seconds
}

// gptWithOpt returns the paper's GPT-3 variant with Adam optimizer
// state, the payload reconfiguration experiments move.
func gptWithOpt(size string) *model.Model {
	m, err := model.GPTBySize(size)
	if err != nil {
		panic(err)
	}
	return m.WithAdam()
}

func secs(v float64) string { return fmt.Sprintf("%.1f", v) }
