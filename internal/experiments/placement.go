package experiments

import (
	"fmt"

	"tenplex/internal/coordinator"
)

// The placement-comparison experiment quantifies the paper's central
// claim at the cluster level: reconfiguration cost depends on WHICH
// devices a job holds, not just how many. It replays the shared
// 32-device/12-job scenario — same arrival trace, models and injected
// failure — twice per workload: once with the count-based coordinator
// (lease sizes only, compact pick) and once placement-aware
// (Options.Placement: candidate device sets scored by
// perfmodel.ScorePlacement, victims scored by netsim eviction cost,
// forced shrinks taking the cheapest feasible reshape). Both the
// steady Poisson trace and its bursty variant (same offered load,
// clumped submissions) are measured.

// PlacementRow is one (workload, mode) cell of the comparison.
type PlacementRow struct {
	// Workload is "steady" (Poisson arrivals) or "bursty".
	Workload string `json:"workload"`
	// Mode is "count" (placement off) or "placement".
	Mode            string  `json:"mode"`
	MakespanMin     float64 `json:"makespan_min"`
	MeanUtilization float64 `json:"mean_cluster_utilization"`
	Preemptions     int     `json:"preemptions"`
	ReconfigSec     float64 `json:"aggregate_reconfig_seconds"`
	// MovedBytes is the aggregate reconfiguration payload that crossed
	// a device boundary — the headline quantity placement-aware
	// scheduling shrinks.
	MovedBytes int64 `json:"moved_bytes"`
	Completed  int   `json:"jobs_completed"`
}

// ComparePlacement runs the multi-job scenario per (workload, mode)
// cell and returns four rows: steady/count, steady/placement,
// bursty/count, bursty/placement.
func ComparePlacement(devices, jobs int, seed int64) ([]PlacementRow, error) {
	var rows []PlacementRow
	for _, workload := range []string{"steady", "bursty"} {
		for _, mode := range []string{"count", "placement"} {
			var res coordinator.Result
			var err error
			scenario := MultiJobScenario
			if workload == "bursty" {
				scenario = MultiJobScenarioBursty
			}
			topo, specs, failures := scenario(devices, jobs, seed)
			res, err = coordinator.Run(topo, specs, failures, coordinator.Options{
				Placement: mode == "placement",
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: placement %s/%s: %w", workload, mode, err)
			}
			row := PlacementRow{
				Workload:        workload,
				Mode:            mode,
				MakespanMin:     res.MakespanMin,
				MeanUtilization: res.MeanUtilization,
				Preemptions:     res.Preemptions,
				ReconfigSec:     res.ReconfigSecTotal,
				MovedBytes:      res.MovedBytesTotal,
			}
			for _, js := range res.Jobs {
				if js.Completed {
					row.Completed++
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PlacementComparison tabulates ComparePlacement on the shared
// 32-device/12-job scenario.
func PlacementComparison() ([]PlacementRow, Table, error) {
	rows, err := ComparePlacement(32, 12, MultiJobSeed)
	if err != nil {
		return nil, Table{}, err
	}
	tab := Table{
		ID:    "placement",
		Title: "Count-based vs placement-aware scheduling (32 devices, 12 jobs)",
		Columns: []string{"workload", "mode", "makespan-min", "mean-util",
			"preemptions", "reconfig-s", "moved-MB", "completed"},
	}
	for _, r := range rows {
		tab.Rows = append(tab.Rows, []string{
			r.Workload, r.Mode,
			fmt.Sprintf("%.1f", r.MakespanMin),
			fmt.Sprintf("%.4f", r.MeanUtilization),
			fmt.Sprintf("%d", r.Preemptions),
			fmt.Sprintf("%.4f", r.ReconfigSec),
			fmt.Sprintf("%.4f", float64(r.MovedBytes)/1e6),
			fmt.Sprintf("%d", r.Completed),
		})
	}
	tab.Notes = append(tab.Notes,
		"same arrival trace, models and injected failure per workload; only Options.Placement changes",
		"placement mode scores candidate device sets (perfmodel.ScorePlacement), evicts by netsim cost, and takes the cheapest feasible reshape on forced shrinks",
		"bursty rows use the same offered load with clumped submissions (sched.ArrivalParams.Burstiness)",
	)
	return rows, tab, nil
}
