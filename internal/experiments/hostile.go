package experiments

import (
	"fmt"

	"tenplex/internal/chaos"
	"tenplex/internal/coordinator"
)

// The hostile-cluster experiment measures what graceful degradation
// buys on a cluster that actively misbehaves: the shared 32-device/
// 12-job scenario runs under a fixed chaos schedule (a flapping
// device, a spot reclamation with a drain window, a degraded worker
// NIC) while the per-operation store fault rate sweeps from benign to
// hostile. Each rate runs twice — retry-off (single transform attempt;
// any injected fault aborts the reconfiguration, rolls the job back to
// its checkpoint and requeues it) and retry-on (a capped backoff
// budget of attempts absorbs transient faults before degrading). Every
// metric is simulated and deterministic per seed, so the bench gate
// compares cells exactly and asserts the headline: at the highest
// fault rate the retry budget completes strictly more jobs.

// HostileSeed keys the chaos decision streams of the hostile
// comparison (and the chaos regression tests).
const HostileSeed = 7

// HostileFaultRates is the per-operation store fault rate sweep, benign
// to hostile.
var HostileFaultRates = []float64{0, 0.005, 0.02}

// HostilePlan is the canonical hostile-cluster schedule at the given
// store fault rate: device 13 flaps three times (quarantine bait for
// the suspicion detector), device 3 is spot-reclaimed with an 8-minute
// drain window, and worker 1's NIC runs at quarter bandwidth for two
// hours.
func HostilePlan(rate float64) *chaos.Plan {
	return &chaos.Plan{
		Seed:           HostileSeed,
		StoreFaultRate: rate,
		Flaps: []chaos.DeviceFlap{
			{Device: 13, FailMin: 45, DownMin: 20, Cycles: 3, PeriodMin: 60},
		},
		Reclaims: []chaos.SpotReclaim{
			{Device: 3, NoticeMin: 50, WindowMin: 8},
		},
		LinkDegrades: []chaos.LinkDegrade{
			{Worker: 1, StartMin: 30, DurationMin: 120, Factor: 0.25},
		},
	}
}

// HostileRecovery returns the recovery policy of one comparison arm.
// Both arms share the requeue budget and the suspicion threshold; only
// the transform attempt budget differs.
func HostileRecovery(retry bool) coordinator.RecoveryPolicy {
	pol := coordinator.RecoveryPolicy{
		MaxAttempts:        1,
		MaxRequeues:        2,
		SuspicionThreshold: 2,
	}
	if retry {
		pol.MaxAttempts = 4
		pol.BackoffSec = 2
		pol.MaxBackoffSec = 16
	}
	return pol
}

// HostileRow is one (fault rate, recovery policy) cell.
type HostileRow struct {
	// FaultRate is the per-operation store fault probability during
	// armed transform attempts.
	FaultRate float64 `json:"store_fault_rate"`
	// Policy is "retry-off" (single attempt) or "retry-on" (capped
	// backoff budget).
	Policy string `json:"policy"`
	// Completed counts jobs that finished bit-verified.
	Completed int `json:"jobs_completed"`
	// Goodput is completed training minutes delivered per cluster
	// minute: the sum of completed jobs' durations over the makespan.
	Goodput     float64 `json:"goodput"`
	MakespanMin float64 `json:"makespan_min"`
	// Retries counts transform attempts beyond each change's first;
	// Requeues counts aborted reconfigurations that fell back to the
	// checkpoint and re-entered the admission queue.
	Retries  int `json:"retries"`
	Requeues int `json:"requeues"`
	// Quarantined counts devices the suspicion detector refused to
	// re-admit.
	Quarantined int `json:"quarantined_devices"`
	// MovedBytes is the total reconfiguration payload; RetryBytes the
	// slice of it re-moved by attempts beyond the first — the waste the
	// retry budget pays for survival.
	MovedBytes int64 `json:"moved_bytes"`
	RetryBytes int64 `json:"retry_bytes"`
	// RecoverySec is downtime charged beyond first-attempt cost (repeat
	// transforms, backoff waits, aborted work); MeanRecoverySec divides
	// it over the retry/requeue incidents that caused it.
	RecoverySec     float64 `json:"recovery_seconds"`
	MeanRecoverySec float64 `json:"mean_recovery_latency_seconds"`
}

// CompareHostile sweeps HostileFaultRates x {retry-off, retry-on} over
// the shared multi-job scenario under the canonical hostile plan.
func CompareHostile(devices, jobs int, seed int64) ([]HostileRow, error) {
	var rows []HostileRow
	for _, rate := range HostileFaultRates {
		for _, retry := range []bool{false, true} {
			topo, specs, failures := MultiJobScenario(devices, jobs, seed)
			res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
				Chaos:    HostilePlan(rate),
				Recovery: HostileRecovery(retry),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: hostile rate=%v retry=%v: %w", rate, retry, err)
			}
			policy := "retry-off"
			if retry {
				policy = "retry-on"
			}
			row := HostileRow{
				FaultRate:   rate,
				Policy:      policy,
				MakespanMin: res.MakespanMin,
				Retries:     res.Retries,
				Requeues:    res.Requeues,
				Quarantined: res.QuarantinedDevices,
				MovedBytes:  res.MovedBytesTotal,
				RetryBytes:  res.RetryBytes,
				RecoverySec: res.RecoverySec,
			}
			durations := map[string]float64{}
			for _, sp := range specs {
				durations[sp.Name] = sp.DurationMin
			}
			var doneMin float64
			for _, js := range res.Jobs {
				if js.Completed {
					row.Completed++
					doneMin += durations[js.Name]
				}
			}
			if res.MakespanMin > 0 {
				row.Goodput = doneMin / res.MakespanMin
			}
			if n := res.Retries + res.Requeues; n > 0 {
				row.MeanRecoverySec = res.RecoverySec / float64(n)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// HostileComparison tabulates CompareHostile on the shared
// 32-device/12-job scenario.
func HostileComparison() ([]HostileRow, Table, error) {
	rows, err := CompareHostile(32, 12, MultiJobSeed)
	if err != nil {
		return nil, Table{}, err
	}
	tab := Table{
		ID:    "hostile",
		Title: "Hostile-cluster survival: fault-rate sweep x recovery policy (32 devices, 12 jobs)",
		Columns: []string{"fault-rate", "policy", "completed", "goodput", "retries",
			"requeues", "quarantined", "re-moved-MB", "recovery-s", "mean-rec-s"},
	}
	for _, r := range rows {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.3f", r.FaultRate), r.Policy,
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%.3f", r.Goodput),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Requeues),
			fmt.Sprintf("%d", r.Quarantined),
			fmt.Sprintf("%.1f", float64(r.RetryBytes)/1e6),
			fmt.Sprintf("%.3f", r.RecoverySec),
			fmt.Sprintf("%.3f", r.MeanRecoverySec),
		})
	}
	tab.Notes = append(tab.Notes,
		"same arrival trace, chaos schedule (flap, spot reclaim, link degrade) and chaos seed per row; only the store fault rate and the recovery policy change",
		"retry-off aborts on the first injected fault: rollback to the last bit-verified checkpoint, requeue, redeploy; retry-on spends a capped backoff budget of attempts first",
		"every completed job is bit-verified; non-completed jobs end explicitly lost or rejected (no silent loss)",
	)
	return rows, tab, nil
}
