package experiments

import (
	"testing"

	"tenplex/internal/coordinator"
)

func TestPolicyComparison(t *testing.T) {
	rows, tab, err := PolicyComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tab.Rows) != 3 {
		t.Fatalf("want 3 policy rows, got %d/%d", len(rows), len(tab.Rows))
	}
	want := []string{"fifo", "drf", "priority"}
	for i, r := range rows {
		if r.Policy != want[i] {
			t.Fatalf("row %d policy %q, want %q", i, r.Policy, want[i])
		}
		if r.MakespanMin <= 0 || r.MeanUtilization <= 0 || r.MeanUtilization > 1 {
			t.Fatalf("%s: implausible metrics %+v", r.Policy, r)
		}
		if r.Completed < 8 {
			t.Fatalf("%s: only %d jobs completed", r.Policy, r.Completed)
		}
	}

	// The FIFO row must match the single-policy multijob experiment
	// exactly — the Policy extraction may not change the default path.
	res, _ := MultiJobCluster()
	if rows[0].MakespanMin != res.MakespanMin ||
		rows[0].MeanUtilization != res.MeanUtilization ||
		rows[0].ReconfigSec != res.ReconfigSecTotal {
		t.Fatalf("fifo row %+v diverges from the multijob experiment (makespan %.3f, util %.4f, reconfig %.4f)",
			rows[0], res.MakespanMin, res.MeanUtilization, res.ReconfigSecTotal)
	}

	// The policies must actually behave differently on this contended
	// scenario — otherwise the comparison is vacuous.
	if rows[0].MakespanMin == rows[1].MakespanMin && rows[0].MakespanMin == rows[2].MakespanMin &&
		rows[0].Preemptions == rows[1].Preemptions && rows[0].Preemptions == rows[2].Preemptions {
		t.Fatalf("all policies produced identical outcomes:\n%s", tab.Render())
	}
}

func TestPolicyPriorities(t *testing.T) {
	specs := []coordinator.JobSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	got := PolicyPriorities(specs)
	for i, s := range got {
		if s.Priority != i%3 {
			t.Fatalf("job %d priority %d, want %d", i, s.Priority, i%3)
		}
	}
	if specs[3].Priority != 0 {
		t.Fatal("PolicyPriorities mutated its input")
	}
}
