package experiments

import (
	"fmt"
	"math"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/train"
	"tenplex/internal/transform"
)

// Fig16Series is one panel of Fig. 16: loss curves with and without a
// resource change at the event step, for one parallelism dimension.
type Fig16Series struct {
	Dim       string // "data" | "pipeline" | "tensor"
	EventStep int
	NoChange  []float64
	Increase  []float64
	Decrease  []float64
	// MaxDeviation is the largest |loss difference| between the
	// reconfigured runs and the static run.
	MaxDeviation float64
}

const (
	fig16Steps     = 200
	fig16EventStep = 100
	fig16Hidden    = 16
	fig16LR        = 0.2
	fig16Mom       = 0.9
	fig16Batch     = 32
)

// Fig16Convergence reproduces Fig. 16: a model trained with real state
// management — parameters and momentum live in Tensor Stores, and the
// resource change at step 100 executes a real PTC reconfiguration plan
// through the State Transformer — converges identically whether
// resources increase, decrease, or stay constant, for each of the data,
// pipeline and tensor parallelism dimensions.
func Fig16Convergence() ([]Fig16Series, Table) {
	series := []Fig16Series{
		fig16Data(),
		fig16Pipeline(),
		fig16Tensor(),
	}
	table := Table{
		ID:      "fig16",
		Title:   "Model convergence with reconfiguration at step 100",
		Columns: []string{"dim", "final-static", "final-increase", "final-decrease", "max-deviation"},
		Notes: []string{
			"paper: loss does not diverge when resources change under any dimension",
			"runs use the real Tensor Store + State Transformer reconfiguration path",
		},
	}
	for _, s := range series {
		table.Rows = append(table.Rows, []string{
			s.Dim,
			fmt.Sprintf("%.4f", s.NoChange[len(s.NoChange)-1]),
			fmt.Sprintf("%.4f", s.Increase[len(s.Increase)-1]),
			fmt.Sprintf("%.4f", s.Decrease[len(s.Decrease)-1]),
			fmt.Sprintf("%.2e", s.MaxDeviation),
		})
	}
	return series, table
}

func fig16Task() *train.Task { return train.NewTask(8, 4, 4096, 21) }

func maxDev(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// fig16Data changes the data-parallel degree 4 -> 8 / 4 -> 2 with
// consistent hyper-parameters and dataset position, re-partitioning the
// (replicated) state through the store path.
func fig16Data() Fig16Series {
	run := func(newDP int) []float64 {
		tr := train.NewTrainer(fig16Task(), fig16Hidden, fig16LR, fig16Mom, fig16Batch, 4, 3)
		tr.Run(fig16EventStep)
		if newDP != 4 {
			roundTripState(tr, parallel.Config{TP: 1, PP: 1, DP: 4}, parallel.Config{TP: 1, PP: 1, DP: newDP})
			tr.Rescale(newDP)
		}
		tr.Run(fig16Steps - fig16EventStep)
		return tr.Losses
	}
	s := Fig16Series{Dim: "data", EventStep: fig16EventStep,
		NoChange: run(4), Increase: run(8), Decrease: run(2)}
	s.MaxDeviation = math.Max(maxDev(s.NoChange, s.Increase), maxDev(s.NoChange, s.Decrease))
	return s
}

// fig16Pipeline changes the pipeline degree 1 -> 2 / 2 -> 1; pipeline
// repartitioning moves whole layer tensors between devices, so after
// the store round trip training must continue bit-identically.
func fig16Pipeline() Fig16Series {
	run := func(fromPP, toPP int) []float64 {
		tr := train.NewTrainer(fig16Task(), fig16Hidden, fig16LR, fig16Mom, fig16Batch, 1, 3)
		tr.Run(fig16EventStep)
		if fromPP != toPP {
			roundTripState(tr, parallel.Config{TP: 1, PP: fromPP, DP: 1}, parallel.Config{TP: 1, PP: toPP, DP: 1})
		}
		tr.Run(fig16Steps - fig16EventStep)
		return tr.Losses
	}
	s := Fig16Series{Dim: "pipeline", EventStep: fig16EventStep,
		NoChange: run(2, 2), Increase: run(1, 2), Decrease: run(2, 1)}
	s.MaxDeviation = math.Max(maxDev(s.NoChange, s.Increase), maxDev(s.NoChange, s.Decrease))
	return s
}

// roundTripState pushes the trainer's full state into per-device Tensor
// Stores under fromCfg, runs the real plan + State Transformer to
// toCfg, and reads the state back — the exact path a reconfigured job
// takes between training phases.
func roundTripState(tr *train.Trainer, fromCfg, toCfg parallel.Config) {
	cat := train.MLPCatalog(tr.Task.In, fig16Hidden, tr.Task.Classes)
	topo := cluster.OnPrem16()
	stores := map[cluster.DeviceID]store.Access{}
	for _, d := range topo.Devices {
		stores[d.ID] = store.Local{FS: store.NewMemFS()}
	}
	full := map[core.TensorID]*tensor.Tensor{}
	for name, t := range tr.State {
		full[core.TensorID(name)] = t
	}
	from := buildPTC(cat, fromCfg, topo.FirstN(fromCfg.WorldSize()))
	to := buildPTC(cat, toCfg, topo.FirstN(toCfg.WorldSize()))
	const job = "fig16"
	if err := transform.LoadPTC(job, from, stores, full); err != nil {
		panic(err)
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		panic(err)
	}
	trx := &transform.Transformer{Job: job, Stores: stores}
	if _, err := trx.Apply(plan); err != nil {
		panic(err)
	}
	back, err := transform.ReadPTC(job, to, stores)
	if err != nil {
		panic(err)
	}
	for id, t := range back {
		tr.State[string(id)] = t
	}
}

// fig16Tensor changes the tensor-parallel degree 4 -> 8 / 4 -> 2: the
// trainer really executes Megatron-style sharded steps, and the change
// re-shards parameters and momentum through the plan + transformer.
func fig16Tensor() Fig16Series {
	tk := fig16Task()
	cat := train.MLPCatalog(tk.In, fig16Hidden, tk.Classes)
	topo := cluster.OnPrem16()

	run := func(newTP int) []float64 {
		full := train.InitState(cat, 3)
		shards := train.ShardState(full, 4)
		cursor := train.NewTrainer(tk, fig16Hidden, fig16LR, fig16Mom, fig16Batch, 1, 3).Cursor

		var losses []float64
		step := func() {
			batch := cursor.NextBatch(tk.NumSamples, fig16Batch, 1)
			ids := batch[0].Samples
			x := tk.Features(ids)
			labels := tk.Labels(ids)
			losses = append(losses, train.TPStep(shards, x, labels, fig16LR, fig16Mom))
		}
		for i := 0; i < fig16EventStep; i++ {
			step()
		}
		if newTP != 4 {
			shards = reshardTP(topo, shards, 4, newTP)
		}
		for i := fig16EventStep; i < fig16Steps; i++ {
			step()
		}
		return losses
	}
	s := Fig16Series{Dim: "tensor", EventStep: fig16EventStep,
		NoChange: run(4), Increase: run(8), Decrease: run(2)}
	s.MaxDeviation = math.Max(maxDev(s.NoChange, s.Increase), maxDev(s.NoChange, s.Decrease))
	return s
}

// reshardTP moves live TP shard state (parameters and momentum) through
// the real store + plan + State Transformer path from tp-way to
// newTP-way sharding, and rebuilds the shard structs from the new
// per-device Tensor Stores.
func reshardTP(topo *cluster.Topology, shards []*train.TPShard, tp, newTP int) []*train.TPShard {
	tk := fig16Task()
	cat := train.MLPCatalog(tk.In, fig16Hidden, tk.Classes)
	from := buildPTC(cat, parallel.Config{TP: tp, PP: 1, DP: 1}, topo.FirstN(tp))
	to := buildPTC(cat, parallel.Config{TP: newTP, PP: 1, DP: 1}, topo.FirstN(newTP))

	stores := map[cluster.DeviceID]store.Access{}
	for _, d := range topo.Devices {
		stores[d.ID] = store.Local{FS: store.NewMemFS()}
	}
	const job = "fig16-tp"
	// Each TP rank uploads its live shard tensors as the from-PTC's
	// sub-tensors.
	for i, d := range from.Devices {
		for _, sub := range from.Place[d] {
			t, ok := shards[i].State[string(sub.Tensor)]
			if !ok {
				panic(fmt.Sprintf("experiments: shard %d missing %s", i, sub.Tensor))
			}
			if err := stores[d].Upload(transform.ModelPath(job, d, sub.Tensor), t); err != nil {
				panic(err)
			}
		}
	}
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		panic(err)
	}
	trx := &transform.Transformer{Job: job, Stores: stores}
	if _, err := trx.Apply(plan); err != nil {
		panic(err)
	}
	// Rebuild shards from the new placement.
	out := make([]*train.TPShard, newTP)
	for i, d := range to.Devices {
		st := map[string]*tensor.Tensor{}
		var lo, hi int
		for _, sub := range to.Place[d] {
			t, err := stores[d].Query(transform.ModelPath(job, d, sub.Tensor), nil)
			if err != nil {
				panic(err)
			}
			st[string(sub.Tensor)] = t
			if sub.Tensor == "fc1/weight" {
				lo, hi = sub.Region[0].Lo, sub.Region[0].Hi
			}
		}
		out[i] = &train.TPShard{Lo: lo, Hi: hi, State: st}
	}
	return out
}
