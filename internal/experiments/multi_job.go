package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/coordinator"
	"tenplex/internal/model"
	"tenplex/internal/sched"
)

// The multi-job cluster experiment goes beyond the paper's single-job
// evaluation: it exercises the cluster-side control plane the paper's
// scenario presumes (§2) — a scheduler arbitrating one shared cluster
// among many competing elastic DL jobs. The workload is a
// Philly-derived arrival trace on the 32-device cloud testbed with a
// mixed GPT/MoE job population and one injected fail-stop device
// failure. Models are reduced-scale so every reconfiguration moves
// real bytes through the Tensor Stores; times still come from the
// netsim bandwidth model.

// MultiJobSeed fixes the scenario's arrival trace; the whole simulation
// is deterministic for it.
const MultiJobSeed = 42

// multiJobModels is the rotating model mix assigned to arrivals.
func multiJobModels() []*model.Model {
	return []*model.Model{
		model.GPTCustom(6, 32, 2, 64, 8),
		model.MoECustom(3, 16, 4),
		model.GPTCustom(4, 16, 2, 32, 8),
	}
}

// BurstyBurstiness is the sched.ArrivalParams.Burstiness the bursty
// scenario variant uses: enough clumping to deepen contention (the
// admission queue keeps arbitrating) while keeping the same offered
// load as the steady trace.
const BurstyBurstiness = 0.3

// MultiJobScenario builds the shared multi-job workload on a cloud
// topology of the given device count (a multiple of 4): the topology,
// the job specs, and one injected device failure. tenplex-ctl's sim
// subcommand reuses it with caller-chosen sizes.
func MultiJobScenario(devices, jobs int, seed int64) (*cluster.Topology, []coordinator.JobSpec, []coordinator.FailureSpec) {
	return multiJobScenario(devices, jobs, seed, 0)
}

// MultiJobScenarioBursty is MultiJobScenario under bursty submissions
// (sched.ArrivalParams.Burstiness = BurstyBurstiness) at the same
// offered load: arrival clumps deepen the contention the coordinator
// has to arbitrate.
func MultiJobScenarioBursty(devices, jobs int, seed int64) (*cluster.Topology, []coordinator.JobSpec, []coordinator.FailureSpec) {
	return multiJobScenario(devices, jobs, seed, BurstyBurstiness)
}

func multiJobScenario(devices, jobs int, seed int64, burstiness float64) (*cluster.Topology, []coordinator.JobSpec, []coordinator.FailureSpec) {
	if jobs < 1 {
		panic(fmt.Sprintf("experiments: MultiJobScenario with %d jobs", jobs))
	}
	p := sched.DefaultArrivalParams()
	p.Jobs = jobs
	// Contended regime: overlapping mid-size jobs oversubscribe the 32
	// devices, so admission has to arbitrate and elasticity matters.
	p.MeanInterArrivalMin = 12
	p.MeanDurationMin = 90
	p.Sizes = []int{2, 4, 8, 16}
	p.SizeWeights = []float64{0.25, 0.35, 0.25, 0.15}
	p.Burstiness = burstiness
	arrivals, err := sched.Arrivals(p, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	models := multiJobModels()
	specs := coordinator.SpecsFromArrivals(arrivals, func(i int) *model.Model {
		return models[i%len(models)]
	})
	dev := cluster.DeviceID(7)
	if devices <= int(dev) {
		dev = cluster.DeviceID(devices - 1)
	}
	failures := []coordinator.FailureSpec{{TimeMin: 60, Device: dev}}
	return cluster.Cloud(devices), specs, failures
}

// MultiJobCluster runs the 12-job coordinator simulation and tabulates
// the per-job outcome.
func MultiJobCluster() (coordinator.Result, Table) {
	topo, specs, failures := MultiJobScenario(32, 12, MultiJobSeed)
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{})
	if err != nil {
		panic(fmt.Sprintf("experiments: multi-job run: %v", err))
	}
	tab := Table{
		ID:    "multijob",
		Title: fmt.Sprintf("Multi-job elastic cluster, %d jobs on %s", len(specs), topo.Name),
		Columns: []string{"job", "model", "req-GPUs", "arrival-min", "admit-min",
			"done-min", "resizes", "reconfig-s", "moved-MB", "completed"},
	}
	for _, js := range res.Jobs {
		tab.Rows = append(tab.Rows, []string{
			js.Name, js.Model, fmt.Sprintf("%d", js.GPUs),
			fmt.Sprintf("%.1f", js.ArrivalMin),
			fmt.Sprintf("%.1f", js.AdmitMin),
			fmt.Sprintf("%.1f", js.DoneMin),
			fmt.Sprintf("%d", js.Resizes),
			fmt.Sprintf("%.3f", js.ReconfigSec),
			fmt.Sprintf("%.1f", float64(js.MovedBytes)/1e6),
			fmt.Sprintf("%v", js.Completed),
		})
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("makespan %.1f min, mean cluster utilization %.2f", res.MakespanMin, res.MeanUtilization),
		fmt.Sprintf("aggregate reconfiguration time %.3f s over %d validated plans", res.ReconfigSecTotal, res.PlansValidated),
		fmt.Sprintf("%d timeline events, %d invariant sweeps, 1 injected device failure", len(res.Timeline), res.InvariantChecks),
		"every job's reassembled state is bit-verified against its initial tensors at completion",
	)
	return res, tab
}
