package experiments

import (
	"reflect"
	"testing"

	"tenplex/internal/coordinator"
)

// TestMultiJobClusterAcceptance is the end-to-end acceptance run for
// the coordinator subsystem: a deterministic 32-device simulation with
// >= 8 concurrent jobs sees arrivals, elastic resizes, one fail-stop
// failure and completions, with the no-double-lease and valid-plan
// invariants checked after every event inside coordinator.Run.
func TestMultiJobClusterAcceptance(t *testing.T) {
	res, tab := MultiJobCluster()
	if len(res.Jobs) < 8 {
		t.Fatalf("only %d jobs in the scenario, want >= 8", len(res.Jobs))
	}
	completed := 0
	for _, js := range res.Jobs {
		if js.Completed {
			completed++
		}
	}
	if completed < 8 {
		t.Fatalf("only %d jobs completed:\n%s", completed, res.Render())
	}
	kinds := map[string]int{}
	for _, e := range res.Timeline {
		kinds[e.Kind]++
	}
	if kinds[coordinator.EvAdmit] < 8 {
		t.Fatalf("only %d admissions", kinds[coordinator.EvAdmit])
	}
	resizes := kinds[coordinator.EvScaleIn] + kinds[coordinator.EvScaleOut] + kinds[coordinator.EvRedeploy]
	if resizes == 0 {
		t.Fatalf("no elastic resizes in the run:\n%s", res.Render())
	}
	if kinds[coordinator.EvFailure] != 1 || kinds[coordinator.EvRecover] != 1 {
		t.Fatalf("failure/recover = %d/%d, want 1/1", kinds[coordinator.EvFailure], kinds[coordinator.EvRecover])
	}
	// Every resize and recovery generated a validated plan, and the
	// ledger + PTC invariants were swept after every processed event.
	if res.PlansValidated < resizes+kinds[coordinator.EvRecover] {
		t.Fatalf("%d validated plans for %d changes", res.PlansValidated, resizes+1)
	}
	if res.InvariantChecks == 0 {
		t.Fatal("no invariant sweeps ran")
	}
	if res.MeanUtilization <= 0.2 || res.MeanUtilization > 1 {
		t.Fatalf("implausible mean utilization %.3f", res.MeanUtilization)
	}
	if len(tab.Rows) != len(res.Jobs) || len(tab.Notes) == 0 {
		t.Fatalf("table shape: %d rows, %d notes", len(tab.Rows), len(tab.Notes))
	}
}

// TestMultiJobClusterDeterministic: repeated runs with the same seed
// yield identical timelines.
func TestMultiJobClusterDeterministic(t *testing.T) {
	r1, _ := MultiJobCluster()
	r2, _ := MultiJobCluster()
	if !reflect.DeepEqual(r1.Timeline, r2.Timeline) {
		t.Fatal("same-seed runs produced different timelines")
	}
	if !reflect.DeepEqual(r1.Jobs, r2.Jobs) {
		t.Fatal("same-seed runs produced different job summaries")
	}

	topo, specs, failures := MultiJobScenario(32, 12, MultiJobSeed+1)
	r3, err := coordinator.Run(topo, specs, failures, coordinator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Timeline, r3.Timeline) {
		t.Fatal("different seeds produced identical timelines")
	}
}
