package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/parallel"
)

// Ablations isolate the design choices DESIGN.md calls out: allocation
// alignment, locality-aware source selection, and sub-tensor range
// queries. Each row compares the optimization on vs. off on the same
// reconfiguration.

// AblationRow is one on/off comparison.
type AblationRow struct {
	Name    string
	Metric  string
	WithOpt float64
	Without float64
}

// AblationAlignment measures the effect of core.AlignDevices on a
// pipeline-degree doubling: without it almost every stage shifts to a
// different device.
func AblationAlignment() (AblationRow, error) {
	topo := cluster.OnPrem16()
	m := gptWithOpt("1.3B")
	from := buildPTC(m, parallel.Config{TP: 2, PP: 4, DP: 1}, topo.FirstN(8))
	to := buildPTC(m, parallel.Config{TP: 2, PP: 8, DP: 1}, topo.FirstN(16))

	planRaw, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		return AblationRow{}, err
	}
	aligned := core.AlignDevices(from, to)
	planAligned, err := core.GeneratePlan(from, aligned, core.PlanOptions{Topo: topo})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:    "allocation alignment (PP 4->8, GPT-3 XL)",
		Metric:  "GB moved",
		WithOpt: float64(planAligned.Stats(topo).MovedBytes) / 1e9,
		Without: float64(planRaw.Stats(topo).MovedBytes) / 1e9,
	}, nil
}

// AblationLocality measures topology-aware source selection: creating a
// new data-parallel replica on a worker that already hosts one replica
// should fetch intra-worker, not across the network.
func AblationLocality() (AblationRow, error) {
	topo := cluster.OnPrem16()
	m := gptWithOpt("1.3B")
	// Replicas on devices 0 (worker 0) and 4 (worker 1); the new
	// replica lands on device 1 (worker 0).
	from := buildPTC(m, parallel.Config{TP: 1, PP: 1, DP: 2}, cluster.Allocation{0, 4})
	to := buildPTC(m, parallel.Config{TP: 1, PP: 1, DP: 3}, cluster.Allocation{0, 4, 1})

	withTopo, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		return AblationRow{}, err
	}
	withoutTopo, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:    "locality-aware sources (DP 2->3, replica on same worker)",
		Metric:  "cross-worker GB",
		WithOpt: float64(withTopo.Stats(topo).CrossWorkerBytes) / 1e9,
		Without: float64(withoutTopo.Stats(topo).CrossWorkerBytes) / 1e9,
	}, nil
}

// AblationRangeQueries measures the sub-tensor range-query API (§5.2):
// without it, a re-slicing fetch must pull the whole source sub-tensor
// and cut it locally, doubling wire traffic on a TP doubling.
func AblationRangeQueries() (AblationRow, error) {
	topo := cluster.OnPrem16()
	m := gptWithOpt("1.3B")
	from := buildPTC(m, parallel.Config{TP: 4, PP: 2, DP: 1}, topo.FirstN(8))
	to := buildPTC(m, parallel.Config{TP: 8, PP: 2, DP: 1}, topo.FirstN(16))
	to = core.AlignDevices(from, to)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		return AblationRow{}, err
	}
	var ranged, whole int64
	for _, a := range plan.Assignments {
		meta := plan.To.Tensors[a.Tensor]
		for _, f := range a.Fetch {
			if f.Src.Kind != core.FromDevice || f.Src.Device == a.Device {
				continue
			}
			ranged += f.Want.NumBytes(meta.DType)
			whole += f.Src.Region.NumBytes(meta.DType)
		}
	}
	return AblationRow{
		Name:    "sub-tensor range queries (TP 4->8, GPT-3 XL)",
		Metric:  "GB on the wire",
		WithOpt: float64(ranged) / 1e9,
		Without: float64(whole) / 1e9,
	}, nil
}

// Ablations runs every ablation and renders them.
func Ablations() ([]AblationRow, Table, error) {
	table := Table{
		ID:      "ablations",
		Title:   "Design-choice ablations (optimization on vs off)",
		Columns: []string{"optimization", "metric", "with", "without", "saving"},
	}
	var rows []AblationRow
	for _, f := range []func() (AblationRow, error){
		AblationAlignment, AblationLocality, AblationRangeQueries,
	} {
		r, err := f()
		if err != nil {
			return nil, table, err
		}
		rows = append(rows, r)
		saving := "-"
		if r.Without > 0 {
			saving = fmt.Sprintf("%.0f%%", (1-r.WithOpt/r.Without)*100)
		}
		table.Rows = append(table.Rows, []string{
			r.Name, r.Metric,
			fmt.Sprintf("%.2f", r.WithOpt), fmt.Sprintf("%.2f", r.Without), saving,
		})
	}
	return rows, table, nil
}
