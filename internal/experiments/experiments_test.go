package experiments

import (
	"math"
	"strings"
	"testing"

	"tenplex/internal/parallel"
)

// Every test here asserts the *qualitative shape* the paper reports:
// who wins, by roughly what factor, where crossovers fall. Absolute
// numbers differ (our substrate is a simulator, not the authors'
// testbed) and are recorded in EXPERIMENTS.md.

func TestTab1TenplexRow(t *testing.T) {
	rows, table := Tab1SystemComparison()
	last := rows[len(rows)-1]
	if last.System != "Tenplex" || last.ReconfigOverhead != "minimal state" {
		t.Fatalf("tenplex row wrong: %+v", last)
	}
	if last.DynamicDP != "yes" || last.DynamicPP != "yes" || last.DynamicTP != "yes" {
		t.Fatal("tenplex must support all dynamic dimensions")
	}
	if len(table.Rows) != 11 {
		t.Fatalf("table has %d rows", len(table.Rows))
	}
	// Only Tenplex reaches minimal state.
	for _, r := range rows[:len(rows)-1] {
		if r.ReconfigOverhead == "minimal state" {
			t.Fatalf("%s also claims minimal state", r.System)
		}
	}
	if !strings.Contains(table.Render(), "Tenplex") {
		t.Fatal("render missing rows")
	}
}

func TestFig2aOverfitAfterInconsistentAccess(t *testing.T) {
	res, _ := Fig2aDatasetConsistency()
	var statAfter, dynAfter float64
	n := 0
	for _, p := range res.Points {
		if p.Step >= res.EventStep {
			statAfter += p.Static
			dynAfter += p.Dynamic
			n++
		}
	}
	if n == 0 || dynAfter/float64(n) >= statAfter/float64(n) {
		t.Fatalf("dynamic run should overfit below static: dyn %.4f vs stat %.4f",
			dynAfter/float64(n), statAfter/float64(n))
	}
	// Before the event both runs are identical.
	for _, p := range res.Points[:res.EventStep] {
		if math.Abs(p.Static-p.Dynamic) > 1e-12 {
			t.Fatal("runs diverge before the event")
		}
	}
}

func TestFig2bDivergenceWithConstantDeviceBatch(t *testing.T) {
	res, _ := Fig2bBatchConsistency()
	var statAfter, dynAfter float64
	n := 0
	for _, p := range res.Points {
		if p.Step >= res.EventStep+5 {
			statAfter += p.Static
			dynAfter += p.Dynamic
			n++
		}
	}
	if dynAfter/float64(n) <= statAfter/float64(n)*1.05 {
		t.Fatalf("inconsistent batch size should diverge upward: dyn %.4f vs stat %.4f",
			dynAfter/float64(n), statAfter/float64(n))
	}
}

func TestFig3SweepShape(t *testing.T) {
	rows, table := Fig3ParallelizationSweep()
	if len(table.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	check := func(modelName string) {
		var feas []Fig3Row
		for _, r := range rows {
			if r.Model == modelName && r.Feasible {
				feas = append(feas, r)
			}
		}
		if len(feas) < 5 {
			t.Fatalf("%s: only %d feasible configs", modelName, len(feas))
		}
		best, worst := feas[0], feas[len(feas)-1]
		if best.SamplesSec < 10*worst.SamplesSec {
			t.Fatalf("%s: spread %.1fx < 10x", modelName, best.SamplesSec/worst.SamplesSec)
		}
		if worst.Config != "(T=16,P=1,D=1)" {
			t.Fatalf("%s: worst = %s, want (T=16,P=1,D=1)", modelName, worst.Config)
		}
	}
	check("gpt3-2.7b")
	check("bert-large-340m")
	// (2,4,2) in the GPT top 3.
	rank := -1
	i := 0
	for _, r := range rows {
		if r.Model == "gpt3-2.7b" && r.Feasible {
			if r.Config == "(T=2,P=4,D=2)" {
				rank = i
			}
			i++
		}
	}
	if rank < 0 || rank > 2 {
		t.Fatalf("(2,4,2) rank = %d for GPT-3 2.7B", rank)
	}
}

func TestFig9ElasticShape(t *testing.T) {
	rows, table := Fig9ElasticConvergence(1)
	if len(rows) != 3 {
		t.Fatalf("%d systems", len(rows))
	}
	tenplex, dp, torch := rows[0], rows[1], rows[2]
	if tenplex.System != "Tenplex" || dp.System != "Tenplex-DP" {
		t.Fatalf("row order: %s, %s, %s", tenplex.System, dp.System, torch.System)
	}
	// Tenplex makes the most progress; DP-only systems pause at 4 GPUs.
	if tenplex.FinalSteps <= dp.FinalSteps || tenplex.FinalSteps <= torch.FinalSteps {
		t.Fatalf("tenplex %0.f steps should lead (dp %0.f, torch %0.f)",
			tenplex.FinalSteps, dp.FinalSteps, torch.FinalSteps)
	}
	if tenplex.PausedMin != 0 {
		t.Fatalf("tenplex paused %.0f min", tenplex.PausedMin)
	}
	if dp.PausedMin <= 0 || torch.PausedMin <= 0 {
		t.Fatal("DP-only systems must pause at 4 GPUs")
	}
	// Tenplex reaches the slowest system's final step substantially
	// earlier (paper: 46% less time; accept 25–65%).
	slowest := math.Max(dp.MinToTarget, torch.MinToTarget)
	red := 1 - tenplex.MinToTarget/slowest
	if red < 0.25 || red > 0.65 {
		t.Fatalf("time reduction %.0f%%, want 25–65%% (tenplex %.0f min, slowest %.0f min)",
			red*100, tenplex.MinToTarget, slowest)
	}
	// Torch reconfigures slower than Tenplex overall.
	if torch.ReconfigSec <= tenplex.ReconfigSec {
		t.Fatalf("torch downtime %.0fs should exceed tenplex %.0fs", torch.ReconfigSec, tenplex.ReconfigSec)
	}
	if len(table.Rows) != 3 {
		t.Fatal("table rows")
	}
	// Perplexity mapping is monotone decreasing.
	if PerplexityAt(0) <= PerplexityAt(10000) {
		t.Fatal("perplexity curve not decreasing")
	}
}

func TestFig10RedeploymentShape(t *testing.T) {
	rows, _ := Fig10Redeployment()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// Paper: Central ≈ 1.9–2.1× slower; accept 1.5–5×.
		if r.CentralOver < 1.5 || r.CentralOver > 5 {
			t.Fatalf("%s: central overhead %.1fx outside [1.5,5]", r.ModelSize, r.CentralOver)
		}
		if i > 0 && r.TenplexSec <= rows[i-1].TenplexSec {
			t.Fatalf("redeployment time must grow with model size: %+v", rows)
		}
	}
}

func TestFig11FailureRecoveryShape(t *testing.T) {
	rows, _ := Fig11FailureRecovery()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows[:2] { // 4 and 8 failures: replica survives
		if !r.UsedReplica {
			t.Fatalf("%d failures should recover from a replica", r.FailedGPUs)
		}
		// Paper: ≈ 5% of baseline; accept < 15%.
		if r.TenplexSec > 0.15*r.BaselineSec {
			t.Fatalf("%d failures: tenplex %.1fs not << baseline %.1fs", r.FailedGPUs, r.TenplexSec, r.BaselineSec)
		}
	}
	last := rows[2] // 12 failures: no replica
	if last.UsedReplica {
		t.Fatal("12 failures should exhaust replicas")
	}
	if last.TenplexSec >= last.BaselineSec {
		t.Fatal("tenplex should keep a small edge even via checkpoint")
	}
	if last.TenplexSec < 0.5*last.BaselineSec {
		t.Fatalf("checkpoint-path recovery should be the same order as baseline: %.1f vs %.1f",
			last.TenplexSec, last.BaselineSec)
	}
}

func TestFig12ReconfigShape(t *testing.T) {
	rows, _ := Fig12ReconfigOverhead()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TenplexSec >= r.DeepSpeed || r.TenplexSec >= r.Singularity {
			t.Fatalf("%s: tenplex %.1fs must beat deepspeed %.1fs and singularity %.1fs",
				r.Direction, r.TenplexSec, r.DeepSpeed, r.Singularity)
		}
	}
	// Scale-in saves more than scale-out vs DeepSpeed (paper: 64% vs
	// 24% reduction), because a replica already exists at the target.
	out, in := rows[0], rows[1]
	redOut := 1 - out.TenplexSec/out.DeepSpeed
	redIn := 1 - in.TenplexSec/in.DeepSpeed
	if redIn <= redOut {
		t.Fatalf("scale-in reduction %.0f%% should exceed scale-out %.0f%%", redIn*100, redOut*100)
	}
}

func TestFig13ThroughputShape(t *testing.T) {
	rows, _ := Fig13HorovodThroughput()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	horovod, elastic, tenplex := rows[0], rows[1], rows[2]
	// Tenplex ≈ Horovod (within 3%), Elastic below both.
	if tenplex.SamplesSec < 0.97*horovod.SamplesSec {
		t.Fatalf("tenplex %.0f should be within 3%% of horovod %.0f", tenplex.SamplesSec, horovod.SamplesSec)
	}
	if elastic.SamplesSec >= tenplex.SamplesSec {
		t.Fatal("horovod-elastic should pay more overhead than tenplex")
	}
	// Magnitude sanity: hundreds of samples/s like the paper's 417–437.
	if horovod.SamplesSec < 200 || horovod.SamplesSec > 900 {
		t.Fatalf("horovod %.0f samples/s outside plausible range", horovod.SamplesSec)
	}
}

func TestFig14ParallelizationTypeShape(t *testing.T) {
	rows, _ := Fig14ParallelizationType()
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	byDim := map[string][]Fig14Row{}
	for _, r := range rows {
		byDim[r.Dim] = append(byDim[r.Dim], r)
	}
	for dim, rs := range byDim {
		for i, r := range rs {
			if r.CentralSec <= r.TenplexSec {
				t.Fatalf("%s %s: central %.1f not slower than tenplex %.1f", dim, r.ModelSize, r.CentralSec, r.TenplexSec)
			}
			if i > 0 && r.TenplexSec <= rs[i-1].TenplexSec {
				t.Fatalf("%s: time must grow with model size", dim)
			}
		}
		// Paper: at 6.7B Central is 3.5–4× slower; accept 2–6×.
		big := rs[2]
		ratio := big.CentralSec / big.TenplexSec
		if ratio < 2 || ratio > 6 {
			t.Fatalf("%s 6.7B: central/tenplex = %.1fx outside [2,6]", dim, ratio)
		}
	}
}

func TestFig15ClusterSizeShape(t *testing.T) {
	rows, _ := Fig15ClusterSize()
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	byDim := map[string][]Fig15Row{}
	for _, r := range rows {
		byDim[r.Dim] = append(byDim[r.Dim], r)
	}
	dp, pp, tp := byDim["data"], byDim["pipeline"], byDim["tensor"]
	// DP: moved bytes grow linearly with the degree (the paper's
	// underlying effect), and time never shrinks.
	if !(dp[0].MovedGB < dp[1].MovedGB && dp[1].MovedGB < dp[2].MovedGB) {
		t.Fatalf("DP moved bytes should grow: %+v", dp)
	}
	if dp[2].MovedGB < 3.5*dp[0].MovedGB {
		t.Fatalf("DP bytes should grow ~linearly: %+v", dp)
	}
	if dp[1].TenplexSec < 0.95*dp[0].TenplexSec || dp[2].TenplexSec < 0.95*dp[1].TenplexSec {
		t.Fatalf("DP times should not shrink: %+v", dp)
	}
	// PP and TP: time decreases with device count.
	if !(pp[0].TenplexSec > pp[1].TenplexSec && pp[1].TenplexSec > pp[2].TenplexSec) {
		t.Fatalf("PP times should shrink: %+v", pp)
	}
	if !(tp[0].TenplexSec > tp[1].TenplexSec && tp[1].TenplexSec > tp[2].TenplexSec) {
		t.Fatalf("TP times should shrink: %+v", tp)
	}
	// TP costs more than PP at the same scale (split/merge work).
	for i := range tp {
		if tp[i].TenplexSec <= pp[i].TenplexSec {
			t.Fatalf("TP (%.1fs) should exceed PP (%.1fs) at %s", tp[i].TenplexSec, pp[i].TenplexSec, tp[i].Transition)
		}
	}
}

func TestFig16ConvergenceUnaffected(t *testing.T) {
	series, _ := Fig16Convergence()
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.NoChange) != fig16Steps || len(s.Increase) != fig16Steps || len(s.Decrease) != fig16Steps {
			t.Fatalf("%s: wrong series length", s.Dim)
		}
		// Before the event all runs are identical.
		for i := 0; i < s.EventStep; i++ {
			if s.NoChange[i] != s.Increase[i] || s.NoChange[i] != s.Decrease[i] {
				t.Fatalf("%s: runs diverge before the event at step %d", s.Dim, i)
			}
		}
		// After the event, convergence is unaffected: deviations stay
		// at floating-point-reassociation scale, far below the loss.
		if s.MaxDeviation > 1e-6 {
			t.Fatalf("%s: max deviation %.2e too large", s.Dim, s.MaxDeviation)
		}
		// And training actually converges.
		if s.NoChange[fig16Steps-1] >= s.NoChange[0] {
			t.Fatalf("%s: no convergence", s.Dim)
		}
	}
}

func TestTableRender(t *testing.T) {
	table := Table{
		ID: "x", Title: "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	out := table.Render()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConfigsUsedAreValid(t *testing.T) {
	// The Fig. 9 configuration trajectory from the paper must validate.
	m := gptWithOpt("1.3B")
	for _, c := range []parallel.Config{{TP: 2, PP: 4, DP: 2}, {TP: 2, PP: 4, DP: 1}, {TP: 2, PP: 2, DP: 1}} {
		if err := c.Validate(c.WorldSize(), m); err != nil {
			t.Fatal(err)
		}
	}
}
