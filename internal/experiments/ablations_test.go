package experiments

import "testing"

func TestAblationAlignmentSaves(t *testing.T) {
	r, err := AblationAlignment()
	if err != nil {
		t.Fatal(err)
	}
	if r.WithOpt >= r.Without {
		t.Fatalf("alignment does not help: %.2f vs %.2f GB", r.WithOpt, r.Without)
	}
	if r.WithOpt > 0.7*r.Without {
		t.Fatalf("alignment saving too small: %.2f of %.2f GB", r.WithOpt, r.Without)
	}
}

func TestAblationLocalitySaves(t *testing.T) {
	r, err := AblationLocality()
	if err != nil {
		t.Fatal(err)
	}
	if r.WithOpt != 0 {
		t.Fatalf("locality-aware plan still crossed workers: %.2f GB", r.WithOpt)
	}
	if r.Without <= 0 {
		t.Fatal("naive plan should cross workers")
	}
}

func TestAblationRangeQueriesSave(t *testing.T) {
	r, err := AblationRangeQueries()
	if err != nil {
		t.Fatal(err)
	}
	// A TP doubling needs exactly half of each source sub-tensor:
	// whole-tensor fetches move ~2x the bytes.
	if r.Without < 1.8*r.WithOpt {
		t.Fatalf("range queries should halve traffic: %.2f vs %.2f GB", r.WithOpt, r.Without)
	}
}

func TestAblationsTable(t *testing.T) {
	rows, table, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(table.Rows) != 3 {
		t.Fatalf("%d ablations", len(rows))
	}
	for _, r := range rows {
		if r.WithOpt >= r.Without {
			t.Fatalf("%s: no saving (%.2f vs %.2f)", r.Name, r.WithOpt, r.Without)
		}
	}
}
