package experiments

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

// Fig15Row is one bar of Fig. 15: reconfiguration time for doubling one
// parallelism dimension at a given cluster size.
type Fig15Row struct {
	Dim        string
	Transition string // e.g. "4 to 8"
	TenplexSec float64
	MovedGB    float64
}

// Fig15ClusterSize reproduces Fig. 15: GPT-3 XL on the 32-GPU cloud
// testbed, scaling 4->8, 8->16 and 16->32 devices by doubling one
// parallelism dimension at a time:
//
//	data:     (2,2,D) with D = N/4
//	pipeline: (2,P,1) with P = N/2
//	tensor:   (T,2,1) with T = N/2
//
// The paper's qualitative findings: DP reconfiguration time *increases*
// with device count (replicas grow with the degree), PP and TP times
// *decrease* (state is constant while aggregate bandwidth grows), DP is
// the most expensive dimension overall, and TP costs more than PP
// because sub-tensors must be split and merged.
func Fig15ClusterSize() ([]Fig15Row, Table) {
	topo := cluster.Cloud32()
	m := gptWithOpt("1.3B")

	cfgFor := func(dim string, n int) parallel.Config {
		switch dim {
		case "data":
			return parallel.Config{TP: 2, PP: 2, DP: n / 4}
		case "pipeline":
			return parallel.Config{TP: 2, PP: n / 2, DP: 1}
		case "tensor":
			return parallel.Config{TP: n / 2, PP: 2, DP: 1}
		}
		panic("experiments: unknown dim " + dim)
	}

	var rows []Fig15Row
	table := Table{
		ID:      "fig15",
		Title:   "Reconfiguration time vs cluster size (GPT-3 XL, 32-GPU cloud)",
		Columns: []string{"dim", "devices", "tenplex(s)", "moved(GB)"},
		Notes: []string{
			"paper: DP time grows with device count; PP and TP shrink; TP > PP (split/merge)",
			"our planner creates new DP replicas from all existing replicas in parallel,",
			"so DP *bytes* grow linearly with the degree (as in the paper) while DP *time*",
			"stays near-flat; the paper's implementation serializes more and shows time growth",
		},
	}
	for _, dim := range []string{"data", "pipeline", "tensor"} {
		for _, n := range []int{4, 8, 16} {
			from := buildPTC(m, cfgFor(dim, n), topo.FirstN(n))
			to := buildPTC(m, cfgFor(dim, 2*n), topo.FirstN(2*n))
			sec, st := reconfigSeconds(topo, from, to, false)
			tr := fmt.Sprintf("%d to %d", n, 2*n)
			moved := float64(st.MovedBytes) / 1e9
			rows = append(rows, Fig15Row{Dim: dim, Transition: tr, TenplexSec: sec, MovedGB: moved})
			table.Rows = append(table.Rows, []string{dim, tr, secs(sec), fmt.Sprintf("%.1f", moved)})
		}
	}
	return rows, table
}
