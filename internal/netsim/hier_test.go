package netsim

import (
	"strings"
	"testing"

	"tenplex/internal/cluster"
)

// Hierarchical fabric accounting: cross-rack flows must occupy the
// shared rack uplinks (and cross-pod flows the spine ports) so that
// many concurrent transfers saturate the oversubscribed fabric, while
// flat topologies keep pricing byte-identically to the two-level
// model.

func hierResources(r Result) []string {
	var out []string
	for name := range r.PerResourceSeconds {
		if strings.HasPrefix(name, "rack-") || strings.HasPrefix(name, "pod-") {
			out = append(out, name)
		}
	}
	return out
}

func TestSimulateHierarchicalUplinks(t *testing.T) {
	topo := cluster.Datacenter(512) // 64 workers, 16 racks, 2 pods
	const mb = int64(1 << 20)

	// Cross-pod: device 0 (worker 0, rack 0, pod 0) → device 256
	// (worker 32, rack 8, pod 1) loads both rack uplinks and both spine
	// ports.
	r := Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(256), Bytes: 64 * mb}})
	for _, res := range []string{"rack-out[w0]", "rack-in[w8]", "pod-out[w0]", "pod-in[w1]"} {
		if r.PerResourceSeconds[res] <= 0 {
			t.Fatalf("cross-pod flow did not load %s (loaded: %v)", res, hierResources(r))
		}
	}

	// Cross-rack within a pod: device 0 → device 32 (worker 4, rack 1,
	// pod 0) loads rack uplinks but no spine ports.
	r = Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(32), Bytes: 64 * mb}})
	if r.PerResourceSeconds["rack-out[w0]"] <= 0 || r.PerResourceSeconds["rack-in[w1]"] <= 0 {
		t.Fatalf("cross-rack flow did not load the rack uplinks (loaded: %v)", hierResources(r))
	}
	for name := range r.PerResourceSeconds {
		if strings.HasPrefix(name, "pod-") {
			t.Fatalf("intra-pod flow loaded spine resource %s", name)
		}
	}

	// Same rack, different workers: NICs only, no fabric resources.
	r = Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(8), Bytes: 64 * mb}})
	if res := hierResources(r); len(res) != 0 {
		t.Fatalf("same-rack flow loaded fabric resources %v", res)
	}

	// Flat topologies never see fabric resources.
	flat := cluster.Cloud32()
	r = Simulate(flat, []Flow{{From: DevEP(0), To: DevEP(17), Bytes: 64 * mb}})
	if res := hierResources(r); len(res) != 0 {
		t.Fatalf("flat topology loaded fabric resources %v", res)
	}
}

func TestSimulateUplinkSaturation(t *testing.T) {
	topo := cluster.Datacenter(512)
	const mb = int64(1 << 20)
	// 16 concurrent cross-pod flows from distinct rack-0 workers: per-NIC
	// load stays one flow, but the shared pod uplink carries all 16 —
	// under 4:1 spine oversubscription it must become the bottleneck.
	var flows []Flow
	for i := 0; i < 4; i++ { // 4 source workers in rack 0
		for j := 0; j < 4; j++ {
			src := cluster.DeviceID(i*8 + j)
			dst := cluster.DeviceID(256 + (i*4+j)*8) // distinct pod-1 workers
			flows = append(flows, Flow{From: DevEP(src), To: DevEP(dst), Bytes: 64 * mb})
		}
	}
	r := Simulate(topo, flows)
	if !strings.HasPrefix(r.BottleneckResource, "rack-out") && !strings.HasPrefix(r.BottleneckResource, "pod-") {
		t.Fatalf("16-way cross-pod fan-out bottleneck = %s, want an oversubscribed fabric resource (top: %v)",
			r.BottleneckResource, r.TopResources(4))
	}
}

func TestAllReduceHierarchyPenalty(t *testing.T) {
	topo := cluster.Datacenter(512)
	const gb = int64(1 << 30)
	// A rack-local ring (workers 0-3) beats the same-size ring spread
	// across pods: the spread ring's worst link is the 4:1 spine.
	local := []cluster.DeviceID{0, 8, 16, 24}
	spread := []cluster.DeviceID{0, 128, 256, 384}
	tl := AllReduceTime(topo, local, gb)
	ts := AllReduceTime(topo, spread, gb)
	if !(ts > tl) {
		t.Fatalf("cross-pod all-reduce (%.3fs) must be slower than rack-local (%.3fs)", ts, tl)
	}
	// Island-local beats cross-island within a node.
	island := []cluster.DeviceID{0, 1, 2, 3}
	node := []cluster.DeviceID{0, 2, 4, 6}
	if ti, tn := AllReduceTime(topo, island, gb), AllReduceTime(topo, node, gb); !(tn > ti) {
		t.Fatalf("cross-island all-reduce (%.3fs) must be slower than island-local (%.3fs)", tn, ti)
	}
}
