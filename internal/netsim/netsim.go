// Package netsim converts the byte counts of a reconfiguration plan into
// transfer times on a cluster.Topology. It substitutes for the physical
// network fabric of the paper's testbeds.
//
// The model is a bottleneck (hose) model: every flow consumes capacity on
// the resources along its path — source NIC egress, destination NIC
// ingress, the intra-worker interconnect, the remote-storage link, and
// host-memory copy bandwidth at both endpoints for split/merge work. All
// flows run concurrently, so the completion time of the whole transfer
// set is the maximum, over all resources, of (total bytes through the
// resource / resource bandwidth), plus a per-round latency term. This is
// exact for max-min fair sharing when flows are long-lived, which
// reconfiguration transfers (hundreds of MB to GB) are; and it preserves
// precisely the effects the paper's evaluation hinges on: a central node
// becomes an ingress/egress bottleneck (Figs. 10, 14), per-worker
// parallelism divides NIC load (Fig. 15), and split/merge memcopies make
// tensor-parallel reconfiguration dearer than pipeline-parallel
// repartitioning (Fig. 15b vs. 15c).
package netsim

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
)

// EndpointKind discriminates flow endpoints.
type EndpointKind int

const (
	// Dev is a GPU device endpoint (its host's memory, reached through
	// the worker NIC from outside).
	Dev EndpointKind = iota
	// Storage is the remote blob store that holds datasets and persisted
	// checkpoints.
	Storage
)

// Endpoint is one side of a Flow.
type Endpoint struct {
	Kind   EndpointKind
	Device cluster.DeviceID // valid when Kind == Dev
}

// DevEP returns a device endpoint.
func DevEP(id cluster.DeviceID) Endpoint { return Endpoint{Kind: Dev, Device: id} }

// StorageEP returns the remote-storage endpoint.
func StorageEP() Endpoint { return Endpoint{Kind: Storage} }

// Flow is one logical transfer of Bytes from From to To. CopyBytes adds
// host-memory copy work (splitting and merging sub-tensors) accounted at
// both endpoints' workers.
type Flow struct {
	From      Endpoint
	To        Endpoint
	Bytes     int64
	CopyBytes int64
}

// Result reports the outcome of a simulation.
type Result struct {
	// Seconds is the completion time of the whole flow set.
	Seconds float64
	// BottleneckResource names the resource that determined Seconds.
	BottleneckResource string
	// TotalBytes is the sum of flow payloads (excluding copy work).
	TotalBytes int64
	// PerResourceSeconds breaks down the occupancy of every loaded
	// resource.
	PerResourceSeconds map[string]float64
}

// resource accumulates load (bytes) against a named capacity.
type resource struct {
	name string
	bw   float64
	load int64
}

// Simulate computes the completion time of flows on topo. Flows between
// the same device are free apart from memcopy work. A zero flow set
// completes instantly.
func Simulate(topo *cluster.Topology, flows []Flow) Result {
	type key struct {
		kind   string
		worker int
	}
	res := map[key]*resource{}
	get := func(kind string, worker int, bw float64) *resource {
		k := key{kind, worker}
		r, ok := res[k]
		if !ok {
			r = &resource{name: fmt.Sprintf("%s[w%d]", kind, worker), bw: bw}
			res[k] = r
		}
		return r
	}

	var total int64
	anyNet := false
	for _, f := range flows {
		if f.Bytes < 0 || f.CopyBytes < 0 {
			panic(fmt.Sprintf("netsim: negative flow size %+v", f))
		}
		total += f.Bytes

		switch {
		case f.From.Kind == Storage && f.To.Kind == Storage:
			panic("netsim: storage-to-storage flow")
		case f.From.Kind == Storage || f.To.Kind == Storage:
			var devSide Endpoint
			if f.From.Kind == Storage {
				devSide = f.To
			} else {
				devSide = f.From
			}
			w := topo.WorkerOf(devSide.Device)
			get("storage", w, topo.StorageBW).load += f.Bytes
			if f.From.Kind == Storage {
				get("nic-in", w, topo.WorkerNetBW(w)).load += f.Bytes
			} else {
				get("nic-out", w, topo.WorkerNetBW(w)).load += f.Bytes
			}
			anyNet = anyNet || f.Bytes > 0
		default:
			src, dst := f.From.Device, f.To.Device
			ws, wd := topo.WorkerOf(src), topo.WorkerOf(dst)
			switch {
			case src == dst:
				// Local: only copy work applies (below).
			case ws == wd:
				bw := topo.IntraBW(src, dst)
				get("intra", ws, bw).load += f.Bytes
			default:
				// Reconfiguration traffic is priced against each worker's
				// CURRENT NIC bandwidth, so an active link degradation
				// (chaos.LinkDegrade) slows transfers through that worker.
				// The perfmodel's steady-state estimates (AllReduceTime,
				// PointToPointTime) deliberately stay on the nominal NetBW:
				// placement decisions should not churn with transient link
				// weather, only reconfiguration cost does.
				get("nic-out", ws, topo.WorkerNetBW(ws)).load += f.Bytes
				get("nic-in", wd, topo.WorkerNetBW(wd)).load += f.Bytes
				anyNet = anyNet || f.Bytes > 0
				// Hierarchical fabric: flows leaving the rack also occupy
				// the shared rack uplinks, and flows leaving the pod the
				// shared per-pod spine ports — so many concurrent
				// cross-rack transfers saturate the oversubscribed fabric,
				// not just their endpoints' NICs. Flat topologies (Hier
				// nil) take none of these loads and price byte-identically
				// to the pre-hierarchy model.
				if h := topo.Hier; h != nil {
					rs, rd := topo.RackOf(ws), topo.RackOf(wd)
					if rs != rd {
						get("rack-out", rs, h.RackUplinkBW).load += f.Bytes
						get("rack-in", rd, h.RackUplinkBW).load += f.Bytes
						ps, pd := topo.PodOf(ws), topo.PodOf(wd)
						if ps != pd {
							get("pod-out", ps, h.PodUplinkBW).load += f.Bytes
							get("pod-in", pd, h.PodUplinkBW).load += f.Bytes
						}
					}
				}
			}
		}

		if f.CopyBytes > 0 {
			if f.From.Kind == Dev {
				get("memcpy", topo.WorkerOf(f.From.Device), topo.MemCopyBW).load += f.CopyBytes
			}
			if f.To.Kind == Dev {
				get("memcpy", topo.WorkerOf(f.To.Device), topo.MemCopyBW).load += f.CopyBytes
			}
		}
	}

	out := Result{
		TotalBytes:         total,
		PerResourceSeconds: map[string]float64{},
	}
	for _, r := range res {
		if r.load == 0 {
			continue
		}
		secs := float64(r.load) / r.bw
		out.PerResourceSeconds[r.name] = secs
		if secs > out.Seconds {
			out.Seconds = secs
			out.BottleneckResource = r.name
		}
	}
	if anyNet {
		out.Seconds += topo.NetLatency
	}
	return out
}

// TopResources returns the n most-loaded resources, most loaded first;
// useful for explaining where a reconfiguration spends its time.
func (r Result) TopResources(n int) []string {
	type kv struct {
		name string
		sec  float64
	}
	var all []kv
	for name, sec := range r.PerResourceSeconds {
		all = append(all, kv{name, sec})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sec != all[j].sec {
			return all[i].sec > all[j].sec
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s=%.3fs", all[i].name, all[i].sec)
	}
	return out
}

// AllReduceTime estimates a bandwidth-optimal ring all-reduce of bytes
// across the given devices: each participant sends and receives
// 2·(n−1)/n of the payload over its slowest incident link. Used by the
// perfmodel for DP gradient synchronization and TP activation reduction.
func AllReduceTime(topo *cluster.Topology, devs []cluster.DeviceID, bytes int64) float64 {
	n := len(devs)
	if n <= 1 || bytes == 0 {
		return 0
	}
	// Slowest link around the ring in allocation order. PairBW resolves
	// the pair's hierarchy distance in O(1): island, node, rack or pod —
	// a cross-pod hop in a hierarchical topology is slower than a
	// same-rack hop, so spread-out rings price worse. Flat topologies
	// see exactly the original IntraBW/NetBW model.
	worst := topo.NVLinkBW
	crossWorker := false
	for i := range devs {
		a, b := devs[i], devs[(i+1)%n]
		if !topo.SameWorker(a, b) {
			crossWorker = true
		}
		if bw := topo.PairBW(a, b); bw < worst {
			worst = bw
		}
	}
	vol := 2 * float64(bytes) * float64(n-1) / float64(n)
	t := vol / worst
	if crossWorker {
		t += float64(2*(n-1)) * topo.NetLatency
	}
	return t
}

// PointToPointTime estimates a single transfer between two devices.
func PointToPointTime(topo *cluster.Topology, a, b cluster.DeviceID, bytes int64) float64 {
	if a == b || bytes == 0 {
		return 0
	}
	if topo.SameWorker(a, b) {
		return float64(bytes) / topo.IntraBW(a, b)
	}
	return float64(bytes)/topo.PairBW(a, b) + topo.NetLatency
}
