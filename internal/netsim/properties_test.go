package netsim

import (
	"math/rand"
	"testing"

	"tenplex/internal/cluster"
)

// randomFlows builds a set of device-to-device flows on a topology.
func randomFlows(rng *rand.Rand, topo *cluster.Topology, n int) []Flow {
	out := make([]Flow, n)
	nd := topo.NumDevices()
	for i := range out {
		out[i] = Flow{
			From:  DevEP(cluster.DeviceID(rng.Intn(nd))),
			To:    DevEP(cluster.DeviceID(rng.Intn(nd))),
			Bytes: int64(1+rng.Intn(1000)) * 1e6,
		}
	}
	return out
}

// TestSimulateMonotoneInLoad: adding flows never makes the transfer set
// finish earlier.
func TestSimulateMonotoneInLoad(t *testing.T) {
	topo := cluster.OnPrem16()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		flows := randomFlows(rng, topo, 1+rng.Intn(20))
		base := Simulate(topo, flows).Seconds
		more := append(append([]Flow{}, flows...), randomFlows(rng, topo, 1+rng.Intn(5))...)
		if got := Simulate(topo, more).Seconds; got+1e-12 < base {
			t.Fatalf("adding flows sped things up: %g -> %g", base, got)
		}
	}
}

// TestSimulateMonotoneInBytes: growing one flow never helps.
func TestSimulateMonotoneInBytes(t *testing.T) {
	topo := cluster.Cloud32()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		flows := randomFlows(rng, topo, 1+rng.Intn(10))
		base := Simulate(topo, flows).Seconds
		i := rng.Intn(len(flows))
		flows[i].Bytes *= 3
		if got := Simulate(topo, flows).Seconds; got+1e-12 < base {
			t.Fatalf("growing a flow sped things up: %g -> %g", base, got)
		}
	}
}

// TestSimulateScaleInvariance: doubling every bandwidth halves the time
// (minus the latency constant).
func TestSimulateScaleInvariance(t *testing.T) {
	topo := cluster.OnPrem16()
	fast := *topo
	fast.NVLinkBW *= 2
	fast.PCIeBW *= 2
	fast.NetBW *= 2
	fast.StorageBW *= 2
	fast.MemCopyBW *= 2
	fast.NetLatency = 0

	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		flows := randomFlows(rng, topo, 1+rng.Intn(12))
		slow := Simulate(topo, flows)
		quick := Simulate(&fast, flows)
		want := (slow.Seconds - topo.NetLatency) / 2
		if slow.PerResourceSeconds == nil {
			continue
		}
		// Latency applies only when network flows exist; tolerate it.
		diff := quick.Seconds - want
		if diff < -1e-9 || diff > topo.NetLatency+1e-9 {
			t.Fatalf("doubling bandwidth: %g -> %g (want ≈ %g)", slow.Seconds, quick.Seconds, want)
		}
	}
}

// TestSimulateDecomposition: the completion time of a union of flow
// sets is at most the sum of their separate completion times
// (subadditivity) and at least each individual one (monotonicity).
func TestSimulateDecomposition(t *testing.T) {
	topo := cluster.OnPrem16()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a := randomFlows(rng, topo, 1+rng.Intn(8))
		b := randomFlows(rng, topo, 1+rng.Intn(8))
		ta := Simulate(topo, a).Seconds
		tb := Simulate(topo, b).Seconds
		tu := Simulate(topo, append(append([]Flow{}, a...), b...)).Seconds
		if tu+1e-12 < ta || tu+1e-12 < tb {
			t.Fatalf("union faster than a part: %g vs %g/%g", tu, ta, tb)
		}
		if tu > ta+tb+1e-9 {
			t.Fatalf("union slower than serial: %g vs %g+%g", tu, ta, tb)
		}
	}
}
