package netsim

import (
	"math"
	"testing"

	"tenplex/internal/cluster"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: got %g, want 0", msg, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > rel {
		t.Fatalf("%s: got %g, want %g (±%g rel)", msg, got, want, rel)
	}
}

func TestSimulateEmpty(t *testing.T) {
	topo := cluster.OnPrem16()
	r := Simulate(topo, nil)
	if r.Seconds != 0 || r.TotalBytes != 0 {
		t.Fatalf("empty simulation: %+v", r)
	}
}

func TestSimulateLocalFlowIsFree(t *testing.T) {
	topo := cluster.OnPrem16()
	r := Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(0), Bytes: 1 << 30}})
	if r.Seconds != 0 {
		t.Fatalf("device-local flow should cost nothing, took %gs", r.Seconds)
	}
}

func TestSimulateIntraWorker(t *testing.T) {
	topo := cluster.OnPrem16()
	bytes := int64(10e9)
	// NVLink pair 0-1.
	r := Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(1), Bytes: bytes}})
	approx(t, r.Seconds, float64(bytes)/topo.NVLinkBW, 1e-9, "nvlink flow")
	// Unpaired 1-2 goes over PCIe, slower.
	r2 := Simulate(topo, []Flow{{From: DevEP(1), To: DevEP(2), Bytes: bytes}})
	approx(t, r2.Seconds, float64(bytes)/topo.PCIeBW, 1e-9, "pcie flow")
	if r2.Seconds <= r.Seconds {
		t.Fatal("PCIe must be slower than NVLink")
	}
}

func TestSimulateCrossWorkerUsesNICs(t *testing.T) {
	topo := cluster.OnPrem16()
	bytes := int64(23e9)
	r := Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(4), Bytes: bytes}})
	want := float64(bytes)/topo.NetBW + topo.NetLatency
	approx(t, r.Seconds, want, 1e-6, "cross-worker flow")
}

func TestSimulateNICContention(t *testing.T) {
	topo := cluster.OnPrem16()
	bytes := int64(5e9)
	// Two flows leaving worker 0 to two different workers share the
	// egress NIC: completion doubles vs a single flow.
	one := Simulate(topo, []Flow{
		{From: DevEP(0), To: DevEP(4), Bytes: bytes},
	})
	two := Simulate(topo, []Flow{
		{From: DevEP(0), To: DevEP(4), Bytes: bytes},
		{From: DevEP(1), To: DevEP(8), Bytes: bytes},
	})
	approx(t, two.Seconds, 2*one.Seconds-topo.NetLatency, 1e-3, "shared egress")
	if two.BottleneckResource != "nic-out[w0]" {
		t.Fatalf("bottleneck = %s, want nic-out[w0]", two.BottleneckResource)
	}
	// The same two flows from different source workers run in parallel.
	par := Simulate(topo, []Flow{
		{From: DevEP(0), To: DevEP(8), Bytes: bytes},
		{From: DevEP(4), To: DevEP(12), Bytes: bytes},
	})
	approx(t, par.Seconds, one.Seconds, 1e-6, "parallel disjoint flows")
}

func TestSimulateCentralBottleneck(t *testing.T) {
	// All state funneled through worker 0 (the Tenplex-Central baseline)
	// must take ~Nx longer than peer-to-peer spreading across N workers.
	topo := cluster.OnPrem16()
	bytes := int64(2e9)
	var central, p2p []Flow
	for w := 1; w < 4; w++ {
		dst := cluster.DeviceID(w * 4)
		central = append(central, Flow{From: DevEP(0), To: DevEP(dst), Bytes: bytes})
		src := cluster.DeviceID((w-1)*4 + 1) // some device on a different worker
		p2p = append(p2p, Flow{From: DevEP(src), To: DevEP(dst), Bytes: bytes})
	}
	rc := Simulate(topo, central)
	rp := Simulate(topo, p2p)
	if rc.Seconds < 2.5*rp.Seconds {
		t.Fatalf("central %.3fs not clearly slower than p2p %.3fs", rc.Seconds, rp.Seconds)
	}
}

func TestSimulateStorageFlows(t *testing.T) {
	topo := cluster.OnPrem16()
	bytes := int64(6e9)
	r := Simulate(topo, []Flow{{From: StorageEP(), To: DevEP(0), Bytes: bytes}})
	approx(t, r.Seconds, float64(bytes)/topo.StorageBW+topo.NetLatency, 1e-6, "storage read")
	if r.BottleneckResource != "storage[w0]" {
		t.Fatalf("bottleneck = %s", r.BottleneckResource)
	}
	up := Simulate(topo, []Flow{{From: DevEP(0), To: StorageEP(), Bytes: bytes}})
	approx(t, up.Seconds, float64(bytes)/topo.StorageBW+topo.NetLatency, 1e-6, "storage write")
}

func TestSimulateCopyWork(t *testing.T) {
	topo := cluster.OnPrem16()
	r := Simulate(topo, []Flow{{From: DevEP(0), To: DevEP(0), Bytes: 0, CopyBytes: int64(40e9)}})
	approx(t, r.Seconds, 2*40e9/topo.MemCopyBW, 1e-9, "copy work at both endpoints")
}

func TestSimulatePanicsOnBadFlow(t *testing.T) {
	topo := cluster.OnPrem16()
	for name, flows := range map[string][]Flow{
		"negative":           {{From: DevEP(0), To: DevEP(1), Bytes: -1}},
		"storage-to-storage": {{From: StorageEP(), To: StorageEP(), Bytes: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Simulate(topo, flows)
		}()
	}
}

func TestTopResources(t *testing.T) {
	topo := cluster.OnPrem16()
	r := Simulate(topo, []Flow{
		{From: DevEP(0), To: DevEP(4), Bytes: 1e9},
		{From: DevEP(4), To: DevEP(8), Bytes: 2e9},
	})
	top := r.TopResources(2)
	if len(top) != 2 {
		t.Fatalf("TopResources = %v", top)
	}
	if top[0] < top[1] && r.PerResourceSeconds == nil {
		t.Fatal("unsorted or missing breakdown")
	}
}

func TestAllReduceTime(t *testing.T) {
	topo := cluster.OnPrem16()
	if AllReduceTime(topo, []cluster.DeviceID{3}, 1e9) != 0 {
		t.Fatal("single-participant all-reduce must be free")
	}
	bytes := int64(1e9)
	intra := AllReduceTime(topo, []cluster.DeviceID{0, 1}, bytes)
	approx(t, intra, 2*float64(bytes)*0.5/topo.NVLinkBW, 1e-9, "nvlink pair allreduce")
	cross := AllReduceTime(topo, []cluster.DeviceID{0, 4}, bytes)
	if cross <= intra {
		t.Fatal("cross-worker all-reduce must be slower than NVLink pair")
	}
	// Larger rings move proportionally more data over the slowest link.
	four := AllReduceTime(topo, []cluster.DeviceID{0, 4, 8, 12}, bytes)
	if four <= cross {
		t.Fatal("4-way ring must be slower than 2-way over the same NIC")
	}
}

func TestPointToPointTime(t *testing.T) {
	topo := cluster.OnPrem16()
	if PointToPointTime(topo, 2, 2, 1e9) != 0 {
		t.Fatal("self transfer must be free")
	}
	if PointToPointTime(topo, 0, 1, 1e9) >= PointToPointTime(topo, 0, 4, 1e9) {
		t.Fatal("intra-worker must beat cross-worker")
	}
}

func TestSimulateDegradedLinkSlowsFlows(t *testing.T) {
	topo := cluster.OnPrem16()
	flows := []Flow{{From: DevEP(0), To: DevEP(4), Bytes: 1 << 30}} // worker 0 -> worker 1
	base := Simulate(topo, flows).Seconds

	topo.SetNetScale(1, 0.25) // destination NIC at quarter speed
	degraded := Simulate(topo, flows).Seconds
	if degraded <= base {
		t.Fatalf("degraded ingress did not slow the flow: %v <= %v", degraded, base)
	}
	want := float64(1<<30)/(topo.NetBW*0.25) + topo.NetLatency
	if diff := degraded - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("degraded time %v, want %v", degraded, want)
	}

	// A flow avoiding the degraded worker is unaffected.
	other := Simulate(topo, []Flow{{From: DevEP(8), To: DevEP(12), Bytes: 1 << 30}}).Seconds
	if diff := other - base; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("flow avoiding the degraded worker took %v, want %v", other, base)
	}

	// Storage fallback through the degraded worker prices its NIC leg at
	// the degraded bandwidth too.
	topo2 := cluster.OnPrem16()
	sbase := Simulate(topo2, []Flow{{From: StorageEP(), To: DevEP(4), Bytes: 1 << 30}})
	topo2.SetNetScale(1, 0.01)
	sdeg := Simulate(topo2, []Flow{{From: StorageEP(), To: DevEP(4), Bytes: 1 << 30}})
	if sdeg.Seconds <= sbase.Seconds {
		t.Fatalf("storage restore through degraded NIC did not slow: %v <= %v", sdeg.Seconds, sbase.Seconds)
	}
}
