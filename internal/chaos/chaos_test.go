package chaos

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

func memAccess(t *testing.T) store.Access {
	t.Helper()
	acc := store.Local{FS: store.NewMemFS()}
	tt := tensor.New(tensor.Float32, 4)
	if err := acc.Upload("/x", tt); err != nil {
		t.Fatalf("seed upload: %v", err)
	}
	return acc
}

// With the zero plan (or while disarmed) the wrapper is a pass-through.
func TestChaosUnarmedPassThrough(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, StoreFaultRate: 0.99})
	acc := in.WrapAccess("job", "dev0", memAccess(t))
	for i := 0; i < 100; i++ {
		if _, err := acc.Query("/x", nil); err != nil {
			t.Fatalf("disarmed query %d failed: %v", i, err)
		}
	}
}

// sequence records the fault decisions of n distinct ops on an armed
// stream (uploads to distinct paths, so each has its own identity).
func sequence(in *Injector, job string, key uint64, acc store.Access, n int) []bool {
	in.BeginAttempt(job, key)
	defer in.EndAttempt(job)
	tt := tensor.New(tensor.Float32, 4)
	out := make([]bool, n)
	for i := range out {
		out[i] = acc.Upload(fmt.Sprintf("/p%d", i), tt) != nil
	}
	return out
}

func TestChaosDeterministicStreams(t *testing.T) {
	plan := Plan{Seed: 7, StoreFaultRate: 0.2}
	a := NewInjector(plan)
	b := NewInjector(plan)
	accA := a.WrapAccess("job", "dev0", memAccess(t))
	accB := b.WrapAccess("job", "dev0", memAccess(t))

	seqA := sequence(a, "job", 3, accA, 200)
	seqB := sequence(b, "job", 3, accB, 200)
	if fmt.Sprint(seqA) != fmt.Sprint(seqB) {
		t.Fatal("same (seed, job, key) produced different fault decisions")
	}
	var faults int
	for _, f := range seqA {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == len(seqA) {
		t.Fatalf("fault rate 0.2 over 200 ops produced %d faults", faults)
	}

	// A different attempt key decides every op afresh.
	seqC := sequence(a, "job", 4, accA, 200)
	if fmt.Sprint(seqA) == fmt.Sprint(seqC) {
		t.Fatal("different attempt keys replayed the same decisions")
	}
	// Re-arming with the same key replays the attempt exactly.
	seqD := sequence(a, "job", 3, accA, 200)
	if fmt.Sprint(seqA) != fmt.Sprint(seqD) {
		t.Fatal("re-armed attempt did not replay its decisions")
	}
	// Replicas of the same path on differently-tagged stores fail
	// independently — a faulted read must be able to fall back to
	// another replica.
	accA2 := a.WrapAccess("job", "dev1", accA.(*faultyAccess).inner)
	seqE := sequence(a, "job", 3, accA2, 200)
	if fmt.Sprint(seqA) == fmt.Sprint(seqE) {
		t.Fatal("different store tags produced identical fault decisions")
	}
}

// An operation's fate belongs to the operation — (attempt seed, store
// tag, op, path) — not to the order concurrent ops happen to draw in.
// The same work set must produce the same per-op outcomes and the same
// attempt-level outcome at any parallelism.
func TestChaosAttemptOutcomeIndependentOfInterleaving(t *testing.T) {
	plan := Plan{Seed: 11, StoreFaultRate: 0.05}
	const ops = 60
	outcome := func(workers int) string {
		in := NewInjector(plan)
		acc := in.WrapAccess("job", "dev0", memAccess(t))
		in.BeginAttempt("job", 9)
		defer in.EndAttempt("job")
		tt := tensor.New(tensor.Float32, 4)
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			fate = make([]bool, ops)
		)
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					err := acc.Upload(fmt.Sprintf("/p%d", i), tt)
					mu.Lock()
					fate[i] = err != nil
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < ops; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return fmt.Sprint(fate)
	}
	ref := outcome(1)
	for _, w := range []int{2, 4, 8} {
		if got := outcome(w); got != ref {
			t.Fatalf("per-op outcomes changed with %d workers:\n%s\n%s", w, got, ref)
		}
	}
}

func TestChaosErrorsWrapSentinel(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, StoreFaultRate: 1 - 1e-12})
	acc := in.WrapAccess("job", "dev0", memAccess(t))
	in.BeginAttempt("job", 0)
	defer in.EndAttempt("job")
	_, err := acc.Query("/x", nil)
	if err == nil {
		t.Fatal("fault rate ~1 did not inject")
	}
	if !errors.Is(err, Err) {
		t.Fatalf("injected error %v does not wrap chaos.Err", err)
	}
}

func TestChaosPlanValidate(t *testing.T) {
	bad := []Plan{
		{StoreFaultRate: 1.5},
		{Flaps: []DeviceFlap{{Device: 99, FailMin: 1, DownMin: 1}}},
		{Flaps: []DeviceFlap{{Device: 0, FailMin: 1, DownMin: 0}}},
		{Reclaims: []SpotReclaim{{Device: 0, NoticeMin: -1}}},
		{LinkDegrades: []LinkDegrade{{Worker: 0, StartMin: 0, DurationMin: 1, Factor: 0}}},
		{LinkDegrades: []LinkDegrade{{Worker: 9, StartMin: 0, DurationMin: 1, Factor: 0.5}}},
	}
	for i, p := range bad {
		if err := p.Validate(8, 2); err == nil {
			t.Errorf("plan %d validated but should not have", i)
		}
	}
	ok := Plan{
		Seed:           1,
		StoreFaultRate: 0.01,
		Flaps:          []DeviceFlap{{Device: 3, FailMin: 10, DownMin: 5, Cycles: 2, PeriodMin: 20}},
		Reclaims:       []SpotReclaim{{Device: 4, NoticeMin: 30, WindowMin: 2}},
		LinkDegrades:   []LinkDegrade{{Worker: 1, StartMin: 5, DurationMin: 10, Factor: 0.25}},
	}
	if err := ok.Validate(8, 2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// The HTTP transport wrapper drops requests deterministically and the
// server middleware injects 500s; both reach the store client as
// retryable failures.
func TestChaosTransportAndMiddleware(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	in := NewInjector(Plan{Seed: 5, StoreFaultRate: 0.5})
	srv := httptest.NewServer(in.ServerMiddleware(backend))
	defer srv.Close()

	client := &http.Client{Transport: in.Transport(nil)}
	var transportErrs, serverErrs, oks int
	for i := 0; i < 100; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			transportErrs++
			continue
		}
		if resp.StatusCode == http.StatusInternalServerError {
			serverErrs++
		} else {
			oks++
		}
		resp.Body.Close()
	}
	if transportErrs == 0 || serverErrs == 0 || oks == 0 {
		t.Fatalf("want a mix of outcomes, got transport=%d server=%d ok=%d",
			transportErrs, serverErrs, oks)
	}
}
