// Package chaos is a deterministic, seeded fault injector for hostile-
// cluster simulation: store I/O errors and stragglers on the Tensor
// Store datapath, dropped responses and injected latency on the REST
// transport, and cluster-level hostility — flapping devices that fail
// AND recover, spot-reclamation notices with a deadline, and degraded
// inter-worker links — consumed by the coordinator's event loop.
//
// Determinism is the package's contract: every fault decision is drawn
// from a splitmix64 stream keyed by (Plan.Seed, job, attempt key), so
// the same plan replays the same faults bit for bit. Store faults are
// decided at *attempt* granularity: each transform attempt arms a fresh
// stream, and whether the attempt fails is a property of the stream
// alone, independent of goroutine interleaving — draws before the first
// failing one all succeed, so no execution order can skip past it, and
// the attempt's outcome (though not which concrete op observed the
// fault) replays identically at any worker count.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// Err is the sentinel every injected fault wraps; errors.Is(err, Err)
// discriminates injected hostility from genuine datapath bugs.
var Err = errors.New("chaos: injected fault")

// DeviceFlap schedules a device that fails and later recovers —
// possibly repeatedly. Unlike a fail-stop FailureSpec, a flapping
// device re-enters service unless the coordinator's suspicion-count
// failure detector quarantines it first.
type DeviceFlap struct {
	Device cluster.DeviceID
	// FailMin is the first failure time in minutes; the device recovers
	// DownMin minutes later.
	FailMin float64
	DownMin float64
	// Cycles repeats the fail/recover pair (0 means 1), each cycle
	// starting PeriodMin after the previous one.
	Cycles    int
	PeriodMin float64
}

// SpotReclaim schedules a spot/preemptible reclamation: the provider
// announces at NoticeMin that the device disappears WindowMin minutes
// later, giving the coordinator a window to drain state off it.
type SpotReclaim struct {
	Device    cluster.DeviceID
	NoticeMin float64
	WindowMin float64
}

// LinkDegrade throttles one worker's NIC to Factor of its nominal
// bandwidth for a window — a congested or flapping link. The
// coordinator prices reconfigurations through netsim against the
// degraded bandwidth while the window is open.
type LinkDegrade struct {
	Worker      int
	StartMin    float64
	DurationMin float64
	// Factor scales the worker's NetBW; must be in (0, 1].
	Factor float64
}

// Plan is a deterministic hostile-cluster schedule plus the datapath
// fault rates. The zero value injects nothing.
type Plan struct {
	// Seed keys every fault-decision stream; runs with equal plans are
	// bit-identical.
	Seed int64

	// StoreFaultRate is the per-operation probability of an injected
	// I/O error on a wrapped Tensor Store during an armed transform
	// attempt (see Injector.BeginAttempt).
	StoreFaultRate float64
	// StoreLatency sleeps every wrapped store operation (real time);
	// zero — the simulation default — keeps deterministic runs instant.
	StoreLatency time.Duration
	// StragglerRate picks operations that stall for StragglerLatency
	// instead of StoreLatency, for straggler-mitigation testing on the
	// REST transport.
	StragglerRate    float64
	StragglerLatency time.Duration

	// Flaps, Reclaims and LinkDegrades are the cluster-level events the
	// coordinator schedules onto its heap.
	Flaps        []DeviceFlap
	Reclaims     []SpotReclaim
	LinkDegrades []LinkDegrade
}

// Validate range-checks the plan against a cluster size.
func (p *Plan) Validate(devices, workers int) error {
	if p.StoreFaultRate < 0 || p.StoreFaultRate >= 1 {
		return fmt.Errorf("chaos: StoreFaultRate %v outside [0, 1)", p.StoreFaultRate)
	}
	if p.StragglerRate < 0 || p.StragglerRate > 1 {
		return fmt.Errorf("chaos: StragglerRate %v outside [0, 1]", p.StragglerRate)
	}
	for _, f := range p.Flaps {
		if int(f.Device) < 0 || int(f.Device) >= devices {
			return fmt.Errorf("chaos: flap of unknown device %d", f.Device)
		}
		if f.FailMin < 0 || f.DownMin <= 0 {
			return fmt.Errorf("chaos: flap of device %d needs FailMin >= 0 and DownMin > 0", f.Device)
		}
		if f.Cycles > 1 && f.PeriodMin <= f.DownMin {
			return fmt.Errorf("chaos: flap of device %d repeats faster than it recovers", f.Device)
		}
	}
	for _, r := range p.Reclaims {
		if int(r.Device) < 0 || int(r.Device) >= devices {
			return fmt.Errorf("chaos: reclaim of unknown device %d", r.Device)
		}
		if r.NoticeMin < 0 || r.WindowMin < 0 {
			return fmt.Errorf("chaos: reclaim of device %d has a negative time", r.Device)
		}
	}
	for _, d := range p.LinkDegrades {
		if d.Worker < 0 || d.Worker >= workers {
			return fmt.Errorf("chaos: degrade of unknown worker %d", d.Worker)
		}
		if d.Factor <= 0 || d.Factor > 1 {
			return fmt.Errorf("chaos: degrade factor %v outside (0, 1]", d.Factor)
		}
		if d.StartMin < 0 || d.DurationMin <= 0 {
			return fmt.Errorf("chaos: degrade of worker %d needs StartMin >= 0 and DurationMin > 0", d.Worker)
		}
	}
	return nil
}

// Injector executes a Plan's datapath side: it wraps Tensor Store
// accesses (and, for REST deployments, the HTTP transport and server)
// with deterministic fault decisions. One Injector serves all jobs of a
// run; each job's faults come from its own streams.
type Injector struct {
	plan Plan

	mu   sync.Mutex
	jobs map[string]*faultStream
	http *faultStream // transport/server stream, always armed
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) *Injector {
	in := &Injector{plan: p, jobs: map[string]*faultStream{}}
	in.http = &faultStream{armed: true, state: seedState(p.Seed, "http", 0)}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// BeginAttempt arms fault injection on job's wrapped stores for one
// transform attempt, seeding a FRESH decision stream from (seed, job,
// key). Callers pass a key unique per (reconfiguration, attempt) —
// derived from decision-plane state, never from execution order — so
// replays are bit-identical at any worker count. Jobs' reconfiguration
// attempts are serialized on their task chains, so Begin/EndAttempt
// need no caller-side locking across attempts.
func (in *Injector) BeginAttempt(job string, key uint64) {
	st := in.stream(job)
	st.mu.Lock()
	st.armed = true
	st.state = seedState(in.plan.Seed, job, key)
	st.mu.Unlock()
}

// EndAttempt disarms job's fault injection; wrapped stores pass through
// untouched until the next BeginAttempt. Recovery actions — checkpoint
// restores, baseline saves, state verification — run disarmed so the
// rollback path itself is reliable (bounded degradation, no livelock).
func (in *Injector) EndAttempt(job string) {
	st := in.stream(job)
	st.mu.Lock()
	st.armed = false
	st.mu.Unlock()
}

func (in *Injector) stream(job string) *faultStream {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.jobs[job]
	if !ok {
		st = &faultStream{}
		in.jobs[job] = st
	}
	return st
}

// WrapAccess wraps one Tensor Store of job with fault injection. tag
// names the wrapped store (e.g. its device), so replicas of the same
// path fail independently. While the job's stream is disarmed the
// wrapper is a pass-through; while armed, each operation's outcome is a
// pure function of (attempt seed, tag, op, path) — never of the order
// concurrent operations happen to run in.
func (in *Injector) WrapAccess(job, tag string, inner store.Access) store.Access {
	fa := &faultyAccess{inner: inner, in: in, stream: in.stream(job), job: job, tag: tag}
	// Forward the batch capability only when the wrapped store has it: a
	// separate wrapper type keeps a wrapped Local from falsely asserting
	// as a store.BatchQuerier.
	if _, ok := inner.(store.BatchQuerier); ok {
		return &faultyBatchAccess{faultyAccess: fa}
	}
	return fa
}

// faultyBatchAccess augments faultyAccess with store.BatchQuerier
// forwarding; the whole batch fails or stalls as one operation, the way
// a dying connection takes the whole response stream with it.
type faultyBatchAccess struct{ *faultyAccess }

var _ store.BatchQuerier = (*faultyBatchAccess)(nil)

func (f *faultyBatchAccess) BatchQueryInto(ctx context.Context, entries []store.BatchEntry) (store.BatchStats, error) {
	paths := make([]string, 0, 2*len(entries))
	for _, e := range entries {
		paths = append(paths, e.Path, fmt.Sprint(e.Reg))
	}
	if err := f.op("batch", paths...); err != nil {
		return store.BatchStats{}, err
	}
	return f.inner.(store.BatchQuerier).BatchQueryInto(ctx, entries)
}

// Transport wraps an http.RoundTripper with injected request failures
// (dropped responses surface as transport errors, which the store
// client treats as retryable) and straggler latency. base nil means
// http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{base: base, in: in}
}

// ServerMiddleware wraps a Tensor Store server handler with injected
// 500 responses and latency, for hostile REST integration tests.
func (in *Injector) ServerMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fail, delay := in.http.decide(in.plan)
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail {
			http.Error(w, "chaos: injected server fault", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// --- deterministic decision streams ---

// faultStream is one deterministic decision stream. For store ops the
// state is the attempt seed and never advances: each operation's
// outcome hashes (attempt seed, store tag, op, path), so the decision
// belongs to the OPERATION, not to the order concurrent operations draw
// in. This matters because transform ops are not equally fatal — a
// fault landing on a read with a checkpoint fallback is absorbed while
// one landing on an upload aborts the attempt — so order-assigned
// outcomes would make attempt results schedule-dependent. The HTTP
// stream still draws sequentially (decide), which is fine for the REST
// datapath tests it serves.
type faultStream struct {
	mu    sync.Mutex
	armed bool
	state uint64
}

// decide draws one sequential fault decision: whether the operation
// fails, and how long it stalls first. Used by the always-armed HTTP
// stream.
func (st *faultStream) decide(p Plan) (fail bool, delay time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.armed {
		return false, 0
	}
	delay = p.StoreLatency
	if p.StragglerRate > 0 && st.unit() < p.StragglerRate {
		delay = p.StragglerLatency
	}
	if p.StoreFaultRate > 0 && st.unit() < p.StoreFaultRate {
		fail = true
	}
	return fail, delay
}

// decideOp decides one store operation's fate from the attempt seed and
// the op's identity hash, independent of any other operation.
func (st *faultStream) decideOp(p Plan, opHash uint64) (fail bool, delay time.Duration) {
	st.mu.Lock()
	armed, base := st.armed, st.state
	st.mu.Unlock()
	if !armed {
		return false, 0
	}
	local := faultStream{state: base ^ opHash}
	delay = p.StoreLatency
	if p.StragglerRate > 0 && local.unit() < p.StragglerRate {
		delay = p.StragglerLatency
	}
	if p.StoreFaultRate > 0 && local.unit() < p.StoreFaultRate {
		fail = true
	}
	return fail, delay
}

// unit returns the next uniform draw in [0, 1).
func (st *faultStream) unit() float64 {
	st.state += 0x9E3779B97F4A7C15
	z := st.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// seedState derives the initial splitmix64 state for (seed, name, key)
// via FNV-1a over the name mixed with the key.
func seedState(seed int64, name string, key uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return uint64(seed) ^ h ^ (key * 0x9E3779B97F4A7C15)
}

// opHash identifies one store operation: the wrapped store's tag, the
// op kind and its path(s), FNV-1a folded and finalized so single-bit
// input changes flip the whole decision state.
func opHash(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // separator: ("a","bc") must differ from ("ab","c")
		h *= 1099511628211
	}
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// --- store.Access wrapper ---

type faultyAccess struct {
	inner  store.Access
	in     *Injector
	stream *faultStream
	job    string
	tag    string
}

var _ store.Access = (*faultyAccess)(nil)

func (f *faultyAccess) op(name string, paths ...string) error {
	id := append([]string{f.tag, name}, paths...)
	fail, delay := f.stream.decideOp(f.in.plan, opHash(id...))
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w: %s on job %s", Err, name, f.job)
	}
	return nil
}

func (f *faultyAccess) Query(path string, reg tensor.Region) (*tensor.Tensor, error) {
	if err := f.op("query", path); err != nil {
		return nil, err
	}
	return f.inner.Query(path, reg)
}

func (f *faultyAccess) QueryInto(path string, reg tensor.Region, dst *tensor.Tensor, at tensor.Region) (int64, error) {
	if err := f.op("queryinto", path, fmt.Sprint(reg)); err != nil {
		return 0, err
	}
	return f.inner.QueryInto(path, reg, dst, at)
}

func (f *faultyAccess) Upload(path string, t *tensor.Tensor) error {
	if err := f.op("upload", path); err != nil {
		return err
	}
	return f.inner.Upload(path, t)
}

func (f *faultyAccess) UploadFrom(path string, dt tensor.DType, shape []int, r io.Reader) error {
	if err := f.op("uploadfrom", path); err != nil {
		return err
	}
	return f.inner.UploadFrom(path, dt, shape, r)
}

func (f *faultyAccess) Delete(path string) error {
	if err := f.op("delete", path); err != nil {
		return err
	}
	return f.inner.Delete(path)
}

func (f *faultyAccess) List(path string) ([]string, error) {
	if err := f.op("list", path); err != nil {
		return nil, err
	}
	return f.inner.List(path)
}

func (f *faultyAccess) Rename(src, dst string) error {
	if err := f.op("rename", src, dst); err != nil {
		return err
	}
	return f.inner.Rename(src, dst)
}

// UploadsByReference preserves the wrapped store's copy-accounting
// contract (transform.uploadCopies type-asserts store.RefUploader).
func (f *faultyAccess) UploadsByReference() bool {
	ru, ok := f.inner.(store.RefUploader)
	return ok && ru.UploadsByReference()
}

// --- HTTP transport wrapper ---

type transport struct {
	base http.RoundTripper
	in   *Injector
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	fail, delay := t.in.http.decide(t.in.plan)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if fail {
		return nil, fmt.Errorf("%w: dropped %s %s", Err, req.Method, req.URL.Path)
	}
	return t.base.RoundTrip(req)
}
