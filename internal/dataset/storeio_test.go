package dataset

import (
	"testing"

	"tenplex/internal/store"
)

func TestStagePartitionRoundTrip(t *testing.T) {
	ix, chunks := Synthetic(96, 32, 12, 3)
	bs := store.Local{FS: store.NewMemFS()}
	c := Cursor{Seed: 5, Consumed: 16}
	const (
		n, gb, dp = 96, 8, 2
		job       = "job0"
	)
	var staged int64
	for rank := 0; rank < dp; rank++ {
		b, err := StagePartition(bs, job, ix, MemChunks(chunks), c, n, gb, dp, rank)
		if err != nil {
			t.Fatal(err)
		}
		staged += b
	}
	if staged == 0 {
		t.Fatal("nothing staged")
	}

	// Reading back through the store yields exactly the cursor's
	// partition, exactly once across ranks.
	seen := map[int]bool{}
	for rank := 0; rank < dp; rank++ {
		loader, samples, err := OpenPartition(bs, job, ix, rank)
		if err != nil {
			t.Fatal(err)
		}
		want := c.Partition(n, gb, dp, rank)
		if len(samples) != len(want) {
			t.Fatalf("rank %d: %d samples, want %d", rank, len(samples), len(want))
		}
		for i, id := range samples {
			if id != want[i] {
				t.Fatalf("rank %d: order diverges at %d", rank, i)
			}
			if seen[id] {
				t.Fatalf("sample %d staged to two ranks", id)
			}
			seen[id] = true
			payload, err := loader.Sample(id)
			if err != nil {
				t.Fatal(err)
			}
			if DecodeSampleID(payload) != id {
				t.Fatalf("sample %d payload decodes to %d", id, DecodeSampleID(payload))
			}
		}
	}
}

func TestOpenPartitionErrors(t *testing.T) {
	ix, _ := Synthetic(16, 16, 4, 1)
	bs := store.Local{FS: store.NewMemFS()}
	if _, _, err := OpenPartition(bs, "ghost", ix, 0); err == nil {
		t.Fatal("missing partition opened")
	}
	// Corrupt manifest.
	if err := bs.PutBlob("/job/j/dataset/rank0/index.json", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPartition(bs, "j", ix, 0); err == nil {
		t.Fatal("corrupt manifest opened")
	}
}

func TestStagePartitionFetchOrderUnblocksTraining(t *testing.T) {
	// The first chunk staged must be the one holding the first sample
	// the rank consumes.
	ix, chunks := Synthetic(64, 16, 8, 2)
	bs := store.Local{FS: store.NewMemFS()}
	c := Cursor{Seed: 9}
	if _, err := StagePartition(bs, "j", ix, MemChunks(chunks), c, 64, 8, 1, 0); err != nil {
		t.Fatal(err)
	}
	_, samples, err := OpenPartition(bs, "j", ix, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := FetchOrder(ix, samples)
	if len(order) == 0 || order[0] != ix.Samples[samples[0]].Chunk {
		t.Fatalf("fetch order %v does not start with the first-needed chunk %d",
			order, ix.Samples[samples[0]].Chunk)
	}
}
