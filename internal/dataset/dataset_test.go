package dataset

import (
	"testing"
	"testing/quick"
)

func TestSyntheticIndex(t *testing.T) {
	ix, chunks := Synthetic(100, 64, 16, 7)
	if ix.NumSamples() != 100 {
		t.Fatalf("samples = %d", ix.NumSamples())
	}
	if len(chunks) != 7 { // ceil(100/16)
		t.Fatalf("chunks = %d", len(chunks))
	}
	if ix.TotalBytes() != 6400 {
		t.Fatalf("total bytes = %d", ix.TotalBytes())
	}
	sizes := make([]int64, len(chunks))
	for i, c := range chunks {
		sizes[i] = int64(len(c))
	}
	if err := ix.Validate(sizes); err != nil {
		t.Fatal(err)
	}
	// Sample payloads decode to their IDs.
	l := NewLoader(ix, MemChunks(chunks))
	for _, id := range []int{0, 15, 16, 99} {
		p, err := l.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		if DecodeSampleID(p) != id {
			t.Fatalf("sample %d decodes to %d", id, DecodeSampleID(p))
		}
	}
	if _, err := l.Sample(100); err == nil {
		t.Fatal("out-of-range sample read")
	}
	if l.BytesRead != 4*64 {
		t.Fatalf("BytesRead = %d", l.BytesRead)
	}
}

func TestIndexValidateCatchesCorruption(t *testing.T) {
	ix, chunks := Synthetic(10, 16, 4, 1)
	sizes := make([]int64, len(chunks))
	for i, c := range chunks {
		sizes[i] = int64(len(c))
	}
	bad := *ix
	bad.Samples = append([]SampleLoc(nil), ix.Samples...)
	bad.Samples[3] = SampleLoc{Chunk: 0, Offset: 60, Length: 16}
	if err := bad.Validate(sizes); err == nil {
		t.Fatal("overflowing sample accepted")
	}
	bad.Samples[3] = SampleLoc{Chunk: 9, Offset: 0, Length: 16}
	if err := bad.Validate(sizes); err == nil {
		t.Fatal("bad chunk reference accepted")
	}
}

func TestEpochOrderDeterministicAndComplete(t *testing.T) {
	a := EpochOrder(42, 3, 1000)
	b := EpochOrder(42, 3, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("epoch order not deterministic")
		}
	}
	c := EpochOrder(42, 4, 1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs produce identical order")
	}
	seen := map[int]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatal("duplicate in epoch order")
		}
		seen[id] = true
	}
	if len(seen) != 1000 {
		t.Fatal("epoch order incomplete")
	}
}

func TestNextBatchExactlyOnce(t *testing.T) {
	const n, gb = 64, 8
	c := Cursor{Seed: 5}
	seen := map[int]int{}
	for step := 0; step < n/gb; step++ {
		shards := c.NextBatch(n, gb, 4)
		if len(shards) != 4 {
			t.Fatalf("%d shards", len(shards))
		}
		for _, s := range shards {
			if len(s.Samples) != 2 {
				t.Fatalf("shard size %d", len(s.Samples))
			}
			for _, id := range s.Samples {
				seen[id]++
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("consumed %d distinct samples, want %d", len(seen), n)
	}
	for id, k := range seen {
		if k != 1 {
			t.Fatalf("sample %d consumed %d times", id, k)
		}
	}
	if c.Epoch != 0 || c.Consumed != n {
		t.Fatalf("cursor = %+v", c)
	}
	// Next batch wraps into epoch 1.
	_ = c.NextBatch(n, gb, 4)
	if c.Epoch != 1 || c.Consumed != gb {
		t.Fatalf("cursor after wrap = %+v", c)
	}
}

// TestRepartitionPreservesGlobalOrder is the Fig. 2a property: changing
// DP mid-epoch must not change which samples are consumed or their
// global order.
func TestRepartitionPreservesGlobalOrder(t *testing.T) {
	const n, gb = 240, 12
	collect := func(dpSchedule []int) []int {
		c := Cursor{Seed: 9}
		var consumed []int
		for _, dp := range dpSchedule {
			shards := c.NextBatch(n, gb, dp)
			// Global order of the batch: rank 0's slice, rank 1's, ...
			for _, s := range shards {
				consumed = append(consumed, s.Samples...)
			}
		}
		return consumed
	}
	static := collect([]int{2, 2, 2, 2, 2, 2})
	dynamic := collect([]int{2, 2, 4, 4, 6, 1})
	if len(static) != len(dynamic) {
		t.Fatalf("lengths differ: %d vs %d", len(static), len(dynamic))
	}
	for i := range static {
		if static[i] != dynamic[i] {
			t.Fatalf("global order diverges at %d: %d vs %d", i, static[i], dynamic[i])
		}
	}
}

func TestNextBatchPanics(t *testing.T) {
	c := Cursor{}
	for name, f := range map[string]func(){
		"indivisible": func() { c.NextBatch(100, 10, 3) },
		"too big":     func() { c.NextBatch(8, 16, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPartitionMatchesNextBatch(t *testing.T) {
	const n, gb, dp = 96, 8, 4
	c := Cursor{Seed: 3, Consumed: 2 * gb}
	parts := make([][]int, dp)
	for r := 0; r < dp; r++ {
		parts[r] = c.Partition(n, gb, dp, r)
	}
	// Walking NextBatch from the same cursor must yield the same
	// per-rank streams.
	w := c // copy
	got := make([][]int, dp)
	for w.Remaining(n) >= gb && w.Epoch == c.Epoch {
		for _, s := range w.NextBatch(n, gb, dp) {
			got[s.Rank] = append(got[s.Rank], s.Samples...)
		}
	}
	for r := 0; r < dp; r++ {
		if len(got[r]) != len(parts[r]) {
			t.Fatalf("rank %d: %d vs %d samples", r, len(got[r]), len(parts[r]))
		}
		for i := range got[r] {
			if got[r][i] != parts[r][i] {
				t.Fatalf("rank %d diverges at %d", r, i)
			}
		}
	}
}

func TestExactlyOnceQuick(t *testing.T) {
	// Property: any DP schedule consumes each sample at most once per
	// epoch and the union over one full epoch is complete.
	f := func(seed int64, sched []uint8) bool {
		const n, gb = 48, 8
		c := Cursor{Seed: seed}
		seen := map[int]bool{}
		steps := 0
		for _, s := range sched {
			if steps >= n/gb {
				break
			}
			dp := []int{1, 2, 4, 8}[s%4]
			for _, sh := range c.NextBatch(n, gb, dp) {
				for _, id := range sh.Samples {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
			steps++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchOrder(t *testing.T) {
	ix, _ := Synthetic(40, 16, 10, 1) // 4 chunks of 10
	// Partition touching chunks 3, 0, 3, 1 in that order of first use.
	partition := []int{35, 2, 35, 35, 12}
	got := FetchOrder(ix, partition)
	want := []int{3, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("FetchOrder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FetchOrder = %v, want %v", got, want)
		}
	}
}

func TestStreamStatsOverlap(t *testing.T) {
	ix, _ := Synthetic(100, 1000, 10, 2) // 10 chunks of 10 KB
	c := Cursor{Seed: 1}
	part := c.Partition(100, 10, 1, 0)

	// Fast network: only the first chunk gates the start; no stalls.
	start, stall := StreamStats(ix, part, 1e9, 1.0)
	if start <= 0 {
		t.Fatal("start delay must be positive")
	}
	if stall != 0 {
		t.Fatalf("fast fetch should not stall, got %g", stall)
	}
	// Slow network: training stalls waiting for chunks.
	_, stallSlow := StreamStats(ix, part, 2000, 0.0001)
	if stallSlow <= 0 {
		t.Fatal("slow fetch must stall")
	}
	// No partition: zeros.
	if s, st := StreamStats(ix, nil, 1e9, 1); s != 0 || st != 0 {
		t.Fatal("empty partition should be free")
	}
}

func TestMemChunksErrors(t *testing.T) {
	m := MemChunks{[]byte{1}}
	if _, err := m.Chunk(1); err == nil {
		t.Fatal("out-of-range chunk read")
	}
}

func TestSyntheticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthetic(0, 16, 4, 1)
}
