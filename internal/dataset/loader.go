package dataset

import (
	"fmt"
	"sort"
)

// ChunkSource supplies chunk file contents; implemented by in-memory
// chunks, the Tensor Store (blobs), or remote storage.
type ChunkSource interface {
	Chunk(i int) ([]byte, error)
}

// MemChunks is an in-memory ChunkSource.
type MemChunks [][]byte

// Chunk implements ChunkSource.
func (m MemChunks) Chunk(i int) ([]byte, error) {
	if i < 0 || i >= len(m) {
		return nil, fmt.Errorf("dataset: chunk %d of %d", i, len(m))
	}
	return m[i], nil
}

// Loader reads samples through the index, caching chunks as they are
// first touched — the data-loader the (simulated) DL system invokes,
// which reads "the corresponding part of the file" per sample (§5.2).
type Loader struct {
	Index  *Index
	Source ChunkSource

	cache map[int][]byte
	// BytesRead counts payload bytes served; tests use it to verify
	// exactly-once consumption.
	BytesRead int64
}

// NewLoader builds a loader over an index and chunk source.
func NewLoader(ix *Index, src ChunkSource) *Loader {
	return &Loader{Index: ix, Source: src, cache: map[int][]byte{}}
}

// Sample returns the payload of sample id.
func (l *Loader) Sample(id int) ([]byte, error) {
	if id < 0 || id >= len(l.Index.Samples) {
		return nil, fmt.Errorf("dataset: sample %d of %d", id, len(l.Index.Samples))
	}
	loc := l.Index.Samples[id]
	chunk, ok := l.cache[loc.Chunk]
	if !ok {
		var err error
		chunk, err = l.Source.Chunk(loc.Chunk)
		if err != nil {
			return nil, err
		}
		l.cache[loc.Chunk] = chunk
	}
	if loc.Offset+loc.Length > int64(len(chunk)) {
		return nil, fmt.Errorf("dataset: sample %d range [%d,%d) exceeds chunk %d size %d",
			id, loc.Offset, loc.Offset+loc.Length, loc.Chunk, len(chunk))
	}
	l.BytesRead += loc.Length
	return chunk[loc.Offset : loc.Offset+loc.Length], nil
}

// FetchOrder returns the chunks a partition touches, ordered by the
// position of their first-needed sample. Streaming chunks in this order
// lets training resume before the whole partition has arrived (§5.2's
// overlap of dataset fetching with training).
func FetchOrder(ix *Index, partition []int) []int {
	first := map[int]int{}
	for pos, id := range partition {
		c := ix.Samples[id].Chunk
		if _, seen := first[c]; !seen {
			first[c] = pos
		}
	}
	chunks := make([]int, 0, len(first))
	for c := range first {
		chunks = append(chunks, c)
	}
	sort.Slice(chunks, func(i, j int) bool {
		if first[chunks[i]] != first[chunks[j]] {
			return first[chunks[i]] < first[chunks[j]]
		}
		return chunks[i] < chunks[j]
	})
	return chunks
}

// StreamStats estimates the overlap of dataset streaming with training:
// given the chunk fetch order, per-chunk byte sizes, a fetch bandwidth
// (bytes/s) and the training time per sample, it returns the delay
// before the first step can run and the total stall time training
// spends waiting for data mid-epoch.
func StreamStats(ix *Index, partition []int, fetchBW float64, secPerSample float64) (startDelay, stallTime float64) {
	if len(partition) == 0 || fetchBW <= 0 {
		return 0, 0
	}
	chunkSize := map[int]int64{}
	for _, s := range ix.Samples {
		if s.Offset+s.Length > chunkSize[s.Chunk] {
			chunkSize[s.Chunk] = s.Offset + s.Length
		}
	}
	order := FetchOrder(ix, partition)
	// arrival[c] = time chunk c is fully fetched.
	arrival := map[int]float64{}
	var clock float64
	for _, c := range order {
		clock += float64(chunkSize[c]) / fetchBW
		arrival[c] = clock
	}
	startDelay = arrival[ix.Samples[partition[0]].Chunk]
	trainClock := startDelay
	for _, id := range partition {
		need := arrival[ix.Samples[id].Chunk]
		if need > trainClock {
			stallTime += need - trainClock
			trainClock = need
		}
		trainClock += secPerSample
	}
	return startDelay, stallTime
}
