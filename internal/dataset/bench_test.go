package dataset

import "testing"

func BenchmarkEpochOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EpochOrder(7, i, 100000)
	}
}

func BenchmarkNextBatch(b *testing.B) {
	const n, gb, dp = 1 << 20, 1024, 8
	c := Cursor{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.NextBatch(n, gb, dp)
	}
}

func BenchmarkLoaderSample(b *testing.B) {
	ix, chunks := Synthetic(4096, 1024, 256, 3)
	l := NewLoader(ix, MemChunks(chunks))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Sample(i % 4096); err != nil {
			b.Fatal(err)
		}
	}
}
