package dataset

import (
	"encoding/json"
	"fmt"
)

// Integration between the dataset state and the Tensor Store (§5.2):
// each data-parallel rank gets a *virtual directory* in its worker's
// store holding the partition index and, as chunks stream in, the chunk
// blobs. The DL system's data loader reads samples out of it; Tenplex
// re-populates it on re-partitioning.

// BlobStore is the subset of store capabilities dataset staging needs;
// store.Local and store.Client both satisfy it.
type BlobStore interface {
	PutBlob(path string, data []byte) error
	GetBlob(path string) ([]byte, error)
}

func partitionDir(job string, rank int) string {
	return fmt.Sprintf("/job/%s/dataset/rank%d", job, rank)
}

// partitionManifest is the persisted form of a rank's dataset partition.
type partitionManifest struct {
	Samples []int  `json:"samples"` // sample IDs in consumption order
	Chunks  []int  `json:"chunks"`  // chunk IDs in fetch order
	Epoch   int    `json:"epoch"`
	Note    string `json:"note,omitempty"`
}

// StagePartition writes rank r's partition for the rest of the current
// epoch into its store: the manifest plus every needed chunk, in fetch
// order (so training can start before the last chunk arrives).
func StagePartition(bs BlobStore, job string, ix *Index, src ChunkSource,
	c Cursor, n, globalBatch, dp, rank int) (int64, error) {
	samples := c.Partition(n, globalBatch, dp, rank)
	chunks := FetchOrder(ix, samples)
	man := partitionManifest{Samples: samples, Chunks: chunks, Epoch: c.Epoch}
	blob, err := json.Marshal(man)
	if err != nil {
		return 0, fmt.Errorf("dataset: encode manifest: %w", err)
	}
	dir := partitionDir(job, rank)
	if err := bs.PutBlob(dir+"/index.json", blob); err != nil {
		return 0, err
	}
	var bytes int64
	for _, ch := range chunks {
		data, err := src.Chunk(ch)
		if err != nil {
			return bytes, err
		}
		if err := bs.PutBlob(fmt.Sprintf("%s/%s", dir, ix.ChunkPaths[ch]), data); err != nil {
			return bytes, err
		}
		bytes += int64(len(data))
	}
	return bytes, nil
}

// OpenPartition returns a Loader over a staged partition plus the
// sample order the rank must consume.
func OpenPartition(bs BlobStore, job string, ix *Index, rank int) (*Loader, []int, error) {
	dir := partitionDir(job, rank)
	blob, err := bs.GetBlob(dir + "/index.json")
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: partition %d not staged: %w", rank, err)
	}
	var man partitionManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, nil, fmt.Errorf("dataset: corrupt partition manifest: %w", err)
	}
	src := storeChunks{bs: bs, dir: dir, ix: ix}
	return NewLoader(ix, src), man.Samples, nil
}

// storeChunks reads chunk blobs out of a staged partition directory.
type storeChunks struct {
	bs  BlobStore
	dir string
	ix  *Index
}

// Chunk implements ChunkSource.
func (s storeChunks) Chunk(i int) ([]byte, error) {
	if i < 0 || i >= len(s.ix.ChunkPaths) {
		return nil, fmt.Errorf("dataset: chunk %d of %d", i, len(s.ix.ChunkPaths))
	}
	return s.bs.GetBlob(fmt.Sprintf("%s/%s", s.dir, s.ix.ChunkPaths[i]))
}
