// Package dataset manages the dataset state of the PTC (§5.2): the
// training samples, the index that locates each sample inside binary
// chunk files by byte range, the deterministic per-epoch order, and the
// re-partitioning that keeps data access consistent when the degree of
// data parallelism changes mid-epoch.
//
// Consistency model (§2.3): the per-epoch sample order is a pure
// function of (seed, epoch). Rank r of a DP-d job consumes, from global
// batch k of size B, the slice order[k·B + r·B/d : k·B + (r+1)·B/d].
// A reconfiguration at a step boundary re-partitions only the suffix of
// the epoch order, so every sample of the epoch is still consumed
// exactly once, in the same global order, regardless of how often d
// changes.
package dataset

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// SampleLoc locates one sample inside a chunk file: 64-bit byte offset
// and length, as the paper's dataset index prescribes.
type SampleLoc struct {
	Chunk  int
	Offset int64
	Length int64
}

// Index is the dataset index: chunk file names plus one location per
// sample. Sample IDs are positions in Samples.
type Index struct {
	// ChunkPaths names the binary files, e.g. in remote storage.
	ChunkPaths []string
	// Samples holds the byte range of every sample.
	Samples []SampleLoc
}

// NumSamples returns the dataset size.
func (ix *Index) NumSamples() int { return len(ix.Samples) }

// TotalBytes sums all sample lengths.
func (ix *Index) TotalBytes() int64 {
	var n int64
	for _, s := range ix.Samples {
		n += s.Length
	}
	return n
}

// Validate checks that locations are in bounds and non-overlapping per
// chunk given chunk sizes.
func (ix *Index) Validate(chunkSizes []int64) error {
	if len(chunkSizes) != len(ix.ChunkPaths) {
		return fmt.Errorf("dataset: %d chunk sizes for %d chunks", len(chunkSizes), len(ix.ChunkPaths))
	}
	for i, s := range ix.Samples {
		if s.Chunk < 0 || s.Chunk >= len(ix.ChunkPaths) {
			return fmt.Errorf("dataset: sample %d references chunk %d of %d", i, s.Chunk, len(ix.ChunkPaths))
		}
		if s.Offset < 0 || s.Length <= 0 || s.Offset+s.Length > chunkSizes[s.Chunk] {
			return fmt.Errorf("dataset: sample %d range [%d,%d) exceeds chunk %d size %d",
				i, s.Offset, s.Offset+s.Length, s.Chunk, chunkSizes[s.Chunk])
		}
	}
	return nil
}

// Synthetic builds an in-memory dataset of n samples of sampleBytes
// each, packed samplesPerChunk to a chunk. Sample i's payload is a pure
// function of (seed, i), so tests can verify exactly-once consumption by
// decoding what they read. It returns the index and the chunk contents.
func Synthetic(n, sampleBytes, samplesPerChunk int, seed int64) (*Index, [][]byte) {
	if n <= 0 || sampleBytes < 8 || samplesPerChunk <= 0 {
		panic(fmt.Sprintf("dataset: bad Synthetic args n=%d bytes=%d perChunk=%d", n, sampleBytes, samplesPerChunk))
	}
	ix := &Index{}
	var chunks [][]byte
	var cur []byte
	for i := 0; i < n; i++ {
		if i%samplesPerChunk == 0 {
			if cur != nil {
				chunks = append(chunks, cur)
			}
			cur = nil
			ix.ChunkPaths = append(ix.ChunkPaths, fmt.Sprintf("chunk-%05d.bin", len(chunks)))
		}
		ix.Samples = append(ix.Samples, SampleLoc{
			Chunk:  len(chunks),
			Offset: int64(len(cur)),
			Length: int64(sampleBytes),
		})
		cur = append(cur, SampleBytes(seed, i, sampleBytes)...)
	}
	chunks = append(chunks, cur)
	return ix, chunks
}

// SampleBytes generates sample i's payload: an 8-byte little-endian
// sample ID followed by deterministic pseudo-random bytes.
func SampleBytes(seed int64, i, sampleBytes int) []byte {
	buf := make([]byte, sampleBytes)
	binary.LittleEndian.PutUint64(buf, uint64(i))
	rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
	rng.Read(buf[8:]) //nolint:errcheck // never fails
	return buf
}

// DecodeSampleID reads back the sample ID from a payload.
func DecodeSampleID(payload []byte) int {
	if len(payload) < 8 {
		panic("dataset: payload too short for sample ID")
	}
	return int(binary.LittleEndian.Uint64(payload))
}

// EpochOrder returns the deterministic sample order for an epoch: a
// Fisher–Yates shuffle keyed by (seed, epoch). Identical inputs produce
// identical orders on every worker, which is what makes re-partitioning
// consistent without coordination.
func EpochOrder(seed int64, epoch, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(epoch)))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// Cursor tracks a job's position in the dataset state: which epoch it
// is in and how many samples of the epoch's order have been consumed.
// It is part of the PTC (the iterator of §4.1) and survives
// reconfigurations unchanged.
type Cursor struct {
	Seed     int64
	Epoch    int
	Consumed int // samples of the current epoch already used
}

// Shard is the per-rank slice of one global batch.
type Shard struct {
	Rank    int
	Samples []int // sample IDs
}

// NextBatch returns the per-rank shards of the next global batch of
// size globalBatch under data parallelism dp, and advances the cursor.
// The batch is cut from the epoch order at the cursor; when fewer than
// globalBatch samples remain the epoch wraps (the remainder is dropped,
// as DL systems do with drop_last). globalBatch must divide by dp.
func (c *Cursor) NextBatch(n, globalBatch, dp int) []Shard {
	if globalBatch%dp != 0 {
		panic(fmt.Sprintf("dataset: global batch %d not divisible by dp %d", globalBatch, dp))
	}
	if globalBatch > n {
		panic(fmt.Sprintf("dataset: global batch %d exceeds dataset %d", globalBatch, n))
	}
	if c.Consumed+globalBatch > n {
		c.Epoch++
		c.Consumed = 0
	}
	order := EpochOrder(c.Seed, c.Epoch, n)
	local := globalBatch / dp
	shards := make([]Shard, dp)
	for r := 0; r < dp; r++ {
		lo := c.Consumed + r*local
		shards[r] = Shard{
			Rank:    r,
			Samples: append([]int(nil), order[lo:lo+local]...),
		}
	}
	c.Consumed += globalBatch
	return shards
}

// Remaining returns how many samples of the current epoch are left.
func (c *Cursor) Remaining(n int) int { return n - c.Consumed }

// Partition lists the sample IDs rank r will consume for the rest of
// the current epoch under (globalBatch, dp) — the contents of the
// rank's virtual dataset directory after a (re-)partitioning. The
// cursor is not advanced.
func (c *Cursor) Partition(n, globalBatch, dp, rank int) []int {
	if globalBatch%dp != 0 {
		panic(fmt.Sprintf("dataset: global batch %d not divisible by dp %d", globalBatch, dp))
	}
	order := EpochOrder(c.Seed, c.Epoch, n)
	local := globalBatch / dp
	var out []int
	for pos := c.Consumed; pos+globalBatch <= n; pos += globalBatch {
		lo := pos + rank*local
		out = append(out, order[lo:lo+local]...)
	}
	return out
}
