package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTracer builds a small but representative trace: a decision
// span, an exec root with datapath leaves, metrics of every kind.
func sampleTracer() *Tracer {
	tr := New(Options{Det: true, Level: LevelDatapath, FlightCap: 2})
	dec := tr.NewID()
	tr.Record(Span{ID: dec, Name: "decision/arrival", Cat: CatDecision, Job: "job-0", TMin: 0})
	root := tr.NewID()
	tr.Record(Span{ID: root, Name: "reconfig/scale-out", Cat: CatExec, Job: "job-0",
		TMin: 1, DurSec: 2.5, Attrs: map[string]any{"gpus": 8, "moved_bytes": int64(1 << 20)}})
	tr.Record(Span{Parent: root, Name: "transform.apply", Cat: CatExec, Job: "job-0",
		TMin: 1, Attrs: map[string]any{"attempt": 1}})
	tr.Record(Span{Parent: root, Name: "store.upload", Cat: CatDatapath, Job: "job-0",
		TMin: 1, WallNs: 99, Attrs: map[string]any{"path": "ckpt/0", "bytes": 4096}})
	reg := tr.Metrics()
	reg.Add("coord.events", 1)
	reg.AddFloat("job.job-0.reconfig_sec", 2.5)
	reg.Add("job.job-0.moved_bytes", 1<<20)
	reg.Histogram("transform.apply_ns").Observe(5)
	return tr
}

// TestWriteJSONReadTraceRoundTrip: the Perfetto document must read
// back into the same spans and metrics it was written from.
func TestWriteJSONReadTraceRoundTrip(t *testing.T) {
	exp := sampleTracer().Export()
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaV1 {
		t.Fatalf("schema = %q", back.Schema)
	}
	want, _ := json.Marshal(exp.Spans)
	got, _ := json.Marshal(back.Spans)
	if !bytes.Equal(want, got) {
		t.Fatalf("spans changed across the round trip:\n got %s\nwant %s", got, want)
	}
	wantM, _ := json.Marshal(exp.Metrics)
	gotM, _ := json.Marshal(back.Metrics)
	if !bytes.Equal(wantM, gotM) {
		t.Fatalf("metrics changed across the round trip:\n got %s\nwant %s", gotM, wantM)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("round-trip document fails validation: %v", err)
	}
}

// TestFlightJSONLRoundTrip: the JSONL dump leads with an explicit
// header (schema, cap, eviction count) and reads back through the same
// ReadTrace entry point as full traces.
func TestFlightJSONLRoundTrip(t *testing.T) {
	tr := sampleTracer()
	f := tr.FlightRecorder()
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	var head flightHeader
	if err := json.Unmarshal([]byte(first), &head); err != nil {
		t.Fatal(err)
	}
	if head.Schema != SchemaV1 || head.Kind != "flight" || head.Cap != 2 {
		t.Fatalf("header = %+v", head)
	}
	if head.Dropped != f.Dropped() || head.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (4 spans through a cap-2 ring)", head.Dropped)
	}
	back, err := ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 2 {
		t.Fatalf("flight read back %d spans, want 2", len(back.Spans))
	}
}

// TestReadTraceSchemaErrors: every mismatch path must surface a
// *SchemaError with a clear version, and junk must not parse.
func TestReadTraceSchemaErrors(t *testing.T) {
	if _, err := ReadTrace(nil); err == nil {
		t.Fatal("empty file accepted")
	}
	var schemaErr *SchemaError
	_, err := ReadTrace([]byte(`{"schema":"tenplex-trace/v0","traceEvents":[],"spans":[]}`))
	if !errors.As(err, &schemaErr) || schemaErr.Got != "tenplex-trace/v0" {
		t.Fatalf("old schema: %v", err)
	}
	if !strings.Contains(err.Error(), SchemaV1) {
		t.Fatalf("error does not name the supported version: %v", err)
	}
	_, err = ReadTrace([]byte(`{"traceEvents":[],"spans":[]}`))
	if !errors.As(err, &schemaErr) || schemaErr.Got != "" {
		t.Fatalf("missing schema: %v", err)
	}
	_, err = ReadTrace([]byte(`{"schema":"tenplex-trace/v2","kind":"flight","cap":1}`))
	if !errors.As(err, &schemaErr) {
		t.Fatalf("flight schema mismatch: %v", err)
	}
	if _, err = ReadTrace([]byte("not json")); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestValidateTraceJSON covers the tamper cases the CI schema gate
// exists to catch.
func TestValidateTraceJSON(t *testing.T) {
	valid := func() map[string]any {
		return map[string]any{
			"schema":          SchemaV1,
			"displayTimeUnit": "ms",
			"traceEvents": []map[string]any{
				{"name": "process_name", "ph": "M", "pid": 1},
				{"name": "plan", "cat": CatExec, "ph": "X", "ts": 0.0, "pid": 1, "tid": 1},
			},
			"spans": []map[string]any{
				{"id": 1, "name": "reconfig/admit", "cat": CatExec, "t_min": 0.0},
				{"parent": 1, "name": "plan", "cat": CatExec, "t_min": 0.0},
			},
		}
	}
	check := func(mutate func(doc map[string]any), wantErr string) {
		t.Helper()
		doc := valid()
		if mutate != nil {
			mutate(doc)
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		err = ValidateTraceJSON(data)
		if wantErr == "" {
			if err != nil {
				t.Fatalf("valid document rejected: %v", err)
			}
			return
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("want error containing %q, got %v", wantErr, err)
		}
	}
	check(nil, "")
	check(func(d map[string]any) { d["schema"] = "tenplex-trace/v9" }, "not supported")
	check(func(d map[string]any) { delete(d, "spans") }, `missing required key "spans"`)
	check(func(d map[string]any) { delete(d, "traceEvents") }, `missing required key "traceEvents"`)
	check(func(d map[string]any) {
		d["spans"] = []map[string]any{{"id": 1, "cat": CatExec, "t_min": 0.0}}
	}, "missing name")
	check(func(d map[string]any) {
		d["spans"] = []map[string]any{
			{"id": 1, "name": "a", "cat": CatExec, "t_min": 0.0},
			{"id": 1, "name": "b", "cat": CatExec, "t_min": 0.0},
		}
	}, "duplicate id")
	check(func(d map[string]any) {
		d["spans"] = []map[string]any{{"parent": 9, "name": "a", "cat": CatExec, "t_min": 0.0}}
	}, "dangling parent")
	check(func(d map[string]any) {
		d["spans"] = []map[string]any{{"id": 1, "name": "a", "cat": CatExec, "t_min": -1.0}}
	}, "negative time")
	check(func(d map[string]any) {
		d["traceEvents"] = []map[string]any{{"name": "a", "ph": "B", "pid": 1}}
	}, "unsupported phase")
	if err := ValidateTraceJSON([]byte("[]")); err == nil {
		t.Fatal("non-object accepted")
	}
}

// TestSchemaFixture pins the committed v1 fixture: the schema gate in
// CI validates freshly recorded traces against the same rules that
// accept this file, so accidental format drift breaks this test first.
// Regenerate deliberately with UPDATE_GOLDEN=1 and review the diff.
func TestSchemaFixture(t *testing.T) {
	path := filepath.Join("testdata", "trace_v1_fixture.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		var buf bytes.Buffer
		if err := sampleTracer().Export().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("fixture updated: %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing schema fixture (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if err := ValidateTraceJSON(data); err != nil {
		t.Fatalf("committed fixture no longer validates: %v", err)
	}
	trace, err := ReadTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	// The current writer must still produce the fixture byte-for-byte.
	var buf bytes.Buffer
	if err := sampleTracer().Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("exporter output drifted from the committed v1 fixture; " +
			"if intentional, bump the schema or regenerate with UPDATE_GOLDEN=1")
	}
	if len(trace.Spans) == 0 {
		t.Fatal("fixture has no spans")
	}
}
