package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace is a canonical exported trace: schema-stamped, spans in the
// deterministic sort order, metrics flattened. It serializes to a
// single JSON document that Chrome/Perfetto load directly (the
// traceEvents view) while keeping the full span records and metrics
// for tenplex-ctl report and the regression tests.
type Trace struct {
	Schema  string      `json:"schema"`
	Spans   []Span      `json:"spans"`
	Metrics []MetricRow `json:"metrics,omitempty"`
}

// traceFile is the on-disk JSON document: Trace plus the Chrome
// trace-event projection. encoding/json sorts map keys, so the bytes
// are deterministic for deterministic content.
type traceFile struct {
	Schema          string       `json:"schema"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
	Spans           []Span       `json:"spans"`
	Metrics         []MetricRow  `json:"metrics,omitempty"`
}

// traceEvent is one Chrome trace-event record ("X" complete events
// plus "M" metadata). Timestamps are microseconds of simulated time
// (1 sim minute = 60e6 µs).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the trace as Perfetto-loadable JSON. Jobs map to
// threads (sorted by name, so tids are stable), cluster-level spans to
// tid 0.
func (t *Trace) WriteJSON(w io.Writer) error {
	jobs := map[string]bool{}
	for _, s := range t.Spans {
		if s.Job != "" {
			jobs[s.Job] = true
		}
	}
	names := make([]string, 0, len(jobs))
	for j := range jobs {
		names = append(names, j)
	}
	sort.Strings(names)
	tid := map[string]int{}
	events := []traceEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "tenplex"}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: 0, Args: map[string]any{"name": "cluster"}},
	}
	for i, j := range names {
		tid[j] = i + 1
		events = append(events, traceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": j}})
	}
	for _, s := range t.Spans {
		ev := traceEvent{
			Name:  s.Name,
			Cat:   s.Cat,
			Ph:    "X",
			TsUs:  s.TMin * 60e6,
			DurUs: s.DurSec * 1e6,
			PID:   1,
			TID:   tid[s.Job],
			Args:  s.Attrs,
		}
		if s.WallNs > 0 {
			// Perfetto args must not alias the span's attr map; copy
			// before annotating.
			args := make(map[string]any, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["wall_ns"] = s.WallNs
			ev.Args = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{
		Schema:          t.Schema,
		DisplayTimeUnit: "ms",
		TraceEvents:     events,
		Spans:           t.Spans,
		Metrics:         t.Metrics,
	})
}

// flightHeader is the first line of a flight-recorder JSONL dump.
type flightHeader struct {
	Schema  string `json:"schema"`
	Kind    string `json:"kind"`
	Cap     int    `json:"cap"`
	Dropped int64  `json:"dropped"`
}

// WriteJSONL dumps the flight recorder as append-friendly JSONL: a
// schema header line, then one span per line in canonical order. The
// header's dropped count makes ring-buffer truncation explicit.
func (f *Flight) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	cap := 0
	if f != nil {
		cap = f.cap
	}
	if err := enc.Encode(flightHeader{Schema: SchemaV1, Kind: "flight", Cap: cap, Dropped: f.Dropped()}); err != nil {
		return err
	}
	for _, s := range f.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SchemaError reports a trace file whose schema version this build
// cannot read.
type SchemaError struct {
	Got string
}

func (e *SchemaError) Error() string {
	if e.Got == "" {
		return fmt.Sprintf("obs: trace file carries no schema version (want %q); not a tenplex trace, or written by a pre-obs build", SchemaV1)
	}
	return fmt.Sprintf("obs: trace schema %q is not supported by this build (want %q); re-record the trace or use a matching tenplex-ctl", e.Got, SchemaV1)
}

// ReadTrace parses a recorded trace: either the Perfetto JSON document
// WriteJSON produces or a flight-recorder JSONL dump. It fails with a
// *SchemaError when the schema version doesn't match SchemaV1.
func ReadTrace(data []byte) (*Trace, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("obs: empty trace file")
	}
	// A flight dump's first line is a small header object with
	// kind=flight; the Perfetto document is one big object. Peek at the
	// first line to decide.
	first := trimmed
	if i := bytes.IndexByte(trimmed, '\n'); i >= 0 {
		first = trimmed[:i]
	}
	var head flightHeader
	if err := json.Unmarshal(first, &head); err == nil && head.Kind == "flight" {
		if head.Schema != SchemaV1 {
			return nil, &SchemaError{Got: head.Schema}
		}
		t := &Trace{Schema: head.Schema}
		sc := bufio.NewScanner(bytes.NewReader(trimmed))
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		line := 0
		for sc.Scan() {
			line++
			if line == 1 || len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var s Span
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, fmt.Errorf("obs: flight line %d: %w", line, err)
			}
			t.Spans = append(t.Spans, s)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return t, nil
	}
	var tf traceFile
	if err := json.Unmarshal(trimmed, &tf); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	if tf.Schema != SchemaV1 {
		return nil, &SchemaError{Got: tf.Schema}
	}
	return &Trace{Schema: tf.Schema, Spans: tf.Spans, Metrics: tf.Metrics}, nil
}

// ValidateTraceJSON checks an exported Perfetto document against the
// v1 schema: version stamp, required top-level keys, and per-span
// field sanity. CI runs it over a freshly recorded sim trace, and the
// committed testdata fixture pins the expected shape.
func ValidateTraceJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	var schema string
	if err := json.Unmarshal(raw["schema"], &schema); err != nil || schema != SchemaV1 {
		return &SchemaError{Got: schema}
	}
	for _, key := range []string{"traceEvents", "spans"} {
		if _, ok := raw[key]; !ok {
			return fmt.Errorf("obs: trace missing required key %q", key)
		}
	}
	var spans []Span
	if err := json.Unmarshal(raw["spans"], &spans); err != nil {
		return fmt.Errorf("obs: bad spans array: %w", err)
	}
	ids := map[uint64]bool{}
	for i, s := range spans {
		if s.Name == "" || s.Cat == "" {
			return fmt.Errorf("obs: span %d: missing name or cat", i)
		}
		if s.TMin < 0 || s.DurSec < 0 || s.WallNs < 0 {
			return fmt.Errorf("obs: span %d (%s): negative time field", i, s.Name)
		}
		if s.ID != 0 {
			if ids[s.ID] {
				return fmt.Errorf("obs: span %d (%s): duplicate id %d", i, s.Name, s.ID)
			}
			ids[s.ID] = true
		}
	}
	for i, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			return fmt.Errorf("obs: span %d (%s): dangling parent %d", i, s.Name, s.Parent)
		}
	}
	var events []traceEvent
	if err := json.Unmarshal(raw["traceEvents"], &events); err != nil {
		return fmt.Errorf("obs: bad traceEvents array: %w", err)
	}
	for i, e := range events {
		if e.Ph != "X" && e.Ph != "M" {
			return fmt.Errorf("obs: traceEvent %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	return nil
}
