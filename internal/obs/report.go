package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Span names shared by the coordinator's recorder and the report
// renderer — one vocabulary, so a report never has to guess at string
// prefixes.
const (
	SpanPlan       = "plan"
	SpanTransform  = "transform.apply"
	SpanBackoff    = "backoff"
	SpanRollback   = "rollback"
	SpanVerify     = "verify"
	SpanDeploy     = "deploy"
	ReconfigPrefix = "reconfig/" // root change spans: reconfig/<timeline kind>

	// Datapath-level names (LevelDatapath only).
	SpanAssignment = "transform.assignment"
	StorePrefix    = "store." // store.query, store.upload, ...
)

// PhaseRow is one job's phase breakdown aggregated from a trace.
type PhaseRow struct {
	Job        string
	Reconfigs  int     // root reconfiguration spans
	ReconfigS  float64 // total charged downtime (sum of root dur_sec, decision order)
	PlanN      int
	Transform  int // transform attempts
	TransformS float64
	BackoffS   float64
	Rollbacks  int
	Retries    int64 // attempts beyond each change's first
	MovedBytes int64
	WallMs     float64 // execution wall time attributed to this job (0 in det traces)
}

// PhaseBreakdown aggregates a trace's exec-category spans per job.
// Root spans are summed in span-ID order — the decision plane's
// allocation order — so the float totals reproduce the coordinator's
// own accumulation exactly, not merely approximately.
func (t *Trace) PhaseBreakdown() []PhaseRow {
	byJob := map[string]*PhaseRow{}
	get := func(job string) *PhaseRow {
		r := byJob[job]
		if r == nil {
			r = &PhaseRow{Job: job}
			byJob[job] = r
		}
		return r
	}
	roots := make([]Span, 0, len(t.Spans))
	for _, s := range t.Spans {
		if s.Cat != CatExec {
			continue
		}
		r := get(s.Job)
		r.WallMs += float64(s.WallNs) / 1e6
		switch {
		case strings.HasPrefix(s.Name, ReconfigPrefix):
			roots = append(roots, s)
		case s.Name == SpanPlan:
			r.PlanN++
		case s.Name == SpanTransform:
			r.Transform++
			r.TransformS += s.DurSec
			if a, ok := attrInt(s.Attrs, "attempt"); ok && a > 1 {
				r.Retries++
			}
		case s.Name == SpanBackoff:
			r.BackoffS += s.DurSec
		case s.Name == SpanRollback:
			r.Rollbacks++
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	for _, s := range roots {
		r := get(s.Job)
		r.Reconfigs++
		r.ReconfigS += s.DurSec
		if mb, ok := attrInt(s.Attrs, "moved_bytes"); ok {
			r.MovedBytes += mb
		}
	}
	rows := make([]PhaseRow, 0, len(byJob))
	for _, r := range byJob {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Job < rows[j].Job })
	return rows
}

// attrInt reads an integer attribute; JSON round-trips numbers as
// float64, fresh in-memory traces keep int64.
func attrInt(m map[string]any, key string) (int64, bool) {
	switch v := m[key].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// Reconcile cross-checks the trace's span totals against its embedded
// metrics block: per-job reconfiguration seconds and moved bytes, plus
// the cluster-wide retry count, must agree exactly — the property that
// makes a trace trustworthy as a cost breakdown and not just a
// picture. It returns the mismatches (empty means reconciled).
func (t *Trace) Reconcile() []string {
	if len(t.Metrics) == 0 {
		return []string{"trace has no metrics block to reconcile against"}
	}
	var fails []string
	var retries int64
	for _, row := range t.PhaseBreakdown() {
		retries += row.Retries
		if row.Job == "" {
			continue
		}
		if m, ok := Get(t.Metrics, "job."+row.Job+".reconfig_sec"); ok {
			if m.Float != row.ReconfigS {
				fails = append(fails, fmt.Sprintf("job %s: span reconfig %.9fs != metric %.9fs",
					row.Job, row.ReconfigS, m.Float))
			}
		}
		if m, ok := Get(t.Metrics, "job."+row.Job+".moved_bytes"); ok {
			if m.Int != row.MovedBytes {
				fails = append(fails, fmt.Sprintf("job %s: span moved bytes %d != metric %d",
					row.Job, row.MovedBytes, m.Int))
			}
		}
	}
	if m, ok := Get(t.Metrics, "coord.retries"); ok {
		if m.Int != retries {
			fails = append(fails, fmt.Sprintf("cluster: span retries %d != metric %d", retries, m.Int))
		}
	}
	return fails
}

// RenderReport formats the per-job phase breakdown as a text table
// with a reconciliation verdict — the tenplex-ctl report output.
func (t *Trace) RenderReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace schema %s: %d spans, %d metrics\n\n", t.Schema, len(t.Spans), len(t.Metrics))
	fmt.Fprintf(&b, "%-10s %9s %10s %6s %9s %11s %9s %9s %6s %9s\n",
		"job", "reconfigs", "reconfig-s", "plans", "attempts", "transform-s", "backoff-s", "rollbacks", "retry", "moved-MB")
	for _, r := range t.PhaseBreakdown() {
		job := r.Job
		if job == "" {
			job = "(cluster)"
		}
		fmt.Fprintf(&b, "%-10s %9d %10.3f %6d %9d %11.3f %9.3f %9d %6d %9.2f\n",
			job, r.Reconfigs, r.ReconfigS, r.PlanN, r.Transform, r.TransformS,
			r.BackoffS, r.Rollbacks, r.Retries, float64(r.MovedBytes)/1e6)
	}
	if fails := t.Reconcile(); len(fails) > 0 {
		b.WriteString("\nreconciliation FAILED:\n")
		for _, f := range fails {
			b.WriteString("  " + f + "\n")
		}
	} else {
		b.WriteString("\nspan totals reconcile exactly with recorded metrics\n")
	}
	return b.String()
}
