// Package obs is the end-to-end tracing and metrics layer threaded
// through every Tenplex plane: the coordinator's decision loop, the
// per-job execution chains (plan → transform.apply → store I/O →
// verify → rollback), and the store datapath. It produces nested spans
// keyed on the simulation clock — so sim-mode traces are
// bit-deterministic at any worker count — plus a lock-cheap metrics
// registry that absorbs the previously scattered one-off stat structs
// (transform.Stats, store.ClientStats, coordinator recovery metrics)
// under one namespace.
//
// The disabled path is a nil recorder: every method on *Tracer,
// *Registry, *TaskCtx and *Flight is nil-receiver safe and returns
// before allocating, so instrumentation can stay permanently wired at
// zero cost when observability is off.
//
// Determinism contract: span IDs may only be allocated (NewID) from a
// single deterministic thread — in the coordinator, the decision
// plane. Spans recorded from concurrent execution chains are leaves
// (ID 0) whose payloads must themselves be deterministic in sim mode;
// Export canonically sorts all spans, so the trace bytes depend only
// on the span multiset, never on goroutine scheduling. With Det set,
// wall-clock fields are stripped at record time, which is what makes
// sim traces bit-identical across worker counts.
//
// One scoped exception: when a chaos-injected fault aborts a transform
// attempt, the attempt's in-flight siblings are canceled, so WHICH
// datapath operations ran before the cancellation is genuinely
// schedule-dependent. Phase-level spans (LevelPhases) stay
// deterministic under chaos — attempt outcomes are a pure function of
// decision-plane state — but LevelDatapath detail inside failed
// attempts is as nondeterministic as the cancellation it records.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SchemaV1 is the trace schema version stamped into every exported
// trace and flight recording; readers (tenplex-ctl report) refuse
// files carrying any other version.
const SchemaV1 = "tenplex-trace/v1"

// Level selects how deep the tracer records.
type Level int

const (
	// LevelPhases records decision-plane events and per-change phase
	// spans (plan, transform attempts, backoff, rollback, verify) — the
	// default, cheap enough for permanent use.
	LevelPhases Level = iota
	// LevelDatapath additionally records per-assignment transformer
	// spans and per-operation store spans (including chaos-injected
	// faults and retries), so hostile runs show why time was lost.
	LevelDatapath
)

// Span categories.
const (
	CatDecision = "decision" // decision-plane events (one per coordinator event)
	CatExec     = "exec"     // per-change execution phases, sim-priced
	CatDatapath = "datapath" // per-assignment / per-store-op detail
)

// Span is one trace record. Times are simulation-clock (TMin, minutes;
// DurSec, seconds) so sim traces reconcile exactly with the
// coordinator's netsim-priced metrics; WallNs carries the measured
// wall-clock duration where one exists and is zero in deterministic
// mode.
type Span struct {
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Cat    string         `json:"cat"`
	Job    string         `json:"job,omitempty"`
	TMin   float64        `json:"t_min"`
	DurSec float64        `json:"dur_sec,omitempty"`
	WallNs int64          `json:"wall_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer collects spans. The zero value is unusable; build one with
// New. A nil *Tracer is the disabled recorder.
type Tracer struct {
	det   bool
	level Level

	mu    sync.Mutex
	spans []Span

	nextID uint64 // decision-plane only; see package comment

	reg    *Registry
	flight *Flight
}

// Options configures a Tracer.
type Options struct {
	// Det strips wall-clock fields at record time so traces are a pure
	// function of the simulated schedule (bit-identical at any worker
	// count). Sim-mode runs set it; wall-mode and service runs don't.
	Det bool
	// Level is the recording depth; the zero value is LevelPhases.
	Level Level
	// FlightCap, when positive, additionally feeds a per-job flight
	// recorder that keeps only the most recent FlightCap spans per job.
	FlightCap int
}

// New builds an enabled Tracer with its own metrics Registry.
func New(o Options) *Tracer {
	t := &Tracer{det: o.Det, level: o.Level, reg: NewRegistry()}
	if o.FlightCap > 0 {
		t.flight = NewFlight(o.FlightCap)
	}
	return t
}

// Enabled reports whether the tracer records at all; callers guard
// attribute-map construction behind it so the off path allocates
// nothing.
func (t *Tracer) Enabled() bool { return t != nil }

// Det reports whether the tracer is in deterministic (sim) mode.
func (t *Tracer) Det() bool { return t != nil && t.det }

// Deep reports whether per-assignment and per-store-op datapath spans
// should be recorded.
func (t *Tracer) Deep() bool { return t != nil && t.level >= LevelDatapath }

// Metrics returns the tracer's registry (nil when disabled).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// FlightRecorder returns the tracer's flight recorder, nil unless
// FlightCap was set.
func (t *Tracer) FlightRecorder() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// NewID allocates the next span ID. It must only be called from a
// single deterministic thread (the coordinator's decision plane), so
// the ID sequence — and therefore the exported trace — is independent
// of execution-plane scheduling. Spans recorded from worker chains are
// leaves and carry ID 0.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	return t.nextID
}

// Record appends one span. Safe for concurrent use; in deterministic
// mode the wall-clock field is stripped so the record is a pure
// function of the simulated schedule.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if t.det {
		s.WallNs = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	t.flight.Add(s)
}

// SpanCount returns the number of spans recorded so far.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Export snapshots the tracer into a canonical Trace: spans sorted by
// the total order (TMin, Job, Cat, Name, Parent, attrs, DurSec,
// WallNs, ID) and the metrics registry flattened into sorted rows.
// Because the order is a pure function of span content, the exported
// bytes depend only on the recorded multiset — never on the
// interleaving of the chains that recorded it.
//
// Deterministic tracers additionally drop metrics whose name carries
// the "_ns" wall-clock suffix: they measure real elapsed time, which —
// like Span.WallNs, stripped at Record — can never be part of a
// bit-reproducible export.
func (t *Tracer) Export() *Trace {
	if t == nil {
		return &Trace{Schema: SchemaV1}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	SortSpans(spans)
	rows := t.reg.Snapshot()
	if t.det {
		kept := rows[:0]
		for _, r := range rows {
			if !strings.HasSuffix(r.Name, "_ns") {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	return &Trace{Schema: SchemaV1, Spans: spans, Metrics: rows}
}

// SortSpans orders spans canonically (see Export).
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.TMin != b.TMin {
			return a.TMin < b.TMin
		}
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		if ak, bk := attrKey(a.Attrs), attrKey(b.Attrs); ak != bk {
			return ak < bk
		}
		if a.DurSec != b.DurSec {
			return a.DurSec < b.DurSec
		}
		if a.WallNs != b.WallNs {
			return a.WallNs < b.WallNs
		}
		return a.ID < b.ID
	})
}

// attrKey flattens an attribute map into a deterministic string for
// sorting ties; encoding/json would do the same but allocates more.
func attrKey(m map[string]any) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + fmt.Sprint(m[k]) + ";"
	}
	return s
}

// TaskCtx hands a worker chain the context it needs to record leaf
// spans under one decided change: the tracer, the parent span and the
// simulated decision time. It is immutable and may be shared by the
// concurrent fetches of one transform attempt. A nil *TaskCtx is a
// no-op sink.
type TaskCtx struct {
	T      *Tracer
	Parent uint64
	Job    string
	TMin   float64
}

// Deep reports whether datapath-level spans should be recorded under
// this context.
func (c *TaskCtx) Deep() bool { return c != nil && c.T.Deep() }

// Record appends one leaf span under the context's parent.
func (c *TaskCtx) Record(name, cat string, wallNs int64, attrs map[string]any) {
	if c == nil || c.T == nil {
		return
	}
	c.T.Record(Span{Parent: c.Parent, Name: name, Cat: cat, Job: c.Job,
		TMin: c.TMin, WallNs: wallNs, Attrs: attrs})
}

// ScopeVar is a job chain's current task context: the decision plane
// allocates a parent span for each task it fans out, the chain installs
// the matching TaskCtx here before executing, and wrapped stores read it
// to parent their per-operation spans. Tasks on one chain are serial,
// but the transformer's internal workers read the scope concurrently —
// hence the atomic pointer. The zero value is ready to use; an unset or
// nil scope is a no-op sink.
type ScopeVar struct{ p atomic.Pointer[TaskCtx] }

// Set installs c as the current task context; nil-safe.
func (v *ScopeVar) Set(c TaskCtx) {
	if v != nil {
		v.p.Store(&c)
	}
}

// Get returns the current task context (nil when never set); nil-safe.
func (v *ScopeVar) Get() *TaskCtx {
	if v == nil {
		return nil
	}
	return v.p.Load()
}

// Flight is the per-job flight recorder: an append-only sink that
// keeps only the most recent Cap spans per job, so a long-running
// coordinator can always dump "what just happened to job X" without
// unbounded memory. A nil *Flight drops everything.
type Flight struct {
	cap    int
	mu     sync.Mutex
	perJob map[string]*ring
	// dropped counts spans evicted by the cap, so dumps are explicit
	// about truncation instead of silently looking complete.
	dropped atomic.Int64
}

type ring struct {
	buf   []Span
	next  int
	total int
}

// NewFlight builds a flight recorder keeping the last cap spans per
// job (cap < 1 means 256).
func NewFlight(cap int) *Flight {
	if cap < 1 {
		cap = 256
	}
	return &Flight{cap: cap, perJob: map[string]*ring{}}
}

// Add appends one span to its job's ring ("" groups cluster-level
// spans).
func (f *Flight) Add(s Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	r := f.perJob[s.Job]
	if r == nil {
		r = &ring{buf: make([]Span, 0, f.cap)}
		f.perJob[s.Job] = r
	}
	if len(r.buf) < f.cap {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % f.cap
		f.dropped.Add(1)
	}
	r.total++
	f.mu.Unlock()
}

// Dropped returns how many spans the cap has evicted so far.
func (f *Flight) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Snapshot returns the retained spans in canonical order.
func (f *Flight) Snapshot() []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	var out []Span
	for _, r := range f.perJob {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	}
	f.mu.Unlock()
	SortSpans(out)
	return out
}
