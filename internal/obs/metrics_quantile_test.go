package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	// 100 observations of 100ns, 1 of 10000ns: p50 must sit in the
	// bucket holding 100 (top edge 128), p99+ may climb to the outlier
	// bucket but never below the p50 answer.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Observe(10000)
	p50 := h.Quantile(0.5)
	if p50 != 128 {
		t.Fatalf("p50 = %d, want 128 (upper edge of the 100ns bucket)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
	if q := h.Quantile(1.0); q != 16384 {
		t.Fatalf("p100 = %d, want 16384 (upper edge of the 10000ns bucket)", q)
	}
	// Extremes are clamped, not overflowed.
	h.Observe(math.MaxInt64)
	if q := h.Quantile(1.0); q != math.MaxInt64 {
		t.Fatalf("max-bucket quantile = %d", q)
	}
	var nilH *Histogram
	if nilH.Quantile(0.9) != 0 {
		t.Fatalf("nil histogram quantile not 0")
	}
}
