package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the shared metrics namespace: counters, gauges and
// histograms keyed by dotted names ("coord.plans",
// "store.client.retries", "transform.bytes_copied"). Reads and writes
// are lock-cheap — one sync.Map lookup plus an atomic op; hot callers
// can hold the returned handle and skip the lookup entirely. A nil
// *Registry ignores everything.
type Registry struct {
	m sync.Map // name -> *Counter | *Gauge | *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotonically increasing atomic count. Integer
// addition is commutative, so concurrent chains may add in any order
// and the total stays deterministic for a deterministic workload.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value (last write wins). Float summation
// is order-sensitive, so gauges that must stay deterministic are only
// written from the decision plane.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates v (compare-and-swap loop); nil-safe.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts int64 observations into power-of-two buckets
// (bucket i holds values in [2^(i-1), 2^i), bucket 0 holds <= 0 and
// 1). Good enough for latency-ns and bytes distributions without a
// per-observation allocation or lock.
type Histogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value; nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for x := v; x > 1 && i < len(h.buckets)-1; x >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations; nil-safe.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the top edge of the power-of-two bucket the quantile rank
// falls in. Coarse (within 2x) but lock-free — good enough for p50/p99
// latency reporting on the service metrics endpoint; nil-safe, and 0
// with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 1
			}
			if i >= 62 {
				return math.MaxInt64
			}
			return int64(1) << uint(i+1)
		}
	}
	return math.MaxInt64
}

// Counter returns (creating on first use) the named counter; nil-safe
// (returns a nil handle whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.m.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.m.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns (creating on first use) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.m.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.m.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns (creating on first use) the named histogram;
// nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.m.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.m.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Add is the one-shot convenience for cold paths: counter add by name.
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// AddFloat is the one-shot convenience for cold paths: gauge
// accumulate by name.
func (r *Registry) AddFloat(name string, v float64) { r.Gauge(name).Add(v) }

// MetricRow is one flattened metric in a snapshot.
type MetricRow struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind  string  `json:"kind"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	// Count/Sum are histogram aggregates.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
}

// Snapshot flattens the registry into name-sorted rows — a
// deterministic encoding for deterministic values.
func (r *Registry) Snapshot() []MetricRow {
	if r == nil {
		return nil
	}
	var rows []MetricRow
	r.m.Range(func(k, v any) bool {
		row := MetricRow{Name: k.(string)}
		switch m := v.(type) {
		case *Counter:
			row.Kind, row.Int = "counter", m.Value()
		case *Gauge:
			row.Kind, row.Float = "gauge", m.Value()
		case *Histogram:
			row.Kind, row.Count, row.Sum = "histogram", m.Count(), m.Sum()
		}
		rows = append(rows, row)
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Get returns the snapshot row for name, if present.
func Get(rows []MetricRow, name string) (MetricRow, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r, true
		}
	}
	return MetricRow{}, false
}
