package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestNilReceiversAreNoOps pins the zero-cost-when-off contract: every
// method on a nil Tracer, Registry, Flight, TaskCtx and ScopeVar must
// be a safe no-op, so instrumented code never branches on "is obs on".
func TestNilReceiversAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Det() || tr.Deep() {
		t.Fatal("nil tracer claims to be enabled")
	}
	if tr.Metrics() != nil || tr.FlightRecorder() != nil {
		t.Fatal("nil tracer handed out live sinks")
	}
	if id := tr.NewID(); id != 0 {
		t.Fatalf("nil tracer NewID = %d", id)
	}
	tr.Record(Span{Name: "x", Cat: CatExec})
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer recorded a span")
	}
	exp := tr.Export()
	if exp.Schema != SchemaV1 || len(exp.Spans) != 0 {
		t.Fatalf("nil tracer export = %+v", exp)
	}
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var reg *Registry
	reg.Add("a", 1)
	reg.AddFloat("b", 1)
	reg.Counter("a").Add(1)
	reg.Gauge("b").Set(2)
	reg.Histogram("c").Observe(3)
	if rows := reg.Snapshot(); rows != nil {
		t.Fatalf("nil registry snapshot = %v", rows)
	}

	var f *Flight
	f.Add(Span{Name: "x", Cat: CatExec})
	if f.Dropped() != 0 || f.Snapshot() != nil {
		t.Fatal("nil flight retained spans")
	}
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	var c *TaskCtx
	if c.Deep() {
		t.Fatal("nil TaskCtx is deep")
	}
	c.Record("x", CatDatapath, 1, nil)

	var v *ScopeVar
	v.Set(TaskCtx{})
	if v.Get() != nil {
		t.Fatal("nil ScopeVar returned a context")
	}
}

// TestDetStripsWallClock: deterministic tracers must strip WallNs at
// record time and wall-clock (*_ns) metrics at export time — both are
// real-time measurements that can never be bit-reproducible.
func TestDetStripsWallClock(t *testing.T) {
	det := New(Options{Det: true})
	det.Record(Span{ID: det.NewID(), Name: "p", Cat: CatExec, WallNs: 123})
	det.Metrics().Histogram("transform.apply_ns").Observe(456)
	det.Metrics().Add("coord.events", 1)
	exp := det.Export()
	if exp.Spans[0].WallNs != 0 {
		t.Fatalf("det span kept WallNs %d", exp.Spans[0].WallNs)
	}
	if _, ok := Get(exp.Metrics, "transform.apply_ns"); ok {
		t.Fatal("det export kept a wall-clock metric")
	}
	if _, ok := Get(exp.Metrics, "coord.events"); !ok {
		t.Fatal("det export dropped a sim-deterministic metric")
	}

	wall := New(Options{})
	wall.Record(Span{ID: wall.NewID(), Name: "p", Cat: CatExec, WallNs: 123})
	wall.Metrics().Histogram("transform.apply_ns").Observe(456)
	exp = wall.Export()
	if exp.Spans[0].WallNs != 123 {
		t.Fatal("non-det span lost WallNs")
	}
	if _, ok := Get(exp.Metrics, "transform.apply_ns"); !ok {
		t.Fatal("non-det export dropped the wall-clock histogram")
	}
}

// TestSortSpansCanonical: export order must be a pure function of the
// span multiset — two tracers fed the same spans in different
// interleavings export identical sequences.
func TestSortSpansCanonical(t *testing.T) {
	spans := []Span{
		{ID: 3, Name: "b", Cat: CatExec, Job: "j2", TMin: 5},
		{Name: "store.upload", Cat: CatDatapath, Job: "j1", TMin: 5, Parent: 1,
			Attrs: map[string]any{"path": "a"}},
		{Name: "store.upload", Cat: CatDatapath, Job: "j1", TMin: 5, Parent: 1,
			Attrs: map[string]any{"path": "b"}},
		{ID: 1, Name: "a", Cat: CatExec, Job: "j1", TMin: 5},
		{ID: 2, Name: "decision/arrival", Cat: CatDecision, TMin: 0},
	}
	a := New(Options{})
	for _, s := range spans {
		a.Record(s)
	}
	b := New(Options{})
	for i := len(spans) - 1; i >= 0; i-- {
		b.Record(spans[i])
	}
	sa, sb := a.Export().Spans, b.Export().Spans
	if len(sa) != len(spans) || len(sb) != len(spans) {
		t.Fatal("lost spans")
	}
	for i := range sa {
		if sa[i].Name != sb[i].Name || attrKey(sa[i].Attrs) != attrKey(sb[i].Attrs) {
			t.Fatalf("order diverged at %d: %s vs %s", i, sa[i].Name, sb[i].Name)
		}
	}
	if sa[0].Cat != CatDecision {
		t.Fatalf("earliest span not first: %+v", sa[0])
	}
}

// TestFlightRing: the recorder keeps only the last cap spans per job,
// counts evictions explicitly, and snapshots in canonical order.
func TestFlightRing(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Add(Span{Name: "s", Cat: CatExec, Job: "a", TMin: float64(i)})
	}
	f.Add(Span{Name: "s", Cat: CatExec, Job: "b", TMin: 100})
	got := f.Snapshot()
	if len(got) != 5 {
		t.Fatalf("retained %d spans, want 5", len(got))
	}
	if f.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", f.Dropped())
	}
	// Job a's ring must hold its most recent four spans, oldest first.
	for i, want := range []float64{6, 7, 8, 9} {
		if got[i].Job != "a" || got[i].TMin != want {
			t.Fatalf("span %d = %+v, want job a t=%v", i, got[i], want)
		}
	}
	if got[4].Job != "b" {
		t.Fatalf("last span = %+v, want job b", got[4])
	}
	if NewFlight(0).cap != 256 {
		t.Fatal("default cap not applied")
	}
}

// TestTracerFeedsFlight: a tracer built with FlightCap mirrors every
// recorded span into the flight recorder.
func TestTracerFeedsFlight(t *testing.T) {
	tr := New(Options{FlightCap: 2})
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "s", Cat: CatExec, Job: "a", TMin: float64(i)})
	}
	f := tr.FlightRecorder()
	if f == nil {
		t.Fatal("no flight recorder")
	}
	if n := len(f.Snapshot()); n != 2 {
		t.Fatalf("flight retained %d, want 2", n)
	}
	if tr.SpanCount() != 5 {
		t.Fatal("tracer itself must keep everything")
	}
}

// TestRegistry: handles are stable, kinds don't collide, and Snapshot
// flattens everything sorted by name.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("z.count", 2)
	r.Add("z.count", 3)
	r.AddFloat("a.gauge", 1.5)
	r.Gauge("a.gauge").Add(0.25)
	r.Gauge("set.gauge").Set(9)
	h := r.Histogram("m.hist")
	h.Observe(1)
	h.Observe(1 << 20)
	if got := r.Counter("z.count").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Gauge("a.gauge").Value(); got != 1.75 {
		t.Fatalf("gauge = %v", got)
	}
	if h.Count() != 2 || h.Sum() != 1+1<<20 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	rows := r.Snapshot()
	if len(rows) != 4 {
		t.Fatalf("snapshot rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name >= rows[i].Name {
			t.Fatalf("snapshot not sorted: %s >= %s", rows[i-1].Name, rows[i].Name)
		}
	}
	if row, ok := Get(rows, "m.hist"); !ok || row.Kind != "histogram" || row.Count != 2 {
		t.Fatalf("Get(m.hist) = %+v, %v", row, ok)
	}
	if _, ok := Get(rows, "missing"); ok {
		t.Fatal("Get found a missing row")
	}
}

// TestRegistryConcurrent: many goroutines hammering one name must
// neither race (the -race CI job runs this) nor lose increments.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("c", 1)
				r.AddFloat("g", 0.5)
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 4000 {
		t.Fatalf("gauge = %v, want 4000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

// TestScopeVar: the chain scope delivers the installed context to
// concurrent readers, and TaskCtx.Record parents leaves correctly.
func TestScopeVar(t *testing.T) {
	tr := New(Options{Level: LevelDatapath})
	var v ScopeVar
	if v.Get() != nil {
		t.Fatal("unset scope returned a context")
	}
	v.Set(TaskCtx{T: tr, Parent: 7, Job: "j", TMin: 3})
	c := v.Get()
	if !c.Deep() {
		t.Fatal("datapath scope not deep")
	}
	c.Record("store.query", CatDatapath, 11, map[string]any{"path": "p"})
	exp := tr.Export()
	if len(exp.Spans) != 1 {
		t.Fatalf("spans = %d", len(exp.Spans))
	}
	s := exp.Spans[0]
	if s.Parent != 7 || s.Job != "j" || s.TMin != 3 || s.WallNs != 11 {
		t.Fatalf("leaf span = %+v", s)
	}
}
