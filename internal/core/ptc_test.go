package core_test

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/tensor"
)

func devs(ids ...int) []cluster.DeviceID {
	out := make([]cluster.DeviceID, len(ids))
	for i, id := range ids {
		out[i] = cluster.DeviceID(id)
	}
	return out
}

func TestPTCBuildAndValidate(t *testing.T) {
	p := core.NewPTC("toy", devs(0, 1))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4, 4}})
	p.Assign(0, "w", tensor.Region{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 4}})
	p.Assign(1, "w", tensor.Region{{Lo: 2, Hi: 4}, {Lo: 0, Hi: 4}})
	if err := p.Validate(); err != nil {
		t.Fatalf("valid PTC rejected: %v", err)
	}
	if got := p.DeviceBytes(0); got != 2*4*4 {
		t.Fatalf("DeviceBytes = %d", got)
	}
	if got := p.TotalPlacedBytes(); got != 4*4*4 {
		t.Fatalf("TotalPlacedBytes = %d", got)
	}
}

func TestPTCValidateDetectsGaps(t *testing.T) {
	p := core.NewPTC("gap", devs(0))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
	p.Assign(0, "w", tensor.Region{{Lo: 0, Hi: 2}})
	if err := p.Validate(); err == nil {
		t.Fatal("uncovered tensor accepted")
	}
	p.Assign(0, "w", tensor.Region{{Lo: 2, Hi: 4}})
	if err := p.Validate(); err != nil {
		t.Fatalf("covered tensor rejected: %v", err)
	}
}

func TestPTCValidateDetectsMissingPlacement(t *testing.T) {
	p := core.NewPTC("missing", devs(0))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
	if err := p.Validate(); err == nil {
		t.Fatal("tensor with no placement accepted")
	}
}

func TestPTCAssignPanics(t *testing.T) {
	p := core.NewPTC("panics", devs(0))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
	for name, f := range map[string]func(){
		"unknown tensor": func() { p.Assign(0, "nope", tensor.Region{{Lo: 0, Hi: 1}}) },
		"bad region":     func() { p.Assign(0, "w", tensor.Region{{Lo: 0, Hi: 9}}) },
		"bad device":     func() { p.Assign(7, "w", tensor.Region{{Lo: 0, Hi: 4}}) },
		"dup tensor":     func() { p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPTCSlicesDeduplicated(t *testing.T) {
	p := core.NewPTC("dp", devs(0, 1))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
	full := tensor.FullRegion([]int{4})
	p.Assign(0, "w", full)
	p.Assign(1, "w", full) // DP replica
	if got := p.Slices("w"); len(got) != 1 {
		t.Fatalf("slices = %v", got)
	}
	if h := p.Holders("w", tensor.Region{{Lo: 1, Hi: 2}}); len(h) != 2 {
		t.Fatalf("holders = %v", h)
	}
}

func TestPTCWithoutDevices(t *testing.T) {
	p := core.NewPTC("fail", devs(0, 1, 2))
	p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{6}})
	p.Assign(0, "w", tensor.Region{{Lo: 0, Hi: 2}})
	p.Assign(1, "w", tensor.Region{{Lo: 2, Hi: 4}})
	p.Assign(2, "w", tensor.Region{{Lo: 4, Hi: 6}})
	q := p.WithoutDevices(1)
	if len(q.Devices) != 2 {
		t.Fatalf("surviving devices = %v", q.Devices)
	}
	if err := q.Validate(); err == nil {
		t.Fatal("degraded PTC with lost range should fail validation")
	}
	if h := q.Holders("w", tensor.Region{{Lo: 2, Hi: 4}}); len(h) != 0 {
		t.Fatalf("lost range still has holders: %v", h)
	}
	// Original untouched.
	if err := p.Validate(); err != nil {
		t.Fatalf("original mutated: %v", err)
	}
}

func TestPTCEqual(t *testing.T) {
	mk := func() *core.PTC {
		p := core.NewPTC("x", devs(0, 1))
		p.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
		p.Assign(0, "w", tensor.Region{{Lo: 0, Hi: 2}})
		p.Assign(1, "w", tensor.Region{{Lo: 2, Hi: 4}})
		return p
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatal("identical PTCs unequal")
	}
	b.Assign(1, "w", tensor.Region{{Lo: 0, Hi: 1}})
	if a.Equal(b) {
		t.Fatal("different PTCs equal")
	}
}
