package core

import (
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/tensor"
)

// This file implements the planner's source index: every holder of every
// tensor in the source PTC, organized for the three lookups the plan
// generator needs per destination sub-tensor — holders on one device
// (tier 0), holders on one worker (tier 1), and holders overlapping an
// interval along the tensor's dominant split axis (tier 2). The index
// is built once per GeneratePlan / AlignDevices call and replaces the
// per-assignment copy-and-sort of the full holder list.

// srcHolder is one source sub-tensor in the index. lo/hi cache the
// holder's extent along the owning tensorIndex's split axis; rank is
// the device's dense position among the source devices, so send-load
// bookkeeping can use flat arrays regardless of how sparse the
// DeviceID space is.
type srcHolder struct {
	dev    cluster.DeviceID
	rank   int32
	reg    tensor.Region
	lo, hi int
}

// tensorIndex indexes the holders of one tensor. holders is kept in
// canonical order — device ascending, placement order within a device —
// which is exactly the tie-break order of the reference planner's
// stable sort. byLo additionally orders holder positions by their lower
// bound along the dominant split axis for interval lookup.
type tensorIndex struct {
	holders []srcHolder
	devs    []cluster.DeviceID // ascending; devices holding the tensor
	starts  []int32            // len(devs)+1; holders[starts[i]:starts[i+1]] sit on devs[i]
	axis    int                // dominant split axis; -1 when every holder has the same region
	byLo    []int32
	meta    TensorMeta // source-side metadata (planning checks it equals the target's)
	n       int32      // holder count, used as a fill cursor during the build
}

// sourceIndex indexes a whole source PTC by tensor. All per-tensor
// slices are windows into shared backing arrays sized in a counting
// pass, so building it costs a handful of allocations regardless of
// tensor count.
type sourceIndex struct {
	pos      map[TensorID]int32
	all      []tensorIndex
	numRanks int // distinct source devices (dense rank space)
}

// tensor returns the index of one tensor, or nil if no device holds it.
func (idx *sourceIndex) tensor(id TensorID) *tensorIndex {
	p, ok := idx.pos[id]
	if !ok {
		return nil
	}
	return &idx.all[p]
}

// newSourceIndex builds the index. Holder regions are copied once into
// a shared arena, so plan fetches can reference them without aliasing
// the PTC.
func newSourceIndex(from *PTC) *sourceIndex {
	devs := append([]cluster.DeviceID(nil), from.Devices...)
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })

	idx := &sourceIndex{pos: make(map[TensorID]int32, len(from.Tensors))}
	idx.all = make([]tensorIndex, 0, len(from.Tensors))
	totalHolders, totalRanks := 0, 0
	var seq []int32 // tensor position of each holder, in placement order
	for _, d := range devs {
		for _, s := range from.Place[d] {
			p, ok := idx.pos[s.Tensor]
			if !ok {
				p = int32(len(idx.all))
				idx.all = append(idx.all, tensorIndex{axis: -1, meta: from.Tensors[s.Tensor]})
				idx.pos[s.Tensor] = p
			}
			idx.all[p].n++
			seq = append(seq, p)
			totalHolders++
			totalRanks += len(s.Region)
		}
	}

	holderArena := make([]srcHolder, totalHolders)
	rangeArena := make([]tensor.Range, 0, totalRanks)
	off := int32(0)
	for i := range idx.all {
		end := off + idx.all[i].n
		idx.all[i].holders = holderArena[off:off:end]
		off = end
	}
	// Replay the recorded tensor positions instead of re-hashing IDs.
	// Equal device IDs (degenerate, but the reference planner merges
	// them in its load map) share one rank.
	si, rank := 0, int32(-1)
	var prev cluster.DeviceID
	for _, d := range devs {
		if rank < 0 || d != prev {
			rank++
			prev = d
		}
		for _, s := range from.Place[d] {
			ti := &idx.all[seq[si]]
			si++
			start := len(rangeArena)
			rangeArena = append(rangeArena, s.Region...)
			reg := tensor.Region(rangeArena[start:len(rangeArena):len(rangeArena)])
			ti.holders = append(ti.holders, srcHolder{dev: d, rank: rank, reg: reg})
		}
	}
	idx.numRanks = int(rank + 1)

	devArena := make([]cluster.DeviceID, 0, totalHolders)
	startArena := make([]int32, 0, totalHolders+len(idx.all))
	byLoArena := make([]int32, 0, totalHolders)
	for i := range idx.all {
		idx.all[i].finish(&devArena, &startArena, &byLoArena)
	}
	return idx
}

// finish computes device spans, the dominant split axis, and the
// interval-sorted position list, carving slices out of the shared
// arenas.
func (ti *tensorIndex) finish(devArena *[]cluster.DeviceID, startArena *[]int32, byLoArena *[]int32) {
	ds, ss := len(*devArena), len(*startArena)
	for p := 0; p < len(ti.holders); {
		d := ti.holders[p].dev
		q := p
		for q < len(ti.holders) && ti.holders[q].dev == d {
			q++
		}
		*devArena = append(*devArena, d)
		*startArena = append(*startArena, int32(p))
		p = q
	}
	*startArena = append(*startArena, int32(len(ti.holders)))
	ti.devs = (*devArena)[ds:len(*devArena):len(*devArena)]
	ti.starts = (*startArena)[ss:len(*startArena):len(*startArena)]

	// Dominant split axis: the first dimension along which any two
	// holders differ. Fully replicated tensors keep axis == -1.
	first := ti.holders[0].reg
	for _, h := range ti.holders[1:] {
		if len(h.reg) != len(first) {
			ti.axis = -1
			return // mixed ranks: no usable axis, lookup returns all
		}
		for d := range first {
			if h.reg[d] != first[d] {
				if ti.axis < 0 || d < ti.axis {
					ti.axis = d
				}
				break
			}
		}
	}
	if ti.axis < 0 {
		return
	}
	for p := range ti.holders {
		h := &ti.holders[p]
		h.lo, h.hi = h.reg[ti.axis].Lo, h.reg[ti.axis].Hi
	}
	bs := len(*byLoArena)
	for p := range ti.holders {
		*byLoArena = append(*byLoArena, int32(p))
	}
	ti.byLo = (*byLoArena)[bs:len(*byLoArena):len(*byLoArena)]
	// Stable insertion sort by lo: holder lists are short and usually
	// already in split order, and ties must keep canonical order.
	for i := 1; i < len(ti.byLo); i++ {
		for j := i; j > 0 && ti.holders[ti.byLo[j]].lo < ti.holders[ti.byLo[j-1]].lo; j-- {
			ti.byLo[j], ti.byLo[j-1] = ti.byLo[j-1], ti.byLo[j]
		}
	}
}

// span returns the canonical-order position range of device d's
// holders.
func (ti *tensorIndex) span(d cluster.DeviceID) (int32, int32, bool) {
	lo, hi := 0, len(ti.devs)
	for lo < hi {
		mid := (lo + hi) / 2
		if ti.devs[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ti.devs) || ti.devs[lo] != d {
		return 0, 0, false
	}
	return ti.starts[lo], ti.starts[lo+1], true
}

// lookup appends to out the positions of every holder whose extent
// along the split axis overlaps [qlo, qhi). The result is a superset
// filter only — callers still intersect full regions — so tensors
// without a split axis simply return all holders.
func (ti *tensorIndex) lookup(qlo, qhi int, out []int32) []int32 {
	if ti.axis < 0 {
		for p := range ti.holders {
			out = append(out, int32(p))
		}
		return out
	}
	// All holders with lo < qhi form a prefix of byLo.
	lo, hi := 0, len(ti.byLo)
	for lo < hi {
		mid := (lo + hi) / 2
		if ti.holders[ti.byLo[mid]].lo < qhi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, p := range ti.byLo[:lo] {
		if ti.holders[p].hi > qlo {
			out = append(out, p)
		}
	}
	return out
}

// lookupRegion runs lookup with reg's extent along the split axis.
func (ti *tensorIndex) lookupRegion(reg tensor.Region, out []int32) []int32 {
	if ti.axis < 0 || ti.axis >= len(reg) {
		return ti.lookup(0, 0, out)
	}
	return ti.lookup(reg[ti.axis].Lo, reg[ti.axis].Hi, out)
}

// regionAllocator abstracts where region storage comes from, so the
// planner's region algebra has one implementation serving both the
// plain heap (validation paths) and per-worker arenas (the planning
// hot path).
type regionAllocator interface {
	allocRegion(n int) tensor.Region
}

// heapRegions is the plain-make allocator.
type heapRegions struct{}

func (heapRegions) allocRegion(n int) tensor.Region { return make(tensor.Region, n) }

func cloneRegion(al regionAllocator, r tensor.Region) tensor.Region {
	out := al.allocRegion(len(r))
	copy(out, r)
	return out
}

// regionsOverlap reports whether two regions intersect, without
// allocating the intersection.
func regionsOverlap(a, b tensor.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Lo >= b[i].Hi || b[i].Lo >= a[i].Hi {
			return false
		}
	}
	return true
}

// intersectInto is Region.Intersect with an allocation-free miss path.
func intersectInto(a, b tensor.Region, al regionAllocator) (tensor.Region, bool) {
	if !regionsOverlap(a, b) {
		return nil, false
	}
	out := al.allocRegion(len(a))
	for i := range a {
		out[i], _ = a[i].Intersect(b[i])
	}
	return out, true
}

// intersectRegions is intersectInto on the heap.
func intersectRegions(a, b tensor.Region) (tensor.Region, bool) {
	return intersectInto(a, b, heapRegions{})
}
