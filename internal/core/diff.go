package core

import (
	"tenplex/internal/cluster"
)

// The coordinator replans repeatedly against the same source state: a
// scale-out proposal is priced against several candidate topologies, a
// rejected reconfiguration is replanned after the next event, and the
// rollback path plans PTC→PTC′ right after planning PTC→PTC″. All of
// those calls share `from`, and in a datacenter-scale PTC most
// destination sub-tensors are untouched by the change — their plan is
// the same single local fetch every time. DiffPlan exploits both:
// it reuses the previous plan's source index (a pure function of the
// source PTC) and replays its pure-local assignments verbatim, leaving
// only the genuinely moved sub-tensors for the planner.

// planKey identifies one destination sub-tensor for assignment reuse.
type planKey struct {
	dev cluster.DeviceID
	t   TensorID
	reg string
}

// DiffPlan computes the same plan as GeneratePlan(from, to, opts) —
// byte-identical, by construction — but reuses work from prev, a plan
// previously generated against the SAME source PTC. Reuse applies only
// when prev.From and from are the same *PTC value (pointer identity:
// equality by content would cost as much as the work saved); otherwise
// DiffPlan is exactly GeneratePlan.
//
// Two artifacts carry over. The source-holder index is a pure function
// of the source PTC and is shared outright. Assignments of prev that
// are PURE-LOCAL — every fetch reads the destination device's own store
// — are memoized and pasted when the target PTC wants the same
// (device, tensor, region) sub-tensor again. Pure-local assignments are
// resolved entirely by the planner's tier-0 pass, which depends only on
// the source index and the wanted region (not on PlanOptions, which
// steer tier 1/2 only), and they produce no send-load deltas (deltas
// are recorded only for cross-device fetches) — so replaying them can
// never perturb the load-balanced replica choice for the sub-tensors
// that did change.
func DiffPlan(prev *Plan, from, to *PTC, opts PlanOptions) (*Plan, error) {
	if prev == nil || prev.From != from || prev.idx == nil {
		return GeneratePlan(from, to, opts)
	}
	var reuse map[planKey]Assignment
	for _, a := range prev.Assignments {
		if len(a.Fetch) == 0 {
			continue
		}
		local := true
		for _, f := range a.Fetch {
			if f.Src.Kind != FromDevice || f.Src.Device != a.Device {
				local = false
				break
			}
		}
		if !local {
			continue
		}
		if reuse == nil {
			reuse = make(map[planKey]Assignment)
		}
		reuse[planKey{a.Device, a.Tensor, a.Region.String()}] = a
	}
	return generatePlan(from, to, opts, prev.idx, reuse)
}
