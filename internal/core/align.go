package core

import (
	"sort"

	"tenplex/internal/cluster"
)

// AlignDevices permutes the device assignment of the target PTC so that
// every placement group lands on the device that already holds the most
// bytes of it under the source PTC. The parallelization structure
// (σ, φ) is untouched — only α changes, which is legal because any
// bijection of sub-collections onto devices realizes the same
// configuration. This is part of Tenplex's minimal-data-movement
// optimization (§4.2): without alignment, growing the pipeline degree
// shifts every stage to a different device and moves nearly all state;
// with it, each device keeps the prefix of its old stage.
//
// The returned PTC uses the same device set as `to`; `to` itself is not
// modified.
//
// Alignment optimizes state movement, not steady-state placement: a
// pathological overlap pattern could scatter a tensor-parallel group
// across workers. In practice doubling or halving one parallelism
// degree maps whole groups onto the contiguous devices that held them,
// so NVLink locality is preserved; callers with stricter placement
// constraints can build the target PTC with an explicit allocation
// instead.
func AlignDevices(from, to *PTC) *PTC {
	type cand struct {
		group int // index into to.Devices (placement group)
		dev   cluster.DeviceID
		olap  int64
	}

	// One interval-indexed pass per group: look up the source holders
	// overlapping each wanted sub-tensor and accumulate overlap bytes
	// per source device, instead of re-scanning every device's holdings
	// for every (group, device) pair.
	idx := newSourceIndex(from)
	var cands []cand
	olapByDev := map[cluster.DeviceID]int64{}
	var hits []int32
	for g := range to.Devices {
		clear(olapByDev)
		for _, want := range to.Place[to.Devices[g]] {
			meta, ok := to.Tensors[want.Tensor]
			if !ok {
				continue
			}
			ti := idx.tensor(want.Tensor)
			if ti == nil {
				continue
			}
			hits = ti.lookupRegion(want.Region, hits[:0])
			for _, p := range hits {
				h := &ti.holders[p]
				if inter, ok := intersectRegions(want.Region, h.reg); ok {
					olapByDev[h.dev] += inter.NumBytes(meta.DType)
				}
			}
		}
		for _, d := range to.Devices {
			if o := olapByDev[d]; o > 0 {
				cands = append(cands, cand{group: g, dev: d, olap: o})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].olap != cands[j].olap {
			return cands[i].olap > cands[j].olap
		}
		if cands[i].group != cands[j].group {
			return cands[i].group < cands[j].group
		}
		return cands[i].dev < cands[j].dev
	})

	assign := make(map[int]cluster.DeviceID, len(to.Devices))
	taken := map[cluster.DeviceID]bool{}
	for _, c := range cands {
		if _, done := assign[c.group]; done || taken[c.dev] {
			continue
		}
		assign[c.group] = c.dev
		taken[c.dev] = true
	}
	// Unmatched groups take the remaining devices in order.
	var free []cluster.DeviceID
	for _, d := range to.Devices {
		if !taken[d] {
			free = append(free, d)
		}
	}
	fi := 0
	for g := range to.Devices {
		if _, done := assign[g]; !done {
			assign[g] = free[fi]
			fi++
		}
	}

	out := NewPTC(to.Name, to.Devices)
	for id, meta := range to.Tensors {
		out.Tensors[id] = meta
	}
	for g, oldDev := range to.Devices {
		newDev := assign[g]
		out.Place[newDev] = append([]SubTensor(nil), to.Place[oldDev]...)
	}
	return out
}
