package core

// GeneratePlanReference exposes the sequential reference planner to the
// external test package, which property-tests that the indexed parallel
// planner emits byte-identical plans.
var GeneratePlanReference = generatePlanReference
