package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// DiffPlan is an optimization of GeneratePlan for the coordinator's
// repeat-replan pattern — same source PTC, a stream of candidate
// targets — and must be byte-identical to planning from scratch: same
// assignments, same fetch sources, same replica choices. These property
// tests pin that down over randomized successive-reconfiguration
// sequences (reuse hits), plus every fallback edge (nil prior, source
// changed, hand-built prior).

// diffEqual fails the test unless DiffPlan and GeneratePlan produced
// identical plans for (from, to, opts).
func diffEqual(t *testing.T, label string, prev *core.Plan, from, to *core.PTC, opts core.PlanOptions) *core.Plan {
	t.Helper()
	want, wantErr := core.GeneratePlan(from, to, opts)
	got, gotErr := core.DiffPlan(prev, from, to, opts)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: outcome mismatch: GeneratePlan err=%v, DiffPlan err=%v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		return nil
	}
	if got.From != from || got.To != to {
		t.Fatalf("%s: DiffPlan attached wrong PTCs", label)
	}
	if !reflect.DeepEqual(got.Assignments, want.Assignments) {
		for i := range want.Assignments {
			if i < len(got.Assignments) && !reflect.DeepEqual(got.Assignments[i], want.Assignments[i]) {
				t.Fatalf("%s: assignment %d diverges:\n  diff: %+v\n  full: %+v",
					label, i, got.Assignments[i], want.Assignments[i])
			}
		}
		t.Fatalf("%s: assignment count %d != %d", label, len(got.Assignments), len(want.Assignments))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: DiffPlan output invalid: %v", label, err)
	}
	return got
}

func TestDiffPlanMatchesGeneratePlanRandomized(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8) // 6 layers incl. embeddings
	topo := cluster.OnPrem16()
	var cfgs []parallel.Config
	for _, n := range []int{1, 2, 4, 6, 8} {
		cfgs = append(cfgs, parallel.Enumerate(n, 8, 6)...)
	}
	trials := 0
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10; trial++ {
			cf := cfgs[rng.Intn(len(cfgs))]
			offF := rng.Intn(3)
			from := buildPTC(t, m, cf, allocFrom(offF, cf.WorldSize()))

			// The coordinator's repeat-replan pattern: one source PTC, a
			// stream of candidate targets, each plan diffed against the
			// last. The first target equals the source configuration, so
			// every trial includes a maximal-reuse (all pure-local) step.
			var prev *core.Plan
			for step := 0; step < 4; step++ {
				ct := cf
				offT := offF
				if step > 0 {
					ct = cfgs[rng.Intn(len(cfgs))]
					offT = rng.Intn(3)
				}
				to := buildPTC(t, m, ct, allocFrom(offT, ct.WorldSize()))
				opts := core.PlanOptions{}
				if rng.Intn(2) == 0 {
					opts.Topo = topo
				}
				label := fmt.Sprintf("seed %d trial %d step %d %v@%d -> %v@%d",
					seed, trial, step, cf, offF, ct, offT)
				prev = diffEqual(t, label, prev, from, to, opts)
				trials++
			}

			// Fallback: a degraded source is a DIFFERENT PTC pointer, so
			// the prior plan must be ignored, reused state and all.
			if len(from.Devices) > 1 {
				degraded := from.WithoutDevices(from.Devices[rng.Intn(len(from.Devices))])
				ct := cfgs[rng.Intn(len(cfgs))]
				to := buildPTC(t, m, ct, allocFrom(rng.Intn(3), ct.WorldSize()))
				label := fmt.Sprintf("seed %d trial %d degraded", seed, trial)
				diffEqual(t, label, prev, degraded, to, core.PlanOptions{StorageFallback: true})
				trials++
			}
		}
	}
	if trials < 100 {
		t.Fatalf("only %d randomized scenarios, want >= 100", trials)
	}
}

func TestDiffPlanFallbackEdges(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 2}, alloc(4))
	opts := core.PlanOptions{}

	// nil prior: plain GeneratePlan.
	first := diffEqual(t, "nil prior", nil, from, to, opts)

	// Hand-built prior (no retained source index): must be ignored.
	hand := &core.Plan{From: from, To: to, Assignments: first.Assignments}
	diffEqual(t, "hand-built prior", hand, from, to, opts)

	// Prior planned from a different source PTC: must be ignored even
	// though the PTCs are structurally equal.
	fromCopy := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	diffEqual(t, "different source pointer", first, fromCopy, to, opts)

	// Repeated identical target: the second diff reuses the first plan's
	// pure-local assignments and still matches from-scratch output.
	second := diffEqual(t, "repeat target", first, from, to, opts)
	if !reflect.DeepEqual(first.Assignments, second.Assignments) {
		t.Fatal("repeat replan of the identical transition diverged")
	}
}
