package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/tensor"
)

// The indexed parallel planner is an optimization of the sequential
// reference planner, not a redesign: both must emit byte-identical
// plans — same assignment order, same fetch order, same source choices
// under send-load balancing, same storage fallbacks. These property
// tests pin that down over randomized grow / shrink / redeploy /
// failure transitions.

func requireIdenticalPlans(t *testing.T, label string, got, want *core.Plan) {
	t.Helper()
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("%s: %d assignments, reference has %d", label, len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		ga, wa := got.Assignments[i], want.Assignments[i]
		if ga.Device != wa.Device || ga.Tensor != wa.Tensor || !ga.Region.Equal(wa.Region) {
			t.Fatalf("%s: assignment %d differs:\n got %d %s%v\nwant %d %s%v",
				label, i, ga.Device, ga.Tensor, ga.Region, wa.Device, wa.Tensor, wa.Region)
		}
		if len(ga.Fetch) != len(wa.Fetch) {
			t.Fatalf("%s: assignment %d (%s%v): %d fetches, reference has %d\n got %v\nwant %v",
				label, i, ga.Tensor, ga.Region, len(ga.Fetch), len(wa.Fetch), ga.Fetch, wa.Fetch)
		}
		for j := range wa.Fetch {
			gf, wf := ga.Fetch[j], wa.Fetch[j]
			if !gf.Want.Equal(wf.Want) || gf.Src.Kind != wf.Src.Kind ||
				gf.Src.Device != wf.Src.Device || !gf.Src.Region.Equal(wf.Src.Region) {
				t.Fatalf("%s: assignment %d fetch %d differs:\n got %+v\nwant %+v",
					label, i, j, gf, wf)
			}
		}
	}
}

// comparePlanners runs both planners on the same inputs and fails on
// any observable difference.
func comparePlanners(t *testing.T, label string, from, to *core.PTC, opts core.PlanOptions) {
	t.Helper()
	got, gotErr := core.GeneratePlan(from, to, opts)
	want, wantErr := core.GeneratePlanReference(from, to, opts)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: got %v, reference %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error text mismatch:\n got %v\nwant %v", label, gotErr, wantErr)
		}
		return
	}
	requireIdenticalPlans(t, label, got, want)
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: optimized plan invalid: %v", label, err)
	}
}

// TestPlanEquivalenceRandomized is the central equivalence property
// test: >= 100 randomized (T,P,D) -> (T',P',D') transitions over random
// device sets and topologies, with random fail-stop device loss and
// StorageFallback recovery mixed in.
func TestPlanEquivalenceRandomized(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8) // 6 layers
	topo := cluster.OnPrem16()
	var cfgs []parallel.Config
	for _, n := range []int{1, 2, 4, 6, 8} {
		cfgs = append(cfgs, parallel.Enumerate(n, 8, 6)...)
	}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 30; trial++ {
			cf := cfgs[rng.Intn(len(cfgs))]
			ct := cfgs[rng.Intn(len(cfgs))]
			offF, offT := rng.Intn(4), rng.Intn(4)
			from, err := parallel.BuildPTC(m, cf, allocFrom(offF, cf.WorldSize()))
			if err != nil {
				t.Fatal(err)
			}
			to, err := parallel.BuildPTC(m, ct, allocFrom(offT, ct.WorldSize()))
			if err != nil {
				t.Fatal(err)
			}
			opts := core.PlanOptions{}
			if rng.Intn(2) == 0 {
				opts.Topo = topo
			}
			label := fmt.Sprintf("seed %d trial %d %v@%d -> %v@%d (topo=%v)",
				seed, trial, cf, offF, ct, offT, opts.Topo != nil)

			// Healthy transition.
			comparePlanners(t, label, from, to, opts)

			// Fail-stop transition: kill a random strict subset of the
			// source devices, recover with StorageFallback. Depending on
			// what died this exercises replica recovery, storage reads,
			// or (without fallback) identical error behavior.
			nFail := 1 + rng.Intn(len(from.Devices))
			if nFail == len(from.Devices) {
				nFail--
			}
			if nFail > 0 {
				perm := rng.Perm(len(from.Devices))
				var failed []cluster.DeviceID
				for _, i := range perm[:nFail] {
					failed = append(failed, from.Devices[i])
				}
				degraded := from.WithoutDevices(failed...)
				fopts := opts
				fopts.StorageFallback = rng.Intn(4) != 0
				comparePlanners(t, label+fmt.Sprintf(" failed=%v fallback=%v", failed, fopts.StorageFallback),
					degraded, to, fopts)
			}
		}
	}
}

// TestPlanEquivalenceMoE covers expert-parallel PTC reshapes, whose
// slicing function is the identity (whole-tensor expert groups).
func TestPlanEquivalenceMoE(t *testing.T) {
	m := model.MoECustom(3, 16, 8)
	shapes := []parallel.MoEConfig{
		{EP: 2, DP: 1}, {EP: 4, DP: 1}, {EP: 8, DP: 1},
		{EP: 2, DP: 2}, {EP: 4, DP: 2}, {EP: 2, DP: 4},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		cf := shapes[rng.Intn(len(shapes))]
		ct := shapes[rng.Intn(len(shapes))]
		from, err := parallel.BuildMoEPTC(m, cf, allocFrom(rng.Intn(3), cf.WorldSize()))
		if err != nil {
			t.Fatal(err)
		}
		to, err := parallel.BuildMoEPTC(m, ct, allocFrom(rng.Intn(3), ct.WorldSize()))
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("moe trial %d %v -> %v", trial, cf, ct)
		comparePlanners(t, label, from, to, core.PlanOptions{})
	}
}

// TestPlanEquivalenceSequence covers sequence-parallel sample tensors,
// which slice along the sequence (first) dimension.
func TestPlanEquivalenceSequence(t *testing.T) {
	batch := parallel.SequenceBatch{
		Samples: []string{"sample.0", "sample.1", "sample.2"},
		SeqLen:  24, Features: 4, DType: tensor.Float32,
	}
	degrees := []int{1, 2, 3, 4, 6}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		sf := degrees[rng.Intn(len(degrees))]
		st := degrees[rng.Intn(len(degrees))]
		from, err := parallel.BuildSequencePTC("batch", batch, sf, alloc(sf))
		if err != nil {
			t.Fatal(err)
		}
		to, err := parallel.BuildSequencePTC("batch", batch, st, alloc(st))
		if err != nil {
			t.Fatal(err)
		}
		comparePlanners(t, fmt.Sprintf("seq trial %d SP%d -> SP%d", trial, sf, st),
			from, to, core.PlanOptions{})
	}
}

// TestPlanEquivalenceFullScale pins equivalence on the exact benchmark
// workload, so the measured configuration is also the verified one.
func TestPlanEquivalenceFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence is slow")
	}
	m := model.GPT3XL().WithAdam()
	topo := cluster.OnPrem16()
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 4, PP: 2, DP: 1}, topo.FirstN(8))
	if err != nil {
		t.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 8, PP: 2, DP: 1}, topo.FirstN(16))
	if err != nil {
		t.Fatal(err)
	}
	comparePlanners(t, "fullscale", from, to, core.PlanOptions{Topo: topo})
}
