package core

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/netsim"
	"tenplex/internal/tensor"
)

// SourceKind discriminates where a fetched range comes from.
type SourceKind int

const (
	// FromDevice fetches the range from another device's Tensor Store
	// (or the local one).
	FromDevice SourceKind = iota
	// FromStorage fetches the range from the persisted checkpoint in
	// remote storage; used when no surviving device holds it.
	FromStorage
)

// Source identifies where a Fetch reads from.
type Source struct {
	Kind   SourceKind
	Device cluster.DeviceID // valid when Kind == FromDevice
	// Region is the source sub-tensor's full extent in base coordinates;
	// the executor translates the fetched range into the source's local
	// coordinates with it.
	Region tensor.Region
}

// Fetch moves one range of a base tensor to a destination device. The
// range is expressed in base coordinates; Want ⊆ Src.Region always
// holds for device sources.
type Fetch struct {
	Want tensor.Region
	Src  Source
}

// Assignment rebuilds one destination sub-tensor from fetches. If all
// fetches are local and cover the region with a single piece identical
// to an existing sub-tensor, the executor recognizes it as a no-op.
type Assignment struct {
	Device cluster.DeviceID
	Tensor TensorID
	Region tensor.Region // destination sub-tensor extent, base coords
	Fetch  []Fetch
}

// Plan is an executable reconfiguration plan: the full set of
// destination sub-tensors and where each of their ranges comes from.
// Executing every assignment transforms the state placed as PTC into
// the state required by PTC′ (Alg. 1's split ∥ move ∥ merge sequence:
// splits are range-reads of source sub-tensors, moves are cross-device
// fetches, merges are the assembly of multi-fetch assignments).
type Plan struct {
	From, To    *PTC
	Assignments []Assignment
}

// PlanOptions tunes plan generation.
type PlanOptions struct {
	// Topo enables locality-aware source selection (prefer same device,
	// then same worker, then least-loaded remote). Optional; without it
	// sources are chosen by device order with load balancing.
	Topo *cluster.Topology
	// StorageFallback permits fetching ranges that no device holds from
	// the persisted checkpoint; required for failure recovery when all
	// replicas of a range died.
	StorageFallback bool
}

// GeneratePlan computes the minimal reconfiguration plan that turns the
// state described by from into the state described by to. Tensors are
// matched by ID; both PTCs must agree on tensor metadata. For every
// destination sub-tensor, ranges already resident on the destination
// device are never re-sent (minimality), and remaining ranges are
// fetched from the nearest holder.
func GeneratePlan(from, to *PTC, opts PlanOptions) (*Plan, error) {
	for id, m := range to.Tensors {
		fm, ok := from.Tensors[id]
		if !ok {
			return nil, fmt.Errorf("core: plan: tensor %q exists only in target PTC", id)
		}
		if fm.DType != m.DType || !tensor.ShapeEqual(fm.Shape, m.Shape) {
			return nil, fmt.Errorf("core: plan: tensor %q metadata differs between PTCs", id)
		}
	}

	// Index source sub-tensors by tensor ID.
	type holder struct {
		dev cluster.DeviceID
		reg tensor.Region
	}
	srcIdx := map[TensorID][]holder{}
	for _, d := range from.Devices {
		for _, s := range from.Place[d] {
			srcIdx[s.Tensor] = append(srcIdx[s.Tensor], holder{d, s.Region})
		}
	}

	// recvLoad tracks bytes each source device has been asked to send,
	// for balancing among equally-near replicas.
	sendLoad := map[cluster.DeviceID]int64{}

	plan := &Plan{From: from, To: to}
	for _, d := range to.Devices {
		for _, want := range to.Place[d] {
			meta := to.Tensors[want.Tensor]
			a := Assignment{Device: d, Tensor: want.Tensor, Region: want.Region.Clone()}
			remaining := []tensor.Region{want.Region.Clone()}

			holders := append([]holder(nil), srcIdx[want.Tensor]...)
			// Preference: local device first, then same worker, then
			// remote ordered by current send load (ties by device ID for
			// determinism).
			sort.SliceStable(holders, func(i, j int) bool {
				hi, hj := holders[i], holders[j]
				pi, pj := sourceTier(opts.Topo, d, hi.dev), sourceTier(opts.Topo, d, hj.dev)
				if pi != pj {
					return pi < pj
				}
				if pi == 2 && sendLoad[hi.dev] != sendLoad[hj.dev] {
					return sendLoad[hi.dev] < sendLoad[hj.dev]
				}
				return hi.dev < hj.dev
			})

			for _, h := range holders {
				if len(remaining) == 0 {
					break
				}
				var next []tensor.Region
				for _, rem := range remaining {
					inter, ok := rem.Intersect(h.reg)
					if !ok {
						next = append(next, rem)
						continue
					}
					a.Fetch = append(a.Fetch, Fetch{
						Want: inter,
						Src:  Source{Kind: FromDevice, Device: h.dev, Region: h.reg.Clone()},
					})
					if h.dev != d {
						sendLoad[h.dev] += inter.NumBytes(meta.DType)
					}
					next = append(next, subtractRegion(rem, inter)...)
				}
				remaining = next
			}

			for _, rem := range remaining {
				if !opts.StorageFallback {
					return nil, fmt.Errorf(
						"core: plan: range %v of %q unavailable on any device (enable StorageFallback to recover from checkpoints)",
						rem, want.Tensor)
				}
				a.Fetch = append(a.Fetch, Fetch{
					Want: rem,
					Src:  Source{Kind: FromStorage, Region: tensor.FullRegion(meta.Shape)},
				})
			}

			// Deterministic fetch order: by region, device sources first.
			sort.SliceStable(a.Fetch, func(i, j int) bool {
				return regionLess(a.Fetch[i].Want, a.Fetch[j].Want)
			})
			plan.Assignments = append(plan.Assignments, a)
		}
	}
	return plan, nil
}

// sourceTier ranks a source device relative to the destination:
// 0 = same device, 1 = same worker, 2 = remote.
func sourceTier(topo *cluster.Topology, dst, src cluster.DeviceID) int {
	if src == dst {
		return 0
	}
	if topo != nil && topo.SameWorker(src, dst) {
		return 1
	}
	return 2
}

// IsNoop reports whether the assignment requires no work: a single local
// fetch whose source region equals the wanted region.
func (a Assignment) IsNoop() bool {
	return len(a.Fetch) == 1 &&
		a.Fetch[0].Src.Kind == FromDevice &&
		a.Fetch[0].Src.Device == a.Device &&
		a.Fetch[0].Src.Region.Equal(a.Region) &&
		a.Fetch[0].Want.Equal(a.Region)
}

// Stats aggregates what a plan will do.
type Stats struct {
	Assignments int
	Noops       int
	Fetches     int
	Splits      int // fetches that read a strict sub-range of the source
	Merges      int // assignments assembled from more than one fetch

	LocalBytes       int64 // same-device fetches
	IntraWorkerBytes int64 // cross-device, same-worker (needs Topo)
	CrossWorkerBytes int64 // cross-worker
	StorageBytes     int64 // checkpoint fallback reads
	MovedBytes       int64 // everything leaving its device (incl. storage)
}

// Stats computes plan statistics; topo may be nil (intra-worker bytes
// then count as cross-worker).
func (p *Plan) Stats(topo *cluster.Topology) Stats {
	var st Stats
	for _, a := range p.Assignments {
		st.Assignments++
		if a.IsNoop() {
			st.Noops++
			continue
		}
		meta := p.To.Tensors[a.Tensor]
		if len(a.Fetch) > 1 {
			st.Merges++
		}
		for _, f := range a.Fetch {
			st.Fetches++
			bytes := f.Want.NumBytes(meta.DType)
			if f.Src.Kind == FromStorage {
				st.StorageBytes += bytes
				st.MovedBytes += bytes
				continue
			}
			if !f.Src.Region.Equal(f.Want) {
				st.Splits++
			}
			switch {
			case f.Src.Device == a.Device:
				st.LocalBytes += bytes
			case topo != nil && topo.SameWorker(f.Src.Device, a.Device):
				st.IntraWorkerBytes += bytes
				st.MovedBytes += bytes
			default:
				st.CrossWorkerBytes += bytes
				st.MovedBytes += bytes
			}
		}
	}
	return st
}

// Flows converts the plan into netsim flows for the performance plane.
// Split work (reading a strict sub-range out of a stored sub-tensor) and
// merge work (assembling a destination from multiple pieces) are
// accounted as host-memory copy bytes.
func (p *Plan) Flows(topo *cluster.Topology) []netsim.Flow {
	var flows []netsim.Flow
	for _, a := range p.Assignments {
		if a.IsNoop() {
			continue
		}
		meta := p.To.Tensors[a.Tensor]
		merge := len(a.Fetch) > 1
		for _, f := range a.Fetch {
			bytes := f.Want.NumBytes(meta.DType)
			var fl netsim.Flow
			if f.Src.Kind == FromStorage {
				fl = netsim.Flow{From: netsim.StorageEP(), To: netsim.DevEP(a.Device), Bytes: bytes}
			} else {
				fl = netsim.Flow{From: netsim.DevEP(f.Src.Device), To: netsim.DevEP(a.Device), Bytes: bytes}
				if f.Src.Device == a.Device {
					fl.Bytes = 0 // local range reads do not cross a link
				}
			}
			var cp int64
			if f.Src.Kind == FromDevice && !f.Src.Region.Equal(f.Want) {
				cp += bytes // split copy at the source
			}
			if merge {
				cp += bytes // merge copy at the destination
			}
			fl.CopyBytes = cp
			flows = append(flows, fl)
		}
	}
	return flows
}

// Ops renders the plan as the paper's split / move / merge operation
// sequence, for logging and inspection.
func (p *Plan) Ops() []string {
	var ops []string
	for _, a := range p.Assignments {
		if a.IsNoop() {
			continue
		}
		for _, f := range a.Fetch {
			if f.Src.Kind == FromStorage {
				ops = append(ops, fmt.Sprintf("load(%s%v, storage -> dev%d)", a.Tensor, f.Want, a.Device))
				continue
			}
			if !f.Src.Region.Equal(f.Want) {
				ops = append(ops, fmt.Sprintf("split(%s%v -> %v, dev%d)", a.Tensor, f.Src.Region, f.Want, f.Src.Device))
			}
			if f.Src.Device != a.Device {
				ops = append(ops, fmt.Sprintf("move(%s%v, dev%d -> dev%d)", a.Tensor, f.Want, f.Src.Device, a.Device))
			}
		}
		if len(a.Fetch) > 1 {
			ops = append(ops, fmt.Sprintf("merge(%s%v, %d pieces, dev%d)", a.Tensor, a.Region, len(a.Fetch), a.Device))
		}
	}
	return ops
}

// Validate checks plan invariants: every assignment's fetches exactly
// tile its region with no gaps, every device fetch stays inside its
// declared source region, and destination regions match the target PTC.
func (p *Plan) Validate() error {
	want := map[cluster.DeviceID]map[string]bool{}
	for _, d := range p.To.Devices {
		want[d] = map[string]bool{}
		for _, s := range p.To.Place[d] {
			want[d][string(s.Tensor)+s.Region.String()] = true
		}
	}
	for _, a := range p.Assignments {
		key := string(a.Tensor) + a.Region.String()
		if !want[a.Device][key] {
			return fmt.Errorf("core: plan: assignment %q on dev %d not in target PTC", key, a.Device)
		}
		delete(want[a.Device], key)

		var regs []tensor.Region
		for _, f := range a.Fetch {
			if !a.Region.Contains(f.Want) {
				return fmt.Errorf("core: plan: fetch %v outside assignment %v of %q", f.Want, a.Region, a.Tensor)
			}
			if f.Src.Kind == FromDevice && !f.Src.Region.Contains(f.Want) {
				return fmt.Errorf("core: plan: fetch %v outside source region %v of %q", f.Want, f.Src.Region, a.Tensor)
			}
			regs = append(regs, f.Want)
		}
		if !covers(a.Region, regs) {
			return fmt.Errorf("core: plan: fetches do not cover %v of %q on dev %d", a.Region, a.Tensor, a.Device)
		}
	}
	for d, rest := range want {
		for key := range rest {
			return fmt.Errorf("core: plan: target sub-tensor %q on dev %d has no assignment", key, d)
		}
	}
	return nil
}
