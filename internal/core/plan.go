package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tenplex/internal/cluster"
	"tenplex/internal/netsim"
	"tenplex/internal/tensor"
)

// SourceKind discriminates where a fetched range comes from.
type SourceKind int

const (
	// FromDevice fetches the range from another device's Tensor Store
	// (or the local one).
	FromDevice SourceKind = iota
	// FromStorage fetches the range from the persisted checkpoint in
	// remote storage; used when no surviving device holds it.
	FromStorage
)

// Source identifies where a Fetch reads from.
type Source struct {
	Kind   SourceKind
	Device cluster.DeviceID // valid when Kind == FromDevice
	// Region is the source sub-tensor's full extent in base coordinates;
	// the executor translates the fetched range into the source's local
	// coordinates with it.
	Region tensor.Region
}

// Fetch moves one range of a base tensor to a destination device. The
// range is expressed in base coordinates; Want ⊆ Src.Region always
// holds for device sources.
type Fetch struct {
	Want tensor.Region
	Src  Source
}

// Assignment rebuilds one destination sub-tensor from fetches. If all
// fetches are local and cover the region with a single piece identical
// to an existing sub-tensor, the executor recognizes it as a no-op.
type Assignment struct {
	Device cluster.DeviceID
	Tensor TensorID
	Region tensor.Region // destination sub-tensor extent, base coords
	Fetch  []Fetch
}

// Plan is an executable reconfiguration plan: the full set of
// destination sub-tensors and where each of their ranges comes from.
// Executing every assignment transforms the state placed as PTC into
// the state required by PTC′ (Alg. 1's split ∥ move ∥ merge sequence:
// splits are range-reads of source sub-tensors, moves are cross-device
// fetches, merges are the assembly of multi-fetch assignments).
type Plan struct {
	From, To    *PTC
	Assignments []Assignment
	// validated caches a successful Validate. Plans are immutable after
	// generation (mutating Assignments afterwards is unsupported), so
	// executors re-applying or re-checking the same plan (retry after a
	// transient store fault, benchmarks, the coordinator pricing then
	// executing) skip the full invariant sweep. Atomic so concurrent
	// executors sharing one plan stay race-free.
	validated atomic.Bool
	// idx retains the source-holder index built during generation so
	// DiffPlan can reuse it for later plans against the same source PTC.
	// Pure metadata derived from From; nil on hand-built plans.
	idx *sourceIndex
}

// PlanOptions tunes plan generation.
type PlanOptions struct {
	// Topo enables locality-aware source selection (prefer same device,
	// then same worker, then least-loaded remote). Optional; without it
	// sources are chosen by device order with load balancing.
	Topo *cluster.Topology
	// StorageFallback permits fetching ranges that no device holds from
	// the persisted checkpoint; required for failure recovery when all
	// replicas of a range died.
	StorageFallback bool
}

// checkPlanMeta verifies that every target tensor exists in the source
// PTC with identical metadata.
func checkPlanMeta(from, to *PTC) error {
	for id, m := range to.Tensors {
		fm, ok := from.Tensors[id]
		if !ok {
			return fmt.Errorf("core: plan: tensor %q exists only in target PTC", id)
		}
		if fm.DType != m.DType || !tensor.ShapeEqual(fm.Shape, m.Shape) {
			return fmt.Errorf("core: plan: tensor %q metadata differs between PTCs", id)
		}
	}
	return nil
}

// sendDelta records bytes a tier-1 fetch asks a source device to send,
// keyed by the device's dense source rank; deltas are folded into the
// global send-load counters during the sequential tier-2 pass so
// load-balanced replica choice stays identical to the reference
// planner's.
type sendDelta struct {
	rank  int32
	bytes int64
}

// pendingAssignment is one destination sub-tensor that the parallel
// tier-0/1 phase could not finish on its own: either ranges remain
// uncovered for the sequential tier-2 pass, or tier-1 fetches produced
// send-load deltas the sequential pass must fold in. Assignments fully
// resolved by local holders produce no pending entry at all.
type pendingAssignment struct {
	slot      int32 // index into plan.Assignments
	ti        *tensorIndex
	remaining []tensor.Region
	delta     []sendDelta
}

// planWorker carries per-goroutine scratch and arenas. Fetches and
// deltas accumulate in scratch slices and are committed to arena
// windows per assignment; regions produced by intersection and
// subtraction live in the ranges arena for the plan's lifetime.
type planWorker struct {
	to           *PTC
	topo         *cluster.Topology
	idx          *sourceIndex
	reuse        map[planKey]Assignment
	rem, next    []tensor.Region
	fetchScratch []Fetch
	deltaScratch []sendDelta
	fetches      sliceArena[Fetch]
	deltas       sliceArena[sendDelta]
	regions      sliceArena[tensor.Region]
	ranges       sliceArena[tensor.Range]
}

// allocRegion makes planWorker a regionAllocator backed by its arena,
// so the shared region algebra (intersectInto, subtractInto) serves
// the hot path without per-region heap allocations.
func (w *planWorker) allocRegion(n int) tensor.Region {
	return tensor.Region(w.ranges.alloc(n))
}

// intersect is intersectInto on the worker arena.
func (w *planWorker) intersect(a, b tensor.Region) (tensor.Region, bool) {
	return intersectInto(a, b, w)
}

// clone copies a region into the worker arena.
func (w *planWorker) clone(r tensor.Region) tensor.Region {
	return cloneRegion(w, r)
}

// subtract is subtractInto on the worker arena.
func (w *planWorker) subtract(dst []tensor.Region, rem, inter tensor.Region) []tensor.Region {
	return subtractInto(dst, rem, inter, w)
}

// consume intersects one holder with every remaining range, emitting
// fetches into the scratch list and shrinking w.rem, exactly as the
// reference planner's inner loop does for that holder.
func (w *planWorker) consume(h *srcHolder, dt tensor.DType, dst cluster.DeviceID) {
	w.next = w.next[:0]
	for _, rem := range w.rem {
		inter, ok := w.intersect(rem, h.reg)
		if !ok {
			w.next = append(w.next, rem)
			continue
		}
		w.fetchScratch = append(w.fetchScratch, Fetch{
			Want: inter,
			Src:  Source{Kind: FromDevice, Device: h.dev, Region: h.reg},
		})
		if h.dev != dst {
			w.deltaScratch = append(w.deltaScratch, sendDelta{h.rank, inter.NumBytes(dt)})
		}
		w.next = w.subtract(w.next, rem, inter)
	}
	w.rem, w.next = w.next, w.rem
}

// planDevice resolves tier-0 (local) and tier-1 (same-worker) sources
// for every sub-tensor wanted by destination device di, writing
// finished assignments directly into assigns starting at slot base.
// This is the embarrassingly parallel part of plan generation: nothing
// here depends on other destinations, and slot ranges are disjoint
// across workers. The returned pending list covers only assignments
// the sequential pass must touch.
func (w *planWorker) planDevice(di int, assigns []Assignment, base int32) []pendingAssignment {
	d := w.to.Devices[di]
	place := w.to.Place[d]
	var out []pendingAssignment
	for i, want := range place {
		if w.reuse != nil {
			if a, ok := w.reuse[planKey{d, want.Tensor, want.Region.String()}]; ok {
				// A memoized pure-local assignment: resolved entirely by
				// tier 0, so replaying it produces no remaining ranges and
				// no send-load deltas — nothing for the sequential pass.
				assigns[base+int32(i)] = a
				continue
			}
		}
		ti := w.idx.tensor(want.Tensor)
		var dt tensor.DType
		if ti != nil {
			dt = ti.meta.DType
		} else {
			dt = w.to.Tensors[want.Tensor].DType
		}
		a := Assignment{Device: d, Tensor: want.Tensor, Region: w.clone(want.Region)}
		w.fetchScratch = w.fetchScratch[:0]
		w.deltaScratch = w.deltaScratch[:0]
		w.rem = append(w.rem[:0], want.Region)
		if ti != nil {
			if start, end, ok := ti.span(d); ok {
				for p := start; p < end && len(w.rem) > 0; p++ {
					w.consume(&ti.holders[p], dt, d)
				}
			}
			if w.topo != nil && len(w.rem) > 0 {
				for _, sd := range ti.devs {
					if len(w.rem) == 0 {
						break
					}
					if sd == d || !w.topo.SameWorker(sd, d) {
						continue
					}
					start, end, _ := ti.span(sd)
					for p := start; p < end && len(w.rem) > 0; p++ {
						w.consume(&ti.holders[p], dt, d)
					}
				}
			}
		}
		a.Fetch = w.fetches.save(w.fetchScratch)
		sortFetches(a.Fetch)
		slot := base + int32(i)
		assigns[slot] = a
		if len(w.rem) > 0 || len(w.deltaScratch) > 0 {
			out = append(out, pendingAssignment{
				slot:      slot,
				ti:        ti,
				remaining: w.regions.save(w.rem),
				delta:     w.deltas.save(w.deltaScratch),
			})
		}
	}
	return out
}

// GeneratePlan computes the minimal reconfiguration plan that turns the
// state described by from into the state described by to. Tensors are
// matched by ID; both PTCs must agree on tensor metadata. For every
// destination sub-tensor, ranges already resident on the destination
// device are never re-sent (minimality), and remaining ranges are
// fetched from the nearest holder.
//
// Plan generation is pure metadata work and must stay cheap at
// production scale, so the hot path is indexed and parallel: source
// holders are indexed once per call (see sourceIndex), local and
// same-worker source selection runs concurrently across destination
// devices on a bounded worker pool, and only the send-load-balanced
// remote replica choice runs as a cheap sequential pass — which keeps
// the output byte-identical to the reference planner
// (generatePlanReference).
func GeneratePlan(from, to *PTC, opts PlanOptions) (*Plan, error) {
	return generatePlan(from, to, opts, nil, nil)
}

// generatePlan is the shared implementation behind GeneratePlan and
// DiffPlan. idx, when non-nil, must be the source index of from (it is
// a pure function of from, so sharing it across plans is safe); reuse,
// when non-nil, maps destination sub-tensors to memoized pure-local
// assignments pasted without replanning (see DiffPlan for why that
// preserves byte-identical output).
func generatePlan(from, to *PTC, opts PlanOptions, idx *sourceIndex, reuse map[planKey]Assignment) (*Plan, error) {
	if err := checkPlanMeta(from, to); err != nil {
		return nil, err
	}
	if idx == nil {
		idx = newSourceIndex(from)
	}

	bases := make([]int32, len(to.Devices)+1)
	for i, d := range to.Devices {
		bases[i+1] = bases[i] + int32(len(to.Place[d]))
	}
	nAssign := int(bases[len(to.Devices)])
	assigns := make([]Assignment, nAssign)

	// Parallel tier-0/1 phase across destination devices. Workers write
	// into disjoint slot ranges of assigns.
	pending := make([][]pendingAssignment, len(to.Devices))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(to.Devices) {
		workers = len(to.Devices)
	}
	if workers <= 1 {
		w := &planWorker{to: to, topo: opts.Topo, idx: idx, reuse: reuse}
		for di := range to.Devices {
			pending[di] = w.planDevice(di, assigns, bases[di])
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := &planWorker{to: to, topo: opts.Topo, idx: idx, reuse: reuse}
				for {
					di := int(cursor.Add(1)) - 1
					if di >= len(to.Devices) {
						return
					}
					pending[di] = w.planDevice(di, assigns, bases[di])
				}
			}()
		}
		wg.Wait()
	}

	// Sequential tier-2 / storage pass, in deterministic assignment
	// order. sendLoad tracks bytes each source device has been asked to
	// send, for balancing among equally-near replicas; it is indexed by
	// the dense source-device rank, so sparse DeviceID spaces cost
	// nothing.
	sendLoad := make([]int64, idx.numRanks)
	w := &planWorker{to: to, topo: opts.Topo, idx: idx}
	var cands []int32

	for di, d := range to.Devices {
		for pi := range pending[di] {
			pa := &pending[di][pi]
			a := &assigns[pa.slot]
			if len(pa.remaining) == 0 {
				for _, pd := range pa.delta {
					sendLoad[pd.rank] += pd.bytes
				}
				continue
			}
			ti := pa.ti
			cands = cands[:0]
			var dt tensor.DType
			if ti != nil {
				dt = ti.meta.DType
				// Remote candidates: holders overlapping the remaining
				// ranges' extent along the split axis, excluding
				// tier-0/1 devices already consumed.
				qlo, qhi := boundsAlong(ti.axis, pa.remaining)
				cands = ti.lookup(qlo, qhi, cands)
				k := 0
				for _, p := range cands {
					sd := ti.holders[p].dev
					if sd == d || (opts.Topo != nil && opts.Topo.SameWorker(sd, d)) {
						continue
					}
					cands[k] = p
					k++
				}
				cands = cands[:k]
				// The reference planner orders remote holders by (send
				// load at assignment start, device, placement order);
				// candidate positions already encode the last two keys.
				sortCandidates(cands, ti, sendLoad)
			}
			for _, pd := range pa.delta {
				sendLoad[pd.rank] += pd.bytes
			}
			w.fetchScratch = append(w.fetchScratch[:0], a.Fetch...)
			w.rem = append(w.rem[:0], pa.remaining...)
			for _, p := range cands {
				if len(w.rem) == 0 {
					break
				}
				h := &ti.holders[p]
				w.next = w.next[:0]
				for _, rem := range w.rem {
					inter, ok := w.intersect(rem, h.reg)
					if !ok {
						w.next = append(w.next, rem)
						continue
					}
					w.fetchScratch = append(w.fetchScratch, Fetch{
						Want: inter,
						Src:  Source{Kind: FromDevice, Device: h.dev, Region: h.reg},
					})
					sendLoad[h.rank] += inter.NumBytes(dt)
					w.next = w.subtract(w.next, rem, inter)
				}
				w.rem, w.next = w.next, w.rem
			}
			if len(w.rem) > 0 {
				if !opts.StorageFallback {
					return nil, fmt.Errorf(
						"core: plan: range %v of %q unavailable on any device (enable StorageFallback to recover from checkpoints)",
						w.rem[0], a.Tensor)
				}
				shape := to.Tensors[a.Tensor].Shape
				full := tensor.Region(w.ranges.alloc(len(shape)))
				for i, n := range shape {
					full[i] = tensor.Range{Lo: 0, Hi: n}
				}
				for _, rem := range w.rem {
					w.fetchScratch = append(w.fetchScratch, Fetch{
						Want: rem,
						Src:  Source{Kind: FromStorage, Region: full},
					})
				}
			}
			a.Fetch = w.fetches.save(w.fetchScratch)
			// Deterministic fetch order: by region, device sources first.
			sortFetches(a.Fetch)
		}
	}
	return &Plan{From: from, To: to, Assignments: assigns, idx: idx}, nil
}

// boundsAlong returns the extent of regs along axis; regs is non-empty.
func boundsAlong(axis int, regs []tensor.Region) (int, int) {
	if axis < 0 || axis >= len(regs[0]) {
		return 0, 0
	}
	lo, hi := regs[0][axis].Lo, regs[0][axis].Hi
	for _, r := range regs[1:] {
		if r[axis].Lo < lo {
			lo = r[axis].Lo
		}
		if r[axis].Hi > hi {
			hi = r[axis].Hi
		}
	}
	return lo, hi
}

// sortCandidates insertion-sorts holder positions by (send load,
// device, canonical position) — a total order, so the result is
// deterministic regardless of input order. Candidate lists are small;
// insertion sort avoids sort.Slice's closure allocation.
func sortCandidates(cands []int32, ti *tensorIndex, load []int64) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(ti, load, cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

func candLess(ti *tensorIndex, load []int64, p, q int32) bool {
	hp, hq := &ti.holders[p], &ti.holders[q]
	if load[hp.rank] != load[hq.rank] {
		return load[hp.rank] < load[hq.rank]
	}
	if hp.dev != hq.dev {
		return hp.dev < hq.dev
	}
	return p < q
}

// sortFetches stable-sorts fetches by wanted region. Fetch lists are
// small; insertion sort is stable and allocation-free.
func sortFetches(fs []Fetch) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && regionLess(fs[j].Want, fs[j-1].Want); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// sourceTier ranks a source device relative to the destination:
// 0 = same device, 1 = same worker, 2 = remote.
func sourceTier(topo *cluster.Topology, dst, src cluster.DeviceID) int {
	if src == dst {
		return 0
	}
	if topo != nil && topo.SameWorker(src, dst) {
		return 1
	}
	return 2
}

// IsNoop reports whether the assignment requires no work: a single local
// fetch whose source region equals the wanted region.
func (a Assignment) IsNoop() bool {
	return len(a.Fetch) == 1 &&
		a.Fetch[0].Src.Kind == FromDevice &&
		a.Fetch[0].Src.Device == a.Device &&
		a.Fetch[0].Src.Region.Equal(a.Region) &&
		a.Fetch[0].Want.Equal(a.Region)
}

// Stats aggregates what a plan will do.
type Stats struct {
	Assignments int
	Noops       int
	Fetches     int
	Splits      int // fetches that read a strict sub-range of the source
	Merges      int // assignments assembled from more than one fetch

	LocalBytes       int64 // same-device fetches
	IntraWorkerBytes int64 // cross-device, same-worker (needs Topo)
	CrossWorkerBytes int64 // cross-worker
	StorageBytes     int64 // checkpoint fallback reads
	MovedBytes       int64 // everything leaving its device (incl. storage)
}

// Stats computes plan statistics; topo may be nil (intra-worker bytes
// then count as cross-worker).
func (p *Plan) Stats(topo *cluster.Topology) Stats {
	var st Stats
	for _, a := range p.Assignments {
		st.Assignments++
		if a.IsNoop() {
			st.Noops++
			continue
		}
		meta := p.To.Tensors[a.Tensor]
		if len(a.Fetch) > 1 {
			st.Merges++
		}
		for _, f := range a.Fetch {
			st.Fetches++
			bytes := f.Want.NumBytes(meta.DType)
			if f.Src.Kind == FromStorage {
				st.StorageBytes += bytes
				st.MovedBytes += bytes
				continue
			}
			if !f.Src.Region.Equal(f.Want) {
				st.Splits++
			}
			switch {
			case f.Src.Device == a.Device:
				st.LocalBytes += bytes
			case topo != nil && topo.SameWorker(f.Src.Device, a.Device):
				st.IntraWorkerBytes += bytes
				st.MovedBytes += bytes
			default:
				st.CrossWorkerBytes += bytes
				st.MovedBytes += bytes
			}
		}
	}
	return st
}

// Flows converts the plan into netsim flows for the performance plane.
// Split work (reading a strict sub-range out of a stored sub-tensor) and
// merge work (assembling a destination from multiple pieces) are
// accounted as host-memory copy bytes.
func (p *Plan) Flows(topo *cluster.Topology) []netsim.Flow {
	var flows []netsim.Flow
	for _, a := range p.Assignments {
		if a.IsNoop() {
			continue
		}
		meta := p.To.Tensors[a.Tensor]
		merge := len(a.Fetch) > 1
		for _, f := range a.Fetch {
			bytes := f.Want.NumBytes(meta.DType)
			var fl netsim.Flow
			if f.Src.Kind == FromStorage {
				fl = netsim.Flow{From: netsim.StorageEP(), To: netsim.DevEP(a.Device), Bytes: bytes}
			} else {
				fl = netsim.Flow{From: netsim.DevEP(f.Src.Device), To: netsim.DevEP(a.Device), Bytes: bytes}
				if f.Src.Device == a.Device {
					fl.Bytes = 0 // local range reads do not cross a link
				}
			}
			var cp int64
			if f.Src.Kind == FromDevice && !f.Src.Region.Equal(f.Want) {
				cp += bytes // split copy at the source
			}
			if merge {
				cp += bytes // merge copy at the destination
			}
			fl.CopyBytes = cp
			flows = append(flows, fl)
		}
	}
	return flows
}

// Ops renders the plan as the paper's split / move / merge operation
// sequence, for logging and inspection.
func (p *Plan) Ops() []string {
	var ops []string
	for _, a := range p.Assignments {
		if a.IsNoop() {
			continue
		}
		for _, f := range a.Fetch {
			if f.Src.Kind == FromStorage {
				ops = append(ops, fmt.Sprintf("load(%s%v, storage -> dev%d)", a.Tensor, f.Want, a.Device))
				continue
			}
			if !f.Src.Region.Equal(f.Want) {
				ops = append(ops, fmt.Sprintf("split(%s%v -> %v, dev%d)", a.Tensor, f.Src.Region, f.Want, f.Src.Device))
			}
			if f.Src.Device != a.Device {
				ops = append(ops, fmt.Sprintf("move(%s%v, dev%d -> dev%d)", a.Tensor, f.Want, f.Src.Device, a.Device))
			}
		}
		if len(a.Fetch) > 1 {
			ops = append(ops, fmt.Sprintf("merge(%s%v, %d pieces, dev%d)", a.Tensor, a.Region, len(a.Fetch), a.Device))
		}
	}
	return ops
}

// Validate checks plan invariants: every assignment's fetches exactly
// tile its region with no gaps, every device fetch stays inside its
// declared source region, and destination regions match the target PTC.
func (p *Plan) Validate() error {
	if p.validated.Load() {
		return nil
	}
	// Outstanding target sub-tensors, keyed by (device, tensor): the
	// few regions per key are matched by value, avoiding a string key
	// per sub-tensor.
	type placeKey struct {
		dev cluster.DeviceID
		t   TensorID
	}
	want := map[placeKey][]tensor.Region{}
	for _, d := range p.To.Devices {
		for _, s := range p.To.Place[d] {
			k := placeKey{d, s.Tensor}
			want[k] = append(want[k], s.Region)
		}
	}
	regs := make([]tensor.Region, 0, 16)
	for _, a := range p.Assignments {
		k := placeKey{a.Device, a.Tensor}
		outstanding := want[k]
		found := -1
		for i, r := range outstanding {
			if r.Equal(a.Region) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("core: plan: assignment %q on dev %d not in target PTC",
				string(a.Tensor)+a.Region.String(), a.Device)
		}
		outstanding[found] = outstanding[len(outstanding)-1]
		want[k] = outstanding[:len(outstanding)-1]

		regs = regs[:0]
		for _, f := range a.Fetch {
			if !a.Region.Contains(f.Want) {
				return fmt.Errorf("core: plan: fetch %v outside assignment %v of %q", f.Want, a.Region, a.Tensor)
			}
			if f.Src.Kind == FromDevice && !f.Src.Region.Contains(f.Want) {
				return fmt.Errorf("core: plan: fetch %v outside source region %v of %q", f.Want, f.Src.Region, a.Tensor)
			}
			regs = append(regs, f.Want)
		}
		if !covers(a.Region, regs) {
			return fmt.Errorf("core: plan: fetches do not cover %v of %q on dev %d", a.Region, a.Tensor, a.Device)
		}
	}
	for k, rest := range want {
		for _, r := range rest {
			return fmt.Errorf("core: plan: target sub-tensor %q on dev %d has no assignment",
				string(k.t)+r.String(), k.dev)
		}
	}
	p.validated.Store(true)
	return nil
}
