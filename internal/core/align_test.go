package core_test

import (
	"testing"

	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

func TestAlignDevicesIdentityStaysPut(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8)
	cfg := parallel.Config{TP: 2, PP: 2, DP: 1}
	from := buildPTC(t, m, cfg, alloc(4))
	to := buildPTC(t, m, cfg, alloc(4))
	aligned := core.AlignDevices(from, to)
	if !aligned.Equal(from) {
		t.Fatal("identity alignment changed placement")
	}
	plan, err := core.GeneratePlan(from, aligned, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := plan.Stats(nil); st.MovedBytes != 0 {
		t.Fatalf("aligned identity moved %d bytes", st.MovedBytes)
	}
}

func TestAlignDevicesHalvesPipelineDoublingMovement(t *testing.T) {
	// Doubling PP without alignment shifts almost every stage to a new
	// device; with alignment each old device keeps the prefix of its
	// stage and only the suffix moves.
	m := model.GPTCustom(14, 16, 2, 64, 8) // 16 layers
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 4, DP: 1}, alloc(4))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 8, DP: 1}, alloc(8))

	planRaw, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aligned := core.AlignDevices(from, to)
	if err := aligned.Validate(); err != nil {
		t.Fatal(err)
	}
	planAligned, err := core.GeneratePlan(from, aligned, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := planRaw.Stats(nil).MovedBytes
	opt := planAligned.Stats(nil).MovedBytes
	if opt >= raw {
		t.Fatalf("alignment did not reduce movement: %d -> %d", raw, opt)
	}
	if opt > raw*2/3 {
		t.Fatalf("alignment too weak: %d of %d bytes still move", opt, raw)
	}
	// Execution correctness still holds.
	golden, placed := materialize(from)
	verify(t, aligned, golden, execute(t, planAligned, golden, placed))
}

func TestAlignDevicesKeepsDeviceSet(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, allocFrom(2, 2))
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 2, DP: 1}, alloc(4))
	aligned := core.AlignDevices(from, to)
	if len(aligned.Devices) != 4 {
		t.Fatalf("device set changed: %v", aligned.Devices)
	}
	seen := map[string]bool{}
	for _, d := range aligned.Devices {
		if len(aligned.Place[d]) == 0 {
			t.Fatalf("device %d lost its placement group", d)
		}
		for _, s := range aligned.Place[d] {
			seen[string(s.Tensor)+s.Region.String()] = true
		}
	}
	for _, d := range to.Devices {
		for _, s := range to.Place[d] {
			if !seen[string(s.Tensor)+s.Region.String()] {
				t.Fatalf("alignment dropped %s%v", s.Tensor, s.Region)
			}
		}
	}
	if err := aligned.Validate(); err != nil {
		t.Fatal(err)
	}
}
