package core

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/tensor"
)

// generatePlanReference is the original linear-scan plan generator,
// kept as the executable specification of GeneratePlan: the optimized
// indexed planner must produce byte-identical plans (see
// TestPlanEquivalence*). It is O(assignments × holders log holders)
// and must not be used on hot paths.
func generatePlanReference(from, to *PTC, opts PlanOptions) (*Plan, error) {
	if err := checkPlanMeta(from, to); err != nil {
		return nil, err
	}

	// Index source sub-tensors by tensor ID.
	type holder struct {
		dev cluster.DeviceID
		reg tensor.Region
	}
	srcIdx := map[TensorID][]holder{}
	for _, d := range from.Devices {
		for _, s := range from.Place[d] {
			srcIdx[s.Tensor] = append(srcIdx[s.Tensor], holder{d, s.Region})
		}
	}

	// sendLoad tracks bytes each source device has been asked to send,
	// for balancing among equally-near replicas.
	sendLoad := map[cluster.DeviceID]int64{}

	plan := &Plan{From: from, To: to}
	for _, d := range to.Devices {
		for _, want := range to.Place[d] {
			meta := to.Tensors[want.Tensor]
			a := Assignment{Device: d, Tensor: want.Tensor, Region: want.Region.Clone()}
			remaining := []tensor.Region{want.Region.Clone()}

			holders := append([]holder(nil), srcIdx[want.Tensor]...)
			// Preference: local device first, then same worker, then
			// remote ordered by current send load (ties by device ID for
			// determinism).
			sort.SliceStable(holders, func(i, j int) bool {
				hi, hj := holders[i], holders[j]
				pi, pj := sourceTier(opts.Topo, d, hi.dev), sourceTier(opts.Topo, d, hj.dev)
				if pi != pj {
					return pi < pj
				}
				if pi == 2 && sendLoad[hi.dev] != sendLoad[hj.dev] {
					return sendLoad[hi.dev] < sendLoad[hj.dev]
				}
				return hi.dev < hj.dev
			})

			for _, h := range holders {
				if len(remaining) == 0 {
					break
				}
				var next []tensor.Region
				for _, rem := range remaining {
					inter, ok := rem.Intersect(h.reg)
					if !ok {
						next = append(next, rem)
						continue
					}
					a.Fetch = append(a.Fetch, Fetch{
						Want: inter,
						Src:  Source{Kind: FromDevice, Device: h.dev, Region: h.reg.Clone()},
					})
					if h.dev != d {
						sendLoad[h.dev] += inter.NumBytes(meta.DType)
					}
					next = append(next, subtractRegion(rem, inter)...)
				}
				remaining = next
			}

			for _, rem := range remaining {
				if !opts.StorageFallback {
					return nil, fmt.Errorf(
						"core: plan: range %v of %q unavailable on any device (enable StorageFallback to recover from checkpoints)",
						rem, want.Tensor)
				}
				a.Fetch = append(a.Fetch, Fetch{
					Want: rem,
					Src:  Source{Kind: FromStorage, Region: tensor.FullRegion(meta.Shape)},
				})
			}

			// Deterministic fetch order: by region, device sources first.
			sort.SliceStable(a.Fetch, func(i, j int) bool {
				return regionLess(a.Fetch[i].Want, a.Fetch[j].Want)
			})
			plan.Assignments = append(plan.Assignments, a)
		}
	}
	return plan, nil
}
