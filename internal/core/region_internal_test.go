package core

import (
	"math/rand"
	"testing"

	"tenplex/internal/tensor"
)

// White-box tests of the region algebra the planner is built on.

func randomRegionIn(rng *rand.Rand, shape []int) tensor.Region {
	reg := make(tensor.Region, len(shape))
	for d, n := range shape {
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		reg[d] = tensor.Range{Lo: lo, Hi: hi}
	}
	return reg
}

func TestSubtractRegionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		shape := []int{2 + rng.Intn(8), 2 + rng.Intn(8), 1 + rng.Intn(4)}
		a := randomRegionIn(rng, shape)
		b := randomRegionIn(rng, shape)
		parts := subtractRegion(a, b)

		// 1. Pieces are disjoint from b and from each other, and lie in a.
		for i, p := range parts {
			if !p.Valid(shape) {
				t.Fatalf("piece %v invalid", p)
			}
			if !a.Contains(p) {
				t.Fatalf("piece %v escapes %v", p, a)
			}
			if _, ok := p.Intersect(b); ok {
				t.Fatalf("piece %v overlaps subtrahend %v", p, b)
			}
			for j := i + 1; j < len(parts); j++ {
				if _, ok := p.Intersect(parts[j]); ok {
					t.Fatalf("pieces %v and %v overlap", p, parts[j])
				}
			}
		}

		// 2. Conservation: |a| = |pieces| + |a ∩ b|.
		total := 0
		for _, p := range parts {
			total += p.NumElems()
		}
		if inter, ok := a.Intersect(b); ok {
			total += inter.NumElems()
		}
		if total != a.NumElems() {
			t.Fatalf("subtract not conservative: %d vs %d (a=%v b=%v)", total, a.NumElems(), a, b)
		}
	}
}

func TestSubtractRegionDisjoint(t *testing.T) {
	a := tensor.Region{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}}
	b := tensor.Region{{Lo: 5, Hi: 6}, {Lo: 0, Hi: 2}}
	parts := subtractRegion(a, b)
	if len(parts) != 1 || !parts[0].Equal(a) {
		t.Fatalf("disjoint subtract = %v", parts)
	}
}

func TestSubtractRegionFullCover(t *testing.T) {
	a := tensor.Region{{Lo: 1, Hi: 3}, {Lo: 1, Hi: 3}}
	b := tensor.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	if parts := subtractRegion(a, b); len(parts) != 0 {
		t.Fatalf("covered subtract = %v", parts)
	}
}

func TestCoversProperties(t *testing.T) {
	full := tensor.Region{{Lo: 0, Hi: 6}, {Lo: 0, Hi: 6}}
	// A proper tiling covers.
	var tiles []tensor.Region
	for _, r := range tensor.SplitRanges(6, 3) {
		for _, c := range tensor.SplitRanges(6, 2) {
			tiles = append(tiles, tensor.Region{r, c})
		}
	}
	if !covers(full, tiles) {
		t.Fatal("tiling does not cover")
	}
	// Removing any tile breaks coverage.
	for i := range tiles {
		rest := append(append([]tensor.Region{}, tiles[:i]...), tiles[i+1:]...)
		if covers(full, rest) {
			t.Fatalf("coverage holds without tile %d", i)
		}
	}
	// Overlapping regions still cover.
	overlapping := []tensor.Region{
		{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 6}},
		{{Lo: 2, Hi: 6}, {Lo: 0, Hi: 6}},
	}
	if !covers(full, overlapping) {
		t.Fatal("overlapping cover rejected")
	}
}

func TestRegionLessIsStrictWeakOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shape := []int{6, 6}
	for trial := 0; trial < 200; trial++ {
		a := randomRegionIn(rng, shape)
		b := randomRegionIn(rng, shape)
		if regionLess(a, b) && regionLess(b, a) {
			t.Fatalf("regionLess not antisymmetric: %v %v", a, b)
		}
		if a.Equal(b) && (regionLess(a, b) || regionLess(b, a)) {
			t.Fatalf("regionLess not irreflexive on %v", a)
		}
	}
}

func TestSourceTier(t *testing.T) {
	if sourceTier(nil, 3, 3) != 0 {
		t.Fatal("same device tier")
	}
	if sourceTier(nil, 3, 4) != 2 {
		t.Fatal("nil topo remote tier")
	}
}
