package core

// sliceArena hands out immutable windows of large backing arrays, so
// the planner's many small, plan-lifetime slices (fetch lists, region
// range lists, remaining-range lists) don't each pay a heap allocation.
// Windows are full-capacity slices: appending to one always reallocates
// instead of clobbering a neighbor. An arena is single-goroutine; each
// plan worker owns its own.
type sliceArena[T any] struct {
	buf []T
}

const arenaChunk = 4096

// alloc returns a zeroed window of n elements.
func (ar *sliceArena[T]) alloc(n int) []T {
	if cap(ar.buf)-len(ar.buf) < n {
		c := arenaChunk
		if n > c {
			c = n
		}
		ar.buf = make([]T, 0, c)
	}
	s := len(ar.buf)
	ar.buf = ar.buf[:s+n]
	return ar.buf[s : s+n : s+n]
}

// save copies src into a window. Empty input returns nil, matching the
// zero value of an unset field.
func (ar *sliceArena[T]) save(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	out := ar.alloc(len(src))
	copy(out, src)
	return out
}
