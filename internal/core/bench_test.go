package core_test

import (
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/experiments"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
)

// BenchmarkGeneratePlanFullScale measures plan generation for a real
// paper-scale reconfiguration: GPT-3 6.7B with Adam state (~1200 state
// tensors), (4,2,1) -> (8,2,1) on 16 devices. Plan generation is pure
// metadata work and must stay cheap relative to the data movement it
// orchestrates.
func BenchmarkGeneratePlanFullScale(b *testing.B) {
	m := model.GPT3_6B7().WithAdam()
	topo := cluster.OnPrem16()
	from, err := parallel.BuildPTC(m, parallel.Config{TP: 4, PP: 2, DP: 1}, topo.FirstN(8))
	if err != nil {
		b.Fatal(err)
	}
	to, err := parallel.BuildPTC(m, parallel.Config{TP: 8, PP: 2, DP: 1}, topo.FirstN(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Assignments) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkGeneratePlanScenarios measures plan generation for the
// shared 64- and 128-device reconfiguration scenarios (scale-out,
// scale-in, redeployment, fail-stop recovery with StorageFallback, and
// an MoE expert-parallel reshape). The same scenarios back
// tenplex-bench's -json perf record; see EXPERIMENTS.md.
func BenchmarkGeneratePlanScenarios(b *testing.B) {
	for _, sc := range experiments.PlannerScenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan, err := core.GeneratePlan(sc.From, sc.To, sc.Opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(plan.Assignments) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}

func BenchmarkBuildPTCFullScale(b *testing.B) {
	m := model.GPT3_6B7().WithAdam()
	topo := cluster.OnPrem16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 4, DP: 2}, topo.FirstN(16)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignDevices(b *testing.B) {
	m := model.GPT3XL().WithAdam()
	topo := cluster.OnPrem16()
	from, _ := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 4, DP: 1}, topo.FirstN(8))
	to, _ := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 8, DP: 1}, topo.FirstN(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.AlignDevices(from, to)
	}
}

func BenchmarkPlanValidate(b *testing.B) {
	m := model.GPT3XL().WithAdam()
	topo := cluster.OnPrem16()
	from, _ := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 4, DP: 2}, topo.FirstN(16))
	to, _ := parallel.BuildPTC(m, parallel.Config{TP: 2, PP: 4, DP: 1}, topo.FirstN(8))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
