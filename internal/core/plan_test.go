package core_test

import (
	"math/rand"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/parallel"
	"tenplex/internal/tensor"
)

// --- a materialized executor used to verify plans byte-for-byte ------

// materialize fills every device of the PTC with real sub-tensor bytes
// cut from golden full tensors (seeded deterministically per tensor).
func materialize(p *core.PTC) (golden map[core.TensorID]*tensor.Tensor, placed map[cluster.DeviceID]map[string]*tensor.Tensor) {
	golden = map[core.TensorID]*tensor.Tensor{}
	seed := int64(1)
	for id, meta := range p.Tensors {
		full := tensor.New(meta.DType, meta.Shape...)
		full.FillSeq(float64(seed)*1000, 1)
		seed++
		golden[id] = full
	}
	placed = map[cluster.DeviceID]map[string]*tensor.Tensor{}
	for _, d := range p.Devices {
		placed[d] = map[string]*tensor.Tensor{}
		for _, s := range p.Place[d] {
			placed[d][string(s.Tensor)+s.Region.String()] = golden[s.Tensor].Slice(s.Region)
		}
	}
	return golden, placed
}

// execute applies the plan against materialized state, reading fetched
// ranges out of source sub-tensors exactly as the state transformer
// does, and returns the new per-device materialized state.
func execute(t *testing.T, plan *core.Plan,
	golden map[core.TensorID]*tensor.Tensor,
	placed map[cluster.DeviceID]map[string]*tensor.Tensor,
) map[cluster.DeviceID]map[string]*tensor.Tensor {
	t.Helper()
	out := map[cluster.DeviceID]map[string]*tensor.Tensor{}
	for _, d := range plan.To.Devices {
		out[d] = map[string]*tensor.Tensor{}
	}
	for _, a := range plan.Assignments {
		meta := plan.To.Tensors[a.Tensor]
		var pieces []tensor.Piece
		for _, f := range a.Fetch {
			var data *tensor.Tensor
			switch f.Src.Kind {
			case core.FromDevice:
				src, ok := placed[f.Src.Device][string(a.Tensor)+f.Src.Region.String()]
				if !ok {
					t.Fatalf("plan references missing source %s%v on dev %d", a.Tensor, f.Src.Region, f.Src.Device)
				}
				data = src.Slice(f.Want.Translate(f.Src.Region.Offset()))
			case core.FromStorage:
				data = golden[a.Tensor].Slice(f.Want)
			}
			pieces = append(pieces, tensor.Piece{Region: f.Want.Translate(a.Region.Offset()), Data: data})
		}
		merged, err := tensor.Assemble(meta.DType, a.Region.Shape(), pieces)
		if err != nil {
			t.Fatalf("assemble %s%v: %v", a.Tensor, a.Region, err)
		}
		out[a.Device][string(a.Tensor)+a.Region.String()] = merged
	}
	return out
}

// verify checks that the executed state matches golden slices for the
// target PTC.
func verify(t *testing.T, to *core.PTC, golden map[core.TensorID]*tensor.Tensor,
	state map[cluster.DeviceID]map[string]*tensor.Tensor) {
	t.Helper()
	for _, d := range to.Devices {
		for _, s := range to.Place[d] {
			got, ok := state[d][string(s.Tensor)+s.Region.String()]
			if !ok {
				t.Fatalf("device %d missing %s%v after reconfiguration", d, s.Tensor, s.Region)
			}
			want := golden[s.Tensor].Slice(s.Region)
			if !got.Equal(want) {
				t.Fatalf("device %d holds wrong bytes for %s%v", d, s.Tensor, s.Region)
			}
		}
	}
}

func buildPTC(t *testing.T, m *model.Model, cfg parallel.Config, alloc cluster.Allocation) *core.PTC {
	t.Helper()
	ptc, err := parallel.BuildPTC(m, cfg, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return ptc
}

func alloc(n int) cluster.Allocation {
	out := make(cluster.Allocation, n)
	for i := range out {
		out[i] = cluster.DeviceID(i)
	}
	return out
}

func allocFrom(start, n int) cluster.Allocation {
	out := make(cluster.Allocation, n)
	for i := range out {
		out[i] = cluster.DeviceID(start + i)
	}
	return out
}

// --- tests ------------------------------------------------------------

func TestPlanIdentityIsAllNoops(t *testing.T) {
	m := model.GPTCustom(4, 32, 4, 96, 16)
	cfg := parallel.Config{TP: 2, PP: 2, DP: 1}
	from := buildPTC(t, m, cfg, alloc(4))
	to := buildPTC(t, m, cfg, alloc(4))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.MovedBytes != 0 {
		t.Fatalf("identity reconfiguration moved %d bytes", st.MovedBytes)
	}
	if st.Noops != st.Assignments {
		t.Fatalf("identity: %d noops of %d assignments", st.Noops, st.Assignments)
	}
	if len(plan.Ops()) != 0 {
		t.Fatalf("identity plan has ops: %v", plan.Ops())
	}
}

func TestPlanScaleOutDataParallelism(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 2}, alloc(2))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	// Device 0 keeps everything local; device 1 receives one replica.
	if st.MovedBytes != m.ParamBytes() {
		t.Fatalf("moved %d bytes, want %d (one replica)", st.MovedBytes, m.ParamBytes())
	}
	golden, placed := materialize(from)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanTensorParallelResharding(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.Splits == 0 {
		t.Fatal("TP reshard must split sub-tensors")
	}
	golden, placed := materialize(from)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanTensorParallelMerge(t *testing.T) {
	// TP 4 -> 2: pairs of sub-tensors merge; destination devices holding
	// one half already must only fetch the other half.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 4, PP: 1, DP: 1}, alloc(4))
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.Merges == 0 {
		t.Fatal("TP 4->2 must merge sub-tensors")
	}
	golden, placed := materialize(from)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanMinimalityKeepsResidentRanges(t *testing.T) {
	// Scaling DP 2 -> 1 on the device that already holds a replica moves
	// zero bytes.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 2}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := plan.Stats(nil); st.MovedBytes != 0 {
		t.Fatalf("DP scale-in moved %d bytes, want 0", st.MovedBytes)
	}
}

func TestPlanPipelineRepartitionMovesOnlyBoundaryLayers(t *testing.T) {
	m := model.GPTCustom(6, 16, 2, 64, 8) // 8 layers
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 2, DP: 1}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 4, DP: 1}, alloc(4))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	// Devices 0 and 1 keep the head of their old stages; only layers
	// moving to the two new devices travel. Moved bytes must be well
	// under the total model size.
	if st.MovedBytes >= m.ParamBytes() {
		t.Fatalf("PP repartition moved %d >= model %d", st.MovedBytes, m.ParamBytes())
	}
	if st.Splits != 0 {
		t.Fatalf("pure PP repartition should not split tensors, got %d splits", st.Splits)
	}
	golden, placed := materialize(from)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanRedeploymentToFreshDevices(t *testing.T) {
	// Same parallelization, disjoint device set (Fig. 10's scenario).
	m := model.GPTCustom(4, 32, 4, 96, 16)
	cfg := parallel.Config{TP: 2, PP: 2, DP: 1}
	from := buildPTC(t, m, cfg, alloc(4))
	to := buildPTC(t, m, cfg, allocFrom(4, 4))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.LocalBytes != 0 {
		t.Fatal("disjoint redeployment cannot have local fetches")
	}
	if st.Splits != 0 || st.Merges != 0 {
		t.Fatal("same-config redeployment must be pure moves")
	}
	golden, placed := materialize(from)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanFailureRecoveryFromReplica(t *testing.T) {
	// DP=2 replicas on 4 devices; losing one TP group's devices leaves a
	// full replica, so recovery moves state but never touches storage.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 2}, alloc(4))
	degraded := from.WithoutDevices(2, 3)
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	plan, err := core.GeneratePlan(degraded, to, core.PlanOptions{StorageFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.StorageBytes != 0 {
		t.Fatalf("replica recovery read %d bytes from storage", st.StorageBytes)
	}
	if st.MovedBytes != 0 {
		t.Fatalf("surviving replica is already in place, moved %d", st.MovedBytes)
	}
}

func TestPlanFailureRecoveryFromStorage(t *testing.T) {
	// No replica (DP=1): losing a device forces checkpoint reads for
	// exactly the lost ranges.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	degraded := from.WithoutDevices(1)
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))

	// Without fallback: error.
	if _, err := core.GeneratePlan(degraded, to, core.PlanOptions{}); err == nil {
		t.Fatal("lost state without StorageFallback must fail")
	}
	plan, err := core.GeneratePlan(degraded, to, core.PlanOptions{StorageFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(nil)
	if st.StorageBytes == 0 {
		t.Fatal("expected storage reads for lost ranges")
	}
	if st.StorageBytes >= m.ParamBytes() {
		t.Fatalf("storage reads %d not minimal (model %d)", st.StorageBytes, m.ParamBytes())
	}
	golden, placed := materialize(degraded)
	verify(t, to, golden, execute(t, plan, golden, placed))
}

func TestPlanLocalityPrefersSameWorker(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	// Replicas on devices 0 (worker 0) and 4 (worker 1); a new replica
	// on device 1 (worker 0) should fetch from device 0.
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 2}, cluster.Allocation{0, 4})
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 3}, cluster.Allocation{0, 4, 1})
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats(topo)
	if st.CrossWorkerBytes != 0 {
		t.Fatalf("locality-aware plan crossed workers: %+v", st)
	}
	if st.IntraWorkerBytes != m.ParamBytes() {
		t.Fatalf("intra-worker bytes %d, want %d", st.IntraWorkerBytes, m.ParamBytes())
	}
}

func TestPlanBalancesReplicaSources(t *testing.T) {
	// Scaling DP 2 -> 6 should spread the fetch load over both existing
	// replicas rather than hammering one.
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 2}, alloc(2))
	to := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 6}, alloc(6))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sent := map[cluster.DeviceID]int64{}
	for _, a := range plan.Assignments {
		meta := plan.To.Tensors[a.Tensor]
		for _, f := range a.Fetch {
			if f.Src.Kind == core.FromDevice && f.Src.Device != a.Device {
				sent[f.Src.Device] += f.Want.NumBytes(meta.DType)
			}
		}
	}
	if sent[0] == 0 || sent[1] == 0 {
		t.Fatalf("load not balanced: %v", sent)
	}
	ratio := float64(sent[0]) / float64(sent[1])
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("replica send load unbalanced: %v", sent)
	}
}

func TestPlanRejectsMetadataMismatch(t *testing.T) {
	a := core.NewPTC("a", devs(0))
	a.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float32, Shape: []int{4}})
	a.Assign(0, "w", tensor.FullRegion([]int{4}))
	b := core.NewPTC("b", devs(0))
	b.AddTensor(core.TensorMeta{ID: "w", DType: tensor.Float64, Shape: []int{4}})
	b.Assign(0, "w", tensor.FullRegion([]int{4}))
	if _, err := core.GeneratePlan(a, b, core.PlanOptions{}); err == nil {
		t.Fatal("dtype mismatch accepted")
	}
	c := core.NewPTC("c", devs(0))
	c.AddTensor(core.TensorMeta{ID: "v", DType: tensor.Float32, Shape: []int{4}})
	c.Assign(0, "v", tensor.FullRegion([]int{4}))
	if _, err := core.GeneratePlan(a, c, core.PlanOptions{}); err == nil {
		t.Fatal("unknown tensor accepted")
	}
}

// TestPlanRandomReconfigurations is the package's central property test:
// arbitrary (T,P,D) -> (T',P',D') transitions over random device sets
// always produce a valid plan whose execution reconstructs exact bytes.
func TestPlanRandomReconfigurations(t *testing.T) {
	m := model.GPTCustom(4, 16, 2, 64, 8) // 6 layers
	rng := rand.New(rand.NewSource(2024))
	cfgs := []parallel.Config{}
	for _, n := range []int{1, 2, 4, 6, 8} {
		cfgs = append(cfgs, parallel.Enumerate(n, 8, 6)...)
	}
	for trial := 0; trial < 60; trial++ {
		cf := cfgs[rng.Intn(len(cfgs))]
		ct := cfgs[rng.Intn(len(cfgs))]
		offF, offT := rng.Intn(3), rng.Intn(3)
		from := buildPTC(t, m, cf, allocFrom(offF, cf.WorldSize()))
		to := buildPTC(t, m, ct, allocFrom(offT, ct.WorldSize()))
		plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
		if err != nil {
			t.Fatalf("trial %d %v->%v: %v", trial, cf, ct, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("trial %d %v->%v: %v", trial, cf, ct, err)
		}
		golden, placed := materialize(from)
		verify(t, to, golden, execute(t, plan, golden, placed))
	}
}

func TestPlanOpsRendering(t *testing.T) {
	m := model.GPTCustom(2, 16, 2, 64, 8)
	from := buildPTC(t, m, parallel.Config{TP: 1, PP: 1, DP: 1}, alloc(1))
	to := buildPTC(t, m, parallel.Config{TP: 2, PP: 1, DP: 1}, alloc(2))
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Ops()
	var hasSplit, hasMove bool
	for _, op := range ops {
		if len(op) >= 5 && op[:5] == "split" {
			hasSplit = true
		}
		if len(op) >= 4 && op[:4] == "move" {
			hasMove = true
		}
	}
	if !hasSplit || !hasMove {
		t.Fatalf("ops missing split/move: %v", ops)
	}
}

func TestPlanFlows(t *testing.T) {
	topo := cluster.OnPrem16()
	m := model.GPTCustom(2, 16, 2, 64, 8)
	cfg := parallel.Config{TP: 2, PP: 1, DP: 1}
	from := buildPTC(t, m, cfg, cluster.Allocation{0, 1})
	to := buildPTC(t, m, cfg, cluster.Allocation{4, 5})
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	flows := plan.Flows(topo)
	if len(flows) == 0 {
		t.Fatal("no flows for redeployment")
	}
	var bytes int64
	for _, f := range flows {
		bytes += f.Bytes
	}
	st := plan.Stats(topo)
	if bytes != st.MovedBytes {
		t.Fatalf("flow bytes %d != moved bytes %d", bytes, st.MovedBytes)
	}
}
