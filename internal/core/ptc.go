// Package core implements the paper's primary contribution: the
// parallelizable tensor collection (PTC) and the reconfiguration-plan
// generator (Alg. 1).
//
// A PTC = (T, σ, φ, α) describes the parallelized state of a DL job:
// T is the set of state tensors (model parameters, optimizer moments,
// and — logically — dataset samples); the slicing function σ cuts
// tensors into sub-tensors (tensor/sequence parallelism); the
// partitioning function φ groups sub-tensors into sub-collections (data
// and pipeline parallelism); and the allocation function α assigns
// sub-collections to devices.
//
// This package represents the three functions as data: a PTC stores,
// for every device, the list of sub-tensors (tensor ID + region in base
// coordinates) that the device holds. σ, φ and α are recoverable views
// over that table, and — crucially — two PTCs can be diffed to produce a
// minimal reconfiguration plan (split ∥ move ∥ merge) regardless of
// which parallelism strategies produced them. That generality is what
// lets Tenplex support data, tensor, pipeline, expert and sequence
// parallelism with one mechanism (§4.3).
package core

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/tensor"
)

// TensorID names a state tensor with its canonical hierarchical path,
// e.g. "block.3/attn/qkv/weight" or "block.3/attn/qkv/weight.opt0".
type TensorID string

// TensorMeta carries the full (unsliced) description of a state tensor.
type TensorMeta struct {
	ID    TensorID
	DType tensor.DType
	Shape []int
}

// NumBytes returns the full tensor's byte size.
func (m TensorMeta) NumBytes() int64 { return tensor.ShapeNumBytes(m.DType, m.Shape) }

// SubTensor is one placed fragment: a region of a base tensor, in base
// coordinates.
type SubTensor struct {
	Tensor TensorID
	Region tensor.Region
}

// NumBytes returns the fragment's byte size given its base tensor meta.
func (s SubTensor) NumBytes(meta TensorMeta) int64 {
	return s.Region.NumBytes(meta.DType)
}

// PTC is the parallelizable tensor collection: the externalized state of
// a DL job under some multi-dimensional parallelization, placed onto a
// set of devices.
type PTC struct {
	// Name describes the parallelization, e.g. "gpt3-xl T2 P4 D2".
	Name string
	// Tensors is T: every state tensor's metadata, keyed by ID.
	Tensors map[TensorID]TensorMeta
	// Devices is the job's allocation in rank order (α's codomain).
	Devices []cluster.DeviceID
	// Place maps each device to the sub-tensors it holds — the
	// composition α∘φ∘σ in tabular form.
	Place map[cluster.DeviceID][]SubTensor
}

// NewPTC returns an empty PTC over the given allocation.
func NewPTC(name string, devices []cluster.DeviceID) *PTC {
	p := &PTC{
		Name:    name,
		Tensors: map[TensorID]TensorMeta{},
		Devices: append([]cluster.DeviceID(nil), devices...),
		Place:   map[cluster.DeviceID][]SubTensor{},
	}
	for _, d := range devices {
		p.Place[d] = nil
	}
	return p
}

// AddTensor registers a state tensor. It must be called before Assign.
func (p *PTC) AddTensor(meta TensorMeta) {
	if _, dup := p.Tensors[meta.ID]; dup {
		panic(fmt.Sprintf("core: duplicate tensor %q", meta.ID))
	}
	if !meta.DType.Valid() {
		panic(fmt.Sprintf("core: tensor %q has invalid dtype", meta.ID))
	}
	p.Tensors[meta.ID] = meta
}

// Assign places a sub-tensor region of id onto device d.
func (p *PTC) Assign(d cluster.DeviceID, id TensorID, reg tensor.Region) {
	meta, ok := p.Tensors[id]
	if !ok {
		panic(fmt.Sprintf("core: Assign of unknown tensor %q", id))
	}
	if !reg.Valid(meta.Shape) {
		panic(fmt.Sprintf("core: Assign %q region %v invalid for shape %v", id, reg, meta.Shape))
	}
	if _, ok := p.Place[d]; !ok {
		panic(fmt.Sprintf("core: Assign to device %d outside allocation %v", d, p.Devices))
	}
	p.Place[d] = append(p.Place[d], SubTensor{Tensor: id, Region: reg.Clone()})
}

// Slices returns σ(t): the distinct regions into which tensor id is
// sliced across all devices, in deterministic order.
func (p *PTC) Slices(id TensorID) []tensor.Region {
	var out []tensor.Region
	for _, d := range p.Devices {
		for _, s := range p.Place[d] {
			if s.Tensor == id {
				out = append(out, s.Region)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return regionLess(out[i], out[j]) })
	k := 0
	for i, r := range out {
		if i == 0 || !r.Equal(out[k-1]) {
			out[k] = r
			k++
		}
	}
	return out[:k]
}

// Holders returns the devices that hold a sub-tensor of id whose region
// intersects reg, i.e. the potential sources for that range.
func (p *PTC) Holders(id TensorID, reg tensor.Region) []cluster.DeviceID {
	var out []cluster.DeviceID
	for _, d := range p.Devices {
		for _, s := range p.Place[d] {
			if s.Tensor != id {
				continue
			}
			if regionsOverlap(s.Region, reg) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// DeviceBytes returns the total state bytes placed on device d.
func (p *PTC) DeviceBytes(d cluster.DeviceID) int64 {
	var n int64
	for _, s := range p.Place[d] {
		n += s.NumBytes(p.Tensors[s.Tensor])
	}
	return n
}

// TotalPlacedBytes sums state bytes over all devices (counting
// replication).
func (p *PTC) TotalPlacedBytes() int64 {
	var n int64
	for _, d := range p.Devices {
		n += p.DeviceBytes(d)
	}
	return n
}

// Validate checks structural invariants: every placed region is in
// bounds, and every registered tensor is fully covered by the union of
// its placed regions (otherwise state would be unrecoverable).
func (p *PTC) Validate() error {
	placed := make(map[TensorID][]tensor.Region, len(p.Tensors))
	for _, d := range p.Devices {
		for _, s := range p.Place[d] {
			meta, ok := p.Tensors[s.Tensor]
			if !ok {
				return fmt.Errorf("core: device %d holds unknown tensor %q", d, s.Tensor)
			}
			if !s.Region.Valid(meta.Shape) {
				return fmt.Errorf("core: device %d holds %q with invalid region %v (shape %v)",
					d, s.Tensor, s.Region, meta.Shape)
			}
			placed[s.Tensor] = append(placed[s.Tensor], s.Region)
		}
	}
	for id, meta := range p.Tensors {
		regs := placed[id]
		if len(regs) == 0 {
			return fmt.Errorf("core: tensor %q has no placement", id)
		}
		if !covers(tensor.FullRegion(meta.Shape), regs) {
			return fmt.Errorf("core: tensor %q not fully covered by placements", id)
		}
	}
	return nil
}

// WithoutDevices returns a copy of p restricted to the devices that
// survive, dropping every sub-tensor placed on a removed device. It
// models fail-stop GPU loss (§5.3): the resulting PTC may no longer
// cover every tensor, in which case plan generation falls back to
// persisted checkpoints in remote storage.
func (p *PTC) WithoutDevices(failed ...cluster.DeviceID) *PTC {
	dead := map[cluster.DeviceID]bool{}
	for _, d := range failed {
		dead[d] = true
	}
	var alive []cluster.DeviceID
	for _, d := range p.Devices {
		if !dead[d] {
			alive = append(alive, d)
		}
	}
	out := NewPTC(p.Name+" (degraded)", alive)
	for id, meta := range p.Tensors {
		out.Tensors[id] = meta
	}
	for _, d := range alive {
		out.Place[d] = append([]SubTensor(nil), p.Place[d]...)
	}
	return out
}

// Equal reports whether two PTCs describe the same placement.
func (p *PTC) Equal(q *PTC) bool {
	if len(p.Tensors) != len(q.Tensors) || len(p.Devices) != len(q.Devices) {
		return false
	}
	for i := range p.Devices {
		if p.Devices[i] != q.Devices[i] {
			return false
		}
	}
	for id, m := range p.Tensors {
		qm, ok := q.Tensors[id]
		if !ok || qm.DType != m.DType || !tensor.ShapeEqual(qm.Shape, m.Shape) {
			return false
		}
	}
	for _, d := range p.Devices {
		a, b := p.Place[d], q.Place[d]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Tensor != b[i].Tensor || !a[i].Region.Equal(b[i].Region) {
				return false
			}
		}
	}
	return true
}

// regionLess orders regions lexicographically for deterministic output.
func regionLess(a, b tensor.Region) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i].Lo != b[i].Lo {
			return a[i].Lo < b[i].Lo
		}
		if a[i].Hi != b[i].Hi {
			return a[i].Hi < b[i].Hi
		}
	}
	return len(a) < len(b)
}

// subtractRegion returns a \ b as a list of disjoint boxes.
func subtractRegion(a, b tensor.Region) []tensor.Region {
	inter, ok := a.Intersect(b)
	if !ok {
		return []tensor.Region{a.Clone()}
	}
	return appendSubtract(nil, a, inter)
}

// subtractInto appends the disjoint boxes of a \ b to dst, given the
// (non-empty) intersection inter = a ∩ b, allocating boxes from al.
// The common case — b cutting a along a single axis, as every
// tensor/pipeline/sequence split does — produces at most two boxes
// without cloning intermediates.
func subtractInto(dst []tensor.Region, a, inter tensor.Region, al regionAllocator) []tensor.Region {
	diff, multi := -1, false
	for d := range a {
		if inter[d] != a[d] {
			if diff >= 0 {
				multi = true
				break
			}
			diff = d
		}
	}
	if diff < 0 {
		return dst // b covers a entirely
	}
	if !multi {
		// 1-D fast path: boxes differ from a only along diff.
		if a[diff].Lo < inter[diff].Lo {
			box := cloneRegion(al, a)
			box[diff] = tensor.Range{Lo: a[diff].Lo, Hi: inter[diff].Lo}
			dst = append(dst, box)
		}
		if inter[diff].Hi < a[diff].Hi {
			box := cloneRegion(al, a)
			box[diff] = tensor.Range{Lo: inter[diff].Hi, Hi: a[diff].Hi}
			dst = append(dst, box)
		}
		return dst
	}
	cur := cloneRegion(al, a)
	for d := range a {
		if cur[d].Lo < inter[d].Lo {
			box := cloneRegion(al, cur)
			box[d] = tensor.Range{Lo: cur[d].Lo, Hi: inter[d].Lo}
			dst = append(dst, box)
		}
		if inter[d].Hi < cur[d].Hi {
			box := cloneRegion(al, cur)
			box[d] = tensor.Range{Lo: inter[d].Hi, Hi: cur[d].Hi}
			dst = append(dst, box)
		}
		cur[d] = inter[d]
	}
	return dst
}

// appendSubtract is subtractInto on the heap.
func appendSubtract(dst []tensor.Region, a, inter tensor.Region) []tensor.Region {
	return subtractInto(dst, a, inter, heapRegions{})
}

// covers reports whether the union of regs covers all of full.
//
// The common case — every reg constraining full along the same single
// axis (or not at all), which is what TP/PP/DP/sequence splits produce —
// reduces to 1-D interval coverage and avoids the quadratic
// subtract-everything fallback.
func covers(full tensor.Region, regs []tensor.Region) bool {
	if len(regs) == 0 {
		return false
	}
	axis := -1
	for _, r := range regs {
		if len(r) != len(full) {
			return coversGeneral(full, regs)
		}
		diff := -1
		for k := range full {
			if r[k].Lo <= full[k].Lo && r[k].Hi >= full[k].Hi {
				continue // r spans this whole dimension of full
			}
			if diff >= 0 {
				diff = -2 // constrains more than one dimension
				break
			}
			diff = k
		}
		switch {
		case diff == -2:
			return coversGeneral(full, regs)
		case diff < 0:
			return true // r covers full entirely
		case axis < 0:
			axis = diff
		case axis != diff:
			return coversGeneral(full, regs)
		}
	}
	return coversAxis(full[axis], regs, axis)
}

// coversAxis checks 1-D interval coverage of full by regs' extents
// along axis, clamped to full.
func coversAxis(full tensor.Range, regs []tensor.Region, axis int) bool {
	iv := make([]tensor.Range, 0, len(regs))
	for _, r := range regs {
		rng := r[axis]
		if rng.Lo < full.Lo {
			rng.Lo = full.Lo
		}
		if rng.Hi > full.Hi {
			rng.Hi = full.Hi
		}
		if rng.Lo < rng.Hi {
			iv = append(iv, rng)
		}
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].Lo < iv[j].Lo })
	reach := full.Lo
	for _, r := range iv {
		if r.Lo > reach {
			return false
		}
		if r.Hi > reach {
			reach = r.Hi
		}
	}
	return reach >= full.Hi
}

// coversGeneral is the exact region-subtraction fallback for irregular
// tilings.
func coversGeneral(full tensor.Region, regs []tensor.Region) bool {
	remaining := []tensor.Region{full}
	for _, r := range regs {
		var next []tensor.Region
		for _, rem := range remaining {
			next = append(next, subtractRegion(rem, r)...)
		}
		remaining = next
		if len(remaining) == 0 {
			return true
		}
	}
	return len(remaining) == 0
}
