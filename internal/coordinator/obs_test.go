package coordinator_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tenplex/internal/coordinator"
	"tenplex/internal/experiments"
	"tenplex/internal/obs"
)

// The obs suite pins the observability contract from internal/obs: a
// sim-mode trace is a pure function of the scenario (bit-identical at
// any worker count), enabling tracing never perturbs scheduling, and
// every exported trace reconciles EXACTLY — not approximately — with
// the run's own metrics block.

// tracedRun executes the canonical 32-device/12-job FIFO scenario with
// a deterministic tracer and returns the result plus the exported
// trace bytes.
func tracedRun(t *testing.T, workers int, level obs.Level) (coordinator.Result, []byte) {
	t.Helper()
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	tr := obs.New(obs.Options{Det: true, Level: level})
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Workers: workers,
		Obs:     tr,
	})
	if err != nil {
		t.Fatalf("traced run (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := tr.Export().WriteJSON(&buf); err != nil {
		t.Fatalf("export (workers=%d): %v", workers, err)
	}
	return res, buf.Bytes()
}

// TestObsTraceDeterministicAcrossWorkers: the exported trace JSON must
// be byte-identical whether the execution plane is serialized, sized to
// GOMAXPROCS, or oversized. Span IDs come only from the decision plane
// and export order is canonical, so the bytes depend on the scenario
// alone.
func TestObsTraceDeterministicAcrossWorkers(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 0, 16} {
		_, data := tracedRun(t, workers, obs.LevelDatapath)
		if base == nil {
			base = data
			if err := obs.ValidateTraceJSON(data); err != nil {
				t.Fatalf("exported trace fails validation: %v", err)
			}
		} else if !bytes.Equal(data, base) {
			t.Fatalf("workers=%d: trace bytes diverged from the workers=1 export", workers)
		}
	}
}

// TestObsTracingDoesNotPerturbSchedule: a traced run must render the
// exact same result as the committed golden baseline — observation is
// read-only with respect to every scheduling decision.
func TestObsTracingDoesNotPerturbSchedule(t *testing.T) {
	res, _ := tracedRun(t, 0, obs.LevelDatapath)
	want, err := os.ReadFile(filepath.Join("testdata", "multijob_fifo_32x12.golden"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	if res.Render() != string(want) {
		t.Fatal("enabling tracing changed the rendered result")
	}
}

// TestObsReconcilesExactly: per-job span totals in the exported trace
// must equal the coordinator's own Result accounting bit-for-bit —
// float equality for reconfiguration seconds, integer equality for
// moved bytes and retries. Sim mode admits no tolerance.
func TestObsReconcilesExactly(t *testing.T) {
	res, data := tracedRun(t, 0, obs.LevelDatapath)
	trace, err := obs.ReadTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if ms := trace.Reconcile(); len(ms) != 0 {
		t.Fatalf("trace does not reconcile with its metrics:\n%v", ms)
	}
	rows := trace.PhaseBreakdown()
	byJob := make(map[string]obs.PhaseRow, len(rows))
	var spanRetries int64
	for _, r := range rows {
		byJob[r.Job] = r
		spanRetries += r.Retries
	}
	for _, j := range res.Jobs {
		r, ok := byJob[j.Name]
		if !ok {
			if j.ReconfigSec != 0 || j.MovedBytes != 0 {
				t.Fatalf("job %s has reconfig accounting but no spans", j.Name)
			}
			continue
		}
		if r.ReconfigS != j.ReconfigSec {
			t.Fatalf("job %s: span reconfig %.9f != result %.9f", j.Name, r.ReconfigS, j.ReconfigSec)
		}
		if r.MovedBytes != j.MovedBytes {
			t.Fatalf("job %s: span moved_bytes %d != result %d", j.Name, r.MovedBytes, j.MovedBytes)
		}
	}
	if spanRetries != int64(res.Retries) {
		t.Fatalf("span-derived retries %d != result retries %d", spanRetries, res.Retries)
	}
	if trace.RenderReport() == "" {
		t.Fatal("empty report")
	}
}

// TestObsChaosTraceDeterministicAndReconciles: under the hostile
// fixture, phase-level traces stay bit-identical across worker counts
// and still reconcile exactly — the retry/rollback/backoff accounting
// is part of the determinism contract. (Datapath detail inside
// chaos-aborted attempts is schedule-dependent by design; see the
// internal/obs package doc.)
func TestObsChaosTraceDeterministicAndReconciles(t *testing.T) {
	var base []byte
	var res coordinator.Result
	for _, workers := range []int{1, 0, 16} {
		topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
		tr := obs.New(obs.Options{Det: true, Level: obs.LevelPhases})
		r, err := coordinator.Run(topo, specs, failures, coordinator.Options{
			Workers:  workers,
			Chaos:    hostilePlan(7),
			Recovery: hostileRecovery(),
			Obs:      tr,
		})
		if err != nil {
			t.Fatalf("hostile traced run (workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := tr.Export().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, res = buf.Bytes(), r
		} else if !bytes.Equal(buf.Bytes(), base) {
			t.Fatalf("workers=%d: hostile trace bytes diverged", workers)
		}
	}
	if res.Retries == 0 {
		t.Fatal("hostile fixture injected no retries; the recovery paths went untested")
	}
	trace, err := obs.ReadTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	if ms := trace.Reconcile(); len(ms) != 0 {
		t.Fatalf("hostile trace does not reconcile:\n%v", ms)
	}
	if err := obs.ValidateTraceJSON(base); err != nil {
		t.Fatalf("hostile trace fails validation: %v", err)
	}
}

// TestObsWallModeTraced: wall mode charges optimistically and resolves
// retries/aborts late, so its spans are supplemented after the fact —
// the exported trace must still validate and reconcile exactly (the
// sim-priced quantities are mode-independent; only WallNs varies).
func TestObsWallModeTraced(t *testing.T) {
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	tr := obs.New(obs.Options{Level: obs.LevelPhases})
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Mode:      coordinator.ModeWall,
		Workers:   8,
		WallScale: time.Microsecond,
		Chaos:     hostilePlan(7),
		Recovery:  hostileRecovery(),
		Obs:       tr,
	})
	if err != nil {
		t.Fatalf("wall traced run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("wall trace fails validation: %v", err)
	}
	trace, err := obs.ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ms := trace.Reconcile(); len(ms) != 0 {
		t.Fatalf("wall trace does not reconcile:\n%v", ms)
	}
	if res.MakespanMin <= 0 {
		t.Fatal("wall run produced no schedule")
	}
}

// TestTimelineEventJSONRoundTrip: the timeline's JSON encoding is part
// of the trace contract — stable snake_case field names, Ev* kind
// strings preserved verbatim, and a lossless round trip.
func TestTimelineEventJSONRoundTrip(t *testing.T) {
	events := []coordinator.TimelineEvent{
		{TimeMin: 12.5, Job: "job-1", Kind: coordinator.EvScaleOut, GPUs: 8,
			Config: "(2,2,2)", SimSec: 3.25, MovedBytes: 1 << 30, Note: "grow"},
		{TimeMin: 60, Kind: coordinator.EvQuarantine, Note: "dev7 flapping"},
		{TimeMin: 0, Job: "job-2", Kind: coordinator.EvSubmit, GPUs: 4},
	}
	data, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"time_min"`, `"kind"`, `"moved_bytes"`, `"sim_sec"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Fatalf("encoded timeline lacks stable key %s: %s", key, data)
		}
	}
	var back []coordinator.TimelineEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip changed length: %d != %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, back[i], events[i])
		}
	}
	// A run's real timeline must round-trip too, with only known kinds.
	res, _ := tracedRun(t, 1, obs.LevelPhases)
	data, err = json.Marshal(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	var tl []coordinator.TimelineEvent
	if err := json.Unmarshal(data, &tl); err != nil {
		t.Fatal(err)
	}
	for i := range tl {
		if tl[i] != res.Timeline[i] {
			t.Fatalf("timeline[%d] round trip mismatch", i)
		}
	}
}

// Benchmarks back the CI obs-overhead gate: the traced run is compared
// against the untraced one so a regression in the disabled path (which
// must stay nil-receiver free) or runaway span volume shows up in the
// bench smoke.
func benchmarkMultiJob(b *testing.B, tracer func() *obs.Tracer) {
	for i := 0; i < b.N; i++ {
		topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
		_, err := coordinator.Run(topo, specs, failures, coordinator.Options{
			Workers: 1,
			Obs:     tracer(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiJobObsOff(b *testing.B) {
	benchmarkMultiJob(b, func() *obs.Tracer { return nil })
}

func BenchmarkMultiJobObsOn(b *testing.B) {
	benchmarkMultiJob(b, func() *obs.Tracer {
		return obs.New(obs.Options{Det: true, Level: obs.LevelDatapath})
	})
}
