package coordinator_test

import (
	"os"
	"path/filepath"
	"testing"

	"tenplex/internal/coordinator"
	"tenplex/internal/experiments"
)

// The golden-trace regression test pins the default coordinator
// behavior to a committed baseline: the FIFO 32-device/12-job
// simulation's rendered result must stay byte-identical to
// testdata/multijob_fifo_32x12.golden — at every worker count, since
// the parallel runtime may never leak nondeterminism into sim mode.
// It replaces the ad-hoc CI step that diffed two fresh runs against
// each other (which caught nondeterminism but not behavioral drift
// against history).
//
// If a PR intentionally changes default scheduling behavior, the
// fixture is regenerated with:
//
//	UPDATE_GOLDEN=1 go test ./internal/coordinator -run TestGoldenTraceFIFO32x12
//
// and the diff reviewed like any other behavioral change.

var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestGoldenTraceFIFO32x12(t *testing.T) {
	goldenPath := filepath.Join("testdata", "multijob_fifo_32x12.golden")
	var rendered string
	for _, workers := range []int{1, 0, 16} {
		topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
		res, err := coordinator.Run(topo, specs, failures, coordinator.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Render()
		if rendered == "" {
			rendered = got
		} else if got != rendered {
			t.Fatalf("workers=%d: trace diverged from the workers=1 run", workers)
		}
	}
	if updateGolden {
		if err := os.WriteFile(goldenPath, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if rendered != string(want) {
		t.Fatalf("default FIFO sim trace drifted from the committed golden baseline.\n"+
			"If this change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff.\n--- got ---\n%s--- want ---\n%s",
			rendered, want)
	}
}

// TestGoldenTracePlacementDiffers documents that the golden fixture
// covers the DEFAULT mode only: placement-aware runs legitimately
// diverge from it (that divergence is the experiment), while keeping
// the same admission shape.
func TestGoldenTracePlacementDiffers(t *testing.T) {
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{Placement: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "multijob_fifo_32x12.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() == string(want) {
		t.Fatal("placement-aware run reproduced the count-based trace exactly; scoring is not wired in")
	}
	for _, js := range res.Jobs {
		if !js.Completed {
			t.Fatalf("job %s did not complete under placement-aware scheduling", js.Name)
		}
	}
}
