package coordinator

import (
	"fmt"
	"testing"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/obs"
	"tenplex/internal/store"
)

func waitJobState(t *testing.T, svc *Service, name, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := svc.Job(name)
		if err != nil {
			t.Fatalf("Job(%s): %v", name, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", name, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceLifecycle drives the long-running control plane through a
// submit/scale/fail/cancel workload and checks the final states and
// the completion-time bit-verification.
func TestServiceLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	svc, err := StartService(cluster.Cloud(8), Options{
		WallScale: 2 * time.Millisecond,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	defer svc.Stop()

	if err := svc.Submit(JobSpec{Name: "a", Model: model.GPTCustom(6, 32, 2, 64, 8),
		GPUs: 4, MinGPUs: 2, MaxGPUs: 8, DurationMin: 40}); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	if err := svc.Submit(JobSpec{Name: "b", Model: model.GPTCustom(4, 16, 2, 32, 8),
		GPUs: 2, MinGPUs: 1, MaxGPUs: 4, DurationMin: 200}); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	waitJobState(t, svc, "a", "running", 5*time.Second)
	waitJobState(t, svc, "b", "running", 5*time.Second)

	// Shrink b to 1 device, then cancel it.
	if err := svc.Scale("b", 1); err != nil {
		t.Fatalf("scale b: %v", err)
	}
	if err := svc.Cancel("b"); err != nil {
		t.Fatalf("cancel b: %v", err)
	}
	st := waitJobState(t, svc, "b", "canceled", 5*time.Second)
	if st.Verified {
		t.Fatalf("canceled job unexpectedly verified")
	}

	// Fail one of a's devices; it must recover and still complete with
	// bit-verified state.
	stA, err := svc.Job("a")
	if err != nil || len(stA.Alloc) == 0 {
		t.Fatalf("job a status: %+v err=%v", stA, err)
	}
	if err := svc.InjectFailure(cluster.DeviceID(stA.Alloc[0])); err != nil {
		t.Fatalf("inject failure: %v", err)
	}
	st = waitJobState(t, svc, "a", "completed", 30*time.Second)
	// Bit-verification runs on a's execution chain and lands shortly
	// after the completion event in wall mode; poll for it.
	for deadline := time.Now().Add(15 * time.Second); !st.Verified; {
		if time.Now().After(deadline) {
			t.Fatalf("job a completed without bit-verification: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
		if st, err = svc.Job("a"); err != nil {
			t.Fatalf("job a status: %v", err)
		}
	}

	cs, err := svc.Cluster()
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if cs.Completed != 1 || cs.Canceled != 1 {
		t.Fatalf("cluster counts: %+v", cs)
	}
	if cs.Err != "" {
		t.Fatalf("service wedged: %s", cs.Err)
	}

	res, err := svc.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("result jobs: %+v", res.Jobs)
	}
	if _, ok := obs.Get(reg.Snapshot(), "coord.plans"); !ok {
		t.Fatalf("metrics registry saw no coordinator accounting")
	}
	// Post-stop commands are refused, not hung.
	if err := svc.Submit(JobSpec{Name: "late", Model: model.GPTCustom(4, 16, 2, 32, 8),
		GPUs: 1, DurationMin: 1}); err != ErrStopped {
		t.Fatalf("post-stop submit: %v", err)
	}
}

// TestServiceEvents checks the subscription contract: past + live
// events with no gap, and the workload's milestones all present.
func TestServiceEvents(t *testing.T) {
	svc, err := StartService(cluster.Cloud(4), Options{WallScale: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	defer svc.Stop()

	if err := svc.Submit(JobSpec{Name: "j0", Model: model.GPTCustom(4, 16, 2, 32, 8),
		GPUs: 2, MinGPUs: 1, MaxGPUs: 4, DurationMin: 30}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	past, ch, cancel, err := svc.Subscribe(64)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer cancel()
	seen := map[string]bool{}
	for _, e := range past {
		seen[e.Kind] = true
	}
	deadline := time.After(15 * time.Second)
	for !seen[EvComplete] {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("subscription closed early (kinds so far: %v)", seen)
			}
			seen[e.Kind] = true
		case <-deadline:
			t.Fatalf("no completion event (kinds so far: %v)", seen)
		}
	}
	for _, k := range []string{EvSubmit, EvAdmit, EvComplete} {
		if !seen[k] {
			t.Fatalf("missing %s event: %v", k, seen)
		}
	}
}

// TestServiceClientErrors checks request-validation failures are
// refused without wedging the decision plane.
func TestServiceClientErrors(t *testing.T) {
	svc, err := StartService(cluster.Cloud(4), Options{WallScale: time.Millisecond})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	defer svc.Stop()

	if err := svc.Scale("ghost", 2); !IsClientError(err) {
		t.Fatalf("scale unknown job: %v", err)
	}
	if err := svc.Cancel("ghost"); !IsClientError(err) {
		t.Fatalf("cancel unknown job: %v", err)
	}
	if err := svc.Submit(JobSpec{Name: "", Model: nil, GPUs: 1, DurationMin: 1}); !IsClientError(err) {
		t.Fatalf("bad spec: %v", err)
	}
	spec := JobSpec{Name: "dup", Model: model.GPTCustom(4, 16, 2, 32, 8), GPUs: 1, DurationMin: 500}
	if err := svc.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := svc.Submit(spec); !IsClientError(err) {
		t.Fatalf("duplicate submit: %v", err)
	}
	if err := svc.InjectFailure(cluster.DeviceID(99)); !IsClientError(err) {
		t.Fatalf("bad device: %v", err)
	}
	// The plane still works after all those refusals.
	if _, err := svc.Job("dup"); err != nil {
		t.Fatalf("job after refusals: %v", err)
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestServiceStoresFactory confirms Options.Stores feeds every device
// store of every job.
func TestServiceStoresFactory(t *testing.T) {
	made := make(chan string, 64)
	svc, err := StartService(cluster.Cloud(4), Options{
		WallScale: time.Millisecond,
		Stores: func(job string, dev cluster.DeviceID) store.Access {
			made <- fmt.Sprintf("%s/dev%d", job, dev)
			return store.Local{FS: store.NewMemFS()}
		},
	})
	if err != nil {
		t.Fatalf("StartService: %v", err)
	}
	defer svc.Stop()
	if err := svc.Submit(JobSpec{Name: "s0", Model: model.GPTCustom(4, 16, 2, 32, 8),
		GPUs: 2, DurationMin: 20}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJobState(t, svc, "s0", "completed", 15*time.Second)
	if got := len(made); got != 4 {
		t.Fatalf("store factory called %d times, want 4 (one per device)", got)
	}
}
