package coordinator

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/model"
	"tenplex/internal/sched"
)

// contendedSpecs is a 16-device workload with admission contention,
// preemptive scale-ins, elastic scale-outs, a defrag redeploy and a
// mid-run device failure — every change kind the runtime supports.
func contendedSpecs() ([]JobSpec, []FailureSpec) {
	g := tinyGPT()
	specs := []JobSpec{
		{Name: "a", Model: g, ArrivalMin: 0, DurationMin: 100, GPUs: 4, Seed: 1},
		{Name: "b", Model: g, ArrivalMin: 0, DurationMin: 20, GPUs: 4, Seed: 2},
		{Name: "c", Model: tinyMoE(), ArrivalMin: 0, DurationMin: 30, GPUs: 4, Seed: 3},
		{Name: "d", Model: g, ArrivalMin: 0, DurationMin: 100, GPUs: 4, MinGPUs: 2, MaxGPUs: 8, Seed: 4},
		{Name: "e", Model: g, ArrivalMin: 1, DurationMin: 100, GPUs: 2, Seed: 5},
	}
	return specs, []FailureSpec{{TimeMin: 15, Device: 2}}
}

// TestParallelRuntimeTraceIdentical is the parallel runtime's core
// determinism property: fanning the plan+transform work out over a
// worker pool — and even pacing the heap on the real clock — must not
// change a single timeline byte relative to the serialized loop.
func TestParallelRuntimeTraceIdentical(t *testing.T) {
	topo := cluster.OnPrem16()
	specs, failures := contendedSpecs()
	serial, err := Run(topo, specs, failures, Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for name, opts := range map[string]Options{
		"sim-pool-4":  {Workers: 4},
		"sim-pool-16": {Workers: 16},
		"wall-serial": {Workers: 1, Mode: ModeWall, WallScale: time.Microsecond},
		"wall-pool-8": {Workers: 8, Mode: ModeWall, WallScale: time.Microsecond},
	} {
		res, err := Run(topo, specs, failures, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(serial.Timeline, res.Timeline) {
			t.Fatalf("%s timeline diverged from the serialized loop:\n--- serial ---\n%s--- %s ---\n%s",
				name, serial.Render(), name, res.Render())
		}
		if !reflect.DeepEqual(serial.Jobs, res.Jobs) {
			t.Fatalf("%s job summaries diverged", name)
		}
		if serial.ReconfigSecTotal != res.ReconfigSecTotal || serial.PlansValidated != res.PlansValidated {
			t.Fatalf("%s aggregates diverged", name)
		}
	}
}

// TestParallelRuntimeMultiJobScenario runs a larger arrival-trace
// workload through the pooled runtime and cross-checks it against the
// serialized loop, so the determinism property is exercised beyond
// hand-crafted specs.
func TestParallelRuntimeMultiJobScenario(t *testing.T) {
	topo := cluster.Cloud32()
	arrivals, err := sched.Arrivals(sched.DefaultArrivalParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	models := []*model.Model{tinyGPT(), tinyMoE()}
	specs := SpecsFromArrivals(arrivals, func(i int) *model.Model { return models[i%len(models)] })
	failures := []FailureSpec{{TimeMin: 30, Device: 5}}
	serial, err := Run(topo, specs, failures, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Run(topo, specs, failures, Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Timeline, pooled.Timeline) {
		t.Fatalf("pooled timeline diverged:\n--- serial ---\n%s--- pooled ---\n%s",
			serial.Render(), pooled.Render())
	}
}

// TestWallClockFailStop injects a fail-stop failure while the runtime
// is paced on the real clock with a worker pool: recovery must drain
// the victim's in-flight chain, replan against the degraded PTC, and
// leave every job's state bit-verified — with the exact trace sim mode
// produces.
func TestWallClockFailStop(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		{Name: "a", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 60, GPUs: 8, MinGPUs: 4, MaxGPUs: 8, Seed: 1},
		{Name: "b", Model: tinyMoE(), ArrivalMin: 0, DurationMin: 60, GPUs: 4, Seed: 2},
	}
	failures := []FailureSpec{{TimeMin: 10, Device: 2}}
	sim, err := Run(topo, specs, failures, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wall, err := Run(topo, specs, failures, Options{Mode: ModeWall, Workers: 8, WallScale: 5 * time.Microsecond})
	if err != nil {
		t.Fatalf("wall-clock run: %v\n%s", err, wall.Render())
	}
	if countKind(wall, EvFailure) != 1 || countKind(wall, EvRecover) != 1 {
		t.Fatalf("failure/recover events missing\n%s", wall.Render())
	}
	for _, js := range wall.Jobs {
		if !js.Completed {
			t.Errorf("job %s did not complete after the wall-clock failure", js.Name)
		}
	}
	if !reflect.DeepEqual(sim.Timeline, wall.Timeline) {
		t.Fatal("wall-clock trace diverged from sim mode")
	}
	if wall.WallNs <= 0 {
		t.Fatal("wall-clock run reported no elapsed time")
	}
}

// TestPreemptionMidReconfiguration preempts the same elastic victim
// twice in quick succession — in wall-clock mode the second shrink is
// decided while the first one's transform may still be in flight on
// the victim's chain — and expects chained, ordered reconfigurations
// and intact state.
func TestPreemptionMidReconfiguration(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		// The victim holds the whole cluster and shrinks down to 4 as
		// rigid jobs arrive back to back.
		{Name: "victim", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 200, GPUs: 16, MinGPUs: 4, MaxGPUs: 16, Seed: 1},
		{Name: "r1", Model: tinyGPT(), ArrivalMin: 1, DurationMin: 50, GPUs: 4, Seed: 2},
		{Name: "r2", Model: tinyGPT(), ArrivalMin: 1.01, DurationMin: 50, GPUs: 4, Seed: 3},
		{Name: "r3", Model: tinyMoE(), ArrivalMin: 1.02, DurationMin: 50, GPUs: 4, Seed: 4},
	}
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 4, Mode: ModeWall, WallScale: time.Microsecond},
	} {
		res, err := Run(topo, specs, nil, opts)
		if err != nil {
			t.Fatalf("mode %v: %v\n%s", opts.Mode, err, res.Render())
		}
		shrinks := 0
		for _, e := range res.Timeline {
			if e.Kind == EvScaleIn && e.Job == "victim" && strings.Contains(e.Note, "preempted for") {
				shrinks++
			}
		}
		if shrinks < 2 {
			t.Fatalf("mode %v: victim preempted %d times, want >= 2\n%s", opts.Mode, shrinks, res.Render())
		}
		if res.Preemptions != shrinks {
			t.Fatalf("mode %v: Preemptions = %d, %d preemptive scale-ins on the timeline",
				opts.Mode, res.Preemptions, shrinks)
		}
		for _, js := range res.Jobs {
			if !js.Completed {
				t.Fatalf("mode %v: job %s did not complete", opts.Mode, js.Name)
			}
		}
	}
}

// TestWallClockOverlapBeatsSerial is the runtime's reason to exist:
// with the heap paced on the real clock, fanning reconfiguration work
// out must finish the same scenario in less wall time than the
// single-threaded loop, which blocks the clock during every transform.
func TestWallClockOverlapBeatsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paced schedule")
	}
	topo := cluster.OnPrem16()
	specs, failures := contendedSpecs()
	scale := 400 * time.Microsecond
	best := func(opts Options) int64 {
		var min int64
		for i := 0; i < 3; i++ {
			res, err := Run(topo, specs, failures, opts)
			if err != nil {
				t.Fatal(err)
			}
			if min == 0 || res.WallNs < min {
				min = res.WallNs
			}
		}
		return min
	}
	serial := best(Options{Workers: 1, Mode: ModeWall, WallScale: scale})
	parallel := best(Options{Workers: 8, Mode: ModeWall, WallScale: scale})
	// Generous bound: the CI box may be slow or single-core, but the
	// overlap win must not vanish entirely.
	if float64(parallel) > float64(serial)*1.05 {
		t.Fatalf("parallel wall-clock runtime (%.1fms) did not beat the serialized loop (%.1fms)",
			float64(parallel)/1e6, float64(serial)/1e6)
	}
}
