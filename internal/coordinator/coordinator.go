// Package coordinator is a multi-job elastic cluster control plane for
// Tenplex jobs sharing one cluster.Topology — the cluster-side half of
// the paper's scenario, where a scheduler reallocates GPUs among many
// competing DL jobs and each job reconfigures its PTC in response
// (§2, §5.4).
//
// The coordinator keeps a device Ledger that leases and reclaims GPUs
// with no double-allocation, admits jobs from a Philly-derived arrival
// trace through a pluggable Policy (FIFO+surplus, DRF-style fairness,
// or priority classes with gang admission), picks each job's (T, P, D)
// for its current lease with a memoized perfmodel search, and prices
// every reconfiguration with netsim before committing it. The event
// loop handles job arrival and completion, elastic scale-up/down
// arbitration between jobs, defragmenting redeployments onto fewer
// workers, and fail-stop device failures. Every allocation change runs
// through the affected job's real state-management path: core plan
// generation and the distributed State Transformer over per-device
// Tensor Stores.
//
// The runtime is split into a single-threaded decision plane and a
// parallel execution plane: the event loop owns the ledger, the event
// heap and every scheduling choice, while independent jobs'
// reconfiguration work — plan generation, transform.Apply,
// checkpointing and state verification — fans out over a bounded
// worker pool as per-job task chains (see exec.go). Two execution
// modes share the same API: deterministic simulated time (ModeSim, the
// default — traces are reproducible bit for bit and, under the FIFO
// policy, byte-identical to the original serial loop), and wall-clock
// mode (ModeWall), which paces the event heap on the real clock so
// reconfigurations of different jobs genuinely overlap in time.
package coordinator

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"tenplex/internal/chaos"
	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/obs"
	"tenplex/internal/parallel"
	"tenplex/internal/perfmodel"
	"tenplex/internal/sched"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
)

// JobSpec describes one job submitted to the coordinator.
type JobSpec struct {
	// Name identifies the job; must be unique within a run.
	Name string
	// Model is the job's state catalog. Reduced-scale catalogs (e.g.
	// model.GPTCustom) keep simulations cheap while still moving real
	// bytes through the Tensor Stores.
	Model *model.Model
	// ArrivalMin is the submission time in minutes.
	ArrivalMin float64
	// DurationMin is the service time once admitted.
	DurationMin float64
	// GPUs is the requested lease size; MinGPUs/MaxGPUs bound elastic
	// resizing (zero values default to GPUs, i.e. a rigid job).
	GPUs             int
	MinGPUs, MaxGPUs int
	// Priority is the job's class for priority-aware policies (higher
	// runs first); FIFO and DRF ignore it.
	Priority int
	// Seed drives the job's deterministic initial tensors.
	Seed int64
}

// SpecsFromArrivals converts a sched multi-job arrival trace into
// coordinator job specs, assigning each job the model pick(i) returns.
func SpecsFromArrivals(arrivals []sched.JobArrival, pick func(i int) *model.Model) []JobSpec {
	out := make([]JobSpec, 0, len(arrivals))
	for i, a := range arrivals {
		out = append(out, JobSpec{
			Name:        a.Name,
			Model:       pick(i),
			ArrivalMin:  a.ArrivalMin,
			DurationMin: a.DurationMin,
			GPUs:        a.GPUs,
			MinGPUs:     a.MinGPUs,
			MaxGPUs:     a.MaxGPUs,
			Seed:        int64(i)*1009 + 1,
		})
	}
	return out
}

// FailureSpec injects a fail-stop device failure at a point in time.
type FailureSpec struct {
	TimeMin float64
	Device  cluster.DeviceID
}

// ExecMode selects how the runtime advances time.
type ExecMode int

const (
	// ModeSim is deterministic simulated time: the event heap drives
	// the clock and the run is reproducible bit for bit.
	ModeSim ExecMode = iota
	// ModeWall paces the event heap on the real clock (Options.WallScale
	// real time per simulated minute), so independent jobs'
	// reconfigurations genuinely overlap. Decisions — and therefore the
	// timeline — are identical to ModeSim; only real execution differs.
	ModeWall
)

// Options tunes a coordinator run.
type Options struct {
	// Perf is the cost model for placement decisions; the zero value
	// uses a reduced-scale default (no memory feasibility check, batch
	// 64) suited to the materialized mini models simulations run.
	Perf perfmodel.Params
	// DefragMaxSec is the netsim-priced cost ceiling for voluntary
	// defragmenting redeployments: a compaction whose predicted
	// reconfiguration time exceeds it is not committed. Zero means the
	// default (30 s); negative disables defragmentation.
	DefragMaxSec float64
	// Policy decides admission order, preemption victims and expansion
	// order. nil means FIFO{} — the original behavior, with sim traces
	// byte-identical to the pre-Policy coordinator.
	Policy Policy
	// Placement enables allocation-aware placement scoring: instead of
	// the single count-based compact pick, the coordinator enumerates
	// up to PlacementCandidates lease-feasible device sets per
	// admission and expansion (Ledger.CandidateSets), scores each
	// concrete set with perfmodel.ScorePlacement (TP-group locality,
	// worst-link bandwidth, netsim-priced migration of the job's state
	// from its current allocation), and lets the Policy rank them;
	// preemption victims are scored by the netsim cost of evicting
	// them, not just largest surplus. Disabled (the default), sim
	// traces are byte-identical to the count-based coordinator.
	Placement bool
	// PlacementCandidates bounds the candidate sets scored per
	// decision; 0 means the default (4).
	PlacementCandidates int
	// Mode selects deterministic simulated time (default) or wall-clock
	// pacing.
	Mode ExecMode
	// Workers bounds the worker pool executing per-job reconfiguration
	// work. 0 means GOMAXPROCS; 1 means the fully serialized
	// single-threaded event loop (every task runs inline at its
	// decision point, the original runtime).
	Workers int
	// WallScale is the real duration of one simulated minute in
	// ModeWall; zero means the default 250µs.
	WallScale time.Duration
	// Chaos injects deterministic hostility (see internal/chaos):
	// per-operation store faults during transform attempts, flapping
	// devices, spot reclamations and link degradations. nil disables
	// injection entirely and leaves traces byte-identical to a run
	// without the field.
	Chaos *chaos.Plan
	// Recovery tunes transactional reconfiguration and graceful
	// degradation; the zero value is the legacy fail-fast coordinator.
	Recovery RecoveryPolicy
	// RecordDecisions collects the wall-clock latency of every
	// decision-plane event handler into Result.DecisionNs — the metric
	// the dcscale experiments gate on. Only the handler itself is
	// timed: plan/transform execution (flush) and invariant audits are
	// verification machinery of the simulator, not work a production
	// control plane would do per decision.
	RecordDecisions bool
	// AuditStride runs the expensive per-event runtime audit (PTC
	// validation for every running job) on every AuditStride-th event
	// only; 0 or 1 audits every event (the default, unchanged
	// behavior). The terminal auditAll sweep always runs, so a
	// divergence still fails the run — a larger stride only delays
	// where it surfaces. Datacenter-scale simulations (200 jobs ×
	// thousands of events) set this to keep O(jobs·state) validation
	// from dominating the run.
	AuditStride int
	// Stores, when non-nil, supplies each job runtime's per-device
	// Tensor Store instead of a fresh in-memory one. The coordd daemon
	// points it at real tenplex-store servers (one store.Client per
	// device), so every plan/transform/verify moves bytes over the
	// wire. Checkpoint blob storage stays in-process either way: it is
	// the durability anchor rollback and restore depend on. nil (the
	// default) keeps the original in-memory stores and leaves sim
	// traces byte-identical.
	Stores func(job string, dev cluster.DeviceID) store.Access
	// Metrics, when non-nil and Obs is nil, mirrors the coordinator's
	// accounting into this registry without recording any trace — what
	// a long-running service wants, since spans accumulate without
	// bound. Ignored when Obs is set (the tracer's registry wins).
	Metrics *obs.Registry
	// Obs, when non-nil, records an end-to-end trace of the run —
	// decision-plane events, per-change execution phases and (at
	// LevelDatapath) per-assignment and per-store-operation detail —
	// plus a shared metrics registry mirroring the coordinator's
	// accounting. nil disables observability entirely: the hot paths
	// see only nil-receiver no-ops and the run's behavior, timeline and
	// Result are byte-identical to a run without the field.
	Obs *obs.Tracer
}

// RecoveryPolicy governs how the coordinator survives failing
// reconfigurations. The zero value reproduces the legacy coordinator:
// one transform attempt, any commit error aborts the whole run.
type RecoveryPolicy struct {
	// MaxAttempts bounds transform attempts per committed change; 0 or
	// 1 means a single attempt. With chaos enabled even a single failed
	// attempt degrades gracefully (rollback to checkpoint + requeue)
	// instead of erroring the run.
	MaxAttempts int
	// BackoffSec is the simulated-time wait before the second attempt,
	// doubling each retry and capped at MaxBackoffSec (uncapped when
	// MaxBackoffSec is 0). Backoff is charged as job downtime, never
	// slept.
	BackoffSec    float64
	MaxBackoffSec float64
	// MaxRequeues bounds how many aborted reconfigurations may send one
	// job back to the admission queue before it is declared lost; 0
	// means unlimited.
	MaxRequeues int
	// SuspicionThreshold is the failure detector: a recovering device
	// that has failed at least this many times stays quarantined
	// instead of being re-leased. 0 disables quarantine.
	SuspicionThreshold int
}

// backoffSec is the simulated backoff after the n-th failed attempt
// (n >= 1).
func (p RecoveryPolicy) backoffSec(n int) float64 {
	if p.BackoffSec <= 0 {
		return 0
	}
	d := p.BackoffSec * math.Pow(2, float64(n-1))
	if p.MaxBackoffSec > 0 && d > p.MaxBackoffSec {
		d = p.MaxBackoffSec
	}
	return d
}

// totalBackoffSec sums the waits a change that ran attempts transform
// attempts sat through.
func (p RecoveryPolicy) totalBackoffSec(attempts int) float64 {
	var sum float64
	for n := 1; n < attempts; n++ {
		sum += p.backoffSec(n)
	}
	return sum
}

// DefaultPerf returns the placement cost model used when Options.Perf
// is zero.
func DefaultPerf() perfmodel.Params {
	p := perfmodel.DefaultParams()
	p.GlobalBatch = 64
	p.DeviceMemGB = 0 // reduced-scale catalogs: skip the memory check
	return p
}

// Timeline event kinds.
const (
	EvSubmit   = "submit"
	EvAdmit    = "admit"
	EvReject   = "reject"
	EvScaleOut = "scale-out"
	EvScaleIn  = "scale-in"
	EvRedeploy = "redeploy"
	EvFailure  = "device-failure"
	EvRecover  = "recover"
	EvLost     = "lost"
	EvComplete = "complete"

	// Hostile-cluster events (chaos plans and graceful degradation).
	EvDevRecover  = "device-recover"
	EvQuarantine  = "quarantine"
	EvSpotNotice  = "spot-notice"
	EvLinkDegrade = "link-degrade"
	EvLinkRestore = "link-restore"
	EvRequeue     = "requeue"

	// Service events (long-running coordd control plane only; never
	// emitted by Run).
	EvCancel = "cancel"
)

// TimelineEvent is one entry of the per-job cluster timeline. The JSON
// encoding is stable: field names are fixed tags and Kind is always one
// of the Ev* constants, so timelines can be exported, diffed and read
// back across versions.
type TimelineEvent struct {
	TimeMin float64 `json:"time_min"`
	Job     string  `json:"job,omitempty"`
	Kind    string  `json:"kind"`
	// GPUs is the job's lease size after the event.
	GPUs int `json:"gpus,omitempty"`
	// Config is the job's (T, P, D) after the event, when placed.
	Config string `json:"config,omitempty"`
	// SimSec is the netsim-priced reconfiguration time charged as
	// downtime for this event.
	SimSec float64 `json:"sim_sec,omitempty"`
	// MovedBytes crossed a device boundary during the change.
	MovedBytes int64  `json:"moved_bytes,omitempty"`
	Note       string `json:"note,omitempty"`
}

func (e TimelineEvent) String() string {
	s := fmt.Sprintf("t=%7.1f min  %-8s %-14s %2d GPUs", e.TimeMin, e.Job, e.Kind, e.GPUs)
	if e.Config != "" {
		s += " as " + e.Config
	}
	if e.SimSec > 0 {
		s += fmt.Sprintf(", %.3fs reconfig", e.SimSec)
	}
	if e.Note != "" {
		s += "  (" + e.Note + ")"
	}
	return s
}

// JobSummary aggregates one job's run.
type JobSummary struct {
	Name        string
	Model       string
	GPUs        int // requested
	ArrivalMin  float64
	AdmitMin    float64
	DoneMin     float64
	Resizes     int
	ReconfigSec float64
	MovedBytes  int64
	Completed   bool
}

// Result is the outcome of a coordinator simulation.
type Result struct {
	Timeline []TimelineEvent
	Jobs     []JobSummary
	// Policy is the name of the scheduling policy that ran.
	Policy string
	// MakespanMin is the time of the last event.
	MakespanMin float64
	// ReconfigSecTotal is the aggregate netsim-priced reconfiguration
	// time across all jobs.
	ReconfigSecTotal float64
	// MovedBytesTotal is the aggregate reconfiguration payload that
	// crossed a device boundary across all jobs — the quantity
	// placement-aware scheduling exists to shrink.
	MovedBytesTotal int64
	// MeanUtilization is leased device-time over total device-time.
	MeanUtilization float64
	// Preemptions counts forced scale-ins of running jobs on behalf of
	// queued ones.
	Preemptions int
	// PlansValidated counts reconfiguration plans generated and
	// validated during the run (every resize, redeploy and recovery).
	PlansValidated int
	// InvariantChecks counts full ledger+PTC invariant sweeps (one per
	// processed event).
	InvariantChecks int
	// Retries counts transform attempts beyond each change's first —
	// work the retry budget bought back from injected faults.
	Retries int
	// Requeues counts aborted reconfigurations that sent their job back
	// to the admission queue (graceful degradation instead of run
	// failure).
	Requeues int
	// QuarantinedDevices counts devices the suspicion-count failure
	// detector refused to re-admit after a recovery.
	QuarantinedDevices int
	// RetryBytes is reconfiguration payload re-moved by attempts beyond
	// the first — the waste the retry policy pays for survival.
	RetryBytes int64
	// RecoverySec is downtime charged beyond first-attempt cost: repeat
	// transform work, backoff waits and aborted-change work.
	RecoverySec float64
	// WallNs is the real time the run took — the cost of executing the
	// control plane plus (in ModeWall) the paced schedule.
	WallNs int64
	// DecisionNs holds the wall-clock nanoseconds each decision-plane
	// event handler took, in processing order; populated only when
	// Options.RecordDecisions is set.
	DecisionNs []int64
}

// Render formats the timeline and summary as text.
func (r Result) Render() string {
	s := ""
	for _, e := range r.Timeline {
		s += e.String() + "\n"
	}
	s += fmt.Sprintf("makespan %.1f min, mean utilization %.2f, aggregate reconfig %.3f s, %d plans validated\n",
		r.MakespanMin, r.MeanUtilization, r.ReconfigSecTotal, r.PlansValidated)
	return s
}

// --- event queue ---

type evKind int

const (
	evArrival evKind = iota
	evFailure
	evComplete
	evDevRecover
	evSpotNotice
	evSpotDeadline
	evLinkDegrade
	evLinkRestore
)

type event struct {
	time float64
	seq  int
	kind evKind
	job  string
	dev  cluster.DeviceID
	ver  int // completion version; stale versions are skipped
	// worker/factor carry link-degradation payloads; factor doubles as
	// the reclamation window (minutes) on spot-notice events.
	worker int
	factor float64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// --- simulation state ---

type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobRejected
	jobLost
	// jobCanceled is reachable only through the service control plane
	// (Service.Cancel); Run never produces it.
	jobCanceled
)

func (st jobState) String() string {
	switch st {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "completed"
	case jobRejected:
		return "rejected"
	case jobLost:
		return "lost"
	case jobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("jobState(%d)", int(st))
}

type simJob struct {
	spec JobSpec
	idx  int // submission order
	rt   *jobRuntime
	// init holds the job's deterministic initial tensors. It is
	// written by the deploy task and read by the verify task — both on
	// the job's chain, never by the event loop.
	init map[core.TensorID]*tensor.Tensor

	// Decision-plane mirrors of the runtime's placement. The event
	// loop reads and writes these at decision time; rt.alloc/rt.cfg
	// catch up when the job's chain executes.
	alloc cluster.Allocation
	cfg   parallel.Config

	state       jobState
	admitMin    float64
	doneMin     float64
	complAt     float64
	ver         int
	resizes     int
	reconfigSec float64
	movedBytes  int64

	// Graceful-degradation bookkeeping. deployed marks that the runtime
	// holds state (so a re-admission must restore from checkpoint, not
	// deploy fresh); servedMin accumulates service time across requeues
	// so a resumed job only runs its remaining duration.
	deployed     bool
	requeues     int
	servedMin    float64
	lastStartMin float64

	// verified is set by the completion-time verify task when the
	// job's reassembled state matched its initial tensors bit for bit.
	// Written on the job's chain, read by service status snapshots —
	// hence atomic.
	verified atomic.Bool
}

// pendingChange is one decided allocation change whose plan+transform
// is in flight on the job's chain. The event loop finalizes it — fills
// the timeline entry's price and schedules the delayed completion —
// once the plan is available.
type pendingChange struct {
	j      *simJob
	cfg    parallel.Config
	alloc  cluster.Allocation
	failed []cluster.DeviceID
	seq    int // reserved event sequence number for the completion push
	ver    int
	tlIdx  int // timeline placeholder index
	ch     *change
	// spanID/tMin are the change's trace root, allocated at decision
	// time so the span sequence is pure decision-plane state.
	spanID uint64
	tMin   float64
	// out is the transactional commit's outcome, stored by the job's
	// chain and read by the event loop (hence atomic): attempt count for
	// downtime accounting, or an abort flush turns into a requeue.
	out atomic.Pointer[commitOutcome]
}

type sim struct {
	topo   *cluster.Topology
	opts   Options
	policy Policy
	ledger *Ledger
	cache  *perfmodel.Cache
	pool   *pool // nil when Workers == 1: tasks run inline
	inj    *chaos.Injector

	jobs  map[string]*simJob
	order []string // submission order
	queue []string // admission queue, arrival order

	evq eventHeap
	seq int
	now float64

	pending []*pendingChange
	// inflight holds wall-mode changes charged optimistically before
	// their transform finished; late aborts are resolved at later
	// flushes.
	inflight []*pendingChange

	timeline     []TimelineEvent
	plans        int
	checks       int
	preemptions  int
	reconfigSec  float64
	utilIntegral float64 // leased device-minutes

	quarantined map[cluster.DeviceID]bool
	retries     int
	requeues    int
	retryBytes  int64
	recoverySec float64

	decisionNs []int64 // per-event handler latency (RecordDecisions)
	eventIdx   int     // processed-event counter (AuditStride)

	// tr/reg are Options.Obs and its registry (both nil when off).
	tr  *obs.Tracer
	reg *obs.Registry

	// onEvent, when non-nil, observes every timeline entry as it is
	// recorded (service event streaming). Placeholder entries for
	// in-flight changes are published before their price fields are
	// finalized; the stored timeline is patched in place afterwards.
	onEvent func(TimelineEvent)
}

// Run executes a coordinator run: the jobs arrive, compete for the
// topology's devices under the configured Policy, resize elastically,
// survive the injected failures, and complete. In ModeSim (default)
// the run is deterministic; in ModeWall the event heap is paced on the
// real clock and independent jobs' reconfigurations overlap. It
// returns the per-job timeline and aggregate metrics, or the first
// invariant or state-management error.
func Run(topo *cluster.Topology, specs []JobSpec, failures []FailureSpec, opts Options) (Result, error) {
	s, err := newSim(topo, opts)
	if err != nil {
		return Result{}, err
	}
	topo, opts = s.topo, s.opts
	for i := range specs {
		j, err := s.addJob(specs[i])
		if err != nil {
			return Result{}, err
		}
		s.push(event{time: j.spec.ArrivalMin, kind: evArrival, job: j.spec.Name})
	}
	for _, f := range failures {
		if int(f.Device) < 0 || int(f.Device) >= topo.NumDevices() {
			return Result{}, fmt.Errorf("coordinator: failure of unknown device %d", f.Device)
		}
		s.push(event{time: f.TimeMin, kind: evFailure, dev: f.Device})
	}
	if opts.Chaos != nil {
		if err := opts.Chaos.Validate(topo.NumDevices(), topo.NumWorkers()); err != nil {
			return Result{}, err
		}
		s.inj = chaos.NewInjector(*opts.Chaos)
		for _, j := range s.jobs {
			j.rt.wrapStores(s.inj)
		}
		for _, f := range opts.Chaos.Flaps {
			cycles := f.Cycles
			if cycles < 1 {
				cycles = 1
			}
			for c := 0; c < cycles; c++ {
				at := f.FailMin + float64(c)*f.PeriodMin
				s.push(event{time: at, kind: evFailure, dev: f.Device})
				s.push(event{time: at + f.DownMin, kind: evDevRecover, dev: f.Device})
			}
		}
		for _, rc := range opts.Chaos.Reclaims {
			s.push(event{time: rc.NoticeMin, kind: evSpotNotice, dev: rc.Device, factor: rc.WindowMin})
			s.push(event{time: rc.NoticeMin + rc.WindowMin, kind: evSpotDeadline, dev: rc.Device})
		}
		for _, ld := range opts.Chaos.LinkDegrades {
			s.push(event{time: ld.StartMin, kind: evLinkDegrade, worker: ld.Worker, factor: ld.Factor})
			s.push(event{time: ld.StartMin + ld.DurationMin, kind: evLinkRestore, worker: ld.Worker})
		}
	}
	if opts.Obs.Deep() {
		// Datapath tracing wraps outside any chaos wrapper, so injected
		// faults show up as the failed store operations they are.
		for _, j := range s.jobs {
			j.rt.observeStores()
		}
	}

	start := time.Now()
	for s.evq.Len() > 0 {
		e := heap.Pop(&s.evq).(event)
		if e.kind == evComplete {
			j := s.jobs[e.job]
			if j.state != jobRunning || j.ver != e.ver {
				continue // superseded by a resize or a failure
			}
		}
		if opts.Mode == ModeWall {
			// Pace the heap on the real clock: one simulated minute is
			// WallScale of real time. In-flight chains keep executing
			// while the loop waits — that overlap is the mode's point.
			due := start.Add(time.Duration(e.time * float64(opts.WallScale)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		s.advance(e.time)
		if s.tr.Enabled() {
			s.traceDecision(e)
			s.reg.Add("coord.events", 1)
		}
		s.eventIdx++
		var decideStart time.Time
		if opts.RecordDecisions {
			decideStart = time.Now()
		}
		err := s.dispatch(e)
		if opts.RecordDecisions {
			s.decisionNs = append(s.decisionNs, time.Since(decideStart).Nanoseconds())
		}
		if err == nil {
			err = s.flush()
		}
		if err == nil {
			err = s.checkInvariants()
		}
		if err != nil {
			if s.pool != nil {
				s.pool.drainAll() // quiesce chains before reporting
			}
			return s.result(start), err
		}
	}
	// Wall mode leaves verification (and possibly trailing commits) in
	// flight; join them before judging the run. Commits may have aborted
	// after their optimistic charge, and resolving those can spawn fresh
	// restore chains, so drain and flush until everything settles — no
	// job ends silently inconsistent.
	for {
		if s.pool != nil {
			if err := s.pool.drainAll(); err != nil {
				return s.result(start), err
			}
		}
		if err := s.flush(); err != nil {
			return s.result(start), err
		}
		if len(s.inflight) == 0 && len(s.pending) == 0 {
			break
		}
	}
	if err := s.auditAll(); err != nil {
		return s.result(start), err
	}
	// Anything still queued could never be placed on this cluster. Jobs
	// parked by graceful degradation end explicitly requeued — never
	// silently lost.
	for _, name := range s.queue {
		j := s.jobs[name]
		j.state = jobRejected
		note := "never admitted: insufficient capacity"
		if j.requeues > 0 {
			note = fmt.Sprintf("requeued %d times after aborted reconfigurations; never re-admitted", j.requeues)
		}
		s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvReject, Note: note})
	}
	return s.result(start), nil
}

// newSim validates the topology, applies option defaults and builds
// the decision-plane state shared by Run and the long-running Service.
// The topology is health-isolated behind a clone so repeated runs over
// one caller-owned topology stay independent and deterministic.
func newSim(topo *cluster.Topology, opts Options) (*sim, error) {
	if topo == nil || topo.NumDevices() == 0 {
		return nil, fmt.Errorf("coordinator: run needs a topology")
	}
	// Fail-stop handling marks devices in the topology (so placement
	// scoring and memoization generations see the post-failure
	// cluster).
	topo = topo.Clone()
	if opts.Perf.GlobalBatch == 0 {
		opts.Perf = DefaultPerf()
	}
	if opts.DefragMaxSec == 0 {
		opts.DefragMaxSec = 30
	}
	if opts.Policy == nil {
		opts.Policy = FIFO{}
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.PlacementCandidates == 0 {
		opts.PlacementCandidates = 4
	}
	if opts.WallScale == 0 {
		opts.WallScale = 250 * time.Microsecond
	}
	s := &sim{
		topo:        topo,
		opts:        opts,
		policy:      opts.Policy,
		ledger:      NewLedger(topo),
		cache:       perfmodel.NewCache(),
		jobs:        map[string]*simJob{},
		quarantined: map[cluster.DeviceID]bool{},
		tr:          opts.Obs,
		reg:         opts.Obs.Metrics(),
	}
	if s.reg == nil {
		s.reg = opts.Metrics
	}
	if opts.Workers > 1 {
		s.pool = newPool(opts.Workers)
	}
	return s, nil
}

// addJob registers one job with the sim: validates and normalizes the
// spec, builds its runtime (device stores come from opts.Stores when
// set) and appends it to the submission order. The caller schedules —
// or, on the service path, immediately fires — the arrival event. The
// initial tensors are materialized lazily at admission, so queued and
// rejected jobs cost no state memory.
func (s *sim) addJob(spec JobSpec) (*simJob, error) {
	if err := normalizeSpec(&spec); err != nil {
		return nil, err
	}
	if _, dup := s.jobs[spec.Name]; dup {
		return nil, fmt.Errorf("coordinator: duplicate job name %q", spec.Name)
	}
	j := &simJob{
		spec: spec,
		idx:  len(s.order),
		rt:   newJobRuntime(spec.Name, spec.Model, s.topo, s.opts.Stores),
	}
	j.rt.metrics = s.reg
	s.jobs[spec.Name] = j
	s.order = append(s.order, spec.Name)
	return j, nil
}

func normalizeSpec(spec *JobSpec) error {
	if spec.Name == "" || spec.Model == nil {
		return fmt.Errorf("coordinator: job spec needs Name and Model")
	}
	if spec.GPUs < 1 || spec.DurationMin <= 0 || spec.ArrivalMin < 0 {
		return fmt.Errorf("coordinator: job %s: bad GPUs/duration/arrival", spec.Name)
	}
	if spec.MinGPUs == 0 {
		spec.MinGPUs = spec.GPUs
	}
	if spec.MaxGPUs == 0 {
		spec.MaxGPUs = spec.GPUs
	}
	if spec.MinGPUs < 1 || spec.MinGPUs > spec.GPUs || spec.MaxGPUs < spec.GPUs {
		return fmt.Errorf("coordinator: job %s: bounds [%d, %d] around %d",
			spec.Name, spec.MinGPUs, spec.MaxGPUs, spec.GPUs)
	}
	return nil
}

func (s *sim) push(e event) {
	e.seq = s.reserveSeq()
	heap.Push(&s.evq, e)
}

// reserveSeq hands out the next event sequence number. Changes whose
// completion push is deferred until their plan is priced reserve their
// seq at decision time, so the heap order is independent of when the
// push actually happens.
func (s *sim) reserveSeq() int {
	n := s.seq
	s.seq++
	return n
}

func (s *sim) pushReserved(e event, seq int) {
	e.seq = seq
	heap.Push(&s.evq, e)
}

// advance moves the clock to t, integrating leased device-time for the
// utilization metric.
func (s *sim) advance(t float64) {
	if t < s.now {
		t = s.now // reconfiguration downtime may push completions past later events
	}
	s.utilIntegral += float64(s.ledger.LeasedCount()) * (t - s.now)
	s.now = t
}

func (s *sim) record(e TimelineEvent) {
	s.timeline = append(s.timeline, e)
	if s.onEvent != nil {
		s.onEvent(e)
	}
}

// running returns the running jobs in submission order.
func (s *sim) running() []*simJob {
	var out []*simJob
	for _, name := range s.order {
		if j := s.jobs[name]; j.state == jobRunning {
			out = append(out, j)
		}
	}
	return out
}

// --- task plumbing ---

// submit schedules fn on job's task chain; with Workers == 1 it runs
// inline at the decision point (the serialized runtime) and returns
// fn's error directly.
func (s *sim) submit(job string, fn func() error) error {
	if s.pool == nil {
		return fn()
	}
	s.pool.submit(job, fn)
	return nil
}

// drainJob waits for job's chain to go idle, so the event loop may
// read or plan against the job's runtime state.
func (s *sim) drainJob(job string) error {
	if s.pool == nil {
		return nil
	}
	s.pool.drain(job)
	return s.pool.firstErr()
}

// flush finalizes the event's decided changes: it waits for their
// plans (in ModeSim the whole batch executes here, fanned out across
// jobs; in ModeWall plans were priced at decision time and only
// transforms remain in flight), then — in decision order — charges
// each job's downtime, schedules the delayed completion under the seq
// reserved at decision time, and fills the timeline placeholders.
//
// With recovery enabled a change may come back aborted: its chain
// already rolled the runtime back to the last bit-verified checkpoint,
// and flush degrades gracefully — the job is requeued (or lost), then
// admission reruns, which may re-admit it from the checkpoint as a
// fresh pending restore. The loop drains until no decided work
// remains; with chaos off it makes exactly one charging pass, byte-
// identical to the legacy flush.
func (s *sim) flush() error {
	for {
		if s.pool != nil && s.opts.Mode == ModeSim {
			if err := s.pool.drainAll(); err != nil {
				return err
			}
		}
		if err := s.resolveInflight(); err != nil {
			return err
		}
		if len(s.pending) == 0 {
			return nil
		}
		batch := s.pending
		s.pending = nil
		degraded := false
		for _, p := range batch {
			ch := p.ch
			if ch == nil {
				if s.pool != nil {
					if err := s.pool.firstErr(); err != nil {
						return err
					}
				}
				return fmt.Errorf("coordinator: change for %s has no plan", p.j.spec.Name)
			}
			if p.j.state != jobRunning {
				s.traceSuperseded(p)
				continue // superseded by a requeue earlier in the batch
			}
			out := p.out.Load()
			if out == nil {
				// ModeWall: the transform is still in flight. Charge the
				// planned cost now; a late abort is resolved at the next
				// flush, staled by the requeue's version bump.
				s.inflight = append(s.inflight, p)
				s.charge(p, ch, nil)
				continue
			}
			if out.aborted {
				degraded = true
				s.degrade(p, ch, out)
				continue
			}
			s.charge(p, ch, out)
		}
		if degraded {
			// Freed capacity (and the requeued jobs themselves) go back
			// through admission immediately.
			if err := s.admitQueued(); err != nil {
				return err
			}
			if err := s.expandJobs(); err != nil {
				return err
			}
		}
	}
}

// charge books one committed change against its job: the netsim-priced
// transform once per attempt plus the policy's backoff waits. With a
// single attempt the arithmetic is exactly ch.simSec and the timeline
// note is untouched — the legacy path, byte for byte. out is nil only
// for a wall-mode optimistic charge (one attempt assumed; resolveInflight
// settles the rest later).
func (s *sim) charge(p *pendingChange, ch *change, out *commitOutcome) {
	j := p.j
	attempts := 1
	if out != nil {
		attempts = out.attempts
	}
	down := ch.simSec
	if attempts > 1 {
		down = float64(attempts)*ch.simSec + s.opts.Recovery.totalBackoffSec(attempts)
		s.retries += attempts - 1
		s.retryBytes += int64(attempts-1) * ch.stats.MovedBytes
		s.recoverySec += down - ch.simSec
		s.timeline[p.tlIdx].Note = appendNote(s.timeline[p.tlIdx].Note,
			fmt.Sprintf("%d attempts", attempts))
	}
	j.reconfigSec += down
	j.movedBytes += ch.stats.MovedBytes
	s.reconfigSec += down
	// Downtime delays the job's completion.
	j.complAt += down / 60
	s.pushReserved(event{time: j.complAt, kind: evComplete, job: j.spec.Name, ver: p.ver}, p.seq)
	s.timeline[p.tlIdx].SimSec = down
	s.timeline[p.tlIdx].MovedBytes = ch.stats.MovedBytes
	if s.reg != nil {
		// Mirrors of the accumulations above, written only here on the
		// event loop in decision order — the float gauge therefore sums
		// in exactly the order j.reconfigSec did, which is what lets
		// report.Reconcile demand bit-exact equality.
		name := j.spec.Name
		s.reg.AddFloat("job."+name+".reconfig_sec", down)
		s.reg.Add("job."+name+".moved_bytes", ch.stats.MovedBytes)
		s.reg.AddFloat("coord.reconfig_sec", down)
		s.reg.Add("coord.moved_bytes", ch.stats.MovedBytes)
		if attempts > 1 {
			s.reg.Add("job."+name+".retries", int64(attempts-1))
			s.reg.Add("coord.retries", int64(attempts-1))
			s.reg.Add("coord.retry_bytes", int64(attempts-1)*ch.stats.MovedBytes)
			s.reg.AddFloat("coord.recovery_sec", down-ch.simSec)
		}
	}
	s.traceChange(p, ch, attempts, down, out)
}

// degrade handles an aborted change: the chain rolled the runtime back
// to its last checkpoint, so the decision plane walks back too — the
// wasted attempts are charged to the recovery metrics (there is no
// completion to delay) and the job is requeued or, once its requeue
// budget is spent, declared lost.
func (s *sim) degrade(p *pendingChange, ch *change, out *commitOutcome) {
	j := p.j
	wasted := float64(out.attempts)*ch.simSec + s.opts.Recovery.totalBackoffSec(out.attempts)
	s.retries += out.attempts - 1
	s.retryBytes += int64(out.attempts-1) * ch.stats.MovedBytes
	s.recoverySec += wasted
	s.reconfigSec += wasted
	j.reconfigSec += wasted
	s.timeline[p.tlIdx].SimSec = wasted
	s.timeline[p.tlIdx].Note = appendNote(s.timeline[p.tlIdx].Note,
		fmt.Sprintf("aborted after %d attempts, rolled back to checkpoint", out.attempts))
	if s.reg != nil {
		name := j.spec.Name
		s.reg.AddFloat("job."+name+".reconfig_sec", wasted)
		s.reg.AddFloat("coord.reconfig_sec", wasted)
		s.reg.AddFloat("coord.recovery_sec", wasted)
		if out.attempts > 1 {
			s.reg.Add("job."+name+".retries", int64(out.attempts-1))
			s.reg.Add("coord.retries", int64(out.attempts-1))
			s.reg.Add("coord.retry_bytes", int64(out.attempts-1)*ch.stats.MovedBytes)
		}
	}
	s.traceChange(p, ch, out.attempts, wasted, out)
	s.requeueJob(j)
}

// requeueJob sends a running job whose reconfiguration aborted back to
// the admission queue: lease released, served time banked so a later
// re-admission resumes the remaining duration from the checkpoint. The
// version bump stales any scheduled completion.
func (s *sim) requeueJob(j *simJob) {
	name := j.spec.Name
	s.ledger.ReleaseAll(name)
	j.servedMin += s.now - j.lastStartMin
	j.alloc = nil
	j.ver++
	j.requeues++
	s.requeues++
	s.reg.Add("coord.requeues", 1)
	if max := s.opts.Recovery.MaxRequeues; max > 0 && j.requeues > max {
		s.cache.DropJob(name)
		j.state = jobLost
		j.doneMin = s.now
		s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvLost,
			Note: fmt.Sprintf("requeue budget exhausted after %d aborted reconfigurations", j.requeues)})
		return
	}
	j.state = jobQueued
	s.queue = append(s.queue, name)
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvRequeue,
		Note: fmt.Sprintf("requeue %d: attempt budget exhausted", j.requeues)})
}

// resolveInflight picks up late outcomes of wall-mode commits charged
// optimistically: a retry still gets its recovery metrics, and an
// abort still degrades the job — its already-scheduled completion is
// staled by the requeue's version bump.
func (s *sim) resolveInflight() error {
	if len(s.inflight) == 0 {
		return nil
	}
	var keep []*pendingChange
	degraded := false
	for _, p := range s.inflight {
		out := p.out.Load()
		if out == nil {
			keep = append(keep, p)
			continue
		}
		if out.attempts > 1 {
			s.retries += out.attempts - 1
			s.retryBytes += int64(out.attempts-1) * p.ch.stats.MovedBytes
			if s.reg != nil {
				s.reg.Add("job."+p.j.spec.Name+".retries", int64(out.attempts-1))
				s.reg.Add("coord.retries", int64(out.attempts-1))
				s.reg.Add("coord.retry_bytes", int64(out.attempts-1)*p.ch.stats.MovedBytes)
			}
		}
		if out.attempts > 1 || out.aborted {
			s.traceLate(p, out)
		}
		if out.aborted && p.j.state == jobRunning && p.j.ver == p.ver {
			degraded = true
			s.timeline[p.tlIdx].Note = appendNote(s.timeline[p.tlIdx].Note,
				fmt.Sprintf("aborted after %d attempts, rolled back to checkpoint", out.attempts))
			s.requeueJob(p.j)
		}
	}
	s.inflight = keep
	if degraded {
		if err := s.admitQueued(); err != nil {
			return err
		}
		return s.expandJobs()
	}
	return nil
}

func appendNote(note, extra string) string {
	if note == "" {
		return extra
	}
	return note + "; " + extra
}

// --- trace recording (all on the event loop; see internal/obs) ---

// evName is the stable decision-span suffix for an event kind.
func evName(k evKind) string {
	switch k {
	case evArrival:
		return "arrival"
	case evFailure:
		return "failure"
	case evComplete:
		return "complete"
	case evDevRecover:
		return "dev-recover"
	case evSpotNotice:
		return "spot-notice"
	case evSpotDeadline:
		return "spot-deadline"
	case evLinkDegrade:
		return "link-degrade"
	case evLinkRestore:
		return "link-restore"
	}
	return "unknown"
}

// traceDecision records one decision-plane span per processed event.
// The nil-tracer fast path returns before building the attrs map, so a
// run without observability pays zero allocations per event here (the
// hot rescore loop processes thousands of events at datacenter scale);
// TestDecisionObsOffNoAllocs guards this.
func (s *sim) traceDecision(e event) {
	if !s.tr.Enabled() {
		return
	}
	var attrs map[string]any
	switch e.kind {
	case evFailure, evDevRecover, evSpotNotice, evSpotDeadline:
		attrs = map[string]any{"dev": int(e.dev)}
	case evLinkDegrade, evLinkRestore:
		attrs = map[string]any{"worker": e.worker}
	}
	if e.kind == evSpotNotice || e.kind == evLinkDegrade {
		attrs["factor"] = e.factor
	}
	s.tr.Record(obs.Span{ID: s.tr.NewID(), Name: "decision/" + evName(e.kind),
		Cat: obs.CatDecision, Job: e.job, TMin: e.time, Attrs: attrs})
}

// traceChange records a finalized change's exec spans: the root
// reconfiguration span (whose DurSec is exactly the downtime charge, so
// per-job root sums reconcile bit for bit with the job gauges) plus
// plan, per-attempt transform, rollback and backoff children laid out
// along the simulated clock. out is nil for a wall-mode optimistic
// charge — the transform is still in flight, so only its first attempt
// is drawn here and traceLate supplements the rest.
func (s *sim) traceChange(p *pendingChange, ch *change, attempts int, down float64, out *commitOutcome) {
	if !s.tr.Enabled() {
		return
	}
	j := p.j
	aborted := out != nil && out.aborted
	attrs := map[string]any{
		"gpus":     len(p.alloc),
		"config":   p.cfg.String(),
		"attempts": attempts,
		"sim_sec":  ch.simSec,
	}
	if aborted {
		attrs["aborted"] = true
		attrs["moved_bytes_attempted"] = ch.stats.MovedBytes
	} else {
		attrs["moved_bytes"] = ch.stats.MovedBytes
	}
	wallNs := ch.planNs
	if out != nil {
		// The outcome publication (p.out) is the barrier that makes the
		// chain's applyNs writes visible.
		wallNs += ch.applyNs
	}
	s.tr.Record(obs.Span{ID: p.spanID, Name: obs.ReconfigPrefix + s.timeline[p.tlIdx].Kind,
		Cat: obs.CatExec, Job: j.spec.Name, TMin: p.tMin, DurSec: down, WallNs: wallNs, Attrs: attrs})
	s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanPlan,
		Cat: obs.CatExec, Job: j.spec.Name, TMin: p.tMin, WallNs: ch.planNs,
		Attrs: map[string]any{"assignments": ch.stats.Assignments}})
	cursor := p.tMin
	for i := 1; i <= attempts; i++ {
		failed := aborted || i < attempts
		s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanTransform,
			Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor, DurSec: ch.simSec,
			Attrs: attemptAttrs(i, failed)})
		cursor += ch.simSec / 60
		if failed {
			s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanRollback,
				Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor})
		}
		if i < attempts {
			if b := s.opts.Recovery.backoffSec(i); b > 0 {
				s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanBackoff,
					Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor, DurSec: b})
				cursor += b / 60
			}
		}
	}
}

func attemptAttrs(i int, failed bool) map[string]any {
	a := map[string]any{"attempt": i}
	if failed {
		a["failed"] = true
	}
	return a
}

// traceLate supplements a wall-mode change whose outcome landed after
// its optimistic charge: the extra attempts (and their rollbacks and
// backoffs) are drawn so the trace's retry count still matches the
// coordinator's.
func (s *sim) traceLate(p *pendingChange, out *commitOutcome) {
	if !s.tr.Enabled() {
		return
	}
	ch := p.ch
	j := p.j
	cursor := p.tMin + ch.simSec/60
	for i := 2; i <= out.attempts; i++ {
		s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanRollback,
			Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor})
		if b := s.opts.Recovery.backoffSec(i - 1); b > 0 {
			s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanBackoff,
				Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor, DurSec: b})
			cursor += b / 60
		}
		failed := out.aborted || i < out.attempts
		s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanTransform,
			Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor, DurSec: ch.simSec,
			Attrs: attemptAttrs(i, failed)})
		cursor += ch.simSec / 60
	}
	if out.aborted {
		s.tr.Record(obs.Span{ID: s.tr.NewID(), Parent: p.spanID, Name: obs.SpanRollback,
			Cat: obs.CatExec, Job: j.spec.Name, TMin: cursor})
	}
}

// traceSuperseded closes the root span of a decided change that was
// never charged (its job was requeued earlier in the same batch), so
// datapath spans already recorded under it never dangle.
func (s *sim) traceSuperseded(p *pendingChange) {
	if !s.tr.Enabled() {
		return
	}
	s.tr.Record(obs.Span{ID: p.spanID, Name: obs.ReconfigPrefix + s.timeline[p.tlIdx].Kind,
		Cat: obs.CatExec, Job: p.j.spec.Name, TMin: p.tMin,
		Attrs: map[string]any{"superseded": true}})
}

// --- policy views ---

func (s *sim) viewOf(j *simJob) *JobView {
	return &JobView{
		Name:       j.spec.Name,
		Priority:   j.spec.Priority,
		GPUs:       j.spec.GPUs,
		MinGPUs:    j.spec.MinGPUs,
		MaxGPUs:    j.spec.MaxGPUs,
		ArrivalMin: j.spec.ArrivalMin,
		SubmitIdx:  j.idx,
		Alloc:      len(j.alloc),
		Spread:     len(j.alloc.Workers(s.topo)),
	}
}

func (s *sim) view() *ClusterView {
	v := &ClusterView{
		Devices:        s.topo.NumDevices(),
		Workers:        s.topo.NumWorkers(),
		Free:           s.ledger.FreeCount(),
		Healthy:        s.ledger.Healthy(),
		PlacementAware: s.opts.Placement,
	}
	for _, name := range s.queue {
		v.Queued = append(v.Queued, s.viewOf(s.jobs[name]))
	}
	for _, j := range s.running() {
		v.Running = append(v.Running, s.viewOf(j))
	}
	return v
}

// choosePlacement scores up to Options.PlacementCandidates concrete
// device sets growing (or placing) job j to n devices total under the
// configuration the parallelizer picked for that size, and asks the
// Policy to rank them — placement chooses WHICH devices, not the
// (T, P, D), so placement-aware runs stay comparable to count-based
// ones decision for decision. cur is the job's current allocation (nil
// at admission); candidates always contain it, so a grow never moves
// the job off devices it holds. nil means no candidate could be scored
// — the caller falls back to the count-based pick.
func (s *sim) choosePlacement(j *simJob, cfg parallel.Config, n int, cur cluster.Allocation) *PlacementCandidate {
	extra := n - len(cur)
	if extra < 1 {
		return nil
	}
	curPl := perfmodel.Placement{Alloc: cur, Config: j.cfg}
	sets := s.ledger.CandidateSets(extra, s.opts.PlacementCandidates, cur)
	var cands []*PlacementCandidate
	for _, set := range sets {
		full := append(append(cluster.Allocation(nil), cur...), set...)
		ps := s.cache.ScorePlacementFor(j.spec.Name, j.spec.Model, cfg, s.topo, full, curPl, s.opts.Perf)
		if !ps.Feasible {
			continue
		}
		cands = append(cands, &PlacementCandidate{
			Devices:        full,
			Config:         ps.Config,
			Spread:         len(full.Workers(s.topo)),
			SamplesSec:     ps.SamplesSec,
			MigrationSec:   ps.MigrationSec,
			MigrationBytes: ps.MigrationBytes,
			Score:          ps.Score,
		})
	}
	if len(cands) == 0 {
		return nil
	}
	pick := s.policy.RankPlacement(s.view(), s.viewOf(j), cands)
	if pick == nil {
		pick = cands[0]
	}
	return pick
}

// evictCostFor prices exactly the shrink reclaimFor would commit if it
// picked this victim next — shrink by min(surplus, need), down to the
// largest feasible size, under the cheapest feasible reshape — so the
// prediction and the act agree (victims keep their leading devices;
// the shrink truncates the allocation, matching applyChange). It
// returns the netsim-priced cost and the devices that shrink frees; a
// victim with no feasible shrink right now prices as +Inf.
func (s *sim) evictCostFor(r *simJob, floor, need int) (float64, int) {
	give := len(r.alloc) - floor
	if give > need {
		give = need
	}
	n, _, ok := s.bestAtMost(r.spec.Model, len(r.alloc)-give, floor)
	if !ok || n >= len(r.alloc) {
		return math.Inf(1), 0
	}
	cps, err := s.cache.CheapestPlacementFor(r.spec.Name, r.spec.Model, s.topo, r.alloc[:n],
		perfmodel.Placement{Alloc: r.alloc, Config: r.cfg}, s.opts.Perf)
	if err != nil {
		return math.Inf(1), 0
	}
	return cps.MigrationSec, len(r.alloc) - n
}

// shrinkConfig picks the configuration a forced shrink (preemption or
// recovery) of job j onto alloc should take. Count-based runs keep the
// parallelizer's throughput-best pick; placement-aware runs take the
// cheapest feasible reshape instead — a forced change earns the job
// nothing, so minimal state movement is the objective.
func (s *sim) shrinkConfig(j *simJob, est perfmodel.Estimate, alloc cluster.Allocation) parallel.Config {
	if !s.opts.Placement {
		return est.Config
	}
	cps, err := s.cache.CheapestPlacementFor(j.spec.Name, j.spec.Model, s.topo, alloc,
		perfmodel.Placement{Alloc: j.alloc, Config: j.cfg}, s.opts.Perf)
	if err != nil {
		return est.Config
	}
	return cps.Config
}

// bestAtMost returns the largest feasible lease size n in [low, high]
// with its configuration.
func (s *sim) bestAtMost(m *model.Model, high, low int) (int, perfmodel.Estimate, bool) {
	if low < 1 {
		low = 1
	}
	for n := high; n >= low; n-- {
		if est, err := s.cache.Best(m, s.topo, n, s.opts.Perf); err == nil {
			return n, est, true
		}
	}
	return 0, perfmodel.Estimate{}, false
}

// --- event handlers ---

// dispatch routes one popped event to its decision-plane handler. It
// is the single entry point shared by Run's loop and the service event
// loop, so both planes make decisions through identical code.
func (s *sim) dispatch(e event) error {
	switch e.kind {
	case evArrival:
		return s.onArrival(e.job)
	case evComplete:
		return s.onComplete(e.job)
	case evFailure:
		return s.onFailure(e.dev)
	case evDevRecover:
		return s.onDevRecover(e.dev)
	case evSpotNotice:
		return s.onSpotNotice(e.dev, e.factor)
	case evSpotDeadline:
		return s.onSpotDeadline(e.dev)
	case evLinkDegrade:
		return s.onLinkChange(e.worker, e.factor)
	case evLinkRestore:
		return s.onLinkChange(e.worker, 1)
	}
	return nil
}

func (s *sim) onArrival(name string) error {
	j := s.jobs[name]
	j.state = jobQueued
	s.queue = append(s.queue, name)
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvSubmit,
		Note: fmt.Sprintf("wants %d GPUs [%d, %d], %.0f min",
			j.spec.GPUs, j.spec.MinGPUs, j.spec.MaxGPUs, j.spec.DurationMin)})
	if err := s.admitQueued(); err != nil {
		return err
	}
	return s.expandJobs()
}

func (s *sim) onComplete(name string) error {
	j := s.jobs[name]
	rt, init := j.rt, &j.init
	// The end-to-end correctness oracle: reassemble the job's state and
	// compare it bit for bit against the initial tensors. It runs on
	// the job's chain, after every committed change. With a pool, a
	// verification failure surfaces at the next flush/drain — the run
	// still errors out, but the timeline returned alongside that error
	// may already hold this completion event (on-error timelines are
	// provisional; only an error-free Run vouches for them).
	tr, vID, vTMin, resizes := s.tr, s.tr.NewID(), s.now, j.resizes
	if err := s.submit(name, func() error {
		if tr.Enabled() {
			rt.obsScope.Set(obs.TaskCtx{T: tr, Parent: vID, Job: rt.name, TMin: vTMin})
		}
		vStart := time.Now()
		err := rt.verifyState(*init)
		if err == nil {
			j.verified.Store(true)
		}
		if tr.Enabled() {
			attrs := map[string]any{"resizes": resizes}
			if err != nil {
				attrs["err"] = err.Error()
			}
			tr.Record(obs.Span{ID: vID, Name: obs.SpanVerify, Cat: obs.CatExec,
				Job: rt.name, TMin: vTMin, WallNs: time.Since(vStart).Nanoseconds(),
				Attrs: attrs})
		}
		return err
	}); err != nil {
		return err
	}
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvComplete,
		GPUs: 0, Note: fmt.Sprintf("state verified intact after %d resizes", j.resizes)})
	s.ledger.ReleaseAll(name)
	s.cache.DropJob(name)
	j.state = jobDone
	j.doneMin = s.now
	if err := s.admitQueued(); err != nil {
		return err
	}
	if err := s.expandJobs(); err != nil {
		return err
	}
	return s.defragJobs()
}

func (s *sim) onFailure(dev cluster.DeviceID) error {
	return s.deviceDown(dev, fmt.Sprintf("device %d failed on worker %d", dev, s.topo.WorkerOf(dev)))
}

// deviceDown is the shared fail-stop path: mark the device failed and
// recover its owner onto the surviving devices (plus a replacement when
// one is free), or declare the job lost when nothing is left.
func (s *sim) deviceDown(dev cluster.DeviceID, note string) error {
	if s.ledger.Failed(dev) {
		return nil // already dead
	}
	owner := s.ledger.MarkFailed(dev)
	s.record(TimelineEvent{TimeMin: s.now, Job: owner, Kind: EvFailure, Note: note})
	if owner == "" {
		return nil
	}
	j := s.jobs[owner]
	if j.state != jobRunning {
		return nil
	}
	survivors := s.ledger.Allocation(owner) // dev already removed
	j.alloc = append(cluster.Allocation(nil), survivors...)
	full := append(cluster.Allocation(nil), survivors...)
	var repl []cluster.DeviceID
	if got, ok := s.ledger.Pick(1, survivors); ok {
		repl = got
		full = append(full, got...)
	}
	n, est, ok := s.bestAtMost(j.spec.Model, len(full), 1)
	if !ok || n == 0 {
		// No devices left to recover onto: the job is lost.
		s.ledger.ReleaseAll(owner)
		s.cache.DropJob(owner)
		j.state = jobLost
		j.doneMin = s.now
		j.ver++
		s.record(TimelineEvent{TimeMin: s.now, Job: owner, Kind: EvLost,
			Note: "no healthy devices to recover onto"})
		return nil
	}
	alloc := full[:n]
	recNote := fmt.Sprintf("recovered from loss of device %d", dev)
	if len(repl) > 0 && alloc.Contains(repl[0]) {
		recNote += fmt.Sprintf(", replacement device %d", repl[0])
	}
	if err := s.applyChange(j, s.shrinkConfig(j, est, alloc), alloc, []cluster.DeviceID{dev}, EvRecover, recNote); err != nil {
		return err
	}
	// A size-constrained recovery may have released healthy devices;
	// let the queue and the other jobs use them.
	if err := s.admitQueued(); err != nil {
		return err
	}
	return s.expandJobs()
}

// onDevRecover handles a flapping device coming back. The suspicion-
// count failure detector decides whether to trust it: a device that
// already failed SuspicionThreshold times stays quarantined instead of
// being re-leased — which is what stops a flapping device from
// repeatedly eating jobs' reconfiguration budgets.
func (s *sim) onDevRecover(dev cluster.DeviceID) error {
	if !s.ledger.Failed(dev) {
		return nil // never failed, or already recovered
	}
	if th := s.opts.Recovery.SuspicionThreshold; th > 0 && s.ledger.Suspicion(dev) >= th {
		if !s.quarantined[dev] {
			s.quarantined[dev] = true
			s.reg.Add("coord.quarantined_devices", 1)
			s.record(TimelineEvent{TimeMin: s.now, Kind: EvQuarantine,
				Note: fmt.Sprintf("device %d quarantined after %d failures", dev, s.ledger.Suspicion(dev))})
		}
		return nil
	}
	s.ledger.MarkRecovered(dev)
	s.record(TimelineEvent{TimeMin: s.now, Kind: EvDevRecover,
		Note: fmt.Sprintf("device %d back on worker %d", dev, s.topo.WorkerOf(dev))})
	if err := s.admitQueued(); err != nil {
		return err
	}
	return s.expandJobs()
}

// onSpotNotice handles a spot-reclamation notice: the device is marked
// draining (alive, but never re-leased) and its owner — if any — is
// proactively migrated off it inside the window. Unlike a failure, the
// leaving device's state is still readable, so the migration needs no
// degraded source PTC and no storage fallback.
func (s *sim) onSpotNotice(dev cluster.DeviceID, windowMin float64) error {
	if s.ledger.Failed(dev) {
		return nil
	}
	s.ledger.SetDraining(dev, true)
	owner, _ := s.ledger.Owner(dev)
	s.record(TimelineEvent{TimeMin: s.now, Job: owner, Kind: EvSpotNotice,
		Note: fmt.Sprintf("device %d reclaimed in %.0f min", dev, windowMin)})
	if owner == "" {
		return nil
	}
	j := s.jobs[owner]
	if j == nil || j.state != jobRunning {
		return nil
	}
	keep := cluster.Allocation(nil)
	for _, d := range j.alloc {
		if d != dev {
			keep = append(keep, d)
		}
	}
	full := append(cluster.Allocation(nil), keep...)
	if got, ok := s.ledger.Pick(1, keep); ok {
		full = append(full, got...)
	}
	n, est, ok := s.bestAtMost(j.spec.Model, len(full), 1)
	if !ok || n == 0 {
		return nil // nowhere to migrate; the deadline will handle it
	}
	alloc := full[:n]
	note := fmt.Sprintf("migrated off draining device %d", dev)
	return s.applyChange(j, s.shrinkConfig(j, est, alloc), alloc, nil, EvRedeploy, note)
}

// onSpotDeadline fires when the reclamation window closes: a device
// still present is withdrawn — from here on, exactly a fail-stop
// failure for whatever is still placed on it.
func (s *sim) onSpotDeadline(dev cluster.DeviceID) error {
	if s.ledger.Failed(dev) {
		return nil
	}
	return s.deviceDown(dev, fmt.Sprintf("spot reclamation: device %d withdrawn from worker %d",
		dev, s.topo.WorkerOf(dev)))
}

// onLinkChange reprices one worker's NIC: factor < 1 opens a
// degradation window, factor == 1 closes it. Reconfigurations priced
// while the window is open run against the degraded bandwidth (netsim
// reads Topology.WorkerNetBW); the perfmodel's placement estimates
// deliberately stay on nominal bandwidth.
func (s *sim) onLinkChange(worker int, factor float64) error {
	s.topo.SetNetScale(worker, factor)
	kind, note := EvLinkDegrade, fmt.Sprintf("worker %d NIC at %.0f%% bandwidth", worker, factor*100)
	if factor == 1 {
		kind, note = EvLinkRestore, fmt.Sprintf("worker %d NIC restored", worker)
	}
	s.record(TimelineEvent{TimeMin: s.now, Kind: kind, Note: note})
	return nil
}

// --- scheduling engine (mechanism; choices delegated to the Policy) ---

// admitQueued places queued jobs in the Policy's order. When free
// capacity is short it arbitrates: the Policy picks running victims to
// shrink until the candidate's minimum acceptable lease fits. Whether
// an unadmittable job blocks those behind it (head-of-line) is also
// the Policy's call, via NextQueued.
func (s *sim) admitQueued() error {
	attempted := map[string]bool{}
	reclaimTried := map[string]bool{}
	for len(s.queue) > 0 {
		name := s.policy.NextQueued(s.view(), attempted)
		if name == "" {
			return nil
		}
		j := s.jobs[name]
		if j == nil || j.state != jobQueued {
			return fmt.Errorf("coordinator: policy %s picked non-queued job %q", s.policy.Name(), name)
		}
		low, high := s.policy.AdmitBounds(s.view(), s.viewOf(j))
		if low < 1 || high < low {
			return fmt.Errorf("coordinator: policy %s: bad admit bounds [%d, %d] for %s",
				s.policy.Name(), low, high, name)
		}
		if low > s.ledger.Healthy() {
			j.state = jobRejected
			s.dequeue(name)
			s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvReject,
				Note: fmt.Sprintf("min %d GPUs exceeds %d healthy devices", low, s.ledger.Healthy())})
			continue
		}
		if free := s.ledger.FreeCount(); free < high {
			high = free
		}
		n, est, ok := s.bestAtMost(j.spec.Model, high, low)
		if !ok {
			if !reclaimTried[name] {
				reclaimTried[name] = true
				freed, err := s.reclaimFor(j, low)
				if err != nil {
					return err
				}
				if freed {
					continue // retry with the reclaimed capacity
				}
			}
			attempted[name] = true
			continue
		}
		cfg := est.Config
		var devs []cluster.DeviceID
		if s.opts.Placement {
			if pc := s.choosePlacement(j, cfg, n, nil); pc != nil {
				devs = pc.Devices
			}
		}
		if devs == nil {
			picked, got := s.ledger.Pick(n, nil)
			if !got {
				return fmt.Errorf("coordinator: pick(%d) failed with %d free", n, s.ledger.FreeCount())
			}
			devs = picked
		}
		if err := s.ledger.Lease(name, devs...); err != nil {
			return err
		}
		j.alloc = append(cluster.Allocation(nil), devs...)
		j.cfg = cfg
		j.state = jobRunning
		j.lastStartMin = s.now
		j.ver++
		if j.deployed {
			// Re-admission of a requeued job: redeploy its checkpointed
			// state onto the new placement and resume the remaining
			// duration. The restore is priced like any other change, so
			// the completion push waits for flush.
			rem := j.spec.DurationMin - j.servedMin
			if rem < 0 {
				rem = 0
			}
			j.complAt = s.now + rem
			s.plans++
			s.reg.Add("coord.plans", 1)
			p := &pendingChange{j: j, cfg: cfg, alloc: j.alloc,
				seq: s.reserveSeq(), ver: j.ver, tlIdx: len(s.timeline),
				spanID: s.tr.NewID(), tMin: s.now}
			s.dequeue(name)
			s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvAdmit,
				GPUs: n, Config: cfg.String(),
				Note: fmt.Sprintf("re-admitted from checkpoint, %.1f min remaining", rem)})
			s.pending = append(s.pending, p)
			rt, tr := j.rt, s.tr
			if err := s.submit(name, func() error {
				if tr.Enabled() {
					rt.obsScope.Set(obs.TaskCtx{T: tr, Parent: p.spanID, Job: rt.name, TMin: p.tMin})
				}
				ch, err := rt.planRestore(p.cfg, p.alloc)
				if err != nil {
					return err
				}
				p.ch = ch
				out := commitOutcome{attempts: 1, err: rt.commitRestore(ch)}
				p.out.Store(&out)
				return out.err
			}); err != nil {
				return err
			}
			continue
		}
		j.deployed = true
		j.admitMin = s.now
		j.complAt = s.now + j.spec.DurationMin
		s.push(event{time: j.complAt, kind: evComplete, job: name, ver: j.ver})
		s.dequeue(name)
		s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvAdmit,
			GPUs: n, Config: cfg.String()})
		// First placement: materialize the initial tensors, load them
		// into the Tensor Stores and persist the baseline checkpoint —
		// all on the job's chain.
		rt, spec := j.rt, j.spec
		alloc := j.alloc
		tr, depID, depTMin := s.tr, s.tr.NewID(), s.now
		if err := s.submit(name, func() error {
			if tr.Enabled() {
				rt.obsScope.Set(obs.TaskCtx{T: tr, Parent: depID, Job: rt.name, TMin: depTMin})
			}
			if j.init == nil {
				j.init = initState(spec.Model, spec.Seed)
			}
			depStart := time.Now()
			err := rt.deploy(cfg, alloc, j.init)
			if tr.Enabled() {
				attrs := map[string]any{"gpus": len(alloc), "config": cfg.String()}
				if err != nil {
					attrs["err"] = err.Error()
				}
				tr.Record(obs.Span{ID: depID, Name: obs.SpanDeploy, Cat: obs.CatExec,
					Job: rt.name, TMin: depTMin, WallNs: time.Since(depStart).Nanoseconds(),
					Attrs: attrs})
			}
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

// dequeue removes name from the admission queue, preserving order.
func (s *sim) dequeue(name string) {
	for i, q := range s.queue {
		if q == name {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// reclaimFor shrinks running jobs — the Policy picks the victims —
// until at least target devices are free for j. It reports whether
// enough capacity was freed. Each shrink is a real reconfiguration of
// the victim job.
func (s *sim) reclaimFor(j *simJob, target int) (bool, error) {
	// Don't shrink anyone unless the target is actually reachable:
	// partial preemption would only be undone by the next expansion.
	// Each victim counts only what shrinking to its smallest *feasible*
	// size at or above the policy's floor would free.
	reqView := s.viewOf(j)
	achievable := s.ledger.FreeCount()
	for _, r := range s.running() {
		floor := s.policy.PreemptFloor(reqView, s.viewOf(r))
		if floor >= len(r.alloc) {
			continue
		}
		if n, ok := s.minFeasible(r.spec.Model, floor, len(r.alloc)); ok {
			achievable += len(r.alloc) - n
		}
	}
	if achievable < target {
		return false, nil
	}
	excluded := map[string]bool{} // victims with no feasible shrink left
	for s.ledger.FreeCount() < target {
		view := s.view()
		var cands []*JobView
		floors := map[string]int{}
		for _, r := range s.running() {
			if excluded[r.spec.Name] {
				continue
			}
			rv := s.viewOf(r)
			floor := s.policy.PreemptFloor(reqView, rv)
			if sp := len(r.alloc) - floor; sp > 0 {
				rv.Surplus = sp
				if s.opts.Placement {
					rv.EvictCostSec, rv.EvictFreed = s.evictCostFor(r, floor, target-s.ledger.FreeCount())
				}
				floors[r.spec.Name] = floor
				cands = append(cands, rv)
			}
		}
		pick := s.policy.PickVictim(view, reqView, cands)
		if pick == nil {
			return false, nil
		}
		victim := s.jobs[pick.Name]
		if victim == nil || victim.state != jobRunning || excluded[pick.Name] {
			return false, fmt.Errorf("coordinator: policy %s picked invalid victim %q", s.policy.Name(), pick.Name)
		}
		need := target - s.ledger.FreeCount()
		give := len(victim.alloc) - floors[pick.Name]
		if give > need {
			give = need
		}
		cur := len(victim.alloc)
		n, est, ok := s.bestAtMost(victim.spec.Model, cur-give, floors[pick.Name])
		if !ok || n >= cur {
			excluded[pick.Name] = true
			continue
		}
		alloc := append(cluster.Allocation(nil), victim.alloc[:n]...)
		note := fmt.Sprintf("preempted for %s", j.spec.Name)
		s.preemptions++
		s.reg.Add("coord.preemptions", 1)
		if err := s.applyChange(victim, s.shrinkConfig(victim, est, alloc), alloc, nil, EvScaleIn, note); err != nil {
			return false, err
		}
	}
	return true, nil
}

// minFeasible returns the smallest feasible lease size in [low, high].
func (s *sim) minFeasible(m *model.Model, low, high int) (int, bool) {
	if low < 1 {
		low = 1
	}
	for n := low; n <= high; n++ {
		if _, err := s.cache.Best(m, s.topo, n, s.opts.Perf); err == nil {
			return n, true
		}
	}
	return 0, false
}

// expandJobs grows elastic running jobs into free capacity — the
// Policy orders the candidates: first back towards their requested
// size, then — only when the admission queue is empty — up to their
// elastic maximum.
func (s *sim) expandJobs() error {
	stuck := map[string]bool{} // jobs with no feasible larger lease right now
	for {
		free := s.ledger.FreeCount()
		if free == 0 {
			return nil
		}
		limitOf := func(r *simJob) int {
			if len(s.queue) == 0 {
				return r.spec.MaxGPUs
			}
			return r.spec.GPUs
		}
		var cands []*JobView
		for _, r := range s.running() {
			if stuck[r.spec.Name] || len(r.alloc) >= limitOf(r) {
				continue
			}
			cands = append(cands, s.viewOf(r))
		}
		pickView := s.policy.PickExpand(s.view(), cands)
		if pickView == nil {
			return nil
		}
		pick := s.jobs[pickView.Name]
		if pick == nil || pick.state != jobRunning || stuck[pickView.Name] {
			return fmt.Errorf("coordinator: policy %s picked invalid expansion %q", s.policy.Name(), pickView.Name)
		}
		cur := len(pick.alloc)
		high := cur + free
		if limit := limitOf(pick); high > limit {
			high = limit
		}
		n, est, ok := s.bestAtMost(pick.spec.Model, high, cur+1)
		if !ok || n <= cur {
			stuck[pick.spec.Name] = true
			continue
		}
		cfg := est.Config
		var alloc cluster.Allocation
		if s.opts.Placement {
			if pc := s.choosePlacement(pick, cfg, n, pick.alloc); pc != nil {
				alloc = pc.Devices
			}
		}
		if alloc == nil {
			extra, got := s.ledger.Pick(n-cur, pick.alloc)
			if !got {
				return nil
			}
			alloc = append(append(cluster.Allocation(nil), pick.alloc...), extra...)
		}
		if err := s.applyChange(pick, cfg, alloc, nil, EvScaleOut, ""); err != nil {
			return err
		}
	}
}

// defragJobs redeploys fragmented jobs onto fewer workers when a
// compact placement exists and its netsim-priced cost stays under the
// configured ceiling — the paper's redeployment scenario (§6.3) driven
// by the cluster, not the user. The cost gate needs the plan before
// the decision, so defrag prices synchronously (after the job's chain
// drains) and fans out only the commit.
func (s *sim) defragJobs() error {
	if s.opts.DefragMaxSec < 0 {
		return nil
	}
	for _, j := range s.running() {
		cur := j.alloc
		curWorkers := len(cur.Workers(s.topo))
		// Cheap exact prune: the minimal achievable worker spread comes
		// straight from the ledger's per-worker summaries, so jobs no
		// compaction can improve skip the O(free-pool) candidate
		// materialization entirely — at datacenter scale that is nearly
		// every job on every event.
		if s.ledger.MinLeaseSpread(j.spec.Name, len(cur)) >= curWorkers {
			continue
		}
		candidate, ok := s.pickCompact(j.spec.Name, len(cur))
		if !ok {
			continue
		}
		if len(cluster.Allocation(candidate).Workers(s.topo)) >= curWorkers {
			continue
		}
		// In placement mode the worker count alone does not justify a
		// move: compaction must win on the same migration-amortized
		// score that placed the job — otherwise defrag would undo a
		// spread the policy deliberately chose and pay back the
		// migration that choice avoided.
		if s.opts.Placement {
			curPl := perfmodel.Placement{Alloc: cur, Config: j.cfg}
			have := s.cache.ScorePlacementFor(j.spec.Name, j.spec.Model, j.cfg, s.topo, cur, curPl, s.opts.Perf)
			want := s.cache.ScorePlacementFor(j.spec.Name, j.spec.Model, j.cfg, s.topo, candidate, curPl, s.opts.Perf)
			if !want.Feasible || !have.Feasible || want.Score <= have.Score {
				continue
			}
		}
		// Same device count, so the job keeps its current (T, P, D);
		// price the move before committing it.
		if err := s.drainJob(j.spec.Name); err != nil {
			return err
		}
		// The drained chain may have just aborted a commit for this job:
		// the runtime is rolled back to its checkpoint and the next
		// flush requeues the job, so compacting it now would plan
		// against state the decision plane no longer describes.
		if s.abortPending(j) {
			continue
		}
		ch, err := j.rt.planChange(j.cfg, candidate, nil)
		if err != nil {
			return err
		}
		s.plans++
		s.reg.Add("coord.plans", 1)
		if ch.simSec > s.opts.DefragMaxSec {
			continue
		}
		note := fmt.Sprintf("defragmented %d -> %d workers", curWorkers,
			len(cluster.Allocation(candidate).Workers(s.topo)))
		if err := s.applyPlanned(j, ch, EvRedeploy, note); err != nil {
			return err
		}
	}
	return nil
}

// abortPending reports whether j has a decided change whose commit
// already aborted: the job will be requeued at the next flush, so no
// further change should be decided on top of it. Only meaningful after
// the job's chain has drained (otherwise the outcome may not have
// landed yet, and reading it would vary with the worker count).
func (s *sim) abortPending(j *simJob) bool {
	for _, p := range s.pending {
		if p.j == j {
			if out := p.out.Load(); out != nil && out.aborted {
				return true
			}
		}
	}
	for _, p := range s.inflight {
		if p.j == j {
			if out := p.out.Load(); out != nil && out.aborted {
				return true
			}
		}
	}
	return false
}

// pickCompact selects n devices for job as if its own lease were free,
// yielding the most compact placement the cluster currently allows.
func (s *sim) pickCompact(job string, n int) ([]cluster.DeviceID, bool) {
	own := s.ledger.Allocation(job)
	avail := append(append(cluster.Allocation(nil), own...), s.ledger.Free()...)
	return packCompact(s.topo, avail, n, nil)
}

// applyChange decides one allocation change of a running job: ledger
// mutations and bookkeeping happen immediately on the event loop; the
// plan and the State Transformer execute on the job's task chain. In
// ModeWall the plan is priced synchronously (its netsim cost schedules
// the job's completion) and only the transform fans out.
func (s *sim) applyChange(j *simJob, cfg parallel.Config, alloc cluster.Allocation,
	failed []cluster.DeviceID, kind, note string) error {
	s.plans++
	s.reg.Add("coord.plans", 1)
	p, err := s.decideChange(j, cfg, alloc, kind, note)
	if err != nil {
		return err
	}
	p.failed = failed
	rt := j.rt
	if s.opts.Mode == ModeWall && s.pool != nil {
		if err := s.drainJob(j.spec.Name); err != nil {
			return err
		}
		ch, err := rt.planChange(p.cfg, p.alloc, p.failed)
		if err != nil {
			return err
		}
		p.ch = ch
		s.pool.submit(j.spec.Name, func() error { return s.runCommit(rt, p, ch) })
		return nil
	}
	return s.submit(j.spec.Name, func() error {
		ch, err := rt.planChange(p.cfg, p.alloc, p.failed)
		if err != nil {
			return err
		}
		p.ch = ch
		return s.runCommit(rt, p, ch)
	})
}

// runCommit executes one decided change's transactional commit on the
// job's chain and posts the outcome for flush. An aborted outcome is
// not a chain error — graceful degradation happens on the event loop.
// The chaos attempt key derives from the change's reserved sequence
// number, decision-plane state that is identical at any worker count.
func (s *sim) runCommit(rt *jobRuntime, p *pendingChange, ch *change) error {
	if s.tr.Enabled() {
		rt.obsScope.Set(obs.TaskCtx{T: s.tr, Parent: p.spanID, Job: rt.name, TMin: p.tMin})
	}
	out := rt.commitRetry(ch, s.inj, s.opts.Recovery, uint64(p.seq)<<8)
	p.out.Store(&out)
	if out.err != nil && !out.aborted {
		return out.err
	}
	return nil
}

// applyPlanned commits an already-priced change (the defrag path).
func (s *sim) applyPlanned(j *simJob, ch *change, kind, note string) error {
	p, err := s.decideChange(j, ch.cfg, ch.alloc, kind, note)
	if err != nil {
		return err
	}
	p.ch = ch
	rt := j.rt
	return s.submit(j.spec.Name, func() error { return s.runCommit(rt, p, ch) })
}

// decideChange books one allocation change at decision time: it moves
// the lease (new devices in, vacated ones out), updates the
// decision-plane mirrors, reserves the completion event's sequence
// number and appends the timeline placeholder flush will finalize.
func (s *sim) decideChange(j *simJob, cfg parallel.Config, alloc cluster.Allocation, kind, note string) (*pendingChange, error) {
	name := j.spec.Name
	held := map[cluster.DeviceID]bool{}
	for _, d := range s.ledger.Allocation(name) {
		held[d] = true
	}
	var fresh []cluster.DeviceID
	inNew := map[cluster.DeviceID]bool{}
	for _, d := range alloc {
		inNew[d] = true
		if !held[d] {
			fresh = append(fresh, d)
		}
	}
	var vacate []cluster.DeviceID
	for d := range held {
		if !inNew[d] {
			vacate = append(vacate, d)
		}
	}
	sort.Slice(vacate, func(i, j int) bool { return vacate[i] < vacate[j] })
	if len(fresh) > 0 {
		if err := s.ledger.Lease(name, fresh...); err != nil {
			return nil, err
		}
	}
	if len(vacate) > 0 {
		if err := s.ledger.Release(name, vacate...); err != nil {
			return nil, err
		}
	}
	j.alloc = append(cluster.Allocation(nil), alloc...)
	j.cfg = cfg
	j.resizes++
	j.ver++
	p := &pendingChange{
		j:      j,
		cfg:    cfg,
		alloc:  j.alloc,
		seq:    s.reserveSeq(),
		ver:    j.ver,
		tlIdx:  len(s.timeline),
		spanID: s.tr.NewID(),
		tMin:   s.now,
	}
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: kind,
		GPUs: len(alloc), Config: cfg.String(), Note: note})
	s.pending = append(s.pending, p)
	return p, nil
}

// checkInvariants asserts, after every event, that the ledger is
// consistent and that each running job's decided allocation matches
// its lease exactly. In ModeSim — where flush has just joined every
// chain — it additionally checks that the runtime caught up with the
// decision plane and that each PTC is valid.
func (s *sim) checkInvariants() error {
	s.checks++
	if err := s.ledger.Validate(); err != nil {
		return err
	}
	for _, j := range s.running() {
		lease := s.ledger.Allocation(j.spec.Name)
		if len(lease) != len(j.alloc) {
			return fmt.Errorf("coordinator: %s lease has %d devices, runtime %d",
				j.spec.Name, len(lease), len(j.alloc))
		}
		onLease := map[cluster.DeviceID]bool{}
		for _, d := range lease {
			onLease[d] = true
		}
		for _, d := range j.alloc {
			if !onLease[d] {
				return fmt.Errorf("coordinator: %s runtime uses device %d outside its lease",
					j.spec.Name, d)
			}
		}
		if s.opts.Mode == ModeSim && j.rt.ptc != nil && s.auditDue() {
			if err := auditRuntime(j); err != nil {
				return err
			}
		}
	}
	return nil
}

// auditDue reports whether the current event is one of the
// AuditStride-th events that run the full per-job runtime audit.
func (s *sim) auditDue() bool {
	return s.opts.AuditStride <= 1 || s.eventIdx%s.opts.AuditStride == 0
}

// auditRuntime asserts that a job's execution plane caught up with the
// decision plane exactly — same devices, not just the same count — and
// that its PTC is valid. It may only run while the job's chain is
// idle: after a ModeSim flush, or after the terminal drain.
func auditRuntime(j *simJob) error {
	if len(j.rt.alloc) != len(j.alloc) {
		return fmt.Errorf("coordinator: %s runtime alloc has %d devices, decided %d",
			j.spec.Name, len(j.rt.alloc), len(j.alloc))
	}
	decided := map[cluster.DeviceID]bool{}
	for _, d := range j.alloc {
		decided[d] = true
	}
	for _, d := range j.rt.alloc {
		if !decided[d] {
			return fmt.Errorf("coordinator: %s runtime holds device %d outside its decided allocation",
				j.spec.Name, d)
		}
	}
	if err := j.rt.ptc.Validate(); err != nil {
		return fmt.Errorf("coordinator: %s: %w", j.spec.Name, err)
	}
	return nil
}

// auditAll is the terminal sweep after the final drain: every job that
// ever deployed must have its runtime consistent with its last decided
// placement — ModeWall skips per-event runtime audits (chains are in
// flight), so this is where a placement divergence would surface.
func (s *sim) auditAll() error {
	for _, name := range s.order {
		j := s.jobs[name]
		if j.rt.ptc == nil || (j.state != jobRunning && j.state != jobDone) {
			// Never deployed, runtime intentionally abandoned (lost), or
			// parked by a requeue — a requeued job's runtime sits at its
			// checkpointed pre-abort placement with no decided allocation
			// to audit against.
			continue
		}
		if err := auditRuntime(j); err != nil {
			return err
		}
	}
	return nil
}

func (s *sim) result(start time.Time) Result {
	res := Result{
		Timeline:         s.timeline,
		Policy:           s.policy.Name(),
		MakespanMin:      s.now,
		ReconfigSecTotal: s.reconfigSec,
		Preemptions:      s.preemptions,
		PlansValidated:   s.plans,
		InvariantChecks:  s.checks,
		WallNs:           time.Since(start).Nanoseconds(),

		Retries:            s.retries,
		Requeues:           s.requeues,
		QuarantinedDevices: len(s.quarantined),
		RetryBytes:         s.retryBytes,
		RecoverySec:        s.recoverySec,
		DecisionNs:         s.decisionNs,
	}
	if s.now > 0 {
		res.MeanUtilization = s.utilIntegral / (float64(s.topo.NumDevices()) * s.now)
	}
	if s.reg != nil {
		s.reg.Gauge("coord.makespan_min").Set(res.MakespanMin)
		s.reg.Gauge("coord.mean_utilization").Set(res.MeanUtilization)
	}
	for _, name := range s.order {
		j := s.jobs[name]
		res.MovedBytesTotal += j.movedBytes
		res.Jobs = append(res.Jobs, JobSummary{
			Name:        name,
			Model:       j.spec.Model.Name,
			GPUs:        j.spec.GPUs,
			ArrivalMin:  j.spec.ArrivalMin,
			AdmitMin:    j.admitMin,
			DoneMin:     j.doneMin,
			Resizes:     j.resizes,
			ReconfigSec: j.reconfigSec,
			MovedBytes:  j.movedBytes,
			Completed:   j.state == jobDone,
		})
	}
	return res
}
