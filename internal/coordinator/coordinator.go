// Package coordinator is a multi-job elastic cluster control plane for
// Tenplex jobs sharing one cluster.Topology — the cluster-side half of
// the paper's scenario, where a scheduler reallocates GPUs among many
// competing DL jobs and each job reconfigures its PTC in response
// (§2, §5.4).
//
// The coordinator keeps a device Ledger that leases and reclaims GPUs
// with no double-allocation, admits jobs from a Philly-derived arrival
// trace through a FIFO queue, picks each job's (T, P, D) for its
// current lease with a memoized perfmodel search, and prices every
// reconfiguration with netsim before committing it. A deterministic
// event loop handles job arrival and completion, elastic scale-up/down
// arbitration between jobs, defragmenting redeployments onto fewer
// workers, and fail-stop device failures. Every allocation change runs
// through the affected job's real state-management path: core plan
// generation and the distributed State Transformer over per-device
// Tensor Stores.
package coordinator

import (
	"container/heap"
	"fmt"
	"sort"

	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/perfmodel"
	"tenplex/internal/sched"
	"tenplex/internal/tensor"
)

// JobSpec describes one job submitted to the coordinator.
type JobSpec struct {
	// Name identifies the job; must be unique within a run.
	Name string
	// Model is the job's state catalog. Reduced-scale catalogs (e.g.
	// model.GPTCustom) keep simulations cheap while still moving real
	// bytes through the Tensor Stores.
	Model *model.Model
	// ArrivalMin is the submission time in minutes.
	ArrivalMin float64
	// DurationMin is the service time once admitted.
	DurationMin float64
	// GPUs is the requested lease size; MinGPUs/MaxGPUs bound elastic
	// resizing (zero values default to GPUs, i.e. a rigid job).
	GPUs             int
	MinGPUs, MaxGPUs int
	// Seed drives the job's deterministic initial tensors.
	Seed int64
}

// SpecsFromArrivals converts a sched multi-job arrival trace into
// coordinator job specs, assigning each job the model pick(i) returns.
func SpecsFromArrivals(arrivals []sched.JobArrival, pick func(i int) *model.Model) []JobSpec {
	out := make([]JobSpec, 0, len(arrivals))
	for i, a := range arrivals {
		out = append(out, JobSpec{
			Name:        a.Name,
			Model:       pick(i),
			ArrivalMin:  a.ArrivalMin,
			DurationMin: a.DurationMin,
			GPUs:        a.GPUs,
			MinGPUs:     a.MinGPUs,
			MaxGPUs:     a.MaxGPUs,
			Seed:        int64(i)*1009 + 1,
		})
	}
	return out
}

// FailureSpec injects a fail-stop device failure at a point in time.
type FailureSpec struct {
	TimeMin float64
	Device  cluster.DeviceID
}

// Options tunes a coordinator run.
type Options struct {
	// Perf is the cost model for placement decisions; the zero value
	// uses a reduced-scale default (no memory feasibility check, batch
	// 64) suited to the materialized mini models simulations run.
	Perf perfmodel.Params
	// DefragMaxSec is the netsim-priced cost ceiling for voluntary
	// defragmenting redeployments: a compaction whose predicted
	// reconfiguration time exceeds it is not committed. Zero means the
	// default (30 s); negative disables defragmentation.
	DefragMaxSec float64
}

// DefaultPerf returns the placement cost model used when Options.Perf
// is zero.
func DefaultPerf() perfmodel.Params {
	p := perfmodel.DefaultParams()
	p.GlobalBatch = 64
	p.DeviceMemGB = 0 // reduced-scale catalogs: skip the memory check
	return p
}

// Timeline event kinds.
const (
	EvSubmit   = "submit"
	EvAdmit    = "admit"
	EvReject   = "reject"
	EvScaleOut = "scale-out"
	EvScaleIn  = "scale-in"
	EvRedeploy = "redeploy"
	EvFailure  = "device-failure"
	EvRecover  = "recover"
	EvLost     = "lost"
	EvComplete = "complete"
)

// TimelineEvent is one entry of the per-job cluster timeline.
type TimelineEvent struct {
	TimeMin float64
	Job     string
	Kind    string
	// GPUs is the job's lease size after the event.
	GPUs int
	// Config is the job's (T, P, D) after the event, when placed.
	Config string
	// SimSec is the netsim-priced reconfiguration time charged as
	// downtime for this event.
	SimSec float64
	// MovedBytes crossed a device boundary during the change.
	MovedBytes int64
	Note       string
}

func (e TimelineEvent) String() string {
	s := fmt.Sprintf("t=%7.1f min  %-8s %-14s %2d GPUs", e.TimeMin, e.Job, e.Kind, e.GPUs)
	if e.Config != "" {
		s += " as " + e.Config
	}
	if e.SimSec > 0 {
		s += fmt.Sprintf(", %.3fs reconfig", e.SimSec)
	}
	if e.Note != "" {
		s += "  (" + e.Note + ")"
	}
	return s
}

// JobSummary aggregates one job's run.
type JobSummary struct {
	Name        string
	Model       string
	GPUs        int // requested
	ArrivalMin  float64
	AdmitMin    float64
	DoneMin     float64
	Resizes     int
	ReconfigSec float64
	MovedBytes  int64
	Completed   bool
}

// Result is the outcome of a coordinator simulation.
type Result struct {
	Timeline []TimelineEvent
	Jobs     []JobSummary
	// MakespanMin is the time of the last event.
	MakespanMin float64
	// ReconfigSecTotal is the aggregate netsim-priced reconfiguration
	// time across all jobs.
	ReconfigSecTotal float64
	// MeanUtilization is leased device-time over total device-time.
	MeanUtilization float64
	// PlansValidated counts reconfiguration plans generated and
	// validated during the run (every resize, redeploy and recovery).
	PlansValidated int
	// InvariantChecks counts full ledger+PTC invariant sweeps (one per
	// processed event).
	InvariantChecks int
}

// Render formats the timeline and summary as text.
func (r Result) Render() string {
	s := ""
	for _, e := range r.Timeline {
		s += e.String() + "\n"
	}
	s += fmt.Sprintf("makespan %.1f min, mean utilization %.2f, aggregate reconfig %.3f s, %d plans validated\n",
		r.MakespanMin, r.MeanUtilization, r.ReconfigSecTotal, r.PlansValidated)
	return s
}

// --- event queue ---

type evKind int

const (
	evArrival evKind = iota
	evFailure
	evComplete
)

type event struct {
	time float64
	seq  int
	kind evKind
	job  string
	dev  cluster.DeviceID
	ver  int // completion version; stale versions are skipped
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// --- simulation state ---

type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobRejected
	jobLost
)

type simJob struct {
	spec JobSpec
	rt   *jobRuntime
	init map[core.TensorID]*tensor.Tensor

	state       jobState
	admitMin    float64
	doneMin     float64
	complAt     float64
	ver         int
	resizes     int
	reconfigSec float64
	movedBytes  int64
}

type sim struct {
	topo   *cluster.Topology
	opts   Options
	ledger *Ledger
	cache  *perfmodel.Cache

	jobs  map[string]*simJob
	order []string // submission order
	queue []string // admission FIFO

	evq eventHeap
	seq int
	now float64

	timeline     []TimelineEvent
	plans        int
	checks       int
	reconfigSec  float64
	utilIntegral float64 // leased device-minutes
}

// Run executes a deterministic coordinator simulation: the jobs arrive,
// compete for the topology's devices, resize elastically, survive the
// injected failures, and complete. It returns the per-job timeline and
// aggregate metrics, or the first invariant or state-management error.
func Run(topo *cluster.Topology, specs []JobSpec, failures []FailureSpec, opts Options) (Result, error) {
	if topo == nil || topo.NumDevices() == 0 {
		return Result{}, fmt.Errorf("coordinator: run needs a topology")
	}
	if opts.Perf.GlobalBatch == 0 {
		opts.Perf = DefaultPerf()
	}
	if opts.DefragMaxSec == 0 {
		opts.DefragMaxSec = 30
	}
	s := &sim{
		topo:   topo,
		opts:   opts,
		ledger: NewLedger(topo),
		cache:  perfmodel.NewCache(),
		jobs:   map[string]*simJob{},
	}
	for i := range specs {
		spec := specs[i]
		if err := normalizeSpec(&spec); err != nil {
			return Result{}, err
		}
		if _, dup := s.jobs[spec.Name]; dup {
			return Result{}, fmt.Errorf("coordinator: duplicate job name %q", spec.Name)
		}
		// The initial tensors are materialized lazily at admission, so
		// queued and rejected jobs cost no state memory.
		j := &simJob{
			spec: spec,
			rt:   newJobRuntime(spec.Name, spec.Model, topo),
		}
		s.jobs[spec.Name] = j
		s.order = append(s.order, spec.Name)
		s.push(event{time: spec.ArrivalMin, kind: evArrival, job: spec.Name})
	}
	for _, f := range failures {
		if int(f.Device) < 0 || int(f.Device) >= topo.NumDevices() {
			return Result{}, fmt.Errorf("coordinator: failure of unknown device %d", f.Device)
		}
		s.push(event{time: f.TimeMin, kind: evFailure, dev: f.Device})
	}

	for s.evq.Len() > 0 {
		e := heap.Pop(&s.evq).(event)
		if e.kind == evComplete {
			j := s.jobs[e.job]
			if j.state != jobRunning || j.ver != e.ver {
				continue // superseded by a resize or a failure
			}
		}
		s.advance(e.time)
		var err error
		switch e.kind {
		case evArrival:
			err = s.onArrival(e.job)
		case evComplete:
			err = s.onComplete(e.job)
		case evFailure:
			err = s.onFailure(e.dev)
		}
		if err != nil {
			return s.result(), err
		}
		if err := s.checkInvariants(); err != nil {
			return s.result(), err
		}
	}
	// Anything still queued could never be placed on this cluster.
	for _, name := range s.queue {
		j := s.jobs[name]
		j.state = jobRejected
		s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvReject,
			Note: "never admitted: insufficient capacity"})
	}
	return s.result(), nil
}

func normalizeSpec(spec *JobSpec) error {
	if spec.Name == "" || spec.Model == nil {
		return fmt.Errorf("coordinator: job spec needs Name and Model")
	}
	if spec.GPUs < 1 || spec.DurationMin <= 0 || spec.ArrivalMin < 0 {
		return fmt.Errorf("coordinator: job %s: bad GPUs/duration/arrival", spec.Name)
	}
	if spec.MinGPUs == 0 {
		spec.MinGPUs = spec.GPUs
	}
	if spec.MaxGPUs == 0 {
		spec.MaxGPUs = spec.GPUs
	}
	if spec.MinGPUs < 1 || spec.MinGPUs > spec.GPUs || spec.MaxGPUs < spec.GPUs {
		return fmt.Errorf("coordinator: job %s: bounds [%d, %d] around %d",
			spec.Name, spec.MinGPUs, spec.MaxGPUs, spec.GPUs)
	}
	return nil
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.evq, e)
}

// advance moves the clock to t, integrating leased device-time for the
// utilization metric.
func (s *sim) advance(t float64) {
	if t < s.now {
		t = s.now // reconfiguration downtime may push completions past later events
	}
	s.utilIntegral += float64(s.ledger.LeasedCount()) * (t - s.now)
	s.now = t
}

func (s *sim) record(e TimelineEvent) {
	s.timeline = append(s.timeline, e)
}

// running returns the running jobs in submission order.
func (s *sim) running() []*simJob {
	var out []*simJob
	for _, name := range s.order {
		if j := s.jobs[name]; j.state == jobRunning {
			out = append(out, j)
		}
	}
	return out
}

// bestAtMost returns the largest feasible lease size n in [low, high]
// with its configuration.
func (s *sim) bestAtMost(m *model.Model, high, low int) (int, perfmodel.Estimate, bool) {
	if low < 1 {
		low = 1
	}
	for n := high; n >= low; n-- {
		if est, err := s.cache.Best(m, s.topo, n, s.opts.Perf); err == nil {
			return n, est, true
		}
	}
	return 0, perfmodel.Estimate{}, false
}

// --- event handlers ---

func (s *sim) onArrival(name string) error {
	j := s.jobs[name]
	j.state = jobQueued
	s.queue = append(s.queue, name)
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvSubmit,
		Note: fmt.Sprintf("wants %d GPUs [%d, %d], %.0f min",
			j.spec.GPUs, j.spec.MinGPUs, j.spec.MaxGPUs, j.spec.DurationMin)})
	if err := s.admitQueued(); err != nil {
		return err
	}
	return s.expandJobs()
}

func (s *sim) onComplete(name string) error {
	j := s.jobs[name]
	if err := j.rt.verifyState(j.init); err != nil {
		return err
	}
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvComplete,
		GPUs: 0, Note: fmt.Sprintf("state verified intact after %d resizes", j.resizes)})
	s.ledger.ReleaseAll(name)
	j.state = jobDone
	j.doneMin = s.now
	if err := s.admitQueued(); err != nil {
		return err
	}
	if err := s.expandJobs(); err != nil {
		return err
	}
	return s.defragJobs()
}

func (s *sim) onFailure(dev cluster.DeviceID) error {
	if s.ledger.Failed(dev) {
		return nil // already dead
	}
	owner := s.ledger.MarkFailed(dev)
	s.record(TimelineEvent{TimeMin: s.now, Job: owner, Kind: EvFailure,
		Note: fmt.Sprintf("device %d failed on worker %d", dev, s.topo.WorkerOf(dev))})
	if owner == "" {
		return nil
	}
	j := s.jobs[owner]
	if j.state != jobRunning {
		return nil
	}
	survivors := s.ledger.Allocation(owner) // dev already removed
	full := append(cluster.Allocation(nil), survivors...)
	var repl []cluster.DeviceID
	if got, ok := s.ledger.Pick(1, survivors); ok {
		repl = got
		full = append(full, got...)
	}
	n, est, ok := s.bestAtMost(j.spec.Model, len(full), 1)
	if !ok || n == 0 {
		// No devices left to recover onto: the job is lost.
		s.ledger.ReleaseAll(owner)
		j.state = jobLost
		j.doneMin = s.now
		j.ver++
		s.record(TimelineEvent{TimeMin: s.now, Job: owner, Kind: EvLost,
			Note: "no healthy devices to recover onto"})
		return nil
	}
	alloc := full[:n]
	note := fmt.Sprintf("recovered from loss of device %d", dev)
	if len(repl) > 0 && alloc.Contains(repl[0]) {
		note += fmt.Sprintf(", replacement device %d", repl[0])
	}
	if err := s.applyChange(j, est, alloc, []cluster.DeviceID{dev}, EvRecover, note); err != nil {
		return err
	}
	// A size-constrained recovery may have released healthy devices;
	// let the queue and the other jobs use them.
	if err := s.admitQueued(); err != nil {
		return err
	}
	return s.expandJobs()
}

// --- scheduling policies ---

// admitQueued places queued jobs FIFO. When free capacity is short it
// arbitrates: elastic running jobs above their minimum are shrunk
// (largest surplus first) until the head job's minimum fits. Head-of-
// line blocking is deliberate — admission order stays fair and the
// simulation deterministic.
func (s *sim) admitQueued() error {
	reclaimTried := map[string]bool{}
	for len(s.queue) > 0 {
		j := s.jobs[s.queue[0]]
		if j.spec.MinGPUs > s.ledger.Healthy() {
			j.state = jobRejected
			s.queue = s.queue[1:]
			s.record(TimelineEvent{TimeMin: s.now, Job: j.spec.Name, Kind: EvReject,
				Note: fmt.Sprintf("min %d GPUs exceeds %d healthy devices", j.spec.MinGPUs, s.ledger.Healthy())})
			continue
		}
		high := j.spec.GPUs
		if free := s.ledger.FreeCount(); free < high {
			high = free
		}
		n, est, ok := s.bestAtMost(j.spec.Model, high, j.spec.MinGPUs)
		if !ok {
			if reclaimTried[j.spec.Name] {
				break
			}
			reclaimTried[j.spec.Name] = true
			if !s.reclaimFor(j) {
				break
			}
			continue // retry the head with the reclaimed capacity
		}
		devs, got := s.ledger.Pick(n, nil)
		if !got {
			return fmt.Errorf("coordinator: pick(%d) failed with %d free", n, s.ledger.FreeCount())
		}
		if err := s.ledger.Lease(j.spec.Name, devs...); err != nil {
			return err
		}
		if j.init == nil {
			j.init = initState(j.spec.Model, j.spec.Seed)
		}
		if err := j.rt.deploy(est.Config, devs, j.init); err != nil {
			return err
		}
		j.state = jobRunning
		j.admitMin = s.now
		j.complAt = s.now + j.spec.DurationMin
		j.ver++
		s.push(event{time: j.complAt, kind: evComplete, job: j.spec.Name, ver: j.ver})
		s.queue = s.queue[1:]
		s.record(TimelineEvent{TimeMin: s.now, Job: j.spec.Name, Kind: EvAdmit,
			GPUs: n, Config: est.Config.String()})
	}
	return nil
}

// reclaimFor shrinks running jobs (largest surplus over their minimum
// first) until at least j's minimum lease is free. It reports whether
// enough capacity was freed. Each shrink is a real reconfiguration of
// the victim job.
func (s *sim) reclaimFor(j *simJob) bool {
	// Don't shrink anyone unless the minimum is actually reachable:
	// partial preemption would only be undone by the next expansion.
	// Each victim counts only what shrinking to its smallest *feasible*
	// size at or above its minimum would free.
	achievable := s.ledger.FreeCount()
	for _, r := range s.running() {
		if n, ok := s.minFeasible(r.spec.Model, r.spec.MinGPUs, len(r.rt.alloc)); ok {
			achievable += len(r.rt.alloc) - n
		}
	}
	if achievable < j.spec.MinGPUs {
		return false
	}
	excluded := map[string]bool{} // victims with no feasible shrink left
	for s.ledger.FreeCount() < j.spec.MinGPUs {
		var victim *simJob
		surplus := 0
		for _, r := range s.running() {
			if excluded[r.spec.Name] {
				continue
			}
			if sp := len(r.rt.alloc) - r.spec.MinGPUs; sp > surplus {
				surplus, victim = sp, r
			}
		}
		if victim == nil {
			return false
		}
		need := j.spec.MinGPUs - s.ledger.FreeCount()
		give := surplus
		if give > need {
			give = need
		}
		cur := len(victim.rt.alloc)
		n, est, ok := s.bestAtMost(victim.spec.Model, cur-give, victim.spec.MinGPUs)
		if !ok || n >= cur {
			excluded[victim.spec.Name] = true
			continue
		}
		alloc := append(cluster.Allocation(nil), victim.rt.alloc[:n]...)
		note := fmt.Sprintf("preempted for %s", j.spec.Name)
		if err := s.applyChange(victim, est, alloc, nil, EvScaleIn, note); err != nil {
			return false
		}
	}
	return true
}

// minFeasible returns the smallest feasible lease size in [low, high].
func (s *sim) minFeasible(m *model.Model, low, high int) (int, bool) {
	if low < 1 {
		low = 1
	}
	for n := low; n <= high; n++ {
		if _, err := s.cache.Best(m, s.topo, n, s.opts.Perf); err == nil {
			return n, true
		}
	}
	return 0, false
}

// expandJobs grows elastic running jobs into free capacity: first back
// towards their requested size (most-starved first), then — only when
// the admission queue is empty — up to their elastic maximum.
func (s *sim) expandJobs() error {
	stuck := map[string]bool{} // jobs with no feasible larger lease right now
	for {
		free := s.ledger.FreeCount()
		if free == 0 {
			return nil
		}
		var pick *simJob
		var pickRatio float64
		limitOf := func(r *simJob) int {
			if len(s.queue) == 0 {
				return r.spec.MaxGPUs
			}
			return r.spec.GPUs
		}
		for _, r := range s.running() {
			if stuck[r.spec.Name] || len(r.rt.alloc) >= limitOf(r) {
				continue
			}
			ratio := float64(len(r.rt.alloc)) / float64(r.spec.GPUs)
			if pick == nil || ratio < pickRatio {
				pick, pickRatio = r, ratio
			}
		}
		if pick == nil {
			return nil
		}
		cur := len(pick.rt.alloc)
		high := cur + free
		if limit := limitOf(pick); high > limit {
			high = limit
		}
		n, est, ok := s.bestAtMost(pick.spec.Model, high, cur+1)
		if !ok || n <= cur {
			stuck[pick.spec.Name] = true
			continue
		}
		extra, got := s.ledger.Pick(n-cur, pick.rt.alloc)
		if !got {
			return nil
		}
		alloc := append(append(cluster.Allocation(nil), pick.rt.alloc...), extra...)
		if err := s.applyChange(pick, est, alloc, nil, EvScaleOut, ""); err != nil {
			return err
		}
	}
}

// defragJobs redeploys fragmented jobs onto fewer workers when a
// compact placement exists and its netsim-priced cost stays under the
// configured ceiling — the paper's redeployment scenario (§6.3) driven
// by the cluster, not the user.
func (s *sim) defragJobs() error {
	if s.opts.DefragMaxSec < 0 {
		return nil
	}
	for _, j := range s.running() {
		cur := j.rt.alloc
		curWorkers := len(cur.Workers(s.topo))
		candidate, ok := s.pickCompact(j.spec.Name, len(cur))
		if !ok {
			continue
		}
		if len(cluster.Allocation(candidate).Workers(s.topo)) >= curWorkers {
			continue
		}
		// Same device count, so the job keeps its current (T, P, D);
		// price the move before committing it.
		ch, err := j.rt.planChange(j.rt.cfg, candidate, nil)
		if err != nil {
			return err
		}
		s.plans++
		if ch.simSec > s.opts.DefragMaxSec {
			continue
		}
		note := fmt.Sprintf("defragmented %d -> %d workers", curWorkers,
			len(cluster.Allocation(candidate).Workers(s.topo)))
		if err := s.commitChange(j, ch, EvRedeploy, note); err != nil {
			return err
		}
	}
	return nil
}

// pickCompact selects n devices for job as if its own lease were free,
// yielding the most compact placement the cluster currently allows.
func (s *sim) pickCompact(job string, n int) ([]cluster.DeviceID, bool) {
	own := s.ledger.Allocation(job)
	avail := append(append(cluster.Allocation(nil), own...), s.ledger.Free()...)
	return packCompact(s.topo, avail, n, nil)
}

// applyChange plans, prices, commits and books one allocation change of
// a running job. Callers that need to inspect the price before deciding
// (the defrag gate) call planChange and commitChange themselves.
func (s *sim) applyChange(j *simJob, est perfmodel.Estimate, alloc cluster.Allocation,
	failed []cluster.DeviceID, kind, note string) error {
	ch, err := j.rt.planChange(est.Config, alloc, failed)
	if err != nil {
		return err
	}
	s.plans++
	return s.commitChange(j, ch, kind, note)
}

// commitChange executes a costed change: lease the new devices, run the
// transformer, release the vacated ones, and charge the downtime.
func (s *sim) commitChange(j *simJob, ch *change, kind, note string) error {
	name := j.spec.Name
	held := map[cluster.DeviceID]bool{}
	for _, d := range s.ledger.Allocation(name) {
		held[d] = true
	}
	var fresh []cluster.DeviceID
	inNew := map[cluster.DeviceID]bool{}
	for _, d := range ch.alloc {
		inNew[d] = true
		if !held[d] {
			fresh = append(fresh, d)
		}
	}
	var vacate []cluster.DeviceID
	for d := range held {
		if !inNew[d] {
			vacate = append(vacate, d)
		}
	}
	sort.Slice(vacate, func(i, j int) bool { return vacate[i] < vacate[j] })
	if len(fresh) > 0 {
		if err := s.ledger.Lease(name, fresh...); err != nil {
			return err
		}
	}
	if err := j.rt.commit(ch); err != nil {
		return err
	}
	if len(vacate) > 0 {
		if err := s.ledger.Release(name, vacate...); err != nil {
			return err
		}
	}
	j.resizes++
	j.reconfigSec += ch.simSec
	j.movedBytes += ch.stats.MovedBytes
	s.reconfigSec += ch.simSec
	// Downtime delays the job's completion.
	j.complAt += ch.simSec / 60
	j.ver++
	s.push(event{time: j.complAt, kind: evComplete, job: name, ver: j.ver})
	s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: kind,
		GPUs: len(ch.alloc), Config: ch.cfg.String(),
		SimSec: ch.simSec, MovedBytes: ch.stats.MovedBytes, Note: note})
	return nil
}

// checkInvariants asserts, after every event, that the ledger is
// consistent, that each running job's runtime allocation matches its
// lease exactly, and that its PTC is valid.
func (s *sim) checkInvariants() error {
	s.checks++
	if err := s.ledger.Validate(); err != nil {
		return err
	}
	for _, j := range s.running() {
		lease := s.ledger.Allocation(j.spec.Name)
		if len(lease) != len(j.rt.alloc) {
			return fmt.Errorf("coordinator: %s lease has %d devices, runtime %d",
				j.spec.Name, len(lease), len(j.rt.alloc))
		}
		onLease := map[cluster.DeviceID]bool{}
		for _, d := range lease {
			onLease[d] = true
		}
		for _, d := range j.rt.alloc {
			if !onLease[d] {
				return fmt.Errorf("coordinator: %s runtime uses device %d outside its lease",
					j.spec.Name, d)
			}
		}
		if err := j.rt.ptc.Validate(); err != nil {
			return fmt.Errorf("coordinator: %s: %w", j.spec.Name, err)
		}
	}
	return nil
}

func (s *sim) result() Result {
	res := Result{
		Timeline:         s.timeline,
		MakespanMin:      s.now,
		ReconfigSecTotal: s.reconfigSec,
		PlansValidated:   s.plans,
		InvariantChecks:  s.checks,
	}
	if s.now > 0 {
		res.MeanUtilization = s.utilIntegral / (float64(s.topo.NumDevices()) * s.now)
	}
	for _, name := range s.order {
		j := s.jobs[name]
		res.Jobs = append(res.Jobs, JobSummary{
			Name:        name,
			Model:       j.spec.Model.Name,
			GPUs:        j.spec.GPUs,
			ArrivalMin:  j.spec.ArrivalMin,
			AdmitMin:    j.admitMin,
			DoneMin:     j.doneMin,
			Resizes:     j.resizes,
			ReconfigSec: j.reconfigSec,
			MovedBytes:  j.movedBytes,
			Completed:   j.state == jobDone,
		})
	}
	return res
}
