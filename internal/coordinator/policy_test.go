package coordinator

import (
	"strings"
	"testing"

	"tenplex/internal/cluster"
)

func admitOrder(res Result) []string {
	var out []string
	for _, e := range res.Timeline {
		if e.Kind == EvAdmit {
			out = append(out, e.Job)
		}
	}
	return out
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "fifo", "fifo": "fifo", "drf": "drf", "priority": "priority",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("lottery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestDRFAdmissionOrder: with a big and a small job queued behind a
// full cluster, FIFO admits in arrival order while DRF's progressive
// filling admits the cheaper (smaller prospective dominant share) job
// first.
func TestDRFAdmissionOrder(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		{Name: "hog", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 30, GPUs: 16, Seed: 1},
		{Name: "big", Model: tinyGPT(), ArrivalMin: 1, DurationMin: 20, GPUs: 8, Seed: 2},
		{Name: "small", Model: tinyGPT(), ArrivalMin: 2, DurationMin: 20, GPUs: 2, Seed: 3},
	}
	fifo, err := Run(topo, specs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	drf, err := Run(topo, specs, nil, Options{Policy: DRF{}})
	if err != nil {
		t.Fatal(err)
	}
	if drf.Policy != "drf" || fifo.Policy != "fifo" {
		t.Fatalf("policy names: fifo=%q drf=%q", fifo.Policy, drf.Policy)
	}
	fo, do := admitOrder(fifo), admitOrder(drf)
	if len(fo) != 3 || fo[1] != "big" || fo[2] != "small" {
		t.Fatalf("fifo admit order %v", fo)
	}
	if len(do) != 3 || do[1] != "small" || do[2] != "big" {
		t.Fatalf("drf admit order %v, want small before big", do)
	}
	for _, js := range drf.Jobs {
		if !js.Completed {
			t.Errorf("drf: job %s did not complete", js.Name)
		}
	}
}

// TestGangAdmissionAllOrNothing: under PriorityGang a job is placed at
// its full requested size or not at all — no shrink-to-fit admission —
// and a gang that does not fit backfills instead of blocking the queue.
func TestGangAdmissionAllOrNothing(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		// A rigid job pins 8 devices, leaving 8 free.
		{Name: "pin", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 40, GPUs: 8, Seed: 1},
		// The gang wants the full 16 (min 4): FIFO would admit it
		// shrunk into the 8 free devices; gang admission keeps it
		// queued until the pin completes.
		{Name: "gang", Model: tinyGPT(), ArrivalMin: 1, DurationMin: 20, GPUs: 16, MinGPUs: 4, MaxGPUs: 16, Seed: 2},
		// A later small job backfills free devices past the blocked
		// gang and completes before the pin does.
		{Name: "fill", Model: tinyGPT(), ArrivalMin: 2, DurationMin: 10, GPUs: 4, Seed: 3},
	}
	fifo, err := Run(topo, specs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gang, err := Run(topo, specs, nil, Options{Policy: PriorityGang{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fifo.Timeline {
		if e.Kind == EvAdmit && e.Job == "gang" && e.GPUs != 8 {
			t.Fatalf("fifo admitted the gang at %d GPUs, want shrunk into the 8 free", e.GPUs)
		}
	}
	var gangAdmit, fillAdmit, pinDone float64
	for _, e := range gang.Timeline {
		switch {
		case e.Kind == EvAdmit && e.Job == "gang":
			gangAdmit = e.TimeMin
			if e.GPUs != 16 {
				t.Fatalf("gang admitted at %d GPUs, want all-or-nothing 16\n%s", e.GPUs, gang.Render())
			}
		case e.Kind == EvAdmit && e.Job == "fill":
			fillAdmit = e.TimeMin
		case e.Kind == EvComplete && e.Job == "pin":
			pinDone = e.TimeMin
		}
	}
	if gangAdmit < pinDone {
		t.Fatalf("gang admitted at %.1f before the pin completed at %.1f", gangAdmit, pinDone)
	}
	if fillAdmit >= gangAdmit {
		t.Fatalf("backfill job admitted at %.1f, not before the blocked gang at %.1f\n%s",
			fillAdmit, gangAdmit, gang.Render())
	}
	for _, js := range gang.Jobs {
		if !js.Completed {
			t.Errorf("job %s did not complete", js.Name)
		}
	}
}

// TestGangAdmissionNeverSatisfied: a full-cluster gang is blocked
// behind a rigid, non-preemptible peer — no partial preemption may
// happen while it waits — and once a fail-stop failure shrinks the
// cluster below the gang size, the gang is rejected outright instead
// of wedging the queue.
func TestGangAdmissionNeverSatisfied(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		// Not preemptible (MinGPUs == GPUs): while it runs, the
		// full-cluster gang's target is unreachable.
		{Name: "rigid", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 40, GPUs: 8, Seed: 1},
		{Name: "gang", Model: tinyGPT(), ArrivalMin: 1, DurationMin: 20, GPUs: 16, MinGPUs: 2, MaxGPUs: 16, Priority: 1, Seed: 2},
	}
	// A free device dies at t=2, capping the cluster at 15 healthy
	// devices for good.
	failures := []FailureSpec{{TimeMin: 2, Device: 15}}
	res, err := Run(topo, specs, failures, Options{Policy: PriorityGang{}})
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, e := range res.Timeline {
		if e.Kind == EvReject && e.Job == "gang" && strings.Contains(e.Note, "healthy devices") {
			rejected = true
		}
		if e.Kind == EvAdmit && e.Job == "gang" {
			t.Fatalf("unsatisfiable gang admitted:\n%s", res.Render())
		}
	}
	if !rejected {
		t.Fatalf("unsatisfiable gang not rejected:\n%s", res.Render())
	}
	if res.Preemptions != 0 {
		t.Fatalf("%d partial preemptions despite unreachable gang target", res.Preemptions)
	}
}

// TestPriorityPreemptsLowerClass: a high-priority gang shrinks a
// lower-class elastic job to fit, and never touches an equal-class one.
func TestPriorityPreemptsLowerClass(t *testing.T) {
	topo := cluster.OnPrem16()
	specs := []JobSpec{
		{Name: "low", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 100, GPUs: 8, MinGPUs: 2, MaxGPUs: 16, Priority: 0, Seed: 1},
		{Name: "peer", Model: tinyGPT(), ArrivalMin: 0, DurationMin: 100, GPUs: 4, MinGPUs: 2, MaxGPUs: 4, Priority: 2, Seed: 2},
		{Name: "vip", Model: tinyGPT(), ArrivalMin: 5, DurationMin: 10, GPUs: 8, Priority: 2, Seed: 3},
	}
	res, err := Run(topo, specs, nil, Options{Policy: PriorityGang{}})
	if err != nil {
		t.Fatal(err)
	}
	preempted := map[string]bool{}
	for _, e := range res.Timeline {
		if e.Kind == EvScaleIn && strings.Contains(e.Note, "preempted for vip") {
			preempted[e.Job] = true
		}
	}
	if !preempted["low"] {
		t.Fatalf("vip did not preempt the lower class:\n%s", res.Render())
	}
	if preempted["peer"] {
		t.Fatalf("vip preempted an equal-priority job:\n%s", res.Render())
	}
	if res.Preemptions == 0 {
		t.Fatal("preemption counter not incremented")
	}
	for _, js := range res.Jobs {
		if !js.Completed {
			t.Errorf("job %s did not complete", js.Name)
		}
	}
}

// TestPoliciesDeterministic: every policy yields identical traces on
// repeated runs, serialized or pooled.
func TestPoliciesDeterministic(t *testing.T) {
	topo := cluster.OnPrem16()
	specs, failures := contendedSpecs()
	for i := range specs {
		specs[i].Priority = i % 3
	}
	for _, p := range []Policy{FIFO{}, DRF{}, PriorityGang{}} {
		a, err := Run(topo, specs, failures, Options{Policy: p, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		b, err := Run(topo, specs, failures, Options{Policy: p, Workers: 4})
		if err != nil {
			t.Fatalf("%s pooled: %v", p.Name(), err)
		}
		if len(a.Timeline) == 0 {
			t.Fatalf("%s produced an empty timeline", p.Name())
		}
		for i := range a.Timeline {
			if a.Timeline[i] != b.Timeline[i] {
				t.Fatalf("%s: pooled trace diverged at %d:\n%s\nvs\n%s",
					p.Name(), i, a.Timeline[i], b.Timeline[i])
			}
		}
	}
}
