package coordinator

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tenplex/internal/cluster"
	"tenplex/internal/obs"
)

// Service runs the coordinator's decision plane as a long-running
// wall-clock control plane instead of a finite scenario: jobs are
// submitted, scaled and canceled while the service runs, and the event
// heap is paced on the real clock (one simulated minute per WallScale
// of real time, exactly like Run's ModeWall).
//
// Concurrency model: ONE goroutine — the service loop — owns the sim.
// It is the same single-threaded decision plane Run drives; external
// requests are turned into commands, enqueued, and executed between
// heap events, so no caller ever touches the ledger, the heap or a
// scheduling choice concurrently. Execution-plane work (plan,
// transform, verify) still fans out over the bounded pool, as in Run.
// Because Run and the Service share newSim/addJob/dispatch, the
// service layer adds no scheduling behavior of its own and the
// bit-deterministic sim path is untouched.
type Service struct {
	cmds   chan serviceCmd
	stopCh chan struct{}
	done   chan struct{}

	stopOnce sync.Once
	commands atomic.Int64

	// mu guards the subscriber registry; publish runs on the loop,
	// cancel on caller goroutines.
	mu     sync.Mutex
	subs   map[int]chan TimelineEvent
	subSeq int

	start     time.Time
	wallScale time.Duration
	reg       *obs.Registry

	// Loop-owned (only the loop goroutine and post-loop readers touch
	// these; done orders finish before Stop's reads).
	wedged  error
	result  Result
	stopErr error
}

type serviceCmd struct {
	fn     func(s *sim) error
	mutate bool
	resp   chan error
}

// ErrStopped is returned by every Service method after Stop.
var ErrStopped = errors.New("coordinator: service stopped")

// clientErr marks a request-validation failure (bad spec, unknown job,
// infeasible scale target) — the request is refused but the decision
// plane is untouched and the service keeps running. Any other error
// from a mutating command wedges the service: reads still answer, but
// further mutations are refused with the original fault.
type clientErr struct{ err error }

func (e clientErr) Error() string { return e.err.Error() }
func (e clientErr) Unwrap() error { return e.err }

func clientErrf(format string, args ...any) error {
	return clientErr{fmt.Errorf(format, args...)}
}

// IsClientError reports whether err was a request-validation failure
// rather than a decision-plane fault — the API layer maps the former
// to 4xx responses and the latter to 500s.
func IsClientError(err error) bool {
	var ce clientErr
	return errors.As(err, &ce)
}

// StartService builds the decision plane over topo and starts the
// service loop. Mode is forced to ModeWall; chaos injection is not
// supported (it schedules faults against a finite scenario script).
// opts.Stores points the per-job device stores at remote tenplex-store
// servers; opts.Metrics receives the coordinator's accounting.
func StartService(topo *cluster.Topology, opts Options) (*Service, error) {
	if opts.Chaos != nil {
		return nil, fmt.Errorf("coordinator: service does not support chaos plans")
	}
	opts.Mode = ModeWall
	s, err := newSim(topo, opts)
	if err != nil {
		return nil, err
	}
	svc := &Service{
		cmds:      make(chan serviceCmd),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		subs:      map[int]chan TimelineEvent{},
		start:     time.Now(),
		wallScale: s.opts.WallScale,
		reg:       s.reg,
	}
	s.onEvent = svc.publish
	go svc.loop(s)
	return svc, nil
}

// nowMin converts elapsed wall time to simulated minutes.
func (svc *Service) nowMin() float64 {
	return float64(time.Since(svc.start)) / float64(svc.wallScale)
}

func (svc *Service) loop(s *sim) {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Arm the wake-up: the next due heap event, a short poll while
		// execution-plane work is in flight (wall-mode commit outcomes
		// surface at flushes), or idle until a command arrives.
		wait := time.Hour
		switch {
		case svc.wedged != nil:
			// Wedged: stop consuming the heap; answer reads only.
		case s.evq.Len() > 0:
			due := svc.start.Add(time.Duration(s.evq[0].time * float64(svc.wallScale)))
			if wait = time.Until(due); wait < 0 {
				wait = 0
			}
		case len(s.inflight) > 0 || len(s.pending) > 0:
			wait = 2 * time.Millisecond
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)

		select {
		case <-svc.stopCh:
			svc.finish(s)
			return
		case cmd := <-svc.cmds:
			svc.commands.Add(1)
			s.advance(svc.nowMin())
			var err error
			switch {
			case cmd.mutate && svc.wedged != nil:
				err = fmt.Errorf("coordinator: service wedged: %w", svc.wedged)
			default:
				err = cmd.fn(s)
				if cmd.mutate && err == nil {
					err = svc.settleStep(s)
				}
				if cmd.mutate && err != nil && !IsClientError(err) {
					svc.wedged = err
				}
			}
			cmd.resp <- err
		case <-timer.C:
			if svc.wedged != nil {
				continue
			}
			s.advance(svc.nowMin())
			if err := svc.pump(s); err != nil {
				svc.wedged = err
			}
		}
	}
}

// pump processes every due heap event through the shared dispatch
// path, then settles decided work — Run's inner loop, paced by the
// service timer instead of sleeps.
func (svc *Service) pump(s *sim) error {
	fired := false
	for s.evq.Len() > 0 && s.evq[0].time <= svc.nowMin() {
		e := heap.Pop(&s.evq).(event)
		if e.kind == evComplete {
			j := s.jobs[e.job]
			if j == nil || j.state != jobRunning || j.ver != e.ver {
				continue // superseded by a resize, failure or cancel
			}
		}
		s.advance(e.time)
		if s.tr.Enabled() {
			s.traceDecision(e)
			s.reg.Add("coord.events", 1)
		}
		s.eventIdx++
		if err := s.dispatch(e); err != nil {
			return err
		}
		if err := svc.settleStep(s); err != nil {
			return err
		}
		fired = true
	}
	if !fired {
		// Poll tick: no heap event was due, but in-flight wall-mode
		// commits may have late outcomes to resolve (retries charged,
		// aborts degraded into requeues).
		return svc.settleStep(s)
	}
	return nil
}

// settleStep finalizes decided changes and re-checks invariants — the
// per-event epilogue Run runs after every handler.
func (svc *Service) settleStep(s *sim) error {
	if err := s.flush(); err != nil {
		return err
	}
	return s.checkInvariants()
}

// finish quiesces the execution plane, settles every in-flight change
// and audits final state, then snapshots the run result and wakes
// Stop.
func (svc *Service) finish(s *sim) {
	s.advance(svc.nowMin())
	err := svc.wedged
	for err == nil {
		if s.pool != nil {
			if err = s.pool.drainAll(); err != nil {
				break
			}
		}
		if err = s.flush(); err != nil {
			break
		}
		if len(s.inflight) == 0 && len(s.pending) == 0 {
			break
		}
	}
	if err == nil {
		err = s.auditAll()
	}
	svc.result = s.result(svc.start)
	svc.stopErr = err
	svc.mu.Lock()
	for id, ch := range svc.subs {
		delete(svc.subs, id)
		close(ch)
	}
	svc.mu.Unlock()
	close(svc.done)
}

// Stop shuts the service down: the loop quiesces execution-plane
// chains, settles every decided change, audits final state and
// returns the run's Result — the same shape a finished Run returns.
// Stop is idempotent; every other method returns ErrStopped afterward.
func (svc *Service) Stop() (Result, error) {
	svc.stopOnce.Do(func() { close(svc.stopCh) })
	<-svc.done
	return svc.result, svc.stopErr
}

// exec runs fn on the service loop and waits for its answer.
func (svc *Service) exec(mutate bool, fn func(s *sim) error) error {
	cmd := serviceCmd{fn: fn, mutate: mutate, resp: make(chan error, 1)}
	select {
	case svc.cmds <- cmd:
	case <-svc.done:
		return ErrStopped
	}
	select {
	case err := <-cmd.resp:
		return err
	case <-svc.done:
		return ErrStopped
	}
}

// CommandCount reports how many commands reached the decision plane —
// the API layer's tests use it to prove rejected requests (bad token,
// quota breach) never touched the loop.
func (svc *Service) CommandCount() int64 { return svc.commands.Load() }

// Submit registers a new job; it arrives on the decision plane
// immediately (ArrivalMin is stamped with the service clock, any value
// in the spec is ignored) and competes for devices under the
// configured policy like any scenario job.
func (svc *Service) Submit(spec JobSpec) error {
	return svc.exec(true, func(s *sim) error {
		spec.ArrivalMin = s.now
		if _, err := s.addJob(spec); err != nil {
			return clientErr{err}
		}
		s.eventIdx++
		return s.onArrival(spec.Name)
	})
}

// Scale retargets a job's requested size. Growth happens through the
// normal elastic expansion path as capacity allows; shrinking below
// the current lease releases devices through a priced scale-in
// reconfiguration immediately.
func (svc *Service) Scale(name string, gpus int) error {
	return svc.exec(true, func(s *sim) error {
		j := s.jobs[name]
		if j == nil {
			return clientErrf("unknown job %q", name)
		}
		if j.state != jobQueued && j.state != jobRunning {
			return clientErrf("job %q is %s; cannot scale", name, j.state)
		}
		if gpus < 1 || gpus > s.topo.NumDevices() {
			return clientErrf("job %q: scale target %d outside [1, %d]", name, gpus, s.topo.NumDevices())
		}
		j.spec.GPUs = gpus
		if j.spec.MinGPUs > gpus {
			j.spec.MinGPUs = gpus
		}
		if j.spec.MaxGPUs < gpus {
			j.spec.MaxGPUs = gpus
		}
		if j.state == jobRunning && len(j.alloc) > gpus {
			cur := len(j.alloc)
			n, est, ok := s.bestAtMost(j.spec.Model, gpus, j.spec.MinGPUs)
			if !ok || n >= cur {
				return clientErrf("job %q: no feasible configuration at %d GPUs", name, gpus)
			}
			alloc := append(cluster.Allocation(nil), j.alloc[:n]...)
			if err := s.applyChange(j, s.shrinkConfig(j, est, alloc), alloc, nil,
				EvScaleIn, "scale request"); err != nil {
				return err
			}
		}
		if err := s.admitQueued(); err != nil {
			return err
		}
		return s.expandJobs()
	})
}

// Cancel removes a queued or running job. A running job's devices are
// released immediately; its in-flight execution-plane work is staled
// by the version bump and drains harmlessly (store paths are per-job).
func (svc *Service) Cancel(name string) error {
	return svc.exec(true, func(s *sim) error {
		j := s.jobs[name]
		if j == nil {
			return clientErrf("unknown job %q", name)
		}
		switch j.state {
		case jobQueued:
			s.dequeue(name)
		case jobRunning:
			j.servedMin += s.now - j.lastStartMin
			s.ledger.ReleaseAll(name)
		default:
			return clientErrf("job %q is already %s", name, j.state)
		}
		s.cache.DropJob(name)
		j.alloc = nil
		j.state = jobCanceled
		j.ver++
		j.doneMin = s.now
		s.record(TimelineEvent{TimeMin: s.now, Job: name, Kind: EvCancel,
			Note: "canceled by request"})
		if err := s.admitQueued(); err != nil {
			return err
		}
		return s.expandJobs()
	})
}

// InjectFailure fail-stops a device through the same path a scenario
// failure takes: the owner recovers onto surviving devices or is
// declared lost.
func (svc *Service) InjectFailure(dev cluster.DeviceID) error {
	return svc.exec(true, func(s *sim) error {
		if int(dev) < 0 || int(dev) >= s.topo.NumDevices() {
			return clientErrf("unknown device %d", dev)
		}
		s.eventIdx++
		return s.onFailure(dev)
	})
}

// JobStatus is a point-in-time snapshot of one job, JSON-stable for
// the API layer.
type JobStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Model    string `json:"model"`
	GPUs     int    `json:"gpus"`
	MinGPUs  int    `json:"min_gpus"`
	MaxGPUs  int    `json:"max_gpus"`
	Priority int    `json:"priority,omitempty"`

	Alloc  []int  `json:"alloc,omitempty"`
	Config string `json:"config,omitempty"`

	ArrivalMin float64 `json:"arrival_min"`
	AdmitMin   float64 `json:"admit_min,omitempty"`
	DoneMin    float64 `json:"done_min,omitempty"`
	ServedMin  float64 `json:"served_min,omitempty"`

	// Recovery and reconfiguration metrics.
	Resizes     int     `json:"resizes"`
	Requeues    int     `json:"requeues,omitempty"`
	ReconfigSec float64 `json:"reconfig_sec"`
	MovedBytes  int64   `json:"moved_bytes"`
	// Verified is true once the completion-time oracle matched the
	// job's reassembled state bit for bit against its initial tensors.
	Verified bool `json:"verified"`
}

func (svc *Service) snapshotJob(s *sim, j *simJob) JobStatus {
	st := JobStatus{
		Name:        j.spec.Name,
		State:       j.state.String(),
		Model:       j.spec.Model.Name,
		GPUs:        j.spec.GPUs,
		MinGPUs:     j.spec.MinGPUs,
		MaxGPUs:     j.spec.MaxGPUs,
		Priority:    j.spec.Priority,
		ArrivalMin:  j.spec.ArrivalMin,
		AdmitMin:    j.admitMin,
		DoneMin:     j.doneMin,
		ServedMin:   j.servedMin,
		Resizes:     j.resizes,
		Requeues:    j.requeues,
		ReconfigSec: j.reconfigSec,
		MovedBytes:  j.movedBytes,
		Verified:    j.verified.Load(),
	}
	if j.state == jobRunning {
		st.ServedMin = j.servedMin + (s.now - j.lastStartMin)
		st.Config = j.cfg.String()
		for _, d := range j.alloc {
			st.Alloc = append(st.Alloc, int(d))
		}
	}
	return st
}

// Job returns one job's snapshot.
func (svc *Service) Job(name string) (JobStatus, error) {
	var st JobStatus
	err := svc.exec(false, func(s *sim) error {
		j := s.jobs[name]
		if j == nil {
			return clientErrf("unknown job %q", name)
		}
		st = svc.snapshotJob(s, j)
		return nil
	})
	return st, err
}

// Jobs returns every job's snapshot in submission order.
func (svc *Service) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := svc.exec(false, func(s *sim) error {
		for _, name := range s.order {
			out = append(out, svc.snapshotJob(s, s.jobs[name]))
		}
		return nil
	})
	return out, err
}

// ClusterStatus summarizes topology, ledger and scheduler state.
type ClusterStatus struct {
	Devices     int  `json:"devices"`
	Workers     int  `json:"workers"`
	Free        int  `json:"free"`
	Leased      int  `json:"leased"`
	Healthy     int  `json:"healthy"`
	Quarantined int  `json:"quarantined"`
	Placement   bool `json:"placement"`

	Policy string  `json:"policy"`
	NowMin float64 `json:"now_min"`

	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Lost      int `json:"lost"`
	Canceled  int `json:"canceled"`

	Preemptions    int     `json:"preemptions"`
	PlansValidated int     `json:"plans_validated"`
	Requeues       int     `json:"requeues"`
	Utilization    float64 `json:"utilization"`

	// Err reports a wedged decision plane (mutations refused).
	Err string `json:"err,omitempty"`
}

// Cluster returns the current cluster summary.
func (svc *Service) Cluster() (ClusterStatus, error) {
	var cs ClusterStatus
	err := svc.exec(false, func(s *sim) error {
		cs = ClusterStatus{
			Devices:        s.topo.NumDevices(),
			Workers:        s.topo.NumWorkers(),
			Free:           s.ledger.FreeCount(),
			Leased:         s.ledger.LeasedCount(),
			Healthy:        s.ledger.Healthy(),
			Quarantined:    len(s.quarantined),
			Placement:      s.opts.Placement,
			Policy:         s.policy.Name(),
			NowMin:         s.now,
			Preemptions:    s.preemptions,
			PlansValidated: s.plans,
			Requeues:       s.requeues,
		}
		for _, j := range s.jobs {
			switch j.state {
			case jobQueued:
				cs.Queued++
			case jobRunning:
				cs.Running++
			case jobDone:
				cs.Completed++
			case jobRejected:
				cs.Rejected++
			case jobLost:
				cs.Lost++
			case jobCanceled:
				cs.Canceled++
			}
		}
		if s.now > 0 {
			cs.Utilization = s.utilIntegral / (float64(s.topo.NumDevices()) * s.now)
		}
		if svc.wedged != nil {
			cs.Err = svc.wedged.Error()
		}
		return nil
	})
	return cs, err
}

// Subscribe registers a timeline listener: it returns a copy of every
// event recorded so far plus a channel of subsequent events, atomically
// ordered with respect to the decision plane (no gap, no duplicate).
// Events for in-flight changes stream with placeholder prices; the
// final prices land in the stored timeline only. A subscriber that
// falls buf events behind is disconnected (its channel is closed)
// rather than ever blocking the loop; cancel is idempotent.
func (svc *Service) Subscribe(buf int) (past []TimelineEvent, ch <-chan TimelineEvent, cancel func(), err error) {
	if buf <= 0 {
		buf = 1024
	}
	c := make(chan TimelineEvent, buf)
	var id int
	err = svc.exec(false, func(s *sim) error {
		past = append([]TimelineEvent(nil), s.timeline...)
		svc.mu.Lock()
		id = svc.subSeq
		svc.subSeq++
		svc.subs[id] = c
		svc.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	cancel = func() {
		svc.mu.Lock()
		if cc, ok := svc.subs[id]; ok {
			delete(svc.subs, id)
			close(cc)
		}
		svc.mu.Unlock()
	}
	return past, c, cancel, nil
}

// publish fans one recorded timeline event out to subscribers; it runs
// on the loop inside record().
func (svc *Service) publish(e TimelineEvent) {
	svc.mu.Lock()
	for id, ch := range svc.subs {
		select {
		case ch <- e:
		default:
			delete(svc.subs, id)
			close(ch)
		}
	}
	svc.mu.Unlock()
}

// Metrics returns the registry the service accounts into (nil when
// neither Options.Obs nor Options.Metrics was set). The registry is
// concurrency-safe; reading it does not touch the decision plane.
func (svc *Service) Metrics() *obs.Registry { return svc.reg }
