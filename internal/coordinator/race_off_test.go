//go:build !race

package coordinator

const raceEnabled = false
