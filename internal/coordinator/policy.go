package coordinator

import (
	"fmt"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

// A Policy makes the coordinator's admission, preemption and expansion
// choices. The event loop owns all mechanism — the ledger, feasibility
// search, reconfiguration planning and execution — and consults the
// policy only at decision points, always with a read-only snapshot of
// the cluster. Policies must be deterministic functions of that
// snapshot: the simulation's reproducibility (and the wall-clock
// runtime's trace equality with sim mode) depends on it.
type Policy interface {
	// Name identifies the policy in results and BENCH records.
	Name() string
	// NextQueued picks the queued job to try admitting next. attempted
	// holds the jobs already found unadmittable in this pass; returning
	// "" ends the pass. A policy with head-of-line blocking returns ""
	// as soon as its first choice is in attempted.
	NextQueued(v *ClusterView, attempted map[string]bool) string
	// AdmitBounds returns the [low, high] lease sizes acceptable for
	// admitting j. low is also the capacity target preemption tries to
	// free, and a job whose low exceeds the healthy device count is
	// rejected outright.
	AdmitBounds(v *ClusterView, j *JobView) (low, high int)
	// PreemptFloor is the smallest lease preemption may shrink victim
	// to on behalf of req. Any value >= victim.Alloc marks the victim
	// as not preemptible by req.
	PreemptFloor(req, victim *JobView) int
	// PickVictim chooses the next job to shrink from cands (each has a
	// positive preemptible Surplus, listed in submission order). nil
	// gives up on preemption for req.
	PickVictim(v *ClusterView, req *JobView, cands []*JobView) *JobView
	// PickExpand chooses which running job grows into free capacity
	// next, from cands in submission order. nil stops expansion.
	PickExpand(v *ClusterView, cands []*JobView) *JobView
	// RankPlacement chooses among scored candidate device sets for
	// placing (or growing) job j. It is consulted only when the
	// coordinator runs placement-aware (Options.Placement); cands are
	// in enumeration order — the first is always the count-based
	// compact pick — and every candidate is feasible with its best
	// configuration and score attached. Returning nil falls back to
	// the first candidate.
	RankPlacement(v *ClusterView, j *JobView, cands []*PlacementCandidate) *PlacementCandidate
}

// PlacementCandidate is one scored candidate device set a Policy ranks
// in placement-aware mode.
type PlacementCandidate struct {
	// Devices is the candidate allocation, in rank order.
	Devices cluster.Allocation
	// Config is the best configuration perfmodel found for the set.
	Config parallel.Config
	// Spread is the number of workers the set spans.
	Spread int
	// SamplesSec is the modeled training throughput of Config laid out
	// on exactly these devices.
	SamplesSec float64
	// MigrationSec is the netsim-priced cost of moving the job's state
	// from its current placement onto the candidate (0 for initial
	// placements), and MigrationBytes its payload.
	MigrationSec   float64
	MigrationBytes int64
	// Score is the migration-amortized throughput score; higher is
	// better.
	Score float64
}

// JobView is the read-only per-job state a Policy sees.
type JobView struct {
	Name     string
	Priority int
	// GPUs is the requested size, MinGPUs/MaxGPUs the elastic bounds.
	GPUs, MinGPUs, MaxGPUs int
	ArrivalMin             float64
	// SubmitIdx is the job's submission order (ties are broken by it).
	SubmitIdx int
	// Alloc is the current lease size (0 while queued) and Spread the
	// number of workers the lease spans.
	Alloc, Spread int
	// Surplus is the preemptible slack above the policy's floor; only
	// set on PickVictim candidates.
	Surplus int
	// EvictCostSec is the netsim-priced cost of exactly the shrink the
	// coordinator would commit if this victim were picked next — how
	// much reconfiguration time (and, correlated, moved bytes) the
	// eviction would charge the cluster — and EvictFreed the number of
	// devices that shrink frees. Only set on PickVictim candidates,
	// and only in placement-aware mode; zero otherwise.
	EvictCostSec float64
	EvictFreed   int
}

// ClusterView is the read-only cluster state a Policy sees.
type ClusterView struct {
	Devices, Workers int
	Free, Healthy    int
	// PlacementAware reports whether the coordinator scores candidate
	// device sets (Options.Placement): PickVictim candidates then carry
	// EvictCostSec and RankPlacement is consulted.
	PlacementAware bool
	// Queued is the admission queue in arrival order; Running the
	// placed jobs in submission order.
	Queued, Running []*JobView
}

// DominantShare is the job's dominant resource share: the larger of its
// device share and its worker-spread share — the quantity DRF
// equalizes.
func (j *JobView) DominantShare(v *ClusterView) float64 {
	ds := float64(j.Alloc) / float64(v.Devices)
	ws := 0.0
	if v.Workers > 0 {
		ws = float64(j.Spread) / float64(v.Workers)
	}
	if ws > ds {
		return ws
	}
	return ds
}

// PolicyByName resolves a policy from its CLI name: "fifo" (default),
// "drf", or "priority".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return FIFO{}, nil
	case "drf":
		return DRF{}, nil
	case "priority":
		return PriorityGang{}, nil
	}
	return nil, fmt.Errorf("coordinator: unknown policy %q (want fifo, drf or priority)", name)
}

// --- FIFO + largest surplus (the default) ---

// FIFO is the original coordinator policy: strict arrival-order
// admission with deliberate head-of-line blocking, largest-surplus
// preemption, and most-starved-first expansion. Sim-mode traces under
// FIFO are byte-identical to the pre-Policy coordinator.
type FIFO struct{}

func (FIFO) Name() string { return "fifo" }

func (FIFO) NextQueued(v *ClusterView, attempted map[string]bool) string {
	if len(v.Queued) == 0 || attempted[v.Queued[0].Name] {
		return ""
	}
	return v.Queued[0].Name
}

func (FIFO) AdmitBounds(v *ClusterView, j *JobView) (int, int) { return j.MinGPUs, j.GPUs }

func (FIFO) PreemptFloor(req, victim *JobView) int { return victim.MinGPUs }

func (FIFO) PickVictim(v *ClusterView, req *JobView, cands []*JobView) *JobView {
	if v.PlacementAware {
		return cheapestVictim(cands)
	}
	var pick *JobView
	surplus := 0
	for _, c := range cands {
		if c.Surplus > surplus {
			surplus, pick = c.Surplus, c
		}
	}
	return pick
}

// RankPlacement for FIFO keeps the highest migration-amortized score:
// the device set on which the configuration runs fastest after paying
// for getting the state there. Ties keep the earlier (more compact)
// candidate.
func (FIFO) RankPlacement(v *ClusterView, j *JobView, cands []*PlacementCandidate) *PlacementCandidate {
	return bestScore(cands)
}

// bestScore picks the highest-scoring candidate, ties broken towards
// the earlier (more compact) one.
func bestScore(cands []*PlacementCandidate) *PlacementCandidate {
	var pick *PlacementCandidate
	for _, c := range cands {
		if pick == nil || c.Score > pick.Score {
			pick = c
		}
	}
	return pick
}

// cheapestVictim picks the victim whose eviction moves the least
// netsim-priced state per device it actually frees (EvictFreed — the
// priced shrink, not the whole surplus) — the cost-aware counterpart
// of largest-surplus. Ties fall back to the larger surplus, then
// earlier submission.
func cheapestVictim(cands []*JobView) *JobView {
	var pick *JobView
	var cost float64
	for _, c := range cands {
		freed := c.EvictFreed
		if freed < 1 {
			freed = c.Surplus
		}
		per := c.EvictCostSec / float64(freed)
		if pick == nil || per < cost ||
			(per == cost && (c.Surplus > pick.Surplus ||
				(c.Surplus == pick.Surplus && c.SubmitIdx < pick.SubmitIdx))) {
			pick, cost = c, per
		}
	}
	return pick
}

func (FIFO) PickExpand(v *ClusterView, cands []*JobView) *JobView {
	var pick *JobView
	ratio := 0.0
	for _, c := range cands {
		r := float64(c.Alloc) / float64(c.GPUs)
		if pick == nil || r < ratio {
			pick, ratio = c, r
		}
	}
	return pick
}

// --- DRF-style dominant-resource fairness ---

// DRF approximates dominant-resource fairness over two dimensions:
// device share and worker-spread share. Admission favors the job whose
// admission costs the smallest prospective dominant share (progressive
// filling), without head-of-line blocking; preemption shrinks the job
// with the largest dominant share first; expansion grows the job with
// the smallest dominant share first.
type DRF struct{}

func (DRF) Name() string { return "drf" }

func (DRF) NextQueued(v *ClusterView, attempted map[string]bool) string {
	var pick *JobView
	var share float64
	for _, q := range v.Queued {
		if attempted[q.Name] {
			continue
		}
		// Prospective dominant share at the requested size: the larger
		// of the device share and the worker-spread share under the
		// densest possible packing (ceil over uniform workers).
		s := float64(q.GPUs) / float64(v.Devices)
		if v.Workers > 0 && v.Devices >= v.Workers {
			perWorker := v.Devices / v.Workers
			spread := (q.GPUs + perWorker - 1) / perWorker
			if ws := float64(spread) / float64(v.Workers); ws > s {
				s = ws
			}
		}
		if pick == nil || s < share || (s == share && q.SubmitIdx < pick.SubmitIdx) {
			pick, share = q, s
		}
	}
	if pick == nil {
		return ""
	}
	return pick.Name
}

func (DRF) AdmitBounds(v *ClusterView, j *JobView) (int, int) { return j.MinGPUs, j.GPUs }

func (DRF) PreemptFloor(req, victim *JobView) int { return victim.MinGPUs }

func (DRF) PickVictim(v *ClusterView, req *JobView, cands []*JobView) *JobView {
	var pick *JobView
	var share float64
	for _, c := range cands {
		s := c.DominantShare(v)
		better := pick == nil || s > share
		if !better && s == share {
			// Fairness stays the primary axis; in placement-aware mode
			// ties prefer the cheaper eviction, otherwise the larger
			// surplus.
			if v.PlacementAware {
				better = c.EvictCostSec < pick.EvictCostSec
			} else {
				better = c.Surplus > pick.Surplus
			}
		}
		if better {
			pick, share = c, s
		}
	}
	return pick
}

// RankPlacement for DRF treats worker spread as the second fairness
// resource: among the scored candidates it keeps the smallest spread,
// breaking ties by score — a narrow placement leaves more distinct
// workers for the other jobs' shares.
func (DRF) RankPlacement(v *ClusterView, j *JobView, cands []*PlacementCandidate) *PlacementCandidate {
	var pick *PlacementCandidate
	for _, c := range cands {
		if pick == nil || c.Spread < pick.Spread ||
			(c.Spread == pick.Spread && c.Score > pick.Score) {
			pick = c
		}
	}
	return pick
}

func (DRF) PickExpand(v *ClusterView, cands []*JobView) *JobView {
	var pick *JobView
	var share float64
	for _, c := range cands {
		s := c.DominantShare(v)
		if pick == nil || s < share {
			pick, share = c, s
		}
	}
	return pick
}

// --- priority classes with gang admission ---

// PriorityGang implements priority classes with gang admission: jobs
// are admitted strictly at their full requested size (all-or-nothing,
// the gang), higher priority classes first, with backfill — a gang
// that does not fit right now stays queued without blocking smaller or
// lower-priority jobs behind it. Preemption may shrink only strictly
// lower-priority jobs, lowest class first; expansion favors the
// highest class.
type PriorityGang struct{}

func (PriorityGang) Name() string { return "priority" }

func (PriorityGang) NextQueued(v *ClusterView, attempted map[string]bool) string {
	var pick *JobView
	for _, q := range v.Queued {
		if attempted[q.Name] {
			continue
		}
		if pick == nil || q.Priority > pick.Priority ||
			(q.Priority == pick.Priority && q.SubmitIdx < pick.SubmitIdx) {
			pick = q
		}
	}
	if pick == nil {
		return ""
	}
	return pick.Name
}

// AdmitBounds pins both bounds to the requested size: the gang is
// placed whole or not at all.
func (PriorityGang) AdmitBounds(v *ClusterView, j *JobView) (int, int) { return j.GPUs, j.GPUs }

func (PriorityGang) PreemptFloor(req, victim *JobView) int {
	if victim.Priority < req.Priority {
		return victim.MinGPUs
	}
	return victim.Alloc // equal or higher class: not preemptible
}

func (PriorityGang) PickVictim(v *ClusterView, req *JobView, cands []*JobView) *JobView {
	var pick *JobView
	for _, c := range cands {
		better := pick == nil || c.Priority < pick.Priority
		if !better && c.Priority == pick.Priority {
			// Within a class, placement-aware mode evicts the cheapest
			// state move first; otherwise the largest surplus.
			if v.PlacementAware {
				better = c.EvictCostSec < pick.EvictCostSec
			} else {
				better = c.Surplus > pick.Surplus
			}
		}
		if better {
			pick = c
		}
	}
	return pick
}

// RankPlacement for PriorityGang maximizes raw throughput: gangs are
// placed whole and rarely move, so the one-time migration term matters
// less than the steady-state rate the class is promised.
func (PriorityGang) RankPlacement(v *ClusterView, j *JobView, cands []*PlacementCandidate) *PlacementCandidate {
	var pick *PlacementCandidate
	for _, c := range cands {
		if pick == nil || c.SamplesSec > pick.SamplesSec {
			pick = c
		}
	}
	return pick
}

func (PriorityGang) PickExpand(v *ClusterView, cands []*JobView) *JobView {
	var pick *JobView
	var ratio float64
	for _, c := range cands {
		r := float64(c.Alloc) / float64(c.GPUs)
		if pick == nil || c.Priority > pick.Priority ||
			(c.Priority == pick.Priority && r < ratio) {
			pick, ratio = c, r
		}
	}
	return pick
}
