package coordinator_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tenplex/internal/chaos"
	"tenplex/internal/coordinator"
	"tenplex/internal/experiments"
)

// The chaos suite (everything matching -run Chaos, which CI executes
// under -race with the fixed seeds below) pins the hostile-cluster
// guarantees: same plan + same seed means bit-identical traces at any
// worker count, every job ends either bit-verified complete or with an
// explicit degradation event (no silent loss), and the transactional
// commit path is free when nothing fails.

// hostilePlan is the canonical hostile fixture (experiments.HostilePlan:
// per-op store faults during transform attempts, a device that flaps
// three times, a spot reclamation with a drain window, a worker NIC
// degraded for two hours) at a mild fault rate, reseeded so the suite
// can vary the decision streams.
func hostilePlan(seed int64) *chaos.Plan {
	p := experiments.HostilePlan(0.004)
	p.Seed = seed
	return p
}

func hostileRecovery() coordinator.RecoveryPolicy {
	return coordinator.RecoveryPolicy{
		MaxAttempts:        4,
		BackoffSec:         2,
		MaxBackoffSec:      16,
		MaxRequeues:        3,
		SuspicionThreshold: 2,
	}
}

func runHostile(t *testing.T, workers int, plan *chaos.Plan, pol coordinator.RecoveryPolicy) coordinator.Result {
	t.Helper()
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Workers:  workers,
		Chaos:    plan,
		Recovery: pol,
	})
	if err != nil {
		t.Fatalf("hostile run (workers=%d): %v", workers, err)
	}
	return res
}

// chaosFingerprint extends Render with the recovery metrics, so trace
// comparisons also cover the retry/requeue accounting.
func chaosFingerprint(r coordinator.Result) string {
	return r.Render() + fmt.Sprintf(
		"retries=%d requeues=%d quarantined=%d retry-bytes=%d recovery-sec=%.6f\n",
		r.Retries, r.Requeues, r.QuarantinedDevices, r.RetryBytes, r.RecoverySec)
}

// TestChaosTraceIdenticalAcrossWorkers is the hostile determinism gate:
// the same chaos seed must produce a bit-identical trace whether the
// execution plane is serialized, sized to GOMAXPROCS, or oversized.
// Fault outcomes may depend only on the decision-plane sequence, never
// on goroutine interleaving.
func TestChaosTraceIdenticalAcrossWorkers(t *testing.T) {
	var base string
	for _, workers := range []int{1, 0, 16} {
		res := runHostile(t, workers, hostilePlan(7), hostileRecovery())
		got := chaosFingerprint(res)
		if base == "" {
			base = got
		} else if got != base {
			t.Fatalf("workers=%d: hostile trace diverged from the workers=1 run", workers)
		}
	}
}

// TestChaosSeedControlsTrace: equal seeds replay the exact run;
// changing only the seed changes the injected fault pattern.
func TestChaosSeedControlsTrace(t *testing.T) {
	a := chaosFingerprint(runHostile(t, 1, hostilePlan(7), hostileRecovery()))
	b := chaosFingerprint(runHostile(t, 1, hostilePlan(7), hostileRecovery()))
	if a != b {
		t.Fatal("same chaos seed produced different traces")
	}
	c := chaosFingerprint(runHostile(t, 1, hostilePlan(8), hostileRecovery()))
	if c == a {
		t.Fatal("different chaos seeds produced identical traces; the seed is not reaching the fault streams")
	}
}

// TestChaosNoSilentLoss: under the hostile plan every job must end in
// an explicit state — bit-verified complete, or carrying a lost/reject
// timeline event. A job that just vanishes is a coordinator bug.
func TestChaosNoSilentLoss(t *testing.T) {
	res := runHostile(t, 1, hostilePlan(7), hostileRecovery())
	terminal := map[string]bool{}
	for _, e := range res.Timeline {
		if e.Kind == coordinator.EvLost || e.Kind == coordinator.EvReject {
			terminal[e.Job] = true
		}
	}
	completed := 0
	for _, js := range res.Jobs {
		if js.Completed {
			completed++
			continue
		}
		if !terminal[js.Name] {
			t.Errorf("job %s neither completed nor has an explicit lost/reject event", js.Name)
		}
	}
	if completed == 0 {
		t.Fatal("no job completed under the hostile plan; fault rates are implausibly destructive")
	}
}

// TestChaosRetryBudgetBuysCompletions compares retry-off against
// retry-on under an aggressive store fault rate: the retry budget must
// convert injected faults into retries (not aborts) and complete at
// least as many jobs, exercising rollback + requeue on the retry-off
// side.
func TestChaosRetryBudgetBuysCompletions(t *testing.T) {
	plan := hostilePlan(7)
	plan.StoreFaultRate = 0.02

	off := runHostile(t, 1, plan, coordinator.RecoveryPolicy{
		MaxAttempts:        1,
		MaxRequeues:        3,
		SuspicionThreshold: 2,
	})
	on := runHostile(t, 1, plan, hostileRecovery())

	count := func(r coordinator.Result) int {
		n := 0
		for _, js := range r.Jobs {
			if js.Completed {
				n++
			}
		}
		return n
	}
	if on.Retries == 0 {
		t.Error("retry-enabled run recorded no retries at a 2% fault rate")
	}
	if off.Requeues == 0 {
		t.Error("retry-off run recorded no requeues at a 2% fault rate; aborts are not degrading gracefully")
	}
	if count(on) < count(off) {
		t.Errorf("retry budget lost jobs: %d completed with retries vs %d without", count(on), count(off))
	}
	if on.RecoverySec == 0 {
		t.Error("retry-enabled run charged no recovery time despite retries")
	}
}

// TestChaosQuarantineFlappingDevice: a device that flaps past the
// suspicion threshold must be quarantined at its next recovery instead
// of re-leased, and counted in the result.
func TestChaosQuarantineFlappingDevice(t *testing.T) {
	res := runHostile(t, 1, hostilePlan(7), hostileRecovery())
	found := false
	for _, e := range res.Timeline {
		if e.Kind == coordinator.EvQuarantine {
			found = true
		}
	}
	if !found {
		t.Error("no quarantine event despite a device flapping past the suspicion threshold")
	}
	if res.QuarantinedDevices == 0 {
		t.Error("Result.QuarantinedDevices is zero")
	}
}

// TestChaosHostileEventsPresent: the plan's spot reclamation and link
// weather must surface in the timeline (notice, degrade and restore),
// and the flap must produce at least one clean device recovery before
// quarantine kicks in.
func TestChaosHostileEventsPresent(t *testing.T) {
	res := runHostile(t, 1, hostilePlan(7), hostileRecovery())
	kinds := map[string]int{}
	for _, e := range res.Timeline {
		kinds[e.Kind]++
	}
	for _, k := range []string{
		coordinator.EvSpotNotice,
		coordinator.EvLinkDegrade,
		coordinator.EvLinkRestore,
		coordinator.EvDevRecover,
	} {
		if kinds[k] == 0 {
			t.Errorf("timeline has no %q event", k)
		}
	}
}

// TestChaosDeviceDiesDuringRecovery injects a second device failure
// half a minute after the first — inside the first recovery's downtime
// window — while a high store fault rate forces retries and aborts
// during the recovery transforms themselves. The run must still end
// with every job explicitly accounted, restoring aborted recoveries
// from the last bit-verified checkpoint.
func TestChaosDeviceDiesDuringRecovery(t *testing.T) {
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	plan := &chaos.Plan{
		Seed:           11,
		StoreFaultRate: 0.03,
		Flaps: []chaos.DeviceFlap{
			// The scenario's base failure hits device 7 at t=60; these
			// two take out neighboring devices at 60.5 and 61, so
			// recovery reconfigurations overlap further loss.
			{Device: 6, FailMin: 60.5, DownMin: 30},
			{Device: 5, FailMin: 61, DownMin: 30},
		},
	}
	pol := coordinator.RecoveryPolicy{
		MaxAttempts:        2,
		BackoffSec:         2,
		MaxBackoffSec:      8,
		MaxRequeues:        4,
		SuspicionThreshold: 3,
	}
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Chaos:    plan,
		Recovery: pol,
	})
	if err != nil {
		t.Fatalf("cascading-failure run: %v", err)
	}
	if res.Retries == 0 && res.Requeues == 0 {
		t.Error("3% fault rate with a 2-attempt budget produced neither retries nor requeues")
	}
	terminal := map[string]bool{}
	for _, e := range res.Timeline {
		if e.Kind == coordinator.EvLost || e.Kind == coordinator.EvReject {
			terminal[e.Job] = true
		}
	}
	for _, js := range res.Jobs {
		if !js.Completed && !terminal[js.Name] {
			t.Errorf("job %s lost silently during cascading failures", js.Name)
		}
	}
}

// TestChaosDisabledKeepsGoldenTrace: a non-zero RecoveryPolicy with no
// chaos plan must still reproduce the committed golden trace exactly.
// The transactional commit path (retry loop, outcome plumbing,
// re-admission machinery) has to be literally free when nothing fails.
func TestChaosDisabledKeepsGoldenTrace(t *testing.T) {
	topo, specs, failures := experiments.MultiJobScenario(32, 12, experiments.MultiJobSeed)
	res, err := coordinator.Run(topo, specs, failures, coordinator.Options{
		Recovery: hostileRecovery(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "multijob_fifo_32x12.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != string(want) {
		t.Fatal("recovery policy without chaos changed the default trace; the transactional path is not zero-cost")
	}
	if res.Retries != 0 || res.Requeues != 0 || res.RecoverySec != 0 {
		t.Fatalf("fault-free run accounted recovery work: retries=%d requeues=%d recovery-sec=%f",
			res.Retries, res.Requeues, res.RecoverySec)
	}
}
