package coordinator

import "sync"

// pool executes per-job task chains on a bounded set of workers. The
// event loop owns all decisions and ledger mutations and stays
// single-threaded; what fans out here is each job's state-management
// work — plan generation, the State Transformer, checkpointing and
// final verification. Tasks for the same job run strictly in
// submission order (a job's reconfigurations are causally dependent);
// tasks for different jobs run concurrently, since every job owns its
// own Tensor Stores, checkpoint storage and PTC.
type pool struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	tail map[string]chan struct{} // per-job: done channel of the last submitted task

	errMu sync.Mutex
	err   error // first task error; later tasks are skipped
}

// newPool builds a pool running at most workers tasks at once. workers
// must be >= 2; a serialized runtime (workers == 1) executes inline in
// the event loop and uses no pool at all.
func newPool(workers int) *pool {
	return &pool{
		sem:  make(chan struct{}, workers),
		tail: map[string]chan struct{}{},
	}
}

// submit appends fn to job's task chain. It never blocks: the task
// starts once its predecessor in the chain has finished and a worker
// slot is free. Only the event-loop goroutine may call submit.
func (p *pool) submit(job string, fn func() error) {
	p.mu.Lock()
	prev := p.tail[job]
	done := make(chan struct{})
	p.tail[job] = done
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer close(done)
		defer p.wg.Done()
		if prev != nil {
			<-prev
		}
		if p.firstErr() != nil {
			return // the run is aborting; don't touch more state
		}
		p.sem <- struct{}{}
		err := fn()
		<-p.sem
		if err != nil {
			p.fail(err)
		}
	}()
}

// drain blocks until job's chain is idle (all submitted tasks done).
func (p *pool) drain(job string) {
	p.mu.Lock()
	done := p.tail[job]
	p.mu.Unlock()
	if done != nil {
		<-done
	}
}

// drainAll blocks until every chain is idle and returns the first task
// error, if any. Only the event-loop goroutine may call it.
func (p *pool) drainAll() error {
	p.wg.Wait()
	return p.firstErr()
}

func (p *pool) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *pool) firstErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}
