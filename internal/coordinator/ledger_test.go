package coordinator

import (
	"testing"

	"tenplex/internal/cluster"
)

func TestLedgerLeaseReleaseLifecycle(t *testing.T) {
	topo := cluster.OnPrem16()
	l := NewLedger(topo)
	if l.FreeCount() != 16 || l.Healthy() != 16 || l.LeasedCount() != 0 {
		t.Fatalf("fresh ledger: free=%d healthy=%d leased=%d", l.FreeCount(), l.Healthy(), l.LeasedCount())
	}
	if err := l.Lease("a", 0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Lease("b", 4, 5); err != nil {
		t.Fatal(err)
	}
	if l.FreeCount() != 10 || l.LeasedCount() != 6 {
		t.Fatalf("after leases: free=%d leased=%d", l.FreeCount(), l.LeasedCount())
	}
	if owner, ok := l.Owner(2); !ok || owner != "a" {
		t.Fatalf("owner of 2 = %q, %v", owner, ok)
	}
	if got := l.Allocation("a"); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("allocation of a = %v", got)
	}
	if err := l.Release("a", 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := l.Allocation("a"); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("allocation of a after partial release = %v", got)
	}
	l.ReleaseAll("b")
	if l.FreeCount() != 14 {
		t.Fatalf("free after releases = %d", l.FreeCount())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerRejectsDoubleAllocation(t *testing.T) {
	l := NewLedger(cluster.OnPrem16())
	if err := l.Lease("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	// Another job must not get a device a holds.
	if err := l.Lease("b", 1, 2); err == nil {
		t.Fatal("double allocation accepted")
	}
	// The failed lease must be atomic: device 2 stays free.
	if owner, ok := l.Owner(2); ok {
		t.Fatalf("device 2 leaked to %q by a rejected lease", owner)
	}
	// Re-leasing to the same job is also a double allocation.
	if err := l.Lease("a", 1); err == nil {
		t.Fatal("re-lease of a held device accepted")
	}
	// Duplicate devices within one request.
	if err := l.Lease("b", 3, 3); err == nil {
		t.Fatal("duplicate device in lease accepted")
	}
	if err := l.Lease("", 4); err == nil {
		t.Fatal("empty job name accepted")
	}
	if err := l.Lease("b", 99); err == nil {
		t.Fatal("unknown device accepted")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerFailures(t *testing.T) {
	l := NewLedger(cluster.OnPrem16())
	if err := l.Lease("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if owner := l.MarkFailed(1); owner != "a" {
		t.Fatalf("failed device owner = %q", owner)
	}
	if got := l.Allocation("a"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("allocation after failure = %v", got)
	}
	if owner := l.MarkFailed(5); owner != "" {
		t.Fatalf("free device failure reported owner %q", owner)
	}
	if l.Healthy() != 14 {
		t.Fatalf("healthy = %d", l.Healthy())
	}
	// Failed devices can never be leased again.
	if err := l.Lease("b", 1); err == nil {
		t.Fatal("leased a failed device")
	}
	if err := l.Release("a", 1); err == nil {
		t.Fatal("released a device the job no longer holds")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerValidateDetectsCorruption(t *testing.T) {
	l := NewLedger(cluster.OnPrem16())
	if err := l.Lease("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Lease("b", 1); err != nil {
		t.Fatal(err)
	}
	// Force the double-allocation the API refuses, and require Validate
	// to catch it.
	l.leases["b"] = append(l.leases["b"], 0)
	if err := l.Validate(); err == nil {
		t.Fatal("validate missed a double allocation")
	}
	l.leases["b"] = l.leases["b"][:1]
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Owner map disagreeing with the lease list.
	l.owner[1] = "a"
	if err := l.Validate(); err == nil {
		t.Fatal("validate missed an owner mismatch")
	}
	l.owner[1] = "b"
	// A failed device inside a lease (failure state lives in the
	// topology; marking it there without releasing the lease is the
	// corruption).
	l.topo.MarkFailed(0)
	if err := l.Validate(); err == nil {
		t.Fatal("validate missed a failed leased device")
	}
}

func TestLedgerPickCompact(t *testing.T) {
	topo := cluster.OnPrem16() // 4 workers x 4 devices
	l := NewLedger(topo)
	// A 4-device pick fills exactly one worker.
	devs, ok := l.Pick(4, nil)
	if !ok || len(devs) != 4 {
		t.Fatalf("pick(4) = %v, %v", devs, ok)
	}
	if w := (cluster.Allocation(devs)).Workers(topo); len(w) != 1 {
		t.Fatalf("pick(4) spans workers %v", w)
	}
	if err := l.Lease("a", devs...); err != nil {
		t.Fatal(err)
	}
	// Preference pulls the pick towards the job's current workers.
	if err := l.Release("a", devs[3]); err != nil {
		t.Fatal(err)
	}
	got, ok := l.Pick(1, l.Allocation("a"))
	if !ok || len(got) != 1 || got[0] != devs[3] {
		t.Fatalf("preferred pick = %v, want %v", got, devs[3])
	}
	// Too large a pick fails.
	if _, ok := l.Pick(17, nil); ok {
		t.Fatal("pick(17) of 16 devices succeeded")
	}
}

func TestCandidateSets(t *testing.T) {
	topo := cluster.OnPrem16()
	l := NewLedger(topo)
	// Fragment the pool: worker 0 fully busy, worker 1 half busy.
	if err := l.Lease("a", topo.Workers[0].Devices...); err != nil {
		t.Fatal(err)
	}
	if err := l.Lease("b", topo.Workers[1].Devices[:2]...); err != nil {
		t.Fatal(err)
	}

	sets := l.CandidateSets(4, 8, nil)
	if len(sets) == 0 {
		t.Fatal("no candidate sets for a satisfiable request")
	}
	// The first candidate is always the count-based compact pick.
	pick, ok := l.Pick(4, nil)
	if !ok {
		t.Fatal("Pick failed")
	}
	if len(sets[0]) != len(pick) {
		t.Fatalf("first candidate has %d devices, Pick %d", len(sets[0]), len(pick))
	}
	for i := range pick {
		if sets[0][i] != pick[i] {
			t.Fatalf("first candidate %v differs from the count-based pick %v", sets[0], pick)
		}
	}
	seen := map[string]bool{}
	free := map[cluster.DeviceID]bool{}
	for _, d := range l.Free() {
		free[d] = true
	}
	for _, set := range sets {
		if len(set) != 4 {
			t.Fatalf("candidate %v has %d devices, want 4", set, len(set))
		}
		dup := map[cluster.DeviceID]bool{}
		for _, d := range set {
			if !free[d] {
				t.Fatalf("candidate %v uses non-free device %d", set, d)
			}
			if dup[d] {
				t.Fatalf("candidate %v lists device %d twice", set, d)
			}
			dup[d] = true
		}
		sig := set.Signature()
		if seen[sig] {
			t.Fatalf("duplicate candidate %v", set)
		}
		seen[sig] = true
	}
	// Deterministic across calls.
	again := l.CandidateSets(4, 8, nil)
	if len(again) != len(sets) {
		t.Fatalf("candidate count changed: %d vs %d", len(again), len(sets))
	}
	for i := range sets {
		for j := range sets[i] {
			if sets[i][j] != again[i][j] {
				t.Fatal("CandidateSets not deterministic")
			}
		}
	}
	// k bounds the enumeration; infeasible sizes yield nothing.
	if got := l.CandidateSets(4, 1, nil); len(got) != 1 {
		t.Fatalf("k=1 returned %d candidates", len(got))
	}
	if got := l.CandidateSets(11, 4, nil); got != nil {
		t.Fatalf("11 devices from %d free returned %v", l.FreeCount(), got)
	}
	if got := l.CandidateSets(0, 4, nil); got != nil {
		t.Fatal("n=0 returned candidates")
	}
}

// TestCandidateSetsPreferWorkers: candidates honoring the prefer hint
// lead with the preferred worker's devices, like Pick does.
func TestCandidateSetsPreferWorkers(t *testing.T) {
	topo := cluster.OnPrem16()
	l := NewLedger(topo)
	prefer := cluster.Allocation{topo.Workers[2].Devices[0]}
	sets := l.CandidateSets(2, 8, prefer)
	if len(sets) == 0 {
		t.Fatal("no candidates")
	}
	if w := topo.WorkerOf(sets[0][0]); w != 2 {
		t.Fatalf("first candidate starts on worker %d, preferred worker 2", w)
	}
}

// TestLedgerMarkFailedIdempotent: flapping devices and spot deadlines
// deliver duplicate fail events; repeats must not disturb leases,
// suspicion counts, or the topology generation.
func TestLedgerMarkFailedIdempotent(t *testing.T) {
	topo := cluster.OnPrem16()
	l := NewLedger(topo)
	if err := l.Lease("job", 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if owner := l.MarkFailed(1); owner != "job" {
		t.Fatalf("first MarkFailed returned owner %q, want job", owner)
	}
	gen := topo.Generation()
	if l.Suspicion(1) != 1 {
		t.Fatalf("suspicion after first failure = %d, want 1", l.Suspicion(1))
	}
	for i := 0; i < 3; i++ {
		if owner := l.MarkFailed(1); owner != "" {
			t.Fatalf("repeat MarkFailed returned owner %q, want none", owner)
		}
	}
	if topo.Generation() != gen {
		t.Fatal("repeat MarkFailed bumped the topology generation")
	}
	if l.Suspicion(1) != 1 {
		t.Fatalf("repeat MarkFailed counted extra suspicion: %d", l.Suspicion(1))
	}
	if got := l.Allocation("job"); len(got) != 2 {
		t.Fatalf("job lease after duplicate failures = %v, want 2 devices", got)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fail/recover cycles accumulate suspicion one per actual failure.
	l.MarkRecovered(1)
	if l.Failed(1) {
		t.Fatal("MarkRecovered did not revive the device")
	}
	if l.MarkFailed(1) != "" { // now free, so no owner
		t.Fatal("re-failed device reported an owner")
	}
	if l.Suspicion(1) != 2 {
		t.Fatalf("suspicion after second real failure = %d, want 2", l.Suspicion(1))
	}
}

// TestLedgerDraining: a draining device stays leased and healthy but
// leaves the free pool until it either recovers or actually dies.
func TestLedgerDraining(t *testing.T) {
	topo := cluster.OnPrem16()
	l := NewLedger(topo)
	free0 := l.FreeCount()
	l.SetDraining(5, true)
	if !l.Draining(5) {
		t.Fatal("SetDraining(5, true) did not stick")
	}
	if l.FreeCount() != free0-1 {
		t.Fatalf("free count with one draining device = %d, want %d", l.FreeCount(), free0-1)
	}
	for _, d := range l.Free() {
		if d == 5 {
			t.Fatal("draining device offered in Free()")
		}
	}
	// Draining devices can still be part of leases (they were leased
	// before the notice) and Healthy still counts them.
	if l.Healthy() != topo.NumDevices() {
		t.Fatalf("draining device dropped from Healthy(): %d", l.Healthy())
	}
	// Death clears the draining mark; recovery via SetDraining(false)
	// restores the free pool.
	l.MarkFailed(5)
	if l.Draining(5) {
		t.Fatal("failed device still marked draining")
	}
	l.SetDraining(6, true)
	l.SetDraining(6, false)
	if l.FreeCount() != free0-1 { // only device 5 (failed) is gone
		t.Fatalf("free count after drain round trip = %d, want %d", l.FreeCount(), free0-1)
	}
}
