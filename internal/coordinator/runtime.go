package coordinator

import (
	"fmt"
	"time"

	"tenplex/internal/chaos"
	"tenplex/internal/checkpoint"
	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/obs"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/transform"
)

// jobRuntime is one managed job's Tenplex state-management stack inside
// the coordinator: per-device Tensor Stores, a blob store standing in
// for remote checkpoint storage, and the current PTC. Every allocation
// change the coordinator decides flows through the same path a
// standalone tenplex.Job uses — parallel.BuildPTC, core.AlignDevices +
// core.GeneratePlan, and transform.Transformer over the stores — so the
// control plane exercises the real reconfiguration machinery, not a
// model of it.
type jobRuntime struct {
	name    string
	model   *model.Model
	topo    *cluster.Topology
	stores  map[cluster.DeviceID]store.Access
	storage store.Local

	ptc   *core.PTC
	cfg   parallel.Config
	alloc cluster.Allocation
	step  int

	// lastPlan is the most recent plan generated against the CURRENT ptc
	// (same *PTC value). The coordinator prices several candidate changes
	// against one source state before committing any of them, and
	// core.DiffPlan replays the untouched sub-tensors from this plan
	// instead of replanning them. A commit replaces r.ptc, so the cached
	// plan's pointer-identity guard expires it automatically.
	lastPlan *core.Plan

	// Observability: the run's metrics registry (nil when off) and the
	// chain's current task scope — each task the decision plane fans
	// out installs its parent span here, and the wrapped stores parent
	// their per-op spans under it.
	metrics  *obs.Registry
	obsScope obs.ScopeVar
}

// newJobRuntime builds a job's state-management runtime. mk, when
// non-nil, supplies the per-device Tensor Store (the service points it
// at remote tenplex-store servers); nil keeps the in-memory default.
// The checkpoint blob store stays in-process either way — it is the
// durability anchor rollback and restore depend on.
func newJobRuntime(name string, m *model.Model, topo *cluster.Topology, mk func(job string, dev cluster.DeviceID) store.Access) *jobRuntime {
	r := &jobRuntime{
		name:    name,
		model:   m,
		topo:    topo,
		stores:  map[cluster.DeviceID]store.Access{},
		storage: store.Local{FS: store.NewMemFS()},
	}
	for _, d := range topo.Devices {
		if mk != nil {
			r.stores[d.ID] = mk(name, d.ID)
		} else {
			r.stores[d.ID] = store.Local{FS: store.NewMemFS()}
		}
	}
	return r
}

// wrapStores installs chaos fault injection on every device store. The
// checkpoint blob store (r.storage) stays unwrapped: remote checkpoint
// storage is the durability anchor rollback and restore depend on.
func (r *jobRuntime) wrapStores(inj *chaos.Injector) {
	for d, acc := range r.stores {
		r.stores[d] = inj.WrapAccess(r.name, fmt.Sprintf("dev%d", d), acc)
	}
}

// observeStores installs per-operation datapath spans on every device
// store. It wraps OUTSIDE any chaos wrapper, so injected faults appear
// in the trace as the failed store operations they manifest as.
func (r *jobRuntime) observeStores() {
	for d, acc := range r.stores {
		r.stores[d] = store.Observe(acc, fmt.Sprintf("dev%d", d), &r.obsScope)
	}
}

// initState builds the job's deterministic initial tensors from seed.
// FillRandDense keeps the per-tensor RNG setup off the admission path:
// a job materializes its whole state here, and with many jobs deploying
// the generator cost is a measurable slice of the control plane.
func initState(m *model.Model, seed int64) map[core.TensorID]*tensor.Tensor {
	init := map[core.TensorID]*tensor.Tensor{}
	for i, lp := range m.StateParams() {
		t := tensor.New(lp.Param.DType, lp.Param.Shape...)
		t.FillRandDense(seed+int64(i), 0.05)
		init[core.TensorID(lp.Path())] = t
	}
	return init
}

// deploy places the job on its first lease and persists a baseline
// checkpoint so a later fail-stop recovery always has a storage
// fallback for ranges whose replicas are all lost.
func (r *jobRuntime) deploy(cfg parallel.Config, alloc cluster.Allocation, init map[core.TensorID]*tensor.Tensor) error {
	ptc, err := parallel.BuildPTC(r.model, cfg, alloc)
	if err != nil {
		return fmt.Errorf("coordinator: deploy %s: %w", r.name, err)
	}
	if err := transform.LoadPTC(r.name, ptc, r.stores, init); err != nil {
		return fmt.Errorf("coordinator: deploy %s: %w", r.name, err)
	}
	r.ptc, r.cfg, r.alloc = ptc, cfg, append(cluster.Allocation(nil), alloc...)
	if err := checkpoint.Save(r.storage, r.name, r.step, r.ptc, r.stores); err != nil {
		return fmt.Errorf("coordinator: checkpoint %s: %w", r.name, err)
	}
	return nil
}

// change is a costed, validated, not-yet-applied allocation change: the
// coordinator prices it with netsim, decides, and only then commits.
type change struct {
	cfg    parallel.Config
	alloc  cluster.Allocation
	from   *core.PTC
	to     *core.PTC
	plan   *core.Plan
	stats  core.Stats
	simSec float64
	// storageOK marks a recovery plan that may read lost ranges back
	// from the latest checkpoint.
	storageOK bool
	// planNs and applyNs are wall-clock costs of planning and of all
	// transform/restore attempts, for trace attribution. applyNs is
	// written by the job's chain and read by the event loop only after
	// the outcome publication barrier (pendingChange.out), never while
	// the chain may still be writing.
	planNs  int64
	applyNs int64
}

// planChange computes and prices the reconfiguration onto (cfg, alloc)
// without touching any store. When failed is non-empty the source PTC
// is degraded to the surviving replicas and the plan may fall back to
// checkpoint reads (fail-stop recovery). The returned plan has been
// validated.
func (r *jobRuntime) planChange(cfg parallel.Config, alloc cluster.Allocation, failed []cluster.DeviceID) (*change, error) {
	if r.ptc == nil {
		return nil, fmt.Errorf("coordinator: job %s not deployed", r.name)
	}
	planStart := time.Now()
	from := r.ptc
	storageOK := false
	if len(failed) > 0 {
		from = r.ptc.WithoutDevices(failed...)
		storageOK = true
	}
	to, err := parallel.BuildPTC(r.model, cfg, alloc)
	if err != nil {
		return nil, fmt.Errorf("coordinator: plan %s: %w", r.name, err)
	}
	to = core.AlignDevices(from, to)
	plan, err := core.DiffPlan(r.lastPlan, from, to, core.PlanOptions{Topo: r.topo, StorageFallback: storageOK})
	if err != nil {
		return nil, fmt.Errorf("coordinator: plan %s: %w", r.name, err)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("coordinator: plan %s invalid: %w", r.name, err)
	}
	if from == r.ptc {
		// Degraded sources (failure recovery) are one-shot PTCs and not
		// worth caching; repeat pricing always plans against r.ptc.
		r.lastPlan = plan
	}
	return &change{
		cfg:       cfg,
		alloc:     append(cluster.Allocation(nil), alloc...),
		from:      from,
		to:        to,
		plan:      plan,
		stats:     plan.Stats(r.topo),
		simSec:    netsim.Simulate(r.topo, plan.Flows(r.topo)).Seconds,
		storageOK: storageOK,
		planNs:    time.Since(planStart).Nanoseconds(),
	}, nil
}

// commit executes a previously costed change through the State
// Transformer and re-checkpoints the new placement, so the next
// failure recovers against the current layout.
func (r *jobRuntime) commit(ch *change) error { return r.commitAttempt(ch, nil, 0) }

// commitAttempt is one transform attempt of a change. With an injector
// the armed window covers exactly the transform: the checkpoint save
// that follows — and every rollback/restore — runs disarmed, so the
// recovery path itself is reliable and degradation stays bounded.
func (r *jobRuntime) commitAttempt(ch *change, inj *chaos.Injector, key uint64) error {
	applyStart := time.Now()
	defer func() { ch.applyNs += time.Since(applyStart).Nanoseconds() }()
	tr := &transform.Transformer{Job: r.name, Stores: r.stores,
		Metrics: r.metrics, Obs: r.obsScope.Get()}
	if ch.storageOK {
		if step, err := checkpoint.Latest(r.storage, r.name); err == nil {
			if rd, err := checkpoint.Open(r.storage, r.name, step); err == nil {
				tr.Storage = rd
			}
		}
	}
	if inj != nil {
		inj.BeginAttempt(r.name, key)
	}
	_, err := tr.Apply(ch.plan)
	if inj != nil {
		inj.EndAttempt(r.name)
	}
	if err != nil {
		return fmt.Errorf("coordinator: transform %s: %w", r.name, err)
	}
	r.ptc, r.cfg, r.alloc = ch.to, ch.cfg, ch.alloc
	r.step++
	if err := checkpoint.Save(r.storage, r.name, r.step, r.ptc, r.stores); err != nil {
		return fmt.Errorf("coordinator: checkpoint %s: %w", r.name, err)
	}
	return nil
}

// commitOutcome is what a job's chain reports back to the event loop
// about one transactional commit: how many transform attempts ran,
// whether the change was aborted (the runtime rolled back to its last
// bit-verified checkpoint), and the last attempt's error when it was.
// A non-nil err without aborted is fatal — legacy fail-fast mode, or a
// failed rollback.
type commitOutcome struct {
	attempts int
	aborted  bool
	err      error
}

// commitRetry is the transactional commit: up to MaxAttempts transform
// attempts, each armed as its own chaos attempt keyed off decision-
// plane state (keyBase), with a rollback to the last checkpoint between
// attempts. r.ptc only advances on success, so a failed attempt leaves
// the runtime exactly at its pre-change state. Exhausting the budget
// yields an aborted outcome — graceful degradation the event loop
// turns into a requeue — rather than a chain error.
func (r *jobRuntime) commitRetry(ch *change, inj *chaos.Injector, pol RecoveryPolicy, keyBase uint64) commitOutcome {
	if inj == nil && pol.MaxAttempts <= 1 {
		// Legacy fail-fast: no chaos, no retry budget.
		return commitOutcome{attempts: 1, err: r.commit(ch)}
	}
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 1; i <= attempts; i++ {
		err = r.commitAttempt(ch, inj, keyBase+uint64(i))
		if err == nil {
			return commitOutcome{attempts: i}
		}
		if rbErr := r.rollback(); rbErr != nil {
			return commitOutcome{attempts: i,
				err: fmt.Errorf("coordinator: rollback of %s failed: %v (after %v)", r.name, rbErr, err)}
		}
	}
	return commitOutcome{attempts: attempts, aborted: true, err: err}
}

// rollback wipes the job's (possibly half-destroyed) store state and
// reloads the latest checkpoint under the runtime's current PTC — the
// commit path only advances r.ptc and saves on success, so the latest
// checkpoint always matches r.ptc. Runs disarmed.
func (r *jobRuntime) rollback() error {
	for _, acc := range r.stores {
		_ = acc.Delete(transform.ModelRoot(r.name))   // may not exist
		_ = acc.Delete(transform.StagingRoot(r.name)) // may not exist
	}
	step, err := checkpoint.Latest(r.storage, r.name)
	if err != nil {
		return err
	}
	rd, err := checkpoint.Open(r.storage, r.name, step)
	if err != nil {
		return err
	}
	return checkpoint.Restore(rd, r.name, r.ptc, r.stores)
}

// planRestore prices re-deploying a requeued job from its latest
// checkpoint onto a fresh placement: every sub-tensor of the new PTC
// streams from remote checkpoint storage to its device, replicas
// included — exactly what commitRestore moves.
func (r *jobRuntime) planRestore(cfg parallel.Config, alloc cluster.Allocation) (*change, error) {
	to, err := parallel.BuildPTC(r.model, cfg, alloc)
	if err != nil {
		return nil, fmt.Errorf("coordinator: restore plan %s: %w", r.name, err)
	}
	var flows []netsim.Flow
	var bytes int64
	for _, d := range to.Devices {
		for _, s := range to.Place[d] {
			meta, ok := to.Tensors[s.Tensor]
			if !ok {
				return nil, fmt.Errorf("coordinator: restore plan %s: no metadata for %q", r.name, s.Tensor)
			}
			n := tensor.ShapeNumBytes(meta.DType, s.Region.Shape())
			flows = append(flows, netsim.Flow{From: netsim.StorageEP(), To: netsim.DevEP(d), Bytes: n})
			bytes += n
		}
	}
	return &change{
		cfg:       cfg,
		alloc:     append(cluster.Allocation(nil), alloc...),
		to:        to,
		stats:     core.Stats{StorageBytes: bytes, MovedBytes: bytes},
		simSec:    netsim.Simulate(r.topo, flows).Seconds,
		storageOK: true,
	}, nil
}

// commitRestore redeploys the job from its latest checkpoint: wipe any
// stale store state, stream the checkpoint in under the new PTC, and
// re-checkpoint at the new layout so the next failure recovers against
// it. It runs disarmed, so re-admitting a degraded job always lands.
func (r *jobRuntime) commitRestore(ch *change) error {
	applyStart := time.Now()
	defer func() { ch.applyNs += time.Since(applyStart).Nanoseconds() }()
	for _, acc := range r.stores {
		_ = acc.Delete(transform.ModelRoot(r.name))
		_ = acc.Delete(transform.StagingRoot(r.name))
	}
	step, err := checkpoint.Latest(r.storage, r.name)
	if err != nil {
		return fmt.Errorf("coordinator: restore %s: %w", r.name, err)
	}
	rd, err := checkpoint.Open(r.storage, r.name, step)
	if err != nil {
		return fmt.Errorf("coordinator: restore %s: %w", r.name, err)
	}
	if err := checkpoint.Restore(rd, r.name, ch.to, r.stores); err != nil {
		return fmt.Errorf("coordinator: restore %s: %w", r.name, err)
	}
	r.ptc, r.cfg, r.alloc = ch.to, ch.cfg, ch.alloc
	r.step++
	if err := checkpoint.Save(r.storage, r.name, r.step, r.ptc, r.stores); err != nil {
		return fmt.Errorf("coordinator: checkpoint %s: %w", r.name, err)
	}
	return nil
}

// verifyState reassembles the job's full logical tensors and checks
// them against the initial state — the end-to-end correctness oracle
// run at job completion.
func (r *jobRuntime) verifyState(init map[core.TensorID]*tensor.Tensor) error {
	got, err := transform.ReadPTC(r.name, r.ptc, r.stores)
	if err != nil {
		return fmt.Errorf("coordinator: read state of %s: %w", r.name, err)
	}
	for id, want := range init {
		t, ok := got[id]
		if !ok {
			return fmt.Errorf("coordinator: %s lost tensor %s", r.name, id)
		}
		if !t.Equal(want) {
			return fmt.Errorf("coordinator: %s corrupted tensor %s", r.name, id)
		}
	}
	return nil
}
