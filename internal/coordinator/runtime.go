package coordinator

import (
	"fmt"

	"tenplex/internal/checkpoint"
	"tenplex/internal/cluster"
	"tenplex/internal/core"
	"tenplex/internal/model"
	"tenplex/internal/netsim"
	"tenplex/internal/parallel"
	"tenplex/internal/store"
	"tenplex/internal/tensor"
	"tenplex/internal/transform"
)

// jobRuntime is one managed job's Tenplex state-management stack inside
// the coordinator: per-device Tensor Stores, a blob store standing in
// for remote checkpoint storage, and the current PTC. Every allocation
// change the coordinator decides flows through the same path a
// standalone tenplex.Job uses — parallel.BuildPTC, core.AlignDevices +
// core.GeneratePlan, and transform.Transformer over the stores — so the
// control plane exercises the real reconfiguration machinery, not a
// model of it.
type jobRuntime struct {
	name    string
	model   *model.Model
	topo    *cluster.Topology
	stores  map[cluster.DeviceID]store.Access
	storage store.Local

	ptc   *core.PTC
	cfg   parallel.Config
	alloc cluster.Allocation
	step  int
}

func newJobRuntime(name string, m *model.Model, topo *cluster.Topology) *jobRuntime {
	r := &jobRuntime{
		name:    name,
		model:   m,
		topo:    topo,
		stores:  map[cluster.DeviceID]store.Access{},
		storage: store.Local{FS: store.NewMemFS()},
	}
	for _, d := range topo.Devices {
		r.stores[d.ID] = store.Local{FS: store.NewMemFS()}
	}
	return r
}

// initState builds the job's deterministic initial tensors from seed.
// FillRandDense keeps the per-tensor RNG setup off the admission path:
// a job materializes its whole state here, and with many jobs deploying
// the generator cost is a measurable slice of the control plane.
func initState(m *model.Model, seed int64) map[core.TensorID]*tensor.Tensor {
	init := map[core.TensorID]*tensor.Tensor{}
	for i, lp := range m.StateParams() {
		t := tensor.New(lp.Param.DType, lp.Param.Shape...)
		t.FillRandDense(seed+int64(i), 0.05)
		init[core.TensorID(lp.Path())] = t
	}
	return init
}

// deploy places the job on its first lease and persists a baseline
// checkpoint so a later fail-stop recovery always has a storage
// fallback for ranges whose replicas are all lost.
func (r *jobRuntime) deploy(cfg parallel.Config, alloc cluster.Allocation, init map[core.TensorID]*tensor.Tensor) error {
	ptc, err := parallel.BuildPTC(r.model, cfg, alloc)
	if err != nil {
		return fmt.Errorf("coordinator: deploy %s: %w", r.name, err)
	}
	if err := transform.LoadPTC(r.name, ptc, r.stores, init); err != nil {
		return fmt.Errorf("coordinator: deploy %s: %w", r.name, err)
	}
	r.ptc, r.cfg, r.alloc = ptc, cfg, append(cluster.Allocation(nil), alloc...)
	if err := checkpoint.Save(r.storage, r.name, r.step, r.ptc, r.stores); err != nil {
		return fmt.Errorf("coordinator: checkpoint %s: %w", r.name, err)
	}
	return nil
}

// change is a costed, validated, not-yet-applied allocation change: the
// coordinator prices it with netsim, decides, and only then commits.
type change struct {
	cfg    parallel.Config
	alloc  cluster.Allocation
	from   *core.PTC
	to     *core.PTC
	plan   *core.Plan
	stats  core.Stats
	simSec float64
	// storageOK marks a recovery plan that may read lost ranges back
	// from the latest checkpoint.
	storageOK bool
}

// planChange computes and prices the reconfiguration onto (cfg, alloc)
// without touching any store. When failed is non-empty the source PTC
// is degraded to the surviving replicas and the plan may fall back to
// checkpoint reads (fail-stop recovery). The returned plan has been
// validated.
func (r *jobRuntime) planChange(cfg parallel.Config, alloc cluster.Allocation, failed []cluster.DeviceID) (*change, error) {
	if r.ptc == nil {
		return nil, fmt.Errorf("coordinator: job %s not deployed", r.name)
	}
	from := r.ptc
	storageOK := false
	if len(failed) > 0 {
		from = r.ptc.WithoutDevices(failed...)
		storageOK = true
	}
	to, err := parallel.BuildPTC(r.model, cfg, alloc)
	if err != nil {
		return nil, fmt.Errorf("coordinator: plan %s: %w", r.name, err)
	}
	to = core.AlignDevices(from, to)
	plan, err := core.GeneratePlan(from, to, core.PlanOptions{Topo: r.topo, StorageFallback: storageOK})
	if err != nil {
		return nil, fmt.Errorf("coordinator: plan %s: %w", r.name, err)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("coordinator: plan %s invalid: %w", r.name, err)
	}
	return &change{
		cfg:       cfg,
		alloc:     append(cluster.Allocation(nil), alloc...),
		from:      from,
		to:        to,
		plan:      plan,
		stats:     plan.Stats(r.topo),
		simSec:    netsim.Simulate(r.topo, plan.Flows(r.topo)).Seconds,
		storageOK: storageOK,
	}, nil
}

// commit executes a previously costed change through the State
// Transformer and re-checkpoints the new placement, so the next
// failure recovers against the current layout.
func (r *jobRuntime) commit(ch *change) error {
	tr := &transform.Transformer{Job: r.name, Stores: r.stores}
	if ch.storageOK {
		if step, err := checkpoint.Latest(r.storage, r.name); err == nil {
			if rd, err := checkpoint.Open(r.storage, r.name, step); err == nil {
				tr.Storage = rd
			}
		}
	}
	if _, err := tr.Apply(ch.plan); err != nil {
		return fmt.Errorf("coordinator: transform %s: %w", r.name, err)
	}
	r.ptc, r.cfg, r.alloc = ch.to, ch.cfg, ch.alloc
	r.step++
	if err := checkpoint.Save(r.storage, r.name, r.step, r.ptc, r.stores); err != nil {
		return fmt.Errorf("coordinator: checkpoint %s: %w", r.name, err)
	}
	return nil
}

// verifyState reassembles the job's full logical tensors and checks
// them against the initial state — the end-to-end correctness oracle
// run at job completion.
func (r *jobRuntime) verifyState(init map[core.TensorID]*tensor.Tensor) error {
	got, err := transform.ReadPTC(r.name, r.ptc, r.stores)
	if err != nil {
		return fmt.Errorf("coordinator: read state of %s: %w", r.name, err)
	}
	for id, want := range init {
		t, ok := got[id]
		if !ok {
			return fmt.Errorf("coordinator: %s lost tensor %s", r.name, id)
		}
		if !t.Equal(want) {
			return fmt.Errorf("coordinator: %s corrupted tensor %s", r.name, id)
		}
	}
	return nil
}
