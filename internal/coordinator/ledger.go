package coordinator

import (
	"fmt"
	"math/bits"
	"sort"

	"tenplex/internal/cluster"
)

// Ledger is the coordinator's device ownership book: every GPU of the
// shared topology is free, leased to exactly one job, or failed. All
// mutations go through Lease / Release / MarkFailed, which reject any
// transition that would double-allocate a device; Validate cross-checks
// the two internal views so the event loop can assert the invariant
// after every event. Failure state lives in the topology itself
// (cluster.Topology.MarkFailed/FailedDevice) — the one source of truth
// the ledger, the placement scorer and the perfmodel cache generations
// all read. The Ledger is mutated only by the coordinator's event loop
// and is therefore not internally locked.
//
// For datacenter-scale topologies the ledger maintains the free pool
// incrementally instead of rescanning every device per decision:
// per-worker free-device lists, per-count worker bitmaps (so "workers
// with the most/fewest free devices" resolves by scanning a handful of
// machine words instead of sorting all workers), and per-rack free
// totals. Mutations only mark the touched workers dirty; the summaries
// are lazily re-derived for exactly those workers at the next query —
// the update-vs-recompute structure that keeps per-decision cost flat
// in cluster size. The from-scratch enumeration is retained
// (candidateSetsScratch) and property-tested byte-identical.
type Ledger struct {
	topo   *cluster.Topology
	owner  map[cluster.DeviceID]string   // "" or absent = free
	leases map[string]cluster.Allocation // per-job devices, lease order
	// suspicion counts observed failures per device; a flapping device
	// accumulates one per actual fail transition (duplicates are not
	// counted) and the coordinator's failure detector quarantines it
	// once the count reaches its threshold.
	suspicion map[cluster.DeviceID]int
	// draining devices are healthy but excluded from the free pool —
	// a spot-reclamation notice has promised their disappearance.
	draining map[cluster.DeviceID]bool

	// leased counts devices currently held by jobs, maintained on every
	// mutation so LeasedCount is O(1) (the event loop reads it per
	// event for utilization integration).
	leased int

	// Incremental free-pool summaries, derived lazily from owner /
	// failed / draining state. freeByWorker[w] holds worker w's free
	// devices in ID order; countOf[w] its length (-1 before first
	// sync); buckets[c] the set of workers with exactly c free devices;
	// rackFree the per-rack free totals (hierarchical topologies).
	// dirty is the set of workers whose summaries are stale; allDirty
	// forces a full rebuild (first sync, or an out-of-band topology
	// mutation detected via genSeen).
	freeByWorker [][]cluster.DeviceID
	countOf      []int
	buckets      []workerBits
	rackFree     []int
	freeCount    int
	dirty        map[int]struct{}
	allDirty     bool
	genSeen      uint64
}

// workerBits is a bitmap over worker indices; buckets use it so the
// "workers with c free devices" sets support O(1) insert/remove and
// ID-ordered iteration by scanning words.
type workerBits []uint64

func newWorkerBits(n int) workerBits { return make(workerBits, (n+63)/64) }

func (b workerBits) set(w int)   { b[w>>6] |= 1 << uint(w&63) }
func (b workerBits) clear(w int) { b[w>>6] &^= 1 << uint(w&63) }

func (b workerBits) count() int {
	n := 0
	for _, word := range b {
		n += bits.OnesCount64(word)
	}
	return n
}

// ascend calls f for every set worker in ascending ID order, stopping
// when f returns false.
func (b workerBits) ascend(f func(w int) bool) {
	for i, word := range b {
		for word != 0 {
			w := i<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if !f(w) {
				return
			}
		}
	}
}

// NewLedger starts with every device of the topology free; device
// health is read from (and written through to) the topology.
func NewLedger(topo *cluster.Topology) *Ledger {
	return &Ledger{
		topo:     topo,
		owner:    map[cluster.DeviceID]string{},
		leases:   map[string]cluster.Allocation{},
		dirty:    map[int]struct{}{},
		allDirty: true,
	}
}

// markDirty flags device d's worker for lazy summary refresh.
func (l *Ledger) markDirty(d cluster.DeviceID) {
	if l.allDirty {
		return
	}
	l.dirty[l.topo.WorkerOf(d)] = struct{}{}
}

// sync brings the free-pool summaries up to date: only workers touched
// since the last query are re-derived. A topology generation the
// ledger's own mutations don't account for (health mutated behind the
// ledger's back) conservatively rebuilds everything.
func (l *Ledger) sync() {
	if l.freeByWorker == nil {
		nw := l.topo.NumWorkers()
		l.freeByWorker = make([][]cluster.DeviceID, nw)
		l.countOf = make([]int, nw)
		for i := range l.countOf {
			l.countOf[i] = -1
		}
		maxPer := 0
		for i := range l.topo.Workers {
			if n := len(l.topo.Workers[i].Devices); n > maxPer {
				maxPer = n
			}
		}
		l.buckets = make([]workerBits, maxPer+1)
		for c := range l.buckets {
			l.buckets[c] = newWorkerBits(nw)
		}
		l.rackFree = make([]int, l.topo.NumRacks())
		l.allDirty = true
	}
	if g := l.topo.Generation(); g != l.genSeen {
		l.allDirty = true
		l.genSeen = g
	}
	if l.allDirty {
		for w := range l.freeByWorker {
			l.rebuildWorker(w)
		}
		l.allDirty = false
		for w := range l.dirty {
			delete(l.dirty, w)
		}
		return
	}
	for w := range l.dirty {
		l.rebuildWorker(w)
		delete(l.dirty, w)
	}
}

// rebuildWorker re-derives one worker's free list (worker device lists
// are ID-ascending by construction, so the result is too) and moves the
// worker between count buckets.
func (l *Ledger) rebuildWorker(w int) {
	list := l.freeByWorker[w][:0]
	for _, d := range l.topo.Workers[w].Devices {
		if l.owner[d] == "" && !l.topo.FailedDevice(d) && !l.draining[d] {
			list = append(list, d)
		}
	}
	l.freeByWorker[w] = list
	n := len(list)
	old := l.countOf[w]
	if old == n {
		return
	}
	if old >= 0 {
		l.buckets[old].clear(w)
		l.freeCount -= old
		l.rackFree[l.topo.RackOf(w)] -= old
	}
	l.buckets[n].set(w)
	l.countOf[w] = n
	l.freeCount += n
	l.rackFree[l.topo.RackOf(w)] += n
}

// Free returns the healthy, unleased, non-draining devices in ID order.
func (l *Ledger) Free() []cluster.DeviceID {
	l.sync()
	out := make([]cluster.DeviceID, 0, l.freeCount)
	sorted := true
	for w := range l.freeByWorker {
		for _, d := range l.freeByWorker[w] {
			if len(out) > 0 && d < out[len(out)-1] {
				sorted = false
			}
			out = append(out, d)
		}
	}
	if !sorted {
		// Device IDs are worker-major in every constructor, so this is
		// only reachable for hand-built exotic topologies.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// freeScratch is the retained from-scratch free scan, the reference
// the incremental summaries are property-tested against.
func (l *Ledger) freeScratch() []cluster.DeviceID {
	var out []cluster.DeviceID
	for _, d := range l.topo.Devices {
		if l.owner[d.ID] == "" && !l.topo.FailedDevice(d.ID) && !l.draining[d.ID] {
			out = append(out, d.ID)
		}
	}
	return out
}

// FreeCount returns the number of healthy, unleased devices, O(1)
// after the lazy summary refresh.
func (l *Ledger) FreeCount() int {
	l.sync()
	return l.freeCount
}

// Healthy returns the number of non-failed devices.
func (l *Ledger) Healthy() int {
	return l.topo.NumDevices() - l.topo.FailedCount()
}

// LeasedCount returns the number of devices currently leased to jobs.
func (l *Ledger) LeasedCount() int { return l.leased }

// Owner returns the job holding device d, if any.
func (l *Ledger) Owner(d cluster.DeviceID) (string, bool) {
	job := l.owner[d]
	return job, job != ""
}

// Allocation returns a copy of the job's leased devices in lease order.
func (l *Ledger) Allocation(job string) cluster.Allocation {
	return append(cluster.Allocation(nil), l.leases[job]...)
}

// Lease assigns the given devices to job. It fails atomically — without
// leasing anything — if any device is already owned, failed, out of
// range, or listed twice.
func (l *Ledger) Lease(job string, devs ...cluster.DeviceID) error {
	if job == "" {
		return fmt.Errorf("coordinator: lease needs a job name")
	}
	seen := map[cluster.DeviceID]bool{}
	for _, d := range devs {
		if int(d) < 0 || int(d) >= l.topo.NumDevices() {
			return fmt.Errorf("coordinator: lease of unknown device %d", d)
		}
		if seen[d] {
			return fmt.Errorf("coordinator: device %d listed twice in lease for %s", d, job)
		}
		seen[d] = true
		if l.topo.FailedDevice(d) {
			return fmt.Errorf("coordinator: device %d is failed", d)
		}
		if o := l.owner[d]; o != "" {
			return fmt.Errorf("coordinator: device %d already leased to %s", d, o)
		}
	}
	for _, d := range devs {
		l.owner[d] = job
		l.markDirty(d)
	}
	l.leases[job] = append(l.leases[job], devs...)
	l.leased += len(devs)
	return nil
}

// Release returns the given devices from job to the free pool. It fails
// atomically if any device is not held by job.
func (l *Ledger) Release(job string, devs ...cluster.DeviceID) error {
	drop := map[cluster.DeviceID]bool{}
	for _, d := range devs {
		if l.owner[d] != job {
			return fmt.Errorf("coordinator: device %d not leased to %s", d, job)
		}
		if drop[d] {
			return fmt.Errorf("coordinator: device %d listed twice in release for %s", d, job)
		}
		drop[d] = true
	}
	for _, d := range devs {
		delete(l.owner, d)
		l.markDirty(d)
	}
	kept := l.leases[job][:0]
	for _, d := range l.leases[job] {
		if !drop[d] {
			kept = append(kept, d)
		}
	}
	if len(kept) == 0 {
		delete(l.leases, job)
	} else {
		l.leases[job] = kept
	}
	l.leased -= len(devs)
	return nil
}

// ReleaseAll returns every device the job holds.
func (l *Ledger) ReleaseAll(job string) {
	for _, d := range l.leases[job] {
		delete(l.owner, d)
		l.markDirty(d)
	}
	l.leased -= len(l.leases[job])
	delete(l.leases, job)
}

// MarkFailed removes device d from service and returns the job that
// was holding it, if any. The device leaves the owner's lease and does
// not re-enter the free pool until MarkRecovered. The topology itself
// is marked too (bumping its generation), so placement scoring and any
// memoization keyed on the topology see the post-failure cluster.
//
// MarkFailed is idempotent: flapping devices and spot deadlines can
// deliver duplicate fail events for a device that is already down, and
// repeats return "" without touching leases, suspicion counts, or the
// topology generation.
func (l *Ledger) MarkFailed(d cluster.DeviceID) string {
	if l.topo.FailedDevice(d) {
		return ""
	}
	job := l.owner[d]
	l.topo.MarkFailed(d)
	l.genSeen = l.topo.Generation()
	l.markDirty(d)
	if l.suspicion == nil {
		l.suspicion = map[cluster.DeviceID]int{}
	}
	l.suspicion[d]++
	delete(l.draining, d) // a dead device no longer drains
	if job != "" {
		delete(l.owner, d)
		kept := l.leases[job][:0]
		for _, h := range l.leases[job] {
			if h != d {
				kept = append(kept, h)
			}
		}
		l.leases[job] = kept
		l.leased--
	}
	return job
}

// MarkRecovered returns a flapped device to service (clearing the
// topology's failed mark). The caller's failure detector decides
// whether to call it at all — a quarantined device is simply never
// recovered. A no-op for healthy devices.
func (l *Ledger) MarkRecovered(d cluster.DeviceID) {
	if !l.topo.FailedDevice(d) {
		return
	}
	l.topo.MarkRecovered(d)
	l.genSeen = l.topo.Generation()
	l.markDirty(d)
}

// Suspicion returns the number of fail transitions observed for d.
func (l *Ledger) Suspicion(d cluster.DeviceID) int { return l.suspicion[d] }

// SetDraining marks or unmarks a healthy device as draining: still
// alive (leases and running jobs are untouched) but excluded from the
// free pool, because a spot reclamation will take it shortly.
func (l *Ledger) SetDraining(d cluster.DeviceID, on bool) {
	if !on {
		delete(l.draining, d)
		l.markDirty(d)
		return
	}
	if l.draining == nil {
		l.draining = map[cluster.DeviceID]bool{}
	}
	l.draining[d] = true
	l.markDirty(d)
}

// Draining reports whether device d is draining.
func (l *Ledger) Draining(d cluster.DeviceID) bool { return l.draining[d] }

// Failed reports whether device d has failed.
func (l *Ledger) Failed(d cluster.DeviceID) bool { return l.topo.FailedDevice(d) }

// Validate cross-checks the owner map against the per-job leases: every
// leased device is owned by exactly the job whose lease lists it, no
// device appears in two leases, and no failed device is leased. It is
// the no-double-allocation invariant the event loop asserts after every
// event.
func (l *Ledger) Validate() error {
	fromLeases := map[cluster.DeviceID]string{}
	jobs := make([]string, 0, len(l.leases))
	for job := range l.leases {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	leased := 0
	for _, job := range jobs {
		leased += len(l.leases[job])
		for _, d := range l.leases[job] {
			if prev, ok := fromLeases[d]; ok {
				return fmt.Errorf("coordinator: device %d leased to both %s and %s", d, prev, job)
			}
			fromLeases[d] = job
			if l.topo.FailedDevice(d) {
				return fmt.Errorf("coordinator: failed device %d leased to %s", d, job)
			}
			if l.owner[d] != job {
				return fmt.Errorf("coordinator: device %d owner %q disagrees with lease of %s", d, l.owner[d], job)
			}
		}
	}
	for d, job := range l.owner {
		if job != "" && fromLeases[d] != job {
			return fmt.Errorf("coordinator: owner map has %d -> %s without a matching lease", d, job)
		}
	}
	if leased != l.leased {
		return fmt.Errorf("coordinator: leased-device counter %d disagrees with leases (%d)", l.leased, leased)
	}
	return nil
}

// Pick selects n free devices for a lease, minimizing worker spread:
// workers already hosting devices of prefer come first, then workers
// with the most free devices (so whole machines fill up before the
// allocation fragments), ties broken by worker ID. Within a worker,
// devices are taken in ID order. The choice is deterministic. ok is
// false when fewer than n devices are free.
func (l *Ledger) Pick(n int, prefer cluster.Allocation) ([]cluster.DeviceID, bool) {
	l.sync()
	return l.packFast(n, l.preferredWorkers(prefer), false)
}

func (l *Ledger) preferredWorkers(prefer cluster.Allocation) map[int]bool {
	if len(prefer) == 0 {
		return nil
	}
	preferred := map[int]bool{}
	for _, d := range prefer {
		preferred[l.topo.WorkerOf(d)] = true
	}
	return preferred
}

// CandidateSets enumerates up to k distinct lease-feasible device sets
// of size n from the free pool, for the placement-aware coordinator to
// score and rank — instead of committing to the single count-based
// compact pick. The first candidate is always Pick's choice, so a
// policy that declines to rank (or a disabled placement mode) degrades
// exactly to the count-based behavior. The remaining candidates come
// from deterministic heuristics with different biases: compact packing
// without worker affinity, best-fit packing that consumes fragmented
// workers first (leaving whole machines for future gangs), a rack-local
// pack on hierarchical topologies (all candidates behind one rack
// switch), whole single-worker sets (all-NVLink TP groups), and a
// round-robin spread across workers (one NIC per DP replica).
// Duplicates are removed; the result is deterministic.
//
// The enumeration runs on the incremental per-worker summaries: only
// workers touched since the last decision are re-derived, so the cost
// is governed by the candidate size and the event's footprint, not the
// cluster size. candidateSetsScratch retains the from-scratch
// enumeration; a seeded property suite holds the two byte-identical.
func (l *Ledger) CandidateSets(n, k int, prefer cluster.Allocation) []cluster.Allocation {
	if n < 1 || k < 1 {
		return nil
	}
	l.sync()
	if l.freeCount < n {
		return nil
	}
	preferred := l.preferredWorkers(prefer)
	var out []cluster.Allocation
	seen := map[string]bool{}
	add := func(devs []cluster.DeviceID, ok bool) {
		if !ok || len(out) >= k {
			return
		}
		sig := cluster.Allocation(devs).Signature()
		if seen[sig] {
			return
		}
		seen[sig] = true
		out = append(out, append(cluster.Allocation(nil), devs...))
	}
	add(l.packFast(n, preferred, false))
	add(l.packFast(n, nil, false))
	add(l.packFast(n, preferred, true))
	if l.topo.Hier != nil {
		add(l.packRackFast(n))
	}
	// Whole single-worker sets: the best possible interconnect for a
	// TP-heavy configuration.
	l.wholeWorkerSets(n, add)
	add(l.packSpreadFast(n))
	return out
}

// walkPack visits workers in packing order — preferred workers first
// (sorted by free count, ties by ID), then the rest bucket by bucket —
// with asc selecting best-fit (fewest free first) versus compact (most
// free first). f returns false to stop the walk.
func (l *Ledger) walkPack(preferred map[int]bool, asc bool, f func(w int) bool) {
	if len(preferred) > 0 {
		pws := make([]int, 0, len(preferred))
		for w := range preferred {
			if w >= 0 && w < len(l.countOf) && l.countOf[w] > 0 {
				pws = append(pws, w)
			}
		}
		sort.Slice(pws, func(i, j int) bool {
			wi, wj := pws[i], pws[j]
			ci, cj := l.countOf[wi], l.countOf[wj]
			if ci != cj {
				if asc {
					return ci < cj
				}
				return ci > cj
			}
			return wi < wj
		})
		for _, w := range pws {
			if !f(w) {
				return
			}
		}
	}
	stopped := false
	visit := func(w int) bool {
		if preferred[w] {
			return true
		}
		if !f(w) {
			stopped = true
			return false
		}
		return true
	}
	if asc {
		for c := 1; c < len(l.buckets) && !stopped; c++ {
			l.buckets[c].ascend(visit)
		}
	} else {
		for c := len(l.buckets) - 1; c >= 1 && !stopped; c-- {
			l.buckets[c].ascend(visit)
		}
	}
}

// packFast packs n free devices in compact (asc false: most-free
// workers first) or best-fit (asc true: fewest-free first) order,
// preferred workers leading either way. It reproduces
// packCompact/packBestFit over the full free list exactly, via the
// incremental summaries.
func (l *Ledger) packFast(n int, preferred map[int]bool, asc bool) ([]cluster.DeviceID, bool) {
	if l.freeCount < n {
		return nil, false
	}
	out := make([]cluster.DeviceID, 0, n)
	l.walkPack(preferred, asc, func(w int) bool {
		for _, d := range l.freeByWorker[w] {
			out = append(out, d)
			if len(out) == n {
				return false
			}
		}
		return true
	})
	return out, len(out) == n
}

// packSpreadFast reproduces packSpread via the summaries: round-robin
// over the workers with the most free devices. Only the first n workers
// in (count desc, ID) order can ever contribute, so the walk
// materializes at most n workers regardless of cluster size.
func (l *Ledger) packSpreadFast(n int) ([]cluster.DeviceID, bool) {
	if l.freeCount < n {
		return nil, false
	}
	ws := make([]int, 0, n)
	for c := len(l.buckets) - 1; c >= 1 && len(ws) < n; c-- {
		l.buckets[c].ascend(func(w int) bool {
			ws = append(ws, w)
			return len(ws) < n
		})
	}
	out := make([]cluster.DeviceID, 0, n)
	for round := 0; len(out) < n; round++ {
		took := false
		for _, w := range ws {
			if round < len(l.freeByWorker[w]) {
				out = append(out, l.freeByWorker[w][round])
				took = true
				if len(out) == n {
					return out, true
				}
			}
		}
		if !took {
			break
		}
	}
	return out, len(out) == n
}

// wholeWorkerSets feeds add every worker that can host the whole
// allocation alone (ID order), via a union of the count buckets >= n.
func (l *Ledger) wholeWorkerSets(n int, add func(devs []cluster.DeviceID, ok bool)) {
	if n >= len(l.buckets) {
		return
	}
	acc := newWorkerBits(len(l.countOf))
	for c := n; c < len(l.buckets); c++ {
		for i, word := range l.buckets[c] {
			acc[i] |= word
		}
	}
	acc.ascend(func(w int) bool {
		add(l.freeByWorker[w][:n], true)
		return true
	})
}

// packRackFast packs n devices inside the single rack with the most
// free devices (ties: lowest rack ID), workers by free count then ID —
// the locality-aware candidate for hierarchical topologies: the whole
// gang behind one rack switch, no oversubscribed uplink in its rings.
func (l *Ledger) packRackFast(n int) ([]cluster.DeviceID, bool) {
	best := -1
	for r, c := range l.rackFree {
		if c >= n && (best < 0 || c > l.rackFree[best]) {
			best = r
		}
	}
	if best < 0 {
		return nil, false
	}
	out := make([]cluster.DeviceID, 0, n)
	done := false
	for c := len(l.buckets) - 1; c >= 1 && !done; c-- {
		l.buckets[c].ascend(func(w int) bool {
			if l.topo.RackOf(w) != best {
				return true
			}
			for _, d := range l.freeByWorker[w] {
				out = append(out, d)
				if len(out) == n {
					done = true
					return false
				}
			}
			return true
		})
	}
	return out, len(out) == n
}

// MinLeaseSpread returns the smallest number of workers that could host
// an n-device lease drawn from the job's own devices plus the free
// pool — the worker count pickCompact's greedy most-free-first packing
// achieves (greedy is exact for this covering objective). The
// defragmenter uses it to skip jobs that no compaction can improve
// without materializing the candidate allocation.
func (l *Ledger) MinLeaseSpread(job string, n int) int {
	l.sync()
	own := map[int]int{}
	for _, d := range l.leases[job] {
		own[l.topo.WorkerOf(d)]++
	}
	// Effective per-worker availability: free + the job's own devices.
	counts := make([]int, 0, len(own))
	hist := make([]int, len(l.buckets))
	for c := 1; c < len(l.buckets); c++ {
		hist[c] = l.buckets[c].count()
	}
	for w, c := range own {
		counts = append(counts, l.countOf[w]+c)
		if l.countOf[w] > 0 {
			hist[l.countOf[w]]--
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	workers, i := 0, 0
	c := len(hist) - 1
	for n > 0 {
		for c >= 1 && hist[c] == 0 {
			c--
		}
		switch {
		case i < len(counts) && (c < 1 || counts[i] >= c):
			n -= counts[i]
			i++
		case c >= 1:
			n -= c
			hist[c]--
		default:
			return workers // not enough devices; callers pass feasible n
		}
		workers++
	}
	return workers
}

// candidateSetsScratch is the retained from-scratch enumeration: the
// same candidate stream as CandidateSets, derived by rescanning the
// whole device list and sorting all workers per heuristic. It exists
// as the reference for the incremental path — the seeded property
// suite asserts byte-identical output over thousands of interleaved
// lease/reclaim/fail/drain sequences — and costs O(devices) per call,
// which is exactly what the incremental summaries avoid.
func (l *Ledger) candidateSetsScratch(n, k int, prefer cluster.Allocation) []cluster.Allocation {
	if n < 1 || k < 1 {
		return nil
	}
	free := l.freeScratch()
	if len(free) < n {
		return nil
	}
	preferred := map[int]bool{}
	for _, d := range prefer {
		preferred[l.topo.WorkerOf(d)] = true
	}
	var out []cluster.Allocation
	seen := map[string]bool{}
	add := func(devs []cluster.DeviceID, ok bool) {
		if !ok || len(out) >= k {
			return
		}
		sig := cluster.Allocation(devs).Signature()
		if seen[sig] {
			return
		}
		seen[sig] = true
		out = append(out, append(cluster.Allocation(nil), devs...))
	}
	add(packCompact(l.topo, free, n, preferred))
	add(packCompact(l.topo, free, n, nil))
	add(packBestFit(l.topo, free, n, preferred))
	if l.topo.Hier != nil {
		add(packRackScratch(l.topo, free, n))
	}
	// Whole single-worker sets: the best possible interconnect for a
	// TP-heavy configuration.
	byWorker, workers := groupByWorker(l.topo, free)
	sort.Ints(workers)
	for _, w := range workers {
		if len(byWorker[w]) >= n {
			add(byWorker[w][:n], true)
		}
	}
	add(packSpread(l.topo, free, n))
	return out
}

// groupByWorker buckets the available devices per worker (in input
// order) and returns the workers that have any, in first-seen order.
func groupByWorker(topo *cluster.Topology, avail []cluster.DeviceID) (map[int][]cluster.DeviceID, []int) {
	byWorker := map[int][]cluster.DeviceID{}
	var workers []int
	for _, d := range avail {
		w := topo.WorkerOf(d)
		if len(byWorker[w]) == 0 {
			workers = append(workers, w)
		}
		byWorker[w] = append(byWorker[w], d)
	}
	return byWorker, workers
}

// packBestFit packs n devices consuming the workers with the fewest
// free devices first (preferred workers still lead): fragments get used
// up and whole machines stay whole for jobs that need them.
func packBestFit(topo *cluster.Topology, avail []cluster.DeviceID, n int, preferred map[int]bool) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if preferred[wi] != preferred[wj] {
			return preferred[wi]
		}
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) < len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for _, w := range workers {
		for _, d := range byWorker[w] {
			if len(out) == n {
				return out, true
			}
			out = append(out, d)
		}
	}
	return out, len(out) == n
}

// packSpread distributes n devices round-robin over the workers with
// the most free devices — one NIC per data-parallel replica instead of
// one crowded machine.
func packSpread(topo *cluster.Topology, avail []cluster.DeviceID, n int) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) > len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for round := 0; len(out) < n; round++ {
		took := false
		for _, w := range workers {
			if round < len(byWorker[w]) {
				out = append(out, byWorker[w][round])
				took = true
				if len(out) == n {
					return out, true
				}
			}
		}
		if !took {
			break
		}
	}
	return out, len(out) == n
}

// packRackScratch is packRackFast's from-scratch reference: the rack
// with the most available devices (ties: lowest rack ID), packed
// compactly (workers by count desc, ID asc; devices in ID order).
func packRackScratch(topo *cluster.Topology, avail []cluster.DeviceID, n int) ([]cluster.DeviceID, bool) {
	rackFree := make([]int, topo.NumRacks())
	for _, d := range avail {
		rackFree[topo.RackOf(topo.WorkerOf(d))]++
	}
	best := -1
	for r, c := range rackFree {
		if c >= n && (best < 0 || c > rackFree[best]) {
			best = r
		}
	}
	if best < 0 {
		return nil, false
	}
	inRack := make([]cluster.DeviceID, 0, rackFree[best])
	for _, d := range avail {
		if topo.RackOf(topo.WorkerOf(d)) == best {
			inRack = append(inRack, d)
		}
	}
	return packCompact(topo, inRack, n, nil)
}

// packCompact greedily packs n of the available devices onto as few
// workers as possible: preferred workers first, then workers offering
// the most devices, ties broken by worker ID; devices in ID order
// within a worker. It is the one placement heuristic shared by lease
// picking and defragmentation, so both always agree on what "compact"
// means.
func packCompact(topo *cluster.Topology, avail []cluster.DeviceID, n int, preferred map[int]bool) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	for _, devs := range byWorker {
		sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	}
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if preferred[wi] != preferred[wj] {
			return preferred[wi]
		}
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) > len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for _, w := range workers {
		for _, d := range byWorker[w] {
			if len(out) == n {
				return out, true
			}
			out = append(out, d)
		}
	}
	return out, len(out) == n
}
