package coordinator

import (
	"fmt"
	"sort"

	"tenplex/internal/cluster"
)

// Ledger is the coordinator's device ownership book: every GPU of the
// shared topology is free, leased to exactly one job, or failed. All
// mutations go through Lease / Release / MarkFailed, which reject any
// transition that would double-allocate a device; Validate cross-checks
// the two internal views so the event loop can assert the invariant
// after every event. Failure state lives in the topology itself
// (cluster.Topology.MarkFailed/FailedDevice) — the one source of truth
// the ledger, the placement scorer and the perfmodel cache generations
// all read. The Ledger is mutated only by the coordinator's event loop
// and is therefore not internally locked.
type Ledger struct {
	topo   *cluster.Topology
	owner  map[cluster.DeviceID]string   // "" or absent = free
	leases map[string]cluster.Allocation // per-job devices, lease order
	// suspicion counts observed failures per device; a flapping device
	// accumulates one per actual fail transition (duplicates are not
	// counted) and the coordinator's failure detector quarantines it
	// once the count reaches its threshold.
	suspicion map[cluster.DeviceID]int
	// draining devices are healthy but excluded from the free pool —
	// a spot-reclamation notice has promised their disappearance.
	draining map[cluster.DeviceID]bool
}

// NewLedger starts with every device of the topology free; device
// health is read from (and written through to) the topology.
func NewLedger(topo *cluster.Topology) *Ledger {
	return &Ledger{
		topo:   topo,
		owner:  map[cluster.DeviceID]string{},
		leases: map[string]cluster.Allocation{},
	}
}

// Free returns the healthy, unleased, non-draining devices in ID order.
func (l *Ledger) Free() []cluster.DeviceID {
	var out []cluster.DeviceID
	for _, d := range l.topo.Devices {
		if l.owner[d.ID] == "" && !l.topo.FailedDevice(d.ID) && !l.draining[d.ID] {
			out = append(out, d.ID)
		}
	}
	return out
}

// FreeCount returns the number of healthy, unleased devices.
func (l *Ledger) FreeCount() int { return len(l.Free()) }

// Healthy returns the number of non-failed devices.
func (l *Ledger) Healthy() int {
	n := 0
	for _, d := range l.topo.Devices {
		if !l.topo.FailedDevice(d.ID) {
			n++
		}
	}
	return n
}

// LeasedCount returns the number of devices currently leased to jobs.
func (l *Ledger) LeasedCount() int {
	n := 0
	for _, a := range l.leases {
		n += len(a)
	}
	return n
}

// Owner returns the job holding device d, if any.
func (l *Ledger) Owner(d cluster.DeviceID) (string, bool) {
	job := l.owner[d]
	return job, job != ""
}

// Allocation returns a copy of the job's leased devices in lease order.
func (l *Ledger) Allocation(job string) cluster.Allocation {
	return append(cluster.Allocation(nil), l.leases[job]...)
}

// Lease assigns the given devices to job. It fails atomically — without
// leasing anything — if any device is already owned, failed, out of
// range, or listed twice.
func (l *Ledger) Lease(job string, devs ...cluster.DeviceID) error {
	if job == "" {
		return fmt.Errorf("coordinator: lease needs a job name")
	}
	seen := map[cluster.DeviceID]bool{}
	for _, d := range devs {
		if int(d) < 0 || int(d) >= l.topo.NumDevices() {
			return fmt.Errorf("coordinator: lease of unknown device %d", d)
		}
		if seen[d] {
			return fmt.Errorf("coordinator: device %d listed twice in lease for %s", d, job)
		}
		seen[d] = true
		if l.topo.FailedDevice(d) {
			return fmt.Errorf("coordinator: device %d is failed", d)
		}
		if o := l.owner[d]; o != "" {
			return fmt.Errorf("coordinator: device %d already leased to %s", d, o)
		}
	}
	for _, d := range devs {
		l.owner[d] = job
	}
	l.leases[job] = append(l.leases[job], devs...)
	return nil
}

// Release returns the given devices from job to the free pool. It fails
// atomically if any device is not held by job.
func (l *Ledger) Release(job string, devs ...cluster.DeviceID) error {
	drop := map[cluster.DeviceID]bool{}
	for _, d := range devs {
		if l.owner[d] != job {
			return fmt.Errorf("coordinator: device %d not leased to %s", d, job)
		}
		if drop[d] {
			return fmt.Errorf("coordinator: device %d listed twice in release for %s", d, job)
		}
		drop[d] = true
	}
	for _, d := range devs {
		delete(l.owner, d)
	}
	kept := l.leases[job][:0]
	for _, d := range l.leases[job] {
		if !drop[d] {
			kept = append(kept, d)
		}
	}
	if len(kept) == 0 {
		delete(l.leases, job)
	} else {
		l.leases[job] = kept
	}
	return nil
}

// ReleaseAll returns every device the job holds.
func (l *Ledger) ReleaseAll(job string) {
	for _, d := range l.leases[job] {
		delete(l.owner, d)
	}
	delete(l.leases, job)
}

// MarkFailed removes device d from service and returns the job that
// was holding it, if any. The device leaves the owner's lease and does
// not re-enter the free pool until MarkRecovered. The topology itself
// is marked too (bumping its generation), so placement scoring and any
// memoization keyed on the topology see the post-failure cluster.
//
// MarkFailed is idempotent: flapping devices and spot deadlines can
// deliver duplicate fail events for a device that is already down, and
// repeats return "" without touching leases, suspicion counts, or the
// topology generation.
func (l *Ledger) MarkFailed(d cluster.DeviceID) string {
	if l.topo.FailedDevice(d) {
		return ""
	}
	job := l.owner[d]
	l.topo.MarkFailed(d)
	if l.suspicion == nil {
		l.suspicion = map[cluster.DeviceID]int{}
	}
	l.suspicion[d]++
	delete(l.draining, d) // a dead device no longer drains
	if job != "" {
		delete(l.owner, d)
		kept := l.leases[job][:0]
		for _, h := range l.leases[job] {
			if h != d {
				kept = append(kept, h)
			}
		}
		l.leases[job] = kept
	}
	return job
}

// MarkRecovered returns a flapped device to service (clearing the
// topology's failed mark). The caller's failure detector decides
// whether to call it at all — a quarantined device is simply never
// recovered. A no-op for healthy devices.
func (l *Ledger) MarkRecovered(d cluster.DeviceID) {
	l.topo.MarkRecovered(d)
}

// Suspicion returns the number of fail transitions observed for d.
func (l *Ledger) Suspicion(d cluster.DeviceID) int { return l.suspicion[d] }

// SetDraining marks or unmarks a healthy device as draining: still
// alive (leases and running jobs are untouched) but excluded from the
// free pool, because a spot reclamation will take it shortly.
func (l *Ledger) SetDraining(d cluster.DeviceID, on bool) {
	if !on {
		delete(l.draining, d)
		return
	}
	if l.draining == nil {
		l.draining = map[cluster.DeviceID]bool{}
	}
	l.draining[d] = true
}

// Draining reports whether device d is draining.
func (l *Ledger) Draining(d cluster.DeviceID) bool { return l.draining[d] }

// Failed reports whether device d has failed.
func (l *Ledger) Failed(d cluster.DeviceID) bool { return l.topo.FailedDevice(d) }

// Validate cross-checks the owner map against the per-job leases: every
// leased device is owned by exactly the job whose lease lists it, no
// device appears in two leases, and no failed device is leased. It is
// the no-double-allocation invariant the event loop asserts after every
// event.
func (l *Ledger) Validate() error {
	fromLeases := map[cluster.DeviceID]string{}
	jobs := make([]string, 0, len(l.leases))
	for job := range l.leases {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	for _, job := range jobs {
		for _, d := range l.leases[job] {
			if prev, ok := fromLeases[d]; ok {
				return fmt.Errorf("coordinator: device %d leased to both %s and %s", d, prev, job)
			}
			fromLeases[d] = job
			if l.topo.FailedDevice(d) {
				return fmt.Errorf("coordinator: failed device %d leased to %s", d, job)
			}
			if l.owner[d] != job {
				return fmt.Errorf("coordinator: device %d owner %q disagrees with lease of %s", d, l.owner[d], job)
			}
		}
	}
	for d, job := range l.owner {
		if job != "" && fromLeases[d] != job {
			return fmt.Errorf("coordinator: owner map has %d -> %s without a matching lease", d, job)
		}
	}
	return nil
}

// Pick selects n free devices for a lease, minimizing worker spread:
// workers already hosting devices of prefer come first, then workers
// with the most free devices (so whole machines fill up before the
// allocation fragments), ties broken by worker ID. Within a worker,
// devices are taken in ID order. The choice is deterministic. ok is
// false when fewer than n devices are free.
func (l *Ledger) Pick(n int, prefer cluster.Allocation) ([]cluster.DeviceID, bool) {
	preferred := map[int]bool{}
	for _, d := range prefer {
		preferred[l.topo.WorkerOf(d)] = true
	}
	return packCompact(l.topo, l.Free(), n, preferred)
}

// CandidateSets enumerates up to k distinct lease-feasible device sets
// of size n from the free pool, for the placement-aware coordinator to
// score and rank — instead of committing to the single count-based
// compact pick. The first candidate is always Pick's choice, so a
// policy that declines to rank (or a disabled placement mode) degrades
// exactly to the count-based behavior. The remaining candidates come
// from deterministic heuristics with different biases: compact packing
// without worker affinity, best-fit packing that consumes fragmented
// workers first (leaving whole machines for future gangs), whole
// single-worker sets (all-NVLink TP groups), and a round-robin spread
// across workers (one NIC per DP replica). Duplicates are removed; the
// result is deterministic.
func (l *Ledger) CandidateSets(n, k int, prefer cluster.Allocation) []cluster.Allocation {
	if n < 1 || k < 1 {
		return nil
	}
	free := l.Free()
	if len(free) < n {
		return nil
	}
	preferred := map[int]bool{}
	for _, d := range prefer {
		preferred[l.topo.WorkerOf(d)] = true
	}
	var out []cluster.Allocation
	seen := map[string]bool{}
	add := func(devs []cluster.DeviceID, ok bool) {
		if !ok || len(out) >= k {
			return
		}
		sig := cluster.Allocation(devs).Signature()
		if seen[sig] {
			return
		}
		seen[sig] = true
		out = append(out, append(cluster.Allocation(nil), devs...))
	}
	add(packCompact(l.topo, free, n, preferred))
	add(packCompact(l.topo, free, n, nil))
	add(packBestFit(l.topo, free, n, preferred))
	// Whole single-worker sets: the best possible interconnect for a
	// TP-heavy configuration.
	byWorker, workers := groupByWorker(l.topo, free)
	sort.Ints(workers)
	for _, w := range workers {
		if len(byWorker[w]) >= n {
			add(byWorker[w][:n], true)
		}
	}
	add(packSpread(l.topo, free, n))
	return out
}

// groupByWorker buckets the available devices per worker (in input
// order) and returns the workers that have any, in first-seen order.
func groupByWorker(topo *cluster.Topology, avail []cluster.DeviceID) (map[int][]cluster.DeviceID, []int) {
	byWorker := map[int][]cluster.DeviceID{}
	var workers []int
	for _, d := range avail {
		w := topo.WorkerOf(d)
		if len(byWorker[w]) == 0 {
			workers = append(workers, w)
		}
		byWorker[w] = append(byWorker[w], d)
	}
	return byWorker, workers
}

// packBestFit packs n devices consuming the workers with the fewest
// free devices first (preferred workers still lead): fragments get used
// up and whole machines stay whole for jobs that need them.
func packBestFit(topo *cluster.Topology, avail []cluster.DeviceID, n int, preferred map[int]bool) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if preferred[wi] != preferred[wj] {
			return preferred[wi]
		}
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) < len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for _, w := range workers {
		for _, d := range byWorker[w] {
			if len(out) == n {
				return out, true
			}
			out = append(out, d)
		}
	}
	return out, len(out) == n
}

// packSpread distributes n devices round-robin over the workers with
// the most free devices — one NIC per data-parallel replica instead of
// one crowded machine.
func packSpread(topo *cluster.Topology, avail []cluster.DeviceID, n int) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) > len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for round := 0; len(out) < n; round++ {
		took := false
		for _, w := range workers {
			if round < len(byWorker[w]) {
				out = append(out, byWorker[w][round])
				took = true
				if len(out) == n {
					return out, true
				}
			}
		}
		if !took {
			break
		}
	}
	return out, len(out) == n
}

// packCompact greedily packs n of the available devices onto as few
// workers as possible: preferred workers first, then workers offering
// the most devices, ties broken by worker ID; devices in ID order
// within a worker. It is the one placement heuristic shared by lease
// picking and defragmentation, so both always agree on what "compact"
// means.
func packCompact(topo *cluster.Topology, avail []cluster.DeviceID, n int, preferred map[int]bool) ([]cluster.DeviceID, bool) {
	if len(avail) < n {
		return nil, false
	}
	byWorker, workers := groupByWorker(topo, avail)
	for _, devs := range byWorker {
		sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	}
	sort.Slice(workers, func(i, j int) bool {
		wi, wj := workers[i], workers[j]
		if preferred[wi] != preferred[wj] {
			return preferred[wi]
		}
		if len(byWorker[wi]) != len(byWorker[wj]) {
			return len(byWorker[wi]) > len(byWorker[wj])
		}
		return wi < wj
	})
	out := make([]cluster.DeviceID, 0, n)
	for _, w := range workers {
		for _, d := range byWorker[w] {
			if len(out) == n {
				return out, true
			}
			out = append(out, d)
		}
	}
	return out, len(out) == n
}
