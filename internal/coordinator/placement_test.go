package coordinator

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"tenplex/internal/cluster"
	"tenplex/internal/parallel"
)

func pc(devs cluster.Allocation, spread int, samples, migSec float64, migBytes int64, score float64) *PlacementCandidate {
	return &PlacementCandidate{
		Devices: devs, Config: parallel.Config{TP: 1, PP: 1, DP: len(devs)},
		Spread: spread, SamplesSec: samples, MigrationSec: migSec,
		MigrationBytes: migBytes, Score: score,
	}
}

func TestRankPlacementPolicies(t *testing.T) {
	v := &ClusterView{Devices: 16, Workers: 4, PlacementAware: true}
	j := &JobView{Name: "j"}
	compact := pc(cluster.Allocation{0, 1}, 1, 100, 0, 0, 100)
	fast := pc(cluster.Allocation{4, 5}, 1, 220, 0.5, 10, 200)
	wide := pc(cluster.Allocation{0, 4}, 2, 240, 1.5, 20, 150)
	cands := []*PlacementCandidate{compact, fast, wide}

	if got := (FIFO{}).RankPlacement(v, j, cands); got != fast {
		t.Fatalf("FIFO picked %v, want the highest score", got.Devices)
	}
	// DRF treats worker spread as the second fairness resource: the
	// narrowest candidate wins, score breaks ties.
	if got := (DRF{}).RankPlacement(v, j, cands); got != fast {
		t.Fatalf("DRF picked %v, want the narrow high-score candidate", got.Devices)
	}
	if got := (PriorityGang{}).RankPlacement(v, j, cands); got != wide {
		t.Fatalf("PriorityGang picked %v, want the raw-throughput winner", got.Devices)
	}
	// Ties keep the earlier (more compact) candidate.
	same := []*PlacementCandidate{compact, pc(cluster.Allocation{8, 9}, 1, 100, 0, 0, 100)}
	if got := (FIFO{}).RankPlacement(v, j, same); got != compact {
		t.Fatal("FIFO tie did not keep the first candidate")
	}
}

func TestPickVictimEvictionCost(t *testing.T) {
	v := &ClusterView{Devices: 16, Workers: 4, PlacementAware: true}
	req := &JobView{Name: "req"}
	dear := &JobView{Name: "dear", SubmitIdx: 0, Surplus: 6, EvictCostSec: 3.0}
	cheap := &JobView{Name: "cheap", SubmitIdx: 1, Surplus: 4, EvictCostSec: 0}
	stuck := &JobView{Name: "stuck", SubmitIdx: 2, Surplus: 2, EvictCostSec: math.Inf(1)}
	cands := []*JobView{dear, cheap, stuck}

	if got := (FIFO{}).PickVictim(v, req, cands); got != cheap {
		t.Fatalf("placement-aware FIFO picked %s, want the cheapest eviction", got.Name)
	}
	// Placement off: the original largest-surplus rule, regardless of
	// any cost fields.
	off := &ClusterView{Devices: 16, Workers: 4}
	if got := (FIFO{}).PickVictim(off, req, cands); got != dear {
		t.Fatalf("count-based FIFO picked %s, want the largest surplus", got.Name)
	}
	// PriorityGang stays class-first; cost only breaks class ties.
	low := &JobView{Name: "low", Priority: 0, Surplus: 2, EvictCostSec: 5}
	high := &JobView{Name: "high", Priority: 1, Surplus: 6, EvictCostSec: 0}
	if got := (PriorityGang{}).PickVictim(v, req, []*JobView{high, low}); got != low {
		t.Fatalf("PriorityGang picked %s, want the lowest class", got.Name)
	}
}

// TestPlacementRunEndToEnd drives the contended 16-device workload —
// admission arbitration, preemptions, expansions, a defrag redeploy
// and a device failure — with placement scoring on: the run must stay
// deterministic, verify every surviving job's state, and work across
// policies and the parallel runtime.
func TestPlacementRunEndToEnd(t *testing.T) {
	topo := cluster.OnPrem16()
	specs, failures := contendedSpecs()
	base, err := Run(topo, specs, failures, Options{Placement: true})
	if err != nil {
		t.Fatalf("placement run: %v\n%s", err, base.Render())
	}
	if countKind(base, EvAdmit) == 0 || countKind(base, EvScaleIn) == 0 {
		t.Fatalf("contended run lost its arbitration events:\n%s", base.Render())
	}
	for _, name := range []string{"fifo", "drf", "priority"} {
		policy, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(topo, specs, failures, Options{Placement: true, Policy: policy})
		if err != nil {
			t.Fatalf("placement under %s: %v", name, err)
		}
		if res.Policy != name {
			t.Fatalf("ran %s, want %s", res.Policy, name)
		}
	}
	// Determinism across repeated runs and the pooled runtime — on the
	// SAME caller topology: the run marks failures on its own clone,
	// so the injected failure of one run must not leak into the next.
	for _, workers := range []int{1, 6} {
		res, err := Run(topo, specs, failures, Options{Placement: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Timeline, base.Timeline) {
			t.Fatalf("placement run not deterministic at workers=%d:\n--- base ---\n%s--- got ---\n%s",
				workers, base.Render(), res.Render())
		}
	}
	if topo.Generation() != 0 || topo.FailedDevice(failures[0].Device) {
		t.Fatal("coordinator runs mutated the caller's topology health state")
	}
}

// TestPlacementOffUnchanged: with Placement left off, a run on the
// same workload is byte-identical to the pre-placement coordinator —
// the new scoring path must be completely inert by default. (The
// 32-device scenario variant of this is the committed golden trace.)
func TestPlacementOffUnchanged(t *testing.T) {
	specs, failures := contendedSpecs()
	a, err := Run(cluster.OnPrem16(), specs, failures, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.OnPrem16(), specs, failures, Options{PlacementCandidates: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("PlacementCandidates without Placement changed the run")
	}
	if a.MovedBytesTotal <= 0 {
		t.Fatal("run reported no moved bytes")
	}
	if !strings.Contains(a.Render(), "makespan") {
		t.Fatal("render lost its summary line")
	}
}
